// Figure 9: Needle-in-a-Haystack — LServe vs dense attention.
//
// Paper: Llama-3-8B grids; LServe (50% streaming heads, hierarchical
// selection, 4096 budget) matches the dense baseline. Here the retrieval
// pathway (what NIAH stresses) runs with LServe's hierarchical selector on
// 64-token quantized physical pages / 16-token logical pages.
#include <cstdio>

#include "common.hpp"
#include "eval/niah.hpp"

using namespace lserve;

int main() {
  eval::NiahConfig cfg;
  cfg.lengths = {8192, 16384, 32768, 65536};
  cfg.depths = {0.0, 0.11, 0.22, 0.33, 0.44, 0.56, 0.67, 0.78, 0.89};
  cfg.head_dim = 64;
  cfg.pages.page_size = 64;
  cfg.pages.logical_page_size = 64;

  bench::section("Fig 9(a): Llama-3-8B proxy — dense");
  cfg.policy.kind = eval::PolicyKind::kDense;
  const eval::NiahResult dense = eval::run_niah(cfg);
  std::printf("%s  mean accuracy: %.3f\n", dense.ascii_heatmap().c_str(),
              dense.mean_accuracy());

  bench::section(
      "Fig 9(b): Llama-3-8B proxy — LServe (hierarchical NP=64/NL=16, "
      "budget 1024, KV4)");
  cfg.pages.logical_page_size = 16;
  cfg.pages.dtype = num::KvDtype::kInt4;
  cfg.policy.kind = eval::PolicyKind::kHierSelect;
  cfg.policy.selector.token_budget = 1024;
  const eval::NiahResult lserve = eval::run_niah(cfg);
  std::printf("%s  mean accuracy: %.3f\n", lserve.ascii_heatmap().c_str(),
              lserve.mean_accuracy());

  std::printf("\nShape check: LServe mean within 0.05 of dense (paper: "
              "same level).\n  dense=%.3f  lserve=%.3f  delta=%.3f\n",
              dense.mean_accuracy(), lserve.mean_accuracy(),
              dense.mean_accuracy() - lserve.mean_accuracy());
  return 0;
}
