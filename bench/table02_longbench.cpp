// Table 2 (and artifact Table 8): LongBench accuracy, dense vs LServe.
//
// Paper: Llama-3-8B and Llama-2-7B over 8 LongBench tasks; LServe tracks
// the dense baseline within a fraction of a point on average. Our proxy
// suite (DESIGN.md §2) maps each task family onto planted-structure
// retrieval / multi-hop / aggregation / local tasks; the quantity to
// compare is the dense-vs-LServe DELTA per task and on average.
#include <cstdio>

#include "common.hpp"
#include "eval/longbench.hpp"

using namespace lserve;

namespace {

std::vector<eval::LongBenchRow> run_policy(std::size_t head_dim,
                                           bool lserve_policy,
                                           std::uint64_t seed) {
  eval::LongBenchConfig cfg;
  cfg.head_dim = head_dim;
  cfg.seed = seed;
  cfg.pages.page_size = 64;
  cfg.pages.logical_page_size = lserve_policy ? 16 : 64;
  cfg.pages.dtype =
      lserve_policy ? num::KvDtype::kInt4 : num::KvDtype::kFp16;
  if (lserve_policy) {
    cfg.policy.kind = eval::PolicyKind::kHierSelect;
    cfg.policy.selector.token_budget = 1024;
  }
  return eval::run_longbench(cfg);
}

void panel(const char* model_name, std::size_t head_dim,
           std::uint64_t seed) {
  const auto dense = run_policy(head_dim, false, seed);
  const auto lserve = run_policy(head_dim, true, seed);
  bench::section(std::string("Table 2: ") + model_name +
                 " proxy (score 0-100)");
  bench::row("Benchmark", {"Dense", "LServe", "Delta"});
  for (std::size_t i = 0; i < dense.size(); ++i) {
    bench::row(dense[i].task,
               {bench::fmt(dense[i].score, 1), bench::fmt(lserve[i].score, 1),
                bench::fmt(lserve[i].score - dense[i].score, 1)});
  }
  const double da = eval::longbench_average(dense);
  const double la = eval::longbench_average(lserve);
  bench::row("Average",
             {bench::fmt(da, 1), bench::fmt(la, 1), bench::fmt(la - da, 1)});
}

}  // namespace

int main() {
  panel("Llama-3-8B", /*head_dim=*/128, /*seed=*/13);
  panel("Llama-2-7B", /*head_dim=*/128, /*seed=*/17);

  bench::section("Table 8 (artifact appendix): Llama-3-8B subset");
  const auto dense = run_policy(128, false, 13);
  const auto lserve = run_policy(128, true, 13);
  bench::row("Benchmark", {"Dense", "LServe"});
  for (std::size_t i = 0; i < 5; ++i) {  // first five tasks as in Table 8
    bench::row(dense[i].task,
               {bench::fmt(dense[i].score, 1), bench::fmt(lserve[i].score, 1)});
  }
  std::printf(
      "\nShape check: |average delta| stays small (paper: 38.9 vs 38.6 and "
      "39.5 vs 39.4).\n");
  return 0;
}
