// Shared helpers for the benchmark harness: wall-clock timing, table
// printing, and the serving-policy lineup used across figures.
//
// Classic include guard (not #pragma once) so the header also syntax-checks
// standalone as a main file.
#ifndef LSERVE_BENCH_COMMON_HPP_
#define LSERVE_BENCH_COMMON_HPP_

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "costmodel/pipeline_cost.hpp"
#include "numeric/rng.hpp"
#include "obs/metrics.hpp"

namespace lserve::bench {

// ---------------------------------------------------------------------------
// Shared-prefix chat workload
//
// Deterministic multi-turn conversations for prefix-cache experiments: every
// user shares one system prompt, and each turn's prompt is the full history
// (previous prompt + the engine's actual reply) plus fresh user tokens. The
// same seed therefore reproduces the same token streams in every process,
// which is what lets a bench assert bit-identical outputs cache-on vs
// cache-off. Used by bench/serving_prefix_reuse and examples/multi_turn_chat.
// ---------------------------------------------------------------------------

struct ChatWorkloadConfig {
  std::size_t users = 4;             ///< concurrent conversations
  std::size_t turns_per_user = 3;    ///< chat rounds per conversation
  std::size_t system_prompt_tokens = 128;  ///< shared across ALL users
  std::size_t turn_prompt_tokens = 32;     ///< fresh user tokens per turn
  std::size_t reply_tokens = 8;      ///< max_new_tokens per turn
  std::uint64_t seed = 0x5EED;
  std::int32_t vocab = 32000;
};

/// The system prompt every conversation opens with (stream 0 of `seed`).
inline std::vector<std::int32_t> chat_system_prompt(
    const ChatWorkloadConfig& cfg) {
  num::Rng rng(num::split_seed(cfg.seed, 0));
  std::vector<std::int32_t> out(cfg.system_prompt_tokens);
  for (auto& t : out) {
    t = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(cfg.vocab)));
  }
  return out;
}

/// Fresh user tokens for (user, turn) — an independent stream per pair so
/// conversations diverge after the shared system prompt.
inline std::vector<std::int32_t> chat_turn_tokens(const ChatWorkloadConfig& cfg,
                                                  std::size_t user,
                                                  std::size_t turn) {
  num::Rng rng(num::split_seed(cfg.seed, 1 + user * cfg.turns_per_user + turn));
  std::vector<std::int32_t> out(cfg.turn_prompt_tokens);
  for (auto& t : out) {
    t = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(cfg.vocab)));
  }
  return out;
}

/// First-turn prompt for `user`: shared system prompt + their opening tokens.
inline std::vector<std::int32_t> chat_first_prompt(const ChatWorkloadConfig& cfg,
                                                   std::size_t user) {
  std::vector<std::int32_t> prompt = chat_system_prompt(cfg);
  const std::vector<std::int32_t> turn = chat_turn_tokens(cfg, user, 0);
  prompt.insert(prompt.end(), turn.begin(), turn.end());
  return prompt;
}

/// Next-turn prompt: the full history (previous prompt + the reply the
/// engine actually produced) followed by the user's fresh tokens. The
/// history half is exactly what the prefix cache can serve from KV.
inline std::vector<std::int32_t> chat_next_prompt(
    const ChatWorkloadConfig& cfg, std::size_t user, std::size_t turn,
    std::span<const std::int32_t> prev_prompt,
    std::span<const std::int32_t> reply) {
  std::vector<std::int32_t> prompt(prev_prompt.begin(), prev_prompt.end());
  prompt.insert(prompt.end(), reply.begin(), reply.end());
  const std::vector<std::int32_t> turn_toks =
      chat_turn_tokens(cfg, user, turn);
  prompt.insert(prompt.end(), turn_toks.begin(), turn_toks.end());
  return prompt;
}

/// Median wall time of `fn` over `reps` runs, in microseconds.
inline double time_us(const std::function<void()>& fn, int reps = 5) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Prints a separator + section header.
inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints a row of labeled cells: label then fixed-width columns.
inline void row(const std::string& label,
                const std::vector<std::string>& cells,
                int label_width = 22, int cell_width = 11) {
  std::printf("%-*s", label_width, label.c_str());
  for (const auto& c : cells) std::printf("%*s", cell_width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// Human-readable context length ("64K" etc.).
inline std::string klen(std::size_t n) {
  if (n % 1024 == 0) return std::to_string(n / 1024) + "K";
  return std::to_string(n);
}

/// Latency distribution snapshot in the samples' own unit, computed
/// through the serving stack's histogram type (obs::Histogram on the
/// default_summary_buckets ladder) rather than ad-hoc sorted-vector math —
/// the percentile a bench prints is the estimate an operator would read
/// off the equivalent /metrics buckets with histogram_quantile(), within
/// the ladder's ~2% bucket width.
struct LatencySummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  std::size_t count = 0;

  static LatencySummary from(const std::vector<double>& samples) {
    obs::Histogram h(obs::default_summary_buckets());
    for (const double x : samples) h.observe(x);
    return from(h);
  }

  /// Snapshot of a live histogram (e.g. one the bench registered and a
  /// /metrics scrape also exports).
  static LatencySummary from(const obs::Histogram& h) {
    LatencySummary s;
    s.count = h.count();
    if (s.count == 0) return s;
    s.p50 = h.quantile(0.5);
    s.p95 = h.quantile(0.95);
    s.p99 = h.quantile(0.99);
    s.mean = h.mean();  // exact: tracked as sum/count, not from buckets.
    return s;
  }
};

/// Per-decode-step host-side serving overhead (Python dispatch, sampling,
/// scheduling) common to every PyTorch-based system in the comparison.
/// Calibrated from the artifact's Table 7: LServe's published 64K latency
/// (11.49 ms) minus its modeled kernel time. Added identically to every
/// system in end-to-end decode comparisons (Fig 10, Tables 5/7); kernel-
/// level figures (14/15/16) exclude it, as the paper's do.
inline constexpr double kHostOverheadUs = 9000.0;

/// The paper's system lineup with our cost-model policies.
struct System {
  std::string name;
  cost::ServingPolicy policy;
};

inline std::vector<System> decode_lineup() {
  return {{"vLLM", cost::vllm_policy()},
          {"QServe", cost::qserve_policy()},
          {"MInference", cost::minference_policy()},  // dense decode
          {"DuoAttention", cost::duo_attention_policy()},
          {"LServe", cost::lserve_policy()}};
}

/// KV-cache device bytes for OOM detection in Fig 10/Table 5.
inline double kv_bytes(const model::ModelConfig& m,
                       const cost::ServingPolicy& p, std::size_t seq,
                       std::size_t batch) {
  const double streaming =
      p.streaming_fraction *
      static_cast<double>(
          cost::streaming_head_kv_tokens(p, seq));
  const double dense = (1.0 - p.streaming_fraction) * static_cast<double>(seq);
  const double tokens_per_head = streaming + dense;
  return static_cast<double>(batch) * m.layers * m.kv_heads *
         tokens_per_head * m.head_dim * 2.0 *
         num::bytes_per_element(p.kv_dtype);
}

}  // namespace lserve::bench

#endif  // LSERVE_BENCH_COMMON_HPP_
