// Ablation: page-selector scoring granularity (flat vs hierarchical) and
// reuse interval — measured CPU cost per selection.
//
// Hierarchical scoring reads g = NP/NL representatives per physical page
// (4x the flat cost at NP=64/NL=16); reusable selection divides the whole
// thing by C. This bench quantifies that overhead directly and shows the
// combined configuration (hierarchical + reuse 4) costs about the same as
// flat scoring every step — accuracy of Fig 13 at the price of Quest.
#include <cstdio>

#include "common.hpp"
#include "eval/metrics.hpp"
#include "sparse/hierarchical_selector.hpp"
#include "sparse/quest_selector.hpp"
#include "sparse/reusable_selector.hpp"

using namespace lserve;

int main() {
  const std::size_t n = 65536, d = 64;
  kv::PageConfig pages;
  pages.page_size = 64;
  pages.logical_page_size = 16;
  pages.head_dim = d;
  kv::PageAllocator alloc(pages, n / 64 + 2);
  kv::HeadCache head;
  model::StreamConfig sc;
  sc.n_tokens = n;
  sc.head_dim = d;
  model::TokenStream stream = model::smooth_stream(sc);
  eval::fill_head_cache(alloc, head, stream);
  std::vector<float> q(d, 0.4f);
  sparse::PageSelectorConfig cfg;
  cfg.token_budget = 4096;

  const double flat_us = bench::time_us([&] {
    auto t = sparse::select_pages_flat(alloc, head, q.data(), cfg);
    (void)t;
  });
  const double hier_us = bench::time_us([&] {
    auto t = sparse::select_pages_hierarchical(alloc, head, q.data(), cfg);
    (void)t;
  });

  bench::section("Ablation: selector cost per decode step (CPU, 64K ctx)");
  bench::row("Policy", {"us/step", "reps scored"});
  bench::row("Flat (Quest)",
             {bench::fmt(flat_us, 1),
              std::to_string(sparse::flat_selector_scored_pages(alloc, head))});
  bench::row("Hierarchical",
             {bench::fmt(hier_us, 1),
              std::to_string(
                  sparse::hierarchical_selector_scored_pages(alloc, head))});
  for (std::size_t c : {2u, 4u, 8u}) {
    // Amortized via the real ReusableSelector over a simulated generation.
    sparse::ReusableSelector reuse(1, c);
    const std::size_t steps = 32;
    const double total_us = bench::time_us([&] {
      reuse.reset();
      for (std::size_t t = 0; t < steps; ++t) {
        reuse.get(0, t, [&] {
          return sparse::select_pages_hierarchical(alloc, head, q.data(),
                                                   cfg);
        });
      }
    });
    bench::row("Hierarchical reuse=" + std::to_string(c),
               {bench::fmt(total_us / steps, 1), "amortized"});
  }
  std::printf(
      "\nFinding: hierarchical scoring costs ~g=4x flat per invocation,\n"
      "and reuse interval C divides it back by C — hierarchical+reuse-4\n"
      "costs about the same per step as flat-every-step, which is exactly\n"
      "the trade LServe ships (accuracy of 16-token granularity at large-\n"
      "page bandwidth).\n");
  return 0;
}
