// Figure 2: latency breakdown of LLM prefilling and decoding.
//
// Paper: Llama-3-8B, batch 1, NVIDIA A100; attention accounts for >=50% of
// runtime beyond 64K and ~75% at 128K in both stages. Regenerated with the
// roofline cost model on the plain fp16 model (no serving optimizations).
#include <cstdio>

#include "common.hpp"
#include "costmodel/gpu_spec.hpp"

using namespace lserve;

int main() {
  const cost::GpuSpec spec = cost::a100();
  const model::ModelConfig m = model::llama3_8b();
  cost::ServingPolicy p = cost::vllm_policy();
  p.weight_bits = 16;  // Fig 2 profiles the unquantized model.

  const std::vector<std::size_t> lengths{8192, 16384, 32768, 65536, 131072};

  bench::section("Figure 2(a): prefill latency breakdown (Llama-3-8B, A100, bs=1)");
  bench::row("Input Length", {"Attention", "GEMM", "Others", "Total(s)"});
  for (std::size_t n : lengths) {
    const cost::StageBreakdown b = cost::prefill_cost(spec, m, p, n, 1);
    bench::row(bench::klen(n),
               {bench::fmt(b.attention_us / b.total_us(), 3),
                bench::fmt(b.gemm_us / b.total_us(), 3),
                bench::fmt(b.other_us / b.total_us(), 3),
                bench::fmt(b.total_us() / 1e6, 2)});
  }

  bench::section("Figure 2(b): decode latency breakdown (Llama-3-8B, A100, bs=1)");
  bench::row("Context Length", {"Attention", "GEMM", "Others", "ms/step"});
  for (std::size_t n : lengths) {
    const cost::StageBreakdown b = cost::decode_step_cost(spec, m, p, n, 1);
    bench::row(bench::klen(n),
               {bench::fmt(b.attention_us / b.total_us(), 3),
                bench::fmt(b.gemm_us / b.total_us(), 3),
                bench::fmt((b.selector_us + b.other_us) / b.total_us(), 3),
                bench::fmt(b.total_us() / 1e3, 2)});
  }

  std::printf(
      "\nShape check: attention fraction grows with length in both stages\n"
      "and crosses 50%% between 32K and 128K (paper: >=50%% @64K, ~75%% "
      "@128K).\n");
  return 0;
}
