// Table 4: reasoning accuracy (AIME 2024 / MATH500 proxies) on the
// DeepSeek-R1-Distill-Llama-8B geometry.
//
// Paper: LServe matches dense accuracy on long-generation reasoning tasks
// (43.3/43.3 on AIME, 84.2/85.4 on MATH500). Reasoning traces are long
// GENERATIONS whose quality depends on retrieving earlier derivation steps,
// so the proxy is multi-hop pointer chasing over a long planted trace:
// AIME-proxy uses deeper chains (harder), MATH500-proxy shallower ones.
#include <cstdio>

#include "common.hpp"
#include "eval/ruler.hpp"

using namespace lserve;

namespace {

double run_chain_task(std::size_t hops, eval::PolicyKind kind,
                      std::size_t budget, std::uint64_t seed) {
  eval::RulerConfig cfg;
  cfg.seq_len = 20480;  // ~o1-scale reasoning trace length (20K tokens)
  cfg.head_dim = 128;   // DS-R1-Llama-8B head dim
  cfg.hops = hops;
  cfg.trials = 4;
  cfg.seed = seed;
  cfg.pages.page_size = 64;
  cfg.pages.logical_page_size = kind == eval::PolicyKind::kDense ? 64 : 16;
  cfg.pages.dtype = kind == eval::PolicyKind::kDense ? num::KvDtype::kFp16
                                                     : num::KvDtype::kInt4;
  cfg.policy.kind = kind;
  cfg.policy.selector.token_budget = budget;
  // Score only the multi-hop component; retrieval/aggregation are run but
  // the reasoning proxy is the chain.
  eval::RulerResult r = eval::run_ruler(cfg);
  return r.multi_hop;
}

}  // namespace

int main() {
  bench::section(
      "Table 4: reasoning-proxy accuracy, DS-R1-Llama-8B geometry (0-100)");
  bench::row("Benchmark", {"Dense", "LServe", "Delta"});

  const double aime_dense =
      run_chain_task(/*hops=*/5, eval::PolicyKind::kDense, 0, 23);
  const double aime_lserve =
      run_chain_task(5, eval::PolicyKind::kHierSelect, 2048, 23);
  bench::row("AIME-proxy (5 hops)",
             {bench::fmt(aime_dense, 1), bench::fmt(aime_lserve, 1),
              bench::fmt(aime_lserve - aime_dense, 1)});

  const double math_dense =
      run_chain_task(/*hops=*/2, eval::PolicyKind::kDense, 0, 29);
  const double math_lserve =
      run_chain_task(2, eval::PolicyKind::kHierSelect, 2048, 29);
  bench::row("MATH500-proxy (2 hops)",
             {bench::fmt(math_dense, 1), bench::fmt(math_lserve, 1),
              bench::fmt(math_lserve - math_dense, 1)});

  bench::row("Average",
             {bench::fmt((aime_dense + math_dense) / 2, 1),
              bench::fmt((aime_lserve + math_lserve) / 2, 1),
              bench::fmt((aime_lserve + math_lserve - aime_dense -
                          math_dense) / 2, 1)});
  std::printf(
      "\nShape check: LServe's average within ~1 point of dense (paper: "
      "63.8 vs 64.4).\n");
  return 0;
}
