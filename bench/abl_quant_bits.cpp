// Ablation: KV-cache precision (fp16 / int8 / int4).
//
// Quantization is orthogonal to sparsity (§2.2): it shrinks each
// iteration's bytes while sparsity shrinks the number of iterations. This
// ablation reports (a) measured retrieval accuracy of the hierarchical
// selector over quantized pages, (b) per-page device bytes, and (c) the
// modeled decode latency each precision buys at GPU scale.
#include <cstdio>

#include "common.hpp"
#include "costmodel/gpu_spec.hpp"
#include "eval/niah.hpp"

using namespace lserve;

int main() {
  const cost::GpuSpec spec = cost::a100();
  const model::ModelConfig m = model::llama3_8b();

  bench::section("Ablation: KV precision — accuracy, memory, modeled speed");
  bench::row("KV dtype", {"NIAH acc", "bytes/page", "ms/step@128K"});
  for (num::KvDtype dtype :
       {num::KvDtype::kFp16, num::KvDtype::kInt8, num::KvDtype::kInt4}) {
    eval::NiahConfig cfg;
    cfg.lengths = {8192, 16384};
    cfg.depths = {0.2, 0.5, 0.8};
    cfg.head_dim = 64;
    cfg.pages.page_size = 64;
    cfg.pages.logical_page_size = 16;
    cfg.pages.dtype = dtype;
    cfg.policy.kind = eval::PolicyKind::kHierSelect;
    cfg.policy.selector.token_budget = 1024;
    const double acc = eval::run_niah(cfg).mean_accuracy();

    kv::Page page;
    kv::PageConfig pc = cfg.pages;
    page.init(pc);
    const double bytes = page.device_bytes();

    cost::ServingPolicy p = cost::lserve_policy();
    p.kv_dtype = dtype;
    const double ms =
        cost::decode_step_cost(spec, m, p, 131072, 1).total_us() / 1e3;
    bench::row(num::dtype_name(dtype),
               {bench::fmt(acc, 3), bench::fmt(bytes, 0), bench::fmt(ms, 2)});
  }
  std::printf(
      "\nFinding: INT4 KV keeps hierarchical selection lossless on planted\n"
      "retrieval (stats fold the quantized keys, so selector and kernel\n"
      "agree) while cutting page bytes ~4x; the modeled decode latency\n"
      "drops accordingly (quantization x sparsity are multiplicative).\n");
  return 0;
}
