// Prefix-reuse bench: multi-turn chat traffic through the scheduler with
// the radix prefix cache on vs. off.
//
// The workload (bench/common.hpp chat generator) is the cache's target
// scenario: every user opens with the same system prompt, and each follow-up
// turn replays the full conversation history plus a few fresh tokens. With
// the cache on, a follow-up's history attaches straight from the radix tree
// and only the fresh suffix is prefilled; with it off, every turn re-prefills
// from token zero. Turns are chained through on_done — turn t+1 is built
// from turn t's *actual* reply and submitted from its completion callback —
// so the token streams are identical in both modes and the bench can assert
// bit-identical outputs.
//
// TTFT is measured the same way as serving_load: the scheduler stamps step
// indices, the harness maps steps to wall-clock timestamps recorded around
// step(). Reported per class: cold (first turns, nothing cached yet) and
// hit (follow-up turns, the cache's target traffic). argv[1], when given,
// receives the JSON blob (BENCH_prefix_reuse.json).
#include <cassert>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "common.hpp"
#include "serve/scheduler.hpp"

using namespace lserve;

namespace {

struct TurnKey {
  std::size_t user = 0;
  std::size_t turn = 0;
  bool operator<(const TurnKey& o) const {
    return user != o.user ? user < o.user : turn < o.turn;
  }
};

struct TurnRecord {
  double ttft_us = 0.0;
  std::size_t prompt_tokens = 0;
  std::vector<std::int32_t> output;
};

struct RunOutcome {
  std::map<TurnKey, TurnRecord> turns;
  double wall_ms = 0.0;
  serve::EngineStats eng;
  serve::SchedulerStats sched;
};

RunOutcome run_chat(const bench::ChatWorkloadConfig& wl, bool cache_on) {
  serve::EngineConfig ec = baselines::lserve_config(model::small());
  ec.pool_pages = 4096;
  ec.enable_prefix_cache = cache_on;
  serve::Engine engine(ec);
  engine.calibrate_head_kinds();
  serve::SchedulerConfig sc;
  sc.max_batch = 8;
  sc.decode_threads = 1;
  serve::Scheduler sched(engine, sc);

  // times[k] = elapsed us after step k; per-request TTFT is
  // times[first_token_step] - times[submit_step].
  std::vector<double> times{0.0};
  RunOutcome out;

  // Chained submission: turn t+1's prompt is built from turn t's actual
  // reply inside its on_done, so both modes see identical token streams.
  struct UserState {
    std::vector<std::int32_t> prompt;
  };
  std::vector<UserState> users(wl.users);
  std::function<void(std::size_t, std::size_t)> launch =
      [&](std::size_t user, std::size_t turn) {
        serve::Request req;
        req.prompt = users[user].prompt;
        req.max_new_tokens = wl.reply_tokens;
        req.on_done = [&, user, turn](const serve::RequestResult& r) {
          TurnRecord rec;
          rec.prompt_tokens = r.prompt_tokens;
          rec.output = r.output;
          rec.ttft_us = times[r.first_token_step] - times[r.submit_step];
          out.turns[{user, turn}] = std::move(rec);
          if (turn + 1 < wl.turns_per_user) {
            users[user].prompt = bench::chat_next_prompt(
                wl, user, turn + 1, users[user].prompt, r.output);
            launch(user, turn + 1);
          }
        };
        sched.submit(std::move(req));
      };
  for (std::size_t u = 0; u < wl.users; ++u) {
    users[u].prompt = bench::chat_first_prompt(wl, u);
    launch(u, 0);
  }

  const auto t0 = std::chrono::steady_clock::now();
  bool more = true;
  while (more) {
    more = sched.step();
    times.push_back(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  }
  out.wall_ms = times.back() / 1000.0;
  out.eng = engine.stats();
  out.sched = sched.scheduler_stats();
  return out;
}

double mean_ttft(const RunOutcome& out, bool hit_class) {
  // Accumulated through the serving stack's histogram type (exact mean:
  // sum/count, not bucket-estimated), matching the other serving benches.
  lserve::obs::Histogram h(lserve::obs::default_summary_buckets());
  for (const auto& [key, rec] : out.turns) {
    if ((key.turn > 0) == hit_class) h.observe(rec.ttft_us);
  }
  return bench::LatencySummary::from(h).mean;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ChatWorkloadConfig wl;
  wl.users = 6;
  wl.turns_per_user = 3;
  wl.system_prompt_tokens = 256;
  wl.turn_prompt_tokens = 32;
  wl.reply_tokens = 8;

  bench::section("prefix reuse: multi-turn chat, cache off vs on");
  std::printf("%zu users x %zu turns, system prompt %zu tok, +%zu tok/turn, "
              "%zu replies\n",
              wl.users, wl.turns_per_user, wl.system_prompt_tokens,
              wl.turn_prompt_tokens, wl.reply_tokens);

  RunOutcome off = run_chat(wl, /*cache_on=*/false);
  RunOutcome on = run_chat(wl, /*cache_on=*/true);

  // Bit-identical outputs are the whole point of verbatim COW + exact
  // streaming-window attach: abort loudly if the cache changed any token.
  assert(off.turns.size() == on.turns.size());
  bool identical = off.turns.size() == on.turns.size();
  for (const auto& [key, rec] : off.turns) {
    const auto it = on.turns.find(key);
    if (it == on.turns.end() || it->second.output != rec.output) {
      identical = false;
      std::fprintf(stderr, "MISMATCH user %zu turn %zu\n", key.user, key.turn);
    }
  }
  if (!identical) {
    std::fprintf(stderr, "cache-on outputs differ from cache-off; failing\n");
    return 1;
  }

  const double cold_off = mean_ttft(off, false);
  const double cold_on = mean_ttft(on, false);
  const double hit_off = mean_ttft(off, true);
  const double hit_on = mean_ttft(on, true);
  const std::size_t total = off.turns.size();
  const std::size_t followups = total - wl.users;
  const double shared_fraction =
      static_cast<double>(followups) / static_cast<double>(total);

  bench::row("", {"cache off", "cache on", "speedup"}, 26, 12);
  bench::row("cold TTFT (ms, mean)",
             {bench::fmt(cold_off / 1000.0, 2), bench::fmt(cold_on / 1000.0, 2),
              bench::fmt(cold_on > 0 ? cold_off / cold_on : 0.0, 2) + "x"},
             26, 12);
  bench::row("hit TTFT (ms, mean)",
             {bench::fmt(hit_off / 1000.0, 2), bench::fmt(hit_on / 1000.0, 2),
              bench::fmt(hit_on > 0 ? hit_off / hit_on : 0.0, 2) + "x"},
             26, 12);
  bench::row("wall (ms)",
             {bench::fmt(off.wall_ms, 0), bench::fmt(on.wall_ms, 0),
              bench::fmt(on.wall_ms > 0 ? off.wall_ms / on.wall_ms : 0.0, 2) +
                  "x"},
             26, 12);
  std::printf("\ncache-on: %zu/%zu requests hit, %zu prompt tokens served "
              "from cache, %zu COW copies, %zu evictions\n",
              on.sched.prefix_hits, total, on.eng.prefix_tokens_reused,
              on.eng.prefix_cow_copies, on.eng.prefix_evictions);
  std::printf("shared-prefix traffic: %.0f%% of requests are follow-up "
              "turns\noutputs bit-identical cache on vs off: yes\n",
              shared_fraction * 100.0);

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"bench\": \"serving_prefix_reuse\",\n"
      "  \"workload\": {\"users\": %zu, \"turns_per_user\": %zu,\n"
      "    \"system_prompt_tokens\": %zu, \"turn_prompt_tokens\": %zu,\n"
      "    \"reply_tokens\": %zu, \"shared_prefix_traffic\": %.2f},\n"
      "  \"cache_off\": {\"cold_ttft_us\": %.1f, \"hit_ttft_us\": %.1f,\n"
      "    \"wall_ms\": %.1f},\n"
      "  \"cache_on\": {\"cold_ttft_us\": %.1f, \"hit_ttft_us\": %.1f,\n"
      "    \"wall_ms\": %.1f, \"prefix_hits\": %zu,\n"
      "    \"prefix_tokens_reused\": %zu, \"cow_copies\": %zu,\n"
      "    \"evictions\": %zu},\n"
      "  \"hit_ttft_speedup\": %.2f,\n"
      "  \"outputs_bit_identical\": true\n"
      "}\n",
      wl.users, wl.turns_per_user, wl.system_prompt_tokens,
      wl.turn_prompt_tokens, wl.reply_tokens, shared_fraction, cold_off,
      hit_off, off.wall_ms, cold_on, hit_on, on.wall_ms,
      on.sched.prefix_hits, on.eng.prefix_tokens_reused,
      on.eng.prefix_cow_copies, on.eng.prefix_evictions,
      hit_on > 0 ? hit_off / hit_on : 0.0);
  std::printf("\n%s", json);
  if (argc > 1) {
    if (std::FILE* f = std::fopen(argv[1], "w")) {
      std::fputs(json, f);
      std::fclose(f);
    }
  }
  return 0;
}
