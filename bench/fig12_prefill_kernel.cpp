// Figure 12: prefill-stage block-sparse attention kernel efficiency.
//
// Paper: at equal sparsity, LServe's iterator-based kernel is ~1.3x faster
// than MInference's implementation, and both trail the oracle
// (dense_latency * (1 - sparsity)). This bench MEASURES our CPU kernels:
// the iterator kernel's trip count is exactly the live-tile count, while
// the branchy (MInference-style) comparator walks every causal tile and
// branches, so the gap between them is the cost of in-loop masking.
#include <cstdio>

#include "attn/block_sparse_prefill.hpp"
#include "attn/dense_attention.hpp"
#include "common.hpp"
#include "numeric/rng.hpp"

using namespace lserve;

namespace {

attn::BlockMask random_mask(std::size_t n, std::size_t tile, double sparsity,
                            std::uint64_t seed) {
  attn::BlockMask mask = attn::BlockMask::causal(n, tile, tile);
  num::Rng rng(seed);
  // Drop causal blocks at random (keep each row's diagonal so outputs stay
  // well-defined) until the requested sparsity is reached.
  const std::size_t q_blocks = mask.q_blocks();
  for (std::size_t qb = 0; qb < q_blocks; ++qb) {
    for (std::size_t kb = 0; kb < qb; ++kb) {  // diagonal kept
      if (rng.next_double() < sparsity) mask.set(qb, kb, false);
    }
  }
  mask.finalize();
  return mask;
}

}  // namespace

int main() {
  const std::size_t n = 1024, d = 64, tile = 64;
  num::Rng rng(3);
  num::Tensor q(n, d), k(n, d), v(n, d), out(n, d);
  for (auto* t : {&q, &k, &v}) {
    for (std::size_t i = 0; i < t->size(); ++i) t->data()[i] = rng.gaussian();
  }
  const float scale = 0.125f;
  const attn::PrefillTiling tiling{tile, tile};

  attn::BlockMask dense_mask = attn::BlockMask::causal(n, tile, tile);
  dense_mask.finalize();
  const double dense_us = bench::time_us([&] {
    attn::block_sparse_prefill(q.view(), k.view(), v.view(), dense_mask,
                               tiling, scale, out.view());
  });

  bench::section(
      "Fig 12: measured prefill attention kernel latency vs sparsity "
      "(CPU, n=1024, d=64, tile=64)");
  std::printf("Dense attention: %.1f us\n\n", dense_us);
  bench::row("Sparsity", {"Oracle(us)", "LServe(us)", "Branchy(us)",
                          "LSrv/Oracle", "Brnchy/LSrv"});
  for (double target : {0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    const attn::BlockMask mask = random_mask(n, tile, target, 71);
    const double real_sparsity = mask.sparsity_vs_causal(n, tile, tile);
    const double oracle = dense_us * (1.0 - real_sparsity);
    const double ours = bench::time_us([&] {
      attn::block_sparse_prefill(q.view(), k.view(), v.view(), mask, tiling,
                                 scale, out.view());
    });
    const double branchy = bench::time_us([&] {
      attn::block_sparse_prefill_branchy(q.view(), k.view(), v.view(), mask,
                                         tiling, scale, out.view());
    });
    bench::row(bench::fmt(100.0 * real_sparsity, 0) + "%",
               {bench::fmt(oracle, 1), bench::fmt(ours, 1),
                bench::fmt(branchy, 1), bench::fmt(ours / oracle, 2),
                bench::fmt(branchy / ours, 2)});
  }
  std::printf(
      "\nShape check: the iterator kernel tracks the oracle closely at\n"
      "every sparsity level (latency ~ dense x (1-sparsity)). On CPU the\n"
      "branchy comparator is within noise of the iterator kernel (branch\n"
      "predictors hide the masked-walk cost); the paper's 1.3x GPU gap\n"
      "comes from warp-divergence and extra index traffic, which is why\n"
      "LServe builds the compressed iterator OUTSIDE the kernel. The\n"
      "structural claim validated here is oracle-tracking: skipped tiles\n"
      "convert 1:1 into saved time.\n");
  return 0;
}
