// Table 6: accuracy vs page-selection reuse interval.
//
// Paper: Llama-3-8B on RULER at 64K; accuracy is flat through reuse
// interval 4-8 and degrades at 16 (86.2 -> 83.2 for the 4096 budget), so
// LServe defaults to 4. Our tracking proxy replays the mechanism: a target
// drifting through the context probed with stale page tables between
// refreshes (see eval/ruler.hpp).
#include <cstdio>

#include "common.hpp"
#include "eval/ruler.hpp"

using namespace lserve;

int main() {
  const std::vector<std::size_t> intervals{1, 2, 4, 8, 16};

  bench::section(
      "Table 6: tracking accuracy (0-100) vs reuse interval, seq 16K");
  {
    std::vector<std::string> header{"Dense"};
    for (auto c : intervals) header.push_back("C=" + std::to_string(c));
    bench::row("Budget", header);
  }
  for (std::size_t budget : {512u, 1024u}) {
    eval::RulerConfig cfg;
    cfg.seq_len = 16384;
    cfg.head_dim = 64;
    cfg.pages.page_size = 64;
    cfg.pages.logical_page_size = 16;
    cfg.trials = 3;
    cfg.policy.kind = eval::PolicyKind::kHierSelect;
    cfg.policy.selector.token_budget = budget;

    std::vector<std::string> cells;
    eval::RulerConfig dense_cfg = cfg;
    dense_cfg.policy.kind = eval::PolicyKind::kDense;
    dense_cfg.reuse_interval = 1;
    cells.push_back(bench::fmt(eval::run_tracking(dense_cfg), 1));
    for (std::size_t c : intervals) {
      cfg.reuse_interval = c;
      cells.push_back(bench::fmt(eval::run_tracking(cfg), 1));
    }
    bench::row("LServe-" + std::to_string(budget), cells);
  }
  std::printf(
      "\nShape check: flat through C=4-8, visible degradation at C=16\n"
      "(paper: 86.2 / 85.6 / 84.8 / 83.2 for C=1/4/8/16 at budget 4096).\n"
      "LServe's default C=4 sits safely in the flat region.\n");
  return 0;
}
