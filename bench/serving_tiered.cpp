// Tiered KV memory bench: how many long-context sessions stay resident
// (and decodable) under a fixed hot-page admission budget, tiering on vs
// off, plus the hot-path decode cost of the pin API itself.
//
// Capacity scenario: a burst of long-context requests runs through the
// real Scheduler with memory.page_budget hot-resident pages. Admission
// and preemption charge hot-tier occupancy only, so the untiered engine
// (hot == total) serializes the burst — a few sessions at a time, the
// rest deferred or preempted. The tiered engine spills cold pages to the
// mmap-backed slot file, keeping hot occupancy at the spill watermark and
// letting the whole burst stay resident. Concurrency is measured as the
// number of sessions that commit a decode token in the same scheduler
// step — sessions actually making forward progress together, which is
// exactly what admission deferral and preemption take away.
//
// Hit-path scenario: a working set that fits entirely in the hot tier is
// decoded with tiering on and off. The token streams must be bit-identical
// and the tiered TPOT must stay within 20% of untiered — the pin API on a
// hot page is a branch plus a pointer copy, not a lock.
//
//   bench_serving_tiered [out.json]        (writes BENCH_tiered.json blob)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "common.hpp"
#include "serve/scheduler.hpp"

using namespace lserve;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::size_t kCtxTokens = 256;   ///< long-context prompt length.
constexpr std::size_t kNewTokens = 48;    ///< decode tail per session.
constexpr std::size_t kSessions = 12;     ///< burst size.
constexpr std::size_t kPageBudget = 256;  ///< hot-resident admission budget.
constexpr std::size_t kHotPages = 128;    ///< tiered spill watermark (dense).
constexpr std::size_t kTpotSteps = 64;    ///< decode samples, hit path.

/// Test-scale LServe geometry (8-token pages, 64-token selector budget).
/// Tiering adds a dense spill watermark below the admission budget and a
/// large cold tier; the admission budget itself is identical either way.
serve::EngineConfig tiered_cfg(bool tiered) {
  serve::EngineConfig ec = baselines::lserve_config(model::tiny());
  ec.dense_pages.page_size = 8;
  ec.dense_pages.logical_page_size = 4;
  ec.streaming = {/*sink_tokens=*/4, /*local_tokens=*/8};
  ec.tiling = {8, 8};
  ec.selector.token_budget = 64;
  ec.prefill_chunk_tokens = 64;
  ec.pool_pages = 512;
  if (tiered) {
    ec.memory.hot_pages = kHotPages;
    ec.memory.cold_bytes = 256ull << 20;
  }
  return ec;
}

/// Session prompts are salted per index so no two sessions share a prefix.
std::vector<std::int32_t> session_prompt(std::size_t session) {
  std::vector<std::int32_t> prompt(kCtxTokens);
  for (std::size_t i = 0; i < kCtxTokens; ++i) {
    prompt[i] =
        static_cast<std::int32_t>((i * 131 + session * 37 + 11) % 251);
  }
  return prompt;
}

struct CapacityOutcome {
  std::size_t peak_sessions = 0;  ///< max sessions decoding in one step.
  std::size_t peak_hot = 0;       ///< max hot pages (== total when untiered).
  std::size_t peak_cold = 0;      ///< max cold pages.
  std::size_t preemptions = 0;
  std::size_t deferred = 0;       ///< step-counted admission stalls.
  std::size_t demotions = 0;
  std::size_t promotions = 0;
  double wall_ms = 0.0;
};

/// Submits the whole burst and steps the scheduler to idle, sampling
/// resident-session and tier occupancy peaks at every step boundary.
CapacityOutcome run_capacity(bool tiered) {
  serve::Engine engine(tiered_cfg(tiered));
  serve::SchedulerConfig sc;
  sc.max_batch = kSessions;
  sc.memory.page_budget = kPageBudget;
  serve::Scheduler sched(engine, sc);
  // Requests that commit a token per scheduler step: continuous batching
  // decodes every resident session each step, so the number of distinct
  // requests in one step's bucket IS decode concurrency.
  std::vector<std::vector<std::uint64_t>> ids_at_step;
  for (std::size_t s = 0; s < kSessions; ++s) {
    serve::Request req;
    req.prompt = session_prompt(s);
    req.max_new_tokens = kNewTokens;
    req.on_token = [&sched, &ids_at_step](std::uint64_t id, std::int32_t,
                                          std::size_t) {
      const std::size_t step = sched.scheduler_stats().steps;
      if (ids_at_step.size() <= step) ids_at_step.resize(step + 1);
      ids_at_step[step].push_back(id);
    };
    sched.submit(req);
  }
  CapacityOutcome out;
  const auto t0 = Clock::now();
  while (sched.step()) {
    const kv::PageAllocator::Occupancy occ = engine.pool_occupancy();
    out.peak_hot = std::max(out.peak_hot, occ.hot_in_use);
    out.peak_cold = std::max(out.peak_cold, occ.cold_in_use);
  }
  for (std::vector<std::uint64_t>& bucket : ids_at_step) {
    std::sort(bucket.begin(), bucket.end());
    const auto last = std::unique(bucket.begin(), bucket.end());
    out.peak_sessions = std::max(
        out.peak_sessions,
        static_cast<std::size_t>(last - bucket.begin()));
  }
  out.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  const serve::SchedulerStats ss = sched.scheduler_stats();
  out.preemptions = ss.preemptions;
  out.deferred = ss.deferred_admissions;
  const kv::TierStats tier = engine.tier_stats();
  out.demotions = tier.demotions;
  out.promotions = tier.pin_promotions + tier.prefetch_promotions;
  return out;
}

struct TpotOutcome {
  double p50_us = 0.0;
  double p95_us = 0.0;
  std::vector<std::int32_t> tokens;  ///< decode stream, for bit-identity.
};

/// One session per configuration, pages all inside the hot tier, the two
/// engines stepped in lockstep (alternating order each round so scheduling
/// jitter lands on both equally): the tiered lane never touches the cold
/// store, so any TPOT delta is pure pin-API overhead.
std::pair<TpotOutcome, TpotOutcome> run_hit_path() {
  struct Lane {
    std::unique_ptr<serve::Engine> engine;
    serve::SequenceId id = 0;
    std::int32_t tok = 0;
    std::vector<double> samples;
    TpotOutcome out;
  };
  Lane lanes[2];  // [0] = untiered, [1] = tiered.
  for (std::size_t i = 0; i < 2; ++i) {
    Lane& lane = lanes[i];
    lane.engine = std::make_unique<serve::Engine>(tiered_cfg(i == 1));
    lane.id = lane.engine->create_sequence();
    const std::vector<std::int32_t> prompt = session_prompt(0);
    lane.tok = lane.engine->prefill(lane.id, prompt);
  }
  constexpr std::size_t kWarmup = 4;
  for (std::size_t step = 0; step < kTpotSteps + kWarmup; ++step) {
    for (std::size_t off = 0; off < 2; ++off) {
      Lane& lane = lanes[(step + off) % 2];
      const auto t0 = Clock::now();
      lane.tok = lane.engine->decode(lane.id, lane.tok);
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count();
      if (step >= kWarmup) lane.samples.push_back(us);
      lane.out.tokens.push_back(lane.tok);
    }
  }
  for (Lane& lane : lanes) {
    const bench::LatencySummary lat =
        bench::LatencySummary::from(lane.samples);
    lane.out.p50_us = lat.p50;
    lane.out.p95_us = lat.p95;
  }
  return {std::move(lanes[0].out), std::move(lanes[1].out)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::section(
      "Tiered KV capacity (model=tiny, " + std::to_string(kSessions) + "x" +
      std::to_string(kCtxTokens) + "-token sessions, budget " +
      std::to_string(kPageBudget) + " hot pages)");
  const CapacityOutcome flat = run_capacity(/*tiered=*/false);
  const CapacityOutcome tier = run_capacity(/*tiered=*/true);
  bench::row("", {"peak sess", "peak hot", "peak cold", "preempt", "defer",
                  "wall ms"},
             26, 11);
  bench::row("no tier (hot == total)",
             {std::to_string(flat.peak_sessions), std::to_string(flat.peak_hot),
              std::to_string(flat.peak_cold), std::to_string(flat.preemptions),
              std::to_string(flat.deferred), bench::fmt(flat.wall_ms, 0)},
             26, 11);
  bench::row("tiered (spill at " + std::to_string(kHotPages) + ")",
             {std::to_string(tier.peak_sessions), std::to_string(tier.peak_hot),
              std::to_string(tier.peak_cold), std::to_string(tier.preemptions),
              std::to_string(tier.deferred), bench::fmt(tier.wall_ms, 0)},
             26, 11);
  const double capacity_ratio =
      flat.peak_sessions > 0
          ? static_cast<double>(tier.peak_sessions) /
                static_cast<double>(flat.peak_sessions)
          : 0.0;
  std::printf("\ncapacity: %.2fx more concurrent sessions at the same "
              "hot-page budget (%zu demotions, %zu promotions)\n",
              capacity_ratio, tier.demotions, tier.promotions);

  bench::section("Hot-path decode (working set fits the hot tier)");
  const auto [flat_tpot, tier_tpot] = run_hit_path();
  const bool identical = flat_tpot.tokens == tier_tpot.tokens;
  const double tpot_ratio =
      flat_tpot.p50_us > 0.0 ? tier_tpot.p50_us / flat_tpot.p50_us : 0.0;
  bench::row("", {"TPOTp50us", "TPOTp95us"}, 26, 11);
  bench::row("no tier",
             {bench::fmt(flat_tpot.p50_us, 1), bench::fmt(flat_tpot.p95_us, 1)},
             26, 11);
  bench::row("tiered",
             {bench::fmt(tier_tpot.p50_us, 1), bench::fmt(tier_tpot.p95_us, 1)},
             26, 11);
  std::printf("\nhit-path TPOT ratio tiered/untiered: %.2fx; decode streams "
              "bit-identical: %s\n",
              tpot_ratio, identical ? "yes" : "NO");

  const bool pass = capacity_ratio >= 2.0 && tpot_ratio <= 1.2 && identical;
  char json[1536];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"bench\": \"serving_tiered\",\n"
      "  \"workload\": {\"sessions\": %zu, \"ctx_tokens\": %zu,\n"
      "    \"new_tokens\": %zu, \"page_budget\": %zu, \"hot_pages\": %zu},\n"
      "  \"no_tier\": {\"peak_sessions\": %zu, \"peak_hot_pages\": %zu,\n"
      "    \"preemptions\": %zu, \"deferred_admissions\": %zu,\n"
      "    \"wall_ms\": %.1f},\n"
      "  \"tiered\": {\"peak_sessions\": %zu, \"peak_hot_pages\": %zu,\n"
      "    \"peak_cold_pages\": %zu, \"preemptions\": %zu,\n"
      "    \"deferred_admissions\": %zu, \"demotions\": %zu,\n"
      "    \"promotions\": %zu, \"wall_ms\": %.1f},\n"
      "  \"capacity_ratio\": %.2f,\n"
      "  \"hit_tpot_us\": {\"no_tier_p50\": %.1f, \"tiered_p50\": %.1f,\n"
      "    \"ratio\": %.2f},\n"
      "  \"outputs_bit_identical\": %s\n"
      "}\n",
      kSessions, kCtxTokens, kNewTokens, kPageBudget, kHotPages,
      flat.peak_sessions, flat.peak_hot, flat.preemptions, flat.deferred,
      flat.wall_ms, tier.peak_sessions, tier.peak_hot, tier.peak_cold,
      tier.preemptions, tier.deferred, tier.demotions, tier.promotions,
      tier.wall_ms, capacity_ratio, flat_tpot.p50_us, tier_tpot.p50_us,
      tpot_ratio, identical ? "true" : "false");
  std::printf("\n%s", json);
  if (argc > 1) {
    if (std::FILE* f = std::fopen(argv[1], "w")) {
      std::fputs(json, f);
      std::fclose(f);
    }
  }
  return pass ? 0 : 1;
}
