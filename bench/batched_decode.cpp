// Batched decode throughput: serial vs thread-pooled Scheduler::step().
//
// LServe's decode-side wins are measured under iteration-level continuous
// batching; sequences in a decode batch are independent, so the per-step
// work is embarrassingly parallel on the batch dimension. This bench pins
// one engine/scheduler per (batch, threads) cell, submits `batch` identical
// seeded requests, and reports the median per-step latency and aggregate
// decode tokens/s. The parallel path is bit-identical to the serial path
// (see Scheduler), so this is a pure wall-clock comparison.
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "common.hpp"
#include "serve/scheduler.hpp"

using namespace lserve;

namespace {

serve::Request make_request(std::size_t prompt_len, std::size_t new_tokens,
                            std::uint64_t salt) {
  serve::Request req;
  req.prompt.resize(prompt_len);
  for (std::size_t i = 0; i < prompt_len; ++i) {
    req.prompt[i] =
        static_cast<std::int32_t>((i * 131 + salt * 31 + 7) % 1021);
  }
  req.max_new_tokens = new_tokens;
  return req;
}

/// Median per-step decode latency (us) at one (batch, threads) point.
double step_latency_us(std::size_t batch, std::size_t threads,
                       std::size_t prompt_len, std::size_t steps) {
  serve::EngineConfig cfg = baselines::lserve_config(model::small());
  cfg.pool_pages = 4096;
  serve::Engine engine(cfg);
  serve::Scheduler sched(engine, batch, threads);
  for (std::size_t b = 0; b < batch; ++b) {
    sched.submit(make_request(prompt_len, steps + 4, b));
  }
  sched.step();  // admission + prefill + first decode, excluded from timing.
  std::vector<double> samples;
  samples.reserve(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    samples.push_back(bench::time_us([&] { sched.step(); }, 1));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  // Optional argv[1]: pooled thread count (default: hardware concurrency).
  std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed > 0) hw = static_cast<std::size_t>(parsed);
  }
  const std::vector<std::size_t> batches{1, 2, 4, 8};
  const std::size_t prompt_len = 256;
  const std::size_t steps = 24;

  bench::section("Batched decode: per-step latency (us), serial vs " +
                 std::to_string(hw) + " threads (model=small)");
  bench::row("batch", {"serial", "pooled", "speedup", "ser tok/s",
                       "par tok/s"});
  for (const std::size_t batch : batches) {
    const double serial = step_latency_us(batch, 1, prompt_len, steps);
    const double pooled = step_latency_us(batch, hw, prompt_len, steps);
    const double b = static_cast<double>(batch);
    bench::row(std::to_string(batch),
               {bench::fmt(serial, 0), bench::fmt(pooled, 0),
                bench::fmt(serial / pooled, 2),
                bench::fmt(1e6 * b / serial, 0),
                bench::fmt(1e6 * b / pooled, 0)});
  }
  std::printf(
      "\nPooled step() distributes the batch over a ThreadPool; outputs,\n"
      "stats and completion order are bit-identical to serial execution.\n");
  return 0;
}
