// Ablation: prefill tile size (TQ x TK) for the block-sparse kernel.
//
// The paper fixes TK to the page size; this ablation measures how tile
// geometry trades mask granularity (finer tiles skip more of a streaming
// mask) against per-tile overheads in the measured CPU kernel.
#include <cstdio>

#include "attn/block_sparse_prefill.hpp"
#include "common.hpp"
#include "numeric/rng.hpp"

using namespace lserve;

int main() {
  const std::size_t n = 1024, d = 64;
  num::Rng rng(5);
  num::Tensor q(n, d), k(n, d), v(n, d), out(n, d);
  for (auto* t : {&q, &k, &v}) {
    for (std::size_t i = 0; i < t->size(); ++i) t->data()[i] = rng.gaussian();
  }
  const float scale = 0.125f;

  bench::section(
      "Ablation: tile size vs streaming-mask prefill latency (CPU, n=1024)");
  bench::row("Tile (TQ=TK)", {"sparsity", "latency(us)", "vs dense"});
  for (std::size_t tile : {16u, 32u, 64u, 128u}) {
    // Λ geometry fixed in TOKENS (64 sink + 128 local) across tile sizes.
    const std::size_t sink_blocks = (64 + tile - 1) / tile;
    const std::size_t local_blocks = std::max<std::size_t>(1, 128 / tile);
    attn::BlockMask mask =
        attn::BlockMask::streaming(n, tile, tile, sink_blocks, local_blocks);
    mask.finalize();
    attn::BlockMask dense = attn::BlockMask::causal(n, tile, tile);
    dense.finalize();
    const attn::PrefillTiling tiling{tile, tile};
    const double sparse_us = bench::time_us([&] {
      attn::block_sparse_prefill(q.view(), k.view(), v.view(), mask, tiling,
                                 scale, out.view());
    });
    const double dense_us = bench::time_us([&] {
      attn::block_sparse_prefill(q.view(), k.view(), v.view(), dense, tiling,
                                 scale, out.view());
    });
    bench::row(std::to_string(tile),
               {bench::fmt(mask.sparsity_vs_causal(n, tile, tile), 2),
                bench::fmt(sparse_us, 1),
                bench::fmt(dense_us / sparse_us, 2) + "x"});
  }
  std::printf(
      "\nFinding: finer tiles expose more sparsity from the same Λ mask\n"
      "(higher skip ratio) but add per-tile bookkeeping; 32-64 token tiles\n"
      "are the sweet spot, matching the paper's page-size-aligned TK.\n");
  return 0;
}
