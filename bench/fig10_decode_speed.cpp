// Figure 10: end-to-end decoding speed across systems, models and GPUs.
//
// Paper: relative decode throughput normalized to LServe on four panels
// (A100 x {Llama-3-8B, Llama-2-7B, Minitron-4B}, L40S x Llama-3-8B);
// LServe averages 1.5x over vLLM on GQA models and >2x on MHA Llama-2-7B;
// fp16 baselines OOM at the longest contexts. Regenerated with the
// roofline cost model + KV-memory accounting.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "costmodel/gpu_spec.hpp"

using namespace lserve;

namespace {

void panel(const cost::GpuSpec& spec, double gpu_mem_gb,
           const model::ModelConfig& m,
           const std::vector<std::size_t>& lengths) {
  bench::section("Fig 10 panel: " + spec.name + " / " + m.name +
                 " (throughput relative to LServe; higher is better)");
  {
    std::vector<std::string> header;
    for (auto n : lengths) header.push_back(bench::klen(n));
    header.push_back("Geomean");
    bench::row("System", header);
  }
  const cost::ServingPolicy lserve = cost::lserve_policy();
  for (const auto& sys : bench::decode_lineup()) {
    std::vector<std::string> cells;
    double log_sum = 0.0;
    int count = 0;
    for (std::size_t n : lengths) {
      if (bench::kv_bytes(m, sys.policy, n, 1) > gpu_mem_gb * 1e9 * 0.7) {
        cells.push_back("OOM");
        continue;
      }
      const double t_sys =
          cost::decode_step_cost(spec, m, sys.policy, n, 1).total_us() +
          bench::kHostOverheadUs;
      const double t_ls =
          cost::decode_step_cost(spec, m, lserve, n, 1).total_us() +
          bench::kHostOverheadUs;
      const double rel = t_ls / t_sys;  // throughput relative to LServe
      cells.push_back(bench::fmt(rel, 2));
      log_sum += std::log(rel);
      ++count;
    }
    cells.push_back(count > 0 ? bench::fmt(std::exp(log_sum / count), 2)
                              : "-");
    bench::row(sys.name, cells);
  }
}

}  // namespace

int main() {
  panel(cost::a100(), 80.0, model::llama3_8b(),
        {65536, 98304, 131072, 163840, 196608, 229376, 262144, 327680});
  panel(cost::a100(), 80.0, model::llama2_7b(),
        {16384, 32768, 65536, 98304, 131072, 163840, 196608, 229376});
  panel(cost::a100(), 80.0, model::minitron_4b(),
        {65536, 98304, 131072, 163840, 196608, 229376, 262144, 524288});
  panel(cost::l40s(), 48.0, model::llama3_8b(),
        {32768, 65536, 98304, 131072, 163840, 196608, 229376, 262144});
  std::printf(
      "\nShape check: LServe = 1.00 everywhere; vLLM geomean ~0.5-0.8 (i.e.\n"
      "LServe 1.3-2.1x faster), gap widening with context; MHA Llama-2-7B\n"
      "shows the largest gap; fp16 baselines hit OOM at long context on "
      "L40S\nand on Llama-2-7B (paper Fig 10).\n");
  return 0;
}
