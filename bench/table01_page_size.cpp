// Table 1: page size vs decoding latency under quantized KV (QServe-like).
//
// Paper: Llama-3-8B, batch 32, A100; per-step decode latency for page sizes
// 16/32/64/128, sequence lengths 512..8192. Max slowdown of page 16 vs 128
// is 1.52x; page 64 is within 1%. Small quantized pages waste DRAM bursts.
#include <cstdio>

#include "common.hpp"
#include "costmodel/gpu_spec.hpp"

using namespace lserve;

int main() {
  const cost::GpuSpec spec = cost::a100();
  const model::ModelConfig m = model::llama3_8b();
  const std::vector<std::size_t> pages{16, 32, 64, 128};
  const std::vector<std::size_t> seqs{512, 1024, 2048, 4096, 8192};

  bench::section(
      "Table 1: per-step decode latency (ms) vs page size (QServe-like, "
      "Llama-3-8B, A100, bs=32, KV4)");
  {
    std::vector<std::string> header;
    for (auto p : pages) header.push_back("page " + std::to_string(p));
    bench::row("Seq len", header);
  }

  std::vector<double> max_slowdown(pages.size(), 0.0);
  for (std::size_t seq : seqs) {
    std::vector<double> ms;
    for (std::size_t page : pages) {
      cost::ServingPolicy p = cost::qserve_policy();
      p.page_size = page;
      p.logical_page_size = page;
      ms.push_back(
          cost::decode_step_cost(spec, m, p, seq, 32).total_us() / 1e3);
    }
    std::vector<std::string> cells;
    for (double v : ms) cells.push_back(bench::fmt(v, 1) + " ms");
    bench::row(std::to_string(seq), cells);
    for (std::size_t i = 0; i < pages.size(); ++i) {
      max_slowdown[i] = std::max(max_slowdown[i], ms[i] / ms.back());
    }
  }
  {
    std::vector<std::string> cells;
    for (double v : max_slowdown) cells.push_back(bench::fmt(v, 2) + "x");
    bench::row("Max Slowdown", cells);
  }
  std::printf(
      "\nShape check: slowdown of small pages grows with sequence length;\n"
      "page 16 max ~1.5x, page 64 within a few %% of page 128 (paper: 1.52x "
      "/ 1.01x).\n");
  return 0;
}
