// Ablation: fraction of attention heads converted to streaming heads.
//
// The paper fixes 50%; this sweep shows the efficiency/accuracy frontier:
// decode and prefill get monotonically cheaper with more streaming heads,
// while the calibration gates of a mixed head population tell us how many
// heads can stream before retrieval-dependent heads get converted.
#include <cstdio>

#include "common.hpp"
#include "costmodel/gpu_spec.hpp"
#include "serve/engine.hpp"

using namespace lserve;

int main() {
  const cost::GpuSpec spec = cost::a100();
  const model::ModelConfig m = model::llama3_8b();

  bench::section(
      "Ablation: streaming-head fraction vs modeled latency (Llama-3-8B, "
      "A100, 128K)");
  bench::row("Fraction", {"decode ms", "prefill s", "KV GB"});
  for (double frac : {0.0, 0.25, 0.5, 0.75}) {
    cost::ServingPolicy p = cost::lserve_policy();
    p.streaming_fraction = frac;
    const double decode_ms =
        cost::decode_step_cost(spec, m, p, 131072, 1).total_us() / 1e3;
    const double prefill_s =
        cost::prefill_cost(spec, m, p, 131072, 1).total_us() / 1e6;
    const double kv_gb = bench::kv_bytes(m, p, 131072, 1) / 1e9;
    bench::row(bench::fmt(frac, 2),
               {bench::fmt(decode_ms, 2), bench::fmt(prefill_s, 1),
                bench::fmt(kv_gb, 2)});
  }

  // Accuracy side: calibrate a mixed head population (half planted as
  // retrieval-dependent) and report how many retrieval heads would be
  // mis-converted at each target fraction.
  bench::section(
      "Ablation: mis-converted retrieval heads vs target fraction "
      "(calibrated gates, tiny geometry)");
  serve::EngineConfig cfg;
  cfg.model = model::small();
  cfg.streaming = {32, 96};
  cfg.dense_pages.page_size = 16;
  cfg.dense_pages.logical_page_size = 16;
  serve::Engine engine(cfg);
  const std::vector<float> gates = engine.calibrate_head_kinds();
  bench::row("Fraction", {"streaming", "mis-converted"});
  for (double frac : {0.25, 0.5, 0.75}) {
    const auto kinds = sparse::classify_by_quantile(gates, frac);
    std::size_t streaming = 0, mistakes = 0;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      if (kinds[i] == kv::HeadKind::kStreaming) {
        ++streaming;
        // Even indices are the planted retrieval-dependent heads.
        if (i % 2 == 0) ++mistakes;
      }
    }
    bench::row(bench::fmt(frac, 2),
               {std::to_string(streaming), std::to_string(mistakes)});
  }
  std::printf(
      "\nFinding: latency falls monotonically with the streaming fraction,\n"
      "but pushing past the true retrieval/streaming split (50%% in the\n"
      "calibration population) starts converting retrieval heads — the\n"
      "accuracy cliff the paper avoids by stopping at 50%%.\n");
  return 0;
}
