// Table 7 (artifact appendix): generation latency, vLLM vs LServe.
//
// Paper reference numbers (A100, Llama-3-8B, ms/step):
//   64K: 12.51 vs 11.49 (1.09x) ... 320K: 27.45 vs 15.10 (1.82x).
// The speedup grows with context because vLLM's decode attention scales
// linearly while LServe's is bounded by the token budget.
#include <cstdio>

#include "common.hpp"
#include "costmodel/gpu_spec.hpp"

using namespace lserve;

int main() {
  const cost::GpuSpec spec = cost::a100();
  const model::ModelConfig m = model::llama3_8b();
  const std::vector<std::size_t> lengths{65536,  98304,  131072, 163840,
                                         196608, 229376, 262144, 327680};
  const double paper_vllm[] = {12.51, 14.49, 16.34, 18.20,
                               21.73, 21.96, 23.72, 27.45};
  const double paper_lserve[] = {11.49, 12.05, 12.74, 12.88,
                                 13.30, 13.73, 14.20, 15.10};

  // Host-side serving overhead added to BOTH systems (see common.hpp);
  // the trend comes from the kernel model.
  const double host_ms = bench::kHostOverheadUs / 1e3;

  bench::section(
      "Table 7: generation latency (ms/step), vLLM vs LServe (Llama-3-8B, "
      "A100)");
  bench::row("Seq Length", {"vLLM", "LServe", "Speedup", "paper-v",
                            "paper-L", "paper-x"});
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    const std::size_t n = lengths[i];
    const double tv =
        cost::decode_step_cost(spec, m, cost::vllm_policy(), n, 1).total_us() /
            1e3 +
        host_ms;
    const double tl =
        cost::decode_step_cost(spec, m, cost::lserve_policy(), n, 1)
                .total_us() /
            1e3 +
        host_ms;
    bench::row(bench::klen(n),
               {bench::fmt(tv, 2), bench::fmt(tl, 2),
                bench::fmt(tv / tl, 2) + "x", bench::fmt(paper_vllm[i], 2),
                bench::fmt(paper_lserve[i], 2),
                bench::fmt(paper_vllm[i] / paper_lserve[i], 2) + "x"});
  }
  std::printf(
      "\nShape check: LServe latency nearly flat in context; vLLM grows\n"
      "linearly; the speedup ratio rises from ~1.1x at 64K towards ~1.8x\n"
      "at 320K, matching the paper's trend column for column.\n");
  return 0;
}
