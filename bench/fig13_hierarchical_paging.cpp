// Figure 13: hierarchical paging preserves NIAH accuracy on large physical
// pages WITHOUT increasing the token budget.
//
// Paper: NP in {16,32,64} with NL=16 and a fixed 3072-token budget all
// match the NP=16 flat baseline. Contrast with Fig 6, where flat selection
// at NP=64 collapses. Budgets are scaled with the grid's context lengths.
#include <cstdio>

#include "common.hpp"
#include "eval/niah.hpp"

using namespace lserve;

namespace {

double run_grid(std::size_t np, std::size_t nl, std::size_t budget,
                bool hierarchical, std::string* art = nullptr) {
  eval::NiahConfig cfg;
  cfg.lengths = {8192, 16384, 32768, 65536};
  cfg.depths = {0.0, 0.11, 0.22, 0.33, 0.44, 0.56, 0.67, 0.78, 0.89};
  cfg.head_dim = 64;
  cfg.pages.page_size = np;
  cfg.pages.logical_page_size = nl;
  cfg.policy.kind = hierarchical ? eval::PolicyKind::kHierSelect
                                 : eval::PolicyKind::kFlatSelect;
  cfg.policy.selector.token_budget = budget;
  const eval::NiahResult r = eval::run_niah(cfg);
  if (art != nullptr) *art = r.ascii_heatmap();
  return r.mean_accuracy();
}

}  // namespace

int main() {
  const std::size_t budget = 768;  // fixed across page sizes (paper: 3072)
  std::string art;

  const double flat16 = run_grid(16, 16, budget, false, &art);
  bench::section("Fig 13 reference: NP=16 flat (Quest granularity), budget "
                 + std::to_string(budget));
  std::printf("%s  mean accuracy: %.3f\n", art.c_str(), flat16);

  for (std::size_t np : {16u, 32u, 64u}) {
    const double acc = run_grid(np, 16, budget, true, &art);
    bench::section("Fig 13(" + std::string(1, 'a' + (np == 16 ? 0 : np == 32 ? 1 : 2)) +
                   "): NP=" + std::to_string(np) + ", NL=16, budget " +
                   std::to_string(budget) + " (hierarchical)");
    std::printf("%s  mean accuracy: %.3f\n", art.c_str(), acc);
  }

  const double flat64 = run_grid(64, 64, budget, false, nullptr);
  std::printf(
      "\nShape check: hierarchical NP=64/NL=16 matches the NP=16 reference\n"
      "at the SAME budget (paper Fig 13), while flat NP=64 collapses to "
      "%.3f\n(the Fig 6 failure).\n",
      flat64);
  return 0;
}
