// Figure 16: end-to-end decode speedup breakdown (Llama-3-8B, bs=1, A100).
//
// Paper: normalized throughput of dense / +50% streaming heads / +dynamic
// sparsity / LServe. Static sparsity helps most at short contexts (up to
// 1.7x); dynamic sparsity dominates at long contexts (up to 4.5x e2e,
// 7.7x at 256K when combined); naive dynamic sparsity *loses* at 4-8K
// (selector overhead: 0.94/0.89 relative) while LServe avoids the
// regression by skipping selection when the budget covers the context.
#include <cstdio>

#include "common.hpp"
#include "costmodel/gpu_spec.hpp"

using namespace lserve;

namespace {

cost::ServingPolicy dense_policy() {
  cost::ServingPolicy p = cost::vllm_policy();
  p.weight_bits = 16;
  return p;
}

cost::ServingPolicy streaming_policy() {
  cost::ServingPolicy p = dense_policy();
  p.streaming_fraction = 0.5;
  return p;
}

cost::ServingPolicy dynamic_policy() {
  cost::ServingPolicy p = dense_policy();
  p.dynamic_decode = true;
  p.token_budget = 4096;
  p.logical_page_size = 16;
  p.reuse_interval = 4;
  // Naive dynamic sparsity runs the selector even when it selects
  // everything — the source of the short-context regression in Fig 16.
  p.skip_selector_when_covered = false;
  return p;
}

cost::ServingPolicy lserve_breakdown_policy() {
  cost::ServingPolicy p = dynamic_policy();
  p.streaming_fraction = 0.5;
  p.skip_selector_when_covered = true;  // offline-profiled sparse patterns
  return p;
}

}  // namespace

int main() {
  const cost::GpuSpec spec = cost::a100();
  const model::ModelConfig m = model::llama3_8b();
  const std::vector<std::size_t> lengths{4096,  8192,   16384, 32768,
                                         65536, 131072, 262144};

  bench::section(
      "Fig 16: normalized decode throughput (dense = 1.00), Llama-3-8B, "
      "A100, bs=1");
  {
    std::vector<std::string> header;
    for (auto n : lengths) header.push_back(bench::klen(n));
    bench::row("Variant", header);
  }
  std::vector<double> dense_us;
  for (std::size_t n : lengths) {
    dense_us.push_back(
        cost::decode_step_cost(spec, m, dense_policy(), n, 1).total_us());
  }
  for (const auto& [name, policy] :
       std::vector<std::pair<std::string, cost::ServingPolicy>>{
           {"Dense Attention", dense_policy()},
           {"+50% Streaming Heads", streaming_policy()},
           {"+Dynamic (4K budget)", dynamic_policy()},
           {"LServe", lserve_breakdown_policy()}}) {
    std::vector<std::string> cells;
    for (std::size_t i = 0; i < lengths.size(); ++i) {
      const double us =
          cost::decode_step_cost(spec, m, policy, lengths[i], 1).total_us();
      cells.push_back(bench::fmt(dense_us[i] / us, 2));
    }
    bench::row(name, cells);
  }
  std::printf(
      "\nShape check: streaming heads help modestly everywhere; naive\n"
      "dynamic sparsity dips below 1.0 at 4-8K (paper: 0.94/0.89) and wins\n"
      "big at 256K; LServe compounds both without the short-context\n"
      "regression (paper: up to 7.7x total at 256K).\n");
  return 0;
}
