// Figure 6: the page-size dilemma for query-aware KV selection.
//
// Paper: Llama-3-8B NIAH grids. Quest-style (flat) selection is nearly
// lossless at page 16 + budget 4096 but fails as pages grow to 32/64, and
// linearly scaling the token budget with the page size does NOT recover
// accuracy. Our grids run the same policies over planted haystacks with
// distractor tokens (DESIGN.md §2); lengths and budgets are scaled down
// proportionally (budget/length ratio matches the paper's 4096/256K regime
// at the grid's longest context).
#include <cstdio>

#include "common.hpp"
#include "eval/niah.hpp"

using namespace lserve;

namespace {

eval::NiahConfig base_grid() {
  eval::NiahConfig cfg;
  cfg.lengths = {8192, 16384, 32768, 65536};
  cfg.depths = {0.0, 0.11, 0.22, 0.33, 0.44, 0.56, 0.67, 0.78, 0.89};
  cfg.head_dim = 64;
  return cfg;
}

void run_panel(const char* title, eval::PolicyKind kind, std::size_t page,
               std::size_t budget) {
  eval::NiahConfig cfg = base_grid();
  cfg.pages.page_size = page;
  cfg.pages.logical_page_size = page;  // flat: one logical page per page
  cfg.policy.kind = kind;
  cfg.policy.selector.token_budget = budget;
  const eval::NiahResult r = eval::run_niah(cfg);
  bench::section(title);
  std::printf("%s", r.ascii_heatmap().c_str());
  std::printf("  mean accuracy: %.3f\n", r.mean_accuracy());
}

}  // namespace

int main() {
  run_panel("Fig 6(a): dense attention", eval::PolicyKind::kDense, 16, 0);
  run_panel("Fig 6(b): page 16, budget 1024 (paper: 16 / 4096)",
            eval::PolicyKind::kFlatSelect, 16, 1024);
  run_panel("Fig 6(c): page 32, budget 1024 (paper: 32 / 4096)",
            eval::PolicyKind::kFlatSelect, 32, 1024);
  run_panel("Fig 6(d): page 64, budget 1024 (paper: 64 / 4096)",
            eval::PolicyKind::kFlatSelect, 64, 1024);
  run_panel("Fig 6(e): page 32, budget 2048 (paper: 32 / 8192)",
            eval::PolicyKind::kFlatSelect, 32, 2048);
  run_panel("Fig 6(f): page 64, budget 4096 (paper: 64 / 16384)",
            eval::PolicyKind::kFlatSelect, 64, 4096);
  std::printf(
      "\nShape check: (b) matches (a); (c),(d) degrade with page size; the\n"
      "scaled budgets in (e),(f) do not restore (b)'s accuracy.\n");
  return 0;
}
