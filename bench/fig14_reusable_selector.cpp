// Figure 14: page-selection overhead and the reusable page selector.
//
// Paper: with a 4K budget the sparse attention kernel is constant-time but
// the selector grows linearly with context; at 128K the vanilla selector
// (0.24 ms) is 2x the attention kernel (0.12 ms). Reusing the selection
// across 4 queries cuts the overhead 4x. Regenerated with the cost model
// (GPU scale) plus a measured CPU cross-check of selector linearity.
#include <cstdio>

#include "common.hpp"
#include "costmodel/gpu_spec.hpp"
#include "eval/metrics.hpp"
#include "sparse/hierarchical_selector.hpp"

using namespace lserve;

int main() {
  const cost::GpuSpec spec = cost::a100();
  const model::ModelConfig m = model::llama3_8b();
  const std::vector<std::size_t> lengths{8192,  16384, 32768,
                                         65536, 131072, 262144};

  for (const auto& [title, reuse] :
       std::vector<std::pair<std::string, std::size_t>>{
           {"Fig 14(a): vanilla page selector (reuse=1)", 1},
           {"Fig 14(b): reusable page selector (reuse=4)", 4}}) {
    cost::ServingPolicy p = cost::lserve_policy();
    p.reuse_interval = reuse;
    bench::section(title + " — per-step latency (ms), Llama-3-8B, A100");
    bench::row("Context", {"Selector", "SparseAttn", "Sel/Attn"});
    for (std::size_t n : lengths) {
      const cost::StageBreakdown b = cost::decode_step_cost(spec, m, p, n, 1);
      bench::row(bench::klen(n),
                 {bench::fmt(b.selector_us / 1e3, 3),
                  bench::fmt(b.attention_us / 1e3, 3),
                  b.attention_us > 0
                      ? bench::fmt(b.selector_us / b.attention_us, 2)
                      : "-"});
    }
  }

  // Measured CPU cross-check: hierarchical scoring cost is linear in the
  // number of logical pages (the same law the GPU model charges).
  bench::section(
      "Measured (CPU): hierarchical selector scoring time vs context");
  bench::row("Context", {"us/selection", "logical pages"});
  kv::PageConfig pages;
  pages.page_size = 64;
  pages.logical_page_size = 16;
  pages.head_dim = 64;
  for (std::size_t n : {8192u, 16384u, 32768u, 65536u}) {
    kv::PageAllocator alloc(pages, n / 64 + 2);
    kv::HeadCache head;
    model::StreamConfig sc;
    sc.n_tokens = n;
    sc.head_dim = 64;
    model::TokenStream stream = model::smooth_stream(sc);
    eval::fill_head_cache(alloc, head, stream);
    std::vector<float> q(64, 0.5f);
    sparse::PageSelectorConfig cfg;
    cfg.token_budget = 1024;
    const double us = bench::time_us([&] {
      auto table = sparse::select_pages_hierarchical(alloc, head, q.data(),
                                                     cfg);
      (void)table;
    });
    bench::row(bench::klen(n),
               {bench::fmt(us, 1),
                std::to_string(
                    sparse::hierarchical_selector_scored_pages(alloc, head))});
  }
  std::printf(
      "\nShape check: vanilla selector latency linear in context and\n"
      "overtaking sparse attention around 64-128K (paper: 0.24 ms vs 0.12 "
      "ms\nat 128K); reuse=4 divides selector time by 4; measured CPU "
      "selector\nscales linearly with scored logical pages.\n");
  return 0;
}
