// Table 5: end-to-end comparison with Quest (Llama-2-7B, MHA).
//
// Paper: LServe beats Quest in prefill (1.6-2.1x) and decode (1.3-1.5x)
// at 4K-64K; Quest OOMs at 64K (fp16 KV for the full cache plus metadata).
// Quest's costs come from its policy: fp16 KV on 16-token pages (paying the
// Table-1 bandwidth penalty), per-step page selection (no reuse), dense
// prefill.
#include <cstdio>

#include "common.hpp"
#include "costmodel/gpu_spec.hpp"

using namespace lserve;

int main() {
  const cost::GpuSpec spec = cost::a100();
  const model::ModelConfig m = model::llama2_7b();
  const std::vector<std::size_t> lengths{4096, 8192, 16384, 32768, 65536};
  const cost::ServingPolicy quest = cost::quest_policy();
  const cost::ServingPolicy lserve = cost::lserve_policy();
  // Quest on A100-40GB as in the Quest paper's typical setup; the paper's
  // OOM at 64K reflects fp16 KV plus fragmentation. Model it with a 40GB
  // budget at 70% usable.
  const double quest_mem_budget = 40.0 * 1e9 * 0.7;

  bench::section("Table 5: prefill latency (s), Quest vs LServe (Llama-2-7B)");
  {
    std::vector<std::string> header;
    for (auto n : lengths) header.push_back(bench::klen(n));
    bench::row("System", header);
  }
  std::vector<std::string> quest_cells, lserve_cells, speedup_cells;
  for (std::size_t n : lengths) {
    const bool oom = bench::kv_bytes(m, quest, n, 1) > quest_mem_budget;
    const double tq = cost::prefill_cost(spec, m, quest, n, 1).total_us();
    const double tl = cost::prefill_cost(spec, m, lserve, n, 1).total_us();
    quest_cells.push_back(oom ? "OOM" : bench::fmt(tq / 1e6, 2));
    lserve_cells.push_back(bench::fmt(tl / 1e6, 2));
    speedup_cells.push_back(oom ? "/" : bench::fmt(tq / tl, 1) + "x");
  }
  bench::row("Quest", quest_cells);
  bench::row("LServe", lserve_cells);
  bench::row("Speedup", speedup_cells);

  bench::section("Table 5: decode latency (ms/step), Quest vs LServe");
  quest_cells.clear();
  lserve_cells.clear();
  speedup_cells.clear();
  for (std::size_t n : lengths) {
    const bool oom = bench::kv_bytes(m, quest, n, 1) > quest_mem_budget;
    const double tq =
        cost::decode_step_cost(spec, m, quest, n, 1).total_us() +
        bench::kHostOverheadUs;
    const double tl =
        cost::decode_step_cost(spec, m, lserve, n, 1).total_us() +
        bench::kHostOverheadUs;
    quest_cells.push_back(oom ? "OOM" : bench::fmt(tq / 1e3, 2));
    lserve_cells.push_back(bench::fmt(tl / 1e3, 2));
    speedup_cells.push_back(oom ? "/" : bench::fmt(tq / tl, 1) + "x");
  }
  {
    std::vector<std::string> header;
    for (auto n : lengths) header.push_back(bench::klen(n));
    bench::row("System", header);
  }
  bench::row("Quest", quest_cells);
  bench::row("LServe", lserve_cells);
  bench::row("Speedup", speedup_cells);

  std::printf(
      "\nShape check: LServe ahead in both stages at every length (paper:\n"
      "prefill 1.6-2.1x, decode 1.3-1.5x); Quest runs out of memory at the\n"
      "longest context while LServe (KV4 + evicted streaming pages) "
      "fits.\n");
  return 0;
}
