// Figure 11: end-to-end prefilling speed across serving frameworks.
//
// Paper: prefill throughput normalized to LServe on Llama-3-8B and
// Llama-2-7B (A100). LServe averages 1.8x over vLLM on Llama-2-7B and is
// ahead of MInference/DuoAttention; MInference-style dynamic prefill
// sparsity is additionally activated inside LServe beyond 128K.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "costmodel/gpu_spec.hpp"

using namespace lserve;

namespace {

double prefill_us(const cost::GpuSpec& spec, const model::ModelConfig& m,
                  cost::ServingPolicy p, std::size_t n) {
  // LServe activates MInference-style prefill sparsity beyond 128K (§4.3).
  if (p.streaming_fraction > 0.0 && p.dynamic_decode && n >= 131072) {
    p.dynamic_prefill = true;
    p.prefill_kept_fraction = 0.5;
  }
  return cost::prefill_cost(spec, m, p, n, 1).total_us();
}

void panel(const model::ModelConfig& m,
           const std::vector<std::size_t>& lengths, double gpu_mem_gb) {
  const cost::GpuSpec spec = cost::a100();
  bench::section("Fig 11 panel: A100 / " + m.name +
                 " (prefill throughput relative to LServe)");
  {
    std::vector<std::string> header;
    for (auto n : lengths) header.push_back(bench::klen(n));
    header.push_back("Geomean");
    bench::row("System", header);
  }
  const std::vector<bench::System> systems{
      {"QServe", cost::qserve_policy()},
      {"vLLM", cost::vllm_policy()},
      {"DuoAttention", cost::duo_attention_policy()},
      {"MInference", cost::minference_policy()},
      {"LServe", cost::lserve_policy()}};
  for (const auto& sys : systems) {
    std::vector<std::string> cells;
    double log_sum = 0.0;
    int count = 0;
    for (std::size_t n : lengths) {
      if (bench::kv_bytes(m, sys.policy, n, 1) > gpu_mem_gb * 1e9 * 0.7) {
        cells.push_back("OOM");
        continue;
      }
      const double rel = prefill_us(spec, m, cost::lserve_policy(), n) /
                         prefill_us(spec, m, sys.policy, n);
      cells.push_back(bench::fmt(rel, 2));
      log_sum += std::log(rel);
      ++count;
    }
    cells.push_back(count > 0 ? bench::fmt(std::exp(log_sum / count), 2)
                              : "-");
    bench::row(sys.name, cells);
  }
}

}  // namespace

int main() {
  panel(model::llama3_8b(), {65536, 98304, 131072, 196608, 262144, 327680},
        80.0);
  panel(model::llama2_7b(), {16384, 32768, 65536, 98304, 131072, 163840},
        80.0);
  std::printf(
      "\nShape check: LServe fastest overall (paper: up to 2.9x over vLLM "
      "at long\ncontext, ~1.8x average on Llama-2-7B); DuoAttention closest "
      "competitor;\nvLLM/QServe fall behind as attention dominates.\n");
  return 0;
}
