// google-benchmark microbenchmarks for the hot kernels: block-sparse
// prefill (iterator vs branchy vs dense), paged sparse decode (full vs
// pruned vs streaming tables), quantized load paths, and selector scoring.
//
// These complement the table-generating benches with statistically
// rigorous per-kernel timings (use --benchmark_filter=... to narrow).
#include <benchmark/benchmark.h>

#include "attn/block_sparse_prefill.hpp"
#include "attn/decode_attention.hpp"
#include "eval/metrics.hpp"
#include "model/workload.hpp"
#include "numeric/quant.hpp"
#include "numeric/rng.hpp"
#include "sparse/hierarchical_selector.hpp"
#include "sparse/quest_selector.hpp"

namespace {

using namespace lserve;

struct PrefillFixture {
  num::Tensor q, k, v, out;
  PrefillFixture(std::size_t n, std::size_t d)
      : q(n, d), k(n, d), v(n, d), out(n, d) {
    num::Rng rng(7);
    for (auto* t : {&q, &k, &v}) {
      for (std::size_t i = 0; i < t->size(); ++i) {
        t->data()[i] = rng.gaussian();
      }
    }
  }
};

void BM_PrefillDenseCausal(benchmark::State& state) {
  const std::size_t n = state.range(0);
  PrefillFixture fix(n, 64);
  attn::BlockMask mask = attn::BlockMask::causal(n, 64, 64);
  mask.finalize();
  for (auto _ : state) {
    attn::block_sparse_prefill(fix.q.view(), fix.k.view(), fix.v.view(),
                               mask, {64, 64}, 0.125f, fix.out.view());
    benchmark::DoNotOptimize(fix.out.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PrefillDenseCausal)->Arg(256)->Arg(512)->Arg(1024)->Complexity();

void BM_PrefillStreamingMask(benchmark::State& state) {
  const std::size_t n = state.range(0);
  PrefillFixture fix(n, 64);
  attn::BlockMask mask = attn::BlockMask::streaming(n, 64, 64, 1, 2);
  mask.finalize();
  for (auto _ : state) {
    attn::block_sparse_prefill(fix.q.view(), fix.k.view(), fix.v.view(),
                               mask, {64, 64}, 0.125f, fix.out.view());
    benchmark::DoNotOptimize(fix.out.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PrefillStreamingMask)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Complexity();

void BM_PrefillBranchyStreamingMask(benchmark::State& state) {
  const std::size_t n = state.range(0);
  PrefillFixture fix(n, 64);
  attn::BlockMask mask = attn::BlockMask::streaming(n, 64, 64, 1, 2);
  mask.finalize();
  for (auto _ : state) {
    attn::block_sparse_prefill_branchy(fix.q.view(), fix.k.view(),
                                       fix.v.view(), mask, {64, 64}, 0.125f,
                                       fix.out.view());
    benchmark::DoNotOptimize(fix.out.data());
  }
}
BENCHMARK(BM_PrefillBranchyStreamingMask)->Arg(1024)->Arg(2048);

struct DecodeFixture {
  kv::PageAllocator alloc;
  kv::HeadCache head;
  std::vector<float> q;
  std::vector<float> out;

  DecodeFixture(std::size_t n, num::KvDtype dtype)
      : alloc(
            [&] {
              kv::PageConfig c;
              c.page_size = 64;
              c.logical_page_size = 16;
              c.head_dim = 64;
              c.dtype = dtype;
              return c;
            }(),
            n / 64 + 2),
        q(64, 0.3f),
        out(64) {
    model::StreamConfig sc;
    sc.n_tokens = n;
    sc.head_dim = 64;
    const model::TokenStream stream = model::smooth_stream(sc);
    eval::fill_head_cache(alloc, head, stream);
  }
};

void BM_DecodeFullTable(benchmark::State& state) {
  DecodeFixture fix(state.range(0), num::KvDtype::kFp16);
  const auto table = kv::full_page_table(fix.head.view(fix.alloc));
  for (auto _ : state) {
    attn::sparse_paged_decode(fix.alloc, table, fix.head.tokens(),
                              fix.q.data(), 64, 0.125f, fix.out.data());
    benchmark::DoNotOptimize(fix.out.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DecodeFullTable)
    ->Arg(4096)
    ->Arg(8192)
    ->Arg(16384)
    ->Complexity();

void BM_DecodePrunedTable(benchmark::State& state) {
  DecodeFixture fix(state.range(0), num::KvDtype::kFp16);
  sparse::PageSelectorConfig cfg;
  cfg.token_budget = 1024;
  const auto table = sparse::select_pages_hierarchical(fix.alloc, fix.head,
                                                       fix.q.data(), cfg);
  for (auto _ : state) {
    attn::sparse_paged_decode(fix.alloc, table, fix.head.tokens(),
                              fix.q.data(), 64, 0.125f, fix.out.data());
    benchmark::DoNotOptimize(fix.out.data());
  }
}
BENCHMARK(BM_DecodePrunedTable)->Arg(4096)->Arg(8192)->Arg(16384);

void BM_DecodeInt4Table(benchmark::State& state) {
  DecodeFixture fix(state.range(0), num::KvDtype::kInt4);
  const auto table = kv::full_page_table(fix.head.view(fix.alloc));
  for (auto _ : state) {
    attn::sparse_paged_decode(fix.alloc, table, fix.head.tokens(),
                              fix.q.data(), 64, 0.125f, fix.out.data());
    benchmark::DoNotOptimize(fix.out.data());
  }
}
BENCHMARK(BM_DecodeInt4Table)->Arg(4096)->Arg(8192);

void BM_SelectorFlat(benchmark::State& state) {
  DecodeFixture fix(state.range(0), num::KvDtype::kFp16);
  sparse::PageSelectorConfig cfg;
  cfg.token_budget = 1024;
  for (auto _ : state) {
    auto table =
        sparse::select_pages_flat(fix.alloc, fix.head, fix.q.data(), cfg);
    benchmark::DoNotOptimize(table.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SelectorFlat)->Arg(8192)->Arg(16384)->Arg(32768)->Complexity();

void BM_SelectorHierarchical(benchmark::State& state) {
  DecodeFixture fix(state.range(0), num::KvDtype::kFp16);
  sparse::PageSelectorConfig cfg;
  cfg.token_budget = 1024;
  for (auto _ : state) {
    auto table = sparse::select_pages_hierarchical(fix.alloc, fix.head,
                                                   fix.q.data(), cfg);
    benchmark::DoNotOptimize(table.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SelectorHierarchical)
    ->Arg(8192)
    ->Arg(16384)
    ->Arg(32768)
    ->Complexity();

void BM_QuantizeRowInt4(benchmark::State& state) {
  num::Rng rng(9);
  std::vector<float> row(128);
  rng.fill_gaussian(row, 1.0f);
  std::vector<std::uint8_t> codes(64);
  for (auto _ : state) {
    const num::QuantParams p = num::compute_quant_params(row.data(), 128, 4);
    num::quantize_row_int4(row.data(), 128, p, codes.data());
    benchmark::DoNotOptimize(codes.data());
  }
}
BENCHMARK(BM_QuantizeRowInt4);

void BM_DequantizeRowInt4(benchmark::State& state) {
  num::Rng rng(9);
  std::vector<float> row(128), back(128);
  rng.fill_gaussian(row, 1.0f);
  const num::QuantParams p = num::compute_quant_params(row.data(), 128, 4);
  std::vector<std::uint8_t> codes(64);
  num::quantize_row_int4(row.data(), 128, p, codes.data());
  for (auto _ : state) {
    num::dequantize_row_int4(codes.data(), 128, p, back.data());
    benchmark::DoNotOptimize(back.data());
  }
}
BENCHMARK(BM_DequantizeRowInt4);

}  // namespace

BENCHMARK_MAIN();
