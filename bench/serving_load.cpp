// Serving-load bench: TTFT/TPOT percentiles under mixed short/long-prompt
// traffic — serial vs. pooled decode, chunked vs. monolithic admission.
//
// The request-lifecycle scheduler rations prefill work (at most one chunk
// per iteration) next to the running decode batch, so a long prompt's
// prefill no longer stalls every running sequence. The scheduler itself
// never reads a clock: it stamps each request with step indices
// (first_token_step / finish_step), and this harness maps steps to
// wall-clock timestamps recorded around step(). A final section runs the
// same traffic under a tight page budget to show admission deferral and
// preemption absorbing pool pressure (the drain completes; nothing is
// poisoned).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "common.hpp"
#include "serve/scheduler.hpp"

using namespace lserve;

namespace {

constexpr std::size_t kShortPrompt = 64;
constexpr std::size_t kLongPrompt = 768;
constexpr std::size_t kNewTokens = 16;
constexpr std::size_t kChunkTokens = 128;

serve::Request make_request(std::size_t prompt_len, std::uint64_t salt) {
  serve::Request req;
  req.prompt.resize(prompt_len);
  for (std::size_t i = 0; i < prompt_len; ++i) {
    req.prompt[i] =
        static_cast<std::int32_t>((i * 131 + salt * 31 + 7) % 1021);
  }
  req.max_new_tokens = kNewTokens;
  return req;
}

struct RunOutcome {
  std::vector<double> short_ttft_us;
  std::vector<double> long_ttft_us;
  std::vector<double> tpot_us;
  double wall_ms = 0.0;
  serve::SchedulerStats sched;
  std::size_t completed = 0;
};

using bench::percentile;

/// 12 short + 3 long requests, longs interleaved so monolithic admission
/// puts a long prefill in front of running short decodes.
RunOutcome run_traffic(std::size_t chunk_tokens, std::size_t threads,
                       std::size_t page_budget) {
  serve::EngineConfig ec = baselines::lserve_config(model::small());
  ec.pool_pages = 4096;
  ec.prefill_chunk_tokens = chunk_tokens;
  serve::Engine engine(ec);
  serve::SchedulerConfig sc;
  sc.max_batch = 8;
  sc.decode_threads = threads;
  sc.page_budget = page_budget;
  serve::Scheduler sched(engine, sc);

  std::vector<std::uint64_t> long_ids;
  std::uint64_t salt = 0;
  for (int group = 0; group < 3; ++group) {
    for (int s = 0; s < 4; ++s) {
      sched.submit(make_request(kShortPrompt, salt++));
    }
    long_ids.push_back(sched.submit(make_request(kLongPrompt, salt++)));
  }

  // times[k] = elapsed us after step k (all requests submitted at t=0).
  std::vector<double> times{0.0};
  const auto t0 = std::chrono::steady_clock::now();
  bool more = true;
  while (more) {
    more = sched.step();
    times.push_back(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  }

  RunOutcome out;
  out.wall_ms = times.back() / 1000.0;
  out.sched = sched.scheduler_stats();
  for (const serve::RequestResult& r : sched.results()) {
    ++out.completed;
    const double ttft = times[r.first_token_step];
    const bool is_long = std::find(long_ids.begin(), long_ids.end(),
                                   r.request_id) != long_ids.end();
    (is_long ? out.long_ttft_us : out.short_ttft_us).push_back(ttft);
    if (r.output.size() > 1) {
      out.tpot_us.push_back((times[r.finish_step] - ttft) /
                            static_cast<double>(r.output.size() - 1));
    }
  }
  return out;
}

void report(const std::string& label, const RunOutcome& out) {
  bench::row(label,
             {bench::fmt(percentile(out.short_ttft_us, 0.5) / 1000.0, 1),
              bench::fmt(percentile(out.short_ttft_us, 0.95) / 1000.0, 1),
              bench::fmt(percentile(out.long_ttft_us, 0.5) / 1000.0, 1),
              bench::fmt(percentile(out.tpot_us, 0.5) / 1000.0, 2),
              bench::fmt(percentile(out.tpot_us, 0.95) / 1000.0, 2),
              bench::fmt(out.wall_ms, 0)},
             24, 11);
}

}  // namespace

int main(int argc, char** argv) {
  // Optional argv[1]: pooled thread count (default: hardware concurrency).
  std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed > 0) hw = static_cast<std::size_t>(parsed);
  }

  bench::section(
      "Serving load (model=small): 12 short (" +
      bench::klen(kShortPrompt) + ") + 3 long (" + bench::klen(kLongPrompt) +
      ") prompts, " + std::to_string(kNewTokens) + " new tokens each");
  bench::row("admission/decode",
             {"sTTFTp50", "sTTFTp95", "lTTFTp50", "TPOTp50", "TPOTp95",
              "wall ms"},
             24, 11);
  report("monolithic/serial", run_traffic(0, 1, 0));
  report("monolithic/" + std::to_string(hw) + "t",
         run_traffic(0, hw, 0));
  report("chunked" + std::to_string(kChunkTokens) + "/serial",
         run_traffic(kChunkTokens, 1, 0));
  report("chunked" + std::to_string(kChunkTokens) + "/" +
             std::to_string(hw) + "t",
         run_traffic(kChunkTokens, hw, 0));
  std::printf(
      "\nTTFT/TPOT in ms (short = sTTFT, long = lTTFT). Chunked admission\n"
      "rations each long prefill at %zu tokens/iteration next to the\n"
      "decode batch, cutting short-request TTFT tail latency; outputs are\n"
      "bit-identical across all four modes.\n",
      kChunkTokens);

  bench::section("Page-budget pressure (chunked/serial, budget=160 pages)");
  const RunOutcome tight = run_traffic(kChunkTokens, 1, 160);
  std::printf(
      "completed %zu/15 requests, %zu preemption(s), %zu deferred\n"
      "admission step(s), %zu steps — pool pressure is absorbed by\n"
      "preempt-and-requeue; the drain completes and nothing is poisoned.\n",
      tight.completed, tight.sched.preemptions,
      tight.sched.deferred_admissions, tight.sched.steps);
  return 0;
}
