// Serving-load bench: TTFT/TPOT percentiles under mixed short/long-prompt
// traffic — serial vs. pooled decode, chunked vs. monolithic admission.
//
// The request-lifecycle scheduler rations prefill work (at most one chunk
// per iteration) next to the running decode batch, so a long prompt's
// prefill no longer stalls every running sequence. The scheduler itself
// never reads a clock: it stamps each request with step indices
// (first_token_step / finish_step), and this harness maps steps to
// wall-clock timestamps recorded around step(). A final section runs the
// same traffic under a tight page budget to show admission deferral and
// preemption absorbing pool pressure (the drain completes; nothing is
// poisoned).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "common.hpp"
#include "costmodel/pipeline_cost.hpp"
#include "serve/attention_policy.hpp"
#include "serve/scheduler.hpp"

using namespace lserve;

namespace {

constexpr std::size_t kShortPrompt = 64;
constexpr std::size_t kLongPrompt = 768;
constexpr std::size_t kNewTokens = 16;
constexpr std::size_t kChunkTokens = 128;

serve::Request make_request(std::size_t prompt_len, std::uint64_t salt) {
  serve::Request req;
  req.prompt.resize(prompt_len);
  for (std::size_t i = 0; i < prompt_len; ++i) {
    req.prompt[i] =
        static_cast<std::int32_t>((i * 131 + salt * 31 + 7) % 1021);
  }
  req.max_new_tokens = kNewTokens;
  return req;
}

struct RunOutcome {
  std::vector<double> short_ttft_us;
  std::vector<double> long_ttft_us;
  std::vector<double> tpot_us;
  double wall_ms = 0.0;
  serve::SchedulerStats sched;
  std::size_t completed = 0;
};

using bench::LatencySummary;

/// 12 short + 3 long requests, longs interleaved so monolithic admission
/// puts a long prefill in front of running short decodes.
RunOutcome run_traffic(std::size_t chunk_tokens, std::size_t threads,
                       std::size_t page_budget) {
  serve::EngineConfig ec = baselines::lserve_config(model::small());
  ec.pool_pages = 4096;
  ec.prefill_chunk_tokens = chunk_tokens;
  serve::Engine engine(ec);
  serve::SchedulerConfig sc;
  sc.max_batch = 8;
  sc.decode_threads = threads;
  sc.memory.page_budget = page_budget;
  serve::Scheduler sched(engine, sc);

  std::vector<std::uint64_t> long_ids;
  std::uint64_t salt = 0;
  for (int group = 0; group < 3; ++group) {
    for (int s = 0; s < 4; ++s) {
      sched.submit(make_request(kShortPrompt, salt++));
    }
    long_ids.push_back(sched.submit(make_request(kLongPrompt, salt++)));
  }

  // times[k] = elapsed us after step k (all requests submitted at t=0).
  std::vector<double> times{0.0};
  const auto t0 = std::chrono::steady_clock::now();
  bool more = true;
  while (more) {
    more = sched.step();
    times.push_back(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  }

  RunOutcome out;
  out.wall_ms = times.back() / 1000.0;
  out.sched = sched.scheduler_stats();
  for (const serve::RequestResult& r : sched.results()) {
    ++out.completed;
    const double ttft = times[r.first_token_step];
    const bool is_long = std::find(long_ids.begin(), long_ids.end(),
                                   r.request_id) != long_ids.end();
    (is_long ? out.long_ttft_us : out.short_ttft_us).push_back(ttft);
    if (r.output.size() > 1) {
      out.tpot_us.push_back((times[r.finish_step] - ttft) /
                            static_cast<double>(r.output.size() - 1));
    }
  }
  return out;
}

void report(const std::string& label, const RunOutcome& out) {
  // Histogram-sourced percentiles (obs::Histogram via LatencySummary): the
  // same estimator a /metrics scrape of the serving stack would yield.
  const LatencySummary st = LatencySummary::from(out.short_ttft_us);
  const LatencySummary lt = LatencySummary::from(out.long_ttft_us);
  const LatencySummary tp = LatencySummary::from(out.tpot_us);
  bench::row(label,
             {bench::fmt(st.p50 / 1000.0, 1), bench::fmt(st.p95 / 1000.0, 1),
              bench::fmt(lt.p50 / 1000.0, 1), bench::fmt(tp.p50 / 1000.0, 2),
              bench::fmt(tp.p95 / 1000.0, 2), bench::fmt(out.wall_ms, 0)},
             24, 11);
}

// ---------------------------------------------------------------------------
// --gated: TPOT vs context length, cost-model-gated routing against the two
// static routes it chooses between.

/// A100 rooflines with the fixed launch cost removed and the page-gap dead
/// time shrunk to test-page scale (the CPU substrate has no kernel
/// launches), so the modeled crossover lands inside the measured context
/// range instead of tens of thousands of tokens out. Mirrors the
/// conformance harness (tests/policy_test_util.hpp).
cost::GpuSpec gated_proxy_spec() {
  cost::GpuSpec spec = cost::a100();
  spec.name = "cpu-proxy";
  spec.launch_overhead_us = 0.0;
  spec.page_gap_bytes = 16.0;
  return spec;
}

/// LServe preset at bench geometry: 8-token pages and a 64-token selector
/// budget, so selection, gating and full-context reads all differ inside
/// a few hundred tokens of context.
serve::EngineConfig gated_ec() {
  serve::EngineConfig ec = baselines::lserve_config(model::tiny());
  ec.dense_pages.page_size = 8;
  ec.dense_pages.logical_page_size = 4;
  ec.streaming = {/*sink_tokens=*/4, /*local_tokens=*/8};
  ec.tiling = {8, 8};
  ec.pool_pages = 1024;
  ec.selector.token_budget = 64;
  return ec;
}

/// One policy's engine mid-measurement: a live sequence at the scenario
/// context plus its collected per-step latencies.
struct DecodeLane {
  std::unique_ptr<serve::Engine> engine;
  serve::SequenceId id = 0;
  std::int32_t tok = 0;
  std::vector<double> samples;
};

DecodeLane make_lane(std::shared_ptr<const serve::AttentionPolicy> policy,
                     std::size_t ctx, std::size_t rep) {
  serve::EngineConfig ec = gated_ec();
  ec.policy = std::move(policy);
  DecodeLane lane;
  lane.engine = std::make_unique<serve::Engine>(ec);
  lane.id = lane.engine->create_sequence();
  std::vector<std::int32_t> prompt(ctx);
  for (std::size_t i = 0; i < ctx; ++i) {
    prompt[i] = static_cast<std::int32_t>((i * 131 + rep * 31 + 7) % 1021);
  }
  lane.tok = lane.engine->prefill(lane.id, prompt);
  return lane;
}

/// Advances every lane by `steps` decode steps, one step per lane at a
/// time with the lane order rotating each round, so scheduling jitter on
/// a shared core lands on all policies equally. The first few rounds per
/// sequence are warmup and not recorded.
void sample_decode_us(std::vector<DecodeLane>& lanes, std::size_t steps) {
  constexpr std::size_t kWarmup = 4;
  for (std::size_t s = 0; s < steps + kWarmup; ++s) {
    for (std::size_t off = 0; off < lanes.size(); ++off) {
      DecodeLane& lane = lanes[(s + off) % lanes.size()];
      const auto t0 = std::chrono::steady_clock::now();
      lane.tok = lane.engine->decode(lane.id, lane.tok);
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (s >= kWarmup) lane.samples.push_back(us);
    }
  }
}

int run_gated_scenario() {
  const serve::EngineConfig ec = gated_ec();
  const auto gate =
      baselines::gated_policy(ec, gated_proxy_spec(), /*batch=*/1);
  bench::section(
      "Gated decode routing (model=tiny, NP8/NL4, budget 64): median TPOT "
      "vs context length, crossover = " +
      std::to_string(gate->crossover()) + " tokens");
  bench::row("context",
             {"dense us", "sparse us", "gated us", "gated/min", "route"}, 10,
             11);
  constexpr std::size_t kSteps = 24;
  constexpr std::size_t kReps = 8;
  bool within = true;
  for (const std::size_t ctx :
       {std::size_t{16}, std::size_t{32}, std::size_t{48}, std::size_t{96},
        std::size_t{128}, std::size_t{192}, std::size_t{256}}) {
    std::vector<double> dense_s, sparse_s, gated_s;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      std::vector<DecodeLane> lanes;
      lanes.push_back(make_lane(serve::always_dense_policy(), ctx, rep));
      lanes.push_back(make_lane(serve::always_sparse_policy(), ctx, rep));
      lanes.push_back(make_lane(gate, ctx, rep));
      sample_decode_us(lanes, kSteps);
      dense_s.insert(dense_s.end(), lanes[0].samples.begin(),
                     lanes[0].samples.end());
      sparse_s.insert(sparse_s.end(), lanes[1].samples.begin(),
                      lanes[1].samples.end());
      gated_s.insert(gated_s.end(), lanes[2].samples.begin(),
                     lanes[2].samples.end());
    }
    const double dense = LatencySummary::from(dense_s).p50;
    const double sparse = LatencySummary::from(sparse_s).p50;
    const double gated = LatencySummary::from(gated_s).p50;
    const double best = std::min(dense, sparse);
    within = within && gated <= best * 1.05;
    bench::row(std::to_string(ctx),
               {bench::fmt(dense, 1), bench::fmt(sparse, 1),
                bench::fmt(gated, 1), bench::fmt(gated / best, 3),
                serve::to_string(gate->route(ctx + 1))},
               10, 11);
  }
  std::printf(
      "\nThe gate picks the dense route below the modeled crossover and the\n"
      "configured sparse pipeline past it; 'gated/min' compares the gated\n"
      "median against the better static route at each length (target: <=\n"
      "1.05 everywhere). %s\n",
      within ? "PASS: gated <= min(dense, sparse) + 5% at every length."
             : "WARN: gated exceeded min + 5% at some length.");
  return within ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--gated") == 0) {
    return run_gated_scenario();
  }
  // Optional argv[1]: pooled thread count (default: hardware concurrency).
  std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed > 0) hw = static_cast<std::size_t>(parsed);
  }

  bench::section(
      "Serving load (model=small): 12 short (" +
      bench::klen(kShortPrompt) + ") + 3 long (" + bench::klen(kLongPrompt) +
      ") prompts, " + std::to_string(kNewTokens) + " new tokens each");
  bench::row("admission/decode",
             {"sTTFTp50", "sTTFTp95", "lTTFTp50", "TPOTp50", "TPOTp95",
              "wall ms"},
             24, 11);
  report("monolithic/serial", run_traffic(0, 1, 0));
  report("monolithic/" + std::to_string(hw) + "t",
         run_traffic(0, hw, 0));
  report("chunked" + std::to_string(kChunkTokens) + "/serial",
         run_traffic(kChunkTokens, 1, 0));
  report("chunked" + std::to_string(kChunkTokens) + "/" +
             std::to_string(hw) + "t",
         run_traffic(kChunkTokens, hw, 0));
  std::printf(
      "\nTTFT/TPOT in ms (short = sTTFT, long = lTTFT). Chunked admission\n"
      "rations each long prefill at %zu tokens/iteration next to the\n"
      "decode batch, cutting short-request TTFT tail latency; outputs are\n"
      "bit-identical across all four modes.\n",
      kChunkTokens);

  bench::section("Page-budget pressure (chunked/serial, budget=160 pages)");
  const RunOutcome tight = run_traffic(kChunkTokens, 1, 160);
  std::printf(
      "completed %zu/15 requests, %zu preemption(s), %zu deferred\n"
      "admission step(s), %zu steps — pool pressure is absorbed by\n"
      "preempt-and-requeue; the drain completes and nothing is poisoned.\n",
      tight.completed, tight.sched.preemptions,
      tight.sched.deferred_admissions, tight.sched.steps);
  return 0;
}
