// Serving front-end bench: open-loop loopback traffic against the real
// network stack (EventLoop + HttpParser + SSE over HttpServer), reporting
// TTFT/TPOT percentiles and goodput at configurable arrival rates.
//
// Open-loop means requests arrive on a fixed schedule (request i at
// t0 + i/rate) regardless of completions — the arrival process does not
// slow down when the server falls behind, so queueing delay shows up in
// the TTFT tail exactly as it would under real traffic. A final scenario
// aborts every k-th stream mid-flight by closing the socket after two
// token events: the server must cancel those requests and return every
// page to the pool (verified against the engine allocators at the end).
//
//   bench_serving_frontend [n_requests] [rate1 rate2 ...]   (req/s)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "common.hpp"
#include "net/server.hpp"
#include "serve/scheduler.hpp"

using namespace lserve;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::size_t kPromptTokens = 48;
constexpr std::size_t kNewTokens = 12;
constexpr std::size_t kAbortAfterTokens = 2;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

struct ClientOutcome {
  int http_status = 0;
  std::string status;     ///< terminal SSE status ("" if none seen).
  std::size_t tokens = 0; ///< token events received.
  bool aborted = false;   ///< we closed the socket mid-stream by design.
  /// Non-200 responses must carry the structured error schema
  /// {"error":{"code":"...","message":"..."}} (net/server.cpp).
  bool error_schema_ok = false;
  double ttft_ms = -1.0;
  double total_ms = 0.0;
};

/// One blocking-socket SSE client: POSTs /v1/generate and consumes the
/// stream, optionally hanging up after `abort_after` token events.
ClientOutcome run_client(std::uint16_t port, std::uint64_t seed,
                         std::size_t abort_after,
                         const char* body_override = nullptr) {
  ClientOutcome out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return out;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval timeout{30, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  const std::string body =
      body_override != nullptr
          ? std::string(body_override)
          : "{\"prompt_len\":" + std::to_string(kPromptTokens) +
                ",\"max_new_tokens\":" + std::to_string(kNewTokens) +
                ",\"seed\":" + std::to_string(seed) + "}";
  const std::string request =
      "POST /v1/generate HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Content-Type: application/json\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return out;
  }

  const auto t0 = Clock::now();
  std::string stream;
  std::size_t scanned = 0;  ///< prefix of `stream` already event-counted.
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    stream.append(buf, static_cast<std::size_t>(n));
    if (out.http_status == 0) {
      const std::size_t eol = stream.find("\r\n");
      if (eol != std::string::npos && stream.size() >= 12) {
        out.http_status = std::atoi(stream.c_str() + 9);
        // Non-200: keep reading to EOF (the server closes after flushing)
        // so the structured error body can be schema-checked below.
      }
    }
    if (out.http_status != 0 && out.http_status != 200) continue;
    std::size_t pos;
    while ((pos = stream.find("event: token", scanned)) !=
           std::string::npos) {
      scanned = pos + 12;
      if (out.tokens == 0) out.ttft_ms = ms_since(t0);
      ++out.tokens;
    }
    if (abort_after != 0 && out.tokens >= abort_after) {
      out.aborted = true;
      break;
    }
    const std::size_t done = stream.find("event: done");
    if (done != std::string::npos &&
        stream.find("\n\n", done) != std::string::npos) {
      const std::size_t st = stream.find("\"status\":\"", done);
      if (st != std::string::npos) {
        const std::size_t begin = st + 10;
        out.status = stream.substr(begin, stream.find('"', begin) - begin);
      }
      break;
    }
  }
  out.total_ms = ms_since(t0);
  if (out.http_status != 0 && out.http_status != 200) {
    out.error_schema_ok =
        stream.find("{\"error\":{\"code\":\"") != std::string::npos &&
        stream.find("\"message\":\"") != std::string::npos;
  }
  ::close(fd);
  return out;
}

struct ScenarioResult {
  std::vector<double> ttft_ms;
  std::vector<double> tpot_ms;
  std::size_t finished = 0;
  std::size_t aborted = 0;
  std::size_t failed = 0;  ///< non-200, connect errors, truncated streams.
  /// Non-200 responses whose body violated the structured error schema.
  std::size_t schema_violations = 0;
  std::size_t goodput_tokens = 0;
  double wall_s = 0.0;
};

/// Fires `n` requests open-loop at `rate` req/s; every `abort_every`-th
/// request (0 = never) hangs up after kAbortAfterTokens token events.
ScenarioResult run_open_loop(std::uint16_t port, double rate, std::size_t n,
                             std::size_t abort_every) {
  ScenarioResult result;
  std::mutex mu;
  std::vector<std::thread> clients;
  clients.reserve(n);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    clients.emplace_back([&, i] {
      const auto arrival =
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(static_cast<double>(i) /
                                                 rate));
      std::this_thread::sleep_until(arrival);
      const std::size_t abort_after =
          (abort_every != 0 && i % abort_every == abort_every - 1)
              ? kAbortAfterTokens
              : 0;
      const ClientOutcome out = run_client(port, /*seed=*/i, abort_after);

      std::lock_guard<std::mutex> lock(mu);
      if (out.aborted) {
        ++result.aborted;
      } else if (out.http_status == 200 && out.status == "FINISHED") {
        ++result.finished;
        result.goodput_tokens += out.tokens;
        result.ttft_ms.push_back(out.ttft_ms);
        if (out.tokens > 1) {
          result.tpot_ms.push_back((out.total_ms - out.ttft_ms) /
                                   static_cast<double>(out.tokens - 1));
        }
      } else {
        ++result.failed;
        if (out.http_status != 0 && out.http_status != 200 &&
            !out.error_schema_ok) {
          ++result.schema_violations;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  result.wall_s = ms_since(t0) / 1000.0;
  return result;
}

void report(const std::string& label, const ScenarioResult& r) {
  const bench::LatencySummary ttft = bench::LatencySummary::from(r.ttft_ms);
  const bench::LatencySummary tpot = bench::LatencySummary::from(r.tpot_ms);
  bench::row(label,
             {bench::fmt(ttft.p50, 1), bench::fmt(ttft.p95, 1),
              bench::fmt(tpot.p50, 2), bench::fmt(tpot.p95, 2),
              bench::fmt(r.wall_s > 0.0 ? static_cast<double>(
                                              r.goodput_tokens) /
                                              r.wall_s
                                        : 0.0,
                         0),
              std::to_string(r.finished) + "/" + std::to_string(r.aborted) +
                  "/" + std::to_string(r.failed)},
             26, 11);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 24;
  std::vector<double> rates;
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed > 0) n = static_cast<std::size_t>(parsed);
  }
  for (int i = 2; i < argc; ++i) {
    const double rate = std::strtod(argv[i], nullptr);
    if (rate > 0.0) rates.push_back(rate);
  }
  if (rates.empty()) rates = {25.0, 100.0};

  serve::EngineConfig ec = baselines::lserve_config(model::tiny());
  ec.prefill_chunk_tokens = 32;
  serve::Engine engine(ec);
  serve::SchedulerConfig sc;
  sc.max_batch = 8;
  serve::Scheduler sched(engine, sc);
  net::ServerConfig server_cfg;
  server_cfg.port = 0;  // ephemeral loopback port.
  net::HttpServer server(sched, server_cfg);
  const std::uint16_t port = server.start();

  bench::section("Serving front-end (model=tiny, HTTP/1.1 + SSE on 127.0.0.1:" +
                 std::to_string(port) + "): " + std::to_string(n) +
                 " open-loop requests, " + std::to_string(kPromptTokens) +
                 "-token prompts, " + std::to_string(kNewTokens) +
                 " new tokens");
  bench::row("scenario",
             {"TTFTp50", "TTFTp95", "TPOTp50", "TPOTp95", "tok/s",
              "fin/ab/fail"},
             26, 11);
  for (const double rate : rates) {
    report(bench::fmt(rate, 0) + " req/s",
           run_open_loop(port, rate, n, /*abort_every=*/0));
  }
  // Mid-stream aborts: every 3rd client hangs up after two token events;
  // the server must cancel those requests so they stop consuming steps.
  const ScenarioResult aborts =
      run_open_loop(port, rates.back(), n, /*abort_every=*/3);
  report(bench::fmt(rates.back(), 0) + " req/s + aborts", aborts);

  // Error-schema gate: a shed or rejected request must answer with the
  // structured {"error":{"code","message"}} body, never ad-hoc JSON.
  std::size_t schema_violations = aborts.schema_violations;
  {
    const ClientOutcome bad = run_client(port, /*seed=*/0, /*abort_after=*/0,
                                         "{\"max_new_tokens\":0}");
    if (bad.http_status != 400 || !bad.error_schema_ok) ++schema_violations;
  }

  // Every aborted stream's cancel must be fully absorbed: wait for the
  // scheduler to go quiet, then check the allocators are empty.
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (sched.live_requests() > 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  server.stop();
  const std::size_t leaked = engine.total_pages_in_use();
  std::printf(
      "\nTTFT/TPOT in ms end-to-end over loopback (connect + HTTP + SSE\n"
      "framing included); tok/s counts finished streams only. Abort\n"
      "scenario: %zu streams closed mid-flight by the client, %zu\n"
      "cancellations reached the scheduler (a fast request can finish\n"
      "before its disconnect is seen), %zu pages still allocated after\n"
      "drain (%s); %zu error responses violated the structured schema.\n",
      aborts.aborted, sched.scheduler_stats().cancelled, leaked,
      leaked == 0 ? "all reclaimed" : "LEAK", schema_violations);
  return leaked == 0 && schema_violations == 0 ? 0 : 1;
}
