// Table 3: RULER accuracy across context lengths and token budgets.
//
// Paper: Llama-3-8B on RULER at 32K-256K; LServe-4096 tracks dense with a
// few points' gap that shrinks with LServe-8192. Our RULER-proxy runs
// retrieval, multi-hop tracing and aggregation tasks at scaled lengths,
// with budgets scaled by the same ratio (budget/context) as the paper.
#include <cstdio>

#include "common.hpp"
#include "eval/ruler.hpp"

using namespace lserve;

namespace {

double run_policy(std::size_t seq_len, eval::PolicyKind kind,
                  std::size_t budget) {
  eval::RulerConfig cfg;
  cfg.seq_len = seq_len;
  cfg.head_dim = 64;
  cfg.pages.page_size = 64;
  cfg.pages.logical_page_size = kind == eval::PolicyKind::kDense ? 64 : 16;
  cfg.pages.dtype = kind == eval::PolicyKind::kDense ? num::KvDtype::kFp16
                                                     : num::KvDtype::kInt4;
  cfg.policy.kind = kind;
  cfg.policy.selector.token_budget = budget;
  cfg.trials = 3;
  // Harder instances than the defaults so the budget actually binds:
  // 24 aggregation sites span more pages than a 1024-token budget keeps.
  cfg.aggregation_sites = 24;
  cfg.hops = 4;
  return eval::run_ruler(cfg).composite();
}

}  // namespace

int main() {
  const std::vector<std::size_t> lengths{8192, 16384, 32768, 65536};

  bench::section(
      "Table 3: RULER-proxy composite score (Llama-3-8B geometry, 0-100)");
  {
    std::vector<std::string> header;
    for (auto n : lengths) header.push_back(bench::klen(n));
    bench::row("System", header);
  }
  for (const auto& [name, kind, budget] :
       std::vector<std::tuple<std::string, eval::PolicyKind, std::size_t>>{
           {"Dense", eval::PolicyKind::kDense, 0},
           {"LServe-1024", eval::PolicyKind::kHierSelect, 1024},
           {"LServe-2048", eval::PolicyKind::kHierSelect, 2048}}) {
    std::vector<std::string> cells;
    for (std::size_t n : lengths) {
      cells.push_back(bench::fmt(run_policy(n, kind, budget), 1));
    }
    bench::row(name, cells);
  }
  std::printf(
      "\nShape check: LServe within a few points of dense at every length;\n"
      "the larger budget closes most of the residual gap (paper: "
      "LServe-8192 >= LServe-4096).\n"
      "Budgets are scaled with context as in the paper (4096/256K ~ "
      "1024/64K).\n");
  return 0;
}
