// Figure 15: single-layer decode attention latency under each sparsity
// pattern (Llama-2-7B).
//
// Paper (A100, us/layer): dense grows 87 -> 3492 from 4K to 256K; +static
// (50% streaming heads) divides by ~1.5-1.7; +dynamic (4K budget) is flat
// ~118; the combination (LServe) is flat ~82. Regenerated with the cost
// model at GPU scale and cross-checked with a measured CPU decode kernel
// at smaller scale (same ordering).
#include <cstdio>

#include "attn/decode_attention.hpp"
#include "common.hpp"
#include "costmodel/gpu_spec.hpp"
#include "eval/metrics.hpp"

using namespace lserve;

namespace {

cost::ServingPolicy dense_fp16() {
  cost::ServingPolicy p = cost::vllm_policy();
  p.weight_bits = 16;
  return p;
}

cost::ServingPolicy static_only() {
  cost::ServingPolicy p = dense_fp16();
  p.streaming_fraction = 0.5;
  return p;
}

cost::ServingPolicy dynamic_only() {
  cost::ServingPolicy p = dense_fp16();
  p.dynamic_decode = true;
  p.token_budget = 4096;
  p.logical_page_size = 16;
  p.reuse_interval = 4;
  return p;
}

cost::ServingPolicy combined() {
  cost::ServingPolicy p = dynamic_only();
  p.streaming_fraction = 0.5;
  return p;
}

}  // namespace

int main() {
  const cost::GpuSpec spec = cost::a100();
  const model::ModelConfig m = model::llama2_7b();
  const std::vector<std::size_t> lengths{4096,  8192,   16384, 32768,
                                         65536, 131072, 262144};

  bench::section(
      "Fig 15 (cost model): single-layer decode attention latency (us), "
      "Llama-2-7B, A100");
  {
    std::vector<std::string> header;
    for (auto n : lengths) header.push_back(bench::klen(n));
    bench::row("Variant", header);
  }
  for (const auto& [name, policy] :
       std::vector<std::pair<std::string, cost::ServingPolicy>>{
           {"Baseline Attention", dense_fp16()},
           {"+Static Only (50%)", static_only()},
           {"+Dynamic Only (4K)", dynamic_only()},
           {"LServe Attention", combined()}}) {
    std::vector<std::string> cells;
    for (std::size_t n : lengths) {
      cells.push_back(bench::fmt(
          cost::decode_attention_layer_us(spec, m, policy, n, 1), 0));
    }
    bench::row(name, cells);
  }

  // Measured CPU cross-check (one kv head, fp16 cache): full history vs
  // sink+local table vs budget-pruned table.
  bench::section(
      "Measured (CPU): one-head decode latency (us) vs context");
  bench::row("Variant", {"4K", "8K", "16K", "32K"});
  kv::PageConfig pages;
  pages.page_size = 64;
  pages.logical_page_size = 16;
  pages.head_dim = 64;
  std::vector<std::string> dense_cells, stream_cells, dyn_cells;
  for (std::size_t n : {4096u, 8192u, 16384u, 32768u}) {
    kv::PageAllocator alloc(pages, n / 64 + 2);
    kv::HeadCache head;
    model::StreamConfig sc;
    sc.n_tokens = n;
    sc.head_dim = 64;
    model::TokenStream stream = model::smooth_stream(sc);
    eval::fill_head_cache(alloc, head, stream);
    std::vector<float> q(64, 0.3f), out(64);

    const auto full = kv::full_page_table(head.view(alloc));
    eval::ProbePolicy streaming;
    streaming.kind = eval::PolicyKind::kStreaming;
    streaming.sink_tokens = 64;
    streaming.local_tokens = 256;
    const auto lambda = eval::policy_table(alloc, head, q.data(), streaming);
    eval::ProbePolicy pruned;
    pruned.kind = eval::PolicyKind::kHierSelect;
    pruned.selector.token_budget = 1024;
    const auto selected = eval::policy_table(alloc, head, q.data(), pruned);

    for (const auto& [cells, table] :
         std::vector<std::pair<std::vector<std::string>*,
                               const kv::SelectedPageTable*>>{
             {&dense_cells, &full},
             {&stream_cells, &lambda},
             {&dyn_cells, &selected}}) {
      const double us = bench::time_us([&] {
        attn::sparse_paged_decode(alloc, *table, head.tokens(), q.data(), 64,
                                  0.125f, out.data());
      });
      cells->push_back(bench::fmt(us, 1));
    }
  }
  bench::row("Dense (full table)", dense_cells);
  bench::row("Streaming (sink+local)", stream_cells);
  bench::row("Dynamic (1K budget)", dyn_cells);

  std::printf(
      "\nShape check: dense linear in context; +static divides by ~1.5-1.7x;"
      "\n+dynamic flat beyond the budget; LServe lowest everywhere (paper:\n"
      "87->3492 us dense vs ~82 us LServe at 256K). The measured CPU "
      "kernel\nshows the same ordering: streaming and dynamic are flat, "
      "dense grows.\n");
  return 0;
}
