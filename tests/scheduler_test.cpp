// Tests for the continuous-batching scheduler (src/serve/scheduler).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "serve/scheduler.hpp"

namespace lserve::serve {
namespace {

EngineConfig cfg() {
  EngineConfig c = baselines::vllm_config(model::tiny());
  c.dense_pages.page_size = 8;
  c.dense_pages.logical_page_size = 8;
  c.tiling = {8, 8};
  c.pool_pages = 512;
  return c;
}

Request make_request(std::size_t prompt_len, std::size_t new_tokens) {
  Request req;
  req.prompt.resize(prompt_len);
  for (std::size_t i = 0; i < prompt_len; ++i) {
    req.prompt[i] = static_cast<std::int32_t>((i * 13 + 5) % 251);
  }
  req.max_new_tokens = new_tokens;
  return req;
}

TEST(Scheduler, SingleRequestRunsToCompletion) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  sched.submit(make_request(16, 5));
  const auto results = sched.drain();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].output.size(), 5u);
  EXPECT_EQ(results[0].prompt_tokens, 16u);
  EXPECT_EQ(results[0].decode_steps, 4u);
}

TEST(Scheduler, AssignsUniqueRequestIds) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  const auto id0 = sched.submit(make_request(8, 2));
  const auto id1 = sched.submit(make_request(8, 2));
  EXPECT_NE(id0, id1);
}

TEST(Scheduler, BatchLimitRespected) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  for (int i = 0; i < 5; ++i) sched.submit(make_request(8, 3));
  sched.step();
  EXPECT_LE(sched.running(), 2u);
  EXPECT_EQ(sched.waiting(), 3u);
  sched.drain();
  EXPECT_EQ(sched.results().size(), 5u);
}

TEST(Scheduler, ContinuousAdmissionBackfillsSlots) {
  Engine engine(cfg());
  Scheduler sched(engine, 1);
  sched.submit(make_request(8, 2));   // finishes fast
  sched.submit(make_request(8, 6));   // admitted after the first retires
  std::size_t steps = 0;
  while (sched.step()) ++steps;
  EXPECT_EQ(sched.results().size(), 2u);
  // Short request completes before the long one starts decoding much.
  EXPECT_EQ(sched.results()[0].decode_steps, 1u);
  EXPECT_EQ(sched.results()[1].decode_steps, 5u);
}

TEST(Scheduler, ReleasesKvPagesAfterCompletion) {
  Engine engine(cfg());
  Scheduler sched(engine, 4);
  for (int i = 0; i < 3; ++i) sched.submit(make_request(24, 3));
  sched.drain();
  EXPECT_EQ(engine.dense_allocator().pages_in_use(), 0u);
}

TEST(Scheduler, ResultsMatchDirectEngineCalls) {
  // A scheduled request must produce the same tokens as calling the engine
  // by hand (scheduling must not perturb computation).
  Engine e1(cfg());
  Scheduler sched(e1, 1);
  Request req = make_request(12, 4);
  sched.submit(req);
  const auto results = sched.drain();

  Engine e2(cfg());
  const auto seq = e2.create_sequence();
  const auto direct =
      e2.generate(seq, std::span<const std::int32_t>(req.prompt), 4);
  EXPECT_EQ(results[0].output, direct);
}

TEST(Scheduler, EmptyQueueStepReturnsFalse) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  EXPECT_FALSE(sched.step());
}

}  // namespace
}  // namespace lserve::serve
