// Tests for the continuous-batching scheduler (src/serve/scheduler).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "serve/scheduler.hpp"
#include "serve/thread_pool.hpp"

namespace lserve::serve {
namespace {

EngineConfig cfg() {
  EngineConfig c = baselines::vllm_config(model::tiny());
  c.dense_pages.page_size = 8;
  c.dense_pages.logical_page_size = 8;
  c.tiling = {8, 8};
  c.pool_pages = 512;
  return c;
}

Request make_request(std::size_t prompt_len, std::size_t new_tokens) {
  Request req;
  req.prompt.resize(prompt_len);
  for (std::size_t i = 0; i < prompt_len; ++i) {
    req.prompt[i] = static_cast<std::int32_t>((i * 13 + 5) % 251);
  }
  req.max_new_tokens = new_tokens;
  return req;
}

TEST(Scheduler, SingleRequestRunsToCompletion) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  sched.submit(make_request(16, 5));
  const auto results = sched.drain();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].output.size(), 5u);
  EXPECT_EQ(results[0].prompt_tokens, 16u);
  EXPECT_EQ(results[0].decode_steps, 4u);
}

TEST(Scheduler, AssignsUniqueRequestIds) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  const auto id0 = sched.submit(make_request(8, 2));
  const auto id1 = sched.submit(make_request(8, 2));
  EXPECT_NE(id0, id1);
}

TEST(Scheduler, BatchLimitRespected) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  for (int i = 0; i < 5; ++i) sched.submit(make_request(8, 3));
  sched.step();
  EXPECT_LE(sched.running(), 2u);
  EXPECT_EQ(sched.waiting(), 3u);
  sched.drain();
  EXPECT_EQ(sched.results().size(), 5u);
}

TEST(Scheduler, ContinuousAdmissionBackfillsSlots) {
  Engine engine(cfg());
  Scheduler sched(engine, 1);
  sched.submit(make_request(8, 2));   // finishes fast
  sched.submit(make_request(8, 6));   // admitted after the first retires
  std::size_t steps = 0;
  while (sched.step()) ++steps;
  EXPECT_EQ(sched.results().size(), 2u);
  // Short request completes before the long one starts decoding much.
  EXPECT_EQ(sched.results()[0].decode_steps, 1u);
  EXPECT_EQ(sched.results()[1].decode_steps, 5u);
}

TEST(Scheduler, ReleasesKvPagesAfterCompletion) {
  Engine engine(cfg());
  Scheduler sched(engine, 4);
  for (int i = 0; i < 3; ++i) sched.submit(make_request(24, 3));
  sched.drain();
  EXPECT_EQ(engine.dense_allocator().pages_in_use(), 0u);
}

TEST(Scheduler, ResultsMatchDirectEngineCalls) {
  // A scheduled request must produce the same tokens as calling the engine
  // by hand (scheduling must not perturb computation).
  Engine e1(cfg());
  Scheduler sched(e1, 1);
  Request req = make_request(12, 4);
  sched.submit(req);
  const auto results = sched.drain();

  Engine e2(cfg());
  const auto seq = e2.create_sequence();
  const auto direct =
      e2.generate(seq, std::span<const std::int32_t>(req.prompt), 4);
  EXPECT_EQ(results[0].output, direct);
}

TEST(Scheduler, EmptyQueueStepReturnsFalse) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  EXPECT_FALSE(sched.step());
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 17) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool stays usable after a failed region.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

// LServe-policy config (dynamic selector + streaming heads + reuse) so the
// concurrency test exercises the full sparse decode path.
EngineConfig sparse_cfg() {
  EngineConfig c = baselines::lserve_config(model::tiny());
  c.dense_pages.page_size = 8;
  c.dense_pages.logical_page_size = 4;
  c.streaming = {/*sink_tokens=*/4, /*local_tokens=*/8};
  c.tiling = {8, 8};
  c.pool_pages = 512;
  return c;
}

struct DrainOutcome {
  std::vector<RequestResult> results;
  EngineStats stats;
  SchedulerStats sched_stats;
};

DrainOutcome drain_at(std::size_t decode_threads) {
  Engine engine(sparse_cfg());
  Scheduler sched(engine, 4, decode_threads);
  // Mixed prompt lengths and decode budgets (seeded via make_request) so
  // admission, retirement and backfill all fire mid-run.
  const std::size_t prompts[] = {12, 40, 8, 24, 16, 33};
  const std::size_t budgets[] = {6, 3, 9, 5, 2, 7};
  for (std::size_t i = 0; i < 6; ++i) {
    sched.submit(make_request(prompts[i], budgets[i]));
  }
  DrainOutcome out;
  out.results = sched.drain();
  out.stats = engine.stats();
  out.sched_stats = sched.scheduler_stats();
  return out;
}

TEST(Scheduler, ParallelStepBitIdenticalToSerial) {
  const DrainOutcome serial = drain_at(1);
  ASSERT_EQ(serial.results.size(), 6u);
  for (const std::size_t threads : {2u, 8u}) {
    const DrainOutcome parallel = drain_at(threads);
    // Completion order and every token must match bit-for-bit.
    ASSERT_EQ(parallel.results.size(), serial.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
      EXPECT_EQ(parallel.results[i].request_id,
                serial.results[i].request_id);
      EXPECT_EQ(parallel.results[i].output, serial.results[i].output);
      EXPECT_EQ(parallel.results[i].decode_steps,
                serial.results[i].decode_steps);
    }
    // Telemetry merges deterministically after each batch's join.
    EXPECT_EQ(parallel.stats.prefill_tokens, serial.stats.prefill_tokens);
    EXPECT_EQ(parallel.stats.decode_steps, serial.stats.decode_steps);
    EXPECT_EQ(parallel.stats.pages_visited, serial.stats.pages_visited);
    EXPECT_EQ(parallel.stats.tokens_visited, serial.stats.tokens_visited);
    EXPECT_EQ(parallel.stats.selector_runs, serial.stats.selector_runs);
    EXPECT_EQ(parallel.stats.selector_reuses,
              serial.stats.selector_reuses);
  }
}

// ---------------------------------------------------------------------------
// Request-id hygiene.

TEST(Scheduler, RejectsDuplicateInFlightRequestIds) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  Request req = make_request(8, 2);
  req.request_id = 7;
  sched.submit(req);
  EXPECT_THROW(sched.submit(req), std::invalid_argument);
  sched.drain();
  // Once no longer in flight, the id may be reused.
  EXPECT_EQ(sched.submit(req), 7u);
  sched.drain();
  EXPECT_EQ(sched.results().size(), 2u);
}

TEST(Scheduler, RejectsEmptyPrompts) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  EXPECT_THROW(sched.submit(Request{}), std::invalid_argument);
  EXPECT_EQ(sched.waiting(), 0u);
}

TEST(Scheduler, AutoIdsNeverReuseUserSuppliedIds) {
  Engine engine(cfg());
  Scheduler sched(engine, 4);
  Request user = make_request(8, 2);
  user.request_id = 5;
  EXPECT_EQ(sched.submit(user), 5u);
  // Auto-assignment must jump past the user-supplied id instead of
  // eventually colliding with it.
  const auto auto_id = sched.submit(make_request(8, 2));
  EXPECT_GT(auto_id, 5u);
  const auto results = sched.drain();
  EXPECT_EQ(results.size(), 2u);
}

// ---------------------------------------------------------------------------
// Chunked-prefill-aware batching.

const RequestResult& by_id(const std::vector<RequestResult>& results,
                           std::uint64_t id) {
  for (const RequestResult& r : results) {
    if (r.request_id == id) return r;
  }
  ADD_FAILURE() << "request " << id << " missing from results";
  return results.front();
}

TEST(Scheduler, OnePrefillChunkPerStepAlongsideDecodeBatch) {
  EngineConfig chunked = cfg();
  chunked.prefill_chunk_tokens = 8;
  Engine engine(chunked);
  Scheduler sched(engine, 4);
  const auto short_id = sched.submit(make_request(8, 10));
  const auto long_id = sched.submit(make_request(64, 4));

  std::size_t step = 0;
  bool more = true;
  while (more) {
    ++step;
    const std::size_t prefill_before = engine.stats().prefill_tokens;
    const std::size_t decode_before = engine.stats().decode_steps;
    more = sched.step();
    // The acceptance invariant: no step performs more than one prefill
    // chunk of work before its decode batch runs.
    EXPECT_LE(engine.stats().prefill_tokens - prefill_before,
              chunked.prefill_chunk_tokens);
    // While the long prompt's prefill is rationed out (steps 2..9), the
    // short request keeps decoding every single step.
    if (step >= 2 && step <= 9) {
      EXPECT_GE(engine.stats().decode_steps - decode_before, 1u);
    }
  }

  const auto& results = sched.results();
  ASSERT_EQ(results.size(), 2u);
  const RequestResult& s = by_id(results, short_id);
  const RequestResult& l = by_id(results, long_id);
  // Short request's TTFT is untouched by the long prompt behind it...
  EXPECT_EQ(s.first_token_step, 1u);
  // ...and its TPOT is one token per step, so it finishes at step 9
  // (1 prefill token + 9 decode steps) while the long prompt's 64-token
  // prefill is still being rationed at 8 tokens per iteration.
  EXPECT_EQ(s.finish_step, 9u);
  EXPECT_EQ(l.first_token_step, 9u);
  EXPECT_LT(s.finish_step, l.finish_step);

  // Chunked admission must not perturb the computation.
  Engine mono_engine(cfg());
  Scheduler mono(mono_engine, 4);
  const auto ms = mono.submit(make_request(8, 10));
  const auto ml = mono.submit(make_request(64, 4));
  const auto mono_results = mono.drain();
  EXPECT_EQ(s.output, by_id(mono_results, ms).output);
  EXPECT_EQ(l.output, by_id(mono_results, ml).output);
}

// ---------------------------------------------------------------------------
// KV-memory admission control and preemption.

TEST(Scheduler, PreemptionRequeuesAndMatchesUnpreemptedRun) {
  // tiny model: 2 layers x 2 kv heads = 4 page streams, page_size 8, all
  // dense under vllm_config. A totals 28 tokens (16 pages worst case), B
  // totals 36 (20 pages); both pass admission against an empty pool, but
  // their combined decode growth breaches the 28-page budget, so B (the
  // newest) is preempted mid-decode, re-queued, and re-admitted only after
  // A retires.
  const Request req_a = make_request(16, 12);
  Request req_b = make_request(16, 20);
  req_b.prompt[3] += 1;  // distinct stream so outputs differ.

  Engine reference_engine(cfg());
  Scheduler reference(reference_engine, 2);
  const auto ra = reference.submit(req_a);
  const auto rb = reference.submit(req_b);
  const auto unpreempted = reference.drain();
  EXPECT_EQ(reference.scheduler_stats().preemptions, 0u);

  Engine engine(cfg());
  SchedulerConfig sc;
  sc.max_batch = 2;
  sc.memory.page_budget = 28;
  Scheduler sched(engine, sc);
  const auto id_a = sched.submit(req_a);
  const auto id_b = sched.submit(req_b);
  const auto results = sched.drain();

  // Pressure fired and was absorbed: B preempted at least once, the drain
  // completed every request, and nothing was poisoned.
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GE(sched.scheduler_stats().preemptions, 1u);
  EXPECT_GE(sched.scheduler_stats().deferred_admissions, 1u);
  const RequestResult& a = by_id(results, id_a);
  const RequestResult& b = by_id(results, id_b);
  EXPECT_EQ(a.preemptions, 0u);
  EXPECT_GE(b.preemptions, 1u);
  ASSERT_EQ(b.output.size(), 20u);

  // Recompute preemption is exact: the preempted request produces the same
  // tokens as the unpreempted run.
  EXPECT_EQ(a.output, by_id(unpreempted, ra).output);
  EXPECT_EQ(b.output, by_id(unpreempted, rb).output);

  // Every preempted and retired page went back to the free list.
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
  EXPECT_EQ(engine.dense_allocator().free_pages(),
            engine.dense_allocator().capacity());
}

TEST(Scheduler, AdmissionDeferredUntilMemoryFrees) {
  Engine engine(cfg());
  SchedulerConfig sc;
  sc.max_batch = 2;
  sc.memory.page_budget = 20;
  Scheduler sched(engine, sc);
  const auto id_a = sched.submit(make_request(16, 12));  // 16-page estimate
  sched.step();
  sched.step();
  // A occupies 12 pages by now; B's 16-page estimate no longer fits under
  // the 20-page budget, so B waits even though a batch slot is free.
  const auto id_b = sched.submit(make_request(16, 12));
  sched.step();
  EXPECT_EQ(sched.running(), 1u);
  EXPECT_EQ(sched.waiting(), 1u);
  EXPECT_GE(sched.scheduler_stats().deferred_admissions, 1u);

  const auto results = sched.drain();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(sched.scheduler_stats().preemptions, 0u);
  const RequestResult& a = by_id(results, id_a);
  const RequestResult& b = by_id(results, id_b);
  // B only started once A's pages were released.
  EXPECT_GT(b.first_token_step, a.finish_step);
}

TEST(Scheduler, PagesReclaimedAcrossSequentialRequests) {
  // Regression guard for the allocator free-list under release/requeue:
  // many sequential requests must recycle the same pages, never grow the
  // pool, and leave it fully free.
  Engine engine(cfg());
  const std::size_t initial_capacity = engine.dense_allocator().capacity();
  Scheduler sched(engine, 1);
  for (int i = 0; i < 10; ++i) sched.submit(make_request(24, 4));
  const auto results = sched.drain();
  ASSERT_EQ(results.size(), 10u);
  EXPECT_EQ(engine.dense_allocator().pages_in_use(), 0u);
  EXPECT_EQ(engine.dense_allocator().capacity(), initial_capacity);
  EXPECT_EQ(engine.dense_allocator().free_pages(), initial_capacity);
  // Peak occupancy never exceeded one request's worst case — later
  // requests reused the pages released by earlier ones.
  EXPECT_LE(engine.dense_allocator().peak_pages_in_use(),
            engine.estimate_request_pages(24 + 4).dense_pages);
}

TEST(Scheduler, ParallelDrainReleasesAllPages) {
  Engine engine(sparse_cfg());
  Scheduler sched(engine, 4, 4);
  for (int i = 0; i < 6; ++i) sched.submit(make_request(20, 4));
  sched.drain();
  EXPECT_EQ(engine.dense_allocator().pages_in_use(), 0u);
  EXPECT_EQ(engine.stream_allocator().pages_in_use(), 0u);
}

/// Full-pressure lifecycle drain: sparse engine, chunked prefill, and a
/// page budget tight enough that admission deferral and preemption both
/// fire while requests complete.
DrainOutcome drain_pressured_at(std::size_t decode_threads) {
  EngineConfig ec = sparse_cfg();
  ec.prefill_chunk_tokens = 8;
  Engine engine(ec);
  SchedulerConfig sc;
  sc.max_batch = 4;
  sc.decode_threads = decode_threads;
  sc.memory.page_budget = 30;
  Scheduler sched(engine, sc);
  const std::size_t prompts[] = {12, 40, 8, 24, 16, 33};
  const std::size_t budgets[] = {6, 3, 9, 5, 2, 7};
  for (std::size_t i = 0; i < 6; ++i) {
    sched.submit(make_request(prompts[i], budgets[i]));
  }
  DrainOutcome out;
  out.results = sched.drain();
  out.stats = engine.stats();
  out.sched_stats = sched.scheduler_stats();
  return out;
}

TEST(Scheduler, PressuredLifecycleDeterministicAcrossThreads) {
  // Admission and preemption decisions feed off page counts, which are
  // bit-identical after every batch join regardless of the decode thread
  // count — so the whole lifecycle (including who gets preempted when)
  // must replay identically at 1, 2 and 8 threads.
  const DrainOutcome serial = drain_pressured_at(1);
  ASSERT_EQ(serial.results.size(), 6u);
  // The budget is genuinely binding in this scenario.
  EXPECT_GT(serial.sched_stats.preemptions, 0u);
  EXPECT_GT(serial.sched_stats.deferred_admissions, 0u);
  for (const std::size_t threads : {2u, 8u}) {
    const DrainOutcome parallel = drain_pressured_at(threads);
    ASSERT_EQ(parallel.results.size(), serial.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
      EXPECT_EQ(parallel.results[i].request_id,
                serial.results[i].request_id);
      EXPECT_EQ(parallel.results[i].output, serial.results[i].output);
      EXPECT_EQ(parallel.results[i].preemptions,
                serial.results[i].preemptions);
      EXPECT_EQ(parallel.results[i].first_token_step,
                serial.results[i].first_token_step);
      EXPECT_EQ(parallel.results[i].finish_step,
                serial.results[i].finish_step);
    }
    EXPECT_EQ(parallel.sched_stats.steps, serial.sched_stats.steps);
    EXPECT_EQ(parallel.sched_stats.admitted, serial.sched_stats.admitted);
    EXPECT_EQ(parallel.sched_stats.preemptions,
              serial.sched_stats.preemptions);
    EXPECT_EQ(parallel.sched_stats.deferred_admissions,
              serial.sched_stats.deferred_admissions);
    EXPECT_EQ(parallel.sched_stats.prefill_chunks,
              serial.sched_stats.prefill_chunks);
    EXPECT_EQ(parallel.stats.prefill_tokens, serial.stats.prefill_tokens);
    EXPECT_EQ(parallel.stats.decode_steps, serial.stats.decode_steps);
    EXPECT_EQ(parallel.stats.pages_visited, serial.stats.pages_visited);
    EXPECT_EQ(parallel.stats.tokens_visited, serial.stats.tokens_visited);
  }
}

// ---------------------------------------------------------------------------
// Streaming delivery, cancellation, and deadlines.

/// Recorder bound to a request's on_token: (token, index) pairs, in order.
struct TokenLog {
  std::vector<std::int32_t> tokens;
  std::vector<std::size_t> indices;
  void attach(Request& req) {
    req.on_token = [this](std::uint64_t, std::int32_t token,
                          std::size_t index) {
      tokens.push_back(token);
      indices.push_back(index);
    };
  }
};

TEST(Scheduler, OnTokenStreamsFullOutputInOrder) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  Request req = make_request(12, 6);
  TokenLog log;
  log.attach(req);
  std::vector<RequestResult> done;
  req.on_done = [&](const RequestResult& r) { done.push_back(r); };
  sched.submit(req);
  const auto results = sched.drain();

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RequestStatus::kFinished);
  // Every committed token was streamed, in order, before on_done fired.
  EXPECT_EQ(log.tokens, results[0].output);
  for (std::size_t i = 0; i < log.indices.size(); ++i) {
    EXPECT_EQ(log.indices[i], i);
  }
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].output, results[0].output);
  EXPECT_EQ(done[0].status, RequestStatus::kFinished);
}

TEST(Scheduler, OnTokenNeverRedeliversAcrossPreemption) {
  // The preemption scenario of PreemptionRequeuesAndMatchesUnpreemptedRun,
  // with streaming attached to the preempted request: the replay restores
  // output without re-delivering, so the stream is exactly the final
  // output — no duplicates, no gaps.
  const Request req_a = make_request(16, 12);
  Request req_b = make_request(16, 20);
  req_b.prompt[3] += 1;
  TokenLog log;
  log.attach(req_b);

  Engine engine(cfg());
  SchedulerConfig sc;
  sc.max_batch = 2;
  sc.memory.page_budget = 28;
  Scheduler sched(engine, sc);
  sched.submit(req_a);
  const auto id_b = sched.submit(req_b);
  const auto results = sched.drain();

  const RequestResult& b = by_id(results, id_b);
  EXPECT_GE(b.preemptions, 1u);
  EXPECT_EQ(log.tokens, b.output);
}

TEST(Scheduler, CancelWaitingRequestNeverStarts) {
  Engine engine(cfg());
  Scheduler sched(engine, 1);  // max_batch 1: the second request waits.
  const auto id_a = sched.submit(make_request(16, 8));
  Request waiting = make_request(16, 8);
  std::vector<RequestResult> done;
  waiting.on_done = [&](const RequestResult& r) { done.push_back(r); };
  const auto id_b = sched.submit(waiting);
  sched.step();
  ASSERT_EQ(sched.running(), 1u);
  ASSERT_EQ(sched.waiting(), 1u);

  const std::size_t created = engine.stats().sequences_created;
  EXPECT_TRUE(sched.cancel(id_b));
  const auto results = sched.drain();

  ASSERT_EQ(results.size(), 2u);
  const RequestResult& b = by_id(results, id_b);
  EXPECT_EQ(b.status, RequestStatus::kCancelled);
  EXPECT_TRUE(b.output.empty());
  EXPECT_EQ(b.first_token_step, 0u);
  // The cancelled request never touched the engine.
  EXPECT_EQ(engine.stats().sequences_created, created);
  EXPECT_EQ(by_id(results, id_a).status, RequestStatus::kFinished);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(sched.scheduler_stats().cancelled, 1u);
  // Allocator occupancy back to baseline.
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
}

TEST(Scheduler, CancelPrefillingReclaimsAllPages) {
  EngineConfig chunked = cfg();
  chunked.prefill_chunk_tokens = 8;
  Engine engine(chunked);
  Scheduler sched(engine, 2);
  const auto id = sched.submit(make_request(64, 8));
  sched.step();
  sched.step();  // two 8-token chunks fed: mid-prefill, pages held.
  EXPECT_GT(engine.total_pages_in_use(), 0u);

  EXPECT_TRUE(sched.cancel(id));
  sched.step();
  ASSERT_EQ(sched.results().size(), 1u);
  EXPECT_EQ(sched.results()[0].status, RequestStatus::kCancelled);
  EXPECT_TRUE(sched.results()[0].output.empty());
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
  EXPECT_FALSE(sched.step());  // queue fully drained.
}

TEST(Scheduler, CancelDecodingYieldsPrefixAndReclaimsPages) {
  // Reference: the uncancelled output.
  Engine reference_engine(cfg());
  Scheduler reference(reference_engine, 1);
  const auto ref_id = reference.submit(make_request(12, 16));
  const auto full = by_id(reference.drain(), ref_id).output;

  Engine engine(cfg());
  Scheduler sched(engine, 1);
  Request req = make_request(12, 16);
  TokenLog log;
  log.attach(req);
  const auto id = sched.submit(req);
  // 5 steps: step 1 prefills AND decodes (the freshly prefilled sequence
  // joins that step's decode batch), steps 2-5 decode — 6 tokens held.
  for (int i = 0; i < 5; ++i) sched.step();
  EXPECT_GT(engine.total_pages_in_use(), 0u);

  EXPECT_TRUE(sched.cancel(id));
  sched.step();
  ASSERT_EQ(sched.results().size(), 1u);
  const RequestResult& r = sched.results()[0];
  EXPECT_EQ(r.status, RequestStatus::kCancelled);
  // The partial output is a strict prefix of the uncancelled run, and
  // on_token saw exactly that prefix.
  ASSERT_EQ(r.output.size(), 6u);
  ASSERT_LT(r.output.size(), full.size());
  EXPECT_TRUE(std::equal(r.output.begin(), r.output.end(), full.begin()));
  EXPECT_EQ(log.tokens, r.output);
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
  EXPECT_EQ(engine.dense_allocator().free_pages(),
            engine.dense_allocator().capacity());
}

TEST(Scheduler, CancelUnknownOrTerminalRequestReturnsFalse) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  EXPECT_FALSE(sched.cancel(42));
  const auto id = sched.submit(make_request(8, 2));
  sched.drain();
  EXPECT_FALSE(sched.cancel(id));  // already terminal.
  EXPECT_THROW(sched.cancel(id, RequestStatus::kFinished),
               std::invalid_argument);
}

TEST(Scheduler, DeadlineDefaultAndPerRequestOverride) {
  Engine engine(cfg());
  SchedulerConfig sc;
  sc.max_batch = 2;
  sc.default_deadline_steps = 4;
  Scheduler sched(engine, sc);
  // A inherits the 4-step default and wants far more tokens than fit.
  const auto id_a = sched.submit(make_request(8, 64));
  // B overrides with a deadline comfortably past its own finish.
  Request fast = make_request(8, 3);
  fast.deadline_steps = 100;
  const auto id_b = sched.submit(fast);
  const auto results = sched.drain();

  ASSERT_EQ(results.size(), 2u);
  const RequestResult& a = by_id(results, id_a);
  const RequestResult& b = by_id(results, id_b);
  EXPECT_EQ(a.status, RequestStatus::kDeadlineExceeded);
  // Submitted at step 0, enforced at the start of step 5: it got steps
  // 1..4 of service (step 1 prefills and decodes, then 3 more decode
  // steps) — a 5-token partial output.
  EXPECT_EQ(a.output.size(), 5u);
  EXPECT_EQ(a.finish_step, 5u);
  EXPECT_EQ(b.status, RequestStatus::kFinished);
  EXPECT_EQ(b.output.size(), 3u);
  EXPECT_EQ(sched.scheduler_stats().deadline_exceeded, 1u);
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
}

TEST(Scheduler, DeadlineAppliesWhileWaiting) {
  // A request that never gets admitted before its deadline still times
  // out (the deadline clock starts at submission, not admission).
  Engine engine(cfg());
  Scheduler sched(engine, 1);
  const auto id_a = sched.submit(make_request(8, 32));
  Request starved = make_request(8, 4);
  starved.deadline_steps = 3;
  const auto id_b = sched.submit(starved);
  const auto results = sched.drain();

  const RequestResult& a = by_id(results, id_a);
  const RequestResult& b = by_id(results, id_b);
  EXPECT_EQ(a.status, RequestStatus::kFinished);
  EXPECT_EQ(b.status, RequestStatus::kDeadlineExceeded);
  EXPECT_TRUE(b.output.empty());
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
}

/// Mixed terminal traffic under memory pressure: cancellations scripted at
/// fixed steps, deadlines, and preemption all firing in one drain.
DrainOutcome drain_mixed_at(std::size_t decode_threads) {
  EngineConfig ec = sparse_cfg();
  ec.prefill_chunk_tokens = 8;
  Engine engine(ec);
  SchedulerConfig sc;
  sc.max_batch = 4;
  sc.decode_threads = decode_threads;
  sc.memory.page_budget = 30;
  Scheduler sched(engine, sc);
  const std::size_t prompts[] = {12, 40, 8, 24, 16, 33};
  const std::size_t budgets[] = {6, 30, 9, 5, 40, 7};
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < 6; ++i) {
    Request req = make_request(prompts[i], budgets[i]);
    if (i == 4) req.deadline_steps = 9;  // dies mid-decode.
    ids.push_back(sched.submit(req));
  }
  // Scripted cancellations at fixed step indices keep the run
  // deterministic at any decode thread count: ids[1] is cancelled
  // mid-decode (partial output), ids[3] while still waiting.
  std::size_t steps = 0;
  bool more = true;
  while (more) {
    more = sched.step();
    ++steps;
    if (steps == 10) sched.cancel(ids[1]);
    if (steps == 14) sched.cancel(ids[3]);
  }
  DrainOutcome out;
  out.results = sched.results();
  out.stats = engine.stats();
  out.sched_stats = sched.scheduler_stats();
  // Whatever the terminal mix, every page went back to the pool.
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
  EXPECT_EQ(engine.stats().sequences_created,
            engine.stats().sequences_released);
  return out;
}

TEST(Scheduler, MixedCancelDeadlinePreemptionDrainDeterministicAcrossThreads) {
  const DrainOutcome serial = drain_mixed_at(1);
  ASSERT_EQ(serial.results.size(), 6u);
  // All three terminal mechanisms genuinely fired.
  EXPECT_EQ(serial.sched_stats.cancelled, 2u);
  EXPECT_EQ(serial.sched_stats.deadline_exceeded, 1u);
  EXPECT_GT(serial.sched_stats.preemptions, 0u);
  std::size_t finished = 0;
  for (const RequestResult& r : serial.results) {
    if (r.status == RequestStatus::kFinished) ++finished;
  }
  EXPECT_EQ(finished, 3u);

  for (const std::size_t threads : {2u, 8u}) {
    const DrainOutcome parallel = drain_mixed_at(threads);
    ASSERT_EQ(parallel.results.size(), serial.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
      EXPECT_EQ(parallel.results[i].request_id,
                serial.results[i].request_id);
      EXPECT_EQ(parallel.results[i].status, serial.results[i].status);
      EXPECT_EQ(parallel.results[i].output, serial.results[i].output);
      EXPECT_EQ(parallel.results[i].finish_step,
                serial.results[i].finish_step);
    }
    EXPECT_EQ(parallel.sched_stats.steps, serial.sched_stats.steps);
    EXPECT_EQ(parallel.sched_stats.cancelled, serial.sched_stats.cancelled);
    EXPECT_EQ(parallel.sched_stats.deadline_exceeded,
              serial.sched_stats.deadline_exceeded);
    EXPECT_EQ(parallel.sched_stats.preemptions,
              serial.sched_stats.preemptions);
  }
}

TEST(Scheduler, CrossThreadSubmitAndCancelWhileServing) {
  // The serving-thread contract: submit() and cancel() race freely
  // against a scheduler thread looping run_until_idle()/wait_for_work()
  // (this is the suite the CI TSan job watches).
  Engine engine(cfg());
  Scheduler sched(engine, 4);
  std::thread server([&] {
    while (!sched.stop_requested()) {
      sched.run_until_idle();
      sched.wait_for_work(std::chrono::milliseconds(5));
    }
  });
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(sched.submit(make_request(8 + (i % 3) * 8, 6)));
    if (i % 4 == 3) sched.cancel(ids[i - 1]);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (sched.live_requests() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sched.request_stop();
  server.join();
  EXPECT_EQ(sched.live_requests(), 0u);
  EXPECT_EQ(sched.results().size(), 16u);
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
}

}  // namespace
}  // namespace lserve::serve
