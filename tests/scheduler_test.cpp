// Tests for the continuous-batching scheduler (src/serve/scheduler).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "serve/scheduler.hpp"
#include "serve/thread_pool.hpp"

namespace lserve::serve {
namespace {

EngineConfig cfg() {
  EngineConfig c = baselines::vllm_config(model::tiny());
  c.dense_pages.page_size = 8;
  c.dense_pages.logical_page_size = 8;
  c.tiling = {8, 8};
  c.pool_pages = 512;
  return c;
}

Request make_request(std::size_t prompt_len, std::size_t new_tokens) {
  Request req;
  req.prompt.resize(prompt_len);
  for (std::size_t i = 0; i < prompt_len; ++i) {
    req.prompt[i] = static_cast<std::int32_t>((i * 13 + 5) % 251);
  }
  req.max_new_tokens = new_tokens;
  return req;
}

TEST(Scheduler, SingleRequestRunsToCompletion) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  sched.submit(make_request(16, 5));
  const auto results = sched.drain();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].output.size(), 5u);
  EXPECT_EQ(results[0].prompt_tokens, 16u);
  EXPECT_EQ(results[0].decode_steps, 4u);
}

TEST(Scheduler, AssignsUniqueRequestIds) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  const auto id0 = sched.submit(make_request(8, 2));
  const auto id1 = sched.submit(make_request(8, 2));
  EXPECT_NE(id0, id1);
}

TEST(Scheduler, BatchLimitRespected) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  for (int i = 0; i < 5; ++i) sched.submit(make_request(8, 3));
  sched.step();
  EXPECT_LE(sched.running(), 2u);
  EXPECT_EQ(sched.waiting(), 3u);
  sched.drain();
  EXPECT_EQ(sched.results().size(), 5u);
}

TEST(Scheduler, ContinuousAdmissionBackfillsSlots) {
  Engine engine(cfg());
  Scheduler sched(engine, 1);
  sched.submit(make_request(8, 2));   // finishes fast
  sched.submit(make_request(8, 6));   // admitted after the first retires
  std::size_t steps = 0;
  while (sched.step()) ++steps;
  EXPECT_EQ(sched.results().size(), 2u);
  // Short request completes before the long one starts decoding much.
  EXPECT_EQ(sched.results()[0].decode_steps, 1u);
  EXPECT_EQ(sched.results()[1].decode_steps, 5u);
}

TEST(Scheduler, ReleasesKvPagesAfterCompletion) {
  Engine engine(cfg());
  Scheduler sched(engine, 4);
  for (int i = 0; i < 3; ++i) sched.submit(make_request(24, 3));
  sched.drain();
  EXPECT_EQ(engine.dense_allocator().pages_in_use(), 0u);
}

TEST(Scheduler, ResultsMatchDirectEngineCalls) {
  // A scheduled request must produce the same tokens as calling the engine
  // by hand (scheduling must not perturb computation).
  Engine e1(cfg());
  Scheduler sched(e1, 1);
  Request req = make_request(12, 4);
  sched.submit(req);
  const auto results = sched.drain();

  Engine e2(cfg());
  const auto seq = e2.create_sequence();
  const auto direct =
      e2.generate(seq, std::span<const std::int32_t>(req.prompt), 4);
  EXPECT_EQ(results[0].output, direct);
}

TEST(Scheduler, EmptyQueueStepReturnsFalse) {
  Engine engine(cfg());
  Scheduler sched(engine, 2);
  EXPECT_FALSE(sched.step());
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 17) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool stays usable after a failed region.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

// LServe-policy config (dynamic selector + streaming heads + reuse) so the
// concurrency test exercises the full sparse decode path.
EngineConfig sparse_cfg() {
  EngineConfig c = baselines::lserve_config(model::tiny());
  c.dense_pages.page_size = 8;
  c.dense_pages.logical_page_size = 4;
  c.streaming = {/*sink_tokens=*/4, /*local_tokens=*/8};
  c.tiling = {8, 8};
  c.pool_pages = 512;
  return c;
}

struct DrainOutcome {
  std::vector<RequestResult> results;
  EngineStats stats;
};

DrainOutcome drain_at(std::size_t decode_threads) {
  Engine engine(sparse_cfg());
  Scheduler sched(engine, 4, decode_threads);
  // Mixed prompt lengths and decode budgets (seeded via make_request) so
  // admission, retirement and backfill all fire mid-run.
  const std::size_t prompts[] = {12, 40, 8, 24, 16, 33};
  const std::size_t budgets[] = {6, 3, 9, 5, 2, 7};
  for (std::size_t i = 0; i < 6; ++i) {
    sched.submit(make_request(prompts[i], budgets[i]));
  }
  DrainOutcome out;
  out.results = sched.drain();
  out.stats = engine.stats();
  return out;
}

TEST(Scheduler, ParallelStepBitIdenticalToSerial) {
  const DrainOutcome serial = drain_at(1);
  ASSERT_EQ(serial.results.size(), 6u);
  for (const std::size_t threads : {2u, 8u}) {
    const DrainOutcome parallel = drain_at(threads);
    // Completion order and every token must match bit-for-bit.
    ASSERT_EQ(parallel.results.size(), serial.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
      EXPECT_EQ(parallel.results[i].request_id,
                serial.results[i].request_id);
      EXPECT_EQ(parallel.results[i].output, serial.results[i].output);
      EXPECT_EQ(parallel.results[i].decode_steps,
                serial.results[i].decode_steps);
    }
    // Telemetry merges deterministically after each batch's join.
    EXPECT_EQ(parallel.stats.prefill_tokens, serial.stats.prefill_tokens);
    EXPECT_EQ(parallel.stats.decode_steps, serial.stats.decode_steps);
    EXPECT_EQ(parallel.stats.pages_visited, serial.stats.pages_visited);
    EXPECT_EQ(parallel.stats.tokens_visited, serial.stats.tokens_visited);
    EXPECT_EQ(parallel.stats.selector_runs, serial.stats.selector_runs);
    EXPECT_EQ(parallel.stats.selector_reuses,
              serial.stats.selector_reuses);
  }
}

TEST(Scheduler, ParallelDrainReleasesAllPages) {
  Engine engine(sparse_cfg());
  Scheduler sched(engine, 4, 4);
  for (int i = 0; i < 6; ++i) sched.submit(make_request(20, 4));
  sched.drain();
  EXPECT_EQ(engine.dense_allocator().pages_in_use(), 0u);
  EXPECT_EQ(engine.stream_allocator().pages_in_use(), 0u);
}

}  // namespace
}  // namespace lserve::serve
