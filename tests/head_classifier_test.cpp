// Tests for DuoAttention-style head classification
// (src/sparse/head_classifier).
#include <gtest/gtest.h>

#include <vector>

#include "model/workload.hpp"
#include "numeric/rng.hpp"
#include "sparse/head_classifier.hpp"

namespace lserve::sparse {
namespace {

// Builds a (queries, stream) pair for a head that depends on long-range
// retrieval: needle planted mid-context (outside the Λ mask of later
// rows), probes aligned to it with length-aware strength.
float retrieval_head_gate(std::uint64_t seed) {
  model::StreamConfig sc;
  sc.n_tokens = 384;
  sc.head_dim = 32;
  sc.seed = seed;
  model::TokenStream stream = model::smooth_stream(sc);
  const float strength = model::salient_strength(sc.n_tokens, sc.head_dim);
  const auto needle =
      model::plant_needle(stream, sc.n_tokens / 2, strength, seed + 1);
  num::Tensor queries(sc.n_tokens, sc.head_dim);
  for (std::size_t t = 0; t < sc.n_tokens; ++t) {
    const auto q = model::probe_query(needle, strength, 0.1f,
                                      num::split_seed(seed, t));
    std::copy(q.begin(), q.end(), queries.row(t));
  }
  return measure_head_gate(queries.view(), stream.keys.view(),
                           stream.values.view(), /*sink=*/16, /*local=*/64,
                           0.1768f);
}

// A head whose queries track the recent key walk (locally supported), with
// enough gain that the local window dominates the softmax.
float local_head_gate(std::uint64_t seed) {
  model::StreamConfig sc;
  sc.n_tokens = 384;
  sc.head_dim = 32;
  sc.seed = seed;
  model::TokenStream stream = model::smooth_stream(sc);
  const float strength = model::salient_strength(sc.n_tokens, sc.head_dim);
  const float gain = strength * strength;
  num::Tensor queries(sc.n_tokens, sc.head_dim);
  for (std::size_t t = 0; t < sc.n_tokens; ++t) {
    for (std::size_t c = 0; c < sc.head_dim; ++c) {
      queries.at(t, c) = gain * stream.keys.at(t, c);
    }
  }
  return measure_head_gate(queries.view(), stream.keys.view(),
                           stream.values.view(), 16, 64, 0.1768f);
}

TEST(HeadGate, RetrievalHeadsScoreHigherThanLocalHeads) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    EXPECT_GT(retrieval_head_gate(seed), local_head_gate(seed) + 0.05f)
        << "seed " << seed;
  }
}

TEST(HeadGate, BoundedInUnitInterval) {
  const float g = retrieval_head_gate(4);
  EXPECT_GE(g, 0.0f);
  EXPECT_LT(g, 1.0f);
}

TEST(Classification, ExactStreamingCount) {
  const std::vector<float> gates{0.9f, 0.1f, 0.5f, 0.2f, 0.8f, 0.3f};
  const auto kinds = classify_by_quantile(gates, 0.5);
  std::size_t streaming = 0;
  for (auto k : kinds) streaming += (k == kv::HeadKind::kStreaming);
  EXPECT_EQ(streaming, 3u);
  // The three lowest gates (0.1, 0.2, 0.3 at indices 1, 3, 5) stream.
  EXPECT_EQ(kinds[1], kv::HeadKind::kStreaming);
  EXPECT_EQ(kinds[3], kv::HeadKind::kStreaming);
  EXPECT_EQ(kinds[5], kv::HeadKind::kStreaming);
  EXPECT_EQ(kinds[0], kv::HeadKind::kDense);
}

TEST(Classification, ZeroFractionKeepsAllDense) {
  const std::vector<float> gates{0.1f, 0.2f};
  for (auto k : classify_by_quantile(gates, 0.0)) {
    EXPECT_EQ(k, kv::HeadKind::kDense);
  }
}

TEST(Classification, FullFractionStreamsEverything) {
  const std::vector<float> gates{0.1f, 0.2f, 0.9f};
  for (auto k : classify_by_quantile(gates, 1.0)) {
    EXPECT_EQ(k, kv::HeadKind::kStreaming);
  }
}

TEST(Classification, TiesBrokenDeterministically) {
  const std::vector<float> gates{0.5f, 0.5f, 0.5f, 0.5f};
  const auto kinds = classify_by_quantile(gates, 0.5);
  std::size_t streaming = 0;
  for (auto k : kinds) streaming += (k == kv::HeadKind::kStreaming);
  EXPECT_EQ(streaming, 2u);
}

TEST(Classification, ThresholdIsQuantile) {
  const std::vector<float> gates{0.1f, 0.2f, 0.3f, 0.4f};
  // tau at 50% = 2nd lowest gate = 0.2 (DuoAttention's "median" rule).
  EXPECT_FLOAT_EQ(gate_threshold(gates, 0.5), 0.2f);
  EXPECT_FLOAT_EQ(gate_threshold(gates, 1.0), 0.4f);
  EXPECT_FLOAT_EQ(gate_threshold(gates, 0.0), -1.0f);
}

TEST(HeadGate, EndToEndSeparationClassifiesCorrectly) {
  // Mixed population: even indices retrieval-like, odd local-like; the
  // classifier must stream exactly the local heads.
  std::vector<float> gates;
  for (std::uint64_t i = 0; i < 8; ++i) {
    gates.push_back(i % 2 == 0 ? retrieval_head_gate(10 + i)
                               : local_head_gate(10 + i));
  }
  const auto kinds = classify_by_quantile(gates, 0.5);
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_EQ(kinds[i], i % 2 == 0 ? kv::HeadKind::kDense
                                   : kv::HeadKind::kStreaming)
        << "head " << i;
  }
}

}  // namespace
}  // namespace lserve::sparse
