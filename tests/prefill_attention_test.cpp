// Tests for the unified block-sparse prefill kernel and streaming prefill
// (src/attn/block_sparse_prefill, src/attn/streaming_attention).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "attn/block_sparse_prefill.hpp"
#include "numeric/math.hpp"
#include "attn/dense_attention.hpp"
#include "attn/streaming_attention.hpp"
#include "numeric/rng.hpp"

namespace lserve::attn {
namespace {

struct Qkv {
  num::Tensor q, k, v;
};

Qkv random_qkv(std::size_t n, std::size_t d, std::uint64_t seed) {
  Qkv x{num::Tensor(n, d), num::Tensor(n, d), num::Tensor(n, d)};
  num::Rng rng(seed);
  for (auto* t : {&x.q, &x.k, &x.v}) {
    for (std::size_t i = 0; i < t->size(); ++i) {
      t->data()[i] = rng.gaussian();
    }
  }
  return x;
}

float max_abs_diff(const num::Tensor& a, const num::Tensor& b) {
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

class CausalEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>> {};

// With the full causal mask, the block-sparse kernel must reproduce dense
// attention for every tiling — the "unified" claim of §3.1.
TEST_P(CausalEquivalence, BlockSparseEqualsDenseReference) {
  const auto [n, d, tq, tk] = GetParam();
  const Qkv x = random_qkv(n, d, 42 + n);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  num::Tensor ref(n, d), out(n, d);
  dense_prefill_reference(x.q.view(), x.k.view(), x.v.view(), scale,
                          ref.view());
  BlockMask mask = BlockMask::causal(n, tq, tk);
  mask.finalize();
  block_sparse_prefill(x.q.view(), x.k.view(), x.v.view(), mask, {tq, tk},
                       scale, out.view());
  EXPECT_LT(max_abs_diff(ref, out), 2e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CausalEquivalence,
    ::testing::Values(std::make_tuple(64, 16, 16, 16),
                      std::make_tuple(100, 32, 16, 16),
                      std::make_tuple(128, 16, 32, 16),
                      std::make_tuple(77, 16, 16, 32),
                      std::make_tuple(96, 8, 64, 32),
                      std::make_tuple(33, 16, 8, 8)));

TEST(BlockSparsePrefill, BranchyMatchesIteratorKernel) {
  const std::size_t n = 96, d = 16;
  const Qkv x = random_qkv(n, d, 7);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  BlockMask mask = BlockMask::streaming(n, 16, 16, 1, 2);
  mask.finalize();
  num::Tensor a(n, d), b(n, d);
  block_sparse_prefill(x.q.view(), x.k.view(), x.v.view(), mask, {16, 16},
                       scale, a.view());
  block_sparse_prefill_branchy(x.q.view(), x.k.view(), x.v.view(), mask,
                               {16, 16}, scale, b.view());
  EXPECT_LT(max_abs_diff(a, b), 1e-6f);
}

TEST(StreamingPrefill, MatchesTokenReferenceWhenBlockAligned) {
  // sink = 1 block (16 tokens), local = 2 blocks (32 tokens): with TQ=TK=16
  // and the reference's local window aligned to blocks, outputs agree on
  // rows whose Λ window is block-aligned. We use exact block multiples and
  // compare the block kernel against itself via the mask reference instead:
  // the streaming kernel must equal dense attention restricted to the
  // streaming mask (token-granular within kept blocks is plain causal).
  const std::size_t n = 128, d = 16;
  const Qkv x = random_qkv(n, d, 11);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  num::Tensor out(n, d);
  streaming_prefill(x.q.view(), x.k.view(), x.v.view(), {1, 2}, {16, 16},
                    scale, out.view());

  // Reference: per row, softmax over keys in kept blocks only.
  BlockMask mask = BlockMask::streaming(n, 16, 16, 1, 2);
  num::Tensor ref(n, d);
  std::vector<float> scores;
  std::vector<std::size_t> cols;
  for (std::size_t i = 0; i < n; ++i) {
    scores.clear();
    cols.clear();
    const std::size_t qb = i / 16;
    for (std::size_t j = 0; j <= i; ++j) {
      if (!mask.kept(qb, j / 16)) continue;
      cols.push_back(j);
      scores.push_back(scale * num::dot(x.q.row(i), x.k.row(j), d));
    }
    num::softmax_inplace(scores.data(), scores.size());
    float* oi = ref.row(i);
    std::fill(oi, oi + d, 0.0f);
    for (std::size_t t = 0; t < cols.size(); ++t) {
      num::axpy(scores[t], x.v.row(cols[t]), oi, d);
    }
  }
  EXPECT_LT(max_abs_diff(ref, out), 2e-4f);
}

TEST(StreamingPrefill, EarlyRowsEqualDense) {
  // Rows inside sink+local coverage see full history: identical to dense.
  const std::size_t n = 64, d = 8;
  const Qkv x = random_qkv(n, d, 13);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  num::Tensor dense(n, d), stream(n, d);
  dense_prefill_reference(x.q.view(), x.k.view(), x.v.view(), scale,
                          dense.view());
  streaming_prefill(x.q.view(), x.k.view(), x.v.view(), {1, 3}, {16, 16},
                    scale, stream.view());
  // First 4 blocks of rows (sink 1 + local 3 covers diag <= 3): all rows.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < d; ++c) {
      EXPECT_NEAR(stream.at(i, c), dense.at(i, c), 2e-4f) << "row " << i;
    }
  }
}

TEST(StreamingCostFraction, NearlyFreeAtLongContext) {
  const double frac_short = streaming_cost_fraction(512, 64, 256);
  const double frac_long = streaming_cost_fraction(65536, 64, 256);
  EXPECT_GT(frac_short, frac_long);
  EXPECT_LT(frac_long, 0.02);  // ~(64+256)/32768
  EXPECT_DOUBLE_EQ(streaming_cost_fraction(0, 64, 256), 1.0);
}

TEST(BlockSparsePrefill, SkippedBlocksReduceAttentionMass) {
  // Sanity: a mask missing a high-score block must change the output.
  const std::size_t n = 64, d = 8;
  const Qkv x = random_qkv(n, d, 17);
  const float scale = 1.0f;
  BlockMask full = BlockMask::causal(n, 16, 16);
  full.finalize();
  BlockMask pruned = BlockMask::causal(n, 16, 16);
  pruned.set(3, 1, false);  // drop a mid-context block for the last rows
  pruned.finalize();
  num::Tensor a(n, d), b(n, d);
  block_sparse_prefill(x.q.view(), x.k.view(), x.v.view(), full, {16, 16},
                       scale, a.view());
  block_sparse_prefill(x.q.view(), x.k.view(), x.v.view(), pruned, {16, 16},
                       scale, b.view());
  EXPECT_GT(max_abs_diff(a, b), 1e-4f);
  // Rows outside q-block 3 are untouched.
  for (std::size_t i = 0; i < 48; ++i) {
    for (std::size_t c = 0; c < d; ++c) {
      EXPECT_FLOAT_EQ(a.at(i, c), b.at(i, c));
    }
  }
}

}  // namespace
}  // namespace lserve::attn
