// Tests for chunked prefill (src/attn/chunked_prefill + engine wiring).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "attn/chunked_prefill.hpp"
#include "attn/dense_attention.hpp"
#include "baselines/baseline_engines.hpp"
#include "numeric/rng.hpp"
#include "serve/engine.hpp"

namespace lserve {
namespace {

TEST(ChunkedPrefillKernel, EmptyHistoryEqualsBlockSparsePrefill) {
  const std::size_t n = 64, d = 16;
  num::Rng rng(1);
  num::Tensor q(n, d), k(n, d), v(n, d), a(n, d), b(n, d);
  for (auto* t : {&q, &k, &v}) {
    for (std::size_t i = 0; i < t->size(); ++i) t->data()[i] = rng.gaussian();
  }
  attn::BlockMask mask = attn::BlockMask::causal(n, 16, 16);
  mask.finalize();
  kv::PageConfig pages;
  pages.page_size = 16;
  pages.logical_page_size = 16;
  pages.head_dim = d;
  kv::PageAllocator alloc(pages, 2);
  attn::block_sparse_prefill(q.view(), k.view(), v.view(), mask, {16, 16},
                             0.25f, a.view());
  attn::chunked_prefill_head(alloc, {}, 0, q.view(), k.view(), v.view(),
                             mask, {16, 16}, 0.25f, b.view());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(ChunkedPrefillKernel, HistoryPlusChunkEqualsMonolithic) {
  // Split a 48-token sequence into 32 cached + 16 chunk; the chunk rows'
  // outputs must equal the corresponding rows of a monolithic prefill.
  const std::size_t total = 48, hist = 32, d = 16;
  num::Rng rng(2);
  num::Tensor q(total, d), k(total, d), v(total, d), mono(total, d);
  for (auto* t : {&q, &k, &v}) {
    for (std::size_t i = 0; i < t->size(); ++i) t->data()[i] = rng.gaussian();
  }
  attn::dense_prefill_reference(q.view(), k.view(), v.view(), 0.25f,
                                mono.view());

  kv::PageConfig pages;
  pages.page_size = 8;
  pages.logical_page_size = 8;
  pages.head_dim = d;
  kv::PageAllocator alloc(pages, 8);
  kv::HeadCache head;
  for (std::size_t t = 0; t < hist; ++t) {
    head.append(alloc, k.row(t), v.row(t));
  }
  const auto history = kv::full_page_table(head.view(alloc));

  const std::size_t chunk = total - hist;
  attn::BlockMask mask = attn::BlockMask::causal(chunk, 8, 8);
  mask.finalize();
  num::Tensor out(chunk, d);
  attn::chunked_prefill_head(
      alloc, history, hist, q.view().rows_slice(hist, chunk),
      k.view().rows_slice(hist, chunk), v.view().rows_slice(hist, chunk),
      mask, {8, 8}, 0.25f, out.view());
  for (std::size_t r = 0; r < chunk; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      EXPECT_NEAR(out.at(r, c), mono.at(hist + r, c), 1e-4f) << "row " << r;
    }
  }
}

TEST(ChunkedPrefillKernel, PartialHistoryPageHandled) {
  // 19 cached tokens: the trailing block is partial.
  const std::size_t hist = 19, chunk = 8, d = 8;
  num::Rng rng(3);
  num::Tensor q(hist + chunk, d), k(hist + chunk, d), v(hist + chunk, d);
  for (auto* t : {&q, &k, &v}) {
    for (std::size_t i = 0; i < t->size(); ++i) t->data()[i] = rng.gaussian();
  }
  num::Tensor mono(hist + chunk, d);
  attn::dense_prefill_reference(q.view(), k.view(), v.view(), 0.354f,
                                mono.view());
  kv::PageConfig pages;
  pages.page_size = 8;
  pages.logical_page_size = 8;
  pages.head_dim = d;
  kv::PageAllocator alloc(pages, 8);
  kv::HeadCache head;
  for (std::size_t t = 0; t < hist; ++t) head.append(alloc, k.row(t),
                                                     v.row(t));
  attn::BlockMask mask = attn::BlockMask::causal(chunk, 8, 8);
  mask.finalize();
  num::Tensor out(chunk, d);
  attn::chunked_prefill_head(alloc, kv::full_page_table(head.view(alloc)),
                             hist, q.view().rows_slice(hist, chunk),
                             k.view().rows_slice(hist, chunk),
                             v.view().rows_slice(hist, chunk), mask, {8, 8},
                             0.354f, out.view());
  for (std::size_t r = 0; r < chunk; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      EXPECT_NEAR(out.at(r, c), mono.at(hist + r, c), 1e-4f);
    }
  }
}

serve::EngineConfig dense_cfg(std::size_t chunk) {
  serve::EngineConfig cfg = baselines::vllm_config(model::tiny());
  cfg.dense_pages.page_size = 8;
  cfg.dense_pages.logical_page_size = 8;
  cfg.tiling = {8, 8};
  cfg.prefill_chunk_tokens = chunk;
  cfg.pool_pages = 256;
  return cfg;
}

class EngineChunking : public ::testing::TestWithParam<std::size_t> {};

// Chunked prefill through the whole engine must reproduce the monolithic
// engine's generation exactly (fp16 KV: cache reads are lossless).
TEST_P(EngineChunking, MatchesMonolithicGeneration) {
  std::vector<std::int32_t> ids(52);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int32_t>((9 * i + 4) % 251);
  }
  serve::Engine mono(dense_cfg(0));
  serve::Engine chunked(dense_cfg(GetParam()));
  const auto sm = mono.create_sequence();
  const auto sc = chunked.create_sequence();
  EXPECT_EQ(mono.generate(sm, ids, 6), chunked.generate(sc, ids, 6))
      << "chunk=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, EngineChunking,
                         ::testing::Values(8, 16, 24, 52, 13));

TEST(EngineChunking, StreamingHeadsCoveringConfigStillMatches) {
  // LServe config whose Λ window and budget cover the whole prompt:
  // chunked sparse == monolithic dense.
  std::vector<std::int32_t> ids(48);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int32_t>((7 * i + 2) % 251);
  }
  serve::EngineConfig sparse_cfg = dense_cfg(16);
  sparse_cfg.streaming_fraction = 0.5;
  sparse_cfg.streaming = {/*sink=*/64, /*local=*/512};
  sparse_cfg.dynamic_decode = true;
  sparse_cfg.selector.token_budget = 4096;
  serve::Engine mono(dense_cfg(0));
  serve::Engine sparse(sparse_cfg);
  const auto sm = mono.create_sequence();
  const auto ss = sparse.create_sequence();
  EXPECT_EQ(mono.generate(sm, ids, 6), sparse.generate(ss, ids, 6));
}

TEST(EngineChunking, ChunkedLServeWithRealSparsityIsWellFormed) {
  serve::EngineConfig cfg = baselines::lserve_config(model::tiny());
  cfg.dense_pages.page_size = 8;
  cfg.dense_pages.logical_page_size = 4;
  cfg.tiling = {8, 8};
  cfg.streaming = {/*sink=*/8, /*local=*/32};
  cfg.selector.token_budget = 32;
  cfg.prefill_chunk_tokens = 16;
  serve::Engine engine(cfg);
  std::vector<std::int32_t> ids(80);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int32_t>((3 * i + 1) % 251);
  }
  const auto seq = engine.create_sequence();
  const auto out = engine.generate(seq, ids, 4);
  EXPECT_EQ(out.size(), 4u);
  for (auto t : out) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 256);
  }
  engine.release_sequence(seq);
  EXPECT_EQ(engine.dense_allocator().pages_in_use(), 0u);
  EXPECT_EQ(engine.stream_allocator().pages_in_use(), 0u);
}

}  // namespace
}  // namespace lserve
