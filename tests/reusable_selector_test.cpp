// Tests for the reusable page selector (src/sparse/reusable_selector).
#include <gtest/gtest.h>

#include "sparse/reusable_selector.hpp"

namespace lserve::sparse {
namespace {

kv::SelectedPageTable table_of(std::uint32_t block) {
  return {{kv::PageId{0}, block}};
}

TEST(ReusableSelector, IntervalOneRecomputesEveryStep) {
  ReusableSelector sel(/*slots=*/1, /*reuse_interval=*/1);
  int calls = 0;
  for (std::size_t step = 0; step < 5; ++step) {
    sel.get(0, step, [&] {
      ++calls;
      return table_of(static_cast<std::uint32_t>(step));
    });
  }
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(sel.selector_runs(), 5u);
  EXPECT_EQ(sel.reuses(), 0u);
}

TEST(ReusableSelector, ReusesWithinChunk) {
  ReusableSelector sel(1, 4);
  int calls = 0;
  for (std::size_t step = 0; step < 8; ++step) {
    const auto& t = sel.get(0, step, [&] {
      ++calls;
      return table_of(static_cast<std::uint32_t>(step));
    });
    // Steps 0-3 see the table computed at step 0; steps 4-7 at step 4.
    EXPECT_EQ(t[0].block, step < 4 ? 0u : 4u);
  }
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(sel.reuses(), 6u);
}

TEST(ReusableSelector, SlotsAreIndependent) {
  ReusableSelector sel(3, 4);
  int calls = 0;
  for (std::size_t slot = 0; slot < 3; ++slot) {
    sel.get(slot, 0, [&] {
      ++calls;
      return table_of(static_cast<std::uint32_t>(slot));
    });
  }
  EXPECT_EQ(calls, 3);
  // Re-query within the chunk: no new calls, correct per-slot tables.
  for (std::size_t slot = 0; slot < 3; ++slot) {
    const auto& t = sel.get(slot, 2, [&] {
      ++calls;
      return table_of(99);
    });
    EXPECT_EQ(t[0].block, slot);
  }
  EXPECT_EQ(calls, 3);
}

TEST(ReusableSelector, ResetInvalidatesCache) {
  ReusableSelector sel(1, 8);
  int calls = 0;
  auto recompute = [&] {
    ++calls;
    return table_of(7);
  };
  sel.get(0, 0, recompute);
  sel.reset();
  sel.get(0, 1, recompute);  // same chunk, but cache was dropped
  EXPECT_EQ(calls, 2);
}

TEST(ReusableSelector, ZeroIntervalTreatedAsOne) {
  ReusableSelector sel(1, 0);
  EXPECT_EQ(sel.reuse_interval(), 1u);
}

TEST(ReusableSelector, SelectorRunReductionIsInterval) {
  // The paper's 4x claim: over N steps with interval C, the selector runs
  // ceil(N/C) times.
  ReusableSelector sel(1, 4);
  int calls = 0;
  for (std::size_t step = 0; step < 64; ++step) {
    sel.get(0, step, [&] {
      ++calls;
      return table_of(0);
    });
  }
  EXPECT_EQ(calls, 16);
}

TEST(ReusableSelector, NonZeroStartStepStillWorks) {
  // A sequence admitted mid-generation starts at its own step counter.
  ReusableSelector sel(1, 4);
  int calls = 0;
  for (std::size_t step = 6; step < 10; ++step) {
    sel.get(0, step, [&] {
      ++calls;
      return table_of(static_cast<std::uint32_t>(step));
    });
  }
  // Steps 6,7 -> chunk 1; steps 8,9 -> chunk 2: two computations.
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace lserve::sparse
