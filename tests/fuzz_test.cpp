// Randomized stress / failure-injection tests: long random operation
// sequences against the stateful components (allocator, caches, scheduler,
// reusable selector), checking conservation invariants after every step.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "kv/two_way_cache.hpp"
#include "numeric/rng.hpp"
#include "policy_test_util.hpp"
#include "serve/scheduler.hpp"
#include "sparse/reusable_selector.hpp"

namespace lserve {
namespace {

TEST(AllocatorFuzz, RandomAllocFreeConservesCounts) {
  kv::PageConfig cfg;
  cfg.page_size = 8;
  cfg.logical_page_size = 8;
  cfg.head_dim = 4;
  kv::PageAllocator alloc(cfg, 4);
  num::Rng rng(123);
  std::vector<kv::PageId> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.next_double() < 0.55) {
      live.push_back(alloc.allocate());
    } else {
      const std::size_t idx = rng.next_below(live.size());
      alloc.release(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(alloc.pages_in_use(), live.size());
    ASSERT_GE(alloc.capacity(), live.size());
  }
  for (kv::PageId id : live) alloc.release(id);
  EXPECT_EQ(alloc.pages_in_use(), 0u);
  EXPECT_GE(alloc.peak_pages_in_use(), 1u);
}

TEST(HeadCacheFuzz, RandomLengthsAlwaysRoundTrip) {
  kv::PageConfig cfg;
  cfg.page_size = 8;
  cfg.logical_page_size = 4;
  cfg.head_dim = 8;
  num::Rng rng(321);
  for (int trial = 0; trial < 20; ++trial) {
    kv::PageAllocator alloc(cfg, 4);
    kv::HeadCache head;
    const std::size_t n = 1 + rng.next_below(200);
    std::vector<std::vector<float>> keys;
    for (std::size_t t = 0; t < n; ++t) {
      std::vector<float> k(8), v(8);
      rng.fill_gaussian(k, 1.0f);
      rng.fill_gaussian(v, 1.0f);
      head.append(alloc, k.data(), v.data());
      keys.push_back(k);
    }
    // Spot-check random positions.
    std::vector<float> out(8);
    for (int probe = 0; probe < 8; ++probe) {
      const std::size_t t = rng.next_below(n);
      head.load_key(alloc, t, out.data());
      for (std::size_t c = 0; c < 8; ++c) {
        ASSERT_FLOAT_EQ(out[c], keys[t][c]) << "trial " << trial;
      }
    }
    head.release(alloc);
    ASSERT_EQ(alloc.pages_in_use(), 0u);
  }
}

TEST(StreamingCacheFuzz, WindowInvariantUnderRandomLengths) {
  kv::PageConfig cfg;
  cfg.page_size = 8;
  cfg.logical_page_size = 8;
  cfg.head_dim = 4;
  cfg.track_kstats = false;
  num::Rng rng(55);
  for (int trial = 0; trial < 15; ++trial) {
    const kv::StreamingConfig sc{
        /*sink_tokens=*/8 * (1 + rng.next_below(3)),
        /*local_tokens=*/8 * (1 + rng.next_below(5))};
    kv::PageAllocator alloc(cfg, 16);
    kv::StreamingHeadCache head;
    const std::size_t n = 50 + rng.next_below(500);
    std::vector<float> k(4, 1.0f), v(4, 2.0f);
    for (std::size_t t = 0; t < n; ++t) head.append(alloc, sc, k.data(),
                                                    v.data());
    // Invariant: retained blocks = sink blocks + enough trailing blocks to
    // cover the local window, and nothing else.
    const auto table = head.index_table();
    const std::size_t sink_blocks = (sc.sink_tokens + 7) / 8;
    std::size_t local_covered = 0;
    for (const auto& e : table) {
      if (e.block < sink_blocks) continue;  // sink page
      const std::size_t begin = e.block * 8;
      const std::size_t end = std::min(begin + 8, n);
      ASSERT_GT(end + sc.local_tokens, n)
          << "retained page fully outside the local window";
      local_covered += end - begin;
    }
    ASSERT_GE(local_covered, std::min<std::size_t>(
                                 sc.local_tokens,
                                 n - std::min(n, sc.sink_tokens)));
    head.release(alloc);
    ASSERT_EQ(alloc.pages_in_use(), 0u);
  }
}

TEST(SchedulerFuzz, RandomRequestMixAllComplete) {
  serve::EngineConfig cfg = baselines::vllm_config(model::tiny());
  cfg.dense_pages.page_size = 8;
  cfg.dense_pages.logical_page_size = 8;
  cfg.tiling = {8, 8};
  cfg.pool_pages = 1024;
  serve::Engine engine(cfg);
  serve::Scheduler sched(engine, 3);
  num::Rng rng(77);
  const int total = 9;
  std::map<std::uint64_t, std::size_t> expected_tokens;
  for (int i = 0; i < total; ++i) {
    serve::Request req;
    const std::size_t prompt = 4 + rng.next_below(40);
    req.prompt.resize(prompt);
    for (std::size_t t = 0; t < prompt; ++t) {
      req.prompt[t] = static_cast<std::int32_t>(rng.next_below(251));
    }
    req.max_new_tokens = 1 + rng.next_below(6);
    const auto id = sched.submit(std::move(req));
    expected_tokens[id] = 0;  // filled below
  }
  const auto results = sched.drain();
  EXPECT_EQ(results.size(), static_cast<std::size_t>(total));
  std::set<std::uint64_t> seen;
  for (const auto& r : results) {
    EXPECT_TRUE(expected_tokens.count(r.request_id));
    EXPECT_TRUE(seen.insert(r.request_id).second) << "duplicate result";
    EXPECT_GE(r.output.size(), 1u);
  }
  EXPECT_EQ(engine.dense_allocator().pages_in_use(), 0u);
}

TEST(ReusableSelectorFuzz, ArbitraryStepPatternsNeverReturnStaleSlot) {
  sparse::ReusableSelector sel(5, 4);
  num::Rng rng(99);
  // Each slot's table encodes (slot, chunk) so staleness is detectable.
  for (int step_trial = 0; step_trial < 500; ++step_trial) {
    const std::size_t slot = rng.next_below(5);
    const std::size_t step = rng.next_below(64);
    const auto& table = sel.get(slot, step, [&] {
      return kv::SelectedPageTable{
          {static_cast<kv::PageId>(slot),
           static_cast<std::uint32_t>(step / 4)}};
    });
    ASSERT_EQ(table[0].page, static_cast<kv::PageId>(slot));
    // The cached chunk must match the queried step's chunk.
    ASSERT_EQ(table[0].block, static_cast<std::uint32_t>(step / 4));
  }
}

TEST(PolicyFuzz, GatedFlipsUnderPressureNeverLeakPages) {
  // Random schedules whose contexts straddle the cost-model crossover, so
  // the route flips mid-decode and at the chunked-prefill→decode handoff
  // (the two seeded edge requests end prefill 1 and 2 tokens short of the
  // crossover), under a page budget tight enough to preempt — replayed
  // sequences re-cross the threshold — with the prefix cache on for half
  // the trials. Every drain must complete, exercise both routes, and
  // return every page (LSERVE_AUDIT builds attribute any leak).
  const auto gate = serve::policy_test::gated_policy();
  const std::size_t cross = gate->crossover();
  num::Rng rng(2025);
  for (int trial = 0; trial < 6; ++trial) {
    serve::EngineConfig ec = serve::policy_test::gated_cfg();
    const bool cache = (trial % 2) == 1;
    ec.enable_prefix_cache = cache;
    if (cache) ec.memory.prefix_cache_pages = 64;
    serve::Engine engine(ec);
    serve::SchedulerConfig sc;
    sc.max_batch = 3;
    sc.decode_threads = 1 + rng.next_below(4);
    sc.memory.page_budget = 40 + rng.next_below(24);
    sc.policy = gate;
    serve::Scheduler sched(engine, sc);
    sched.submit(serve::policy_test::make_request(cross - 1,
                                                  1 + rng.next_below(6)));
    sched.submit(serve::policy_test::make_request(cross - 2,
                                                  2 + rng.next_below(6)));
    const std::size_t extra = 5 + rng.next_below(4);
    for (std::size_t i = 0; i < extra; ++i) {
      sched.submit(serve::policy_test::make_request(
          cross - 20 + rng.next_below(40), 1 + rng.next_below(12)));
    }
    const auto results = sched.drain();
    ASSERT_EQ(results.size(), extra + 2) << "trial " << trial;
    for (const auto& r : results) {
      ASSERT_GE(r.output.size(), 1u) << "trial " << trial;
    }
    // The workload genuinely crossed the threshold both ways.
    EXPECT_GT(engine.stats().decode_dense_steps, 0u) << "trial " << trial;
    EXPECT_GT(engine.stats().decode_sparse_steps, 0u) << "trial " << trial;
    // Page conservation: after the drain only the prefix cache may retain
    // pages, and a full reclaim returns those too.
    EXPECT_EQ(engine.total_pages_in_use(), engine.prefix_cache_pages_held())
        << "trial " << trial;
    if (cache) {
      engine.reclaim_prefix_pages(static_cast<std::size_t>(-1));
    }
    EXPECT_EQ(engine.total_pages_in_use(), 0u) << "trial " << trial;
    EXPECT_EQ(engine.audit_report(), "") << "trial " << trial;
  }
}

TEST(EngineFuzz, InterleavedSequencesStayIndependent) {
  serve::EngineConfig cfg = baselines::vllm_config(model::tiny());
  cfg.dense_pages.page_size = 8;
  cfg.dense_pages.logical_page_size = 8;
  cfg.tiling = {8, 8};
  cfg.pool_pages = 1024;

  // Reference: run sequence B alone.
  std::vector<std::int32_t> prompt_b(20);
  for (std::size_t i = 0; i < prompt_b.size(); ++i) {
    prompt_b[i] = static_cast<std::int32_t>((3 * i + 1) % 251);
  }
  serve::Engine solo(cfg);
  const auto solo_seq = solo.create_sequence();
  const auto solo_out = solo.generate(solo_seq, prompt_b, 5);

  // Interleaved: A and B decode turn by turn in one engine.
  serve::Engine shared(cfg);
  std::vector<std::int32_t> prompt_a(31);
  for (std::size_t i = 0; i < prompt_a.size(); ++i) {
    prompt_a[i] = static_cast<std::int32_t>((7 * i + 5) % 251);
  }
  const auto sa = shared.create_sequence();
  const auto sb = shared.create_sequence();
  std::int32_t ta = shared.prefill(sa, prompt_a);
  std::int32_t tb = shared.prefill(sb, prompt_b);
  std::vector<std::int32_t> out_b{tb};
  for (int i = 1; i < 5; ++i) {
    ta = shared.decode(sa, ta);
    tb = shared.decode(sb, tb);
    out_b.push_back(tb);
  }
  EXPECT_EQ(out_b, solo_out) << "sequence B perturbed by sequence A";
}

}  // namespace
}  // namespace lserve
