// Tests for page selectors: flat (Quest-style) vs hierarchical
// (src/sparse/quest_selector, src/sparse/hierarchical_selector).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "model/workload.hpp"
#include "numeric/rng.hpp"
#include "sparse/hierarchical_selector.hpp"
#include "sparse/quest_selector.hpp"

namespace lserve::sparse {
namespace {

kv::PageConfig page_cfg(std::size_t np, std::size_t nl, std::size_t d = 32) {
  kv::PageConfig c;
  c.page_size = np;
  c.logical_page_size = nl;
  c.head_dim = d;
  return c;
}

struct Fixture {
  kv::PageAllocator alloc;
  kv::HeadCache head;

  Fixture(const kv::PageConfig& cfg, const model::TokenStream& stream)
      : alloc(cfg, stream.keys.rows() / cfg.page_size + 2) {
    for (std::size_t t = 0; t < stream.keys.rows(); ++t) {
      head.append(alloc, stream.keys.row(t), stream.values.row(t));
    }
  }
};

bool table_contains_block(const kv::SelectedPageTable& table,
                          std::uint32_t block) {
  return std::any_of(table.begin(), table.end(), [&](const auto& e) {
    return e.block == block;
  });
}

TEST(Selectors, BudgetCoversAllReturnsFullTable) {
  model::StreamConfig sc;
  sc.n_tokens = 64;
  sc.head_dim = 32;
  model::TokenStream stream = model::smooth_stream(sc);
  Fixture fix(page_cfg(16, 16), stream);
  std::vector<float> q(32, 1.0f);
  PageSelectorConfig cfg;
  cfg.token_budget = 128;  // > 64 tokens
  const auto flat = select_pages_flat(fix.alloc, fix.head, q.data(), cfg);
  const auto hier =
      select_pages_hierarchical(fix.alloc, fix.head, q.data(), cfg);
  EXPECT_EQ(flat.size(), 4u);
  EXPECT_EQ(hier.size(), 4u);
}

TEST(Selectors, RespectTokenBudget) {
  model::StreamConfig sc;
  sc.n_tokens = 512;
  sc.head_dim = 32;
  model::TokenStream stream = model::smooth_stream(sc);
  Fixture fix(page_cfg(16, 16), stream);
  std::vector<float> q(32, 1.0f);
  PageSelectorConfig cfg;
  cfg.token_budget = 64;  // 4 pages of 16
  const auto table = select_pages_flat(fix.alloc, fix.head, q.data(), cfg);
  EXPECT_EQ(table.size(), 4u);
}

TEST(Selectors, OutputSortedByBlockAndUnique) {
  model::StreamConfig sc;
  sc.n_tokens = 1024;
  sc.head_dim = 32;
  model::TokenStream stream = model::smooth_stream(sc);
  Fixture fix(page_cfg(32, 16), stream);
  num::Rng rng(3);
  std::vector<float> q(32);
  rng.fill_gaussian(q, 1.0f);
  PageSelectorConfig cfg;
  cfg.token_budget = 256;
  const auto table =
      select_pages_hierarchical(fix.alloc, fix.head, q.data(), cfg);
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_LT(table[i - 1].block, table[i].block);
  }
}

TEST(Selectors, FirstAndRecentPagesAlwaysKept) {
  model::StreamConfig sc;
  sc.n_tokens = 1024;
  sc.head_dim = 32;
  model::TokenStream stream = model::smooth_stream(sc);
  Fixture fix(page_cfg(16, 16), stream);
  num::Rng rng(5);
  std::vector<float> q(32);
  rng.fill_gaussian(q, 1.0f);
  PageSelectorConfig cfg;
  cfg.token_budget = 64;
  cfg.keep_first_pages = 1;
  cfg.keep_recent_pages = 1;
  for (auto* select : {&select_pages_flat, &select_pages_hierarchical}) {
    const auto table = (*select)(fix.alloc, fix.head, q.data(), cfg);
    EXPECT_TRUE(table_contains_block(table, 0));
    EXPECT_TRUE(table_contains_block(table, 1024 / 16 - 1));
  }
}

TEST(Selectors, NeedlePageSelectedByBothAtSmallPages) {
  // With NP = NL = 16 the flat selector is exactly Quest: it must find the
  // needle page.
  model::StreamConfig sc;
  sc.n_tokens = 2048;
  sc.head_dim = 32;
  sc.seed = 77;
  model::TokenStream stream = model::smooth_stream(sc);
  const auto needle = model::plant_needle(stream, 1000, 4.0f, 99);
  const auto q = model::probe_query(needle, 4.0f, 0.0f, 100);
  Fixture fix(page_cfg(16, 16), stream);
  PageSelectorConfig cfg;
  cfg.token_budget = 256;
  const std::uint32_t needle_block = 1000 / 16;
  const auto flat = select_pages_flat(fix.alloc, fix.head, q.data(), cfg);
  const auto hier =
      select_pages_hierarchical(fix.alloc, fix.head, q.data(), cfg);
  EXPECT_TRUE(table_contains_block(flat, needle_block));
  EXPECT_TRUE(table_contains_block(hier, needle_block));
}

TEST(Selectors, HierarchicalFindsNeedleAtLargePagesWhereFlatHomogenizes) {
  // The page-size dilemma (Fig 6) and its fix (Fig 13): with NP=64 the
  // flat page-wide min/max is dominated by background spread, while the
  // hierarchical selector still sees the needle's logical page. We assert
  // the hierarchical selector ranks the needle page within budget over
  // many seeds, and that it does so at least as reliably as flat.
  std::size_t flat_hits = 0, hier_hits = 0;
  const std::size_t trials = 12;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    model::StreamConfig sc;
    sc.n_tokens = 4096;
    sc.head_dim = 32;
    sc.seed = 1000 + trial;
    sc.locality = 0.5f;  // rougher background -> wider page min/max spread
    model::TokenStream stream = model::smooth_stream(sc);
    const auto needle =
        model::plant_needle(stream, 2048 + 17 * trial, 3.0f, 55 + trial);
    const auto q = model::probe_query(needle, 3.0f, 0.05f, 200 + trial);
    Fixture fix(page_cfg(64, 16), stream);
    PageSelectorConfig cfg;
    cfg.token_budget = 512;  // 8 pages of 64
    const std::uint32_t needle_block = (2048 + 17 * trial) / 64;
    flat_hits += table_contains_block(
        select_pages_flat(fix.alloc, fix.head, q.data(), cfg), needle_block);
    hier_hits += table_contains_block(
        select_pages_hierarchical(fix.alloc, fix.head, q.data(), cfg),
        needle_block);
  }
  EXPECT_GE(hier_hits, flat_hits);
  EXPECT_GE(hier_hits, trials - 1);  // hierarchical nearly always succeeds
}

TEST(Selectors, HierarchicalEqualsFlatWhenOneLogicalPagePerPhysical) {
  model::StreamConfig sc;
  sc.n_tokens = 512;
  sc.head_dim = 32;
  model::TokenStream stream = model::smooth_stream(sc);
  Fixture fix(page_cfg(16, 16), stream);
  num::Rng rng(7);
  std::vector<float> q(32);
  rng.fill_gaussian(q, 1.0f);
  PageSelectorConfig cfg;
  cfg.token_budget = 128;
  const auto flat = select_pages_flat(fix.alloc, fix.head, q.data(), cfg);
  const auto hier =
      select_pages_hierarchical(fix.alloc, fix.head, q.data(), cfg);
  EXPECT_EQ(flat, hier);
}

TEST(Selectors, ScoredPagesAccounting) {
  model::StreamConfig sc;
  sc.n_tokens = 256;
  sc.head_dim = 32;
  model::TokenStream stream = model::smooth_stream(sc);
  Fixture fix(page_cfg(64, 16), stream);
  // 4 physical pages, 4 logical pages each.
  EXPECT_EQ(flat_selector_scored_pages(fix.alloc, fix.head), 4u);
  EXPECT_EQ(hierarchical_selector_scored_pages(fix.alloc, fix.head), 16u);
}

TEST(Selectors, EmptyCacheYieldsEmptyTable) {
  kv::PageAllocator alloc(page_cfg(16, 16), 2);
  kv::HeadCache head;
  std::vector<float> q(32, 1.0f);
  PageSelectorConfig cfg;
  EXPECT_TRUE(select_pages_flat(alloc, head, q.data(), cfg).empty());
  EXPECT_TRUE(select_pages_hierarchical(alloc, head, q.data(), cfg).empty());
}

TEST(Selectors, HierarchicalScoresMaxReduceLogicalPages) {
  // Directly verify the max-reduction: a physical page's score equals the
  // max of its logical pages' scores.
  model::StreamConfig sc;
  sc.n_tokens = 128;
  sc.head_dim = 32;
  model::TokenStream stream = model::smooth_stream(sc);
  const auto needle = model::plant_needle(stream, 70, 5.0f, 1);
  Fixture fix(page_cfg(64, 16), stream);
  const auto q = model::probe_query(needle, 5.0f, 0.0f, 2);
  std::vector<float> scores(2);
  hierarchical_page_scores(fix.alloc, fix.head, q.data(), scores.data());
  // Token 70 lives in physical page 1, logical page (70-64)/16 = 0.
  const kv::PagePin pin =
      fix.alloc.pin(fix.head.view(fix.alloc).pages[1]);
  const kv::Page& page = pin.page();
  float expected = -1e30f;
  for (std::size_t j = 0; j < page.kstats().logical_pages(); ++j) {
    expected = std::max(expected,
                        kv::logical_page_score(q.data(), page.kstats().kmax(j),
                                               page.kstats().kmin(j), 32));
  }
  EXPECT_FLOAT_EQ(scores[1], expected);
  EXPECT_GT(scores[1], scores[0]);
}

}  // namespace
}  // namespace lserve::sparse
