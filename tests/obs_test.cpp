// Tests for the observability layer (src/obs) and its serving
// integration: metric primitives under concurrency, histogram bucket/
// quantile semantics, the Prometheus exposition golden format, the step
// tracer ring, deterministic wall-clock telemetry through an injected
// FakeClock, the telemetry-never-changes-scheduling bit-identity pin, and
// the mirrored prefix-counter consistency regression
// (EngineStats::prefix_* vs SchedulerStats::prefix_* vs PrefixCacheStats).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/step_tracer.hpp"
#include "serve/scheduler.hpp"

namespace lserve::obs {
namespace {

// ---------------------------------------------------------------------------
// Metric primitives.

TEST(Metrics, CounterGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_EQ(g.value(), 3.5);
  g.set(-1.0);  // gauges may go down.
  EXPECT_EQ(g.value(), -1.0);
}

// The TSan CI job runs this suite: concurrent increments on one counter
// and one histogram must be race-free and lose no updates.
TEST(Metrics, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry reg;
  Counter& c = reg.counter("t_total", "concurrent counter");
  Histogram& h =
      reg.histogram("t_seconds", "concurrent histogram", {1.0, 2.0, 4.0});
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 20000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h] {
      for (std::size_t i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(static_cast<double>(i % 5));  // 0,1,2,3,4 round-robin.
      }
    });
  }
  // Concurrent scrapes while the workers hammer the atomics: exposition
  // must never tear an individual value or trip TSan.
  for (int s = 0; s < 50; ++s) {
    const std::string page = reg.expose_prometheus();
    EXPECT_NE(page.find("t_total"), std::string::npos);
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(c.value(), kThreads * kIters);
  EXPECT_EQ(h.count(), kThreads * kIters);
  // Per thread: 4000 each of {0,1,2,3,4} -> sum = 4000 * 10.
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * 4000.0 * 10.0);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], kThreads * 8000u);  // 0 and 1 (le=1 inclusive).
  EXPECT_EQ(counts[1], kThreads * 4000u);  // 2.
  EXPECT_EQ(counts[2], kThreads * 8000u);  // 3 and 4 (le=4 inclusive).
  EXPECT_EQ(counts[3], 0u);                // +Inf.
}

TEST(Metrics, RegisterOrGetSharesSeriesAndRejectsTypeClash) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total", "x");
  Counter& b = reg.counter("x_total", "x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_THROW(reg.gauge("x_total", "x"), std::invalid_argument);

  a.inc(7);
  EXPECT_EQ(reg.find_counter("x_total")->value(), 7u);
  EXPECT_EQ(reg.find_gauge("x_total"), nullptr);   // type mismatch.
  EXPECT_EQ(reg.find_counter("absent"), nullptr);  // unknown name.
}

// ---------------------------------------------------------------------------
// Histogram semantics.

TEST(Histogram, BucketBoundsAreInclusiveUpperLimits) {
  Histogram h({1.0, 10.0});
  h.observe(-5.0);      // below every bound: still the first bucket.
  h.observe(1.0);       // exactly le=1: first bucket (inclusive).
  h.observe(1.0000001); // just past: second bucket.
  h.observe(10.0);      // exactly le=10: second bucket.
  h.observe(10.5);      // past the last finite bound: +Inf.
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 17.5000001, 1e-9);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_NO_THROW(Histogram({}));  // only the +Inf bucket.
}

TEST(Histogram, QuantileInterpolatesWithinBucketAndClampsAtInf) {
  Histogram h({1.0, 2.0, 3.0});
  for (int i = 0; i < 10; ++i) h.observe(0.5);  // first bucket.
  for (int i = 0; i < 10; ++i) h.observe(1.5);  // second bucket.
  // Ranks 1..10 live in (0,1], 11..20 in (1,2].
  EXPECT_GT(h.quantile(0.25), 0.0);
  EXPECT_LE(h.quantile(0.25), 1.0);
  EXPECT_GT(h.quantile(0.75), 1.0);
  EXPECT_LE(h.quantile(0.75), 2.0);
  EXPECT_LE(h.quantile(0.25), h.quantile(0.75));  // monotone in p.

  Histogram tail({1.0, 2.0});
  tail.observe(100.0);  // +Inf bucket only.
  EXPECT_EQ(tail.quantile(0.5), 2.0);  // clamps to the last finite bound.

  Histogram empty({1.0});
  EXPECT_EQ(empty.quantile(0.5), 0.0);
}

TEST(Histogram, ExponentialBucketLaddersAreStrictlyIncreasing) {
  for (const std::vector<double>& ladder :
       {exponential_buckets(0.5, 1.04, 580),
        default_latency_buckets_seconds(), default_summary_buckets()}) {
    ASSERT_FALSE(ladder.empty());
    for (std::size_t i = 1; i < ladder.size(); ++i) {
      ASSERT_LT(ladder[i - 1], ladder[i]) << "at index " << i;
    }
    EXPECT_NO_THROW(Histogram{ladder});
  }
  EXPECT_THROW(exponential_buckets(0.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(exponential_buckets(1.0, 1.0, 4), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Prometheus exposition (golden: registration order is preserved, one
// HELP/TYPE header per family, cumulative buckets, label splicing).

TEST(Metrics, PrometheusExpositionGolden) {
  MetricsRegistry reg;
  Counter& c = reg.counter("demo_total", "A demo counter.");
  Gauge& g = reg.gauge("demo_gauge", "A demo gauge.");
  Histogram& h =
      reg.histogram("demo_seconds", "A demo histogram.", {0.5, 1.0});
  Counter& dense = reg.counter("route_total{route=\"dense\"}", "Routes.");
  Counter& sparse = reg.counter("route_total{route=\"sparse\"}", "Routes.");
  c.inc(3);
  g.set(2.5);
  h.observe(0.25);  // le=0.5.
  h.observe(0.75);  // le=1.
  h.observe(9.0);   // +Inf.
  dense.inc(2);
  sparse.inc(1);

  const std::string expected =
      "# HELP demo_total A demo counter.\n"
      "# TYPE demo_total counter\n"
      "demo_total 3\n"
      "# HELP demo_gauge A demo gauge.\n"
      "# TYPE demo_gauge gauge\n"
      "demo_gauge 2.5\n"
      "# HELP demo_seconds A demo histogram.\n"
      "# TYPE demo_seconds histogram\n"
      "demo_seconds_bucket{le=\"0.5\"} 1\n"
      "demo_seconds_bucket{le=\"1\"} 2\n"
      "demo_seconds_bucket{le=\"+Inf\"} 3\n"
      "demo_seconds_sum 10\n"
      "demo_seconds_count 3\n"
      "# HELP route_total Routes.\n"
      "# TYPE route_total counter\n"
      "route_total{route=\"dense\"} 2\n"
      "route_total{route=\"sparse\"} 1\n";
  EXPECT_EQ(reg.expose_prometheus(), expected);
}

TEST(Metrics, LabeledHistogramSplicesLeAfterExistingLabels) {
  MetricsRegistry reg;
  Histogram& h =
      reg.histogram("lat_seconds{kind=\"a\"}", "Labeled.", {1.0});
  h.observe(0.5);
  const std::string page = reg.expose_prometheus();
  EXPECT_NE(page.find("lat_seconds_bucket{kind=\"a\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(page.find("lat_seconds_bucket{kind=\"a\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(page.find("lat_seconds_sum{kind=\"a\"} 0.5"), std::string::npos);
  EXPECT_NE(page.find("lat_seconds_count{kind=\"a\"} 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Clocks.

TEST(Clock, FakeClockAdvancesOnlyOnDemand) {
  FakeClock clk(100);
  EXPECT_EQ(clk.now_ns(), 100u);
  EXPECT_EQ(clk.now_ns(), 100u);
  clk.advance_ns(50);
  EXPECT_EQ(clk.now_ns(), 150u);
  clk.set_ns(1000);
  EXPECT_EQ(clk.now_ns(), 1000u);
}

TEST(Clock, MonotonicClockNeverGoesBackwards) {
  MonotonicClock clk;
  std::uint64_t prev = clk.now_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = clk.now_ns();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

// ---------------------------------------------------------------------------
// Step tracer.

TEST(StepTracer, RingWrapsKeepingTheMostRecentSteps) {
  FakeClock clk;
  StepTracer tracer(4);
  EXPECT_EQ(tracer.capacity(), 4u);
  for (std::uint64_t s = 1; s <= 10; ++s) {
    StepTraceBuilder b(&clk, s);
    {
      StepTraceBuilder::Span span = b.span("admit");
      clk.advance_ns(500);
    }
    clk.advance_ns(100);
    tracer.commit(b.finish());
  }
  EXPECT_EQ(tracer.committed(), 10u);
  const std::vector<StepTrace> snap = tracer.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest-first and only the most recent capacity() steps survive.
  EXPECT_EQ(snap[0].step, 7u);
  EXPECT_EQ(snap[3].step, 10u);
  for (const StepTrace& st : snap) {
    ASSERT_EQ(st.spans.size(), 1u);
    EXPECT_STREQ(st.spans[0].name, "admit");
    EXPECT_EQ(st.spans[0].dur_ns, 500u);
    EXPECT_EQ(st.dur_ns, 600u);
  }
}

TEST(StepTracer, InactiveBuilderCommitsNothing) {
  StepTracer tracer(8);
  StepTraceBuilder inactive;  // no clock: the tracing-off path.
  EXPECT_FALSE(inactive.active());
  {
    StepTraceBuilder::Span span = inactive.span("admit");  // no-op.
  }
  tracer.commit(inactive.finish());
  EXPECT_EQ(tracer.committed(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(StepTracer, ExportsWellFormedChromeTraceJson) {
  FakeClock clk(2000);
  StepTracer tracer(8);
  StepTraceBuilder b(&clk, 3);
  {
    StepTraceBuilder::Span span = b.span("decode_batch");
    clk.advance_ns(1500);
  }
  tracer.commit(b.finish());

  const std::string json = tracer.export_chrome_json();
  // Structure: metadata thread_name event, one step envelope, one span.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"step\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"decode_batch\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // ts/dur are microseconds: 2000 ns -> 2.000, 1500 ns -> 1.500.
  EXPECT_NE(json.find("\"ts\":2.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"step\":3}"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check without a JSON
  // parser; the CI smoke job runs the real `python3 -m json.tool`).
  std::ptrdiff_t braces = 0, brackets = 0;
  for (const char ch : json) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// ---------------------------------------------------------------------------
// Scheduler integration: deterministic wall-clock telemetry via FakeClock.

serve::EngineConfig engine_cfg() {
  serve::EngineConfig c = baselines::vllm_config(model::tiny());
  c.dense_pages.page_size = 8;
  c.dense_pages.logical_page_size = 8;
  c.tiling = {8, 8};
  c.pool_pages = 512;
  return c;
}

serve::Request make_request(std::size_t prompt_len, std::size_t new_tokens) {
  serve::Request req;
  req.prompt.resize(prompt_len);
  for (std::size_t i = 0; i < prompt_len; ++i) {
    req.prompt[i] = static_cast<std::int32_t>((i * 13 + 5) % 251);
  }
  req.max_new_tokens = new_tokens;
  return req;
}

TEST(SchedulerObs, DeterministicTtftTpotQueueWaitAndE2eViaFakeClock) {
  serve::Engine engine(engine_cfg());
  auto clk = std::make_shared<FakeClock>();
  MetricsRegistry reg;
  StepTracer tracer(64);
  serve::SchedulerConfig sc;
  sc.max_batch = 2;
  sc.metrics = &reg;
  sc.tracer = &tracer;
  sc.clock = clk;
  serve::Scheduler sched(engine, sc);

  clk->set_ns(1000);
  sched.submit(make_request(8, 4));  // submit stamp: t=1000.
  clk->set_ns(3000);
  // Step 1 at t=3000: admit + monolithic prefill emits the first token
  // (TTFT = queue wait = 2000 ns), and the same step's decode batch
  // already includes the now-DECODING sequence, so token 2 commits at the
  // same stamp (TPOT sample 0).
  sched.step();
  clk->set_ns(4000);
  sched.step();  // token 3: TPOT 1000 ns.
  clk->set_ns(6000);
  while (sched.step()) {
  }  // token 4 at t=6000 (TPOT 2000 ns); the request retires that step.

  const Histogram* qw = reg.find_histogram("lserve_request_queue_wait_seconds");
  const Histogram* ttft = reg.find_histogram("lserve_request_ttft_seconds");
  const Histogram* tpot = reg.find_histogram("lserve_request_tpot_seconds");
  const Histogram* e2e = reg.find_histogram("lserve_request_e2e_seconds");
  ASSERT_NE(qw, nullptr);
  ASSERT_NE(ttft, nullptr);
  ASSERT_NE(tpot, nullptr);
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(qw->count(), 1u);
  EXPECT_DOUBLE_EQ(qw->sum(), 2000.0 * 1e-9);  // 3000 - 1000.
  EXPECT_EQ(ttft->count(), 1u);
  EXPECT_DOUBLE_EQ(ttft->sum(), 2000.0 * 1e-9);  // same step as admission.
  EXPECT_EQ(tpot->count(), 3u);
  EXPECT_NEAR(tpot->sum(), (0.0 + 1000.0 + 2000.0) * 1e-9, 1e-15);
  EXPECT_EQ(e2e->count(), 1u);
  EXPECT_DOUBLE_EQ(e2e->sum(), 5000.0 * 1e-9);  // 6000 - 1000.

  // Lifecycle counters and per-step gauges mirror SchedulerStats.
  const serve::SchedulerStats& stats = sched.scheduler_stats();
  EXPECT_EQ(reg.find_counter("lserve_scheduler_steps_total")->value(),
            stats.steps);
  EXPECT_EQ(reg.find_counter("lserve_requests_submitted_total")->value(), 1u);
  EXPECT_EQ(reg.find_counter("lserve_requests_finished_total")->value(), 1u);
  EXPECT_EQ(reg.find_counter("lserve_prefill_chunks_total")->value(),
            stats.prefill_chunks);
  EXPECT_EQ(
      reg.find_counter("lserve_decode_route_steps_total{route=\"dense\"}")
              ->value() +
          reg.find_counter(
                 "lserve_decode_route_steps_total{route=\"sparse\"}")
              ->value(),
      engine.stats().decode_dense_steps + engine.stats().decode_sparse_steps);
  EXPECT_EQ(reg.find_gauge("lserve_sequences_running")->value(), 0.0);
  EXPECT_EQ(reg.find_gauge("lserve_requests_live")->value(), 0.0);
  EXPECT_EQ(reg.find_gauge("lserve_kv_pages_in_use")->value(),
            static_cast<double>(engine.total_pages_in_use()));
  EXPECT_GT(reg.find_gauge("lserve_kv_pages_capacity")->value(), 0.0);

  // The tracer saw every step, with the expected phase spans.
  EXPECT_EQ(tracer.committed(), stats.steps);
  const std::vector<StepTrace> snap = tracer.snapshot();
  ASSERT_FALSE(snap.empty());
  bool saw_admit = false, saw_prefill = false, saw_decode = false;
  for (const StepTrace& st : snap) {
    for (const TraceSpan& span : st.spans) {
      const std::string name = span.name;
      saw_admit = saw_admit || name == "admit";
      saw_prefill = saw_prefill || name == "prefill_chunk";
      saw_decode = saw_decode || name == "decode_batch";
    }
  }
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_prefill);
  EXPECT_TRUE(saw_decode);
}

// TTFT/queue-wait are recorded once per request; TPOT spans a preemption
// replay (the stall a streaming client actually observes).
TEST(SchedulerObs, PreemptionDoesNotDoubleCountTtft) {
  serve::Engine engine(engine_cfg());
  auto clk = std::make_shared<FakeClock>();
  MetricsRegistry reg;
  serve::SchedulerConfig sc;
  sc.max_batch = 2;
  sc.memory.page_budget = 24;  // tight: forces preemption with two sequences.
  sc.metrics = &reg;
  sc.clock = clk;
  serve::Scheduler sched(engine, sc);

  sched.submit(make_request(16, 12));
  sched.submit(make_request(16, 12));
  while (sched.step()) clk->advance_ns(1000);

  ASSERT_GE(sched.scheduler_stats().preemptions, 1u);
  EXPECT_EQ(sched.results().size(), 2u);
  // Exactly one TTFT and one queue-wait sample per request, preemptions
  // notwithstanding.
  EXPECT_EQ(reg.find_histogram("lserve_request_ttft_seconds")->count(), 2u);
  EXPECT_EQ(reg.find_histogram("lserve_request_queue_wait_seconds")->count(),
            2u);
  EXPECT_EQ(reg.find_counter("lserve_preemptions_total")->value(),
            sched.scheduler_stats().preemptions);
}

// The bit-identity pin: telemetry must never feed back into scheduling.
std::vector<serve::RequestResult> drain_with(bool with_obs,
                                             std::size_t threads) {
  serve::Engine engine(engine_cfg());
  MetricsRegistry reg;
  StepTracer tracer(32);
  auto clk = std::make_shared<FakeClock>(17);
  serve::SchedulerConfig sc;
  sc.max_batch = 4;
  sc.decode_threads = threads;
  sc.memory.page_budget = 48;  // exercise deferral + preemption under telemetry.
  if (with_obs) {
    sc.metrics = &reg;
    sc.tracer = &tracer;
    sc.clock = clk;
  }
  serve::Scheduler sched(engine, sc);
  for (std::size_t i = 0; i < 10; ++i) {
    sched.submit(make_request(8 + 3 * i, 4 + i % 3));
  }
  return sched.drain();
}

TEST(SchedulerObs, MetricsOnAndOffDrainBitIdenticalAcrossThreadCounts) {
  const std::vector<serve::RequestResult> ref = drain_with(false, 1);
  ASSERT_EQ(ref.size(), 10u);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const std::vector<serve::RequestResult> off = drain_with(false, threads);
    const std::vector<serve::RequestResult> on = drain_with(true, threads);
    ASSERT_EQ(off.size(), ref.size()) << threads << " threads";
    ASSERT_EQ(on.size(), ref.size()) << threads << " threads";
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(off[i].request_id, ref[i].request_id);
      EXPECT_EQ(on[i].request_id, ref[i].request_id);
      EXPECT_EQ(off[i].output, ref[i].output);
      EXPECT_EQ(on[i].output, ref[i].output);
      EXPECT_EQ(on[i].status, ref[i].status);
      EXPECT_EQ(on[i].first_token_step, ref[i].first_token_step);
      EXPECT_EQ(on[i].finish_step, ref[i].finish_step);
      EXPECT_EQ(on[i].preemptions, ref[i].preemptions);
    }
  }
}

// ---------------------------------------------------------------------------
// Mirrored prefix counters: the same numbers must be visible at every
// layer — PrefixCacheStats (source of truth), EngineStats::prefix_*
// (engine mirror), SchedulerStats::prefix_* (admission-side count), and
// the lserve_prefix_* metrics — across a workload that exercises hits,
// copy-on-write divergence, eviction, and preemption together.

serve::EngineConfig prefix_cfg() {
  serve::EngineConfig cfg = baselines::lserve_config(model::tiny());
  cfg.dense_pages.page_size = 8;
  cfg.dense_pages.logical_page_size = 4;
  cfg.tiling = {8, 8};
  cfg.streaming = {/*sink_tokens=*/8, /*local_tokens=*/16};
  cfg.selector.token_budget = 48;
  cfg.pool_pages = 1024;
  cfg.enable_prefix_cache = true;
  cfg.memory.prefix_cache_pages = 24;  // tight tree budget: forces evictions.
  return cfg;
}

TEST(SchedulerObs, PrefixCountersMirrorAcrossAllLayers) {
  serve::Engine engine(prefix_cfg());
  MetricsRegistry reg;
  serve::SchedulerConfig sc;
  sc.max_batch = 2;
  sc.memory.page_budget = 40;  // forces preemption alongside the cache traffic.
  sc.metrics = &reg;
  sc.clock = std::make_shared<FakeClock>();
  serve::Scheduler sched(engine, sc);

  // Four rounds of requests sharing only the first 5 tokens, then
  // diverging. 5 is mid-page (page size 8) and inside the sink window, so
  // a later request attaching the shared prefix gets a partial-page tail —
  // the copy-on-write path. The divergent bulk plus the tight tree budget
  // forces evictions; the tight page budget forces preemptions.
  std::vector<std::int32_t> shared(5);
  for (std::size_t i = 0; i < shared.size(); ++i) {
    shared[i] = static_cast<std::int32_t>((3 + 7 * i) % 251);
  }
  for (int round = 0; round < 4; ++round) {
    for (int v = 0; v < 3; ++v) {
      serve::Request req;
      req.prompt = shared;
      for (int t = 0; t < 27; ++t) {
        req.prompt.push_back(
            static_cast<std::int32_t>(1 + round * 83 + v * 29 + t) % 251);
      }
      req.max_new_tokens = 6;
      sched.submit(req);
    }
    sched.drain();
  }

  const kv::PrefixCacheStats cache = engine.prefix_cache()->stats();
  const serve::EngineStats& es = engine.stats();
  const serve::SchedulerStats& ss = sched.scheduler_stats();

  // The workload genuinely mixed all four behaviours.
  EXPECT_GT(cache.hits, 0u);
  EXPECT_GT(cache.cow_copies, 0u);
  EXPECT_GT(cache.evictions, 0u);
  EXPECT_GT(ss.preemptions, 0u);

  // Engine mirrors the cache exactly.
  EXPECT_EQ(es.prefix_hits, cache.hits);
  EXPECT_EQ(es.prefix_tokens_reused, cache.tokens_reused);
  EXPECT_EQ(es.prefix_cow_copies, cache.cow_copies);
  EXPECT_EQ(es.prefix_evictions, cache.evictions);

  // Scheduler-side admission counters agree (every attach goes through
  // admission in this workload).
  EXPECT_EQ(ss.prefix_hits, cache.hits);
  EXPECT_EQ(ss.prefix_tokens_reused, cache.tokens_reused);

  // And the exported metrics agree with all of the above.
  EXPECT_EQ(reg.find_counter("lserve_prefix_hits_total")->value(),
            cache.hits);
  EXPECT_EQ(reg.find_counter("lserve_prefix_tokens_reused_total")->value(),
            cache.tokens_reused);
  EXPECT_EQ(reg.find_gauge("lserve_prefix_cache_pages_held")->value(),
            static_cast<double>(engine.prefix_cache_pages_held()));
}

}  // namespace
}  // namespace lserve::obs
