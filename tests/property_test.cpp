// Cross-cutting property tests: randomized invariants that must hold for
// any input, complementing the per-module unit suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "attn/block_iterator.hpp"
#include "attn/decode_attention.hpp"
#include "attn/fused_attention.hpp"
#include "kv/kv_cache.hpp"
#include "model/workload.hpp"
#include "numeric/math.hpp"
#include "numeric/quant.hpp"
#include "numeric/rng.hpp"
#include "sparse/hierarchical_selector.hpp"
#include "sparse/quest_selector.hpp"

namespace lserve {
namespace {

// ---- BlockMask: compressed rows are exactly the kept cells. ----
class MaskRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaskRoundTrip, RowBlocksMatchKeptCells) {
  num::Rng rng(GetParam());
  const std::size_t qb = 1 + rng.next_below(12);
  const std::size_t kb = 1 + rng.next_below(20);
  attn::BlockMask mask(qb, kb);
  for (std::size_t i = 0; i < qb; ++i) {
    for (std::size_t j = 0; j < kb; ++j) {
      if (rng.next_double() < 0.4) mask.set(i, j, true);
    }
  }
  mask.finalize();
  std::size_t total = 0;
  for (std::size_t i = 0; i < qb; ++i) {
    const auto row = mask.row_blocks(i);
    total += row.size();
    for (std::size_t t = 0; t < row.size(); ++t) {
      EXPECT_TRUE(mask.kept(i, row[t]));
      if (t > 0) {
        EXPECT_LT(row[t - 1], row[t]);  // sorted, unique
      }
    }
  }
  EXPECT_EQ(total, mask.kept_blocks());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- Quantization: dot-product error shrinks with more bits. ----
class QuantFidelity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantFidelity, MoreBitsNeverWorseOnAverage) {
  num::Rng rng(GetParam());
  const std::size_t d = 64;
  double err4 = 0.0, err8 = 0.0;
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<float> key(d), query(d), back(d);
    rng.fill_gaussian(key, 2.0f);
    rng.fill_gaussian(query, 1.0f);
    const double exact = num::dot(query.data(), key.data(), d);
    for (int bits : {4, 8}) {
      const num::QuantParams p =
          num::compute_quant_params(key.data(), d, bits);
      std::vector<std::uint8_t> codes(d);
      if (bits == 4) {
        num::quantize_row_int4(key.data(), d, p, codes.data());
        num::dequantize_row_int4(codes.data(), d, p, back.data());
      } else {
        num::quantize_row_int8(key.data(), d, p, codes.data());
        num::dequantize_row_int8(codes.data(), d, p, back.data());
      }
      const double err =
          std::abs(num::dot(query.data(), back.data(), d) - exact);
      (bits == 4 ? err4 : err8) += err;
    }
  }
  EXPECT_LT(err8, err4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantFidelity, ::testing::Values(11, 12, 13));

// ---- Selector: the selected set always contains the globally best page
// under the scoring metric (top-K consistency). ----
TEST(SelectorProperty, TopScoringPageAlwaysSelected) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    model::StreamConfig sc;
    sc.n_tokens = 2048;
    sc.head_dim = 32;
    sc.seed = seed;
    model::TokenStream stream = model::smooth_stream(sc);
    kv::PageConfig pages;
    pages.page_size = 64;
    pages.logical_page_size = 16;
    pages.head_dim = 32;
    kv::PageAllocator alloc(pages, 40);
    kv::HeadCache head;
    for (std::size_t t = 0; t < sc.n_tokens; ++t) {
      head.append(alloc, stream.keys.row(t), stream.values.row(t));
    }
    num::Rng rng(seed * 77);
    std::vector<float> q(32);
    rng.fill_gaussian(q, 1.5f);

    std::vector<float> scores(head.num_pages());
    sparse::hierarchical_page_scores(alloc, head, q.data(), scores.data());
    const std::size_t best = static_cast<std::size_t>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());

    sparse::PageSelectorConfig cfg;
    cfg.token_budget = 256;  // 4 of 32 pages
    const auto table =
        sparse::select_pages_hierarchical(alloc, head, q.data(), cfg);
    const bool contains_best =
        std::any_of(table.begin(), table.end(),
                    [&](const auto& e) { return e.block == best; });
    EXPECT_TRUE(contains_best) << "seed " << seed;
  }
}

// ---- Sparse decode == masked dense reference for ANY random subset of
// pages (the kernel is policy-agnostic). ----
class SubsetDecode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SubsetDecode, MatchesMaskedReference) {
  num::Rng rng(GetParam());
  const std::size_t d = 16;
  const std::size_t n = 32 + rng.next_below(80);
  kv::PageConfig pages;
  pages.page_size = 8;
  pages.logical_page_size = 8;
  pages.head_dim = d;
  kv::PageAllocator alloc(pages, n / 8 + 2);
  kv::HeadCache head;
  std::vector<std::vector<float>> keys, values;
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<float> k(d), v(d);
    rng.fill_gaussian(k, 1.0f);
    rng.fill_gaussian(v, 1.0f);
    head.append(alloc, k.data(), v.data());
    keys.push_back(k);
    values.push_back(v);
  }
  const auto view = head.view(alloc);
  kv::SelectedPageTable table;
  std::vector<std::size_t> tokens;
  for (std::size_t b = 0; b < view.num_blocks(); ++b) {
    if (rng.next_double() < 0.5) {
      table.push_back({view.pages[b], static_cast<std::uint32_t>(b)});
      const std::size_t count = view.block_tokens(b);
      for (std::size_t s = 0; s < count; ++s) tokens.push_back(b * 8 + s);
    }
  }
  if (table.empty()) return;  // nothing selected: separate test covers it

  std::vector<float> q(d);
  rng.fill_gaussian(q, 1.0f);
  std::vector<float> out(d);
  attn::sparse_paged_decode(alloc, table, n, q.data(), d, 0.25f, out.data());

  std::vector<float> scores;
  for (std::size_t t : tokens) {
    scores.push_back(0.25f * num::dot(q.data(), keys[t].data(), d));
  }
  num::softmax_inplace(scores.data(), scores.size());
  std::vector<float> ref(d, 0.0f);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    num::axpy(scores[i], values[tokens[i]].data(), ref.data(), d);
  }
  for (std::size_t c = 0; c < d; ++c) EXPECT_NEAR(out[c], ref[c], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsetDecode,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

// ---- Fused GQA decode equals per-head computation with shared kv head.
TEST(FusedDecodeProperty, GqaGroupsShareKvHead) {
  const std::size_t d = 16, kv_heads = 2, group = 3;
  kv::PageConfig pages;
  pages.page_size = 8;
  pages.logical_page_size = 8;
  pages.head_dim = d;
  kv::PageAllocator dense_alloc(pages, 64);
  kv::PageAllocator stream_alloc(pages, 8);
  kv::TwoWayKvCache cache(1, kv_heads,
                          {kv::HeadKind::kDense, kv::HeadKind::kDense},
                          {8, 16});
  num::Rng rng(31);
  for (std::size_t t = 0; t < 40; ++t) {
    for (std::size_t h = 0; h < kv_heads; ++h) {
      std::vector<float> k(d), v(d);
      rng.fill_gaussian(k, 1.0f);
      rng.fill_gaussian(v, 1.0f);
      cache.append(dense_alloc, stream_alloc, 0, h, k.data(), v.data());
    }
  }
  num::Tensor q(kv_heads * group, d);
  for (std::size_t i = 0; i < q.size(); ++i) q.data()[i] = rng.gaussian();

  attn::FusedDecodeConfig fc;
  fc.dynamic_dense = false;
  num::Tensor out(kv_heads * group, d);
  attn::fused_sparse_decode(dense_alloc, stream_alloc, cache, 0, q.view(),
                            group, nullptr, 0, fc, out.view());

  // Heads h and h' in the same group with IDENTICAL queries must produce
  // identical outputs (they read the same kv head).
  num::Tensor q2 = q;
  std::copy(q.row(0), q.row(0) + d, q2.row(1));  // head 1 := head 0's query
  num::Tensor out2(kv_heads * group, d);
  attn::fused_sparse_decode(dense_alloc, stream_alloc, cache, 0, q2.view(),
                            group, nullptr, 0, fc, out2.view());
  for (std::size_t c = 0; c < d; ++c) {
    EXPECT_FLOAT_EQ(out2.at(0, c), out2.at(1, c));
  }
}

// ---- salient_strength: planted needles dominate at every length. ----
class SalientStrength
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(SalientStrength, NeedleMassDominatesSoftmax) {
  const auto [n, d] = GetParam();
  model::StreamConfig sc;
  sc.n_tokens = n;
  sc.head_dim = d;
  sc.seed = n + d;
  model::TokenStream stream = model::smooth_stream(sc);
  const float strength = model::salient_strength(n, d);
  const auto needle = model::plant_needle(stream, n / 2, strength, 3);
  const auto q = model::probe_query(needle, strength, 0.0f, 4);

  // Dense attention over the raw stream: output should align with payload.
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  num::OnlineSoftmax acc(d);
  for (std::size_t t = 0; t < n; ++t) {
    acc.fold_one(scale * num::dot(q.data(), stream.keys.row(t), d),
                 stream.values.row(t));
  }
  std::vector<float> out(d);
  acc.finish(out.data());
  EXPECT_GT(num::cosine_similarity(out.data(), needle.payload.data(), d),
            0.9f)
      << "n=" << n << " d=" << d;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SalientStrength,
    ::testing::Combine(::testing::Values(std::size_t{1024}, std::size_t{8192},
                                         std::size_t{32768}),
                       ::testing::Values(std::size_t{32}, std::size_t{128})));

// ---- OnlineSoftmax under extreme scores stays finite and normalized. ----
TEST(OnlineSoftmaxProperty, ExtremeScoresStayFinite) {
  const std::size_t d = 4;
  num::OnlineSoftmax acc(d);
  const float v1[d] = {1, 0, 0, 0};
  const float v2[d] = {0, 1, 0, 0};
  acc.fold_one(-1e30f, v1);
  acc.fold_one(1e4f, v2);
  acc.fold_one(-1e30f, v1);
  std::vector<float> out(d);
  acc.finish(out.data());
  for (float x : out) EXPECT_TRUE(std::isfinite(x));
  EXPECT_NEAR(out[1], 1.0f, 1e-5f);  // the dominant value wins
}

}  // namespace
}  // namespace lserve
