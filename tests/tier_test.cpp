// Tests for the two-tier page store (src/kv/page_allocator, cold_store,
// memory_config): demote/promote round trips must be bit-exact, pinned
// pages must never demote, a pin miss must fall back to synchronous
// promotion, release must reclaim both tiers, and a scheduler drain must
// be bit-identical with tiering on or off at any decode thread count.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "kv/cold_store.hpp"
#include "kv/memory_config.hpp"
#include "kv/page_allocator.hpp"
#include "policy_test_util.hpp"

namespace lserve::kv {
namespace {

PageConfig page_cfg(num::KvDtype dtype = num::KvDtype::kFp16) {
  PageConfig c;
  c.page_size = 8;
  c.logical_page_size = 4;
  c.head_dim = 4;
  c.dtype = dtype;
  return c;
}

/// Sync-prefetch tier config: deterministic promotion for unit tests.
TierConfig sync_tier(std::size_t hot_pages, std::size_t cold_bytes = 0) {
  TierConfig t;
  t.hot_pages = hot_pages;
  t.cold_bytes = cold_bytes;
  t.async_prefetch = false;
  return t;
}

/// Fills page `id` with a per-page deterministic token pattern.
void fill_page(PageAllocator& alloc, PageId id, std::size_t tokens,
               float salt) {
  const PageWritePin pin = alloc.pin_mut(id);
  for (std::size_t t = 0; t < tokens; ++t) {
    float k[4];
    float v[4];
    for (std::size_t d = 0; d < 4; ++d) {
      k[d] = salt + static_cast<float>(t) * 0.25f + static_cast<float>(d);
      v[d] = -salt + static_cast<float>(t) - static_cast<float>(d) * 0.5f;
    }
    pin.page().append(k, v);
  }
}

/// Reads every stored row back out through a pin.
std::vector<float> read_page(const PageAllocator& alloc, PageId id) {
  const PagePin pin = alloc.pin(id);
  std::vector<float> out;
  for (std::size_t t = 0; t < pin.page().size(); ++t) {
    float k[4];
    float v[4];
    pin.page().load_key(t, k);
    pin.page().load_value(t, v);
    out.insert(out.end(), k, k + 4);
    out.insert(out.end(), v, v + 4);
  }
  return out;
}

TEST(ColdStore, StoresAndReloadsSlotsVerbatim) {
  ColdStore store(/*slot_bytes=*/64, /*max_bytes=*/0);
  std::vector<std::uint8_t> a(64), b(64);
  for (std::size_t i = 0; i < 64; ++i) {
    a[i] = static_cast<std::uint8_t>(i);
    b[i] = static_cast<std::uint8_t>(255 - i);
  }
  const ColdSlotId sa = store.store(a.data());
  const ColdSlotId sb = store.store(b.data());
  ASSERT_NE(sa, kInvalidColdSlot);
  ASSERT_NE(sb, kInvalidColdSlot);
  EXPECT_EQ(store.slots_in_use(), 2u);
  EXPECT_EQ(store.bytes_in_use(), 128u);
  std::vector<std::uint8_t> out(64);
  store.load(sa, out.data());
  EXPECT_EQ(std::memcmp(out.data(), a.data(), 64), 0);
  store.load(sb, out.data());
  EXPECT_EQ(std::memcmp(out.data(), b.data(), 64), 0);
  store.release(sa);
  EXPECT_EQ(store.slots_in_use(), 1u);
  // Freed slots are reused.
  EXPECT_EQ(store.store(a.data()), sa);
}

TEST(ColdStore, ByteCapRejectsStores) {
  ColdStore store(/*slot_bytes=*/64, /*max_bytes=*/128);
  std::vector<std::uint8_t> buf(64, 7);
  EXPECT_NE(store.store(buf.data()), kInvalidColdSlot);
  EXPECT_NE(store.store(buf.data()), kInvalidColdSlot);
  EXPECT_EQ(store.store(buf.data()), kInvalidColdSlot);  // at the cap.
}

TEST(TieredAllocator, DemotePromoteRoundTripIsBitExact) {
  for (const num::KvDtype dtype :
       {num::KvDtype::kFp16, num::KvDtype::kInt8, num::KvDtype::kInt4}) {
    PageAllocator tiered(page_cfg(dtype), 8, sync_tier(/*hot_pages=*/2));
    PageAllocator flat(page_cfg(dtype), 8);
    std::vector<PageId> tp, fp;
    for (int i = 0; i < 6; ++i) {
      tp.push_back(tiered.allocate());
      fp.push_back(flat.allocate());
      // Partially filled tail pages must round-trip too.
      const std::size_t tokens = (i == 5) ? 3 : 8;
      fill_page(tiered, tp.back(), tokens, static_cast<float>(i));
      fill_page(flat, fp.back(), tokens, static_cast<float>(i));
    }
    const TierStats mid = tiered.tier_stats();
    EXPECT_GT(mid.demotions, 0u) << "hot budget 2 never spilled";
    EXPECT_GT(mid.cold_in_use, 0u);
    EXPECT_GT(mid.cold_bytes_in_use, 0u);
    // Every page — demoted or not — must read back exactly what the
    // untiered pool holds (quantized codes survive verbatim).
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(read_page(tiered, tp[i]), read_page(flat, fp[i]))
          << "page " << i << " dtype " << static_cast<int>(dtype);
    }
    for (const PageId id : tp) tiered.release(id);
    for (const PageId id : fp) flat.release(id);
  }
}

TEST(TieredAllocator, PinnedPagesAreNeverDemoted) {
  PageAllocator alloc(page_cfg(), 8, sync_tier(/*hot_pages=*/1));
  const PageId a = alloc.allocate();
  fill_page(alloc, a, 8, 1.0f);
  const PagePin hold = alloc.pin(a);  // pin across the whole test.
  std::vector<PageId> rest;
  for (int i = 0; i < 4; ++i) {
    rest.push_back(alloc.allocate());
    fill_page(alloc, rest.back(), 8, static_cast<float>(10 + i));
  }
  // The hot pool (budget 1) is far over budget; every unpinned page is a
  // victim candidate but `a` must still be hot: re-pinning it cannot have
  // triggered a synchronous promotion.
  const TierStats before = alloc.tier_stats();
  { const PagePin again = alloc.pin(a); }
  EXPECT_EQ(alloc.tier_stats().pin_promotions, before.pin_promotions);
  EXPECT_GT(before.demotions, 0u);
  for (const PageId id : rest) alloc.release(id);
}

TEST(TieredAllocator, PinMissPromotesSynchronously) {
  PageAllocator alloc(page_cfg(), 8, sync_tier(/*hot_pages=*/1));
  const PageId a = alloc.allocate();
  fill_page(alloc, a, 8, 3.0f);
  const PageId b = alloc.allocate();  // evicts a (only unpinned page).
  fill_page(alloc, b, 8, 4.0f);
  ASSERT_GT(alloc.tier_stats().demotions, 0u);
  const std::vector<float> back = read_page(alloc, a);  // pin-miss path.
  EXPECT_EQ(alloc.tier_stats().pin_promotions, 1u);
  EXPECT_EQ(back.size(), 8u * 8u);
  alloc.release(a);
  alloc.release(b);
}

TEST(TieredAllocator, SyncPrefetchPromotesAheadOfPins) {
  PageAllocator alloc(page_cfg(), 8, sync_tier(/*hot_pages=*/1));
  const PageId a = alloc.allocate();
  fill_page(alloc, a, 8, 5.0f);
  const PageId b = alloc.allocate();
  fill_page(alloc, b, 8, 6.0f);
  ASSERT_GT(alloc.tier_stats().demotions, 0u);
  const PageId cold = a;  // a was the only demotable page when b arrived.
  alloc.prefetch(std::span<const PageId>(&cold, 1));
  const TierStats after = alloc.tier_stats();
  EXPECT_EQ(after.prefetch_promotions, 1u);
  // The page is already hot, so the pin is a hit, not a promotion.
  read_page(alloc, cold);
  EXPECT_EQ(alloc.tier_stats().pin_promotions, 0u);
  alloc.release(a);
  alloc.release(b);
}

TEST(TieredAllocator, AsyncPrefetchEventuallyPromotes) {
  TierConfig t;
  t.hot_pages = 1;
  t.async_prefetch = true;
  PageAllocator alloc(page_cfg(), 8, t);
  const PageId a = alloc.allocate();
  fill_page(alloc, a, 8, 7.0f);
  const PageId b = alloc.allocate();
  fill_page(alloc, b, 8, 8.0f);
  ASSERT_GT(alloc.tier_stats().demotions, 0u);
  alloc.prefetch(std::span<const PageId>(&a, 1));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (alloc.tier_stats().prefetch_promotions == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(alloc.tier_stats().prefetch_requests, 1u);
  EXPECT_EQ(alloc.tier_stats().prefetch_promotions, 1u);
  EXPECT_EQ(read_page(alloc, a).size(), 8u * 8u);
  alloc.release(a);
  alloc.release(b);
}

TEST(TieredAllocator, SelectorScoresPickTheColdestVictim) {
  PageAllocator alloc(page_cfg(), 8, sync_tier(/*hot_pages=*/2));
  const PageId lo = alloc.allocate();
  const PageId hi = alloc.allocate();
  fill_page(alloc, lo, 8, 1.0f);
  fill_page(alloc, hi, 8, 2.0f);
  const PageId ids[2] = {lo, hi};
  const float scores[2] = {0.25f, 9.0f};
  alloc.note_scores(ids, scores);
  const PageId fresh = alloc.allocate();  // forces one demotion.
  fill_page(alloc, fresh, 8, 3.0f);
  // `hi` must still be hot (no sync promotion on its pin); `lo` was the
  // victim.
  const TierStats before = alloc.tier_stats();
  read_page(alloc, hi);
  EXPECT_EQ(alloc.tier_stats().pin_promotions, before.pin_promotions);
  read_page(alloc, lo);
  EXPECT_EQ(alloc.tier_stats().pin_promotions, before.pin_promotions + 1);
  alloc.release(lo);
  alloc.release(hi);
  alloc.release(fresh);
}

TEST(TieredAllocator, ColdCapPausesSpillingInsteadOfFailing) {
  const std::size_t slot = Page::serialized_bytes_for(page_cfg());
  // Room for exactly one cold page; the hot pool then soft-overruns.
  PageAllocator alloc(page_cfg(), 8,
                      sync_tier(/*hot_pages=*/1, /*cold_bytes=*/slot));
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(alloc.allocate());
    fill_page(alloc, ids.back(), 8, static_cast<float>(i));
  }
  const TierStats stats = alloc.tier_stats();
  EXPECT_EQ(stats.cold_in_use, 1u);
  EXPECT_EQ(stats.hot_in_use, 3u);
  EXPECT_LE(stats.cold_bytes_in_use, slot);
  for (const PageId id : ids) {
    EXPECT_EQ(read_page(alloc, id).size(), 8u * 8u);
  }
  for (const PageId id : ids) alloc.release(id);
}

TEST(TieredAllocator, ReleaseReclaimsBothTiers) {
  PageAllocator alloc(page_cfg(), 8, sync_tier(/*hot_pages=*/1));
  std::vector<PageId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(alloc.allocate());
    fill_page(alloc, ids.back(), 8, static_cast<float>(i));
  }
  ASSERT_GT(alloc.tier_stats().cold_in_use, 0u);
  for (const PageId id : ids) alloc.release(id);
  const TierStats stats = alloc.tier_stats();
  EXPECT_EQ(stats.hot_in_use, 0u);
  EXPECT_EQ(stats.cold_in_use, 0u);
  EXPECT_EQ(stats.cold_bytes_in_use, 0u);
  EXPECT_EQ(alloc.pages_in_use(), 0u);
  EXPECT_EQ(alloc.audit_pinned_pages(), 0u);  // no pin leaked either.
}

TEST(TieredAllocator, OccupancySplitsHotAndCold) {
  PageAllocator alloc(page_cfg(), 8, sync_tier(/*hot_pages=*/2));
  std::vector<PageId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(alloc.allocate());
    fill_page(alloc, ids.back(), 8, static_cast<float>(i));
  }
  const PageAllocator::Occupancy occ = alloc.occupancy();
  EXPECT_EQ(occ.in_use, 5u);
  EXPECT_EQ(occ.hot_in_use + occ.cold_in_use, 5u);
  EXPECT_EQ(occ.hot_in_use, 2u);
  EXPECT_EQ(alloc.hot_pages_in_use(), 2u);
  // Cold pages dropped their device storage: accounting must show only
  // the hot-resident footprint.
  PageAllocator flat(page_cfg(), 8);
  const PageId f = flat.allocate();
  const double per_page = flat.device_bytes_in_use();
  EXPECT_DOUBLE_EQ(alloc.device_bytes_in_use(), 2.0 * per_page);
  flat.release(f);
  for (const PageId id : ids) alloc.release(id);
}

TEST(MemoryConfig, ParsesConsolidatedFlags) {
  MemoryConfig mc;
  EXPECT_TRUE(mc.parse_flag("--page-budget=128"));
  EXPECT_TRUE(mc.parse_flag("--prefix-cache-pages=32"));
  EXPECT_TRUE(mc.parse_flag("--hot-pages=64"));
  EXPECT_TRUE(mc.parse_flag("--cold-bytes=1048576"));
  EXPECT_FALSE(mc.parse_flag("--port=80"));
  EXPECT_FALSE(mc.parse_flag("--page-budget"));  // missing '='.
  EXPECT_EQ(mc.page_budget, 128u);
  EXPECT_EQ(mc.prefix_cache_pages, 32u);
  EXPECT_EQ(mc.hot_pages, 64u);
  EXPECT_EQ(mc.cold_bytes, 1048576u);
  EXPECT_TRUE(mc.tiered());
  EXPECT_FALSE(MemoryConfig{}.tiered());
}

}  // namespace
}  // namespace lserve::kv

namespace lserve::serve {
namespace {

using policy_test::make_request;

/// Drains one workload and returns every output stream, keyed by request.
std::vector<std::vector<std::int32_t>> drain_outputs(
    std::size_t decode_threads, std::size_t hot_pages) {
  EngineConfig ec = policy_test::gated_cfg();
  ec.memory.hot_pages = hot_pages;  // 0 = tiering off.
  Engine engine(ec);
  SchedulerConfig sc;
  sc.max_batch = 4;
  sc.decode_threads = decode_threads;
  sc.memory.page_budget = 64;  // admission + preemption in the loop.
  Scheduler sched(engine, sc);
  for (const auto& [prompt, fresh] : std::vector<std::pair<int, int>>{
           {40, 8}, {64, 6}, {24, 10}, {96, 4}, {56, 8}}) {
    sched.submit(make_request(static_cast<std::size_t>(prompt),
                              static_cast<std::size_t>(fresh)));
  }
  std::vector<RequestResult> results = sched.drain();
  std::sort(results.begin(), results.end(),
            [](const RequestResult& a, const RequestResult& b) {
              return a.request_id < b.request_id;
            });
  std::vector<std::vector<std::int32_t>> out;
  out.reserve(results.size());
  for (RequestResult& r : results) {
    EXPECT_EQ(r.status, RequestStatus::kFinished);
    out.push_back(std::move(r.output));
  }
  if (engine.tiered()) {
    // The tight hot budget must actually have exercised the spill path.
    EXPECT_GT(engine.tier_stats().demotions, 0u);
  }
  return out;
}

TEST(TieredScheduling, DrainIsBitIdenticalTieringOnOrOff) {
  const std::vector<std::vector<std::int32_t>> reference =
      drain_outputs(/*decode_threads=*/1, /*hot_pages=*/0);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    EXPECT_EQ(drain_outputs(threads, /*hot_pages=*/0), reference)
        << "untiered drain diverged at " << threads << " threads";
    EXPECT_EQ(drain_outputs(threads, /*hot_pages=*/24), reference)
        << "tiered drain diverged at " << threads << " threads";
  }
}

}  // namespace
}  // namespace lserve::serve
