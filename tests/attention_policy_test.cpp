// Policy-conformance harness for the attention-policy layer
// (src/serve/attention_policy.hpp).
//
// The contract under test: gated decode must be bit-identical to whichever
// ungated policy the gate selects. Since the route is a pure function of
// the context length, a workload whose every decode step sits below the
// crossover must reproduce an always-dense run exactly, and one whose
// every step sits at or past it must reproduce an always-sparse run
// exactly — outputs, engine counters and scheduler telemetry alike —
// at 1/2/8 decode threads, under preemption replay, and with the prefix
// cache on or off. Mid-sequence flips are pinned against a manual
// set_attention_policy() swap at the crossover step.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "costmodel/pipeline_cost.hpp"
#include "policy_test_util.hpp"
#include "serve/attention_policy.hpp"

namespace lserve::serve {
namespace {

using policy_test::DrainOutcome;
using policy_test::Workload;
using policy_test::above_crossover_workload;
using policy_test::below_crossover_workload;
using policy_test::gated_cfg;
using policy_test::gated_policy;
using policy_test::make_request;
using policy_test::run_drain;

// ---------------------------------------------------------------------------
// Policy objects in isolation.

TEST(AttentionPolicy, StaticPolicyPinsRouteAndName) {
  const StaticAttentionPolicy dense("d", AttentionRoute::kDense);
  const StaticAttentionPolicy sparse("s", AttentionRoute::kSparse);
  for (const std::size_t ctx : {std::size_t{1}, std::size_t{1} << 20}) {
    EXPECT_EQ(dense.route(ctx), AttentionRoute::kDense);
    EXPECT_EQ(sparse.route(ctx), AttentionRoute::kSparse);
  }
  EXPECT_EQ(dense.name(), "d");
  EXPECT_EQ(always_dense_policy()->route(5), AttentionRoute::kDense);
  EXPECT_EQ(always_sparse_policy()->route(5), AttentionRoute::kSparse);
  EXPECT_EQ(always_dense_policy()->name(), "always-dense");
  EXPECT_EQ(always_sparse_policy()->name(), "always-sparse");
  EXPECT_STREQ(to_string(AttentionRoute::kDense), "dense");
  EXPECT_STREQ(to_string(AttentionRoute::kSparse), "sparse");
}

TEST(AttentionPolicy, GatedPolicyFlipsExactlyAtCrossover) {
  const CostModelGatedPolicy gate("g", 100);
  EXPECT_EQ(gate.route(99), AttentionRoute::kDense);
  EXPECT_EQ(gate.route(100), AttentionRoute::kSparse);
  EXPECT_EQ(gate.route(101), AttentionRoute::kSparse);
  EXPECT_EQ(gate.crossover(), 100u);
  // No crossover (sparse never wins) pins the route to dense everywhere.
  const CostModelGatedPolicy never("n", cost::kNoCrossover);
  EXPECT_EQ(never.route(std::size_t{1} << 40), AttentionRoute::kDense);
}

TEST(AttentionPolicy, PresetPoliciesCarryPresetNames) {
  for (int idx = 0; idx < 6; ++idx) {
    const auto policy = baselines::preset_policy(idx);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), baselines::preset_name(idx));
    // Presets run as configured: the route that reproduces each system.
    EXPECT_EQ(policy->route(1), AttentionRoute::kSparse);
  }
}

// The window every conformance workload below is built around: the
// crossover must land past the 64-token selector budget (sparse cannot win
// while the budget covers the context) and before the shortest
// above-crossover context (97). A cost-model change that moves it out of
// this window fails here, loudly, instead of silently weakening the
// workload-based equivalences.
TEST(GatedConformance, CrossoverLandsInTestWindow) {
  const auto gate = gated_policy();
  ASSERT_NE(gate, nullptr);
  EXPECT_GT(gate->crossover(), gated_cfg().selector.token_budget);
  EXPECT_LE(gate->crossover(), 96u);
  // Memoized: the same query returns the same gate.
  EXPECT_EQ(gated_policy()->crossover(), gate->crossover());
}

// ---------------------------------------------------------------------------
// Whole-drain bit-identity.

void expect_same_outcome(const DrainOutcome& a, const DrainOutcome& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    SCOPED_TRACE("result " + std::to_string(i));
    EXPECT_EQ(a.results[i].request_id, b.results[i].request_id);
    EXPECT_EQ(a.results[i].status, b.results[i].status);
    EXPECT_EQ(a.results[i].output, b.results[i].output);
    EXPECT_EQ(a.results[i].prompt_tokens, b.results[i].prompt_tokens);
    EXPECT_EQ(a.results[i].decode_steps, b.results[i].decode_steps);
    EXPECT_EQ(a.results[i].preemptions, b.results[i].preemptions);
    EXPECT_EQ(a.results[i].first_token_step, b.results[i].first_token_step);
    EXPECT_EQ(a.results[i].finish_step, b.results[i].finish_step);
  }
  EXPECT_EQ(a.stats.prefill_tokens, b.stats.prefill_tokens);
  EXPECT_EQ(a.stats.decode_steps, b.stats.decode_steps);
  EXPECT_EQ(a.stats.decode_dense_steps, b.stats.decode_dense_steps);
  EXPECT_EQ(a.stats.decode_sparse_steps, b.stats.decode_sparse_steps);
  EXPECT_EQ(a.stats.pages_visited, b.stats.pages_visited);
  EXPECT_EQ(a.stats.tokens_visited, b.stats.tokens_visited);
  EXPECT_EQ(a.stats.selector_runs, b.stats.selector_runs);
  EXPECT_EQ(a.stats.selector_reuses, b.stats.selector_reuses);
  EXPECT_EQ(a.stats.sequences_created, b.stats.sequences_created);
  EXPECT_EQ(a.stats.sequences_released, b.stats.sequences_released);
  EXPECT_EQ(a.stats.prefix_hits, b.stats.prefix_hits);
  EXPECT_EQ(a.stats.prefix_tokens_reused, b.stats.prefix_tokens_reused);
  EXPECT_EQ(a.stats.prefix_cow_copies, b.stats.prefix_cow_copies);
  EXPECT_EQ(a.sched_stats.steps, b.sched_stats.steps);
  EXPECT_EQ(a.sched_stats.admitted, b.sched_stats.admitted);
  EXPECT_EQ(a.sched_stats.preemptions, b.sched_stats.preemptions);
  EXPECT_EQ(a.sched_stats.deferred_admissions,
            b.sched_stats.deferred_admissions);
  EXPECT_EQ(a.sched_stats.prefill_chunks, b.sched_stats.prefill_chunks);
  EXPECT_EQ(a.sched_stats.prefix_hits, b.sched_stats.prefix_hits);
  EXPECT_EQ(a.sched_stats.prefix_tokens_reused,
            b.sched_stats.prefix_tokens_reused);
}

constexpr std::size_t kThreadMatrix[] = {1, 2, 8};

TEST(GatedConformance, BelowCrossoverEqualsAlwaysDense) {
  for (const std::size_t threads : kThreadMatrix) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const DrainOutcome gated =
        run_drain(gated_policy(), threads, below_crossover_workload());
    const DrainOutcome dense =
        run_drain(always_dense_policy(), threads, below_crossover_workload());
    expect_same_outcome(gated, dense);
    // Every step routed dense: the gate genuinely took the dense path.
    EXPECT_EQ(gated.stats.decode_sparse_steps, 0u);
    EXPECT_EQ(gated.stats.decode_dense_steps, gated.stats.decode_steps);
    EXPECT_GT(gated.stats.decode_steps, 0u);
  }
}

TEST(GatedConformance, AboveCrossoverEqualsAlwaysSparse) {
  for (const std::size_t threads : kThreadMatrix) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const DrainOutcome gated =
        run_drain(gated_policy(), threads, above_crossover_workload());
    const DrainOutcome sparse =
        run_drain(always_sparse_policy(), threads, above_crossover_workload());
    expect_same_outcome(gated, sparse);
    EXPECT_EQ(gated.stats.decode_dense_steps, 0u);
    EXPECT_EQ(gated.stats.decode_sparse_steps, gated.stats.decode_steps);
    // The contexts are past the selector budget, so sparse really pruned.
    EXPECT_GT(gated.stats.selector_runs, 0u);
  }
}

TEST(GatedConformance, PreemptionReplayBelowCrossover) {
  // The scheduler_test pressure recipe: six mixed requests against a
  // 30-page budget force deferrals and recompute preemption; the replayed
  // sequences revisit the same context lengths, so gating replays too.
  const Workload load = {{12, 6}, {40, 3}, {8, 9}, {24, 5}, {16, 2}, {33, 7}};
  for (const std::size_t threads : kThreadMatrix) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const DrainOutcome gated =
        run_drain(gated_policy(), threads, load, /*page_budget=*/30);
    const DrainOutcome dense =
        run_drain(always_dense_policy(), threads, load, /*page_budget=*/30);
    expect_same_outcome(gated, dense);
    EXPECT_GT(gated.sched_stats.preemptions, 0u);
    EXPECT_EQ(gated.stats.decode_sparse_steps, 0u);
  }
}

TEST(GatedConformance, PreemptionReplayAboveCrossover) {
  for (const std::size_t threads : kThreadMatrix) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const DrainOutcome gated = run_drain(gated_policy(), threads,
                                         above_crossover_workload(),
                                         /*page_budget=*/48);
    const DrainOutcome sparse = run_drain(always_sparse_policy(), threads,
                                          above_crossover_workload(),
                                          /*page_budget=*/48);
    expect_same_outcome(gated, sparse);
    EXPECT_GT(gated.sched_stats.preemptions, 0u);
    EXPECT_EQ(gated.stats.decode_dense_steps, 0u);
  }
}

TEST(GatedConformance, PrefixCacheOnStaysBitIdentical) {
  // More requests than batch slots, with overlapping prompts: requests
  // admitted after an earlier finish attach its cached prefix. The attach
  // changes how a context was built, never its length, so the gate must
  // not notice.
  const Workload below_shared = {{24, 8}, {12, 6}, {18, 4}, {8, 10},
                                 {24, 6}, {20, 5}, {16, 3}, {22, 4}};
  const Workload above_shared = {
      {96, 8}, {104, 6}, {112, 4}, {100, 6}, {96, 5}};
  for (const std::size_t threads : kThreadMatrix) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const DrainOutcome gated =
        run_drain(gated_policy(), threads, below_shared,
                  /*page_budget=*/0, /*prefix_cache=*/true);
    const DrainOutcome dense =
        run_drain(always_dense_policy(), threads, below_shared,
                  /*page_budget=*/0, /*prefix_cache=*/true);
    expect_same_outcome(gated, dense);
    EXPECT_GT(gated.stats.prefix_hits, 0u);

    // Cache on vs cache off: same tokens out of the gated engine, matched
    // by request id (completion order may shift — attaches shorten
    // prefills — but the tokens may not).
    const DrainOutcome uncached = run_drain(gated_policy(), threads,
                                            below_shared);
    ASSERT_EQ(gated.results.size(), uncached.results.size());
    for (const RequestResult& r : gated.results) {
      for (const RequestResult& u : uncached.results) {
        if (u.request_id == r.request_id) {
          EXPECT_EQ(r.output, u.output);
        }
      }
    }

    const DrainOutcome gated_hi =
        run_drain(gated_policy(), threads, above_shared,
                  /*page_budget=*/0, /*prefix_cache=*/true);
    const DrainOutcome sparse_hi =
        run_drain(always_sparse_policy(), threads, above_shared,
                  /*page_budget=*/0, /*prefix_cache=*/true);
    expect_same_outcome(gated_hi, sparse_hi);
    EXPECT_GT(gated_hi.stats.prefix_hits, 0u);
  }
}

TEST(GatedConformance, NullPolicyEqualsAlwaysSparse) {
  // No policy attached = run as configured = the kSparse route: the
  // pre-policy engine, preserved bit for bit (and counted as sparse).
  const DrainOutcome none =
      run_drain(nullptr, 2, above_crossover_workload());
  const DrainOutcome sparse =
      run_drain(always_sparse_policy(), 2, above_crossover_workload());
  expect_same_outcome(none, sparse);
}

// ---------------------------------------------------------------------------
// Mid-sequence flips.

TEST(GatedConformance, MidFlipEqualsManualPolicySwap) {
  const auto gate = gated_policy();
  const std::size_t cross = gate->crossover();
  ASSERT_GT(cross, 64u);
  ASSERT_LE(cross, 96u);
  // Start 8 tokens below the crossover and decode 16: the route flips
  // dense→sparse mid-sequence, at context == cross exactly.
  const std::size_t prompt_len = cross - 8;
  const std::size_t decodes = 16;
  const std::vector<std::int32_t> prompt = make_request(prompt_len, 1).prompt;

  const auto run_with =
      [&](std::shared_ptr<const AttentionPolicy> initial,
          bool swap_at_crossover) {
        EngineConfig ec = gated_cfg();
        ec.policy = std::move(initial);
        Engine engine(ec);
        const SequenceId id = engine.create_sequence();
        std::vector<std::int32_t> out{engine.prefill(id, prompt)};
        for (std::size_t i = 1; i <= decodes; ++i) {
          // Context of this decode step (position after its KV append).
          if (swap_at_crossover && prompt_len + i >= cross) {
            engine.set_attention_policy(always_sparse_policy());
          }
          out.push_back(engine.decode(id, out.back()));
        }
        EngineStats stats = engine.stats();
        engine.release_sequence(id);
        return std::make_pair(out, stats);
      };

  const auto [gated_out, gated_stats] = run_with(gate, false);
  // Manual reference: always-dense until the crossover step, then swapped
  // to always-sparse by hand. The gate must be exactly this swap.
  const auto [manual_out, manual_stats] =
      run_with(always_dense_policy(), true);
  EXPECT_EQ(gated_out, manual_out);

  // Decision accounting: dense for contexts prompt_len+1 .. cross-1,
  // sparse from cross onward.
  EXPECT_EQ(gated_stats.decode_dense_steps, cross - prompt_len - 1);
  EXPECT_EQ(gated_stats.decode_sparse_steps,
            decodes - (cross - prompt_len - 1));
  EXPECT_EQ(gated_stats.decode_dense_steps + gated_stats.decode_sparse_steps,
            gated_stats.decode_steps);

  // And the pre-flip prefix matches an uninterrupted always-dense run
  // (the flip cannot rewrite history).
  const auto [dense_out, dense_stats] =
      run_with(always_dense_policy(), false);
  (void)dense_stats;
  for (std::size_t i = 0; i < cross - prompt_len; ++i) {
    EXPECT_EQ(gated_out[i], dense_out[i]) << "token " << i;
  }
}

TEST(GatedConformance, MidFlipThroughSchedulerCountsDecisions) {
  // Same flip driven by the scheduler (chunked prefill → decode handoff),
  // at every thread count: the per-request route counts are a pure
  // function of (prompt_len, crossover), independent of scheduling.
  const auto gate = gated_policy();
  const std::size_t cross = gate->crossover();
  const Workload load = {{cross - 6, 12}, {cross - 14, 10}, {cross + 2, 6}};
  std::size_t expect_dense = 0;
  std::size_t expect_total = 0;
  for (const auto& [prompt_len, new_tokens] : load) {
    for (std::size_t i = 1; i < new_tokens; ++i) {
      ++expect_total;
      if (prompt_len + i < cross) ++expect_dense;
    }
  }
  for (const std::size_t threads : kThreadMatrix) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const DrainOutcome out = run_drain(gate, threads, load);
    EXPECT_EQ(out.stats.decode_steps, expect_total);
    EXPECT_EQ(out.stats.decode_dense_steps, expect_dense);
    EXPECT_EQ(out.stats.decode_sparse_steps, expect_total - expect_dense);
  }
}

}  // namespace
}  // namespace lserve::serve
