// Tests for the evaluation harness (src/eval): NIAH, RULER-proxy,
// LongBench-proxy, and the probe metrics underneath them.
#include <gtest/gtest.h>

#include "eval/longbench.hpp"
#include "eval/metrics.hpp"
#include "eval/niah.hpp"
#include "eval/ruler.hpp"

namespace lserve::eval {
namespace {

kv::PageConfig pages(std::size_t np, std::size_t nl) {
  kv::PageConfig c;
  c.page_size = np;
  c.logical_page_size = nl;
  c.head_dim = 48;
  return c;
}

NiahConfig small_niah(PolicyKind kind, std::size_t np, std::size_t nl,
                      std::size_t budget) {
  NiahConfig cfg;
  cfg.lengths = {4096, 8192};
  cfg.depths = {0.1, 0.3, 0.5, 0.7, 0.9};
  cfg.head_dim = 48;
  cfg.pages = pages(np, nl);
  cfg.policy.kind = kind;
  cfg.policy.selector.token_budget = budget;
  return cfg;
}

TEST(Niah, DenseOracleIsNearPerfect) {
  const NiahResult r = run_niah(small_niah(PolicyKind::kDense, 16, 16, 0));
  EXPECT_GT(r.mean_accuracy(), 0.9);
}

TEST(Niah, QuestAtSmallPagesMatchesDense) {
  // Fig 6(b): page 16 + adequate budget is nearly lossless.
  const NiahResult r =
      run_niah(small_niah(PolicyKind::kFlatSelect, 16, 16, 512));
  EXPECT_GT(r.mean_accuracy(), 0.85);
}

TEST(Niah, FlatSelectionDegradesAtLargePages) {
  // Fig 6(d): same budget, page 64 -> flat page-wide min/max scoring loses
  // needles to pages whose envelopes are inflated by several distractors.
  const double acc64 =
      run_niah(small_niah(PolicyKind::kFlatSelect, 64, 64, 512))
          .mean_accuracy();
  const double acc16 =
      run_niah(small_niah(PolicyKind::kFlatSelect, 16, 16, 512))
          .mean_accuracy();
  EXPECT_GT(acc16, 0.9);
  EXPECT_LT(acc64, acc16 - 0.2);
}

TEST(Niah, HierarchicalRecoversLargePageAccuracy) {
  // Fig 13: NP=64 / NL=16 with the SAME budget matches NP=16 flat.
  const double flat16 =
      run_niah(small_niah(PolicyKind::kFlatSelect, 16, 16, 384))
          .mean_accuracy();
  const double hier64 =
      run_niah(small_niah(PolicyKind::kHierSelect, 64, 16, 384))
          .mean_accuracy();
  EXPECT_GT(hier64, flat16 - 0.05);
  EXPECT_GT(hier64, 0.85);
}

TEST(Niah, StreamingPolicyMissesDeepNeedles) {
  // A pure-streaming pathway must fail mid-context retrieval — this is why
  // retrieval heads stay dense.
  NiahConfig cfg = small_niah(PolicyKind::kStreaming, 16, 16, 0);
  cfg.policy.sink_tokens = 64;
  cfg.policy.local_tokens = 256;
  const NiahResult r = run_niah(cfg);
  // Depth 0.5 cell at 8192 tokens lies outside sink+local.
  EXPECT_LT(r.accuracy[1][2], 0.5);
}

TEST(Niah, AsciiHeatmapHasOneRowPerLength) {
  const NiahResult r = run_niah(small_niah(PolicyKind::kDense, 16, 16, 0));
  const std::string art = r.ascii_heatmap();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'),
            static_cast<long>(r.lengths.size()));
}

TEST(Metrics, ProbePagesVisitedReflectsPolicy) {
  model::StreamConfig sc;
  sc.n_tokens = 1024;
  sc.head_dim = 48;
  model::TokenStream stream = model::smooth_stream(sc);
  kv::PageAllocator alloc(pages(16, 16), 80);
  kv::HeadCache head;
  fill_head_cache(alloc, head, stream);
  std::vector<float> q(48, 0.5f);

  ProbePolicy dense;
  ProbePolicy pruned;
  pruned.kind = PolicyKind::kHierSelect;
  pruned.selector.token_budget = 128;
  EXPECT_EQ(probe_pages_visited(alloc, head, q.data(), dense), 64u);
  EXPECT_EQ(probe_pages_visited(alloc, head, q.data(), pruned), 8u);
}

TEST(Ruler, DenseScoresHighOnAllTasks) {
  RulerConfig cfg;
  cfg.seq_len = 8192;
  cfg.head_dim = 48;
  cfg.pages = pages(16, 16);
  cfg.trials = 2;
  const RulerResult r = run_ruler(cfg);
  EXPECT_GT(r.retrieval, 85.0);
  EXPECT_GT(r.multi_hop, 70.0);
  EXPECT_GT(r.aggregation, 80.0);
  EXPECT_GT(r.composite(), 80.0);
}

TEST(Ruler, HierarchicalCloseToDense) {
  RulerConfig dense_cfg;
  dense_cfg.seq_len = 8192;
  dense_cfg.head_dim = 48;
  dense_cfg.pages = pages(64, 16);
  dense_cfg.trials = 2;
  RulerConfig lserve_cfg = dense_cfg;
  lserve_cfg.policy.kind = PolicyKind::kHierSelect;
  lserve_cfg.policy.selector.token_budget = 1024;
  const double dense = run_ruler(dense_cfg).composite();
  const double sparse = run_ruler(lserve_cfg).composite();
  EXPECT_GT(sparse, dense - 10.0);
}

TEST(Ruler, LargerBudgetNeverHurts) {
  // Table 3 shape: LServe-8192 >= LServe-4096 (here scaled down).
  RulerConfig small_budget;
  small_budget.seq_len = 8192;
  small_budget.head_dim = 48;
  small_budget.pages = pages(64, 16);
  small_budget.trials = 2;
  small_budget.policy.kind = PolicyKind::kHierSelect;
  small_budget.policy.selector.token_budget = 512;
  RulerConfig big_budget = small_budget;
  big_budget.policy.selector.token_budget = 2048;
  EXPECT_GE(run_ruler(big_budget).composite() + 3.0,
            run_ruler(small_budget).composite());
}

TEST(Tracking, ReuseIntervalAccuracyIsFlatThenDrops) {
  // Table 6 shape: interval 4 ~ interval 1; interval 16 degrades.
  RulerConfig cfg;
  cfg.seq_len = 8192;
  cfg.head_dim = 48;
  cfg.pages = pages(64, 16);
  cfg.trials = 2;
  cfg.policy.kind = PolicyKind::kHierSelect;
  cfg.policy.selector.token_budget = 512;

  cfg.reuse_interval = 1;
  const double acc1 = run_tracking(cfg);
  cfg.reuse_interval = 4;
  const double acc4 = run_tracking(cfg);
  cfg.reuse_interval = 16;
  const double acc16 = run_tracking(cfg);
  EXPECT_GT(acc1, 80.0);
  EXPECT_GT(acc4, acc1 - 8.0);   // flat region
  EXPECT_LE(acc16, acc4 + 1e-9); // monotone degradation
}

TEST(LongBench, DenseSuiteScoresHigh) {
  LongBenchConfig cfg;
  cfg.pages = pages(16, 16);
  cfg.head_dim = 48;
  cfg.trials = 2;
  const auto rows = run_longbench(cfg);
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows[0].task, "2WikiMQA");
  EXPECT_EQ(rows[7].task, "TriviaQA");
  EXPECT_GT(longbench_average(rows), 75.0);
}

TEST(LongBench, LServePolicyWithinDelta) {
  // Table 2 shape: |avg(LServe) - avg(dense)| small.
  LongBenchConfig dense_cfg;
  dense_cfg.pages = pages(64, 16);
  dense_cfg.head_dim = 48;
  dense_cfg.trials = 2;
  LongBenchConfig lserve_cfg = dense_cfg;
  lserve_cfg.policy.kind = PolicyKind::kHierSelect;
  lserve_cfg.policy.selector.token_budget = 1024;
  const double dense = longbench_average(run_longbench(dense_cfg));
  const double sparse = longbench_average(run_longbench(lserve_cfg));
  EXPECT_LT(dense - sparse, 8.0);
}

}  // namespace
}  // namespace lserve::eval
