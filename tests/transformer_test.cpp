// Tests for the transformer compute substrate (src/model/transformer).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/model_config.hpp"
#include "model/transformer.hpp"
#include "numeric/math.hpp"

namespace lserve::model {
namespace {

TEST(ModelConfig, PresetGeometries) {
  const ModelConfig l3 = llama3_8b();
  EXPECT_EQ(l3.layers, 32u);
  EXPECT_EQ(l3.q_heads, 32u);
  EXPECT_EQ(l3.kv_heads, 8u);
  EXPECT_EQ(l3.head_dim, 128u);
  EXPECT_TRUE(l3.is_gqa());
  EXPECT_EQ(l3.group_size(), 4u);
  EXPECT_EQ(l3.hidden(), 4096u);

  const ModelConfig l2 = llama2_7b();
  EXPECT_FALSE(l2.is_gqa());
  EXPECT_EQ(l2.group_size(), 1u);

  const ModelConfig m4 = minitron_4b();
  EXPECT_EQ(m4.q_heads, 24u);
  EXPECT_EQ(m4.kv_heads, 8u);
  EXPECT_EQ(m4.hidden(), 3072u);

  // ~8B parameters for the Llama-3-8B geometry (order of magnitude).
  EXPECT_GT(l3.parameter_count(), 6'000'000'000ull);
  EXPECT_LT(l3.parameter_count(), 9'000'000'000ull);
}

TEST(Transformer, DeterministicFromSeed) {
  const ModelConfig cfg = tiny();
  Transformer a(cfg, 42), b(cfg, 42), c(cfg, 43);
  const std::vector<std::int32_t> ids{1, 2, 3};
  const num::Tensor ea = a.embed(ids);
  const num::Tensor eb = b.embed(ids);
  const num::Tensor ec = c.embed(ids);
  float diff_ab = 0.0f, diff_ac = 0.0f;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    diff_ab += std::abs(ea.data()[i] - eb.data()[i]);
    diff_ac += std::abs(ea.data()[i] - ec.data()[i]);
  }
  EXPECT_EQ(diff_ab, 0.0f);
  EXPECT_GT(diff_ac, 0.1f);
}

TEST(Transformer, RmsNormOutputHasUnitRms) {
  const ModelConfig cfg = tiny();
  Transformer tf(cfg, 1);
  num::Tensor x(2, cfg.hidden());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = 3.0f * static_cast<float>(i % 7) - 2.0f;
  }
  num::Tensor out(2, cfg.hidden());
  tf.rms_norm(x.view(), 0, out.view());
  for (std::size_t r = 0; r < 2; ++r) {
    double ms = 0.0;
    for (std::size_t c = 0; c < cfg.hidden(); ++c) {
      ms += static_cast<double>(out.at(r, c)) * out.at(r, c);
    }
    EXPECT_NEAR(ms / cfg.hidden(), 1.0, 1e-3);
  }
}

TEST(Transformer, QkvShapesAndRopePositionDependence) {
  const ModelConfig cfg = tiny();
  Transformer tf(cfg, 2);
  num::Tensor x(4, cfg.hidden(), 0.1f);
  num::Tensor q0(4, cfg.hidden()), k0(4, cfg.kv_dim()), v0(4, cfg.kv_dim());
  num::Tensor q1(4, cfg.hidden()), k1(4, cfg.kv_dim()), v1(4, cfg.kv_dim());
  tf.qkv_project(x.view(), 0, /*pos0=*/0, q0.view(), k0.view(), v0.view());
  tf.qkv_project(x.view(), 0, /*pos0=*/100, q1.view(), k1.view(), v1.view());
  // Values are position-independent; queries/keys rotate with position.
  float vdiff = 0.0f, qdiff = 0.0f;
  for (std::size_t i = 0; i < v0.size(); ++i) {
    vdiff += std::abs(v0.data()[i] - v1.data()[i]);
  }
  for (std::size_t i = 0; i < q0.size(); ++i) {
    qdiff += std::abs(q0.data()[i] - q1.data()[i]);
  }
  EXPECT_EQ(vdiff, 0.0f);
  EXPECT_GT(qdiff, 0.01f);
}

TEST(Transformer, ReadoutLogitsConsistentWithArgmax) {
  const ModelConfig cfg = tiny();
  Transformer tf(cfg, 3);
  const std::vector<std::int32_t> ids{5};
  const num::Tensor h = tf.embed(ids);
  const auto logits = tf.readout_logits(h.row(0));
  const std::int32_t best = tf.readout_argmax(h.row(0));
  ASSERT_EQ(logits.size(), cfg.vocab);
  for (float l : logits) {
    EXPECT_LE(l, logits[static_cast<std::size_t>(best)] + 1e-6f);
  }
  // Embedding row dotted with itself dominates: argmax(embed(t)) == t for
  // random gaussian embeddings with high probability; check it holds here.
  EXPECT_EQ(best, 5);
}

TEST(Transformer, FfnAndOutputProjectChangeHiddenState) {
  const ModelConfig cfg = tiny();
  Transformer tf(cfg, 4);
  num::Tensor hidden(1, cfg.hidden(), 0.5f);
  num::Tensor before = hidden;
  tf.ffn(hidden.view(), 0);
  float diff = 0.0f;
  for (std::size_t i = 0; i < hidden.size(); ++i) {
    diff += std::abs(hidden.data()[i] - before.data()[i]);
  }
  EXPECT_GT(diff, 1e-3f);
  EXPECT_TRUE(std::isfinite(hidden.at(0, 0)));
}

TEST(Transformer, DeepStackStaysFinite) {
  const ModelConfig cfg = small();
  Transformer tf(cfg, 5);
  num::Tensor hidden(2, cfg.hidden(), 0.3f);
  num::Tensor normed(2, cfg.hidden());
  for (std::size_t layer = 0; layer < cfg.layers; ++layer) {
    tf.rms_norm(hidden.view(), layer, normed.view());
    tf.output_project(normed.view(), layer, hidden.view());
    tf.ffn(hidden.view(), layer);
  }
  for (std::size_t i = 0; i < hidden.size(); ++i) {
    EXPECT_TRUE(std::isfinite(hidden.data()[i]));
  }
}

}  // namespace
}  // namespace lserve::model
