// Tests for the radix prefix cache (kv/prefix_cache) and its serving
// integration: bit-exact attach-resume, copy-on-write divergence, refcount
// lifecycle across preemption/cancel, and LRU eviction under page budgets.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "serve/engine.hpp"
#include "serve/scheduler.hpp"

namespace lserve::serve {
namespace {

std::vector<std::int32_t> prompt_ids(std::size_t n, std::int32_t base = 3) {
  std::vector<std::int32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = static_cast<std::int32_t>((base + 7 * i) % 251);
  }
  return ids;
}

/// Small-page LServe engine with active sparsity: streaming windows slide
/// and the selector prunes within short prompts.
EngineConfig cache_config(bool cache_on) {
  EngineConfig cfg = baselines::lserve_config(model::tiny());
  cfg.dense_pages.page_size = 8;
  cfg.dense_pages.logical_page_size = 4;
  cfg.tiling = {8, 8};
  cfg.streaming = {/*sink_tokens=*/8, /*local_tokens=*/16};
  cfg.selector.token_budget = 48;
  cfg.reuse_interval = 4;
  cfg.pool_pages = 1024;
  cfg.enable_prefix_cache = cache_on;
  return cfg;
}

std::vector<kv::HeadKind> partition(const Engine& eng, int mode) {
  std::vector<kv::HeadKind> kinds(eng.head_kinds().size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    kinds[i] = mode == 0   ? kv::HeadKind::kDense
               : mode == 1 ? kv::HeadKind::kStreaming
                           : (i % 2 ? kv::HeadKind::kStreaming
                                    : kv::HeadKind::kDense);
  }
  return kinds;
}

/// Reference: fresh cache-off engine, monolithic prefill + greedy decode.
std::vector<std::int32_t> generate_ref(int mode,
                                       std::span<const std::int32_t> prompt,
                                       std::size_t n) {
  Engine eng(cache_config(false));
  eng.set_head_kinds(partition(eng, mode));
  const SequenceId id = eng.create_sequence();
  std::vector<std::int32_t> out = eng.generate(id, prompt, n);
  eng.release_sequence(id);
  return out;
}

/// Cache-on turn: attach whatever the cache has, prefill the suffix, decode
/// `n` tokens, insert the final KV back, release. Returns (output, reused).
struct TurnResult {
  std::vector<std::int32_t> output;
  std::size_t reused = 0;
};

TurnResult run_turn(Engine& eng, std::span<const std::int32_t> prompt,
                    std::size_t n) {
  TurnResult r;
  const SequenceId id = eng.create_sequence();
  r.reused = eng.attach_prefix(id, prompt);
  eng.begin_prefill(id, prompt.size());
  eng.prefill_chunk(id, prompt.subspan(r.reused));
  std::int32_t tok = eng.finish_prefill(id);
  r.output.push_back(tok);
  for (std::size_t i = 1; i < n; ++i) {
    tok = eng.decode(id, tok);
    r.output.push_back(tok);
  }
  // Only the prefilled prompt is cacheable: decode-produced K/V differ
  // numerically from a prefill of the same tokens.
  eng.insert_prefix(id, prompt);
  eng.release_sequence(id);
  return r;
}

class PrefixCacheBitExact : public ::testing::TestWithParam<int> {};

// Three chat turns; every turn must match a cache-off run bit for bit, and
// turns 2/3 must actually reuse cached tokens.
TEST_P(PrefixCacheBitExact, MultiTurnAttachMatchesColdPrefill) {
  const int mode = GetParam();
  Engine eng(cache_config(true));
  eng.set_head_kinds(partition(eng, mode));

  std::vector<std::int32_t> prompt = prompt_ids(45);
  for (int turn = 0; turn < 3; ++turn) {
    const std::vector<std::int32_t> want = generate_ref(mode, prompt, 6);
    const TurnResult got = run_turn(eng, prompt, 6);
    ASSERT_EQ(want, got.output) << "mode " << mode << " turn " << turn;
    if (turn > 0) {
      EXPECT_GT(got.reused, 0u) << "mode " << mode << " turn " << turn;
    }
    // Next turn: history (prompt + full reply) + fresh user tokens.
    prompt.insert(prompt.end(), got.output.begin(), got.output.end());
    const std::vector<std::int32_t> fresh =
        prompt_ids(11, static_cast<std::int32_t>(17 * (turn + 1)));
    prompt.insert(prompt.end(), fresh.begin(), fresh.end());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPartitions, PrefixCacheBitExact,
                         ::testing::Values(0, 1, 2));

// A second conversation that diverges inside a partially-shared page must
// copy-on-write the tail (never mutate shared pages) and still match a
// cold prefill bit for bit.
TEST(PrefixCacheCow, MidPageDivergenceCopiesAndStaysExact) {
  const int mode = 2;
  Engine eng(cache_config(true));
  eng.set_head_kinds(partition(eng, mode));

  // Seed the tree: 21-token prompt (page_size 8 -> partial tail of 5).
  const std::vector<std::int32_t> a = prompt_ids(21);
  run_turn(eng, a, 4);
  const std::size_t cow_seed = eng.stats().prefix_cow_copies;

  // B shares 18 tokens — two full pages plus 2 tokens into page 2 — then
  // diverges mid-page.
  std::vector<std::int32_t> b(a.begin(), a.begin() + 18);
  const std::vector<std::int32_t> tail = prompt_ids(13, 101);
  b.insert(b.end(), tail.begin(), tail.end());

  const std::vector<std::int32_t> want = generate_ref(mode, b, 4);
  const TurnResult got = run_turn(eng, b, 4);
  EXPECT_EQ(want, got.output);
  EXPECT_GT(got.reused, 0u);
  EXPECT_GT(eng.stats().prefix_cow_copies, cow_seed);
}

// Insert-time LRU eviction keeps the tree at its page budget without
// corrupting what stays cached.
TEST(PrefixCacheEviction, BudgetHoldsAndSurvivorsStayExact) {
  const int mode = 2;
  EngineConfig cfg = cache_config(true);
  cfg.memory.prefix_cache_pages = 24;
  Engine eng(cfg);
  eng.set_head_kinds(partition(eng, mode));

  // Five distinct conversations: each needs ~3 blocks x 4 head slots, so
  // the 24-page budget forces LRU eviction of the oldest trees.
  for (int i = 0; i < 5; ++i) {
    const std::vector<std::int32_t> prompt =
        prompt_ids(21, static_cast<std::int32_t>(23 * i + 1));
    run_turn(eng, prompt, 3);
    EXPECT_LE(eng.prefix_cache_pages_held(), 24u);
  }
  EXPECT_GT(eng.stats().prefix_evictions, 0u);

  // The most recent conversation (LRU survivor) still replays exactly.
  const std::vector<std::int32_t> prompt = prompt_ids(21, 23 * 4 + 1);
  const std::vector<std::int32_t> want = generate_ref(mode, prompt, 3);
  const TurnResult got = run_turn(eng, prompt, 3);
  EXPECT_EQ(want, got.output);
}

// ---------------------------------------------------------------------------
// Scheduler-level integration.

Request make_request(std::vector<std::int32_t> prompt, std::size_t budget,
                     std::vector<std::int32_t>* out) {
  Request req;
  req.prompt = std::move(prompt);
  req.max_new_tokens = budget;
  req.on_token = [out](std::uint64_t, std::int32_t tok, std::size_t) {
    out->push_back(tok);
  };
  return req;
}

/// Six requests, three distinct continuations of one shared system
/// prompt, each submitted twice. Returns the streamed outputs in
/// submission order.
std::vector<std::vector<std::int32_t>> sched_outputs(bool cache_on,
                                                     std::size_t threads) {
  Engine eng(cache_config(cache_on));
  eng.set_head_kinds(partition(eng, 2));
  SchedulerConfig sc;
  sc.max_batch = 4;
  sc.decode_threads = threads;
  Scheduler sched(eng, sc);

  const std::vector<std::int32_t> sys = prompt_ids(24);
  std::vector<std::vector<std::int32_t>> outs(6);
  for (int i = 0; i < 6; ++i) {
    std::vector<std::int32_t> prompt = sys;
    const std::vector<std::int32_t> user =
        prompt_ids(9, static_cast<std::int32_t>(31 * (i % 3) + 2));
    prompt.insert(prompt.end(), user.begin(), user.end());
    sched.submit(make_request(std::move(prompt), 5, &outs[i]));
  }
  sched.drain();
  if (cache_on) {
    // Later admissions ride the prefix the earlier retirements inserted.
    EXPECT_GT(sched.scheduler_stats().prefix_hits, 0u);
  }
  return outs;
}

// The cache must be invisible in outputs: cache on == cache off, token for
// token, at every decode parallelism.
TEST(PrefixCacheScheduler, BitIdenticalCacheOnOffAcrossThreads) {
  const auto ref = sched_outputs(false, 1);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    EXPECT_EQ(ref, sched_outputs(false, threads)) << threads << " threads";
    EXPECT_EQ(ref, sched_outputs(true, threads)) << threads << " threads";
  }
}

// Refcount lifecycle under memory pressure: preemption and cancellation
// release sequence references while the tree keeps its own; after drain
// the only live pages are the cache's, and a full reclaim empties both
// pools.
TEST(PrefixCacheScheduler, RefcountsSurvivePreemptionCancelAndReclaim) {
  Engine eng(cache_config(true));
  eng.set_head_kinds(partition(eng, 2));
  SchedulerConfig sc;
  sc.max_batch = 2;
  sc.memory.page_budget = 28;
  Scheduler sched(eng, sc);

  const std::vector<std::int32_t> sys = prompt_ids(16);
  std::vector<std::vector<std::int32_t>> outs(3);
  std::uint64_t ids[3];
  for (int i = 0; i < 3; ++i) {
    std::vector<std::int32_t> prompt = sys;
    prompt[3] += static_cast<std::int32_t>(i);  // distinct streams.
    ids[i] = sched.submit(
        make_request(std::move(prompt), i == 1 ? 20 : 12, &outs[i]));
  }
  for (int i = 0; i < 6; ++i) sched.step();
  sched.cancel(ids[2]);
  sched.drain();

  EXPECT_GE(sched.scheduler_stats().preemptions, 1u);
  EXPECT_EQ(sched.scheduler_stats().cancelled, 1u);
  // Every live page is a prefix-cache reference...
  EXPECT_EQ(eng.total_pages_in_use(), eng.prefix_cache_pages_held());
  // ...and dropping the tree returns the pools to empty.
  eng.reclaim_prefix_pages(~std::size_t{0});
  EXPECT_EQ(eng.total_pages_in_use(), 0u);
  EXPECT_EQ(eng.prefix_cache_pages_held(), 0u);
}

}  // namespace
}  // namespace lserve::serve
