// Cross-module integration tests: the full LServe pipeline against the
// dense pipeline on the same weights, plus memory/work accounting across
// the whole stack.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "attn/dense_attention.hpp"
#include "baselines/baseline_engines.hpp"
#include "eval/metrics.hpp"
#include "numeric/math.hpp"
#include "serve/scheduler.hpp"

namespace lserve {
namespace {

std::vector<std::int32_t> prompt_ids(std::size_t n) {
  std::vector<std::int32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = static_cast<std::int32_t>((11 * i + 2) % 251);
  }
  return ids;
}

serve::EngineConfig small_dense() {
  serve::EngineConfig cfg = baselines::vllm_config(model::tiny());
  cfg.dense_pages.page_size = 16;
  cfg.dense_pages.logical_page_size = 16;
  cfg.tiling = {16, 16};
  cfg.pool_pages = 512;
  return cfg;
}

serve::EngineConfig small_lserve() {
  serve::EngineConfig cfg = baselines::lserve_config(model::tiny());
  cfg.dense_pages.page_size = 16;
  cfg.dense_pages.logical_page_size = 4;
  cfg.dense_pages.dtype = num::KvDtype::kInt8;
  cfg.tiling = {16, 16};
  cfg.streaming = {/*sink=*/16, /*local=*/64};
  cfg.selector.token_budget = 128;
  cfg.reuse_interval = 4;
  cfg.pool_pages = 512;
  return cfg;
}

// With real sparsity active (pruned budget, streaming heads, quantized
// KV) on a RANDOM-weight transformer, attention is diffuse, so pruning
// legitimately changes outputs — token-level parity under pruning is only
// expected for peaked (retrieval-like) attention, which the eval_test
// probes validate at the attention level. At the engine level we assert
// (a) the generation stays well-formed under aggressive sparsity and
// (b) sparsity becomes inactive-equivalent when it covers the context
// (the covering case is Engine.CoveringSparsityMatchesDenseExactly).
TEST(Integration, SparseEngineGeneratesWellFormedOutput) {
  serve::Engine dense(small_dense());
  serve::Engine sparse(small_lserve());
  const auto ids = prompt_ids(192);

  const auto sd = dense.create_sequence();
  const auto ss = sparse.create_sequence();
  const auto out_d = dense.generate(sd, ids, 8);
  const auto out_s = sparse.generate(ss, ids, 8);
  ASSERT_EQ(out_d.size(), out_s.size());
  const auto vocab =
      static_cast<std::int32_t>(sparse.config().model.vocab);
  for (auto t : out_s) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, vocab);
  }
  // Determinism under sparsity: a second sparse engine reproduces the
  // trajectory token for token.
  serve::Engine sparse2(small_lserve());
  const auto ss2 = sparse2.create_sequence();
  EXPECT_EQ(sparse2.generate(ss2, ids, 8), out_s);
}

TEST(Integration, SparsityReducesDecodeWorkAndMemory) {
  serve::Engine dense(small_dense());
  serve::Engine sparse(small_lserve());
  const auto ids = prompt_ids(256);

  const auto sd = dense.create_sequence();
  const auto ss = sparse.create_sequence();
  dense.generate(sd, ids, 6);
  sparse.generate(ss, ids, 6);

  // Work: decode token iterations with pruning+streaming stay well below
  // the dense engine's.
  EXPECT_LT(sparse.stats().tokens_visited,
            dense.stats().tokens_visited * 3 / 4);
  // Memory: int8 KV + evicted streaming pages.
  EXPECT_LT(sparse.kv_device_bytes(), 0.7 * dense.kv_device_bytes());
}

TEST(Integration, SchedulerOverLServeEngineCompletesBatch) {
  serve::Engine engine(small_lserve());
  serve::Scheduler sched(engine, 2);
  for (int i = 0; i < 4; ++i) {
    serve::Request req;
    req.prompt = prompt_ids(64 + 16 * i);
    req.max_new_tokens = 4;
    sched.submit(std::move(req));
  }
  const auto results = sched.drain();
  EXPECT_EQ(results.size(), 4u);
  for (const auto& r : results) EXPECT_EQ(r.output.size(), 4u);
  EXPECT_EQ(engine.dense_allocator().pages_in_use(), 0u);
  EXPECT_EQ(engine.stream_allocator().pages_in_use(), 0u);
}

TEST(Integration, CalibratedEngineStillGeneratesConsistently) {
  serve::EngineConfig cfg = small_lserve();
  cfg.streaming = {/*sink=*/16, /*local=*/48};
  serve::Engine engine(cfg);
  engine.calibrate_head_kinds();
  const auto ids = prompt_ids(96);
  const auto seq = engine.create_sequence();
  const auto out = engine.generate(seq, ids, 5);
  EXPECT_EQ(out.size(), 5u);
  for (auto t : out) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, static_cast<std::int32_t>(cfg.model.vocab));
  }
}

// Probe-level agreement between the engine's fused decode and the eval
// harness's single-head probes: both must implement the same attention.
TEST(Integration, EvalProbeMatchesKernelOnSameCache) {
  kv::PageConfig pages;
  pages.page_size = 16;
  pages.logical_page_size = 4;
  pages.head_dim = 32;
  kv::PageAllocator alloc(pages, 64);
  kv::HeadCache head;
  model::StreamConfig sc;
  sc.n_tokens = 512;
  sc.head_dim = 32;
  model::TokenStream stream = model::smooth_stream(sc);
  eval::fill_head_cache(alloc, head, stream);
  std::vector<float> q(32, 0.3f);

  eval::ProbePolicy dense_policy;
  const auto probe = eval::run_probe(alloc, head, q.data(), dense_policy);
  std::vector<float> direct(32);
  attn::dense_paged_decode(alloc, head, q.data(), 32,
                           1.0f / std::sqrt(32.0f), direct.data());
  for (std::size_t c = 0; c < 32; ++c) {
    EXPECT_NEAR(probe[c], direct[c], 1e-5f);
  }
}

}  // namespace
}  // namespace lserve
