// Tests for block masks and the iterator abstraction
// (src/attn/block_iterator).
#include <gtest/gtest.h>

#include <tuple>

#include "attn/block_iterator.hpp"

namespace lserve::attn {
namespace {

TEST(BlockMask, CausalKeepsLowerTriangle) {
  // 64 tokens, 16x16 tiles -> 4x4 blocks, lower triangular.
  BlockMask m = BlockMask::causal(64, 16, 16);
  EXPECT_EQ(m.q_blocks(), 4u);
  EXPECT_EQ(m.k_blocks(), 4u);
  for (std::size_t qb = 0; qb < 4; ++qb) {
    for (std::size_t kb = 0; kb < 4; ++kb) {
      EXPECT_EQ(m.kept(qb, kb), kb <= qb) << qb << "," << kb;
    }
  }
  EXPECT_EQ(m.kept_blocks(), 10u);
  EXPECT_DOUBLE_EQ(m.sparsity_vs_causal(64, 16, 16), 0.0);
}

TEST(BlockMask, CausalHandlesRaggedTail) {
  // 50 tokens with 16-tile: 4 q blocks, last one covers rows 48..49.
  BlockMask m = BlockMask::causal(50, 16, 16);
  EXPECT_EQ(m.q_blocks(), 4u);
  // Last q block's diagonal k block is floor(49/16) = 3.
  EXPECT_TRUE(m.kept(3, 3));
}

TEST(BlockMask, StreamingKeepsSinksAndDiagonalBand) {
  BlockMask m = BlockMask::streaming(128, 16, 16, /*sink=*/1, /*local=*/2);
  // Query block 6 (rows 96..111): diag = 6. Kept: kb 0 (sink), 5, 6 (local).
  EXPECT_TRUE(m.kept(6, 0));
  EXPECT_TRUE(m.kept(6, 5));
  EXPECT_TRUE(m.kept(6, 6));
  EXPECT_FALSE(m.kept(6, 1));
  EXPECT_FALSE(m.kept(6, 4));
  // Early blocks are fully causal (everything is sink-or-local).
  EXPECT_TRUE(m.kept(0, 0));
  EXPECT_TRUE(m.kept(1, 0));
  EXPECT_TRUE(m.kept(1, 1));
}

TEST(BlockMask, StreamingSparsityGrowsWithLength) {
  const double s_short =
      BlockMask::streaming(128, 16, 16, 1, 2).sparsity_vs_causal(128, 16, 16);
  const double s_long =
      BlockMask::streaming(1024, 16, 16, 1, 2).sparsity_vs_causal(1024, 16,
                                                                  16);
  EXPECT_LT(s_short, s_long);
  EXPECT_GT(s_long, 0.8);  // nearly free at long context
}

TEST(BlockMask, FinalizeBuildsSortedRowLists) {
  BlockMask m(3, 5);
  m.set(1, 4, true);
  m.set(1, 0, true);
  m.set(1, 2, true);
  m.finalize();
  const auto row = m.row_blocks(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 0u);
  EXPECT_EQ(row[1], 2u);
  EXPECT_EQ(row[2], 4u);
  EXPECT_TRUE(m.row_blocks(0).empty());
}

TEST(BlockIterator, WalksAllBlocksOnce) {
  BlockMask m(1, 8);
  for (std::size_t kb : {1u, 3u, 6u}) m.set(0, kb, true);
  m.finalize();
  BlockIterator it(m.row_blocks(0));
  EXPECT_EQ(it.remaining(), 3u);
  EXPECT_FALSE(it.done());
  EXPECT_EQ(it.next(), 1u);
  EXPECT_EQ(it.next(), 3u);
  EXPECT_EQ(it.next(), 6u);
  EXPECT_TRUE(it.done());
}

// Theoretical speedup check from §3.1: Fig 4(b) has 10 of 21 causal blocks
// non-empty, giving a 2.1x theoretical speedup.
TEST(BlockMask, TheoreticalSpeedupExample) {
  // 6 q-blocks x 6 k-blocks causal = 21 blocks; keep 10.
  BlockMask m(6, 6);
  std::size_t kept = 0;
  for (std::size_t qb = 0; qb < 6 && kept < 10; ++qb) {
    for (std::size_t kb = 0; kb <= qb && kept < 10; ++kb) {
      m.set(qb, kb, true);
      ++kept;
    }
  }
  const double r = m.sparsity_vs_causal(6 * 16, 16, 16);
  EXPECT_NEAR(1.0 / (1.0 - r), 2.1, 0.01);
}

class MixedTileSizes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(MixedTileSizes, CausalDiagonalConsistent) {
  const auto [tq, tk] = GetParam();
  const std::size_t n = 200;
  BlockMask m = BlockMask::causal(n, tq, tk);
  m.finalize();
  // For every q block, the last kept k block must contain the q block's
  // last row, and no kept block may start beyond it.
  for (std::size_t qb = 0; qb < m.q_blocks(); ++qb) {
    const std::size_t last_row = std::min((qb + 1) * tq, n) - 1;
    const auto row = m.row_blocks(qb);
    ASSERT_FALSE(row.empty());
    EXPECT_EQ(row.back(), last_row / tk);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TileCombos, MixedTileSizes,
    ::testing::Values(std::make_tuple(16, 16), std::make_tuple(32, 16),
                      std::make_tuple(16, 32), std::make_tuple(64, 16),
                      std::make_tuple(8, 64)));

}  // namespace
}  // namespace lserve::attn
