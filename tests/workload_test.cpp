// Tests for the planted-structure workload generators (src/model/workload).
#include <gtest/gtest.h>

#include <cmath>

#include "model/workload.hpp"
#include "numeric/math.hpp"

namespace lserve::model {
namespace {

TEST(SmoothStream, ShapesAndDeterminism) {
  StreamConfig cfg;
  cfg.n_tokens = 128;
  cfg.head_dim = 16;
  cfg.seed = 9;
  const TokenStream a = smooth_stream(cfg);
  const TokenStream b = smooth_stream(cfg);
  EXPECT_EQ(a.keys.rows(), 128u);
  EXPECT_EQ(a.keys.cols(), 16u);
  for (std::size_t i = 0; i < a.keys.size(); ++i) {
    EXPECT_FLOAT_EQ(a.keys.data()[i], b.keys.data()[i]);
  }
}

TEST(SmoothStream, AdjacentKeysMoreSimilarThanDistant) {
  StreamConfig cfg;
  cfg.n_tokens = 2048;
  cfg.head_dim = 32;
  cfg.locality = 0.95f;
  cfg.sink_tokens = 0;
  const TokenStream s = smooth_stream(cfg);
  double near = 0.0, far = 0.0;
  int count = 0;
  for (std::size_t t = 100; t < 2000; t += 50) {
    near += num::cosine_similarity(s.keys.row(t), s.keys.row(t + 1), 32);
    far += num::cosine_similarity(s.keys.row(t), s.keys.row(t + 40), 32);
    ++count;
  }
  EXPECT_GT(near / count, far / count + 0.2);
}

TEST(SmoothStream, SinkKeysHaveBoostedNorm) {
  StreamConfig cfg;
  cfg.n_tokens = 64;
  cfg.head_dim = 16;
  cfg.sink_tokens = 4;
  cfg.sink_boost = 3.0f;
  const TokenStream s = smooth_stream(cfg);
  double sink_norm = 0.0, body_norm = 0.0;
  for (std::size_t t = 0; t < 4; ++t)
    sink_norm += num::l2_norm(s.keys.row(t), 16);
  for (std::size_t t = 20; t < 60; ++t)
    body_norm += num::l2_norm(s.keys.row(t), 16);
  EXPECT_GT(sink_norm / 4.0, 1.5 * body_norm / 40.0);
}

TEST(Needle, PlantedKeyAlignsWithDirection) {
  StreamConfig cfg;
  cfg.n_tokens = 256;
  cfg.head_dim = 16;
  TokenStream s = smooth_stream(cfg);
  const Needle needle = plant_needle(s, 100, 4.0f, 3);
  EXPECT_EQ(needle.pos, 100u);
  EXPECT_NEAR(num::cosine_similarity(s.keys.row(100), needle.direction.data(),
                                     16),
              1.0f, 1e-5f);
  EXPECT_NEAR(num::l2_norm(s.keys.row(100), 16), 4.0f, 1e-4f);
  // Value carries the payload verbatim.
  for (std::size_t c = 0; c < 16; ++c) {
    EXPECT_FLOAT_EQ(s.values.at(100, c), needle.payload[c]);
  }
}

TEST(Needle, ProbeQueryAlignedWithinNoise) {
  StreamConfig cfg;
  cfg.n_tokens = 64;
  cfg.head_dim = 32;
  TokenStream s = smooth_stream(cfg);
  const Needle needle = plant_needle(s, 10, 4.0f, 5);
  const auto exact = probe_query(needle, 4.0f, 0.0f, 6);
  EXPECT_NEAR(
      num::cosine_similarity(exact.data(), needle.direction.data(), 32), 1.0f,
      1e-5f);
  const auto noisy = probe_query(needle, 4.0f, 0.2f, 7);
  EXPECT_GT(num::cosine_similarity(noisy.data(), needle.direction.data(), 32),
            0.8f);
}

TEST(Chain, PayloadsLinkToNextDirection) {
  StreamConfig cfg;
  cfg.n_tokens = 512;
  cfg.head_dim = 16;
  TokenStream s = smooth_stream(cfg);
  const auto chain = plant_chain(s, {50, 200, 400}, 4.0f, 8);
  ASSERT_EQ(chain.size(), 3u);
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    for (std::size_t c = 0; c < 16; ++c) {
      EXPECT_FLOAT_EQ(chain[i].payload[c], chain[i + 1].direction[c]);
      EXPECT_FLOAT_EQ(s.values.at(chain[i].pos, c), chain[i + 1].direction[c]);
    }
  }
}

TEST(Aggregation, SitesShareDirectionWithDistinctPayloads) {
  StreamConfig cfg;
  cfg.n_tokens = 512;
  cfg.head_dim = 16;
  TokenStream s = smooth_stream(cfg);
  const auto plant = plant_aggregation(s, {64, 128, 256}, 4.0f, 9);
  ASSERT_EQ(plant.payloads.size(), 3u);
  for (std::size_t pos : plant.positions) {
    EXPECT_NEAR(num::cosine_similarity(s.keys.row(pos),
                                       plant.direction.data(), 16),
                1.0f, 1e-5f);
  }
  // Payloads should be mutually distinct (independent unit vectors).
  EXPECT_LT(num::cosine_similarity(plant.payloads[0].data(),
                                   plant.payloads[1].data(), 16),
            0.9f);
}

}  // namespace
}  // namespace lserve::model
