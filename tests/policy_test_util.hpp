// Shared fixtures for the attention-policy conformance harness
// (tests/attention_policy_test.cpp) and the policy-flip fuzz suites
// (tests/fuzz_test.cpp).
//
// The gating geometry: the LServe preset scaled to the test substrate
// (tiny model, 8-token pages, 64-token selector budget) plus a CPU-proxy
// GpuSpec whose launch overhead is zero — on the real A100 numbers a
// 2 us launch is worth ~7 MB of bandwidth, which at tiny-model byte
// counts pushes the modeled crossover tens of thousands of tokens out.
// With the proxy spec the crossover lands a hair past the token budget,
// so short conformance workloads can sit entirely below it, entirely
// above it, or cross it mid-sequence.
#ifndef LSERVE_TESTS_POLICY_TEST_UTIL_HPP_
#define LSERVE_TESTS_POLICY_TEST_UTIL_HPP_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "costmodel/gpu_spec.hpp"
#include "serve/scheduler.hpp"

namespace lserve::serve::policy_test {

/// A100 rooflines with the fixed launch cost removed and the page-gap
/// dead time shrunk to test-page scale: the spec whose crossover is
/// meaningful on tiny-model workloads.
inline cost::GpuSpec proxy_spec() {
  cost::GpuSpec spec = cost::a100();
  spec.name = "cpu-proxy";
  spec.launch_overhead_us = 0.0;
  spec.page_gap_bytes = 16.0;
  return spec;
}

/// LServe preset at test geometry (mirrors scheduler_test's sparse_cfg)
/// with a 64-token selector budget and 8-token prefill chunks, so gating,
/// chunked prefill and the prefix cache all exercise inside ~100-token
/// requests.
inline EngineConfig gated_cfg() {
  EngineConfig c = baselines::lserve_config(model::tiny());
  c.dense_pages.page_size = 8;
  c.dense_pages.logical_page_size = 4;
  c.streaming = {/*sink_tokens=*/4, /*local_tokens=*/8};
  c.tiling = {8, 8};
  c.pool_pages = 512;
  c.selector.token_budget = 64;
  c.prefill_chunk_tokens = 8;  // <= streaming.local_tokens (exactness).
  return c;
}

/// The gate under test: cost-model crossover of gated_cfg() on the proxy
/// spec at decode batch 1.
inline std::shared_ptr<const CostModelGatedPolicy> gated_policy() {
  return make_cost_model_gated_policy(proxy_spec(), gated_cfg(),
                                      /*batch=*/1);
}

/// Deterministic prompt shared with scheduler_test: prompts of different
/// lengths are prefixes of one another, which is exactly what makes the
/// prefix-cache-on scenarios hit.
inline Request make_request(std::size_t prompt_len, std::size_t new_tokens) {
  Request req;
  req.prompt.resize(prompt_len);
  for (std::size_t i = 0; i < prompt_len; ++i) {
    req.prompt[i] = static_cast<std::int32_t>((i * 13 + 5) % 251);
  }
  req.max_new_tokens = new_tokens;
  return req;
}

/// (prompt_len, max_new_tokens) pairs for one drain.
using Workload = std::vector<std::pair<std::size_t, std::size_t>>;

/// Every context length the below/above workloads decode at stays on one
/// side of the crossover (asserted by the harness before relying on it).
inline Workload below_crossover_workload() {
  return {{24, 8}, {12, 6}, {18, 4}, {8, 10}};
}
inline Workload above_crossover_workload() {
  return {{96, 8}, {104, 6}, {112, 4}};
}

struct DrainOutcome {
  std::vector<RequestResult> results;
  EngineStats stats;
  SchedulerStats sched_stats;
};

/// Submits `load` against a fresh engine + scheduler carrying `policy`
/// and drains. `page_budget` > 0 turns on admission control/preemption;
/// `prefix_cache` shares KV across the (prefix-overlapping) prompts.
inline DrainOutcome run_drain(std::shared_ptr<const AttentionPolicy> policy,
                              std::size_t decode_threads,
                              const Workload& load,
                              std::size_t page_budget = 0,
                              bool prefix_cache = false) {
  EngineConfig ec = gated_cfg();
  ec.enable_prefix_cache = prefix_cache;
  if (prefix_cache) ec.memory.prefix_cache_pages = 256;
  Engine engine(ec);
  SchedulerConfig sc;
  sc.max_batch = 4;
  sc.decode_threads = decode_threads;
  sc.memory.page_budget = page_budget;
  sc.policy = std::move(policy);
  Scheduler sched(engine, sc);
  for (const auto& [prompt_len, new_tokens] : load) {
    sched.submit(make_request(prompt_len, new_tokens));
  }
  DrainOutcome out;
  out.results = sched.drain();
  out.stats = engine.stats();
  out.sched_stats = sched.scheduler_stats();
  return out;
}

}  // namespace lserve::serve::policy_test

#endif  // LSERVE_TESTS_POLICY_TEST_UTIL_HPP_
