// Tests for the LSERVE_AUDIT page-ownership auditor (kv/page_auditor).
//
// This suite is built in every configuration:
//   - LSERVE_AUDIT=ON  → death tests for double-free / foreign free, leak
//     attribution report contents, and the scheduler-drain clean path;
//   - LSERVE_AUDIT=OFF → static proof that the auditor costs nothing: the
//     stand-in types are empty and PageAllocator's [[no_unique_address]]
//     auditor member cannot change its layout.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <type_traits>

#include "baselines/baseline_engines.hpp"
#include "kv/page_allocator.hpp"
#include "kv/page_auditor.hpp"
#include "serve/scheduler.hpp"

namespace lserve::kv {
namespace {

// Zero-overhead-when-off proof: with auditing compiled out the stand-ins
// are empty classes, so the [[no_unique_address]] member in PageAllocator
// occupies no storage and the hot paths inline to nothing.
static_assert(kAuditEnabled == (LSERVE_AUDIT_ENABLED == 1));
#if !LSERVE_AUDIT_ENABLED
static_assert(!kAuditEnabled);
static_assert(std::is_empty_v<PageAuditor>,
              "audit-off PageAuditor must be an empty type");
#endif

PageConfig page_cfg() {
  PageConfig cfg;
  cfg.page_size = 8;
  cfg.logical_page_size = 8;
  return cfg;
}

TEST(PageAuditor, UnscopedAllocFreeIsClean) {
  PageAllocator alloc(page_cfg(), 16);
  const PageId a = alloc.allocate();
  const PageId b = alloc.allocate();
  alloc.release(b);
  alloc.release(a);
  EXPECT_EQ(alloc.pages_in_use(), 0u);
  EXPECT_EQ(alloc.audit_report(), "");
}

#if LSERVE_AUDIT_ENABLED

TEST(PageAuditor, ScopeTracksOwnerAndSiteAndNests) {
  EXPECT_EQ(PageAuditScope::current_owner(), kAuditNoOwner);
  {
    const PageAuditScope outer(7, "outer");
    EXPECT_EQ(PageAuditScope::current_owner(), 7u);
    EXPECT_STREQ(PageAuditScope::current_site(), "outer");
    {
      const PageAuditScope inner(9, "inner");
      EXPECT_EQ(PageAuditScope::current_owner(), 9u);
      EXPECT_STREQ(PageAuditScope::current_site(), "inner");
    }
    EXPECT_EQ(PageAuditScope::current_owner(), 7u);
    EXPECT_STREQ(PageAuditScope::current_site(), "outer");
  }
  EXPECT_EQ(PageAuditScope::current_owner(), kAuditNoOwner);
}

TEST(PageAuditorDeathTest, DoubleFreeAborts) {
  PageAllocator alloc(page_cfg(), 16);
  PageId id{};
  {
    const PageAuditScope scope(3, "DoubleFreeTest");
    id = alloc.allocate();
    alloc.release(id);
  }
  // The allocator's own LIFO free list would hand `id` right back out, so
  // the second free goes straight to the auditor's records: still dead,
  // with full three-way attribution.
  const PageAuditScope scope(3, "DoubleFreeTest");
  EXPECT_DEATH(alloc.release(id), "double free");
}

TEST(PageAuditorDeathTest, ForeignFreeAborts) {
  PageAllocator alloc(page_cfg(), 16);
  PageId id{};
  {
    const PageAuditScope scope(1, "ForeignFreeTest::alloc");
    id = alloc.allocate();
  }
  const PageAuditScope scope(2, "ForeignFreeTest::free");
  EXPECT_DEATH(alloc.release(id), "foreign free \\(owner mismatch\\)");
}

TEST(PageAuditorDeathTest, NeverAllocatedFreeAborts) {
  PageAllocator alloc(page_cfg(), 16);
  EXPECT_DEATH(alloc.release(PageId{12345}), "never-allocated");
}

TEST(PageAuditorDeathTest, FreeWhilePinnedAborts) {
  PageAllocator alloc(page_cfg(), 16);
  const PageId id = alloc.allocate();
  const PagePin pin = alloc.pin(id);
  EXPECT_DEATH(alloc.release(id), "freed while pinned");
  // EXPECT_DEATH forks, so this process still holds the pin and the page.
}

TEST(PageAuditorDeathTest, PinOfDeadPageAborts) {
  PageAllocator alloc(page_cfg(), 16);
  const PageId id = alloc.allocate();
  alloc.release(id);
  EXPECT_DEATH({ const PagePin pin = alloc.pin(id); }, "pin of dead page");
}

TEST(PageAuditor, PinTrackingCountsAndAttributes) {
  PageAllocator alloc(page_cfg(), 16);
  const PageId id = alloc.allocate();
  EXPECT_EQ(alloc.audit_pinned_pages(), 0u);
  {
    const PageAuditScope scope(3, "PinTest::reader");
    const PagePin a = alloc.pin(id);
    const PagePin b = alloc.pin(id);  // two pins, one page.
    EXPECT_EQ(alloc.audit_pinned_pages(), 1u);
    const std::string report = alloc.audit_report();
    EXPECT_NE(report.find("2 pin(s)"), std::string::npos) << report;
    EXPECT_NE(report.find("PinTest::reader"), std::string::npos) << report;
  }
  EXPECT_EQ(alloc.audit_pinned_pages(), 0u);  // RAII unpinned both.
  alloc.release(id);
}

TEST(PageAuditor, LeakReportAttributesOwnerAndSite) {
  PageAllocator alloc(page_cfg(), 16);
  PageId leaked{};
  {
    const PageAuditScope scope(42, "LeakTest::site");
    leaked = alloc.allocate();
  }
  const std::string report = alloc.audit_report();
  EXPECT_NE(report.find("owner seq 42"), std::string::npos) << report;
  EXPECT_NE(report.find("LeakTest::site"), std::string::npos) << report;
  EXPECT_NE(report.find("page " + std::to_string(leaked)), std::string::npos)
      << report;

  // Freeing the page clears the report.
  {
    const PageAuditScope scope(42, "LeakTest::cleanup");
    alloc.release(leaked);
  }
  EXPECT_EQ(alloc.audit_report(), "");
}

TEST(PageAuditor, FreeOnAnotherThreadWithSameOwnerIsLegal) {
  // Pages migrate threads legally (pool-worker alloc, scheduler-thread
  // free); ownership is per sequence, not per thread.
  PageAllocator alloc(page_cfg(), 16);
  PageId id{};
  {
    const PageAuditScope scope(5, "CrossThread::alloc");
    id = alloc.allocate();
  }
  std::thread other([&] {
    const PageAuditScope scope(5, "CrossThread::free");
    alloc.release(id);
  });
  other.join();
  EXPECT_EQ(alloc.audit_report(), "");
}

#endif  // LSERVE_AUDIT_ENABLED

// The end-to-end clean path must hold in both configurations: a full
// submit → run → drain cycle leaves no live pages, so the scheduler's
// audit-build quiescence check (and this assertion) pass.
TEST(PageAuditor, SchedulerDrainLeavesPoolsClean) {
  serve::EngineConfig cfg = baselines::vllm_config(model::tiny());
  cfg.dense_pages.page_size = 8;
  cfg.dense_pages.logical_page_size = 8;
  cfg.tiling = {8, 8};
  cfg.pool_pages = 512;
  serve::Engine engine(cfg);
  serve::Scheduler sched(engine, 2);
  for (int i = 0; i < 3; ++i) {
    serve::Request req;
    req.prompt.assign(16, 1);
    req.max_new_tokens = 4;
    sched.submit(req);
  }
  const auto results = sched.drain();
  EXPECT_EQ(results.size(), 3u);
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
  EXPECT_EQ(engine.audit_report(), "");
}

}  // namespace
}  // namespace lserve::kv
