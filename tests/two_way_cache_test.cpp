// Tests for the two-way (dense / streaming) paging system
// (src/kv/two_way_cache).
#include <gtest/gtest.h>

#include <vector>

#include "kv/two_way_cache.hpp"
#include "numeric/rng.hpp"

namespace lserve::kv {
namespace {

PageConfig dense_cfg() {
  PageConfig c;
  c.page_size = 8;
  c.logical_page_size = 4;
  c.head_dim = 8;
  return c;
}

PageConfig stream_cfg() {
  PageConfig c = dense_cfg();
  c.track_kstats = false;
  c.logical_page_size = c.page_size;
  return c;
}

StreamingConfig lambda_cfg() {
  return {/*sink_tokens=*/8, /*local_tokens=*/16};
}

void append_n(StreamingHeadCache& head, PageAllocator& alloc,
              const StreamingConfig& cfg, std::size_t n) {
  std::vector<float> k(8, 1.0f), v(8, 2.0f);
  for (std::size_t t = 0; t < n; ++t) {
    head.append(alloc, cfg, k.data(), v.data());
  }
}

TEST(StreamingHeadCache, BoundedMemoryRegardlessOfLength) {
  PageAllocator alloc(stream_cfg(), 16);
  StreamingHeadCache head;
  const StreamingConfig cfg = lambda_cfg();
  append_n(head, alloc, cfg, 512);
  // 1 sink page (8 tokens) + local ring covering >=16 trailing tokens:
  // at most 3 local pages for page_size 8.
  EXPECT_LE(head.pages_held(), 4u);
  EXPECT_EQ(head.tokens(), 512u);
  EXPECT_EQ(alloc.pages_in_use(), head.pages_held());
}

class StreamingLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamingLengthSweep, PagesHeldIsConstantInLength) {
  PageAllocator alloc(stream_cfg(), 16);
  StreamingHeadCache head;
  const StreamingConfig cfg = lambda_cfg();
  append_n(head, alloc, cfg, GetParam());
  EXPECT_LE(head.pages_held(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Lengths, StreamingLengthSweep,
                         ::testing::Values(32, 64, 128, 1024, 4096));

TEST(StreamingHeadCache, IndexTableContainsSinkAndLocalBlocks) {
  PageAllocator alloc(stream_cfg(), 16);
  StreamingHeadCache head;
  const StreamingConfig cfg = lambda_cfg();
  append_n(head, alloc, cfg, 100);  // blocks 0..12 (block 12 partial)
  const SelectedPageTable table = head.index_table();
  ASSERT_GE(table.size(), 2u);
  EXPECT_EQ(table.front().block, 0u);  // sink block
  // Local blocks cover the last 16 tokens: blocks 10, 11, 12 at least 11,12.
  EXPECT_EQ(table.back().block, 12u);
  // Table must be sorted with disjoint blocks.
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_LT(table[i - 1].block, table[i].block);
  }
}

TEST(StreamingHeadCache, LocalWindowContentsAreRetained) {
  PageAllocator alloc(stream_cfg(), 16);
  StreamingHeadCache head;
  const StreamingConfig cfg = lambda_cfg();
  // Append tokens with identifiable values; verify the retained local pages
  // hold the most recent ones.
  for (std::size_t t = 0; t < 64; ++t) {
    std::vector<float> k(8, static_cast<float>(t));
    std::vector<float> v(8, static_cast<float>(t));
    head.append(alloc, cfg, k.data(), v.data());
  }
  const SelectedPageTable table = head.index_table();
  const PagePin last_pin = alloc.pin(table.back().page);
  const Page& last_page = last_pin.page();
  std::vector<float> out(8);
  last_page.load_value(last_page.size() - 1, out.data());
  EXPECT_FLOAT_EQ(out[0], 63.0f);
}

TEST(StreamingHeadCache, ReleaseFreesEverything) {
  PageAllocator alloc(stream_cfg(), 16);
  StreamingHeadCache head;
  append_n(head, alloc, lambda_cfg(), 200);
  EXPECT_GT(alloc.pages_in_use(), 0u);
  head.release(alloc);
  EXPECT_EQ(alloc.pages_in_use(), 0u);
  EXPECT_EQ(head.tokens(), 0u);
}

TEST(TwoWayKvCache, RoutesAppendsByHeadKind) {
  PageAllocator dense_alloc(dense_cfg(), 32);
  PageAllocator stream_alloc(stream_cfg(), 32);
  // 1 layer, 2 kv heads: head 0 dense, head 1 streaming.
  TwoWayKvCache cache(1, 2, {HeadKind::kDense, HeadKind::kStreaming},
                      lambda_cfg());
  std::vector<float> k(8, 1.0f), v(8, 2.0f);
  for (std::size_t t = 0; t < 64; ++t) {
    cache.append(dense_alloc, stream_alloc, 0, 0, k.data(), v.data());
    cache.append(dense_alloc, stream_alloc, 0, 1, k.data(), v.data());
  }
  EXPECT_EQ(cache.tokens(), 64u);
  EXPECT_EQ(cache.dense_head(0, 0).tokens(), 64u);
  EXPECT_EQ(cache.dense_head(0, 0).num_pages(), 8u);
  EXPECT_EQ(cache.streaming_head(0, 1).tokens(), 64u);
  EXPECT_LE(cache.streaming_head(0, 1).pages_held(), 4u);
  // Memory saving: the streaming pool holds far fewer pages.
  EXPECT_LT(stream_alloc.pages_in_use(), dense_alloc.pages_in_use());
}

TEST(TwoWayKvCache, ReleaseResetsBothPools) {
  PageAllocator dense_alloc(dense_cfg(), 32);
  PageAllocator stream_alloc(stream_cfg(), 32);
  TwoWayKvCache cache(2, 2,
                      {HeadKind::kDense, HeadKind::kStreaming,
                       HeadKind::kStreaming, HeadKind::kDense},
                      lambda_cfg());
  std::vector<float> k(8, 1.0f), v(8, 2.0f);
  for (std::size_t t = 0; t < 40; ++t) {
    for (std::size_t layer = 0; layer < 2; ++layer) {
      for (std::size_t h = 0; h < 2; ++h) {
        cache.append(dense_alloc, stream_alloc, layer, h, k.data(), v.data());
      }
    }
  }
  cache.release(dense_alloc, stream_alloc);
  EXPECT_EQ(dense_alloc.pages_in_use(), 0u);
  EXPECT_EQ(stream_alloc.pages_in_use(), 0u);
  EXPECT_EQ(cache.tokens(), 0u);
}

TEST(TwoWayKvCache, KindAccessors) {
  TwoWayKvCache cache(1, 2, {HeadKind::kDense, HeadKind::kStreaming},
                      lambda_cfg());
  EXPECT_EQ(cache.kind(0, 0), HeadKind::kDense);
  EXPECT_EQ(cache.kind(0, 1), HeadKind::kStreaming);
  EXPECT_EQ(cache.layers(), 1u);
  EXPECT_EQ(cache.kv_heads(), 2u);
}

}  // namespace
}  // namespace lserve::kv
