// Tests for the unified sparse decode kernel (src/attn/decode_attention)
// and the fused per-layer dispatch (src/attn/fused_attention).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "attn/decode_attention.hpp"
#include "attn/dense_attention.hpp"
#include "attn/fused_attention.hpp"
#include "numeric/math.hpp"
#include "numeric/rng.hpp"

namespace lserve::attn {
namespace {

kv::PageConfig cfg(num::KvDtype dtype = num::KvDtype::kFp16) {
  kv::PageConfig c;
  c.page_size = 8;
  c.logical_page_size = 4;
  c.head_dim = 16;
  c.dtype = dtype;
  return c;
}

struct Fixture {
  kv::PageAllocator alloc;
  kv::HeadCache head;
  std::vector<std::vector<float>> keys, values;

  explicit Fixture(std::size_t n, num::KvDtype dtype = num::KvDtype::kFp16,
                   std::uint64_t seed = 5)
      : alloc(cfg(dtype), n / 8 + 2) {
    num::Rng rng(seed);
    for (std::size_t t = 0; t < n; ++t) {
      std::vector<float> k(16), v(16);
      rng.fill_gaussian(k, 1.0f);
      rng.fill_gaussian(v, 1.0f);
      head.append(alloc, k.data(), v.data());
      keys.push_back(k);
      values.push_back(v);
    }
  }

  /// Naive softmax attention over an arbitrary token subset.
  std::vector<float> reference(const std::vector<float>& q,
                               const std::vector<std::size_t>& tokens,
                               float scale) const {
    std::vector<float> scores;
    for (std::size_t t : tokens) {
      scores.push_back(scale * num::dot(q.data(), keys[t].data(), 16));
    }
    num::softmax_inplace(scores.data(), scores.size());
    std::vector<float> out(16, 0.0f);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      num::axpy(scores[i], values[tokens[i]].data(), out.data(), 16);
    }
    return out;
  }
};

TEST(SparseDecode, FullTableMatchesDensePagedDecode) {
  Fixture fix(45);
  num::Rng rng(9);
  std::vector<float> q(16);
  rng.fill_gaussian(q, 1.0f);
  const float scale = 0.25f;

  std::vector<float> dense(16), sparse(16);
  float lse_dense = 0.0f, lse_sparse = 0.0f;
  dense_paged_decode(fix.alloc, fix.head, q.data(), 16, scale, dense.data(),
                     &lse_dense);
  const auto table = kv::full_page_table(fix.head.view(fix.alloc));
  sparse_paged_decode(fix.alloc, table, fix.head.tokens(), q.data(), 16,
                      scale, sparse.data(), &lse_sparse);
  for (std::size_t c = 0; c < 16; ++c) {
    EXPECT_NEAR(dense[c], sparse[c], 1e-5f);
  }
  EXPECT_NEAR(lse_dense, lse_sparse, 1e-5f);
}

TEST(SparseDecode, FullTableMatchesNaiveReference) {
  Fixture fix(37);
  num::Rng rng(10);
  std::vector<float> q(16);
  rng.fill_gaussian(q, 1.0f);
  const float scale = 0.25f;
  std::vector<std::size_t> all(37);
  for (std::size_t t = 0; t < 37; ++t) all[t] = t;
  const auto ref = fix.reference(q, all, scale);

  std::vector<float> out(16);
  sparse_paged_decode(fix.alloc, kv::full_page_table(fix.head.view(fix.alloc)),
                      37, q.data(), 16, scale, out.data());
  for (std::size_t c = 0; c < 16; ++c) EXPECT_NEAR(out[c], ref[c], 1e-4f);
}

TEST(SparseDecode, PrunedTableAttendsOnlySelectedPages) {
  Fixture fix(32);  // 4 full pages
  num::Rng rng(11);
  std::vector<float> q(16);
  rng.fill_gaussian(q, 1.0f);
  const float scale = 0.25f;

  const auto view = fix.head.view(fix.alloc);
  const kv::SelectedPageTable table{{view.pages[0], 0}, {view.pages[2], 2}};
  std::vector<std::size_t> tokens;
  for (std::size_t t = 0; t < 8; ++t) tokens.push_back(t);
  for (std::size_t t = 16; t < 24; ++t) tokens.push_back(t);
  const auto ref = fix.reference(q, tokens, scale);

  std::vector<float> out(16);
  DecodeWorkStats stats;
  sparse_paged_decode(fix.alloc, table, 32, q.data(), 16, scale, out.data(),
                      nullptr, &stats);
  for (std::size_t c = 0; c < 16; ++c) EXPECT_NEAR(out[c], ref[c], 1e-4f);
  EXPECT_EQ(stats.pages_visited, 2u);
  EXPECT_EQ(stats.tokens_visited, 16u);
}

TEST(SparseDecode, PartialTailBlockHandled) {
  Fixture fix(19);  // pages of 8: 8 + 8 + 3
  num::Rng rng(12);
  std::vector<float> q(16);
  rng.fill_gaussian(q, 1.0f);
  const auto view = fix.head.view(fix.alloc);
  const kv::SelectedPageTable table{{view.pages[2], 2}};
  std::vector<float> out(16);
  DecodeWorkStats stats;
  sparse_paged_decode(fix.alloc, table, 19, q.data(), 16, 0.25f, out.data(),
                      nullptr, &stats);
  EXPECT_EQ(stats.tokens_visited, 3u);
  const auto ref = fix.reference(q, {16, 17, 18}, 0.25f);
  for (std::size_t c = 0; c < 16; ++c) EXPECT_NEAR(out[c], ref[c], 1e-4f);
}

TEST(SparseDecode, EmptyTableYieldsZeros) {
  Fixture fix(8);
  std::vector<float> q(16, 1.0f), out(16, 3.0f);
  float lse = 0.0f;
  sparse_paged_decode(fix.alloc, {}, 8, q.data(), 16, 0.25f, out.data(),
                      &lse);
  for (float x : out) EXPECT_EQ(x, 0.0f);
  EXPECT_TRUE(std::isinf(lse));
}

TEST(SparseDecode, QuantizedKvWithinErrorBound) {
  Fixture fp(64, num::KvDtype::kFp16, 21);
  Fixture i8(64, num::KvDtype::kInt8, 21);  // same seed -> same data
  num::Rng rng(13);
  std::vector<float> q(16);
  rng.fill_gaussian(q, 1.0f);
  std::vector<float> a(16), b(16);
  const auto ta = kv::full_page_table(fp.head.view(fp.alloc));
  const auto tb = kv::full_page_table(i8.head.view(i8.alloc));
  sparse_paged_decode(fp.alloc, ta, 64, q.data(), 16, 0.25f, a.data());
  sparse_paged_decode(i8.alloc, tb, 64, q.data(), 16, 0.25f, b.data());
  for (std::size_t c = 0; c < 16; ++c) EXPECT_NEAR(a[c], b[c], 0.05f);
}

// Fused decode: every head flavour goes through one kernel; a config with
// no sparsity must equal per-head dense decode exactly.
TEST(FusedDecode, AllDenseMatchesPerHeadDense) {
  const std::size_t layers = 1, kv_heads = 2, group = 2, d = 16;
  kv::PageAllocator dense_alloc(cfg(), 64);
  kv::PageAllocator stream_alloc(cfg(), 64);
  kv::TwoWayKvCache cache(layers, kv_heads,
                          {kv::HeadKind::kDense, kv::HeadKind::kDense},
                          {8, 16});
  num::Rng rng(31);
  for (std::size_t t = 0; t < 40; ++t) {
    for (std::size_t h = 0; h < kv_heads; ++h) {
      std::vector<float> k(d), v(d);
      rng.fill_gaussian(k, 1.0f);
      rng.fill_gaussian(v, 1.0f);
      cache.append(dense_alloc, stream_alloc, 0, h, k.data(), v.data());
    }
  }
  num::Tensor q(kv_heads * group, d);
  for (std::size_t i = 0; i < q.size(); ++i) q.data()[i] = rng.gaussian();

  FusedDecodeConfig fc;
  fc.dynamic_dense = false;
  num::Tensor out(kv_heads * group, d);
  fused_sparse_decode(dense_alloc, stream_alloc, cache, 0, q.view(), group,
                      nullptr, 0, fc, out.view());

  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  for (std::size_t h = 0; h < kv_heads * group; ++h) {
    std::vector<float> ref(d);
    dense_paged_decode(dense_alloc, cache.dense_head(0, h / group), q.row(h),
                       d, scale, ref.data());
    for (std::size_t c = 0; c < d; ++c) {
      EXPECT_NEAR(out.at(h, c), ref[c], 1e-5f);
    }
  }
}

TEST(FusedDecode, StreamingHeadUsesSinkLocalTable) {
  const std::size_t d = 16;
  kv::PageAllocator dense_alloc(cfg(), 64);
  kv::PageAllocator stream_alloc(cfg(), 64);
  kv::TwoWayKvCache cache(1, 1, {kv::HeadKind::kStreaming}, {8, 16});
  num::Rng rng(33);
  std::vector<std::vector<float>> keys, values;
  for (std::size_t t = 0; t < 64; ++t) {
    std::vector<float> k(d), v(d);
    rng.fill_gaussian(k, 1.0f);
    rng.fill_gaussian(v, 1.0f);
    cache.append(dense_alloc, stream_alloc, 0, 0, k.data(), v.data());
    keys.push_back(k);
    values.push_back(v);
  }
  num::Tensor q(1, d);
  for (std::size_t i = 0; i < q.size(); ++i) q.data()[i] = rng.gaussian();
  FusedDecodeConfig fc;
  num::Tensor out(1, d);
  DecodeWorkStats stats;
  fused_sparse_decode(dense_alloc, stream_alloc, cache, 0, q.view(), 1,
                      nullptr, 0, fc, out.view(), &stats);
  // Sink page (block 0: tokens 0..7) + local ring (>= 16 trailing tokens).
  EXPECT_LE(stats.tokens_visited, 8u + 24u);
  EXPECT_GE(stats.tokens_visited, 8u + 16u);

  // Reference over exactly the retained tokens.
  const auto table = cache.streaming_head(0, 0).index_table();
  std::vector<std::size_t> tokens;
  for (const auto& e : table) {
    const std::size_t begin = e.block * 8;
    const std::size_t count = std::min<std::size_t>(8, 64 - begin);
    for (std::size_t s = 0; s < count; ++s) tokens.push_back(begin + s);
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  std::vector<float> scores;
  for (std::size_t t : tokens) {
    scores.push_back(scale * num::dot(q.row(0), keys[t].data(), d));
  }
  num::softmax_inplace(scores.data(), scores.size());
  std::vector<float> ref(d, 0.0f);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    num::axpy(scores[i], values[tokens[i]].data(), ref.data(), d);
  }
  for (std::size_t c = 0; c < d; ++c) {
    EXPECT_NEAR(out.at(0, c), ref[c], 1e-4f);
  }
}

TEST(FusedDecode, DynamicSelectionBoundsVisitedTokens) {
  const std::size_t d = 16;
  kv::PageAllocator dense_alloc(cfg(), 128);
  kv::PageAllocator stream_alloc(cfg(), 16);
  kv::TwoWayKvCache cache(1, 1, {kv::HeadKind::kDense}, {8, 16});
  num::Rng rng(35);
  for (std::size_t t = 0; t < 256; ++t) {
    std::vector<float> k(d), v(d);
    rng.fill_gaussian(k, 1.0f);
    rng.fill_gaussian(v, 1.0f);
    cache.append(dense_alloc, stream_alloc, 0, 0, k.data(), v.data());
  }
  num::Tensor q(1, d);
  for (std::size_t i = 0; i < q.size(); ++i) q.data()[i] = rng.gaussian();
  FusedDecodeConfig fc;
  fc.dynamic_dense = true;
  fc.selector.token_budget = 32;  // 4 pages of 8
  num::Tensor out(1, d);
  DecodeWorkStats stats;
  fused_sparse_decode(dense_alloc, stream_alloc, cache, 0, q.view(), 1,
                      nullptr, 0, fc, out.view(), &stats);
  EXPECT_LE(stats.tokens_visited, 32u);
  EXPECT_EQ(stats.pages_visited, 4u);
}

}  // namespace
}  // namespace lserve::attn
