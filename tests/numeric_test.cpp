// Unit & property tests for the numeric substrate (src/numeric).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "numeric/math.hpp"
#include "numeric/rng.hpp"
#include "numeric/tensor.hpp"

namespace lserve::num {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitSeedDecorrelatesStreams) {
  EXPECT_NE(split_seed(7, 0), split_seed(7, 1));
  EXPECT_NE(split_seed(7, 0), split_seed(8, 0));
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(x, -2.0f);
    EXPECT_LT(x, 3.0f);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(9);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NextBelowUnbiasedSupport) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.next_below(7)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Rng, UnitVectorHasUnitNorm) {
  Rng rng(13);
  for (std::size_t d : {2u, 16u, 128u}) {
    const auto v = rng.unit_vector(d);
    EXPECT_NEAR(l2_norm(v.data(), d), 1.0f, 1e-5f);
  }
}

TEST(Rng, PermutationIsBijective) {
  Rng rng(17);
  const auto p = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (auto i : p) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Math, DotMatchesNaive) {
  Rng rng(21);
  for (std::size_t n : {1u, 3u, 4u, 7u, 64u, 129u}) {
    std::vector<float> a(n), b(n);
    rng.fill_gaussian(a, 1.0f);
    rng.fill_gaussian(b, 1.0f);
    double ref = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      ref += static_cast<double>(a[i]) * b[i];
    EXPECT_NEAR(dot(a.data(), b.data(), n), ref, 1e-3);
  }
}

TEST(Math, SoftmaxSumsToOneAndOrders) {
  std::vector<float> row{1.0f, 3.0f, 2.0f, -1.0f};
  softmax_inplace(row.data(), row.size());
  float sum = std::accumulate(row.begin(), row.end(), 0.0f);
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  EXPECT_GT(row[1], row[2]);
  EXPECT_GT(row[2], row[0]);
  EXPECT_GT(row[0], row[3]);
}

TEST(Math, SoftmaxStableForLargeInputs) {
  std::vector<float> row{1000.0f, 1001.0f, 999.0f};
  softmax_inplace(row.data(), row.size());
  EXPECT_TRUE(std::isfinite(row[0]));
  EXPECT_NEAR(row[0] + row[1] + row[2], 1.0f, 1e-5f);
}

TEST(Math, MatmulMatchesNaive) {
  Rng rng(23);
  Tensor a(5, 7), b(7, 4), c(5, 4);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.gaussian();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.gaussian();
  matmul(a.view(), b.view(), c.view());
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      double ref = 0.0;
      for (std::size_t k = 0; k < 7; ++k) {
        ref += static_cast<double>(a.at(i, k)) * b.at(k, j);
      }
      EXPECT_NEAR(c.at(i, j), ref, 1e-4);
    }
  }
}

TEST(Math, MatmulAbtMatchesNaive) {
  Rng rng(29);
  Tensor a(3, 6), b(5, 6), c(3, 5);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.gaussian();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.gaussian();
  matmul_abt(a.view(), b.view(), c.view());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      double ref = 0.0;
      for (std::size_t k = 0; k < 6; ++k) {
        ref += static_cast<double>(a.at(i, k)) * b.at(j, k);
      }
      EXPECT_NEAR(c.at(i, j), ref, 1e-4);
    }
  }
}

TEST(Math, TopKReturnsSortedIndicesOfLargest) {
  std::vector<float> scores{0.1f, 5.0f, 3.0f, 5.0f, -1.0f, 4.0f};
  const auto idx = top_k_indices(scores, 3);
  ASSERT_EQ(idx.size(), 3u);
  // Top-3 values are 5.0 (idx 1), 5.0 (idx 3), 4.0 (idx 5); ascending order.
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 3u);
  EXPECT_EQ(idx[2], 5u);
}

TEST(Math, TopKClampsToSize) {
  std::vector<float> scores{1.0f, 2.0f};
  EXPECT_EQ(top_k_indices(scores, 10).size(), 2u);
  EXPECT_TRUE(top_k_indices(scores, 0).empty());
}

class OnlineSoftmaxParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OnlineSoftmaxParam, MatchesBatchSoftmax) {
  const std::size_t n = GetParam();
  const std::size_t d = 8;
  Rng rng(31 + n);
  std::vector<float> scores(n);
  Tensor values(n, d);
  rng.fill_gaussian(scores, 3.0f);
  for (std::size_t i = 0; i < values.size(); ++i)
    values.data()[i] = rng.gaussian();

  OnlineSoftmax acc(d);
  acc.fold(scores.data(), values.data(), n, d);
  std::vector<float> out(d);
  acc.finish(out.data());

  std::vector<float> probs = scores;
  softmax_inplace(probs.data(), n);
  std::vector<float> ref(d, 0.0f);
  for (std::size_t i = 0; i < n; ++i)
    axpy(probs[i], values.row(i), ref.data(), d);

  for (std::size_t c = 0; c < d; ++c) EXPECT_NEAR(out[c], ref[c], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OnlineSoftmaxParam,
                         ::testing::Values(1, 2, 3, 17, 64, 255));

TEST(OnlineSoftmax, FoldOrderInvariance) {
  const std::size_t d = 4;
  Rng rng(37);
  std::vector<float> scores(20);
  Tensor values(20, d);
  rng.fill_gaussian(scores, 5.0f);
  for (std::size_t i = 0; i < values.size(); ++i)
    values.data()[i] = rng.gaussian();

  OnlineSoftmax fwd(d), rev(d);
  for (std::size_t i = 0; i < 20; ++i)
    fwd.fold_one(scores[i], values.row(i));
  for (std::size_t i = 20; i > 0; --i)
    rev.fold_one(scores[i - 1], values.row(i - 1));
  std::vector<float> a(d), b(d);
  fwd.finish(a.data());
  rev.finish(b.data());
  for (std::size_t c = 0; c < d; ++c) EXPECT_NEAR(a[c], b[c], 1e-4f);
  EXPECT_NEAR(fwd.log_sum_exp(), rev.log_sum_exp(), 1e-4f);
}

TEST(OnlineSoftmax, EmptyYieldsZeros) {
  OnlineSoftmax acc(3);
  std::vector<float> out(3, 42.0f);
  acc.finish(out.data());
  for (float x : out) EXPECT_EQ(x, 0.0f);
  EXPECT_TRUE(std::isinf(acc.log_sum_exp()));
}

TEST(OnlineSoftmax, ResetClearsState) {
  OnlineSoftmax acc(2);
  const float v[2] = {1.0f, 2.0f};
  acc.fold_one(0.5f, v);
  acc.reset();
  std::vector<float> out(2, 9.0f);
  acc.finish(out.data());
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.0f);
}

TEST(Tensor, ViewsShareStorage) {
  Tensor t(3, 4);
  t.at(1, 2) = 7.0f;
  MatView v = t.view();
  EXPECT_EQ(v.at(1, 2), 7.0f);
  v.at(1, 2) = 8.0f;
  EXPECT_EQ(t.at(1, 2), 8.0f);
}

TEST(Tensor, ColsSliceSelectsHead) {
  Tensor t(2, 6);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 6; ++c)
      t.at(r, c) = static_cast<float>(10 * r + c);
  const MatView head1 = t.view().cols_slice(3, 3);
  EXPECT_EQ(head1.at(0, 0), 3.0f);
  EXPECT_EQ(head1.at(1, 2), 15.0f);
  EXPECT_EQ(head1.stride, 6u);
}

TEST(Tensor, RowsSliceBounds) {
  Tensor t(5, 2, 1.5f);
  const MatView mid = t.view().rows_slice(1, 3);
  EXPECT_EQ(mid.rows, 3u);
  EXPECT_EQ(mid.at(0, 0), 1.5f);
}

TEST(Math, CosineSimilarityProperties) {
  std::vector<float> a{1.0f, 0.0f};
  std::vector<float> b{0.0f, 1.0f};
  std::vector<float> zero{0.0f, 0.0f};
  EXPECT_NEAR(cosine_similarity(a.data(), a.data(), 2), 1.0f, 1e-6f);
  EXPECT_NEAR(cosine_similarity(a.data(), b.data(), 2), 0.0f, 1e-6f);
  EXPECT_EQ(cosine_similarity(a.data(), zero.data(), 2), 0.0f);
}

}  // namespace
}  // namespace lserve::num
