// Tests for the dynamic (MInference-style) prefill mask
// (src/sparse/prefill_mask).
#include <gtest/gtest.h>

#include <cmath>

#include "attn/dense_attention.hpp"
#include "numeric/rng.hpp"
#include "sparse/prefill_mask.hpp"

namespace lserve::sparse {
namespace {

num::Tensor random_mat(std::size_t n, std::size_t d, std::uint64_t seed) {
  num::Tensor t(n, d);
  num::Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = rng.gaussian();
  return t;
}

TEST(DynamicPrefillMask, AlwaysKeepsSinkAndDiagonal) {
  const std::size_t n = 256, d = 16;
  const auto q = random_mat(n, d, 1);
  const auto k = random_mat(n, d, 2);
  DynamicPrefillConfig cfg;
  cfg.keep_ratio = 0.1;
  cfg.sink_blocks = 1;
  cfg.local_blocks = 1;
  const attn::BlockMask mask =
      build_dynamic_prefill_mask(q.view(), k.view(), {16, 16}, cfg, 0.25f);
  for (std::size_t qb = 0; qb < mask.q_blocks(); ++qb) {
    EXPECT_TRUE(mask.kept(qb, 0)) << "sink missing at q block " << qb;
    EXPECT_TRUE(mask.kept(qb, qb)) << "diagonal missing at q block " << qb;
  }
}

TEST(DynamicPrefillMask, RespectsCausality) {
  const std::size_t n = 200, d = 16;
  const auto q = random_mat(n, d, 3);
  const auto k = random_mat(n, d, 4);
  DynamicPrefillConfig cfg;
  const attn::BlockMask mask =
      build_dynamic_prefill_mask(q.view(), k.view(), {32, 16}, cfg, 0.25f);
  for (std::size_t qb = 0; qb < mask.q_blocks(); ++qb) {
    const std::size_t last_row = std::min((qb + 1) * 32, n) - 1;
    const std::size_t diag = last_row / 16;
    for (std::size_t kb = diag + 1; kb < mask.k_blocks(); ++kb) {
      EXPECT_FALSE(mask.kept(qb, kb));
    }
  }
}

TEST(DynamicPrefillMask, KeepRatioControlsSparsity) {
  const std::size_t n = 512, d = 16;
  const auto q = random_mat(n, d, 5);
  const auto k = random_mat(n, d, 6);
  DynamicPrefillConfig lo;
  lo.keep_ratio = 0.1;
  DynamicPrefillConfig hi;
  hi.keep_ratio = 0.8;
  const double s_lo = build_dynamic_prefill_mask(q.view(), k.view(), {16, 16},
                                                 lo, 0.25f)
                          .sparsity_vs_causal(n, 16, 16);
  const double s_hi = build_dynamic_prefill_mask(q.view(), k.view(), {16, 16},
                                                 hi, 0.25f)
                          .sparsity_vs_causal(n, 16, 16);
  EXPECT_GT(s_lo, s_hi);
  EXPECT_LT(s_hi, 0.25);
}

TEST(DynamicPrefillMask, SelectsHighAttentionBlocks) {
  // Plant a block of keys aligned with all queries: the pooled estimate
  // must rank it in, even far from the diagonal.
  const std::size_t n = 512, d = 16;
  num::Rng rng(7);
  num::Tensor q(n, d), k(n, d);
  const auto dir = rng.unit_vector(d);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t c = 0; c < d; ++c) {
      q.at(t, c) = 3.0f * dir[c] + 0.1f * rng.gaussian();
      k.at(t, c) = 0.5f * rng.gaussian();
    }
  }
  // Hot block: key tiles 5 (tokens 80..95 with TK=16).
  for (std::size_t t = 80; t < 96; ++t) {
    for (std::size_t c = 0; c < d; ++c) k.at(t, c) = 2.0f * dir[c];
  }
  DynamicPrefillConfig cfg;
  cfg.keep_ratio = 0.15;
  const attn::BlockMask mask =
      build_dynamic_prefill_mask(q.view(), k.view(), {16, 16}, cfg, 0.25f);
  // Every late query block should keep key block 5.
  for (std::size_t qb = 10; qb < mask.q_blocks(); ++qb) {
    EXPECT_TRUE(mask.kept(qb, 5)) << "q block " << qb;
  }
}

TEST(DynamicPrefillMask, MaskIsFinalizedAndIterable) {
  const std::size_t n = 128, d = 8;
  const auto q = random_mat(n, d, 8);
  const auto k = random_mat(n, d, 9);
  const attn::BlockMask mask = build_dynamic_prefill_mask(
      q.view(), k.view(), {16, 16}, DynamicPrefillConfig{}, 0.25f);
  // row_blocks asserts finalize() was called; also spot-check contents.
  for (std::size_t qb = 0; qb < mask.q_blocks(); ++qb) {
    const auto row = mask.row_blocks(qb);
    EXPECT_FALSE(row.empty());
    EXPECT_EQ(row.back(), qb);  // diagonal present, sorted last
  }
}

}  // namespace
}  // namespace lserve::sparse
