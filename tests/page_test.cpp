// Tests for physical KV pages and K_stats (src/kv/page, src/kv/kstats).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "kv/kstats.hpp"
#include "kv/page.hpp"
#include "numeric/rng.hpp"

namespace lserve::kv {
namespace {

PageConfig small_config(num::KvDtype dtype = num::KvDtype::kFp16) {
  PageConfig cfg;
  cfg.page_size = 16;
  cfg.logical_page_size = 4;
  cfg.head_dim = 8;
  cfg.dtype = dtype;
  return cfg;
}

TEST(PageConfig, Validity) {
  EXPECT_TRUE(small_config().valid());
  PageConfig bad = small_config();
  bad.logical_page_size = 5;  // does not divide 16
  EXPECT_FALSE(bad.valid());
  bad = small_config();
  bad.page_size = 0;
  EXPECT_FALSE(bad.valid());
  EXPECT_EQ(small_config().logical_pages(), 4u);
}

TEST(Page, AppendLoadRoundTrip) {
  Page page;
  page.init(small_config());
  num::Rng rng(1);
  std::vector<std::vector<float>> keys, vals;
  for (std::size_t t = 0; t < 16; ++t) {
    std::vector<float> k(8), v(8);
    rng.fill_gaussian(k, 1.0f);
    rng.fill_gaussian(v, 1.0f);
    EXPECT_EQ(page.append(k.data(), v.data()), t);
    keys.push_back(k);
    vals.push_back(v);
  }
  EXPECT_TRUE(page.full());
  std::vector<float> out(8);
  for (std::size_t t = 0; t < 16; ++t) {
    page.load_key(t, out.data());
    for (std::size_t c = 0; c < 8; ++c) EXPECT_FLOAT_EQ(out[c], keys[t][c]);
    page.load_value(t, out.data());
    for (std::size_t c = 0; c < 8; ++c) EXPECT_FLOAT_EQ(out[c], vals[t][c]);
  }
}

TEST(Page, ResetClearsCountButKeepsStorage) {
  Page page;
  page.init(small_config());
  std::vector<float> k(8, 1.0f), v(8, 2.0f);
  page.append(k.data(), v.data());
  EXPECT_EQ(page.size(), 1u);
  page.reset();
  EXPECT_TRUE(page.empty());
  EXPECT_EQ(page.append(k.data(), v.data()), 0u);
}

TEST(Page, KStatsTrackChannelMinMaxPerLogicalPage) {
  Page page;
  page.init(small_config());
  // Logical page 0 = slots 0..3. Plant known extremes in channel 2.
  std::vector<float> v(8, 0.0f);
  for (std::size_t t = 0; t < 16; ++t) {
    std::vector<float> k(8, 0.5f);
    k[2] = (t == 1) ? 5.0f : (t == 3) ? -4.0f : 0.5f;
    page.append(k.data(), v.data());
  }
  const KStats& stats = page.kstats();
  EXPECT_TRUE(stats.initialized(0));
  EXPECT_FLOAT_EQ(stats.kmax(0)[2], 5.0f);
  EXPECT_FLOAT_EQ(stats.kmin(0)[2], -4.0f);
  // Logical page 1 (slots 4..7) saw only 0.5 in channel 2.
  EXPECT_FLOAT_EQ(stats.kmax(1)[2], 0.5f);
  EXPECT_FLOAT_EQ(stats.kmin(1)[2], 0.5f);
}

TEST(Page, QuantizedPagesFoldQuantizedKeysIntoStats) {
  // Stats must reflect what the kernel reads back (the quantized keys),
  // so selector scores and attention agree.
  PageConfig cfg = small_config(num::KvDtype::kInt4);
  Page page;
  page.init(cfg);
  num::Rng rng(3);
  std::vector<float> k(8), v(8, 0.0f);
  rng.fill_gaussian(k, 2.0f);
  page.append(k.data(), v.data());
  std::vector<float> back(8);
  page.load_key(0, back.data());
  const KStats& stats = page.kstats();
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_FLOAT_EQ(stats.kmax(0)[c], back[c]);
    EXPECT_FLOAT_EQ(stats.kmin(0)[c], back[c]);
  }
}

TEST(Page, DeviceBytesAccounting) {
  Page fp_page;
  fp_page.init(small_config(num::KvDtype::kFp16));
  Page i4_page;
  i4_page.init(small_config(num::KvDtype::kInt4));
  EXPECT_GT(fp_page.device_bytes(), i4_page.device_bytes());
  PageConfig no_stats = small_config();
  no_stats.track_kstats = false;
  Page plain;
  plain.init(no_stats);
  EXPECT_GT(fp_page.device_bytes(), plain.device_bytes());
}

TEST(KStats, LogicalPageScoreUpperBoundsTrueMax) {
  // Property at the heart of Quest/LServe selection: the min/max score
  // upper-bounds q.k for every key folded into the logical page.
  num::Rng rng(7);
  const std::size_t d = 16;
  KStats stats(1, d);
  std::vector<std::vector<float>> keys;
  for (std::size_t t = 0; t < 4; ++t) {
    std::vector<float> k(d);
    rng.fill_gaussian(k, 1.5f);
    stats.update(t, 4, k.data());
    keys.push_back(k);
  }
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> q(d);
    rng.fill_gaussian(q, 2.0f);
    const float bound =
        logical_page_score(q.data(), stats.kmax(0), stats.kmin(0), d);
    for (const auto& k : keys) {
      float s = 0.0f;
      for (std::size_t c = 0; c < d; ++c) s += q[c] * k[c];
      EXPECT_GE(bound, s - 1e-4f);
    }
  }
}

TEST(KStats, ResetClearsInitialization) {
  KStats stats(2, 4);
  const float k[4] = {1, 2, 3, 4};
  stats.update(0, 4, k);
  EXPECT_TRUE(stats.initialized(0));
  EXPECT_FALSE(stats.initialized(1));
  stats.reset();
  EXPECT_FALSE(stats.initialized(0));
}

// Regression pin for the quant-derived K_stats path (ROADMAP item 5
// sliver): folding min/max straight from the stored codes + per-row quant
// params must equal — bit for bit — the old recompute over a dequantized
// copy of every key row, for every dtype, including an odd head_dim that
// exercises the int4 tail nibble.
TEST(Page, QuantDerivedKStatsMatchesDequantizedRecompute) {
  for (const num::KvDtype dtype :
       {num::KvDtype::kFp16, num::KvDtype::kInt8, num::KvDtype::kInt4}) {
    for (const std::size_t d : {std::size_t{8}, std::size_t{7}}) {
      PageConfig cfg = small_config(dtype);
      cfg.head_dim = d;
      Page page;
      page.init(cfg);
      num::Rng rng(11 + static_cast<std::uint64_t>(dtype));
      KStats reference(cfg.logical_pages(), d);
      std::vector<float> k(d), v(d), deq(d);
      for (std::size_t t = 0; t < cfg.page_size; ++t) {
        rng.fill_gaussian(k, 1.7f);
        rng.fill_gaussian(v, 0.9f);
        page.append(k.data(), v.data());
        // The pre-derivation fold: dequantize the stored row, then update.
        page.load_key(t, deq.data());
        reference.update(t, cfg.logical_page_size, deq.data());
      }
      const KStats& derived = page.kstats();
      for (std::size_t j = 0; j < cfg.logical_pages(); ++j) {
        ASSERT_TRUE(derived.initialized(j));
        for (std::size_t c = 0; c < d; ++c) {
          // Exact equality, not near: the derivation must not change bits.
          EXPECT_EQ(derived.kmin(j)[c], reference.kmin(j)[c])
              << dtype_name(dtype) << " d=" << d << " j=" << j << " c=" << c;
          EXPECT_EQ(derived.kmax(j)[c], reference.kmax(j)[c])
              << dtype_name(dtype) << " d=" << d << " j=" << j << " c=" << c;
        }
      }
      // The COW copy path rebuilds stats through the same derivation.
      Page copy;
      copy.init(cfg);
      copy.copy_prefix_from(page, cfg.page_size / 2);
      KStats half_ref(cfg.logical_pages(), d);
      for (std::size_t t = 0; t < cfg.page_size / 2; ++t) {
        copy.load_key(t, deq.data());
        half_ref.update(t, cfg.logical_page_size, deq.data());
      }
      for (std::size_t j = 0; j < cfg.page_size / 2 / cfg.logical_page_size;
           ++j) {
        for (std::size_t c = 0; c < d; ++c) {
          EXPECT_EQ(copy.kstats().kmin(j)[c], half_ref.kmin(j)[c]);
          EXPECT_EQ(copy.kstats().kmax(j)[c], half_ref.kmax(j)[c]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace lserve::kv
