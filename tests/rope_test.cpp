// Tests for rotary position embeddings (src/numeric/rope).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numeric/math.hpp"
#include "numeric/rng.hpp"
#include "numeric/rope.hpp"

namespace lserve::num {
namespace {

TEST(Rope, PreservesNorm) {
  const std::size_t d = 64;
  RopeTable rope(d);
  Rng rng(1);
  std::vector<float> v(d);
  rng.fill_gaussian(v, 1.0f);
  const float before = l2_norm(v.data(), d);
  rope.apply(v.data(), 1234);
  EXPECT_NEAR(l2_norm(v.data(), d), before, 1e-3f);
}

TEST(Rope, PositionZeroIsIdentity) {
  const std::size_t d = 32;
  RopeTable rope(d);
  Rng rng(2);
  std::vector<float> v(d), orig;
  rng.fill_gaussian(v, 1.0f);
  orig = v;
  rope.apply(v.data(), 0);
  for (std::size_t c = 0; c < d; ++c) EXPECT_NEAR(v[c], orig[c], 1e-6f);
}

// The defining RoPE property: <rot(q,m), rot(k,n)> depends only on m-n.
TEST(Rope, RelativePositionProperty) {
  const std::size_t d = 64;
  RopeTable rope(d);
  Rng rng(3);
  std::vector<float> q(d), k(d);
  rng.fill_gaussian(q, 1.0f);
  rng.fill_gaussian(k, 1.0f);

  auto rotated_dot = [&](std::size_t m, std::size_t n) {
    std::vector<float> qm = q, kn = k;
    rope.apply(qm.data(), m);
    rope.apply(kn.data(), n);
    return dot(qm.data(), kn.data(), d);
  };
  EXPECT_NEAR(rotated_dot(10, 3), rotated_dot(107, 100), 1e-3f);
  EXPECT_NEAR(rotated_dot(5, 5), rotated_dot(900, 900), 1e-3f);
}

TEST(Rope, ApplyManyMatchesSingle) {
  const std::size_t d = 16;
  RopeTable rope(d);
  Rng rng(4);
  std::vector<float> batch(3 * d), single(3 * d);
  rng.fill_gaussian(batch, 1.0f);
  single = batch;
  rope.apply_many(batch.data(), 3, d, 100);
  for (std::size_t t = 0; t < 3; ++t) rope.apply(single.data() + t * d, 100 + t);
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_NEAR(batch[i], single[i], 1e-6f);
}

TEST(Rope, HigherBaseRotatesSlower) {
  const std::size_t d = 8;
  RopeTable fast(d, 100.0f);
  RopeTable slow(d, 1e6f);
  std::vector<float> a{1, 0, 1, 0, 1, 0, 1, 0};
  std::vector<float> b = a;
  fast.apply(a.data(), 50);
  slow.apply(b.data(), 50);
  // The late channels (low frequency) should move less under the big base.
  EXPECT_GT(std::abs(b[d - 2] - 1.0f) + 1e-3f, 0.0f);
  EXPECT_LT(std::abs(b[d - 2] - 1.0f), std::abs(a[d - 2] - 1.0f) + 1e-3f);
}

}  // namespace
}  // namespace lserve::num
