// Shape tests for the GPU analytic cost model (src/costmodel). Each test
// asserts a qualitative relationship the paper reports; EXPERIMENTS.md maps
// these to the corresponding table/figure.
#include <gtest/gtest.h>

#include "costmodel/gpu_spec.hpp"
#include "costmodel/kernel_cost.hpp"
#include "costmodel/pipeline_cost.hpp"

namespace lserve::cost {
namespace {

const model::ModelConfig kLlama3 = model::llama3_8b();
const model::ModelConfig kLlama2 = model::llama2_7b();

TEST(PageEfficiency, MonotoneInPageSize) {
  const GpuSpec spec = a100();
  double prev = 0.0;
  for (std::size_t p : {16u, 32u, 64u, 128u}) {
    const double eff =
        page_bandwidth_efficiency(spec, p, num::KvDtype::kInt4, 128);
    EXPECT_GT(eff, prev);
    prev = eff;
  }
  EXPECT_GT(prev, 0.85);  // 128-token pages are near-peak
}

TEST(PageEfficiency, Table1SlowdownShape) {
  // Table 1: page-16 int4 decoding is ~1.5x slower than page-128 at long
  // sequence, page-64 is within a few percent.
  const GpuSpec spec = a100();
  ServingPolicy p = qserve_policy();
  auto step_ms = [&](std::size_t page, std::size_t seq) {
    p.page_size = page;
    p.logical_page_size = page;
    return decode_step_cost(spec, kLlama3, p, seq, 32).total_us() / 1000.0;
  };
  const double slow16 = step_ms(16, 8192) / step_ms(128, 8192);
  const double slow32 = step_ms(32, 8192) / step_ms(128, 8192);
  const double slow64 = step_ms(64, 8192) / step_ms(128, 8192);
  EXPECT_GT(slow16, 1.3);
  EXPECT_LT(slow16, 1.8);
  EXPECT_GT(slow32, slow64);
  EXPECT_LT(slow64, 1.10);
  // Dilution at short context (Table 1 row 512 shows a much smaller gap
  // than row 8192; GEMM dominates the step).
  EXPECT_LT(step_ms(16, 512) / step_ms(128, 512), 1.25);
  EXPECT_LT(step_ms(16, 512) / step_ms(128, 512),
            0.8 * (slow16 - 1.0) + 1.0);
}

TEST(DecodeCost, DenseGrowsLinearlyDynamicIsConstant) {
  const GpuSpec spec = a100();
  const ServingPolicy dense = vllm_policy();
  ServingPolicy dynamic = vllm_policy();
  dynamic.dynamic_decode = true;
  dynamic.token_budget = 4096;
  const double d64 = decode_attention_layer_us(spec, kLlama2, dense, 65536, 1);
  const double d128 =
      decode_attention_layer_us(spec, kLlama2, dense, 131072, 1);
  EXPECT_NEAR(d128 / d64, 2.0, 0.2);
  const double q64 =
      decode_attention_layer_us(spec, kLlama2, dynamic, 65536, 1);
  const double q128 =
      decode_attention_layer_us(spec, kLlama2, dynamic, 131072, 1);
  EXPECT_LT(q128 / q64, 1.3);  // constant attention + linear selector only
  EXPECT_LT(q64, d64);
}

TEST(DecodeCost, Fig15LayerLatencyOrdering) {
  // Fig 15: baseline (dense) is slowest at long context; +static divides by
  // ~1.5-2; +dynamic is flat; LServe (static+dynamic) is the cheapest.
  const GpuSpec spec = a100();
  const std::size_t seq = 262144;
  ServingPolicy dense = vllm_policy();
  dense.kv_dtype = num::KvDtype::kFp16;
  ServingPolicy stat = duo_attention_policy();
  ServingPolicy dyn = quest_policy();
  dyn.page_size = 32;
  dyn.logical_page_size = 16;
  dyn.reuse_interval = 4;
  dyn.skip_selector_when_covered = true;
  ServingPolicy both = lserve_policy();
  both.kv_dtype = num::KvDtype::kFp16;  // isolate sparsity from quantization

  const double t_dense = decode_attention_layer_us(spec, kLlama2, dense, seq, 1);
  const double t_static = decode_attention_layer_us(spec, kLlama2, stat, seq, 1);
  const double t_dyn = decode_attention_layer_us(spec, kLlama2, dyn, seq, 1);
  const double t_lserve = decode_attention_layer_us(spec, kLlama2, both, seq, 1);
  EXPECT_LT(t_static, t_dense);
  EXPECT_GT(t_static / t_lserve, 2.0);   // static alone still linear
  EXPECT_LT(t_lserve, t_dyn);            // streaming halves the dense heads
  EXPECT_GT(t_dense / t_lserve, 10.0);   // paper: ~40x at 256K
}

TEST(DecodeCost, LServeSpeedupOverVllmGrowsWithContext) {
  // Fig 10 / Table 7 shape: the LServe/vLLM ratio increases with length and
  // exceeds 1.3x beyond 128K.
  const GpuSpec spec = a100();
  const ServingPolicy v = vllm_policy();
  const ServingPolicy l = lserve_policy();
  double prev_ratio = 0.0;
  for (std::size_t seq : {65536u, 131072u, 262144u}) {
    const double tv = decode_step_cost(spec, kLlama3, v, seq, 1).total_us();
    const double tl = decode_step_cost(spec, kLlama3, l, seq, 1).total_us();
    const double ratio = tv / tl;
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 1.3);
}

TEST(DecodeCost, NoShortContextRegression) {
  // Fig 16: LServe avoids slowdowns at 4K-8K (selector skipped when the
  // budget covers the context).
  const GpuSpec spec = a100();
  const ServingPolicy v = vllm_policy();
  const ServingPolicy l = lserve_policy();
  for (std::size_t seq : {4096u, 8192u}) {
    const double tv = decode_step_cost(spec, kLlama3, v, seq, 1).total_us();
    const double tl = decode_step_cost(spec, kLlama3, l, seq, 1).total_us();
    EXPECT_LT(tl, tv * 1.02) << "seq " << seq;
  }
}

TEST(PrefillCost, AttentionFractionGrowsWithLength) {
  // Fig 2 shape: attention share rises with context and crosses 50%
  // somewhere between 32K and 128K. Fig 2 profiles the plain fp16 model,
  // so the policy here uses fp16 weights (not the W8A8 baseline setting).
  const GpuSpec spec = a100();
  ServingPolicy p = vllm_policy();
  p.weight_bits = 16;
  double prev = 0.0;
  for (std::size_t n : {8192u, 16384u, 32768u, 65536u, 131072u}) {
    const double frac =
        prefill_cost(spec, kLlama3, p, n, 1).attention_fraction();
    EXPECT_GT(frac, prev);
    prev = frac;
  }
  EXPECT_GT(prev, 0.5);
  const double frac32k =
      prefill_cost(spec, kLlama3, p, 32768, 1).attention_fraction();
  EXPECT_LT(frac32k, 0.55);
}

TEST(PrefillCost, StreamingHeadsAndDynamicMaskSpeedUpPrefill) {
  const GpuSpec spec = a100();
  const std::size_t n = 262144;
  const double dense =
      prefill_cost(spec, kLlama3, vllm_policy(), n, 1).total_us();
  const double duo =
      prefill_cost(spec, kLlama3, duo_attention_policy(), n, 1).total_us();
  const double lserve =
      prefill_cost(spec, kLlama3, lserve_policy(), n, 1).total_us();
  EXPECT_LT(duo, dense);
  EXPECT_LT(lserve, duo);
  // Paper: up to 2.9x prefill speedup over vLLM at long context.
  EXPECT_GT(dense / lserve, 1.5);
  EXPECT_LT(dense / lserve, 4.0);
}

TEST(SelectorCost, LinearInSequenceAndCutByReuse) {
  // Fig 14: vanilla selector grows linearly and dominates sparse attention
  // beyond ~64K; reuse-4 cuts it 4x.
  const GpuSpec spec = a100();
  ServingPolicy vanilla = lserve_policy();
  vanilla.reuse_interval = 1;
  ServingPolicy reuse4 = lserve_policy();
  reuse4.reuse_interval = 4;
  const auto sel_us = [&](const ServingPolicy& p, std::size_t seq) {
    return decode_step_cost(spec, kLlama3, p, seq, 1).selector_us;
  };
  // Linear growth (with a fixed launch offset that washes out at scale).
  EXPECT_GT(sel_us(vanilla, 131072), 1.4 * sel_us(vanilla, 65536));
  EXPECT_NEAR(sel_us(vanilla, 1u << 20) / sel_us(vanilla, 1u << 19), 2.0,
              0.15);
  EXPECT_NEAR(sel_us(vanilla, 131072) / sel_us(reuse4, 131072), 4.0, 0.01);
  // At 128K the vanilla selector exceeds the sparse attention kernel time.
  const double attn_us =
      decode_step_cost(spec, kLlama3, vanilla, 131072, 1).attention_us;
  EXPECT_GT(sel_us(vanilla, 131072), 0.5 * attn_us);
}

TEST(GemmCost, ComputeVsMemoryRegimes) {
  const GpuSpec spec = a100();
  // m=1 decode GEMM is memory bound: int4 weights beat fp16 by ~4x.
  const double fp16 = gemm_us(spec, 1, 4096, 4096, 16);
  const double int4 = gemm_us(spec, 1, 4096, 4096, 4);
  EXPECT_GT(fp16 / int4, 2.5);
  // Large-m GEMM is compute bound: quantized weights still win, but only
  // by the int8-tensor-core factor (~2x), not the 4x byte ratio.
  const double big16 = gemm_us(spec, 65536, 4096, 4096, 16);
  const double big4 = gemm_us(spec, 65536, 4096, 4096, 4);
  EXPECT_NEAR(big16 / big4, 2.0, 0.05);
}

TEST(GpuSpecs, L40sIsBandwidthPoorerThanA100) {
  const GpuSpec a = a100();
  const GpuSpec l = l40s();
  EXPECT_GT(a.hbm_bw_gbps, l.hbm_bw_gbps);
  const double ta =
      decode_step_cost(a, kLlama3, vllm_policy(), 131072, 1).total_us();
  const double tl =
      decode_step_cost(l, kLlama3, vllm_policy(), 131072, 1).total_us();
  EXPECT_GT(tl, ta);
}

// ---------------------------------------------------------------------------
// Properties behind the sparse-vs-dense gate (crossover_tokens): the
// attention-policy layer trusts these shapes, so they are pinned here.

TEST(Crossover, DecodeCostMonotoneInContextLength) {
  // Longer context never gets cheaper, on either route — the galloping
  // search in crossover_tokens assumes the dense-minus-sparse gap never
  // collapses back once sparse wins.
  const GpuSpec spec = a100();
  for (const ServingPolicy& p : {lserve_policy(), vllm_policy(),
                                 dense_decode_variant(lserve_policy())}) {
    double prev = 0.0;
    for (std::size_t seq = 512; seq <= (1u << 18); seq *= 2) {
      const double t = decode_step_cost(spec, kLlama3, p, seq, 1).total_us();
      EXPECT_GE(t, prev) << (p.dynamic_decode ? "sparse" : "dense")
                         << " seq " << seq;
      prev = t;
    }
  }
}

TEST(Crossover, SparseWinsExactlyFromTheCrossoverOn) {
  const GpuSpec spec = a100();
  const ServingPolicy p = lserve_policy();
  const ServingPolicy d = dense_decode_variant(p);
  const std::size_t x = crossover_tokens(spec, kLlama3, p, 1);
  ASSERT_NE(x, kNoCrossover);
  // Sparse cannot win while the budget covers the whole context: pruning
  // reads the same tokens and still pays the selector.
  EXPECT_GT(x, p.token_budget);
  const auto sparse_us = [&](std::size_t s) {
    return decode_step_cost(spec, kLlama3, p, s, 1).total_us();
  };
  const auto dense_us = [&](std::size_t s) {
    return decode_step_cost(spec, kLlama3, d, s, 1).total_us();
  };
  // x is the *first* strict win.
  EXPECT_LT(sparse_us(x), dense_us(x));
  EXPECT_GE(sparse_us(x - 1), dense_us(x - 1));
  // Beyond it sparse stays ahead and the gap widens (dense reads the full
  // context; sparse reads the budget plus an amortized selector sweep).
  double prev_gap = 0.0;
  for (std::size_t s = x; s <= 8 * x; s *= 2) {
    const double gap = dense_us(s) - sparse_us(s);
    EXPECT_GE(gap, prev_gap) << "seq " << s;
    prev_gap = gap;
  }
}

TEST(Crossover, InvariantUnderGpuSpecScaling) {
  // scaled(spec, k) multiplies every throughput by k and divides the
  // launch overhead by k, so each roofline term divides by k and the
  // sparse-vs-dense comparison — hence the crossover — is unchanged.
  // Power-of-two factors keep the arithmetic bit-exact.
  const ServingPolicy p = lserve_policy();
  const std::size_t base = crossover_tokens(a100(), kLlama3, p, 1);
  ASSERT_NE(base, kNoCrossover);
  for (const double k : {0.5, 2.0, 8.0}) {
    EXPECT_EQ(crossover_tokens(scaled(a100(), k), kLlama3, p, 1), base)
        << "scale " << k;
  }
}

TEST(Crossover, NoCrossoverWithoutDynamicDecode) {
  // A policy with no selector has no sparse route to win: the gate pins
  // dense (and the search is skipped entirely).
  EXPECT_EQ(crossover_tokens(a100(), kLlama3, vllm_policy(), 1),
            kNoCrossover);
  EXPECT_EQ(crossover_tokens(a100(), kLlama3, duo_attention_policy(), 1),
            kNoCrossover);
  EXPECT_EQ(
      crossover_tokens(a100(), kLlama3, dense_decode_variant(lserve_policy()),
                       1),
      kNoCrossover);
}

TEST(StreamingTokens, LambdaWindowIsPageRounded) {
  ServingPolicy p = lserve_policy();
  p.sink_tokens = 64;
  p.local_tokens = 256;
  p.page_size = 64;
  EXPECT_EQ(streaming_head_kv_tokens(p, 1u << 20), 320u);
  EXPECT_EQ(streaming_head_kv_tokens(p, 100), 100u);  // short ctx clamps
  EXPECT_EQ(dense_head_kv_tokens(lserve_policy(), 1u << 20), 4096u);
  EXPECT_EQ(dense_head_kv_tokens(vllm_policy(), 1u << 20), 1u << 20);
}

}  // namespace
}  // namespace lserve::cost
