// Baseline matrix: every system preset must serve end-to-end on the shared
// substrate, and their decode-work / memory orderings must reflect their
// policies (the invariant behind every cross-system comparison in bench/).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "serve/engine.hpp"

namespace lserve {
namespace {

struct SystemRun {
  std::size_t tokens_visited = 0;
  double kv_bytes = 0.0;
  std::vector<std::int32_t> output;
};

/// Scales a preset down to the tiny test geometry, preserving its policy
/// RATIOS (page sizes, budgets and windows shrink together).
serve::EngineConfig scaled(serve::EngineConfig cfg) {
  const bool hierarchical =
      cfg.dense_pages.logical_page_size < cfg.dense_pages.page_size;
  cfg.dense_pages.page_size = 8;
  // Preserve the hierarchical-vs-flat distinction at g=2; finer logical
  // pages at this scale would let K_stats overhead dwarf the payload,
  // which the real NP=64/NL=16 geometry never does.
  cfg.dense_pages.logical_page_size = hierarchical ? 4 : 8;
  cfg.tiling = {8, 8};
  // Λ window clearly below the token budget so streaming heads do
  // measurably less work than budget-pruned dense heads.
  cfg.streaming = {/*sink_tokens=*/8, /*local_tokens=*/24};
  if (cfg.selector.token_budget > 0) cfg.selector.token_budget = 64;
  cfg.pool_pages = 512;
  return cfg;
}

std::map<std::string, SystemRun> run_matrix() {
  const model::ModelConfig m = model::tiny();
  const std::map<std::string, serve::EngineConfig> presets{
      {"lserve", scaled(baselines::lserve_config(m))},
      {"vllm", scaled(baselines::vllm_config(m))},
      {"qserve", scaled(baselines::qserve_config(m))},
      {"duo", scaled(baselines::duo_attention_config(m))},
      {"quest", scaled(baselines::quest_config(m))},
      {"minference", scaled(baselines::minference_config(m))},
  };
  std::vector<std::int32_t> ids(160);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int32_t>((13 * i + 3) % 251);
  }
  std::map<std::string, SystemRun> runs;
  for (const auto& [name, cfg] : presets) {
    serve::Engine engine(cfg);
    const auto seq = engine.create_sequence();
    SystemRun run;
    run.output = engine.generate(seq, ids, 6);
    run.tokens_visited = engine.stats().tokens_visited;
    run.kv_bytes = engine.kv_device_bytes();
    runs[name] = std::move(run);
  }
  return runs;
}

TEST(BaselineMatrix, EverySystemCompletesGeneration) {
  const auto runs = run_matrix();
  ASSERT_EQ(runs.size(), 6u);
  for (const auto& [name, run] : runs) {
    EXPECT_EQ(run.output.size(), 6u) << name;
    for (auto t : run.output) {
      EXPECT_GE(t, 0) << name;
      EXPECT_LT(t, 256) << name;
    }
  }
}

TEST(BaselineMatrix, DecodeWorkOrderingReflectsPolicies) {
  const auto runs = run_matrix();
  // Dense-decode systems (vLLM, QServe, MInference) visit the full history
  // every step and therefore do the most attention work.
  EXPECT_EQ(runs.at("vllm").tokens_visited,
            runs.at("qserve").tokens_visited);
  EXPECT_EQ(runs.at("vllm").tokens_visited,
            runs.at("minference").tokens_visited);
  // Streaming heads (Duo) and page pruning (Quest) both cut decode work.
  EXPECT_LT(runs.at("duo").tokens_visited, runs.at("vllm").tokens_visited);
  EXPECT_LT(runs.at("quest").tokens_visited, runs.at("vllm").tokens_visited);
  // LServe combines both: least work of all.
  for (const char* other : {"vllm", "qserve", "duo", "quest", "minference"}) {
    EXPECT_LT(runs.at("lserve").tokens_visited,
              runs.at(other).tokens_visited)
        << other;
  }
}

TEST(BaselineMatrix, MemoryOrderingReflectsPrecisionAndEviction) {
  const auto runs = run_matrix();
  // 4-bit KV beats fp16 KV on the same retention policy.
  EXPECT_LT(runs.at("qserve").kv_bytes, runs.at("vllm").kv_bytes);
  // Streaming-head eviction beats full retention at equal precision.
  EXPECT_LT(runs.at("duo").kv_bytes, runs.at("vllm").kv_bytes);
  // Quest prunes compute, not memory (paper: "these approaches do not
  // reduce KV cache memory consumption").
  EXPECT_NEAR(runs.at("quest").kv_bytes, runs.at("vllm").kv_bytes,
              0.12 * runs.at("vllm").kv_bytes);
  // LServe holds the least KV memory of all systems.
  for (const char* other : {"vllm", "qserve", "duo", "quest", "minference"}) {
    EXPECT_LT(runs.at("lserve").kv_bytes, runs.at(other).kv_bytes) << other;
  }
}

TEST(BaselineMatrix, SameSubstrateSameWeights) {
  // All presets share the transformer: vLLM and Quest both run fp16 dense
  // causal prefill (Quest differs only in decode-time page pruning), so
  // the first generated token must agree bit for bit. QServe is excluded
  // on purpose: prefill attention reads the round-tripped quantized KV
  // (what any later reader loads), so int4 presets feel quantization
  // already at prefill and need not match fp16 token-for-token.
  const model::ModelConfig m = model::tiny();
  serve::Engine a(scaled(baselines::vllm_config(m)));
  serve::Engine b(scaled(baselines::quest_config(m)));
  std::vector<std::int32_t> ids(24);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int32_t>((5 * i + 1) % 251);
  }
  const auto sa = a.create_sequence();
  const auto sb = b.create_sequence();
  EXPECT_EQ(a.prefill(sa, ids), b.prefill(sb, ids));
}

}  // namespace
}  // namespace lserve
