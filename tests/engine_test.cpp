// Integration tests for the serving engine (src/serve/engine).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "serve/engine.hpp"

namespace lserve::serve {
namespace {

std::vector<std::int32_t> prompt_ids(std::size_t n, std::int32_t base = 3) {
  std::vector<std::int32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = static_cast<std::int32_t>((base + 7 * i) % 251);
  }
  return ids;
}

/// Dense fp16 engine on the tiny model, small pages.
EngineConfig tiny_dense_config() {
  EngineConfig cfg = baselines::vllm_config(model::tiny());
  cfg.dense_pages.page_size = 8;
  cfg.dense_pages.logical_page_size = 8;
  cfg.tiling = {8, 8};
  cfg.pool_pages = 256;
  return cfg;
}

/// LServe-flavoured engine whose sparsity is inactive at short context:
/// budget and Λ window cover the whole sequence, so outputs must equal the
/// dense engine's exactly.
EngineConfig tiny_covering_lserve_config() {
  EngineConfig cfg = tiny_dense_config();
  cfg.streaming_fraction = 0.5;
  cfg.streaming = {/*sink_tokens=*/64, /*local_tokens=*/512};
  cfg.dynamic_decode = true;
  cfg.hierarchical = true;
  cfg.selector.token_budget = 4096;
  cfg.reuse_interval = 4;
  cfg.dense_pages.logical_page_size = 4;
  return cfg;
}

TEST(Engine, DeterministicGeneration) {
  Engine a(tiny_dense_config());
  Engine b(tiny_dense_config());
  const auto ids = prompt_ids(24);
  const auto sa = a.create_sequence();
  const auto sb = b.create_sequence();
  const auto out_a = a.generate(sa, ids, 6);
  const auto out_b = b.generate(sb, ids, 6);
  EXPECT_EQ(out_a, out_b);
}

TEST(Engine, IncrementalPrefillMatchesMonolithic) {
  // Driving begin_prefill/prefill_chunk/finish_prefill by hand — with an
  // uneven chunk schedule — must be bit-identical to prefill(), including
  // the decode steps that follow.
  Engine mono(tiny_dense_config());
  Engine inc(tiny_dense_config());
  const auto ids = prompt_ids(23);
  const auto sm = mono.create_sequence();
  const auto si = inc.create_sequence();

  const std::int32_t first_mono =
      mono.prefill(sm, std::span<const std::int32_t>(ids));

  inc.begin_prefill(si, ids.size());
  std::size_t pos = 0;
  for (const std::size_t chunk : {7u, 9u, 1u, 6u}) {
    const std::size_t left = inc.prefill_chunk(
        si, std::span<const std::int32_t>(ids.data() + pos, chunk));
    pos += chunk;
    EXPECT_EQ(left, ids.size() - pos);
  }
  const std::int32_t first_inc = inc.finish_prefill(si);

  EXPECT_EQ(first_inc, first_mono);
  std::int32_t tm = first_mono;
  std::int32_t ti = first_inc;
  for (int s = 0; s < 6; ++s) {
    tm = mono.decode(sm, tm);
    ti = inc.decode(si, ti);
    EXPECT_EQ(ti, tm) << "diverged at decode step " << s;
  }
  EXPECT_EQ(mono.stats().prefill_tokens, inc.stats().prefill_tokens);
}

TEST(Engine, EstimateRequestPagesBoundsActualUsage) {
  // The admission-control estimate must upper-bound what a request really
  // allocates, for both the dense and the streaming pool.
  Engine engine(tiny_covering_lserve_config());
  const std::size_t prompt_len = 40;
  const std::size_t new_tokens = 8;
  const PageDemand est =
      engine.estimate_request_pages(prompt_len + new_tokens);
  const auto seq = engine.create_sequence();
  engine.generate(seq, prompt_ids(prompt_len), new_tokens);
  EXPECT_LE(engine.dense_allocator().pages_in_use(), est.dense_pages);
  EXPECT_LE(engine.stream_allocator().pages_in_use(), est.stream_pages);
  EXPECT_LE(engine.total_pages_in_use(), est.total());
  EXPECT_EQ(engine.decode_step_page_bound(),
            engine.config().model.layers * engine.config().model.kv_heads);
  engine.release_sequence(seq);
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
}

TEST(Engine, PrefillThenDecodeMatchesLongerPrefill) {
  // Causal consistency: decoding token t after prefilling [0, t) must give
  // the same next token as prefilling [0, t].
  Engine a(tiny_dense_config());
  Engine b(tiny_dense_config());
  const auto ids = prompt_ids(20);

  const auto sa = a.create_sequence();
  const std::int32_t via_prefill =
      a.prefill(sa, std::span<const std::int32_t>(ids));

  const auto sb = b.create_sequence();
  const std::vector<std::int32_t> shorter(ids.begin(), ids.end() - 1);
  b.prefill(sb, shorter);
  const std::int32_t via_decode = b.decode(sb, ids.back());

  EXPECT_EQ(via_prefill, via_decode);
}

TEST(Engine, CoveringSparsityMatchesDenseExactly) {
  // When budget >= context and the Λ window covers everything, LServe's
  // pathways reduce to dense attention: generated tokens must coincide.
  Engine dense(tiny_dense_config());
  Engine sparse(tiny_covering_lserve_config());
  const auto ids = prompt_ids(40);
  const auto sd = dense.create_sequence();
  const auto ss = sparse.create_sequence();
  const auto out_d = dense.generate(sd, ids, 8);
  const auto out_s = sparse.generate(ss, ids, 8);
  EXPECT_EQ(out_d, out_s);
}

TEST(Engine, DynamicDecodeBoundsVisitedTokens) {
  EngineConfig cfg = tiny_dense_config();
  cfg.dynamic_decode = true;
  cfg.selector.token_budget = 16;  // 2 pages of 8
  cfg.reuse_interval = 1;
  Engine engine(cfg);
  const auto ids = prompt_ids(64);
  const auto seq = engine.create_sequence();
  engine.generate(seq, ids, 4);
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.decode_steps, 3u);
  // Per decode step per layer per kv head: at most budget tokens.
  const std::size_t max_tokens = stats.decode_steps * 2 /*layers*/ *
                                 2 /*kv heads*/ * 24 /*budget + partials*/;
  EXPECT_LE(stats.tokens_visited, max_tokens);
}

TEST(Engine, ReusableSelectorReducesSelectorRuns) {
  EngineConfig cfg = tiny_covering_lserve_config();
  cfg.selector.token_budget = 16;  // force pruning
  cfg.reuse_interval = 4;
  Engine engine(cfg);
  const auto ids = prompt_ids(64);
  const auto seq = engine.create_sequence();
  engine.generate(seq, ids, 9);  // 8 decode steps
  const EngineStats& stats = engine.stats();
  EXPECT_GT(stats.selector_reuses, stats.selector_runs);
}

TEST(Engine, ReleaseSequenceFreesAllPages) {
  Engine engine(tiny_covering_lserve_config());
  const auto ids = prompt_ids(48);
  const auto seq = engine.create_sequence();
  engine.generate(seq, ids, 4);
  EXPECT_GT(engine.dense_allocator().pages_in_use(), 0u);
  engine.release_sequence(seq);
  EXPECT_EQ(engine.dense_allocator().pages_in_use(), 0u);
  EXPECT_EQ(engine.stream_allocator().pages_in_use(), 0u);
}

TEST(Engine, SequenceSlotsAreRecycled) {
  Engine engine(tiny_dense_config());
  const auto s0 = engine.create_sequence();
  engine.release_sequence(s0);
  const auto s1 = engine.create_sequence();
  EXPECT_EQ(s0, s1);
}

TEST(Engine, QuantizedKvReducesDeviceBytes) {
  EngineConfig fp_cfg = tiny_dense_config();
  EngineConfig q_cfg = tiny_dense_config();
  q_cfg.dense_pages.dtype = num::KvDtype::kInt4;
  Engine fp(fp_cfg), q4(q_cfg);
  const auto ids = prompt_ids(64);
  const auto sf = fp.create_sequence();
  const auto sq = q4.create_sequence();
  fp.prefill(sf, std::span<const std::int32_t>(ids));
  q4.prefill(sq, std::span<const std::int32_t>(ids));
  EXPECT_LT(q4.kv_device_bytes(), 0.5 * fp.kv_device_bytes());
}

TEST(Engine, StreamingHeadsSaveMemoryAtLongContext) {
  EngineConfig dense_cfg = tiny_dense_config();
  EngineConfig duo_cfg = tiny_dense_config();
  duo_cfg.streaming_fraction = 0.5;
  duo_cfg.streaming = {/*sink=*/8, /*local=*/16};
  Engine dense(dense_cfg), duo(duo_cfg);
  const auto ids = prompt_ids(192);
  const auto sd = dense.create_sequence();
  const auto su = duo.create_sequence();
  dense.prefill(sd, std::span<const std::int32_t>(ids));
  duo.prefill(su, std::span<const std::int32_t>(ids));
  EXPECT_LT(duo.kv_device_bytes(), 0.75 * dense.kv_device_bytes());
}

TEST(Engine, CalibrationPartitionsAtConfiguredFraction) {
  EngineConfig cfg = tiny_covering_lserve_config();
  cfg.streaming = {/*sink=*/16, /*local=*/64};  // keep calibration cheap
  Engine engine(cfg);
  const auto gates = engine.calibrate_head_kinds();
  ASSERT_EQ(gates.size(), 2u * 2u);  // layers x kv_heads
  std::size_t streaming = 0;
  for (auto k : engine.head_kinds()) {
    streaming += (k == kv::HeadKind::kStreaming);
  }
  EXPECT_EQ(streaming, 2u);
}

TEST(Engine, SetHeadKindsOverridesPartition) {
  Engine engine(tiny_dense_config());
  std::vector<kv::HeadKind> kinds(4, kv::HeadKind::kStreaming);
  engine.set_head_kinds(kinds);
  for (auto k : engine.head_kinds()) {
    EXPECT_EQ(k, kv::HeadKind::kStreaming);
  }
}

TEST(BaselinePresets, DifferInTheExpectedKnobs) {
  const auto m = model::tiny();
  EXPECT_EQ(baselines::vllm_config(m).dense_pages.dtype,
            num::KvDtype::kFp16);
  EXPECT_EQ(baselines::qserve_config(m).dense_pages.dtype,
            num::KvDtype::kInt4);
  EXPECT_FALSE(baselines::vllm_config(m).dynamic_decode);
  EXPECT_TRUE(baselines::quest_config(m).dynamic_decode);
  EXPECT_FALSE(baselines::quest_config(m).hierarchical);
  EXPECT_TRUE(baselines::lserve_config(m).hierarchical);
  EXPECT_EQ(baselines::quest_config(m).dense_pages.page_size, 16u);
  EXPECT_EQ(baselines::lserve_config(m).dense_pages.page_size, 64u);
  EXPECT_EQ(baselines::lserve_config(m).dense_pages.logical_page_size, 16u);
  EXPECT_TRUE(baselines::minference_config(m).dynamic_prefill);
  EXPECT_DOUBLE_EQ(baselines::duo_attention_config(m).streaming_fraction,
                   0.5);
}

}  // namespace
}  // namespace lserve::serve
