// Tests for the page pool allocator (src/kv/page_allocator).
#include <gtest/gtest.h>

#include <vector>

#include "kv/page_allocator.hpp"

namespace lserve::kv {
namespace {

PageConfig cfg() {
  PageConfig c;
  c.page_size = 8;
  c.logical_page_size = 8;
  c.head_dim = 4;
  return c;
}

TEST(PageAllocator, AllocateFreeCycle) {
  PageAllocator alloc(cfg(), 4);
  EXPECT_EQ(alloc.pages_in_use(), 0u);
  const PageId a = alloc.allocate();
  const PageId b = alloc.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(alloc.pages_in_use(), 2u);
  alloc.release(a);
  EXPECT_EQ(alloc.pages_in_use(), 1u);
  alloc.release(b);
  EXPECT_EQ(alloc.pages_in_use(), 0u);
}

TEST(PageAllocator, OccupancyQueriesTrackAllocateAndFree) {
  PageAllocator alloc(cfg(), 4);
  const std::size_t cap = alloc.capacity();
  EXPECT_EQ(alloc.free_pages(), cap);
  const PageId a = alloc.allocate();
  const PageId b = alloc.allocate();
  EXPECT_EQ(alloc.free_pages(), cap - 2);
  EXPECT_EQ(alloc.free_pages() + alloc.pages_in_use(), alloc.capacity());
  alloc.release(a);
  alloc.release(b);
  EXPECT_EQ(alloc.free_pages(), cap);
}

TEST(PageAllocator, PagesForTokensRoundsUp) {
  PageAllocator alloc(cfg(), 2);  // page_size = 8
  EXPECT_EQ(alloc.pages_for_tokens(0), 0u);
  EXPECT_EQ(alloc.pages_for_tokens(1), 1u);
  EXPECT_EQ(alloc.pages_for_tokens(8), 1u);
  EXPECT_EQ(alloc.pages_for_tokens(9), 2u);
  EXPECT_EQ(alloc.pages_for_tokens(64), 8u);
}

TEST(PageAllocator, GrowsBeyondInitialCapacity) {
  PageAllocator alloc(cfg(), 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(alloc.allocate());
  EXPECT_EQ(alloc.pages_in_use(), 10u);
  EXPECT_GE(alloc.capacity(), 10u);
  for (PageId id : ids) alloc.release(id);
  EXPECT_EQ(alloc.pages_in_use(), 0u);
}

TEST(PageAllocator, RecycledPagesAreEmpty) {
  PageAllocator alloc(cfg(), 2);
  const PageId a = alloc.allocate();
  const float k[4] = {1, 2, 3, 4};
  const float v[4] = {5, 6, 7, 8};
  alloc.pin_mut(a).page().append(k, v);
  EXPECT_EQ(alloc.pin(a).page().size(), 1u);
  alloc.release(a);
  const PageId b = alloc.allocate();  // LIFO: same slot comes back
  EXPECT_EQ(b, a);
  EXPECT_TRUE(alloc.pin(b).page().empty());
}

TEST(PageAllocator, PeakTracking) {
  PageAllocator alloc(cfg(), 8);
  std::vector<PageId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(alloc.allocate());
  for (PageId id : ids) alloc.release(id);
  alloc.allocate();
  EXPECT_EQ(alloc.peak_pages_in_use(), 5u);
}

TEST(PageAllocator, DeviceBytesTrackLivePagesOnly) {
  PageAllocator alloc(cfg(), 4);
  EXPECT_DOUBLE_EQ(alloc.device_bytes_in_use(), 0.0);
  const PageId a = alloc.allocate();
  const double one = alloc.device_bytes_in_use();
  EXPECT_GT(one, 0.0);
  const PageId b = alloc.allocate();
  EXPECT_DOUBLE_EQ(alloc.device_bytes_in_use(), 2 * one);
  alloc.release(a);
  EXPECT_DOUBLE_EQ(alloc.device_bytes_in_use(), one);
  alloc.release(b);
}

TEST(PageAllocator, PagesInheritPoolConfig) {
  PageAllocator alloc(cfg(), 1);
  const PageId a = alloc.allocate();
  EXPECT_EQ(alloc.pin(a).page().config().page_size, 8u);
  EXPECT_EQ(alloc.pin(a).page().config().head_dim, 4u);
  alloc.release(a);
}

}  // namespace
}  // namespace lserve::kv
