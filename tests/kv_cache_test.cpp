// Tests for the per-sequence paged KV cache (src/kv/kv_cache,
// src/kv/page_table).
#include <gtest/gtest.h>

#include <vector>

#include "kv/kv_cache.hpp"
#include "numeric/rng.hpp"

namespace lserve::kv {
namespace {

PageConfig cfg() {
  PageConfig c;
  c.page_size = 8;
  c.logical_page_size = 4;
  c.head_dim = 8;
  return c;
}

TEST(HeadCache, AppendsAcrossPageBoundaries) {
  PageAllocator alloc(cfg(), 8);
  HeadCache head;
  num::Rng rng(1);
  std::vector<std::vector<float>> keys;
  for (std::size_t t = 0; t < 20; ++t) {
    std::vector<float> k(8), v(8);
    rng.fill_gaussian(k, 1.0f);
    rng.fill_gaussian(v, 1.0f);
    head.append(alloc, k.data(), v.data());
    keys.push_back(k);
  }
  EXPECT_EQ(head.tokens(), 20u);
  EXPECT_EQ(head.num_pages(), 3u);  // ceil(20/8)
  std::vector<float> out(8);
  for (std::size_t t = 0; t < 20; ++t) {
    head.load_key(alloc, t, out.data());
    for (std::size_t c = 0; c < 8; ++c) EXPECT_FLOAT_EQ(out[c], keys[t][c]);
  }
}

TEST(HeadCache, ViewReportsPartialTailBlock) {
  PageAllocator alloc(cfg(), 8);
  HeadCache head;
  std::vector<float> k(8, 1.0f), v(8, 2.0f);
  for (int t = 0; t < 11; ++t) head.append(alloc, k.data(), v.data());
  const PageTableView view = head.view(alloc);
  EXPECT_EQ(view.tokens, 11u);
  EXPECT_EQ(view.num_blocks(), 2u);
  EXPECT_EQ(view.block_tokens(0), 8u);
  EXPECT_EQ(view.block_tokens(1), 3u);
}

TEST(HeadCache, ReleaseReturnsAllPages) {
  PageAllocator alloc(cfg(), 8);
  HeadCache head;
  std::vector<float> k(8, 0.0f), v(8, 0.0f);
  for (int t = 0; t < 17; ++t) head.append(alloc, k.data(), v.data());
  EXPECT_EQ(alloc.pages_in_use(), 3u);
  head.release(alloc);
  EXPECT_EQ(alloc.pages_in_use(), 0u);
  EXPECT_EQ(head.tokens(), 0u);
}

TEST(PageTable, FullTableCoversEveryBlock) {
  PageAllocator alloc(cfg(), 8);
  HeadCache head;
  std::vector<float> k(8, 0.0f), v(8, 0.0f);
  for (int t = 0; t < 19; ++t) head.append(alloc, k.data(), v.data());
  const auto view = head.view(alloc);
  const SelectedPageTable table = full_page_table(view);
  ASSERT_EQ(table.size(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(table[b].block, b);
    EXPECT_EQ(table[b].page, view.pages[b]);
  }
  EXPECT_EQ(selected_tokens(table, view), 19u);
}

TEST(PageTable, SelectedTokensCountsPartialBlocks) {
  PageAllocator alloc(cfg(), 8);
  HeadCache head;
  std::vector<float> k(8, 0.0f), v(8, 0.0f);
  for (int t = 0; t < 19; ++t) head.append(alloc, k.data(), v.data());
  const auto view = head.view(alloc);
  const SelectedPageTable pruned{{view.pages[0], 0}, {view.pages[2], 2}};
  EXPECT_EQ(selected_tokens(pruned, view), 8u + 3u);
}

TEST(SequenceKvCache, IndependentHeadsShareThePool) {
  PageAllocator alloc(cfg(), 16);
  SequenceKvCache cache(/*layers=*/2, /*kv_heads=*/3);
  std::vector<float> k(8, 1.0f), v(8, 2.0f);
  cache.head(0, 0).append(alloc, k.data(), v.data());
  cache.head(1, 2).append(alloc, k.data(), v.data());
  EXPECT_EQ(cache.head(0, 0).tokens(), 1u);
  EXPECT_EQ(cache.head(1, 2).tokens(), 1u);
  EXPECT_EQ(cache.head(0, 1).tokens(), 0u);
  EXPECT_EQ(alloc.pages_in_use(), 2u);
  cache.release(alloc);
  EXPECT_EQ(alloc.pages_in_use(), 0u);
}

}  // namespace
}  // namespace lserve::kv
