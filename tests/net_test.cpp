// Tests for the network serving front-end (src/net): HTTP parser, JSON
// field extraction, SSE framing, event loop, and end-to-end loopback
// serving over HttpServer (streamed generation, disconnect-cancellation
// with full page reclamation, deadlines, backpressure).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "net/event_loop.hpp"
#include "obs/metrics.hpp"
#include "obs/step_tracer.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "serve/scheduler.hpp"

namespace lserve::net {
namespace {

// ---------------------------------------------------------------------------
// HttpParser.

TEST(HttpParser, ParsesSimpleGet) {
  HttpParser parser;
  const auto state =
      parser.feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(state, HttpParser::State::kComplete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  ASSERT_NE(parser.request().header("host"), nullptr);
  EXPECT_EQ(*parser.request().header("HOST"), "x");
}

TEST(HttpParser, ParsesPostBodyIncrementallyOneByteAtATime) {
  const std::string raw =
      "POST /v1/generate HTTP/1.1\r\nContent-Length: 11\r\n"
      "Content-Type: application/json\r\n\r\n{\"a\": 1234}";
  HttpParser parser;
  for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
    ASSERT_NE(parser.feed(std::string_view(&raw[i], 1)),
              HttpParser::State::kComplete)
        << "completed early at byte " << i;
    ASSERT_FALSE(parser.failed());
  }
  ASSERT_EQ(parser.feed(std::string_view(&raw.back(), 1)),
            HttpParser::State::kComplete);
  EXPECT_EQ(parser.request().body, "{\"a\": 1234}");
}

TEST(HttpParser, ToleratesBareLfAndMissingBody) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET / HTTP/1.1\nHost: y\n\n"),
            HttpParser::State::kComplete);
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParser, RejectsMalformedInput) {
  HttpParser line;
  EXPECT_EQ(line.feed("NONSENSE\r\n\r\n"), HttpParser::State::kError);

  HttpParser header;
  EXPECT_EQ(header.feed("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            HttpParser::State::kError);

  HttpParser proto;
  EXPECT_EQ(proto.feed("GET / SPDY/99\r\n\r\n"), HttpParser::State::kError);

  HttpParser chunked;
  EXPECT_EQ(
      chunked.feed(
          "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      HttpParser::State::kError);
}

TEST(HttpParser, EnforcesBodyLimit) {
  HttpParser::Limits limits;
  limits.max_body_bytes = 8;
  HttpParser parser(limits);
  EXPECT_EQ(parser.feed("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n"),
            HttpParser::State::kError);
}

TEST(HttpParser, ResetAllowsReuse) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET /a HTTP/1.1\r\n\r\n"),
            HttpParser::State::kComplete);
  parser.reset();
  ASSERT_EQ(parser.feed("GET /b HTTP/1.1\r\n\r\n"),
            HttpParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/b");
}

// ---------------------------------------------------------------------------
// JSON field extraction + SSE framing.

TEST(Json, FindsIntsAndArrays) {
  const std::string body =
      "{\"prompt_len\": 32, \"max_new_tokens\":8, "
      "\"prompt\": [ 1, 2 ,3, -4 ], \"seed\": -7}";
  EXPECT_EQ(json_find_int(body, "prompt_len").value_or(-1), 32);
  EXPECT_EQ(json_find_int(body, "max_new_tokens").value_or(-1), 8);
  EXPECT_EQ(json_find_int(body, "seed").value_or(0), -7);
  EXPECT_FALSE(json_find_int(body, "missing").has_value());
  const auto prompt = json_find_int_array(body, "prompt");
  ASSERT_TRUE(prompt.has_value());
  EXPECT_EQ(*prompt, (std::vector<std::int32_t>{1, 2, 3, -4}));
  EXPECT_FALSE(json_find_int_array(body, "prompt_len").has_value());
  EXPECT_FALSE(json_find_int_array(body, "nope").has_value());
  EXPECT_FALSE(json_find_int_array("{\"a\": [1, 2", "a").has_value());
}

TEST(Sse, FramesEvents) {
  EXPECT_EQ(sse_event("token", "{\"index\":0}"),
            "event: token\ndata: {\"index\":0}\n\n");
  const std::string head = sse_response_head();
  EXPECT_NE(head.find("200 OK"), std::string::npos);
  EXPECT_NE(head.find("text/event-stream"), std::string::npos);
}

// ---------------------------------------------------------------------------
// EventLoop.

TEST(EventLoop, RunsPostedTasksFromOtherThreads) {
  EventLoop loop;
  std::atomic<int> ran{0};
  std::thread runner([&] { loop.run(); });
  for (int i = 0; i < 10; ++i) {
    loop.post([&] { ran.fetch_add(1); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ran.load() < 10 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  loop.stop();
  runner.join();
  EXPECT_EQ(ran.load(), 10);
}

TEST(EventLoop, DispatchesReadableFd) {
  EventLoop loop;
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  std::atomic<int> got{-1};
  loop.add(pipefd[0], kReadable, [&](std::uint32_t) {
    char c = 0;
    ASSERT_EQ(::read(pipefd[0], &c, 1), 1);
    got.store(c);
    loop.remove(pipefd[0]);
    loop.stop();
  });
  std::thread runner([&] { loop.run(); });
  const char byte = 'z';
  ASSERT_EQ(::write(pipefd[1], &byte, 1), 1);
  runner.join();
  EXPECT_EQ(got.load(), 'z');
  ::close(pipefd[0]);
  ::close(pipefd[1]);
}

// ---------------------------------------------------------------------------
// End-to-end loopback serving.

serve::EngineConfig engine_cfg() {
  serve::EngineConfig c = baselines::vllm_config(model::tiny());
  c.dense_pages.page_size = 8;
  c.dense_pages.logical_page_size = 8;
  c.tiling = {8, 8};
  c.pool_pages = 512;
  return c;
}

/// Ephemeral loopback port; everything else at defaults.
ServerConfig loopback_cfg() {
  ServerConfig cfg;
  cfg.port = 0;
  return cfg;
}

/// Blocking loopback client. Sends `request` and reads until `until` is
/// seen (or the peer closes / 30s passes); returns everything received.
std::string talk(std::uint16_t port, const std::string& request,
                 const std::string& until) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  timeval timeout{30, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  EXPECT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string received;
  char buf[4096];
  while (received.find(until) == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    received.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return received;
}

std::string post_generate(const std::string& body) {
  return "POST /v1/generate HTTP/1.1\r\nHost: t\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

/// Token values parsed from the SSE stream, in index order.
std::vector<std::int32_t> stream_tokens(const std::string& stream) {
  std::vector<std::int32_t> tokens;
  std::size_t pos = 0;
  while ((pos = stream.find("\"token\":", pos)) != std::string::npos) {
    tokens.push_back(std::atoi(stream.c_str() + pos + 8));
    pos += 8;
  }
  return tokens;
}

TEST(HttpServer, StreamsGenerationMatchingDirectEngineRun) {
  serve::Engine engine(engine_cfg());
  serve::Scheduler sched(engine, 4);
  HttpServer server(sched, loopback_cfg());
  const std::uint16_t port = server.start();

  const std::string stream = talk(
      port, post_generate("{\"prompt\":[5,18,31,44,57],"
                          "\"max_new_tokens\":6}"),
      "event: done");
  EXPECT_NE(stream.find("text/event-stream"), std::string::npos);
  EXPECT_NE(stream.find("\"status\":\"FINISHED\""), std::string::npos);

  // The streamed tokens are exactly what the engine produces directly.
  serve::Engine direct(engine_cfg());
  const auto seq = direct.create_sequence();
  const std::vector<std::int32_t> prompt{5, 18, 31, 44, 57};
  const auto expected =
      direct.generate(seq, std::span<const std::int32_t>(prompt), 6);
  EXPECT_EQ(stream_tokens(stream), expected);

  server.stop();
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
}

TEST(HttpServer, DisconnectMidStreamCancelsAndReclaimsPages) {
  serve::Engine engine(engine_cfg());
  serve::Scheduler sched(engine, 4);
  HttpServer server(sched, loopback_cfg());
  const std::uint16_t port = server.start();

  // A long stream we abandon after the first token event: reading until
  // the first "event: token" then closing is a mid-stream disconnect.
  const std::string partial = talk(
      port, post_generate("{\"prompt_len\":16,\"max_new_tokens\":512}"),
      "event: token");
  EXPECT_NE(partial.find("event: token"), std::string::npos);
  EXPECT_EQ(partial.find("event: done"), std::string::npos);

  // The server must cancel the request; every page goes back to the pool.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (sched.live_requests() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(sched.live_requests(), 0u);
  server.stop();
  // Read stats only after stop() joined the scheduler thread (the stats
  // object is scheduler-thread-only while serving).
  EXPECT_GE(sched.scheduler_stats().cancelled, 1u);
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
  EXPECT_EQ(engine.dense_allocator().free_pages(),
            engine.dense_allocator().capacity());
}

TEST(HttpServer, DeadlineSurfacesInTerminalEvent) {
  serve::Engine engine(engine_cfg());
  serve::Scheduler sched(engine, 4);
  HttpServer server(sched, loopback_cfg());
  const std::uint16_t port = server.start();

  const std::string stream = talk(
      port,
      post_generate("{\"prompt_len\":8,\"max_new_tokens\":512,"
                    "\"deadline_steps\":3}"),
      "event: done");
  EXPECT_NE(stream.find("\"status\":\"DEADLINE_EXCEEDED\""),
            std::string::npos);
  server.stop();
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
}

TEST(HttpServer, HealthzRespondsAndUnknownTargets404) {
  serve::Engine engine(engine_cfg());
  serve::Scheduler sched(engine, 4);
  HttpServer server(sched, loopback_cfg());
  const std::uint16_t port = server.start();

  const std::string health =
      talk(port, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n", "}");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);

  // Every non-2xx JSON body follows the structured error schema:
  // {"error":{"code":"...","message":"..."}}.
  const std::string missing =
      talk(port, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n", "}");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);
  EXPECT_NE(missing.find("{\"error\":{\"code\":\"not_found\""),
            std::string::npos);
  EXPECT_NE(missing.find("\"message\":"), std::string::npos);

  const std::string bad = talk(port, post_generate("{}"), "}");
  EXPECT_NE(bad.find("400 Bad Request"), std::string::npos);
  EXPECT_NE(bad.find("{\"error\":{\"code\":\"bad_request\""),
            std::string::npos);
  EXPECT_NE(bad.find("\"message\":"), std::string::npos);

  // A hostile prompt_len must be rejected without ever allocating.
  const std::string huge = talk(
      port, post_generate("{\"prompt_len\":9000000000000000000}"), "}");
  EXPECT_NE(huge.find("400 Bad Request"), std::string::npos);
  EXPECT_NE(huge.find("{\"error\":{\"code\":\"bad_request\""),
            std::string::npos);

  // Without a wired registry/tracer the observability endpoints 404 and
  // /healthz omits the occupancy fields rather than inventing zeros.
  EXPECT_EQ(health.find("\"pages_free\""), std::string::npos);
  const std::string metrics =
      talk(port, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n", "}");
  EXPECT_NE(metrics.find("404 Not Found"), std::string::npos);
  const std::string trace =
      talk(port, "GET /debug/trace HTTP/1.1\r\nHost: t\r\n\r\n", "}");
  EXPECT_NE(trace.find("404 Not Found"), std::string::npos);
  server.stop();
}

TEST(HttpServer, MetricsEndpointExposesPrometheusTelemetry) {
  serve::Engine engine(engine_cfg());
  obs::MetricsRegistry reg;
  obs::StepTracer tracer(64);
  serve::SchedulerConfig sc;
  sc.max_batch = 4;
  sc.metrics = &reg;
  sc.tracer = &tracer;
  serve::Scheduler sched(engine, sc);
  ServerConfig cfg = loopback_cfg();
  cfg.metrics = &reg;
  cfg.tracer = &tracer;
  HttpServer server(sched, cfg);
  const std::uint16_t port = server.start();

  // One full generation so the latency histograms hold real samples.
  const std::string stream = talk(
      port, post_generate("{\"prompt_len\":8,\"max_new_tokens\":4}"),
      "event: done");
  EXPECT_NE(stream.find("\"status\":\"FINISHED\""), std::string::npos);

  // The scrape connection closes after the flush, so read to EOF.
  const std::string page =
      talk(port, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n", "\xff");
  EXPECT_NE(page.find("200 OK"), std::string::npos);
  EXPECT_NE(page.find("text/plain; version=0.0.4"), std::string::npos);
  // Text-format shape: HELP/TYPE headers, cumulative histogram series.
  EXPECT_NE(page.find("# TYPE lserve_request_ttft_seconds histogram"),
            std::string::npos);
  EXPECT_NE(page.find("lserve_request_ttft_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(page.find("lserve_request_ttft_seconds_count 1"),
            std::string::npos);
  EXPECT_NE(page.find("lserve_request_tpot_seconds_count 3"),
            std::string::npos);
  // Lifecycle counters, routed-decode labels, and HTTP-layer counters all
  // land on the same page.
  EXPECT_NE(page.find("lserve_requests_finished_total 1"), std::string::npos);
  EXPECT_NE(page.find("lserve_scheduler_steps_total"), std::string::npos);
  EXPECT_NE(page.find("lserve_decode_route_steps_total{route=\"dense\"}"),
            std::string::npos);
  EXPECT_NE(page.find("lserve_decode_route_steps_total{route=\"sparse\"}"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE lserve_kv_pages_in_use gauge"),
            std::string::npos);
  EXPECT_NE(page.find("lserve_http_accepts_total"), std::string::npos);

  // /healthz reports occupancy and queue depth from the same registry.
  const std::string health =
      talk(port, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n", "}");
  EXPECT_NE(health.find("\"pages_free\":"), std::string::npos);
  EXPECT_NE(health.find("\"pages_total\":"), std::string::npos);
  EXPECT_NE(health.find("\"waiting\":0"), std::string::npos);
  EXPECT_EQ(health.find("\"pages_total\":0,"), std::string::npos)
      << "capacity gauge should be non-zero: " << health;
  server.stop();
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
}

TEST(HttpServer, DebugTraceEndpointExportsChromeTraceJson) {
  serve::Engine engine(engine_cfg());
  obs::MetricsRegistry reg;
  obs::StepTracer tracer(64);
  serve::SchedulerConfig sc;
  sc.max_batch = 4;
  sc.metrics = &reg;
  sc.tracer = &tracer;
  serve::Scheduler sched(engine, sc);
  ServerConfig cfg = loopback_cfg();
  cfg.metrics = &reg;
  cfg.tracer = &tracer;
  HttpServer server(sched, cfg);
  const std::uint16_t port = server.start();

  const std::string stream = talk(
      port, post_generate("{\"prompt_len\":8,\"max_new_tokens\":4}"),
      "event: done");
  EXPECT_NE(stream.find("\"status\":\"FINISHED\""), std::string::npos);

  const std::string trace =
      talk(port, "GET /debug/trace HTTP/1.1\r\nHost: t\r\n\r\n", "\xff");
  EXPECT_NE(trace.find("200 OK"), std::string::npos);
  EXPECT_NE(trace.find("application/json"), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"step\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"decode_batch\""), std::string::npos);
  server.stop();
}

TEST(HttpServer, BackpressureRejectsWith503) {
  serve::Engine engine(engine_cfg());
  serve::Scheduler sched(engine, 4);
  ServerConfig cfg;
  cfg.port = 0;
  cfg.max_live = 1;
  HttpServer server(sched, cfg);
  const std::uint16_t port = server.start();

  // Occupy the single live slot with a long-running stream on a separate
  // socket that stays open while the second request arrives.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string first =
      post_generate("{\"prompt_len\":16,\"max_new_tokens\":4096}");
  ASSERT_EQ(::send(fd, first.data(), first.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(first.size()));
  // Wait until the stream is live before probing the overload path.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (sched.live_requests() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(sched.live_requests(), 1u);

  const std::string rejected = talk(
      port, post_generate("{\"prompt_len\":8,\"max_new_tokens\":4}"), "}");
  EXPECT_NE(rejected.find("503 Service Unavailable"), std::string::npos);
  EXPECT_NE(rejected.find("{\"error\":{\"code\":\"overloaded\""),
            std::string::npos);
  EXPECT_NE(rejected.find("\"message\":"), std::string::npos);

  ::close(fd);  // disconnect-cancel the long stream.
  server.stop();
  EXPECT_EQ(engine.total_pages_in_use(), 0u);
}

}  // namespace
}  // namespace lserve::net
