// Tests for per-token asymmetric KV quantization (src/numeric/quant).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "numeric/quant.hpp"
#include "numeric/rng.hpp"

namespace lserve::num {
namespace {

std::vector<float> random_row(std::size_t n, float scale, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> row(n);
  rng.fill_gaussian(row, scale);
  return row;
}

TEST(QuantParams, CoverRange) {
  const std::vector<float> row{-2.0f, 0.0f, 3.0f};
  const QuantParams p = compute_quant_params(row.data(), row.size(), 8);
  // Min maps to code 0, max to code 255.
  EXPECT_NEAR((-2.0f) / p.scale + p.zero_point, 0.0f, 1e-3f);
  EXPECT_NEAR(3.0f / p.scale + p.zero_point, 255.0f, 1e-2f);
}

TEST(QuantParams, ConstantRowRoundTrips) {
  const std::vector<float> row(16, 1.25f);
  for (int bits : {4, 8}) {
    const QuantParams p = compute_quant_params(row.data(), row.size(), bits);
    EXPECT_GT(p.scale, 0.0f);
    std::vector<std::uint8_t> codes(16);
    std::vector<float> back(16);
    if (bits == 8) {
      quantize_row_int8(row.data(), 16, p, codes.data());
      dequantize_row_int8(codes.data(), 16, p, back.data());
    } else {
      quantize_row_int4(row.data(), 16, p, codes.data());
      dequantize_row_int4(codes.data(), 16, p, back.data());
    }
    for (float x : back) EXPECT_NEAR(x, 1.25f, 1e-4f);
  }
}

// Property: round-trip error is bounded by half a quantization step.
class QuantRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, float, std::size_t>> {};

TEST_P(QuantRoundTrip, ErrorWithinHalfStep) {
  const auto [bits, scale, n] = GetParam();
  const auto row = random_row(n, scale, 1000 + n + bits);
  const QuantParams p = compute_quant_params(row.data(), n, bits);
  const float bound = quant_error_bound(row.data(), n, bits) + 1e-6f;

  std::vector<std::uint8_t> codes(n);
  std::vector<float> back(n);
  if (bits == 8) {
    quantize_row_int8(row.data(), n, p, codes.data());
    dequantize_row_int8(codes.data(), n, p, back.data());
  } else {
    quantize_row_int4(row.data(), n, p, codes.data());
    dequantize_row_int4(codes.data(), n, p, back.data());
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(std::abs(back[i] - row[i]), bound)
        << "bits=" << bits << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantRoundTrip,
    ::testing::Combine(::testing::Values(4, 8),
                       ::testing::Values(0.1f, 1.0f, 10.0f),
                       ::testing::Values(std::size_t{7}, std::size_t{64},
                                         std::size_t{128})));

TEST(Int4Packing, OddLengthHandled) {
  const std::vector<float> row{1.0f, -1.0f, 0.5f};
  const QuantParams p = compute_quant_params(row.data(), 3, 4);
  std::vector<std::uint8_t> codes(2);
  std::vector<float> back(3);
  quantize_row_int4(row.data(), 3, p, codes.data());
  dequantize_row_int4(codes.data(), 3, p, back.data());
  const float bound = quant_error_bound(row.data(), 3, 4) + 1e-6f;
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_LE(std::abs(back[i] - row[i]), bound);
}

TEST(BytesPerElement, MatchesDtype) {
  EXPECT_DOUBLE_EQ(bytes_per_element(KvDtype::kFp16), 2.0);
  EXPECT_DOUBLE_EQ(bytes_per_element(KvDtype::kInt8), 1.0);
  EXPECT_DOUBLE_EQ(bytes_per_element(KvDtype::kInt4), 0.5);
  EXPECT_STREQ(dtype_name(KvDtype::kInt4), "int4");
}

class QuantizedRowsParam : public ::testing::TestWithParam<KvDtype> {};

TEST_P(QuantizedRowsParam, StoreLoadRoundTrip) {
  const KvDtype dtype = GetParam();
  const std::size_t rows = 5, dim = 32;
  QuantizedRows buf(rows, dim, dtype);
  Rng rng(77);
  std::vector<std::vector<float>> data(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    data[r] = random_row(dim, 2.0f, 50 + r);
    buf.store_row(r, data[r].data());
  }
  std::vector<float> back(dim);
  for (std::size_t r = 0; r < rows; ++r) {
    buf.load_row(r, back.data());
    const int bits = dtype == KvDtype::kInt4 ? 4 : 8;
    const float bound =
        dtype == KvDtype::kFp16
            ? 1e-7f
            : quant_error_bound(data[r].data(), dim, bits) + 1e-6f;
    for (std::size_t c = 0; c < dim; ++c) {
      EXPECT_LE(std::abs(back[c] - data[r][c]), bound);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDtypes, QuantizedRowsParam,
                         ::testing::Values(KvDtype::kFp16, KvDtype::kInt8,
                                           KvDtype::kInt4));

TEST(QuantizedRows, DeviceBytesScaleWithPrecision) {
  const std::size_t rows = 16, dim = 64;
  QuantizedRows fp(rows, dim, KvDtype::kFp16);
  QuantizedRows i8(rows, dim, KvDtype::kInt8);
  QuantizedRows i4(rows, dim, KvDtype::kInt4);
  EXPECT_DOUBLE_EQ(fp.device_bytes(), rows * dim * 2.0);
  EXPECT_GT(fp.device_bytes(), i8.device_bytes());
  EXPECT_GT(i8.device_bytes(), i4.device_bytes());
  // int8 payload + per-row meta: rows*dim + rows*4.
  EXPECT_DOUBLE_EQ(i8.device_bytes(), rows * dim * 1.0 + rows * 4.0);
}

TEST(QuantizedRows, Int4HalvesPayloadVsInt8) {
  const std::size_t rows = 8, dim = 128;
  QuantizedRows i8(rows, dim, KvDtype::kInt8);
  QuantizedRows i4(rows, dim, KvDtype::kInt4);
  const double meta = rows * 4.0;
  EXPECT_DOUBLE_EQ((i4.device_bytes() - meta) * 2.0,
                   i8.device_bytes() - meta);
}

TEST(QuantizedRows, QuantizationPreservesDotProductsApproximately) {
  // The selector and kernels rely on q.k being faithful after KV4.
  const std::size_t dim = 128;
  Rng rng(99);
  const auto key = random_row(dim, 1.0f, 3);
  const auto query = random_row(dim, 1.0f, 4);
  QuantizedRows buf(1, dim, KvDtype::kInt4);
  buf.store_row(0, key.data());
  std::vector<float> back(dim);
  buf.load_row(0, back.data());
  double exact = 0.0, approx = 0.0;
  for (std::size_t c = 0; c < dim; ++c) {
    exact += static_cast<double>(query[c]) * key[c];
    approx += static_cast<double>(query[c]) * back[c];
  }
  // Error bound: ||q||_1 * (scale/2).
  double l1 = 0.0;
  for (float x : query) l1 += std::abs(x);
  const double bound =
      l1 * (quant_error_bound(key.data(), dim, 4) + 1e-6);
  EXPECT_LE(std::abs(exact - approx), bound);
}

}  // namespace
}  // namespace lserve::num
