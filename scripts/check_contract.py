#!/usr/bin/env python3
"""Project concurrency/style contract checker (no toolchain required).

The third static-analysis layer, below clang's thread-safety pass and
clang-tidy: a handful of repo-specific rules that neither tool expresses.
Runs on any machine with python3 — CI runs it in the clang-analysis job,
and it is fast enough for a pre-commit hook.

Rules (see docs/CONCURRENCY.md for rationale):

  R1  thread-ownership   std::thread may only be constructed in the
                         designated thread owners: serve/thread_pool,
                         net/event_loop, net/server — plus tests, benches
                         and examples. (std::thread::id and
                         std::this_thread are fine anywhere: identity, not
                         ownership.)
  R2  no-stdout          Library code (src/) never writes to stdout:
                         no std::cout / printf / puts. Diagnostics go to
                         stderr (fprintf(stderr, ...)). Exemption:
                         net/serve_main.cpp, the CLI entry point.
  R3  include-guards     Every header under src/ carries #pragma once.
  R4  raii-locking       No bare .lock()/.unlock() calls in src/ outside
                         serve/thread_annotations.hpp — critical sections
                         use MutexLock (RAII) so early returns and
                         exceptions cannot leak a held lock.
  R5  annotated-mutexes  src/ declares no raw std::mutex /
                         std::condition_variable outside
                         serve/thread_annotations.hpp (use the annotated
                         Mutex/CondVar wrappers), and every `Mutex xxx_;`
                         member's file must contain at least one
                         GUARDED_BY(xxx_) — an unannotated mutex guards
                         nothing the analyzer can see.
  R6  nolint-justified   Every NOLINT / NOLINTNEXTLINE names the check it
                         silences and carries a `: reason` justification;
                         blanket NOLINTBEGIN regions are banned.
  R7  page-pinning       src/ code outside the allocator never binds a raw
                         Page&/Page* from anything but a pin: with the
                         tiered store a page's storage can be demoted the
                         moment no PagePin covers it, so every local
                         `Page& p = ...` must come from `.page()` on a
                         PagePin/PageWritePin, and no struct stores a
                         Page pointer/reference member. (Page parameters
                         are fine — the caller's pin covers the callee.)

Exit codes: 0 clean, 1 violations (one `path:line: rule: message` per
finding).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# R1: files allowed to construct std::thread.
THREAD_OWNERS = (
    "src/serve/thread_pool.",
    "src/net/event_loop.",
    "src/net/server.",   # owns the loop + scheduler serving threads
    "src/kv/page_allocator.",  # owns the tier prefetch thread
    "tests/",
    "bench/",
    "examples/",
)

# R7: the allocator and the page itself are the pin mechanism.
PAGE_PIN_EXEMPT = (
    "src/kv/page_allocator.",
    "src/kv/page.",
)

# R2: the CLI binary may print to stdout.
STDOUT_EXEMPT = ("src/net/serve_main.cpp",)

# R4/R5: the annotated wrapper layer itself touches the raw primitives.
WRAPPER = "src/serve/thread_annotations.hpp"

RE_STD_THREAD = re.compile(r"std::thread\b(?!::id)")
RE_STDOUT = re.compile(r"std::cout\b|\bprintf\s*\(|\bputs\s*\(")
RE_BARE_LOCK = re.compile(r"\.\s*(?:un)?lock\s*\(\s*\)")
RE_RAW_MUTEX = re.compile(r"std::mutex\b|std::condition_variable\b")
RE_MUTEX_MEMBER = re.compile(r"^\s*(?:mutable\s+)?Mutex\s+(\w+)\s*;")
RE_NOLINT = re.compile(r"NOLINT(NEXTLINE)?(BEGIN|END)?(\([^)]*\))?(:)?")
# R7: a local Page reference/pointer binding (`Page& p = ...`) and a Page
# pointer/reference member (`Page* p_;`). Parameter lists don't match:
# they have no `=` initializer and no trailing `;` on the declarator.
RE_PAGE_BINDING = re.compile(
    r"\b(?:kv::)?Page\s*[&*]\s*\w+\s*=\s*(?P<init>[^;]*)")
RE_PAGE_MEMBER = re.compile(r"^\s*(?:const\s+)?(?:kv::)?Page\s*[&*]\s*\w+\s*;")


def strip_comments_and_strings(line: str) -> str:
    """Crude but sufficient: drop // comments and string literal bodies."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return re.sub(r"//.*$", "", line)


def check_file(path: Path, findings: list[str]) -> None:
    rel = path.relative_to(REPO).as_posix()
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()

    in_src = rel.startswith("src/")

    # R3: headers must have an include guard.
    if in_src and rel.endswith(".hpp") and "#pragma once" not in text:
        findings.append(f"{rel}:1: include-guards: header lacks #pragma once")

    mutex_members: list[tuple[int, str]] = []

    for lineno, raw in enumerate(lines, start=1):
        code = strip_comments_and_strings(raw)

        # R1: std::thread ownership.
        if RE_STD_THREAD.search(code) and "std::this_thread" not in code:
            if not any(rel.startswith(p) or p in rel for p in THREAD_OWNERS):
                findings.append(
                    f"{rel}:{lineno}: thread-ownership: std::thread outside "
                    "thread_pool/event_loop/server (wrap work in ThreadPool "
                    "or post it to the EventLoop)")

        if in_src:
            # R2: no stdout in library code.
            if rel not in STDOUT_EXEMPT and RE_STDOUT.search(code):
                findings.append(
                    f"{rel}:{lineno}: no-stdout: library code writes to "
                    "stdout (use fprintf(stderr, ...) for diagnostics)")

            if rel != WRAPPER:
                # R4: RAII-only locking.
                if RE_BARE_LOCK.search(code):
                    findings.append(
                        f"{rel}:{lineno}: raii-locking: bare "
                        ".lock()/.unlock() (use MutexLock)")
                # R5a: no raw mutex/cv outside the wrapper.
                if RE_RAW_MUTEX.search(code):
                    findings.append(
                        f"{rel}:{lineno}: annotated-mutexes: raw std::mutex/"
                        "std::condition_variable (use lserve::Mutex/CondVar "
                        "from serve/thread_annotations.hpp)")

            m = RE_MUTEX_MEMBER.match(code)
            if m:
                mutex_members.append((lineno, m.group(1)))

            # R7: raw Page retention must flow through a pin.
            if not any(rel.startswith(p) for p in PAGE_PIN_EXEMPT):
                pb = RE_PAGE_BINDING.search(code)
                if pb and ".page()" not in pb.group("init") and \
                        "->page()" not in pb.group("init"):
                    findings.append(
                        f"{rel}:{lineno}: page-pinning: raw Page&/Page* "
                        "bound outside a pin scope (hold a PagePin/"
                        "PageWritePin and bind from .page())")
                if RE_PAGE_MEMBER.match(code):
                    findings.append(
                        f"{rel}:{lineno}: page-pinning: Page pointer/"
                        "reference stored as a member (store a PageId or "
                        "PageRef; pin at the point of use)")

        # R6: NOLINT must be targeted and justified (checked in raw line —
        # NOLINT lives in comments).
        for nl in RE_NOLINT.finditer(raw):
            if nl.group(2) == "END":
                continue  # closers need no second justification
            if nl.group(2) == "BEGIN":
                findings.append(
                    f"{rel}:{lineno}: nolint-justified: blanket NOLINTBEGIN "
                    "region (silence single lines, with a reason)")
                continue
            checks, colon = nl.group(3), nl.group(4)
            rest = raw[nl.end():].strip()
            if not checks or checks == "()":
                findings.append(
                    f"{rel}:{lineno}: nolint-justified: NOLINT without a "
                    "named check (write NOLINT(check-name): reason)")
            elif not colon or not rest:
                findings.append(
                    f"{rel}:{lineno}: nolint-justified: NOLINT without a "
                    "justification (write NOLINT(check-name): reason)")

    # R5b: every annotated-Mutex member must guard something in this file.
    for lineno, name in mutex_members:
        if f"GUARDED_BY({name})" not in text and \
           f"REQUIRES({name})" not in text:
            findings.append(
                f"{rel}:{lineno}: annotated-mutexes: Mutex member '{name}' "
                f"has no GUARDED_BY({name}) field in this file — an "
                "unannotated mutex guards nothing the analyzer can see")


def main() -> int:
    roots = ["src", "tests", "bench", "examples"]
    findings: list[str] = []
    n_files = 0
    for root in roots:
        base = REPO / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".cpp", ".hpp", ".h", ".cc"):
                continue
            n_files += 1
            check_file(path, findings)

    for f in findings:
        print(f)
    print(f"check_contract: {n_files} files, {len(findings)} violation(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
