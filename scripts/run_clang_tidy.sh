#!/usr/bin/env bash
# Runs the project clang-tidy gate (.clang-tidy) over every translation
# unit in src/, using the compile_commands.json from a CMake build dir.
#
# Usage:
#   scripts/run_clang_tidy.sh [build-dir]     # default: build
#
# Environment:
#   CLANG_TIDY   override the clang-tidy binary (default: first of
#                clang-tidy, clang-tidy-18..14 found on PATH)
#
# Exit codes: 0 clean, 1 findings, 2 environment problem (no clang-tidy
# or no compile_commands.json).
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac

tidy="${CLANG_TIDY:-}"
if [ -z "$tidy" ]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      tidy="$cand"
      break
    fi
  done
fi
if [ -z "$tidy" ] || ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_clang_tidy: no clang-tidy binary found (set CLANG_TIDY or" \
       "install clang-tidy); the gate runs in the clang-analysis CI job" >&2
  exit 2
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json not found —" \
       "configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 2
fi

# Every TU in the library + the serve binary. Tests/benches are covered by
# -Werror and the contract checker; tidy focuses on the shipped code.
files=$(cd "$repo_root" && find src -name '*.cpp' | sort)

echo "run_clang_tidy: $($tidy --version | head -n1)"
echo "run_clang_tidy: checking $(echo "$files" | wc -l) files"

status=0
for f in $files; do
  if ! (cd "$repo_root" && "$tidy" -p "$build_dir" --quiet "$f"); then
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "run_clang_tidy: clean"
else
  echo "run_clang_tidy: findings above (exit 1)" >&2
fi
exit "$status"
