// HTTP serving front-end: bridges socket lifecycle to scheduler lifecycle.
//
// Two threads per server:
//   - the event-loop thread runs a non-blocking poll(2) reactor over the
//     listener and every client connection (accept, parse, write SSE
//     frames);
//   - the scheduler thread drives the engine: it loops
//     Scheduler::run_until_idle() and sleeps in wait_for_work() between
//     bursts, so the event loop never blocks on a decode step.
//
// The bridge, per request:
//   - POST /v1/generate submits a Request whose on_token/on_done callbacks
//     (scheduler thread) post events onto the loop thread, which frames
//     them as Server-Sent Events: one `token` event per generated token
//     and one terminal `done` event carrying the RequestStatus
//     (FINISHED / CANCELLED / DEADLINE_EXCEEDED).
//   - Client disconnect mid-stream triggers Scheduler::cancel() — the
//     sequence's pages are reclaimed like preemption, but the request is
//     not re-queued.
//   - Backpressure defers admission: above ServerConfig::max_live the
//     server answers 503 instead of queueing unboundedly, and the
//     scheduler's own page-budget admission control keeps accepted
//     requests WAITING until their KV footprint fits.
//
// Endpoints:
//   POST /v1/generate   body: {"prompt":[ints]} or {"prompt_len":N}
//                       plus optional "max_new_tokens", "deadline_steps",
//                       "seed"  → text/event-stream
//   GET  /healthz       → application/json liveness + queue depth +
//                         page-pool occupancy (from the metrics registry)
//   GET  /metrics       → Prometheus text exposition (when wired)
//   GET  /debug/trace   → Chrome trace-event JSON of recent steps (when
//                         wired)
//
// The observability endpoints run entirely on the loop thread:
// expose_prometheus() reads lock-free atomics and export_chrome_json()
// holds only the tracer's ring mutex for the snapshot splice, so a scrape
// never blocks the scheduler thread mid-step.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/event_loop.hpp"
#include "net/http.hpp"
#include "obs/metrics.hpp"
#include "obs/step_tracer.hpp"
#include "serve/scheduler.hpp"

namespace lserve::net {

struct ServerConfig {
  /// Port to bind on 127.0.0.1 (0 = ephemeral; start() returns the bound
  /// port — the loopback tests/benches use this).
  std::uint16_t port = 8080;
  /// 503 when this many requests are already live in the scheduler
  /// (0 = unbounded). The first line of backpressure, ahead of the
  /// scheduler's page-budget admission control.
  std::size_t max_live = 0;
  std::size_t default_max_new_tokens = 16;
  std::size_t max_prompt_tokens = 64 * 1024;
  std::size_t max_new_tokens_cap = 4096;
  HttpParser::Limits http_limits;
  /// Observability sinks (optional, non-owning; normally the same objects
  /// wired into the SchedulerConfig so one registry serves the whole
  /// stack). Null disables GET /metrics / GET /debug/trace (404) and the
  /// net-layer counters.
  obs::MetricsRegistry* metrics = nullptr;
  obs::StepTracer* tracer = nullptr;
};

/// One HTTP/1.1 + SSE server over one Scheduler. start() spawns the two
/// threads; stop() cancels every live stream, waits for the scheduler to
/// reclaim their pages, and joins.
class HttpServer {
 public:
  HttpServer(serve::Scheduler& sched, ServerConfig cfg);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:cfg.port, starts the loop + scheduler threads, and
  /// returns the bound port. Throws std::runtime_error on bind failure.
  std::uint16_t start();
  /// Idempotent: cancels live streams, drains the scheduler, stops and
  /// joins both threads, closes every socket.
  void stop();

  std::uint16_t port() const noexcept { return port_; }
  serve::Scheduler& scheduler() noexcept { return sched_; }
  /// Streams the server has accepted but not yet finished (thread-safe,
  /// approximate between events).
  std::size_t active_streams() const noexcept { return active_streams_; }

 private:
  struct Connection {
    int fd = -1;
    HttpParser parser;
    std::string outbuf;
    bool streaming = false;       ///< SSE response in progress.
    std::uint64_t request_id = 0;
    bool close_after_flush = false;
  };

  // Loop-thread handlers.
  void on_accept();
  void on_connection_event(int fd, std::uint32_t events);
  void route(Connection& conn);
  void handle_generate(Connection& conn);
  void handle_healthz(Connection& conn);
  void handle_metrics(Connection& conn);
  void handle_trace(Connection& conn);
  void respond(Connection& conn, int status, std::string_view reason,
               std::string_view body);
  void flush(Connection& conn);
  void close_connection(int fd, bool cancel_stream);
  // Scheduler-thread → loop-thread event delivery.
  void post_token(std::uint64_t request_id, std::int32_t token,
                  std::size_t index);
  void post_done(const serve::RequestResult& result);

  // Thread ownership (the server itself holds no lock; every field below
  // is single-writer — machine-checkable pieces live in EventLoop and
  // Scheduler, whose cross-thread surfaces are GUARDED_BY-annotated):
  //   - loop-thread state: conns_, streams_ (and all Connection objects);
  //   - control-thread state (start()/stop() caller): listen_fd_, port_,
  //     the two std::thread handles, started_;
  //   - cross-thread: the two atomics, plus everything reached through
  //     sched_ (inbox-locked) and loop_ (task-queue-locked).
  serve::Scheduler& sched_;
  ServerConfig cfg_;
  EventLoop loop_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  // The server owns the process's two serving threads; raw std::thread
  // use outside thread_pool/event_loop is restricted to this file by
  // scripts/check_contract.py.
  std::thread loop_thread_;
  std::thread sched_thread_;
  bool started_ = false;
  std::atomic<bool> sched_dead_{false};  ///< engine poisoned; answer 500.
  std::atomic<std::size_t> active_streams_{0};

  // Loop-thread-owned (no locks: only loop-thread code touches them).
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::unordered_map<std::uint64_t, int> streams_;  ///< request id → fd.

  // Net-layer event counters, resolved once at construction (null when
  // cfg_.metrics is null). Counter::inc is atomic, but these are only
  // bumped from the loop thread anyway.
  obs::Counter* accepts_ = nullptr;
  obs::Counter* sheds_ = nullptr;
  obs::Counter* sse_stalls_ = nullptr;
  obs::Counter* disconnect_cancels_ = nullptr;
};

}  // namespace lserve::net
