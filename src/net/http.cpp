#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace lserve::net {

namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

const std::string* HttpRequest::header(
    std::string_view name) const noexcept {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return &value;
  }
  return nullptr;
}

void HttpParser::fail(std::string message) {
  state_ = State::kError;
  error_ = std::move(message);
}

void HttpParser::reset() {
  state_ = State::kHeaders;
  buf_.clear();
  body_expected_ = 0;
  req_ = HttpRequest{};
  error_.clear();
}

HttpParser::State HttpParser::feed(std::string_view data) {
  if (state_ == State::kComplete || state_ == State::kError) return state_;
  buf_.append(data);

  if (state_ == State::kHeaders) {
    if (buf_.size() > limits_.max_header_bytes) {
      fail("header section exceeds limit");
      return state_;
    }
    // Tolerate bare-LF line endings alongside CRLF (curl always sends
    // CRLF; hand-rolled test clients may not).
    std::size_t head_end = buf_.find("\r\n\r\n");
    std::size_t sep = 4;
    if (head_end == std::string::npos) {
      head_end = buf_.find("\n\n");
      sep = 2;
    }
    if (head_end == std::string::npos) return state_;

    const std::string head = buf_.substr(0, head_end);
    buf_.erase(0, head_end + sep);
    // Parse the request line + headers out of `head`.
    std::size_t pos = 0;
    bool first = true;
    while (pos <= head.size()) {
      std::size_t eol = head.find('\n', pos);
      if (eol == std::string::npos) eol = head.size();
      std::string_view line(head.data() + pos, eol - pos);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      pos = eol + 1;
      if (first) {
        const std::size_t sp1 = line.find(' ');
        const std::size_t sp2 =
            sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
        if (sp1 == std::string_view::npos ||
            sp2 == std::string_view::npos) {
          fail("malformed request line");
          return state_;
        }
        req_.method = std::string(line.substr(0, sp1));
        req_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
        req_.version = std::string(line.substr(sp2 + 1));
        if (req_.version.rfind("HTTP/", 0) != 0) {
          fail("unsupported protocol version");
          return state_;
        }
        first = false;
      } else if (!line.empty()) {
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) {
          fail("malformed header line");
          return state_;
        }
        req_.headers.emplace_back(
            std::string(trim(line.substr(0, colon))),
            std::string(trim(line.substr(colon + 1))));
      }
    }
    if (first) {
      fail("empty request head");
      return state_;
    }

    if (const std::string* te = req_.header("Transfer-Encoding");
        te != nullptr && !iequals(*te, "identity")) {
      fail("Transfer-Encoding not supported");
      return state_;
    }
    if (const std::string* cl = req_.header("Content-Length")) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(cl->c_str(), &end, 10);
      if (end == cl->c_str() || *end != '\0') {
        fail("malformed Content-Length");
        return state_;
      }
      if (n > limits_.max_body_bytes) {
        fail("body exceeds limit");
        return state_;
      }
      body_expected_ = static_cast<std::size_t>(n);
    }
    state_ = State::kBody;
  }

  if (state_ == State::kBody) {
    if (buf_.size() >= body_expected_) {
      req_.body = buf_.substr(0, body_expected_);
      buf_.erase(0, body_expected_);
      state_ = State::kComplete;
    }
  }
  return state_;
}

std::string http_response(int status, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    std::string(reason) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

std::string sse_response_head() {
  return
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: text/event-stream\r\n"
      "Cache-Control: no-store\r\n"
      "Connection: close\r\n\r\n";
}

std::string sse_event(std::string_view event, std::string_view data) {
  std::string out = "event: ";
  out += event;
  out += "\ndata: ";
  out += data;
  out += "\n\n";
  return out;
}

namespace {

/// Position just past `"key"` followed by ':', or npos.
std::size_t find_key_value(std::string_view body, std::string_view key) {
  // Built by append (not operator+) to sidestep GCC 12's spurious
  // -Wrestrict on small string concatenations.
  std::string quoted;
  quoted.reserve(key.size() + 2);
  quoted.push_back('"');
  quoted.append(key);
  quoted.push_back('"');
  std::size_t pos = 0;
  while ((pos = body.find(quoted, pos)) != std::string_view::npos) {
    std::size_t after = pos + quoted.size();
    while (after < body.size() &&
           std::isspace(static_cast<unsigned char>(body[after]))) {
      ++after;
    }
    if (after < body.size() && body[after] == ':') return after + 1;
    pos += quoted.size();
  }
  return std::string_view::npos;
}

std::optional<std::int64_t> parse_int_at(std::string_view body,
                                         std::size_t& pos) {
  while (pos < body.size() &&
         std::isspace(static_cast<unsigned char>(body[pos]))) {
    ++pos;
  }
  const char* start = body.data() + pos;
  char* end = nullptr;
  const long long v = std::strtoll(start, &end, 10);
  if (end == start) return std::nullopt;
  pos += static_cast<std::size_t>(end - start);
  return v;
}

}  // namespace

std::optional<std::int64_t> json_find_int(std::string_view body,
                                          std::string_view key) {
  std::size_t pos = find_key_value(body, key);
  if (pos == std::string_view::npos) return std::nullopt;
  return parse_int_at(body, pos);
}

std::optional<std::vector<std::int32_t>> json_find_int_array(
    std::string_view body, std::string_view key) {
  std::size_t pos = find_key_value(body, key);
  if (pos == std::string_view::npos) return std::nullopt;
  while (pos < body.size() &&
         std::isspace(static_cast<unsigned char>(body[pos]))) {
    ++pos;
  }
  if (pos >= body.size() || body[pos] != '[') return std::nullopt;
  ++pos;
  std::vector<std::int32_t> out;
  for (;;) {
    while (pos < body.size() &&
           (std::isspace(static_cast<unsigned char>(body[pos])) ||
            body[pos] == ',')) {
      ++pos;
    }
    if (pos >= body.size()) return std::nullopt;  // unterminated array.
    if (body[pos] == ']') return out;
    const auto v = parse_int_at(body, pos);
    if (!v) return std::nullopt;
    out.push_back(static_cast<std::int32_t>(*v));
  }
}

}  // namespace lserve::net
