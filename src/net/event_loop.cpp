#include "net/event_loop.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

namespace lserve::net {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("net: fcntl(O_NONBLOCK) failed");
  }
}

EventLoop::EventLoop() {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    throw std::runtime_error("EventLoop: pipe() failed");
  }
  wake_read_ = pipefd[0];
  wake_write_ = pipefd[1];
  set_nonblocking(wake_read_);
  set_nonblocking(wake_write_);
}

EventLoop::~EventLoop() {
  ::close(wake_read_);
  ::close(wake_write_);
}

void EventLoop::add(int fd, std::uint32_t interest, IoHandler handler) {
  fds_[fd] = Entry{interest, std::move(handler), next_gen_++};
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  const auto it = fds_.find(fd);
  if (it != fds_.end()) it->second.interest = interest;
}

void EventLoop::remove(int fd) { fds_.erase(fd); }

void EventLoop::post(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
}

void EventLoop::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
}

void EventLoop::drain_tasks() {
  std::vector<Task> tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks.swap(tasks_);
  }
  for (Task& task : tasks) task();
}

void EventLoop::run() {
  std::vector<pollfd> pfds;
  /// pfds[i] watches order[i].first, registered as generation .second.
  std::vector<std::pair<int, std::uint64_t>> order;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) {
        stop_ = false;  // re-runnable (tests start/stop the same loop).
        return;
      }
    }
    drain_tasks();

    pfds.clear();
    order.clear();
    pfds.push_back(pollfd{wake_read_, POLLIN, 0});
    order.emplace_back(wake_read_, 0);
    for (const auto& [fd, entry] : fds_) {
      short events = 0;
      if (entry.interest & kReadable) events |= POLLIN;
      if (entry.interest & kWritable) events |= POLLOUT;
      pfds.push_back(pollfd{fd, events, 0});
      order.emplace_back(fd, entry.gen);
    }

    const int ready = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/500);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("EventLoop: poll() failed");
    }

    if (pfds[0].revents != 0) {
      char buf[256];
      while (::read(wake_read_, buf, sizeof(buf)) > 0) {
      }
    }
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      // A handler may have removed this fd while handling an earlier
      // one — or removed it AND a new connection re-registered the same
      // fd number (accept reuses the lowest free fd). The generation
      // check keeps stale results away from the new registration.
      const auto it = fds_.find(order[i].first);
      if (it == fds_.end() || it->second.gen != order[i].second) continue;
      std::uint32_t events = 0;
      if (pfds[i].revents & POLLIN) events |= kReadable;
      if (pfds[i].revents & POLLOUT) events |= kWritable;
      if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) events |= kError;
      // Copy: the handler may remove/replace its own entry.
      const IoHandler handler = it->second.handler;
      handler(events);
    }
  }
}

}  // namespace lserve::net
