#include "net/event_loop.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

namespace lserve::net {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("net: fcntl(O_NONBLOCK) failed");
  }
}

EventLoop::EventLoop() {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    throw std::runtime_error("EventLoop: pipe() failed");
  }
  wake_read_ = pipefd[0];
  wake_write_ = pipefd[1];
  set_nonblocking(wake_read_);
  set_nonblocking(wake_write_);
}

EventLoop::~EventLoop() {
  ::close(wake_read_);
  ::close(wake_write_);
}

void EventLoop::add(int fd, std::uint32_t interest, IoHandler handler) {
  fds_[fd] = Entry{interest, std::move(handler), next_gen_++};
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  const auto it = fds_.find(fd);
  if (it != fds_.end()) it->second.interest = interest;
}

void EventLoop::remove(int fd) { fds_.erase(fd); }

void EventLoop::wake() {
  // Retry on EINTR: a signal landing between the task enqueue and the
  // pipe write used to drop the wakeup byte entirely, leaving the posted
  // task (or a stop()) stranded until the next poll timeout or io event —
  // the classic missed-signal bug, surfaced while annotating this file
  // (the old inline write was [[maybe_unused]]-ignored). EAGAIN needs no
  // retry: a full pipe already guarantees a pending wakeup.
  const char byte = 1;
  ssize_t n;
  do {
    n = ::write(wake_write_, &byte, 1);
  } while (n < 0 && errno == EINTR);
}

void EventLoop::post(Task task) {
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::stop() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  wake();
}

void EventLoop::drain_tasks() {
  std::vector<Task> tasks;
  {
    MutexLock lock(mu_);
    tasks.swap(tasks_);
  }
  for (Task& task : tasks) task();
}

void EventLoop::run() {
  std::vector<pollfd> pfds;
  /// pfds[i] watches order[i].first, registered as generation .second.
  std::vector<std::pair<int, std::uint64_t>> order;
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_) {
        stop_ = false;  // re-runnable (tests start/stop the same loop).
        return;
      }
    }
    drain_tasks();

    pfds.clear();
    order.clear();
    pfds.push_back(pollfd{wake_read_, POLLIN, 0});
    order.emplace_back(wake_read_, 0);
    for (const auto& [fd, entry] : fds_) {
      short events = 0;
      if (entry.interest & kReadable) events |= POLLIN;
      if (entry.interest & kWritable) events |= POLLOUT;
      pfds.push_back(pollfd{fd, events, 0});
      order.emplace_back(fd, entry.gen);
    }

    const int ready = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/500);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("EventLoop: poll() failed");
    }

    if (pfds[0].revents != 0) {
      // Drain every pending wakeup byte; retry EINTR so an interrupted
      // read cannot leave stale bytes that turn every later poll() into
      // a busy spin.
      char buf[256];
      ssize_t n;
      do {
        n = ::read(wake_read_, buf, sizeof(buf));
      } while (n > 0 || (n < 0 && errno == EINTR));
    }
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      // A handler may have removed this fd while handling an earlier
      // one — or removed it AND a new connection re-registered the same
      // fd number (accept reuses the lowest free fd). The generation
      // check keeps stale results away from the new registration.
      const auto it = fds_.find(order[i].first);
      if (it == fds_.end() || it->second.gen != order[i].second) continue;
      std::uint32_t events = 0;
      if (pfds[i].revents & POLLIN) events |= kReadable;
      if (pfds[i].revents & POLLOUT) events |= kWritable;
      if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) events |= kError;
      // Copy: the handler may remove/replace its own entry.
      const IoHandler handler = it->second.handler;
      handler(events);
    }
  }
}

}  // namespace lserve::net
