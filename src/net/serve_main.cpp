// lserve_serve — the network serving front-end binary.
//
// Wires EngineConfig + SchedulerConfig + ServerConfig from argv, then
// serves streamed generation over loopback HTTP/1.1 + SSE until
// SIGINT/SIGTERM:
//
//   lserve_serve --port=8080 --model=small --max-batch=8
//                --decode-threads=0 --page-budget=0 --prefill-chunk=128
//                --deadline-steps=0 --max-live=64
//
//   curl -sN -d '{"prompt_len":32,"max_new_tokens":8}'
//        http://127.0.0.1:8080/v1/generate
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baselines/baseline_engines.hpp"
#include "kv/memory_config.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/step_tracer.hpp"
#include "serve/scheduler.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Options {
  std::uint16_t port = 8080;
  std::string model = "small";
  std::size_t max_batch = 8;
  std::size_t decode_threads = 1;
  /// Consolidated memory knobs: --page-budget, --prefix-cache-pages,
  /// --hot-pages, --cold-bytes (kv/memory_config.hpp parses them).
  lserve::kv::MemoryConfig memory;
  std::size_t prefill_chunk = 128;
  std::size_t deadline_steps = 0;
  std::size_t max_live = 64;
  std::size_t trace_steps = 256;  ///< /debug/trace ring capacity.
};

bool parse_size(const char* arg, const char* key, std::size_t& out) {
  const std::size_t klen = std::strlen(key);
  if (std::strncmp(arg, key, klen) != 0 || arg[klen] != '=') return false;
  out = static_cast<std::size_t>(std::strtoull(arg + klen + 1, nullptr, 10));
  return true;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port=N] [--model=tiny|small] [--max-batch=N]\n"
      "          [--decode-threads=N (0=hw)]\n"
      "          %s\n"
      "          [--prefill-chunk=N (0=monolithic)]\n"
      "          [--deadline-steps=N (0=off)] [--max-live=N (0=off)]\n"
      "          [--trace-steps=N (/debug/trace ring capacity)]\n",
      argv0, lserve::kv::MemoryConfig::flag_help());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lserve;

  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::size_t v = 0;
    if (parse_size(argv[i], "--port", v)) {
      opt.port = static_cast<std::uint16_t>(v);
    } else if (std::strncmp(argv[i], "--model=", 8) == 0) {
      opt.model = argv[i] + 8;
    } else if (parse_size(argv[i], "--max-batch", opt.max_batch) ||
               parse_size(argv[i], "--decode-threads", opt.decode_threads) ||
               opt.memory.parse_flag(argv[i]) ||
               parse_size(argv[i], "--prefill-chunk", opt.prefill_chunk) ||
               parse_size(argv[i], "--deadline-steps", opt.deadline_steps) ||
               parse_size(argv[i], "--max-live", opt.max_live) ||
               parse_size(argv[i], "--trace-steps", opt.trace_steps)) {
      // parsed in the condition.
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  model::ModelConfig mc;
  if (opt.model == "tiny") {
    mc = model::tiny();
  } else if (opt.model == "small") {
    mc = model::small();
  } else {
    std::fprintf(stderr,
                 "unknown --model=%s (CPU presets: tiny, small)\n",
                 opt.model.c_str());
    return 2;
  }

  serve::EngineConfig ec = baselines::lserve_config(mc);
  ec.prefill_chunk_tokens = opt.prefill_chunk;
  // One MemoryConfig feeds both layers: the engine takes the prefix-cache
  // and tier knobs, the scheduler the admission budget.
  ec.memory = opt.memory;
  if (opt.memory.prefix_cache_pages > 0) ec.enable_prefix_cache = true;
  serve::Engine engine(ec);

  // One registry + tracer for the whole stack: the scheduler records into
  // them, the HTTP layer exposes them (GET /metrics, GET /debug/trace).
  obs::MetricsRegistry metrics;
  obs::StepTracer tracer(opt.trace_steps == 0 ? 1 : opt.trace_steps);

  serve::SchedulerConfig sc;
  sc.max_batch = opt.max_batch;
  sc.decode_threads = opt.decode_threads;
  sc.memory = opt.memory;
  sc.default_deadline_steps = opt.deadline_steps;
  sc.metrics = &metrics;
  sc.tracer = &tracer;
  serve::Scheduler sched(engine, sc);

  net::ServerConfig server_cfg;
  server_cfg.port = opt.port;
  server_cfg.max_live = opt.max_live;
  server_cfg.metrics = &metrics;
  server_cfg.tracer = &tracer;
  net::HttpServer server(sched, server_cfg);
  const std::uint16_t port = server.start();
  std::printf("lserve_serve: model=%s listening on http://127.0.0.1:%u\n",
              opt.model.c_str(), static_cast<unsigned>(port));
  std::fflush(stdout);  // CI greps this line before issuing requests.

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0) {
    // Sleep in short slices so a signal turns into a prompt, clean stop().
    struct timespec ts{0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::printf("lserve_serve: shutting down\n");
  server.stop();
  return 0;
}
