#include "net/server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <stdexcept>
#include <vector>

namespace lserve::net {

namespace {

/// Structured error schema shared by every non-2xx JSON response:
///   {"error":{"code":"<machine_readable>","message":"<human detail>"}}
/// Clients and the serve-smoke CI gate key on `code`; `message` is free
/// text. Messages are caller-controlled (no user bytes), so no escaping.
std::string error_body(const char* code, const std::string& message) {
  return std::string("{\"error\":{\"code\":\"") + code +
         "\",\"message\":\"" + message + "\"}}";
}


std::string status_json(const serve::RequestResult& result) {
  std::string out = "{\"status\":\"";
  out += serve::to_string(result.status);
  out += "\",\"request_id\":" + std::to_string(result.request_id);
  out += ",\"tokens\":" + std::to_string(result.output.size());
  out += ",\"preemptions\":" + std::to_string(result.preemptions);
  out += "}";
  return out;
}

}  // namespace

HttpServer::HttpServer(serve::Scheduler& sched, ServerConfig cfg)
    : sched_(sched), cfg_(cfg) {
  if (cfg_.metrics != nullptr) {
    accepts_ = &cfg_.metrics->counter("lserve_http_accepts_total",
                                      "TCP connections accepted.");
    sheds_ = &cfg_.metrics->counter(
        "lserve_http_sheds_total",
        "Generate requests answered 503 by the max_live backpressure "
        "gate.");
    sse_stalls_ = &cfg_.metrics->counter(
        "lserve_sse_backpressure_stalls_total",
        "Flushes deferred by a full socket buffer (slow SSE consumer).");
    disconnect_cancels_ = &cfg_.metrics->counter(
        "lserve_http_disconnect_cancels_total",
        "In-flight requests cancelled because their client disconnected "
        "mid-stream.");
  }
}

HttpServer::~HttpServer() { stop(); }

std::uint16_t HttpServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("HttpServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: bind/listen on 127.0.0.1:" +
                             std::to_string(cfg_.port) + " failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  loop_.add(listen_fd_, kReadable, [this](std::uint32_t) { on_accept(); });
  loop_thread_ = std::thread([this] { loop_.run(); });
  sched_thread_ = std::thread([this] {
    // The serving loop: drain all scheduler work, then sleep until a
    // submission or cancellation arrives. step() only throws once the
    // engine is genuinely poisoned (see Scheduler::step); after that the
    // front-end answers 500 instead of crashing the process.
    while (!sched_.stop_requested()) {
      try {
        sched_.run_until_idle();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[lserve_serve] scheduler thread: %s\n",
                     e.what());
        sched_dead_.store(true);
        return;
      }
      sched_.wait_for_work(std::chrono::milliseconds(50));
    }
  });
  started_ = true;
  return port_;
}

void HttpServer::stop() {
  if (!started_) return;
  started_ = false;

  // Cancel every live stream from the loop thread (streams_ is loop-owned)
  // and wait for the scheduler to process the cancellations — pages
  // reclaimed, on_done delivered — before tearing the threads down.
  loop_.post([this] {
    for (const auto& [id, fd] : streams_) sched_.cancel(id);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sched_.live_requests() > 0 && !sched_dead_.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // live_requests()==0 guarantees every on_done ran, but their posted
  // `done` events may still sit in the loop's task queue (and loop_.stop()
  // discards unprocessed tasks). A sentinel posted now runs after all of
  // them — once it fires, every terminal frame has been written out.
  {
    auto drained = std::make_shared<std::promise<void>>();
    std::future<void> drained_future = drained->get_future();
    loop_.post([drained] { drained->set_value(); });
    drained_future.wait_for(std::chrono::seconds(5));
  }

  sched_.request_stop();
  loop_.stop();
  if (sched_thread_.joinable()) sched_thread_.join();
  if (loop_thread_.joinable()) loop_thread_.join();

  for (const auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  streams_.clear();
  active_streams_.store(0);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::on_accept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;  // interrupted, not drained — retry.
      return;  // EAGAIN (or transient error): nothing queued.
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (accepts_ != nullptr) accepts_->inc();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->parser = HttpParser(cfg_.http_limits);
    conns_.emplace(fd, std::move(conn));
    loop_.add(fd, kReadable,
              [this, fd](std::uint32_t events) {
                on_connection_event(fd, events);
              });
  }
}

void HttpServer::close_connection(int fd, bool cancel_stream) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if (conn.streaming) {
    const auto sit = streams_.find(conn.request_id);
    if (sit != streams_.end() && sit->second == fd) {
      // Disconnect before the terminal event: abort the request so its
      // pages go back to the pool instead of decoding for a dead socket.
      if (cancel_stream) {
        sched_.cancel(conn.request_id);
        if (disconnect_cancels_ != nullptr) disconnect_cancels_->inc();
      }
      streams_.erase(sit);
      active_streams_.fetch_sub(1);
    }
  }
  loop_.remove(fd);
  ::close(fd);
  conns_.erase(it);
}

void HttpServer::on_connection_event(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;

  if (events & kError) {
    close_connection(fd, /*cancel_stream=*/true);
    return;
  }
  if (events & kReadable) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        // Bytes after a complete request on a streaming connection are
        // ignored (we don't pipeline); keep reading so disconnects are
        // still observed.
        if (!conn.parser.complete()) {
          conn.parser.feed(std::string_view(buf, static_cast<size_t>(n)));
          if (conn.parser.failed()) {
            // respond() may flush-and-close, destroying conn — return
            // without touching it again.
            respond(conn, 400, "Bad Request",
                    error_body("bad_request", conn.parser.error()));
            return;
          }
          if (conn.parser.complete()) {
            route(conn);
            // route() may close on error paths; re-check liveness.
            if (conns_.find(fd) == conns_.end()) return;
          }
        }
        continue;
      }
      if (n == 0) {  // peer closed.
        close_connection(fd, /*cancel_stream=*/true);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(fd, /*cancel_stream=*/true);
      return;
    }
  }
  if (events & kWritable) flush(conn);
}

void HttpServer::respond(Connection& conn, int status,
                         std::string_view reason, std::string_view body) {
  conn.outbuf += http_response(status, reason, "application/json", body);
  conn.close_after_flush = true;
  flush(conn);
}

void HttpServer::route(Connection& conn) {
  const HttpRequest& req = conn.parser.request();
  if (req.method == "POST" && req.target == "/v1/generate") {
    handle_generate(conn);
  } else if (req.method == "GET" && req.target == "/healthz") {
    handle_healthz(conn);
  } else if (req.method == "GET" && req.target == "/metrics") {
    handle_metrics(conn);
  } else if (req.method == "GET" && req.target == "/debug/trace") {
    handle_trace(conn);
  } else {
    respond(conn, 404, "Not Found",
            error_body("not_found", "no such endpoint"));
  }
}

void HttpServer::handle_healthz(Connection& conn) {
  std::string body = "{\"status\":\"";
  body += sched_dead_.load() ? "poisoned" : "ok";
  body += "\",\"live_requests\":" + std::to_string(sched_.live_requests());
  body += ",\"active_streams\":" + std::to_string(active_streams_.load());
  if (cfg_.metrics != nullptr) {
    // Occupancy comes from the same registry gauges /metrics exports (the
    // scheduler publishes them every step), so health and monitoring can
    // never disagree about capacity.
    const auto as_count = [](const obs::Gauge* g) {
      return std::to_string(
          g == nullptr ? 0 : static_cast<std::uint64_t>(g->value()));
    };
    body += ",\"pages_free\":" +
            as_count(cfg_.metrics->find_gauge("lserve_kv_pages_free"));
    body += ",\"pages_total\":" +
            as_count(cfg_.metrics->find_gauge("lserve_kv_pages_capacity"));
    body += ",\"waiting\":" +
            as_count(cfg_.metrics->find_gauge("lserve_sequences_waiting"));
  }
  body += "}";
  if (sched_dead_.load()) {
    respond(conn, 500, "Internal Server Error", body);
  } else {
    respond(conn, 200, "OK", body);
  }
}

void HttpServer::handle_metrics(Connection& conn) {
  if (cfg_.metrics == nullptr) {
    respond(conn, 404, "Not Found",
            error_body("not_found", "metrics not wired"));
    return;
  }
  // Built on the loop thread: the walk holds only the registration lock
  // and reads relaxed atomics — no scheduler involvement.
  conn.outbuf +=
      http_response(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                    cfg_.metrics->expose_prometheus());
  conn.close_after_flush = true;
  flush(conn);
}

void HttpServer::handle_trace(Connection& conn) {
  if (cfg_.tracer == nullptr) {
    respond(conn, 404, "Not Found",
            error_body("not_found", "tracing not wired"));
    return;
  }
  conn.outbuf += http_response(200, "OK", "application/json",
                               cfg_.tracer->export_chrome_json());
  conn.close_after_flush = true;
  flush(conn);
}

void HttpServer::handle_generate(Connection& conn) {
  if (sched_dead_.load()) {
    respond(conn, 500, "Internal Server Error",
            error_body("engine_poisoned",
                       "a decode batch failed; the engine is unusable"));
    return;
  }
  if (cfg_.max_live > 0 && sched_.live_requests() >= cfg_.max_live) {
    // Backpressure: defer admission to the client instead of queueing
    // unboundedly. 503 + Retry-After semantics are the open-loop bench's
    // "dropped" bucket.
    if (sheds_ != nullptr) sheds_->inc();
    respond(conn, 503, "Service Unavailable",
            error_body("overloaded",
                       "live request limit reached; retry later"));
    return;
  }

  const std::string& body = conn.parser.request().body;
  serve::Request req;
  if (const auto prompt = json_find_int_array(body, "prompt")) {
    req.prompt = *prompt;
  } else if (const auto len = json_find_int(body, "prompt_len");
             len && *len > 0 &&
             static_cast<std::uint64_t>(*len) <= cfg_.max_prompt_tokens) {
    // Synthetic prompt: deterministic in (len, seed) — the loopback
    // bench's traffic generator, and what the curl smoke test uses.
    // The bound is checked BEFORE the resize: a hostile prompt_len must
    // not drive an allocation.
    const std::int64_t seed = json_find_int(body, "seed").value_or(0);
    req.prompt.resize(static_cast<std::size_t>(*len));
    for (std::size_t i = 0; i < req.prompt.size(); ++i) {
      req.prompt[i] = static_cast<std::int32_t>(
          (i * 131 + static_cast<std::size_t>(seed) * 31 + 7) % 1021);
    }
  }
  if (req.prompt.empty() || req.prompt.size() > cfg_.max_prompt_tokens) {
    respond(conn, 400, "Bad Request",
            error_body("bad_request",
                       "prompt or prompt_len (1.." +
                           std::to_string(cfg_.max_prompt_tokens) +
                           ") required"));
    return;
  }
  req.max_new_tokens = static_cast<std::size_t>(
      json_find_int(body, "max_new_tokens")
          .value_or(static_cast<std::int64_t>(cfg_.default_max_new_tokens)));
  if (req.max_new_tokens == 0 ||
      req.max_new_tokens > cfg_.max_new_tokens_cap) {
    respond(conn, 400, "Bad Request",
            error_body("bad_request",
                       "max_new_tokens must be 1.." +
                           std::to_string(cfg_.max_new_tokens_cap)));
    return;
  }
  req.deadline_steps = static_cast<std::size_t>(
      json_find_int(body, "deadline_steps").value_or(0));

  // The callbacks run on the scheduler thread; they post the event onto
  // the loop thread, which owns all connection state.
  req.on_token = [this](std::uint64_t id, std::int32_t token,
                        std::size_t index) { post_token(id, token, index); };
  req.on_done = [this](const serve::RequestResult& result) {
    post_done(result);
  };

  const std::uint64_t id = sched_.submit(std::move(req));
  conn.streaming = true;
  conn.request_id = id;
  streams_.emplace(id, conn.fd);
  active_streams_.fetch_add(1);
  conn.outbuf += sse_response_head();
  flush(conn);
}

void HttpServer::post_token(std::uint64_t request_id, std::int32_t token,
                            std::size_t index) {
  loop_.post([this, request_id, token, index] {
    const auto sit = streams_.find(request_id);
    if (sit == streams_.end()) return;  // stream already torn down.
    const auto cit = conns_.find(sit->second);
    if (cit == conns_.end()) return;
    cit->second->outbuf +=
        sse_event("token", "{\"index\":" + std::to_string(index) +
                               ",\"token\":" + std::to_string(token) + "}");
    flush(*cit->second);
  });
}

void HttpServer::post_done(const serve::RequestResult& result) {
  const std::uint64_t request_id = result.request_id;
  std::string payload = status_json(result);
  loop_.post([this, request_id, payload = std::move(payload)] {
    const auto sit = streams_.find(request_id);
    if (sit == streams_.end()) return;
    const int fd = sit->second;
    streams_.erase(sit);
    active_streams_.fetch_sub(1);
    const auto cit = conns_.find(fd);
    if (cit == conns_.end()) return;
    Connection& conn = *cit->second;
    conn.streaming = false;  // terminal event sent; nothing to cancel.
    conn.outbuf += sse_event("done", payload);
    conn.close_after_flush = true;
    flush(conn);
  });
}

void HttpServer::flush(Connection& conn) {
  while (!conn.outbuf.empty()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full (slow consumer): wait for POLLOUT. Tokens keep
      // queueing in outbuf — the stream is not dropped, just deferred.
      if (sse_stalls_ != nullptr) sse_stalls_->inc();
      loop_.set_interest(conn.fd, kReadable | kWritable);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_connection(conn.fd, /*cancel_stream=*/true);  // EPIPE etc.
    return;
  }
  loop_.set_interest(conn.fd, kReadable);
  if (conn.close_after_flush) close_connection(conn.fd, false);
}

}  // namespace lserve::net
