// Minimal HTTP/1.1 surface for the serving front-end: an incremental
// request parser (request line + headers + Content-Length body — enough
// for curl and the loopback bench; no chunked encoding, no pipelining),
// response serialization, Server-Sent Events framing, and the tiny flat-
// JSON field extractors the /v1/generate body needs (kept dependency-free
// on purpose: the container bakes in no JSON library).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lserve::net {

/// One parsed request.
struct HttpRequest {
  std::string method;
  std::string target;   ///< origin-form, e.g. "/v1/generate".
  std::string version;  ///< "HTTP/1.1".
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* header(std::string_view name) const noexcept;
};

/// Incremental parser: feed() bytes as they arrive; kComplete exposes
/// request(). One parser parses one request (reset() to reuse the
/// connection).
class HttpParser {
 public:
  enum class State { kHeaders, kBody, kComplete, kError };

  struct Limits {
    std::size_t max_header_bytes = 16 * 1024;
    std::size_t max_body_bytes = 1024 * 1024;
  };

  HttpParser() = default;
  explicit HttpParser(Limits limits) : limits_(limits) {}

  /// Appends `data` and advances the state machine. Returns the state
  /// after consuming all of `data`; once kComplete or kError, further
  /// feed() calls are no-ops.
  State feed(std::string_view data);

  State state() const noexcept { return state_; }
  bool complete() const noexcept { return state_ == State::kComplete; }
  bool failed() const noexcept { return state_ == State::kError; }
  /// Valid once complete().
  const HttpRequest& request() const noexcept { return req_; }
  /// Human-readable parse failure (valid once failed()).
  const std::string& error() const noexcept { return error_; }

  void reset();

 private:
  void parse_headers();
  void fail(std::string message);

  Limits limits_;
  State state_ = State::kHeaders;
  std::string buf_;  ///< unconsumed bytes (head section, then body).
  std::size_t body_expected_ = 0;
  HttpRequest req_;
  std::string error_;
};

/// Serializes a non-streaming response with Content-Length and
/// Connection: close.
std::string http_response(int status, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body);

/// Response head that switches the connection into an SSE stream
/// (text/event-stream, no Content-Length; the stream ends when the server
/// closes the connection after the terminal event).
std::string sse_response_head();

/// One SSE frame: "event: <event>\ndata: <data>\n\n".
std::string sse_event(std::string_view event, std::string_view data);

// --- Flat-JSON field extraction -------------------------------------------
// The /v1/generate body is a flat object of integer and integer-array
// fields. These helpers scan for `"key"` at the top level and parse the
// value; they accept arbitrary whitespace and ignore unknown keys, and
// return nullopt for a missing key or a value of the wrong shape.

std::optional<std::int64_t> json_find_int(std::string_view body,
                                          std::string_view key);
std::optional<std::vector<std::int32_t>> json_find_int_array(
    std::string_view body, std::string_view key);

}  // namespace lserve::net
