// Single-threaded poll(2) event loop — the reactor under the HTTP serving
// front-end.
//
// One thread calls run(); it multiplexes every registered fd (listener,
// client sockets) plus an internal self-pipe that makes post() and stop()
// safe from any thread (the classic wakeup-pipe pattern, cf. the 80s/90s
// event servers). Handlers run on the loop thread, so per-connection state
// needs no locks; cross-thread producers (the scheduler thread's token
// callbacks) hand work over via post().
//
// poll(2) rather than epoll keeps the loop portable across the POSIX
// targets the repo builds on; at the tens-of-connections scale of the
// loopback benches the rebuild-the-pollfd-array cost is noise.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "serve/thread_annotations.hpp"

namespace lserve::net {

/// Event bits delivered to an fd handler (also its interest mask).
inline constexpr std::uint32_t kReadable = 1u << 0;
inline constexpr std::uint32_t kWritable = 1u << 1;
/// Error/hangup — always delivered regardless of interest.
inline constexpr std::uint32_t kError = 1u << 2;

/// Puts `fd` into O_NONBLOCK mode; throws std::runtime_error on failure.
/// Shared by the loop (wakeup pipe) and the server (listener, clients).
void set_nonblocking(int fd);

class EventLoop {
 public:
  using IoHandler = std::function<void(std::uint32_t events)>;
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with an interest mask (kReadable|kWritable). The
  /// handler runs on the loop thread. Loop-thread only.
  void add(int fd, std::uint32_t interest, IoHandler handler);
  /// Replaces the interest mask of a registered fd. Loop-thread only.
  void set_interest(int fd, std::uint32_t interest);
  /// Deregisters `fd` (does not close it). Safe from inside a handler,
  /// including the fd's own. Loop-thread only.
  void remove(int fd);
  bool watched(int fd) const { return fds_.count(fd) != 0; }

  /// Enqueues `task` to run on the loop thread and wakes the loop.
  /// Thread-safe; the only cross-thread entry point besides stop().
  void post(Task task) EXCLUDES(mu_);

  /// Dispatches events until stop(). Tasks posted before run() execute on
  /// the first iteration.
  void run() EXCLUDES(mu_);
  /// Makes run() return after the current iteration. Thread-safe.
  void stop() EXCLUDES(mu_);

 private:
  void drain_tasks() EXCLUDES(mu_);
  /// Writes one byte to the wakeup pipe, retrying on EINTR — an
  /// interrupted write is a silently missed wakeup otherwise. EAGAIN is
  /// fine: a full pipe already guarantees a pending wakeup.
  void wake();

  struct Entry {
    std::uint32_t interest = 0;
    IoHandler handler;
    /// Registration generation: a handler may close its fd and a later
    /// handler in the same dispatch round (accept) may reuse the number;
    /// stale poll results must not be delivered to the new registration.
    std::uint64_t gen = 0;
  };
  /// Loop-thread-only state (registration API is loop-thread only by
  /// contract — see the header comment — so none of this is guarded).
  std::unordered_map<int, Entry> fds_;
  std::uint64_t next_gen_ = 1;
  int wake_read_ = -1;
  int wake_write_ = -1;

  /// Cross-thread surface; mu_ is a leaf lock (never held while a task
  /// or handler runs, never held across a write to the wakeup pipe).
  Mutex mu_;
  std::vector<Task> tasks_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace lserve::net
