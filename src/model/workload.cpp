#include "model/workload.hpp"

#include <cassert>
#include <cmath>

#include "numeric/math.hpp"
#include "numeric/rng.hpp"

namespace lserve::model {

TokenStream smooth_stream(const StreamConfig& cfg) {
  num::Rng rng(cfg.seed);
  const std::size_t n = cfg.n_tokens;
  const std::size_t d = cfg.head_dim;
  TokenStream s{num::Tensor(n, d), num::Tensor(n, d)};

  const float rho = cfg.locality;
  const float fresh = std::sqrt(std::max(0.0f, 1.0f - rho * rho));
  // Per-channel scale keeps key norms ~ key_scale regardless of dim.
  const float chan = cfg.key_scale / std::sqrt(static_cast<float>(d));

  std::vector<float> walk(d, 0.0f);
  for (std::size_t c = 0; c < d; ++c) walk[c] = rng.gaussian(0.0f, chan);

  for (std::size_t t = 0; t < n; ++t) {
    float* key = s.keys.row(t);
    float* val = s.values.row(t);
    for (std::size_t c = 0; c < d; ++c) {
      walk[c] = rho * walk[c] + fresh * rng.gaussian(0.0f, chan);
      key[c] = walk[c];
      val[c] = rng.gaussian(0.0f, chan);
    }
    if (t < cfg.sink_tokens) {
      num::scale(cfg.sink_boost, key, d);
    } else if (cfg.distractor_rate > 0.0f &&
               rng.next_double() < cfg.distractor_rate) {
      const std::vector<float> dir = rng.unit_vector(d);
      for (std::size_t c = 0; c < d; ++c) {
        key[c] = cfg.distractor_strength * dir[c];
      }
    }
  }
  return s;
}

float salient_strength(std::size_t n_tokens, std::size_t head_dim,
                       float margin) {
  const double score = std::log(static_cast<double>(n_tokens) + 1.0) + margin;
  const double product = score * std::sqrt(static_cast<double>(head_dim));
  return static_cast<float>(std::sqrt(product));
}

Needle plant_needle(TokenStream& stream, std::size_t pos, float strength,
                    std::uint64_t seed) {
  assert(pos < stream.keys.rows());
  const std::size_t d = stream.keys.cols();
  num::Rng rng(seed);
  Needle needle;
  needle.pos = pos;
  needle.direction = rng.unit_vector(d);
  needle.payload = rng.unit_vector(d);
  float* key = stream.keys.row(pos);
  float* val = stream.values.row(pos);
  for (std::size_t c = 0; c < d; ++c) {
    key[c] = strength * needle.direction[c];
    val[c] = needle.payload[c];
  }
  return needle;
}

std::vector<float> probe_query(const Needle& needle, float strength,
                               float noise, std::uint64_t seed) {
  num::Rng rng(seed);
  const std::size_t d = needle.direction.size();
  std::vector<float> q(d);
  for (std::size_t c = 0; c < d; ++c) {
    q[c] = strength * needle.direction[c] +
           noise * strength * rng.gaussian() /
               std::sqrt(static_cast<float>(d));
  }
  return q;
}

std::vector<Needle> plant_chain(TokenStream& stream,
                                const std::vector<std::size_t>& positions,
                                float strength, std::uint64_t seed) {
  std::vector<Needle> chain;
  chain.reserve(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    chain.push_back(plant_needle(stream, positions[i], strength,
                                 num::split_seed(seed, i)));
  }
  // Rewrite payloads so hop i points at hop i+1's key direction.
  const std::size_t d = stream.keys.cols();
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    chain[i].payload = chain[i + 1].direction;
    float* val = stream.values.row(chain[i].pos);
    for (std::size_t c = 0; c < d; ++c) val[c] = chain[i].payload[c];
  }
  return chain;
}

AggregationPlant plant_aggregation(TokenStream& stream,
                                   const std::vector<std::size_t>& positions,
                                   float strength, std::uint64_t seed) {
  num::Rng rng(seed);
  const std::size_t d = stream.keys.cols();
  AggregationPlant plant;
  plant.direction = rng.unit_vector(d);
  plant.positions = positions;
  plant.payloads.reserve(positions.size());
  for (std::size_t pos : positions) {
    assert(pos < stream.keys.rows());
    std::vector<float> payload = rng.unit_vector(d);
    float* key = stream.keys.row(pos);
    float* val = stream.values.row(pos);
    for (std::size_t c = 0; c < d; ++c) {
      key[c] = strength * plant.direction[c];
      val[c] = payload[c];
    }
    plant.payloads.push_back(std::move(payload));
  }
  return plant;
}

}  // namespace lserve::model
