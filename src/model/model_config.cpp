#include "model/model_config.hpp"

namespace lserve::model {

std::size_t ModelConfig::parameter_count() const noexcept {
  const std::size_t h = hidden();
  const std::size_t kv = kv_dim();
  // Per layer: Wq (h*h), Wk/Wv (h*kv each), Wo (h*h), SwiGLU FFN
  // (up + gate + down). Embedding and lm_head counted separately (Llama-3
  // unties them).
  const std::size_t per_layer =
      h * h + 2 * h * kv + h * h + 3 * h * ffn_hidden;
  return layers * per_layer + 2 * vocab * h;
}

ModelConfig llama3_8b() {
  ModelConfig cfg;
  cfg.name = "Llama-3-8B";
  cfg.layers = 32;
  cfg.q_heads = 32;
  cfg.kv_heads = 8;
  cfg.head_dim = 128;
  cfg.ffn_hidden = 14336;
  cfg.vocab = 128256;
  cfg.rope_base = 500000.0f;
  return cfg;
}

ModelConfig llama2_7b() {
  ModelConfig cfg;
  cfg.name = "Llama-2-7B";
  cfg.layers = 32;
  cfg.q_heads = 32;
  cfg.kv_heads = 32;
  cfg.head_dim = 128;
  cfg.ffn_hidden = 11008;
  cfg.vocab = 32000;
  cfg.rope_base = 10000.0f;
  return cfg;
}

ModelConfig minitron_4b() {
  ModelConfig cfg;
  cfg.name = "Minitron-4B";
  cfg.layers = 32;
  cfg.q_heads = 24;
  cfg.kv_heads = 8;
  cfg.head_dim = 128;
  cfg.ffn_hidden = 9216;
  cfg.vocab = 256000;
  cfg.rope_base = 10000.0f;
  return cfg;
}

ModelConfig ds_r1_llama_8b() {
  ModelConfig cfg = llama3_8b();
  cfg.name = "DS-R1-Llama-8B";
  return cfg;
}

ModelConfig tiny() {
  ModelConfig cfg;
  cfg.name = "tiny";
  cfg.layers = 2;
  cfg.q_heads = 4;
  cfg.kv_heads = 2;
  cfg.head_dim = 32;
  cfg.ffn_hidden = 256;
  cfg.vocab = 256;
  return cfg;
}

ModelConfig small() {
  ModelConfig cfg;
  cfg.name = "small";
  cfg.layers = 4;
  cfg.q_heads = 8;
  cfg.kv_heads = 4;
  cfg.head_dim = 64;
  cfg.ffn_hidden = 1024;
  cfg.vocab = 1024;
  return cfg;
}

}  // namespace lserve::model
