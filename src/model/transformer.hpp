// Transformer simulator: the non-attention compute path of the served
// model (embeddings, RMSNorm, QKV/output projections, SwiGLU FFN, tied
// readout), with deterministic synthetic weights.
//
// The attention operator itself is deliberately NOT here — serving engines
// inject their own attention implementation between qkv_project() and
// output_project(), which is exactly the seam LServe modifies. All engines
// (LServe and baselines) share this substrate so end-to-end comparisons
// vary only the attention policy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/model_config.hpp"
#include "numeric/rope.hpp"
#include "numeric/tensor.hpp"

namespace lserve::model {

/// Per-layer weights of the simulated network.
struct LayerWeights {
  num::Tensor wq;   ///< [hidden x hidden]
  num::Tensor wk;   ///< [hidden x kv_dim]
  num::Tensor wv;   ///< [hidden x kv_dim]
  num::Tensor wo;   ///< [hidden x hidden]
  num::Tensor w_up;    ///< [hidden x ffn]
  num::Tensor w_gate;  ///< [hidden x ffn]
  num::Tensor w_down;  ///< [ffn x hidden]
};

/// Deterministic-weight transformer compute substrate.
class Transformer {
 public:
  Transformer(ModelConfig cfg, std::uint64_t seed);

  const ModelConfig& config() const noexcept { return cfg_; }
  const num::RopeTable& rope() const noexcept { return rope_; }

  /// Embeds token ids into hidden states ([n x hidden]).
  num::Tensor embed(std::span<const std::int32_t> ids) const;

  /// RMSNorm of `x` into `out` (same shape), with the layer's norm weight.
  void rms_norm(num::ConstMatView x, std::size_t layer,
                num::MatView out) const;

  /// Projects normalized hidden states into q/k/v and applies RoPE at
  /// absolute positions [pos0, pos0+n). q: [n x hidden], k/v: [n x kv_dim].
  void qkv_project(num::ConstMatView normed, std::size_t layer,
                   std::size_t pos0, num::MatView q, num::MatView k,
                   num::MatView v) const;

  /// out += attn_result * Wo (residual add onto `hidden`).
  void output_project(num::ConstMatView attn_result, std::size_t layer,
                      num::MatView hidden) const;

  /// SwiGLU FFN with pre-norm and residual add, in place on `hidden`.
  void ffn(num::MatView hidden, std::size_t layer) const;

  /// Tied-embedding readout: argmax token id for one hidden row.
  std::int32_t readout_argmax(const float* hidden_row) const;

  /// Full logits for one hidden row (for tests).
  std::vector<float> readout_logits(const float* hidden_row) const;

 private:
  ModelConfig cfg_;
  num::RopeTable rope_;
  num::Tensor embedding_;              // [vocab x hidden]
  std::vector<LayerWeights> layers_;
  std::vector<std::vector<float>> norm1_;  // per-layer RMSNorm gains
  std::vector<std::vector<float>> norm2_;
};

}  // namespace lserve::model
