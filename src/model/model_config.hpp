// Model geometry presets.
//
// Efficiency experiments depend only on tensor shapes — layer count, query/
// kv head counts, head dimension, FFN width — so each preset mirrors the
// published geometry of the models LServe evaluates. The `tiny`/`small`
// presets are scaled-down geometries used by tests and CPU-measured benches
// (weights are synthetic everywhere; see DESIGN.md §2).
#pragma once

#include <cstddef>
#include <string>

namespace lserve::model {

/// Transformer geometry + tokenizer-free vocab for the simulator.
struct ModelConfig {
  std::string name = "tiny";
  std::size_t layers = 2;
  std::size_t q_heads = 4;
  std::size_t kv_heads = 2;
  std::size_t head_dim = 32;
  std::size_t ffn_hidden = 256;
  std::size_t vocab = 256;
  float rope_base = 10000.0f;

  std::size_t hidden() const noexcept { return q_heads * head_dim; }
  std::size_t kv_dim() const noexcept { return kv_heads * head_dim; }
  std::size_t group_size() const noexcept { return q_heads / kv_heads; }
  bool is_gqa() const noexcept { return kv_heads < q_heads; }

  /// Parameter count of the simulated network (for reporting).
  std::size_t parameter_count() const noexcept;
};

/// Llama-3-8B: 32 layers, 32 query / 8 kv heads, d=128, FFN 14336 (GQA).
ModelConfig llama3_8b();
/// Llama-2-7B: 32 layers, 32/32 heads, d=128, FFN 11008 (MHA).
ModelConfig llama2_7b();
/// Minitron-4B: 32 layers, 24 query / 8 kv heads, d=128, FFN 9216 (GQA).
ModelConfig minitron_4b();
/// DeepSeek-R1-Distill-Llama-8B: same geometry as Llama-3-8B.
ModelConfig ds_r1_llama_8b();

/// 2-layer, 4/2-head, d=32 geometry for unit tests.
ModelConfig tiny();
/// 4-layer, 8/4-head, d=64 geometry for integration tests and examples.
ModelConfig small();

}  // namespace lserve::model
