#include "model/transformer.hpp"

#include <cassert>
#include <cmath>

#include "numeric/math.hpp"
#include "numeric/rng.hpp"

namespace lserve::model {
namespace {

num::Tensor random_matrix(std::size_t rows, std::size_t cols,
                          std::uint64_t seed) {
  num::Tensor t(rows, cols);
  num::Rng rng(seed);
  // Xavier-ish scale keeps activations bounded through deep stacks.
  const float stddev = 1.0f / std::sqrt(static_cast<float>(rows));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.gaussian(0.0f, stddev);
  }
  return t;
}

float silu(float x) noexcept { return x / (1.0f + std::exp(-x)); }

}  // namespace

Transformer::Transformer(ModelConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rope_(cfg.head_dim, cfg.rope_base) {
  const std::size_t h = cfg_.hidden();
  const std::size_t kv = cfg_.kv_dim();
  embedding_ = random_matrix(cfg_.vocab, h, num::split_seed(seed, 0));
  layers_.reserve(cfg_.layers);
  norm1_.resize(cfg_.layers);
  norm2_.resize(cfg_.layers);
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    LayerWeights w;
    const std::uint64_t base = num::split_seed(seed, 16 + l * 8);
    w.wq = random_matrix(h, h, base + 1);
    w.wk = random_matrix(h, kv, base + 2);
    w.wv = random_matrix(h, kv, base + 3);
    w.wo = random_matrix(h, h, base + 4);
    w.w_up = random_matrix(h, cfg_.ffn_hidden, base + 5);
    w.w_gate = random_matrix(h, cfg_.ffn_hidden, base + 6);
    w.w_down = random_matrix(cfg_.ffn_hidden, h, base + 7);
    layers_.push_back(std::move(w));
    norm1_[l].assign(h, 1.0f);
    norm2_[l].assign(h, 1.0f);
  }
}

num::Tensor Transformer::embed(std::span<const std::int32_t> ids) const {
  num::Tensor out(ids.size(), cfg_.hidden());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto id = static_cast<std::size_t>(ids[i]) % cfg_.vocab;
    const float* src = embedding_.row(id);
    std::copy(src, src + cfg_.hidden(), out.row(i));
  }
  return out;
}

void Transformer::rms_norm(num::ConstMatView x, std::size_t layer,
                           num::MatView out) const {
  const std::size_t d = x.cols;
  const std::vector<float>& gain = norm1_[layer];
  for (std::size_t i = 0; i < x.rows; ++i) {
    const float* xi = x.row(i);
    float ms = 0.0f;
    for (std::size_t c = 0; c < d; ++c) ms += xi[c] * xi[c];
    const float inv = 1.0f / std::sqrt(ms / static_cast<float>(d) + 1e-6f);
    float* oi = out.row(i);
    for (std::size_t c = 0; c < d; ++c) oi[c] = xi[c] * inv * gain[c];
  }
}

void Transformer::qkv_project(num::ConstMatView normed, std::size_t layer,
                              std::size_t pos0, num::MatView q,
                              num::MatView k, num::MatView v) const {
  const LayerWeights& w = layers_[layer];
  num::matmul(normed, w.wq.view(), q);
  num::matmul(normed, w.wk.view(), k);
  num::matmul(normed, w.wv.view(), v);
  // RoPE per head, at absolute positions.
  for (std::size_t t = 0; t < q.rows; ++t) {
    for (std::size_t h = 0; h < cfg_.q_heads; ++h) {
      rope_.apply(q.row(t) + h * cfg_.head_dim, pos0 + t);
    }
    for (std::size_t h = 0; h < cfg_.kv_heads; ++h) {
      rope_.apply(k.row(t) + h * cfg_.head_dim, pos0 + t);
    }
  }
}

void Transformer::output_project(num::ConstMatView attn_result,
                                 std::size_t layer,
                                 num::MatView hidden) const {
  const LayerWeights& w = layers_[layer];
  num::Tensor proj(attn_result.rows, hidden.cols);
  num::matmul(attn_result, w.wo.view(), proj.view());
  for (std::size_t i = 0; i < hidden.rows; ++i) {
    num::axpy(1.0f, proj.row(i), hidden.row(i), hidden.cols);
  }
}

void Transformer::ffn(num::MatView hidden, std::size_t layer) const {
  const LayerWeights& w = layers_[layer];
  const std::size_t d = hidden.cols;
  num::Tensor normed(hidden.rows, d);
  // Second-norm gains.
  const std::vector<float>& gain = norm2_[layer];
  for (std::size_t i = 0; i < hidden.rows; ++i) {
    const float* xi = hidden.row(i);
    float ms = 0.0f;
    for (std::size_t c = 0; c < d; ++c) ms += xi[c] * xi[c];
    const float inv = 1.0f / std::sqrt(ms / static_cast<float>(d) + 1e-6f);
    float* oi = normed.row(i);
    for (std::size_t c = 0; c < d; ++c) oi[c] = xi[c] * inv * gain[c];
  }
  num::Tensor up(hidden.rows, cfg_.ffn_hidden);
  num::Tensor gate(hidden.rows, cfg_.ffn_hidden);
  num::matmul(normed.view(), w.w_up.view(), up.view());
  num::matmul(normed.view(), w.w_gate.view(), gate.view());
  for (std::size_t i = 0; i < up.size(); ++i) {
    up.data()[i] *= silu(gate.data()[i]);
  }
  num::Tensor down(hidden.rows, d);
  num::matmul(up.view(), w.w_down.view(), down.view());
  for (std::size_t i = 0; i < hidden.rows; ++i) {
    num::axpy(1.0f, down.row(i), hidden.row(i), d);
  }
}

std::int32_t Transformer::readout_argmax(const float* hidden_row) const {
  std::int32_t best = 0;
  float best_score = -1e30f;
  for (std::size_t t = 0; t < cfg_.vocab; ++t) {
    const float s = num::dot(hidden_row, embedding_.row(t), cfg_.hidden());
    if (s > best_score) {
      best_score = s;
      best = static_cast<std::int32_t>(t);
    }
  }
  return best;
}

std::vector<float> Transformer::readout_logits(const float* hidden_row) const {
  std::vector<float> logits(cfg_.vocab);
  for (std::size_t t = 0; t < cfg_.vocab; ++t) {
    logits[t] = num::dot(hidden_row, embedding_.row(t), cfg_.hidden());
  }
  return logits;
}

}  // namespace lserve::model
