// Planted-structure workload generators.
//
// Substitute for the paper's datasets (NIAH haystacks, LongBench, RULER):
// we generate per-head key/value streams whose *attention-level* structure
// matches what those benchmarks exercise in a real model:
//
//  * smooth_stream   — keys follow a slowly-drifting random walk, giving
//                      the spatial locality (neighbouring tokens share
//                      page statistics) and temporal locality (consecutive
//                      queries attend alike) that §3.5.3 relies on, plus
//                      high-norm "attention sink" keys at the start.
//  * plant_needle    — a single token whose key is aligned with a known
//                      direction and whose value carries a recognizable
//                      payload; a probe query aligned with that direction
//                      makes dense attention return (approximately) the
//                      payload. Retrieval succeeds iff a sparse policy
//                      keeps the needle's page.
//  * plant_chain     — multi-hop variant: needle i's value encodes needle
//                      i+1's key direction (RULER multi-hop tracing proxy).
//  * plant_aggregation — many same-direction keys with distinct payloads;
//                      the dense answer is their softmax mean (RULER
//                      aggregation proxy; punishes dropped pages).
//
// All generators are deterministic in the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/tensor.hpp"

namespace lserve::model {

/// One head's planted key/value history.
struct TokenStream {
  num::Tensor keys;    ///< [n x d]
  num::Tensor values;  ///< [n x d]
};

/// Geometry/statistics of a generated stream.
struct StreamConfig {
  std::size_t n_tokens = 4096;
  std::size_t head_dim = 64;
  float locality = 0.95f;    ///< random-walk smoothness in [0,1).
  float key_scale = 1.0f;    ///< typical key norm scale.
  std::size_t sink_tokens = 4;   ///< leading high-norm sink keys.
  float sink_boost = 3.0f;       ///< norm multiplier for sink keys.
  /// Fraction of tokens replaced by "distractors": strong keys in random
  /// directions (salient for SOME query, not the probe's). Distractors are
  /// what make page selection non-trivial: a physical page holding several
  /// of them has an inflated channel-wise min/max envelope, so coarse
  /// (page-wide) scoring mis-ranks pages while fine (logical-page) scoring
  /// stays sharp — the mechanism behind the page-size dilemma (Fig 6).
  float distractor_rate = 0.0f;
  float distractor_strength = 0.0f;  ///< key norm of distractor tokens.
  std::uint64_t seed = 1;
};

/// Generates the locality-bearing base stream.
TokenStream smooth_stream(const StreamConfig& cfg);

/// Strength S such that an S-normed key aligned with an S-normed query
/// yields a post-scale attention score of ln(n_tokens) + margin — i.e. the
/// planted token's softmax mass dominates n_tokens unit-scale background
/// keys by a factor of exp(margin). Real retrieval attention is peaked in
/// exactly this sense; without length-aware strength a needle drowns in
/// the softmax denominator as contexts grow.
float salient_strength(std::size_t n_tokens, std::size_t head_dim,
                       float margin = 6.0f);

/// A planted retrieval target.
struct Needle {
  std::size_t pos = 0;
  std::vector<float> direction;  ///< unit key direction (length d).
  std::vector<float> payload;    ///< unit value payload (length d).
};

/// Overwrites position `pos` with a needle of key norm
/// `strength * cfg.key_scale`. Returns the planted needle.
Needle plant_needle(TokenStream& stream, std::size_t pos, float strength,
                    std::uint64_t seed);

/// Query vector aligned with `needle.direction`, norm `strength`, with
/// relative Gaussian perturbation `noise` (0 = exact).
std::vector<float> probe_query(const Needle& needle, float strength,
                               float noise, std::uint64_t seed);

/// Plants a pointer chain: needle[i].payload encodes needle[i+1].direction
/// (the last payload is a terminal answer). Positions must be distinct.
std::vector<Needle> plant_chain(TokenStream& stream,
                                const std::vector<std::size_t>& positions,
                                float strength, std::uint64_t seed);

/// Plants `positions.size()` same-direction keys with distinct payloads.
/// Returns the shared direction and per-site payloads; the dense-attention
/// answer to a direction-aligned probe is (approximately) the payload mean.
struct AggregationPlant {
  std::vector<float> direction;
  std::vector<std::vector<float>> payloads;
  std::vector<std::size_t> positions;
};
AggregationPlant plant_aggregation(TokenStream& stream,
                                   const std::vector<std::size_t>& positions,
                                   float strength, std::uint64_t seed);

}  // namespace lserve::model
