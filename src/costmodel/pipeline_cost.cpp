#include "costmodel/pipeline_cost.hpp"

#include <algorithm>
#include <cmath>

#include "costmodel/kernel_cost.hpp"

namespace lserve::cost {

ServingPolicy lserve_policy() {
  ServingPolicy p;
  p.kv_dtype = num::KvDtype::kInt4;
  p.page_size = 64;
  p.logical_page_size = 16;
  p.streaming_fraction = 0.5;
  p.dynamic_decode = true;
  p.token_budget = 4096;
  p.reuse_interval = 4;
  p.weight_bits = 4;
  return p;
}

ServingPolicy vllm_policy() {
  ServingPolicy p;
  p.kv_dtype = num::KvDtype::kFp16;
  p.page_size = 32;
  p.logical_page_size = 32;
  p.weight_bits = 8;  // vLLM W8A8 per the paper's baseline setting.
  return p;
}

ServingPolicy qserve_policy() {
  ServingPolicy p;
  p.kv_dtype = num::KvDtype::kInt4;
  p.page_size = 64;
  p.logical_page_size = 64;
  p.weight_bits = 4;
  return p;
}

ServingPolicy duo_attention_policy() {
  ServingPolicy p;
  p.kv_dtype = num::KvDtype::kFp16;
  p.page_size = 32;
  p.logical_page_size = 32;
  p.streaming_fraction = 0.5;
  p.weight_bits = 16;
  return p;
}

ServingPolicy quest_policy() {
  ServingPolicy p;
  p.kv_dtype = num::KvDtype::kFp16;
  p.page_size = 16;
  p.logical_page_size = 16;
  p.dynamic_decode = true;
  p.token_budget = 4096;
  p.reuse_interval = 1;
  p.skip_selector_when_covered = false;  // Quest scores every step.
  p.weight_bits = 16;
  return p;
}

ServingPolicy minference_policy() {
  ServingPolicy p;
  p.kv_dtype = num::KvDtype::kFp16;
  p.page_size = 32;
  p.logical_page_size = 32;
  p.dynamic_prefill = true;
  p.prefill_kept_fraction = 0.35;
  p.weight_bits = 16;
  return p;
}

std::size_t dense_head_kv_tokens(const ServingPolicy& p,
                                 std::size_t seq_len) noexcept {
  if (!p.dynamic_decode) return seq_len;
  return std::min(seq_len, p.token_budget);
}

std::size_t streaming_head_kv_tokens(const ServingPolicy& p,
                                     std::size_t seq_len) noexcept {
  const std::size_t lambda = p.sink_tokens + p.local_tokens;
  const std::size_t rounded =
      (lambda + p.page_size - 1) / p.page_size * p.page_size;
  return std::min(seq_len, rounded);
}

namespace {

/// Per-layer GEMM cost of one transformer layer with `m` token rows.
double layer_gemm_us(const GpuSpec& spec, const model::ModelConfig& mdl,
                     const ServingPolicy& p, std::size_t m) {
  const std::size_t h = mdl.hidden();
  const std::size_t kv = mdl.kv_dim();
  double us = 0.0;
  us += gemm_us(spec, m, h + 2 * kv, h, p.weight_bits);  // fused QKV
  us += gemm_us(spec, m, h, h, p.weight_bits);           // output proj
  us += gemm_us(spec, m, mdl.ffn_hidden, h, p.weight_bits);  // up
  us += gemm_us(spec, m, mdl.ffn_hidden, h, p.weight_bits);  // gate
  us += gemm_us(spec, m, h, mdl.ffn_hidden, p.weight_bits);  // down
  return us;
}

/// Dense/streaming head split at kv-head granularity.
void head_split(const model::ModelConfig& mdl, const ServingPolicy& p,
                std::size_t& dense_heads, std::size_t& streaming_heads) {
  streaming_heads = static_cast<std::size_t>(std::round(
      p.streaming_fraction * static_cast<double>(mdl.kv_heads)));
  dense_heads = mdl.kv_heads - streaming_heads;
}

/// Selector cost per decode step for one layer (0 when inactive).
double layer_selector_us(const GpuSpec& spec, const model::ModelConfig& mdl,
                         const ServingPolicy& p, std::size_t seq_len,
                         std::size_t dense_heads, std::size_t batch) {
  if (!p.dynamic_decode || dense_heads == 0) return 0.0;
  if (p.skip_selector_when_covered && seq_len <= p.token_budget) return 0.0;
  const std::size_t reps_per_head =
      (seq_len + p.logical_page_size - 1) / p.logical_page_size;
  const double one_pass =
      page_selector_us(spec, dense_heads * reps_per_head, mdl.head_dim,
                       batch);
  return one_pass / static_cast<double>(std::max<std::size_t>(
                        1, p.reuse_interval));
}

}  // namespace

double decode_attention_layer_us(const GpuSpec& spec,
                                 const model::ModelConfig& m,
                                 const ServingPolicy& p, std::size_t seq_len,
                                 std::size_t batch) {
  std::size_t dense_heads = 0;
  std::size_t streaming_heads = 0;
  head_split(m, p, dense_heads, streaming_heads);

  double us = 0.0;
  if (dense_heads > 0) {
    us += decode_attention_us(spec, dense_heads, m.head_dim,
                              dense_head_kv_tokens(p, seq_len), p.kv_dtype,
                              p.page_size, batch);
  }
  if (streaming_heads > 0) {
    us += decode_attention_us(spec, streaming_heads, m.head_dim,
                              streaming_head_kv_tokens(p, seq_len),
                              p.kv_dtype, p.page_size, batch);
  }
  us += layer_selector_us(spec, m, p, seq_len, dense_heads, batch);
  return us;
}

StageBreakdown decode_step_cost(const GpuSpec& spec,
                                const model::ModelConfig& m,
                                const ServingPolicy& p, std::size_t seq_len,
                                std::size_t batch) {
  std::size_t dense_heads = 0;
  std::size_t streaming_heads = 0;
  head_split(m, p, dense_heads, streaming_heads);

  StageBreakdown layer;
  if (dense_heads > 0) {
    layer.attention_us += decode_attention_us(
        spec, dense_heads, m.head_dim, dense_head_kv_tokens(p, seq_len),
        p.kv_dtype, p.page_size, batch);
  }
  if (streaming_heads > 0) {
    layer.attention_us += decode_attention_us(
        spec, streaming_heads, m.head_dim,
        streaming_head_kv_tokens(p, seq_len), p.kv_dtype, p.page_size,
        batch);
  }
  layer.selector_us =
      layer_selector_us(spec, m, p, seq_len, dense_heads, batch);
  layer.gemm_us = layer_gemm_us(spec, m, p, batch);
  layer.other_us = layer_overhead_us(spec);

  StageBreakdown total;
  const double L = static_cast<double>(m.layers);
  total.attention_us = layer.attention_us * L;
  total.gemm_us = layer.gemm_us * L;
  total.selector_us = layer.selector_us * L;
  total.other_us = layer.other_us * L;
  return total;
}

StageBreakdown prefill_cost(const GpuSpec& spec, const model::ModelConfig& m,
                            const ServingPolicy& p, std::size_t n_tokens,
                            std::size_t batch) {
  std::size_t dense_heads = 0;
  std::size_t streaming_heads = 0;
  head_split(m, p, dense_heads, streaming_heads);
  const std::size_t group = m.group_size();
  const std::size_t dense_q = dense_heads * group;
  const std::size_t streaming_q = streaming_heads * group;

  StageBreakdown layer;
  // Dense (retrieval) heads: full causal or MInference-pruned.
  const double dense_kept =
      p.dynamic_prefill ? p.prefill_kept_fraction : 1.0;
  if (dense_q > 0) {
    layer.attention_us += prefill_attention_us(spec, dense_q, m.head_dim,
                                               n_tokens, dense_kept, batch);
  }
  // Streaming heads: Λ mask keeps ~ (sink+local)*N of N^2/2 pairs.
  if (streaming_q > 0) {
    const double lambda =
        static_cast<double>(p.sink_tokens + p.local_tokens);
    const double n = static_cast<double>(n_tokens);
    const double kept = std::min(1.0, lambda / (n / 2.0));
    layer.attention_us += prefill_attention_us(spec, streaming_q, m.head_dim,
                                               n_tokens, kept, batch);
  }
  layer.gemm_us = layer_gemm_us(spec, m, p, n_tokens * batch);
  // K_stats pooling for dense heads (context-stage, §5.3) + glue.
  layer.other_us = layer_overhead_us(spec);
  if (p.dynamic_decode && dense_heads > 0) {
    layer.other_us +=
        kstats_pooling_us(spec, dense_heads, m.head_dim, n_tokens, batch);
  }

  StageBreakdown total;
  const double L = static_cast<double>(m.layers);
  total.attention_us = layer.attention_us * L;
  total.gemm_us = layer.gemm_us * L;
  total.selector_us = 0.0;
  total.other_us = layer.other_us * L;
  return total;
}

}  // namespace lserve::cost
