#include "costmodel/pipeline_cost.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "costmodel/kernel_cost.hpp"
#include "serve/thread_annotations.hpp"

namespace lserve::cost {

ServingPolicy lserve_policy() {
  ServingPolicy p;
  p.kv_dtype = num::KvDtype::kInt4;
  p.page_size = 64;
  p.logical_page_size = 16;
  p.streaming_fraction = 0.5;
  p.dynamic_decode = true;
  p.token_budget = 4096;
  p.reuse_interval = 4;
  p.weight_bits = 4;
  return p;
}

ServingPolicy vllm_policy() {
  ServingPolicy p;
  p.kv_dtype = num::KvDtype::kFp16;
  p.page_size = 32;
  p.logical_page_size = 32;
  p.weight_bits = 8;  // vLLM W8A8 per the paper's baseline setting.
  return p;
}

ServingPolicy qserve_policy() {
  ServingPolicy p;
  p.kv_dtype = num::KvDtype::kInt4;
  p.page_size = 64;
  p.logical_page_size = 64;
  p.weight_bits = 4;
  return p;
}

ServingPolicy duo_attention_policy() {
  ServingPolicy p;
  p.kv_dtype = num::KvDtype::kFp16;
  p.page_size = 32;
  p.logical_page_size = 32;
  p.streaming_fraction = 0.5;
  p.weight_bits = 16;
  return p;
}

ServingPolicy quest_policy() {
  ServingPolicy p;
  p.kv_dtype = num::KvDtype::kFp16;
  p.page_size = 16;
  p.logical_page_size = 16;
  p.dynamic_decode = true;
  p.token_budget = 4096;
  p.reuse_interval = 1;
  p.skip_selector_when_covered = false;  // Quest scores every step.
  p.weight_bits = 16;
  return p;
}

ServingPolicy minference_policy() {
  ServingPolicy p;
  p.kv_dtype = num::KvDtype::kFp16;
  p.page_size = 32;
  p.logical_page_size = 32;
  p.dynamic_prefill = true;
  p.prefill_kept_fraction = 0.35;
  p.weight_bits = 16;
  return p;
}

std::size_t dense_head_kv_tokens(const ServingPolicy& p,
                                 std::size_t seq_len) noexcept {
  if (!p.dynamic_decode) return seq_len;
  return std::min(seq_len, p.token_budget);
}

std::size_t streaming_head_kv_tokens(const ServingPolicy& p,
                                     std::size_t seq_len) noexcept {
  const std::size_t lambda = p.sink_tokens + p.local_tokens;
  const std::size_t rounded =
      (lambda + p.page_size - 1) / p.page_size * p.page_size;
  return std::min(seq_len, rounded);
}

namespace {

/// Per-layer GEMM cost of one transformer layer with `m` token rows.
double layer_gemm_us(const GpuSpec& spec, const model::ModelConfig& mdl,
                     const ServingPolicy& p, std::size_t m) {
  const std::size_t h = mdl.hidden();
  const std::size_t kv = mdl.kv_dim();
  double us = 0.0;
  us += gemm_us(spec, m, h + 2 * kv, h, p.weight_bits);  // fused QKV
  us += gemm_us(spec, m, h, h, p.weight_bits);           // output proj
  us += gemm_us(spec, m, mdl.ffn_hidden, h, p.weight_bits);  // up
  us += gemm_us(spec, m, mdl.ffn_hidden, h, p.weight_bits);  // gate
  us += gemm_us(spec, m, h, mdl.ffn_hidden, p.weight_bits);  // down
  return us;
}

/// Dense/streaming head split at kv-head granularity.
void head_split(const model::ModelConfig& mdl, const ServingPolicy& p,
                std::size_t& dense_heads, std::size_t& streaming_heads) {
  streaming_heads = static_cast<std::size_t>(std::round(
      p.streaming_fraction * static_cast<double>(mdl.kv_heads)));
  dense_heads = mdl.kv_heads - streaming_heads;
}

/// Selector cost per decode step for one layer (0 when inactive).
double layer_selector_us(const GpuSpec& spec, const model::ModelConfig& mdl,
                         const ServingPolicy& p, std::size_t seq_len,
                         std::size_t dense_heads, std::size_t batch) {
  if (!p.dynamic_decode || dense_heads == 0) return 0.0;
  if (p.skip_selector_when_covered && seq_len <= p.token_budget) return 0.0;
  const std::size_t reps_per_head =
      (seq_len + p.logical_page_size - 1) / p.logical_page_size;
  const double one_pass =
      page_selector_us(spec, dense_heads * reps_per_head, mdl.head_dim,
                       batch);
  return one_pass / static_cast<double>(std::max<std::size_t>(
                        1, p.reuse_interval));
}

}  // namespace

double decode_attention_layer_us(const GpuSpec& spec,
                                 const model::ModelConfig& m,
                                 const ServingPolicy& p, std::size_t seq_len,
                                 std::size_t batch) {
  std::size_t dense_heads = 0;
  std::size_t streaming_heads = 0;
  head_split(m, p, dense_heads, streaming_heads);

  double us = 0.0;
  if (dense_heads > 0) {
    us += decode_attention_us(spec, dense_heads, m.head_dim,
                              dense_head_kv_tokens(p, seq_len), p.kv_dtype,
                              p.page_size, batch);
  }
  if (streaming_heads > 0) {
    us += decode_attention_us(spec, streaming_heads, m.head_dim,
                              streaming_head_kv_tokens(p, seq_len),
                              p.kv_dtype, p.page_size, batch);
  }
  us += layer_selector_us(spec, m, p, seq_len, dense_heads, batch);
  return us;
}

StageBreakdown decode_step_cost(const GpuSpec& spec,
                                const model::ModelConfig& m,
                                const ServingPolicy& p, std::size_t seq_len,
                                std::size_t batch) {
  std::size_t dense_heads = 0;
  std::size_t streaming_heads = 0;
  head_split(m, p, dense_heads, streaming_heads);

  StageBreakdown layer;
  if (dense_heads > 0) {
    layer.attention_us += decode_attention_us(
        spec, dense_heads, m.head_dim, dense_head_kv_tokens(p, seq_len),
        p.kv_dtype, p.page_size, batch);
  }
  if (streaming_heads > 0) {
    layer.attention_us += decode_attention_us(
        spec, streaming_heads, m.head_dim,
        streaming_head_kv_tokens(p, seq_len), p.kv_dtype, p.page_size,
        batch);
  }
  layer.selector_us =
      layer_selector_us(spec, m, p, seq_len, dense_heads, batch);
  layer.gemm_us = layer_gemm_us(spec, m, p, batch);
  layer.other_us = layer_overhead_us(spec);

  StageBreakdown total;
  const double L = static_cast<double>(m.layers);
  total.attention_us = layer.attention_us * L;
  total.gemm_us = layer.gemm_us * L;
  total.selector_us = layer.selector_us * L;
  total.other_us = layer.other_us * L;
  return total;
}

ServingPolicy dense_decode_variant(const ServingPolicy& p) noexcept {
  ServingPolicy dense = p;
  dense.dynamic_decode = false;
  return dense;
}

namespace {

/// Memo table for crossover_tokens(). The key folds in every spec, model,
/// policy and batch field the decode cost depends on; the gate queries
/// this once per decode step, so lookups must be cheap and thread-safe
/// (decode_batch may run the gate from pool workers).
struct CrossoverCache {
  Mutex mu;
  std::unordered_map<std::string, std::size_t> memo GUARDED_BY(mu);
};

CrossoverCache& crossover_cache() {
  static CrossoverCache cache;
  return cache;
}

std::string crossover_key(const GpuSpec& spec, const model::ModelConfig& m,
                          const ServingPolicy& p, std::size_t batch) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%.6g/%.6g/%.6g/%.6g/%.6g/%.6g/%.6g|%zu/%zu/%zu/%zu/%zu|"
      "%d/%zu/%zu/%.6g/%zu/%zu/%d/%zu/%zu/%d/%d|%zu",
      spec.hbm_bw_gbps, spec.fp16_tflops, spec.int8_tops,
      spec.launch_overhead_us, spec.page_gap_bytes, spec.attn_bw_frac,
      spec.dequant_penalty, m.layers, m.q_heads, m.kv_heads, m.head_dim,
      m.ffn_hidden, static_cast<int>(p.kv_dtype), p.page_size,
      p.logical_page_size, p.streaming_fraction, p.sink_tokens,
      p.local_tokens, p.dynamic_decode ? 1 : 0, p.token_budget,
      p.reuse_interval, p.skip_selector_when_covered ? 1 : 0, p.weight_bits,
      batch);
  return std::string(buf);
}

}  // namespace

std::size_t crossover_tokens(const GpuSpec& spec, const model::ModelConfig& m,
                             const ServingPolicy& p, std::size_t batch) {
  if (!p.dynamic_decode) return kNoCrossover;  // nothing to gate.
  const std::string key = crossover_key(spec, m, p, batch);
  {
    MutexLock lock(crossover_cache().mu);
    const auto it = crossover_cache().memo.find(key);
    if (it != crossover_cache().memo.end()) return it->second;
  }

  const ServingPolicy dense = dense_decode_variant(p);
  const auto sparse_wins = [&](std::size_t seq_len) {
    return decode_step_cost(spec, m, p, seq_len, batch).total_us() <
           decode_step_cost(spec, m, dense, seq_len, batch).total_us();
  };

  // Below the budget selection reads the same tokens as dense (plus a
  // possible scoring pass), so sparse cannot strictly win there; past it
  // the dense-minus-sparse gap is non-decreasing in seq_len (full-context
  // reads grow faster than the amortized selector). Gallop for an upper
  // bracket, then binary-search the first strict win.
  constexpr std::size_t kSearchBound = std::size_t{1} << 22;
  std::size_t lo = std::max<std::size_t>(1, p.token_budget);
  std::size_t hi = lo;
  std::size_t result = kNoCrossover;
  while (hi < kSearchBound && !sparse_wins(hi)) {
    lo = hi;
    hi *= 2;
  }
  if (hi < kSearchBound || sparse_wins(hi)) {
    // Invariant: !sparse_wins(lo), sparse_wins(hi).
    while (lo + 1 < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (sparse_wins(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    result = hi;
  }

  MutexLock lock(crossover_cache().mu);
  crossover_cache().memo.emplace(key, result);
  return result;
}

StageBreakdown prefill_cost(const GpuSpec& spec, const model::ModelConfig& m,
                            const ServingPolicy& p, std::size_t n_tokens,
                            std::size_t batch) {
  std::size_t dense_heads = 0;
  std::size_t streaming_heads = 0;
  head_split(m, p, dense_heads, streaming_heads);
  const std::size_t group = m.group_size();
  const std::size_t dense_q = dense_heads * group;
  const std::size_t streaming_q = streaming_heads * group;

  StageBreakdown layer;
  // Dense (retrieval) heads: full causal or MInference-pruned.
  const double dense_kept =
      p.dynamic_prefill ? p.prefill_kept_fraction : 1.0;
  if (dense_q > 0) {
    layer.attention_us += prefill_attention_us(spec, dense_q, m.head_dim,
                                               n_tokens, dense_kept, batch);
  }
  // Streaming heads: Λ mask keeps ~ (sink+local)*N of N^2/2 pairs.
  if (streaming_q > 0) {
    const double lambda =
        static_cast<double>(p.sink_tokens + p.local_tokens);
    const double n = static_cast<double>(n_tokens);
    const double kept = std::min(1.0, lambda / (n / 2.0));
    layer.attention_us += prefill_attention_us(spec, streaming_q, m.head_dim,
                                               n_tokens, kept, batch);
  }
  layer.gemm_us = layer_gemm_us(spec, m, p, n_tokens * batch);
  // K_stats pooling for dense heads (context-stage, §5.3) + glue.
  layer.other_us = layer_overhead_us(spec);
  if (p.dynamic_decode && dense_heads > 0) {
    layer.other_us +=
        kstats_pooling_us(spec, dense_heads, m.head_dim, n_tokens, batch);
  }

  StageBreakdown total;
  const double L = static_cast<double>(m.layers);
  total.attention_us = layer.attention_us * L;
  total.gemm_us = layer.gemm_us * L;
  total.selector_us = 0.0;
  total.other_us = layer.other_us * L;
  return total;
}

}  // namespace lserve::cost
