// GPU hardware descriptions for the analytic cost model.
//
// The end-to-end numbers in LServe's evaluation are roofline phenomena:
// decode attention and small-batch GEMM are memory-bandwidth-bound, prefill
// attention and large-batch GEMM are compute-bound, and every kernel pays a
// fixed launch latency. A spec therefore carries peak bandwidth, peak
// matrix throughput, a launch overhead, and the page-gap constant that
// models DRAM-burst under-utilization for small KV pages (Table 1).
#pragma once

#include <string>

namespace lserve::cost {

/// Hardware parameters of one accelerator.
struct GpuSpec {
  std::string name = "A100";
  double hbm_bw_gbps = 2039.0;     ///< peak HBM bandwidth, GB/s.
  double fp16_tflops = 312.0;      ///< dense fp16 tensor throughput.
  double int8_tops = 624.0;        ///< dense int8 tensor throughput.
  double launch_overhead_us = 2.0; ///< fixed cost per kernel launch.
  double page_gap_bytes = 1024.0;  ///< per-page bandwidth dead-time proxy.
  /// Decode-attention achievable bandwidth fraction for contiguous fp16
  /// reads (FlashDecoding-class kernels run close to peak).
  double attn_bw_frac = 0.85;
  /// Extra multiplier for quantized KV paths: in-kernel dequantization is
  /// ALU work that eats into the streaming rate (QServe-class kernels).
  double dequant_penalty = 0.65;
  double gemm_eff = 0.75;          ///< achievable fraction of peak FLOPs.
  double prefill_attn_eff = 0.45;  ///< prefill attention FLOP efficiency.
};

/// NVIDIA A100-80GB (SXM).
GpuSpec a100();
/// NVIDIA L40S 48GB (Ada Lovelace).
GpuSpec l40s();

/// A hypothetical part `speedup`-times faster than `base`: bandwidth and
/// matrix throughput scale up, launch overhead scales down, and the purely
/// geometric constants (page gap, efficiency fractions) stay put. Under
/// this scaling every roofline term divides by `speedup`, so cost *ratios*
/// — and with them the sparse-vs-dense crossover — are invariant.
GpuSpec scaled(const GpuSpec& base, double speedup);

}  // namespace lserve::cost
