// Per-kernel roofline costs.
//
// Every function returns microseconds for one kernel invocation on one GPU,
// computed as max(bytes / effective_bandwidth, flops / effective_peak) plus
// the launch overhead. These are the building blocks the pipeline model
// composes into per-step decode latency and prefill TTFT.
#pragma once

#include <cstddef>

#include "costmodel/gpu_spec.hpp"
#include "numeric/quant.hpp"

namespace lserve::cost {

/// Fraction of peak bandwidth achieved when KV is read in pages of
/// `page_tokens` tokens at `head_dim` channels and `dtype` precision
/// (models Table 1: small quantized pages waste DRAM bursts).
double page_bandwidth_efficiency(const GpuSpec& spec, std::size_t page_tokens,
                                 num::KvDtype dtype, std::size_t head_dim);

/// Decode-stage paged attention for one layer:
/// `kv_heads` heads each reading `kv_tokens` cached tokens (keys+values) of
/// `head_dim` channels at `dtype`, for `batch` sequences.
double decode_attention_us(const GpuSpec& spec, std::size_t kv_heads,
                           std::size_t head_dim, std::size_t kv_tokens,
                           num::KvDtype dtype, std::size_t page_tokens,
                           std::size_t batch);

/// Prefill-stage attention for one layer: `q_heads` heads over `n_tokens`
/// queries with `kept_fraction` of the causal tile pairs computed
/// (kept_fraction = 1 - r; theoretical sparse speedup = 1/kept_fraction).
double prefill_attention_us(const GpuSpec& spec, std::size_t q_heads,
                            std::size_t head_dim, std::size_t n_tokens,
                            double kept_fraction, std::size_t batch);

/// GEMM C[m x n] = A[m x k] B[k x n]; `weight_bits` models quantized
/// weights (memory-bound regime at small m reads the weight matrix).
double gemm_us(const GpuSpec& spec, std::size_t m, std::size_t n,
               std::size_t k, int weight_bits);

/// Page-selector scoring pass for one layer: `scored_reps` logical-page
/// representatives of `head_dim` channels (2 vectors each, fp16), plus a
/// top-K reduction.
double page_selector_us(const GpuSpec& spec, std::size_t scored_reps,
                        std::size_t head_dim, std::size_t batch);

/// Context-stage min/max pooling that builds K_stats for `n_tokens` new
/// tokens across `kv_heads` dense heads.
double kstats_pooling_us(const GpuSpec& spec, std::size_t kv_heads,
                         std::size_t head_dim, std::size_t n_tokens,
                         std::size_t batch);

/// Small per-layer glue (norms, RoPE, residuals): a few launches.
double layer_overhead_us(const GpuSpec& spec);

}  // namespace lserve::cost
