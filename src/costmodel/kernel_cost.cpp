#include "costmodel/kernel_cost.hpp"

#include <algorithm>
#include <cmath>

namespace lserve::cost {
namespace {

constexpr double kUsPerSecond = 1e6;

double bw_bytes_per_us(const GpuSpec& spec) {
  return spec.hbm_bw_gbps * 1e9 / kUsPerSecond;
}

double fp16_flops_per_us(const GpuSpec& spec) {
  return spec.fp16_tflops * 1e12 / kUsPerSecond;
}

}  // namespace

double page_bandwidth_efficiency(const GpuSpec& spec, std::size_t page_tokens,
                                 num::KvDtype dtype, std::size_t head_dim) {
  const double payload = static_cast<double>(page_tokens) *
                         static_cast<double>(head_dim) *
                         num::bytes_per_element(dtype);
  return payload / (payload + spec.page_gap_bytes);
}

double decode_attention_us(const GpuSpec& spec, std::size_t kv_heads,
                           std::size_t head_dim, std::size_t kv_tokens,
                           num::KvDtype dtype, std::size_t page_tokens,
                           std::size_t batch) {
  const double scales =
      dtype == num::KvDtype::kFp16 ? 0.0 : 4.0;  // per-token scale+zero
  const double bytes_per_token =
      2.0 * (static_cast<double>(head_dim) * num::bytes_per_element(dtype) +
             scales);  // K and V
  const double bytes = static_cast<double>(batch) *
                       static_cast<double>(kv_heads) *
                       static_cast<double>(kv_tokens) * bytes_per_token;
  const double dequant =
      dtype == num::KvDtype::kFp16 ? 1.0 : spec.dequant_penalty;
  const double eff = spec.attn_bw_frac * dequant *
                     page_bandwidth_efficiency(spec, page_tokens, dtype,
                                               head_dim);
  return bytes / (bw_bytes_per_us(spec) * eff) + spec.launch_overhead_us;
}

double prefill_attention_us(const GpuSpec& spec, std::size_t q_heads,
                            std::size_t head_dim, std::size_t n_tokens,
                            double kept_fraction, std::size_t batch) {
  // Causal attention: ~2 * N^2 * D MACs per head (QK^T plus PV), i.e.
  // 4 * N^2/2 * D * 2 flops, of which sparse kernels do kept_fraction.
  const double n = static_cast<double>(n_tokens);
  const double flops = 4.0 * n * (n / 2.0) * static_cast<double>(head_dim) *
                       static_cast<double>(q_heads) *
                       static_cast<double>(batch) * kept_fraction;
  return flops / (fp16_flops_per_us(spec) * spec.prefill_attn_eff) +
         spec.launch_overhead_us;
}

double gemm_us(const GpuSpec& spec, std::size_t m, std::size_t n,
               std::size_t k, int weight_bits) {
  const double flops = 2.0 * static_cast<double>(m) *
                       static_cast<double>(n) * static_cast<double>(k);
  // W4A8/W8A8 runs on int8 tensor cores at ~2x the fp16 peak (QServe).
  const double peak_flops_per_us = weight_bits <= 8
                                       ? spec.int8_tops * 1e12 / 1e6
                                       : fp16_flops_per_us(spec);
  const double compute_us = flops / (peak_flops_per_us * spec.gemm_eff);
  // Memory: activations fp16, weights at weight_bits.
  const double bytes =
      2.0 * (static_cast<double>(m) * k + static_cast<double>(m) * n) +
      static_cast<double>(k) * n * (weight_bits / 8.0);
  const double memory_us = bytes / bw_bytes_per_us(spec);
  return std::max(compute_us, memory_us) + spec.launch_overhead_us;
}

double page_selector_us(const GpuSpec& spec, std::size_t scored_reps,
                        std::size_t head_dim, std::size_t batch) {
  if (scored_reps == 0) return 0.0;
  // Each representative = kmin + kmax fp16 vectors; the top-K pass re-reads
  // the score array (negligible) and costs one extra launch.
  const double bytes = static_cast<double>(batch) *
                       static_cast<double>(scored_reps) * 2.0 * 2.0 *
                       static_cast<double>(head_dim);
  return bytes / bw_bytes_per_us(spec) + 2.0 * spec.launch_overhead_us;
}

double kstats_pooling_us(const GpuSpec& spec, std::size_t kv_heads,
                         std::size_t head_dim, std::size_t n_tokens,
                         std::size_t batch) {
  const double bytes = static_cast<double>(batch) *
                       static_cast<double>(kv_heads) *
                       static_cast<double>(n_tokens) *
                       static_cast<double>(head_dim) * 2.0;
  return bytes / bw_bytes_per_us(spec) + spec.launch_overhead_us;
}

double layer_overhead_us(const GpuSpec& spec) {
  // RMSNorm x2, RoPE, residual adds: ~4 small launches.
  return 4.0 * spec.launch_overhead_us;
}

}  // namespace lserve::cost
