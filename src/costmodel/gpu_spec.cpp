#include "costmodel/gpu_spec.hpp"

namespace lserve::cost {

GpuSpec a100() {
  GpuSpec spec;
  spec.name = "A100";
  spec.hbm_bw_gbps = 2039.0;
  spec.fp16_tflops = 312.0;
  spec.int8_tops = 624.0;
  spec.launch_overhead_us = 2.0;
  spec.page_gap_bytes = 1024.0;
  return spec;
}

GpuSpec l40s() {
  GpuSpec spec;
  spec.name = "L40S";
  spec.hbm_bw_gbps = 864.0;
  spec.fp16_tflops = 362.0;
  spec.int8_tops = 733.0;
  spec.launch_overhead_us = 2.0;
  spec.page_gap_bytes = 1024.0;
  return spec;
}

GpuSpec scaled(const GpuSpec& base, double speedup) {
  GpuSpec spec = base;
  spec.name = base.name + "x" + std::to_string(speedup);
  spec.hbm_bw_gbps = base.hbm_bw_gbps * speedup;
  spec.fp16_tflops = base.fp16_tflops * speedup;
  spec.int8_tops = base.int8_tops * speedup;
  spec.launch_overhead_us = base.launch_overhead_us / speedup;
  return spec;
}

}  // namespace lserve::cost
