// End-to-end pipeline cost model: composes the per-kernel rooflines into
// per-decode-step latency and prefill TTFT for a full serving
// configuration. Regenerates the paper-scale efficiency experiments
// (Figs 2/10/11/14/15/16, Tables 1/5/7) without a GPU; DESIGN.md §2
// documents this substitution.
#pragma once

#include <cstddef>

#include "costmodel/gpu_spec.hpp"
#include "model/model_config.hpp"
#include "numeric/quant.hpp"

namespace lserve::cost {

/// Serving-policy description, mirroring serve::EngineConfig at the level
/// of detail the cost model needs.
struct ServingPolicy {
  num::KvDtype kv_dtype = num::KvDtype::kFp16;
  std::size_t page_size = 32;          ///< NP.
  std::size_t logical_page_size = 32;  ///< NL.
  double streaming_fraction = 0.0;     ///< fraction of kv heads streaming.
  std::size_t sink_tokens = 64;
  std::size_t local_tokens = 256;
  bool dynamic_decode = false;         ///< page pruning on dense heads.
  std::size_t token_budget = 4096;
  std::size_t reuse_interval = 1;      ///< selector reuse chunk C.
  bool skip_selector_when_covered = true;  ///< no selection if S <= budget.
  bool dynamic_prefill = false;        ///< MInference-style prefill mask.
  double prefill_kept_fraction = 1.0;  ///< kept tile fraction on dense heads.
  int weight_bits = 16;                ///< 4 for QServe/LServe W4.
};

/// Named policy presets matching baselines/baseline_engines.hpp.
ServingPolicy lserve_policy();
ServingPolicy vllm_policy();
ServingPolicy qserve_policy();
ServingPolicy duo_attention_policy();
ServingPolicy quest_policy();
ServingPolicy minference_policy();

/// Per-stage latency decomposition, microseconds.
struct StageBreakdown {
  double attention_us = 0.0;
  double gemm_us = 0.0;
  double selector_us = 0.0;
  double other_us = 0.0;

  double total_us() const noexcept {
    return attention_us + gemm_us + selector_us + other_us;
  }
  double attention_fraction() const noexcept {
    const double t = total_us();
    return t > 0.0 ? attention_us / t : 0.0;
  }
};

/// Latency of ONE decode step for the whole model at context length
/// `seq_len` and batch size `batch`.
StageBreakdown decode_step_cost(const GpuSpec& spec,
                                const model::ModelConfig& m,
                                const ServingPolicy& p, std::size_t seq_len,
                                std::size_t batch);

/// Latency of prefilling `n_tokens` (TTFT) for the whole model.
StageBreakdown prefill_cost(const GpuSpec& spec, const model::ModelConfig& m,
                            const ServingPolicy& p, std::size_t n_tokens,
                            std::size_t batch);

/// Decode attention of a SINGLE layer (Fig 15's unit), microseconds,
/// including amortized selector cost.
double decode_attention_layer_us(const GpuSpec& spec,
                                 const model::ModelConfig& m,
                                 const ServingPolicy& p, std::size_t seq_len,
                                 std::size_t batch);

/// KV tokens actually read per dense head at context `seq_len`.
std::size_t dense_head_kv_tokens(const ServingPolicy& p,
                                 std::size_t seq_len) noexcept;

/// KV tokens read per streaming head (sink + local, page-rounded).
std::size_t streaming_head_kv_tokens(const ServingPolicy& p,
                                     std::size_t seq_len) noexcept;

/// `p` with decode-stage page pruning disabled: dense heads read the full
/// context and no selector runs. The streaming-head split is untouched —
/// it is a storage policy (evicted pages are gone), not a per-step choice,
/// so this is exactly the "dense route" a runtime gate can flip to.
ServingPolicy dense_decode_variant(const ServingPolicy& p) noexcept;

/// Sentinel for crossover_tokens(): sparse decode never strictly beats
/// dense within the search bound (e.g. p.dynamic_decode is false).
inline constexpr std::size_t kNoCrossover = static_cast<std::size_t>(-1);

/// Smallest context length (tokens) at which one decode step under `p`
/// (dynamic page selection active) is strictly cheaper than under
/// dense_decode_variant(p). Below the token budget selection reads the
/// same tokens as dense, so the crossover always lands past the budget,
/// where the selector's amortized scoring pass costs less than the extra
/// full-context KV reads it prunes. Results are memoized per
/// (spec, model, policy, batch) — the per-step gate's repeated queries
/// are table lookups (thread-safe).
std::size_t crossover_tokens(const GpuSpec& spec, const model::ModelConfig& m,
                             const ServingPolicy& p, std::size_t batch);

}  // namespace lserve::cost
