#include "baselines/baseline_engines.hpp"

namespace lserve::baselines {
namespace {

serve::EngineConfig base(const model::ModelConfig& m) {
  serve::EngineConfig cfg;
  cfg.model = m;
  cfg.dense_pages.head_dim = m.head_dim;
  return cfg;
}

}  // namespace

serve::EngineConfig lserve_config(const model::ModelConfig& m) {
  serve::EngineConfig cfg = base(m);
  cfg.dense_pages.page_size = 64;
  cfg.dense_pages.logical_page_size = 16;
  cfg.dense_pages.dtype = num::KvDtype::kInt4;
  cfg.streaming = {/*sink_tokens=*/64, /*local_tokens=*/256};
  cfg.streaming_fraction = 0.5;
  cfg.dynamic_decode = true;
  cfg.hierarchical = true;
  cfg.selector.token_budget = 4096;
  cfg.reuse_interval = 4;
  return cfg;
}

serve::EngineConfig vllm_config(const model::ModelConfig& m) {
  serve::EngineConfig cfg = base(m);
  cfg.dense_pages.page_size = 32;
  cfg.dense_pages.logical_page_size = 32;
  cfg.dense_pages.dtype = num::KvDtype::kFp16;
  cfg.streaming_fraction = 0.0;
  cfg.dynamic_decode = false;
  cfg.reuse_interval = 1;
  return cfg;
}

serve::EngineConfig qserve_config(const model::ModelConfig& m) {
  serve::EngineConfig cfg = base(m);
  cfg.dense_pages.page_size = 64;
  cfg.dense_pages.logical_page_size = 64;
  cfg.dense_pages.dtype = num::KvDtype::kInt4;
  cfg.streaming_fraction = 0.0;
  cfg.dynamic_decode = false;
  cfg.reuse_interval = 1;
  return cfg;
}

serve::EngineConfig duo_attention_config(const model::ModelConfig& m) {
  serve::EngineConfig cfg = base(m);
  cfg.dense_pages.page_size = 32;
  cfg.dense_pages.logical_page_size = 32;
  cfg.dense_pages.dtype = num::KvDtype::kFp16;
  cfg.streaming = {/*sink_tokens=*/64, /*local_tokens=*/256};
  cfg.streaming_fraction = 0.5;
  cfg.dynamic_decode = false;
  cfg.reuse_interval = 1;
  return cfg;
}

serve::EngineConfig quest_config(const model::ModelConfig& m) {
  serve::EngineConfig cfg = base(m);
  cfg.dense_pages.page_size = 16;
  cfg.dense_pages.logical_page_size = 16;
  cfg.dense_pages.dtype = num::KvDtype::kFp16;
  cfg.streaming_fraction = 0.0;
  cfg.dynamic_decode = true;
  cfg.hierarchical = false;  // flat page-level min/max scoring.
  cfg.selector.token_budget = 4096;
  cfg.reuse_interval = 1;  // Quest selects every step.
  return cfg;
}

serve::EngineConfig minference_config(const model::ModelConfig& m) {
  serve::EngineConfig cfg = base(m);
  cfg.dense_pages.page_size = 32;
  cfg.dense_pages.logical_page_size = 32;
  cfg.dense_pages.dtype = num::KvDtype::kFp16;
  cfg.streaming_fraction = 0.0;
  cfg.dynamic_decode = false;
  cfg.dynamic_prefill = true;
  cfg.reuse_interval = 1;
  return cfg;
}

std::shared_ptr<const serve::AttentionPolicy> preset_policy(int idx) {
  return std::make_shared<const serve::StaticAttentionPolicy>(
      preset_name(idx), serve::AttentionRoute::kSparse);
}

std::shared_ptr<const serve::CostModelGatedPolicy> gated_policy(
    const serve::EngineConfig& cfg, const cost::GpuSpec& spec,
    std::size_t batch) {
  return serve::make_cost_model_gated_policy(spec, cfg, batch);
}

const char* preset_name(int idx) {
  switch (idx) {
    case 0:
      return "LServe";
    case 1:
      return "vLLM";
    case 2:
      return "QServe";
    case 3:
      return "DuoAttention";
    case 4:
      return "Quest";
    case 5:
      return "MInference";
  }
  return "?";
}

}  // namespace lserve::baselines
