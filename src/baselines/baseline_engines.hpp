// Baseline engine presets (DESIGN.md S7).
//
// Each preset returns an EngineConfig that reproduces one comparison
// system's policy on top of the shared substrate:
//
//   vLLM         — fp16 KV, paged dense attention, no sparsity.
//   QServe       — 4-bit KV, larger pages, dense attention (W4A8KV4's KV
//                  side; weight/activation quantization is outside the
//                  attention scope reproduced here).
//   DuoAttention — fp16 KV, 50% streaming heads, dense retrieval heads.
//   Quest        — fp16 KV, 16-token pages, flat query-aware page
//                  selection every step, no streaming heads (MHA only in
//                  the paper; works for GQA here as well).
//   MInference   — fp16 KV, dynamic prefill block sparsity, dense decode.
//   LServe       — 4-bit KV on 64-token physical / 16-token logical pages,
//                  50% streaming heads, hierarchical selection with a
//                  4096-token budget, reuse interval 4.
//
// Token budgets and sink/local sizes follow the paper's defaults; tests
// and benches override fields for scaled-down geometries.
#pragma once

#include "serve/engine.hpp"

namespace lserve::baselines {

serve::EngineConfig lserve_config(const model::ModelConfig& m);
serve::EngineConfig vllm_config(const model::ModelConfig& m);
serve::EngineConfig qserve_config(const model::ModelConfig& m);
serve::EngineConfig duo_attention_config(const model::ModelConfig& m);
serve::EngineConfig quest_config(const model::ModelConfig& m);
serve::EngineConfig minference_config(const model::ModelConfig& m);

/// Names every preset for bench table headers, in the order above.
const char* preset_name(int idx);

}  // namespace lserve::baselines
