// Baseline engine presets (DESIGN.md S7).
//
// Each preset returns an EngineConfig that reproduces one comparison
// system's policy on top of the shared substrate:
//
//   vLLM         — fp16 KV, paged dense attention, no sparsity.
//   QServe       — 4-bit KV, larger pages, dense attention (W4A8KV4's KV
//                  side; weight/activation quantization is outside the
//                  attention scope reproduced here).
//   DuoAttention — fp16 KV, 50% streaming heads, dense retrieval heads.
//   Quest        — fp16 KV, 16-token pages, flat query-aware page
//                  selection every step, no streaming heads (MHA only in
//                  the paper; works for GQA here as well).
//   MInference   — fp16 KV, dynamic prefill block sparsity, dense decode.
//   LServe       — 4-bit KV on 64-token physical / 16-token logical pages,
//                  50% streaming heads, hierarchical selection with a
//                  4096-token budget, reuse interval 4.
//
// Token budgets and sink/local sizes follow the paper's defaults; tests
// and benches override fields for scaled-down geometries.
#pragma once

#include <memory>

#include "costmodel/gpu_spec.hpp"
#include "serve/engine.hpp"

namespace lserve::baselines {

serve::EngineConfig lserve_config(const model::ModelConfig& m);
serve::EngineConfig vllm_config(const model::ModelConfig& m);
serve::EngineConfig qserve_config(const model::ModelConfig& m);
serve::EngineConfig duo_attention_config(const model::ModelConfig& m);
serve::EngineConfig quest_config(const model::ModelConfig& m);
serve::EngineConfig minference_config(const model::ModelConfig& m);

/// Names every preset for bench table headers, in the order above.
const char* preset_name(int idx);

/// The preset as a policy object: a static run-as-configured route named
/// after preset `idx` (the order above). Presets without dynamic decode
/// route kSparse too — for them the routes coincide, so "as configured"
/// is the faithful policy translation of every config blob.
std::shared_ptr<const serve::AttentionPolicy> preset_policy(int idx);

/// LServe's cost-model gate for `cfg` served on `spec` at decode batch
/// `batch`: dense attention below the modeled sparse-vs-dense crossover,
/// the configured hybrid pipeline at or past it. Convenience wrapper over
/// serve::make_cost_model_gated_policy for bench/test call sites that
/// already hold a preset config.
std::shared_ptr<const serve::CostModelGatedPolicy> gated_policy(
    const serve::EngineConfig& cfg, const cost::GpuSpec& spec,
    std::size_t batch);

}  // namespace lserve::baselines
