// RULER-proxy: retrieval, multi-hop tracing and aggregation tasks over
// planted streams (Table 3 / Table 6 substitute).
//
// RULER stresses behaviours beyond single-needle search; the proxies here
// exercise the same failure modes of sparse policies:
//   * retrieval    — k independent needles, each probed (misses = dropped
//                    needle pages);
//   * multi_hop    — pointer chase where hop i's retrieved VALUE is hop
//                    i+1's query (errors compound, as in RULER's
//                    variable-tracking);
//   * aggregation  — many relevant sites whose answers must all be kept
//                    (punishes over-pruning even when each site is "easy").
// The composite score is the mean over tasks, scaled to 0-100 like RULER.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "eval/metrics.hpp"
#include "kv/page.hpp"

namespace lserve::eval {

/// One RULER-proxy run's configuration.
struct RulerConfig {
  std::size_t seq_len = 65536;
  std::size_t head_dim = 64;
  kv::PageConfig pages;
  ProbePolicy policy;
  std::size_t retrieval_needles = 4;
  std::size_t hops = 3;
  std::size_t aggregation_sites = 8;
  /// Planted-signal strength; <= 0 selects model::salient_strength.
  float strength = 0.0f;
  /// Distractor competition (see model::StreamConfig): makes selection
  /// non-trivial so sparse-vs-dense deltas are informative.
  float distractor_rate = 0.10f;
  float distractor_strength_frac = 0.85f;
  std::size_t trials = 3;           ///< independent seeds averaged.
  std::size_t reuse_interval = 1;   ///< selector reuse chunk (Table 6).
  std::uint64_t seed = 11;
};

/// Per-task and composite scores, 0-100.
struct RulerResult {
  double retrieval = 0.0;
  double multi_hop = 0.0;
  double aggregation = 0.0;
  double composite() const {
    return (retrieval + multi_hop + aggregation) / 3.0;
  }
};

/// Runs the three proxy tasks.
RulerResult run_ruler(const RulerConfig& cfg);

/// Reuse-sensitivity tracking task (Table 6 substitute): a query target
/// drifts slowly through the context over `steps` decode steps; the page
/// selection is refreshed only every cfg.reuse_interval steps (stale
/// tables in between, exactly the ReusableSelector semantics). Returns
/// mean per-step retrieval accuracy, 0-100. Accuracy stays flat while the
/// drift within a chunk remains inside the selected pages and degrades for
/// large intervals.
double run_tracking(const RulerConfig& cfg, std::size_t steps = 48);

}  // namespace lserve::eval
