// Single-head attention probes and accuracy metrics.
//
// Accuracy experiments run at the attention-subsystem level: a planted
// TokenStream is written into a real paged cache, a probe query is issued
// through the policy under test (dense / flat selection / hierarchical
// selection / streaming), and the retrieved output is scored against the
// planted ground truth. This exercises the exact mechanism the paper's
// accuracy figures probe — whether a sparsity policy keeps the pages that
// matter — without model weights (DESIGN.md §2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "kv/kv_cache.hpp"
#include "kv/page_allocator.hpp"
#include "kv/two_way_cache.hpp"
#include "model/workload.hpp"
#include "sparse/quest_selector.hpp"

namespace lserve::eval {

/// Appends every token of `stream` into `head`.
void fill_head_cache(kv::PageAllocator& alloc, kv::HeadCache& head,
                     const model::TokenStream& stream);

/// Which single-head attention pathway a probe exercises.
enum class PolicyKind {
  kDense = 0,       ///< full history (oracle / vLLM-like).
  kFlatSelect = 1,  ///< Quest-style page-level min/max selection.
  kHierSelect = 2,  ///< LServe hierarchical logical-page selection.
  kStreaming = 3,   ///< Λ mask: sink + local pages only.
};

/// Probe policy description.
struct ProbePolicy {
  PolicyKind kind = PolicyKind::kDense;
  sparse::PageSelectorConfig selector;  ///< for kFlatSelect/kHierSelect.
  std::size_t sink_tokens = 64;         ///< for kStreaming.
  std::size_t local_tokens = 256;
};

/// Builds the pruned page table the policy would attend over (the
/// selector's output; exposed so reuse experiments can hold it stale).
kv::SelectedPageTable policy_table(const kv::PageAllocator& alloc,
                                   const kv::HeadCache& head, const float* q,
                                   const ProbePolicy& policy);

/// Runs one decode-attention probe against the filled cache.
std::vector<float> run_probe(const kv::PageAllocator& alloc,
                             const kv::HeadCache& head, const float* q,
                             const ProbePolicy& policy);

/// Probe with an externally-supplied (possibly stale) page table.
std::vector<float> run_probe_on_table(const kv::PageAllocator& alloc,
                                      const kv::HeadCache& head,
                                      const kv::SelectedPageTable& table,
                                      const float* q);

/// Number of pages the policy visited for this cache state (work proxy).
std::size_t probe_pages_visited(const kv::PageAllocator& alloc,
                                const kv::HeadCache& head, const float* q,
                                const ProbePolicy& policy);

/// Retrieval accuracy in [0,1]: cosine similarity of the retrieved output
/// with the planted target, clamped at 0.
float retrieval_accuracy(std::span<const float> out,
                         std::span<const float> target);

/// Mean of a vector (convenience for reporting).
double mean(std::span<const double> xs);

}  // namespace lserve::eval
