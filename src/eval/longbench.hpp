// LongBench-proxy task suite (Tables 2/8 substitute).
//
// Each LongBench task is mapped to a planted-structure proxy whose
// attention-level demands match the original task family:
//   2WikiMQA / HotpotQA — 2-hop pointer chains (multi-document QA);
//   DuReader / Qasper / TriviaQA — single-needle retrieval at varying
//                                  depth and context length;
//   MultiNews / QMSum — aggregation over many scattered sites
//                       (summarization reads everything);
//   SamSum — local task: the answer lives in the recent window, so the
//            streaming pathway alone suffices (dialogue summarization of
//            the final exchange).
// Scores are 0-100 per task; the interesting quantity is the DELTA between
// a sparse policy and the dense oracle, matching how Table 2 is read.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "eval/metrics.hpp"
#include "kv/page.hpp"

namespace lserve::eval {

/// One proxy task's identity and score.
struct LongBenchRow {
  std::string task;
  double score = 0.0;  ///< 0-100.
};

/// Suite configuration.
struct LongBenchConfig {
  std::size_t head_dim = 64;
  kv::PageConfig pages;
  ProbePolicy policy;
  std::size_t trials = 3;
  /// Planted-signal strength; <= 0 selects model::salient_strength.
  float strength = 0.0f;
  /// Distractor competition (see model::StreamConfig).
  float distractor_rate = 0.10f;
  float distractor_strength_frac = 0.85f;
  std::uint64_t seed = 13;
};

/// Runs the 8-task proxy suite; rows come back in the paper's task order.
std::vector<LongBenchRow> run_longbench(const LongBenchConfig& cfg);

/// Average score over rows.
double longbench_average(const std::vector<LongBenchRow>& rows);

}  // namespace lserve::eval
