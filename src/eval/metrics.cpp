#include "eval/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "attn/decode_attention.hpp"
#include "numeric/math.hpp"
#include "sparse/hierarchical_selector.hpp"

namespace lserve::eval {

void fill_head_cache(kv::PageAllocator& alloc, kv::HeadCache& head,
                     const model::TokenStream& stream) {
  for (std::size_t t = 0; t < stream.keys.rows(); ++t) {
    head.append(alloc, stream.keys.row(t), stream.values.row(t));
  }
}

kv::SelectedPageTable policy_table(const kv::PageAllocator& alloc,
                                   const kv::HeadCache& head, const float* q,
                                   const ProbePolicy& policy) {
  const kv::PageTableView view = head.view(alloc);
  switch (policy.kind) {
    case PolicyKind::kDense:
      return kv::full_page_table(view);
    case PolicyKind::kFlatSelect:
      return sparse::select_pages_flat(alloc, head, q, policy.selector);
    case PolicyKind::kHierSelect:
      return sparse::select_pages_hierarchical(alloc, head, q,
                                               policy.selector);
    case PolicyKind::kStreaming: {
      const std::size_t np = view.page_size;
      const std::size_t blocks = view.num_blocks();
      const std::size_t sink_blocks =
          std::min(blocks, (policy.sink_tokens + np - 1) / np);
      const std::size_t local_blocks =
          std::min(blocks, (policy.local_tokens + np - 1) / np);
      kv::SelectedPageTable table;
      for (std::size_t b = 0; b < blocks; ++b) {
        const bool sink = b < sink_blocks;
        const bool local = b + local_blocks >= blocks;
        if (sink || local) {
          table.push_back({view.pages[b], static_cast<std::uint32_t>(b)});
        }
      }
      return table;
    }
  }
  return {};
}

std::vector<float> run_probe(const kv::PageAllocator& alloc,
                             const kv::HeadCache& head, const float* q,
                             const ProbePolicy& policy) {
  return run_probe_on_table(alloc, head, policy_table(alloc, head, q, policy),
                            q);
}

std::vector<float> run_probe_on_table(const kv::PageAllocator& alloc,
                                      const kv::HeadCache& head,
                                      const kv::SelectedPageTable& table,
                                      const float* q) {
  const std::size_t d = alloc.config().head_dim;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  std::vector<float> out(d, 0.0f);
  attn::sparse_paged_decode(alloc, table, head.tokens(), q, d, scale,
                            out.data());
  return out;
}

std::size_t probe_pages_visited(const kv::PageAllocator& alloc,
                                const kv::HeadCache& head, const float* q,
                                const ProbePolicy& policy) {
  return policy_table(alloc, head, q, policy).size();
}

float retrieval_accuracy(std::span<const float> out,
                         std::span<const float> target) {
  assert(out.size() == target.size());
  const float cos =
      num::cosine_similarity(out.data(), target.data(), out.size());
  return std::max(0.0f, cos);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace lserve::eval
