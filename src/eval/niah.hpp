// Needle-in-a-Haystack (NIAH) pressure test over planted streams.
//
// Reproduces the paper's NIAH grids (Figs 6, 9, 13): for every
// (context length, needle depth) cell, a needle is planted, the stream is
// written into a paged cache at the configured page geometry and KV
// precision, and the policy under test answers a needle-aligned probe.
// Cell accuracy is the clamped cosine of the retrieved output with the
// planted payload; the dense policy defines the ceiling.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "eval/metrics.hpp"
#include "kv/page.hpp"

namespace lserve::eval {

/// Grid + cache geometry for a NIAH sweep.
struct NiahConfig {
  std::vector<std::size_t> lengths{8192, 16384, 32768, 65536};
  std::vector<double> depths{0.0, 0.11, 0.22, 0.33, 0.44,
                             0.56, 0.67, 0.78, 0.89};
  std::size_t head_dim = 64;
  kv::PageConfig pages;       ///< NP/NL/dtype under test.
  ProbePolicy policy;         ///< pathway under test.
  /// Needle/probe strength; <= 0 selects model::salient_strength(len, dim)
  /// so the needle dominates the softmax at every context length.
  float needle_strength = 0.0f;
  float probe_noise = 0.05f;
  /// Distractor density / relative strength (see model::StreamConfig).
  /// Calibrated so the page-size dilemma emerges exactly as in Fig 6:
  /// flat selection is lossless at 16-token pages, degraded at 64-token
  /// pages, while hierarchical NP=64/NL=16 recovers (Fig 13).
  float distractor_rate = 0.15f;
  float distractor_strength_frac = 0.9f;
  std::uint64_t seed = 7;
};

/// Result grid: accuracy[length_idx][depth_idx] in [0,1].
struct NiahResult {
  std::vector<std::size_t> lengths;
  std::vector<double> depths;
  std::vector<std::vector<double>> accuracy;

  double mean_accuracy() const;
  /// Paper-style heatmap rows rendered as ASCII (one char per cell:
  /// '#'>=0.9, '+'>=0.7, '-'>=0.4, '.'<0.4).
  std::string ascii_heatmap() const;
};

/// Runs the sweep.
NiahResult run_niah(const NiahConfig& cfg);

}  // namespace lserve::eval
