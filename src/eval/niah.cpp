#include "eval/niah.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/rng.hpp"

namespace lserve::eval {

double NiahResult::mean_accuracy() const {
  double s = 0.0;
  std::size_t n = 0;
  for (const auto& row : accuracy) {
    for (double a : row) {
      s += a;
      ++n;
    }
  }
  return n > 0 ? s / static_cast<double>(n) : 0.0;
}

std::string NiahResult::ascii_heatmap() const {
  std::string out;
  for (std::size_t li = 0; li < accuracy.size(); ++li) {
    out += "  ";
    for (double a : accuracy[li]) {
      out += a >= 0.9 ? '#' : a >= 0.7 ? '+' : a >= 0.4 ? '-' : '.';
    }
    out += "  (";
    out += std::to_string(lengths[li]);
    out += " tokens)\n";
  }
  return out;
}

NiahResult run_niah(const NiahConfig& cfg) {
  NiahResult result;
  result.lengths = cfg.lengths;
  result.depths = cfg.depths;
  result.accuracy.resize(cfg.lengths.size());

  for (std::size_t li = 0; li < cfg.lengths.size(); ++li) {
    const std::size_t n = cfg.lengths[li];
    result.accuracy[li].resize(cfg.depths.size());
    for (std::size_t di = 0; di < cfg.depths.size(); ++di) {
      const std::uint64_t cell_seed =
          num::split_seed(cfg.seed, li * 1000 + di);

      const float strength =
          cfg.needle_strength > 0.0f
              ? cfg.needle_strength
              : model::salient_strength(n, cfg.head_dim);
      model::StreamConfig sc;
      sc.n_tokens = n;
      sc.head_dim = cfg.head_dim;
      sc.seed = cell_seed;
      sc.distractor_rate = cfg.distractor_rate;
      sc.distractor_strength = cfg.distractor_strength_frac * strength;
      model::TokenStream stream = model::smooth_stream(sc);

      const std::size_t pos = std::min<std::size_t>(
          n - 1, static_cast<std::size_t>(cfg.depths[di] *
                                          static_cast<double>(n - 1)));
      const model::Needle needle =
          model::plant_needle(stream, pos, strength, cell_seed + 1);
      const std::vector<float> q = model::probe_query(
          needle, strength, cfg.probe_noise, cell_seed + 2);

      kv::PageConfig pages = cfg.pages;
      pages.head_dim = cfg.head_dim;
      kv::PageAllocator alloc(pages, n / pages.page_size + 2);
      kv::HeadCache head;
      fill_head_cache(alloc, head, stream);

      const std::vector<float> out = run_probe(alloc, head, q.data(),
                                               cfg.policy);
      result.accuracy[li][di] =
          retrieval_accuracy(out, needle.payload);
    }
  }
  return result;
}

}  // namespace lserve::eval
