#include "eval/ruler.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/math.hpp"
#include "numeric/rng.hpp"

namespace lserve::eval {
namespace {

struct CacheFixture {
  kv::PageAllocator alloc;
  kv::HeadCache head;

  CacheFixture(const kv::PageConfig& pages, std::size_t n)
      : alloc(pages, n / pages.page_size + 2) {}
};

std::vector<std::size_t> spread_positions(std::size_t count, std::size_t n,
                                          num::Rng& rng) {
  // Evenly spaced with jitter; avoids the always-kept first/last pages so
  // the selector is actually tested.
  std::vector<std::size_t> pos(count);
  const std::size_t lo = n / 16;
  const std::size_t hi = n - n / 16;
  const std::size_t span = (hi - lo) / std::max<std::size_t>(1, count);
  for (std::size_t i = 0; i < count; ++i) {
    pos[i] = lo + i * span + rng.next_below(std::max<std::size_t>(1, span / 2));
    pos[i] = std::min(pos[i], n - 2);
  }
  return pos;
}

float resolved_strength(const RulerConfig& cfg) {
  return cfg.strength > 0.0f
             ? cfg.strength
             : model::salient_strength(cfg.seq_len, cfg.head_dim);
}

double retrieval_task(const RulerConfig& cfg, std::uint64_t seed) {
  const float strength = resolved_strength(cfg);
  model::StreamConfig sc;
  sc.n_tokens = cfg.seq_len;
  sc.head_dim = cfg.head_dim;
  sc.seed = seed;
  sc.distractor_rate = cfg.distractor_rate;
  sc.distractor_strength = cfg.distractor_strength_frac * strength;
  model::TokenStream stream = model::smooth_stream(sc);
  num::Rng rng(seed);
  const auto positions =
      spread_positions(cfg.retrieval_needles, cfg.seq_len, rng);
  std::vector<model::Needle> needles;
  needles.reserve(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    needles.push_back(model::plant_needle(stream, positions[i], strength,
                                          num::split_seed(seed, 100 + i)));
  }

  kv::PageConfig pages = cfg.pages;
  pages.head_dim = cfg.head_dim;
  CacheFixture fix(pages, cfg.seq_len);
  fill_head_cache(fix.alloc, fix.head, stream);

  double acc = 0.0;
  for (std::size_t i = 0; i < needles.size(); ++i) {
    const auto q = model::probe_query(needles[i], strength, 0.05f,
                                      num::split_seed(seed, 200 + i));
    const auto out = run_probe(fix.alloc, fix.head, q.data(), cfg.policy);
    acc += retrieval_accuracy(out, needles[i].payload);
  }
  return acc / static_cast<double>(needles.size());
}

double multi_hop_task(const RulerConfig& cfg, std::uint64_t seed) {
  const float strength = resolved_strength(cfg);
  model::StreamConfig sc;
  sc.n_tokens = cfg.seq_len;
  sc.head_dim = cfg.head_dim;
  sc.seed = seed;
  sc.distractor_rate = cfg.distractor_rate;
  sc.distractor_strength = cfg.distractor_strength_frac * strength;
  model::TokenStream stream = model::smooth_stream(sc);
  num::Rng rng(seed + 1);
  const auto positions = spread_positions(cfg.hops, cfg.seq_len, rng);
  const auto chain =
      model::plant_chain(stream, positions, strength, seed + 2);

  kv::PageConfig pages = cfg.pages;
  pages.head_dim = cfg.head_dim;
  CacheFixture fix(pages, cfg.seq_len);
  fill_head_cache(fix.alloc, fix.head, stream);

  // Pointer chase: each hop's retrieved value, renormalized, is the next
  // query direction. Errors compound across hops as in RULER tracing.
  std::vector<float> q =
      model::probe_query(chain.front(), strength, 0.05f, seed + 3);
  std::vector<float> out;
  for (std::size_t hop = 0; hop < chain.size(); ++hop) {
    out = run_probe(fix.alloc, fix.head, q.data(), cfg.policy);
    const float norm = num::l2_norm(out.data(), out.size());
    if (norm < 1e-9f) break;
    for (std::size_t c = 0; c < out.size(); ++c) {
      q[c] = strength * out[c] / norm;
    }
  }
  return retrieval_accuracy(out, chain.back().payload);
}

double aggregation_task(const RulerConfig& cfg, std::uint64_t seed) {
  const float strength = resolved_strength(cfg);
  model::StreamConfig sc;
  sc.n_tokens = cfg.seq_len;
  sc.head_dim = cfg.head_dim;
  sc.seed = seed;
  sc.distractor_rate = cfg.distractor_rate;
  sc.distractor_strength = cfg.distractor_strength_frac * strength;
  model::TokenStream stream = model::smooth_stream(sc);
  num::Rng rng(seed + 5);
  const auto positions =
      spread_positions(cfg.aggregation_sites, cfg.seq_len, rng);
  const auto plant =
      model::plant_aggregation(stream, positions, strength, seed + 6);

  kv::PageConfig pages = cfg.pages;
  pages.head_dim = cfg.head_dim;
  CacheFixture fix(pages, cfg.seq_len);
  fill_head_cache(fix.alloc, fix.head, stream);

  std::vector<float> q(cfg.head_dim);
  for (std::size_t c = 0; c < cfg.head_dim; ++c) {
    q[c] = strength * plant.direction[c];
  }
  const auto out = run_probe(fix.alloc, fix.head, q.data(), cfg.policy);

  // Ground truth: softmax over equal-score sites = payload mean.
  std::vector<float> target(cfg.head_dim, 0.0f);
  for (const auto& payload : plant.payloads) {
    num::axpy(1.0f / static_cast<float>(plant.payloads.size()),
              payload.data(), target.data(), cfg.head_dim);
  }
  return retrieval_accuracy(out, target);
}

}  // namespace

RulerResult run_ruler(const RulerConfig& cfg) {
  RulerResult r;
  for (std::size_t t = 0; t < cfg.trials; ++t) {
    const std::uint64_t seed = num::split_seed(cfg.seed, t);
    r.retrieval += retrieval_task(cfg, seed);
    r.multi_hop += multi_hop_task(cfg, seed);
    r.aggregation += aggregation_task(cfg, seed);
  }
  const double scale = 100.0 / static_cast<double>(cfg.trials);
  r.retrieval *= scale;
  r.multi_hop *= scale;
  r.aggregation *= scale;
  return r;
}

double run_tracking(const RulerConfig& cfg, std::size_t steps) {
  double total = 0.0;
  const float strength = resolved_strength(cfg);
  // Key direction drifts slowly (queries stay similar step over step);
  // payloads decorrelate ~2.5x faster so that attending to a STALE page
  // yields a visibly wrong answer. Both rates are per decode step.
  const float theta_key = 0.12f;
  const float theta_payload = 0.30f;
  for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
    const std::uint64_t seed = num::split_seed(cfg.seed, 900 + trial);
    model::StreamConfig sc;
    sc.n_tokens = cfg.seq_len;
    sc.head_dim = cfg.head_dim;
    sc.seed = seed;
    // Distractor competition is what makes stale (low-alignment) pages
    // lose their selector rank; without it any salient page stays in the
    // top-K forever and reuse would look free at every interval.
    sc.distractor_rate = 0.05f;
    sc.distractor_strength = 0.8f * strength;
    model::TokenStream stream = model::smooth_stream(sc);

    // A drifting target: one needle per PHYSICAL page, whose key direction
    // and value payload both rotate slowly step over step. Consecutive
    // queries are therefore similar (the temporal locality Reusable Page
    // Selection exploits), but a table refreshed at step t0 mis-ranks the
    // pages needed around step t0 + C once the drift angle has grown.
    num::Rng rng(seed + 1);
    auto rotate_unit = [&](std::vector<float>& v, float theta) {
      const std::vector<float> fresh = rng.unit_vector(v.size());
      for (std::size_t c = 0; c < v.size(); ++c) {
        v[c] = std::cos(theta) * v[c] + std::sin(theta) * fresh[c];
      }
      const float norm = num::l2_norm(v.data(), v.size());
      for (auto& x : v) x /= norm;
    };

    const std::size_t page = cfg.pages.page_size;
    const std::size_t base = cfg.seq_len / 3;
    std::vector<model::Needle> targets;
    targets.reserve(steps);
    std::vector<float> dir = rng.unit_vector(cfg.head_dim);
    std::vector<float> payload = rng.unit_vector(cfg.head_dim);
    for (std::size_t t = 0; t < steps; ++t) {
      model::Needle needle;
      needle.pos = std::min(base + t * page, cfg.seq_len - 2);
      needle.direction = dir;
      needle.payload = payload;
      float* key = stream.keys.row(needle.pos);
      float* val = stream.values.row(needle.pos);
      for (std::size_t c = 0; c < cfg.head_dim; ++c) {
        key[c] = strength * dir[c];
        val[c] = payload[c];
      }
      targets.push_back(std::move(needle));
      rotate_unit(dir, theta_key);
      rotate_unit(payload, theta_payload);
    }

    kv::PageConfig pages = cfg.pages;
    pages.head_dim = cfg.head_dim;
    CacheFixture fix(pages, cfg.seq_len);
    fill_head_cache(fix.alloc, fix.head, stream);

    // Decode loop with stale tables between chunk boundaries.
    kv::SelectedPageTable table;
    double acc = 0.0;
    const std::size_t interval = std::max<std::size_t>(1, cfg.reuse_interval);
    for (std::size_t t = 0; t < steps; ++t) {
      std::vector<float> q(cfg.head_dim);
      for (std::size_t c = 0; c < cfg.head_dim; ++c) {
        q[c] = strength * targets[t].direction[c];
      }
      if (t % interval == 0) {
        table = policy_table(fix.alloc, fix.head, q.data(), cfg.policy);
      }
      const auto out = run_probe_on_table(fix.alloc, fix.head, table,
                                          q.data());
      acc += retrieval_accuracy(out, targets[t].payload);
    }
    total += acc / static_cast<double>(steps);
  }
  return 100.0 * total / static_cast<double>(cfg.trials);
}

}  // namespace lserve::eval
