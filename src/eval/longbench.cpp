#include "eval/longbench.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iterator>
#include <string>

#include "numeric/math.hpp"
#include "numeric/rng.hpp"

namespace lserve::eval {
namespace {

struct TaskSpec {
  const char* name;
  enum Kind { kNeedle, kChain2, kAggregation, kLocal } kind;
  std::size_t seq_len;
  double depth;        // for kNeedle
  std::size_t sites;   // for kAggregation
};

constexpr TaskSpec kTasks[] = {
    {"2WikiMQA", TaskSpec::kChain2, 16384, 0.0, 0},
    {"DuReader", TaskSpec::kNeedle, 16384, 0.35, 0},
    {"HotpotQA", TaskSpec::kChain2, 12288, 0.0, 0},
    {"MultiNews", TaskSpec::kAggregation, 8192, 0.0, 6},
    {"Qasper", TaskSpec::kNeedle, 8192, 0.7, 0},
    {"QMSum", TaskSpec::kAggregation, 16384, 0.0, 8},
    {"SamSum", TaskSpec::kLocal, 8192, 0.0, 0},
    {"TriviaQA", TaskSpec::kNeedle, 12288, 0.15, 0},
};

double needle_instance(const LongBenchConfig& cfg, std::size_t n,
                       double depth, std::uint64_t seed) {
  const float strength =
      cfg.strength > 0.0f ? cfg.strength
                          : model::salient_strength(n, cfg.head_dim);
  model::StreamConfig sc;
  sc.n_tokens = n;
  sc.head_dim = cfg.head_dim;
  sc.seed = seed;
  sc.distractor_rate = cfg.distractor_rate;
  sc.distractor_strength = cfg.distractor_strength_frac * strength;
  model::TokenStream stream = model::smooth_stream(sc);
  const auto pos = static_cast<std::size_t>(depth * static_cast<double>(n - 2));
  const auto needle =
      model::plant_needle(stream, std::max<std::size_t>(pos, 1),
                          strength, seed + 1);
  const auto q = model::probe_query(needle, strength, 0.05f, seed + 2);

  kv::PageConfig pages = cfg.pages;
  pages.head_dim = cfg.head_dim;
  kv::PageAllocator alloc(pages, n / pages.page_size + 2);
  kv::HeadCache head;
  fill_head_cache(alloc, head, stream);
  const auto out = run_probe(alloc, head, q.data(), cfg.policy);
  return retrieval_accuracy(out, needle.payload);
}

double chain2_instance(const LongBenchConfig& cfg, std::size_t n,
                       std::uint64_t seed) {
  const float strength =
      cfg.strength > 0.0f ? cfg.strength
                          : model::salient_strength(n, cfg.head_dim);
  model::StreamConfig sc;
  sc.n_tokens = n;
  sc.head_dim = cfg.head_dim;
  sc.seed = seed;
  sc.distractor_rate = cfg.distractor_rate;
  sc.distractor_strength = cfg.distractor_strength_frac * strength;
  model::TokenStream stream = model::smooth_stream(sc);
  const std::vector<std::size_t> positions{n / 5, (3 * n) / 4};
  const auto chain = model::plant_chain(stream, positions, strength,
                                        seed + 1);

  kv::PageConfig pages = cfg.pages;
  pages.head_dim = cfg.head_dim;
  kv::PageAllocator alloc(pages, n / pages.page_size + 2);
  kv::HeadCache head;
  fill_head_cache(alloc, head, stream);

  std::vector<float> q =
      model::probe_query(chain.front(), strength, 0.05f, seed + 2);
  std::vector<float> out;
  for (std::size_t hop = 0; hop < chain.size(); ++hop) {
    out = run_probe(alloc, head, q.data(), cfg.policy);
    const float norm = num::l2_norm(out.data(), out.size());
    if (norm < 1e-9f) break;
    for (std::size_t c = 0; c < out.size(); ++c) {
      q[c] = strength * out[c] / norm;
    }
  }
  return retrieval_accuracy(out, chain.back().payload);
}

double aggregation_instance(const LongBenchConfig& cfg, std::size_t n,
                            std::size_t sites, std::uint64_t seed) {
  const float strength =
      cfg.strength > 0.0f ? cfg.strength
                          : model::salient_strength(n, cfg.head_dim);
  model::StreamConfig sc;
  sc.n_tokens = n;
  sc.head_dim = cfg.head_dim;
  sc.seed = seed;
  sc.distractor_rate = cfg.distractor_rate;
  sc.distractor_strength = cfg.distractor_strength_frac * strength;
  model::TokenStream stream = model::smooth_stream(sc);
  std::vector<std::size_t> positions(sites);
  for (std::size_t i = 0; i < sites; ++i) {
    positions[i] = n / 8 + i * (3 * n / 4) / sites;
  }
  const auto plant =
      model::plant_aggregation(stream, positions, strength, seed + 1);

  kv::PageConfig pages = cfg.pages;
  pages.head_dim = cfg.head_dim;
  kv::PageAllocator alloc(pages, n / pages.page_size + 2);
  kv::HeadCache head;
  fill_head_cache(alloc, head, stream);

  std::vector<float> q(cfg.head_dim);
  for (std::size_t c = 0; c < cfg.head_dim; ++c) {
    q[c] = strength * plant.direction[c];
  }
  const auto out = run_probe(alloc, head, q.data(), cfg.policy);
  std::vector<float> target(cfg.head_dim, 0.0f);
  for (const auto& payload : plant.payloads) {
    num::axpy(1.0f / static_cast<float>(plant.payloads.size()),
              payload.data(), target.data(), cfg.head_dim);
  }
  return retrieval_accuracy(out, target);
}

double local_instance(const LongBenchConfig& cfg, std::size_t n,
                      std::uint64_t seed) {
  const float strength =
      cfg.strength > 0.0f ? cfg.strength
                          : model::salient_strength(n, cfg.head_dim);
  // Answer in the most recent 128 tokens: every policy that keeps the
  // recent window (all of ours do) should succeed.
  model::StreamConfig sc;
  sc.n_tokens = n;
  sc.head_dim = cfg.head_dim;
  sc.seed = seed;
  sc.distractor_rate = cfg.distractor_rate;
  sc.distractor_strength = cfg.distractor_strength_frac * strength;
  model::TokenStream stream = model::smooth_stream(sc);
  const std::size_t pos = n - 1 - (seed % 96);
  const auto needle =
      model::plant_needle(stream, pos, strength, seed + 1);
  const auto q = model::probe_query(needle, strength, 0.05f, seed + 2);

  kv::PageConfig pages = cfg.pages;
  pages.head_dim = cfg.head_dim;
  kv::PageAllocator alloc(pages, n / pages.page_size + 2);
  kv::HeadCache head;
  fill_head_cache(alloc, head, stream);
  const auto out = run_probe(alloc, head, q.data(), cfg.policy);
  return retrieval_accuracy(out, needle.payload);
}

}  // namespace

std::vector<LongBenchRow> run_longbench(const LongBenchConfig& cfg) {
  std::vector<LongBenchRow> rows;
  rows.reserve(std::size(kTasks));
  for (const TaskSpec& task : kTasks) {
    double acc = 0.0;
    for (std::size_t t = 0; t < cfg.trials; ++t) {
      const std::uint64_t seed =
          num::split_seed(cfg.seed, std::hash<std::string>{}(task.name) +
                                        t * 977);
      switch (task.kind) {
        case TaskSpec::kNeedle:
          acc += needle_instance(cfg, task.seq_len, task.depth, seed);
          break;
        case TaskSpec::kChain2:
          acc += chain2_instance(cfg, task.seq_len, seed);
          break;
        case TaskSpec::kAggregation:
          acc += aggregation_instance(cfg, task.seq_len, task.sites, seed);
          break;
        case TaskSpec::kLocal:
          acc += local_instance(cfg, task.seq_len, seed);
          break;
      }
    }
    rows.push_back(
        {task.name, 100.0 * acc / static_cast<double>(cfg.trials)});
  }
  return rows;
}

double longbench_average(const std::vector<LongBenchRow>& rows) {
  if (rows.empty()) return 0.0;
  double s = 0.0;
  for (const auto& row : rows) s += row.score;
  return s / static_cast<double>(rows.size());
}

}  // namespace lserve::eval
