#include "kv/two_way_cache.hpp"

#include <algorithm>
#include <cassert>

namespace lserve::kv {

PageWritePin StreamingHeadCache::append_page(PageAllocator& alloc,
                                             const StreamingConfig& cfg) {
  const std::size_t page_size = alloc.config().page_size;
  const std::size_t sink_blocks =
      (cfg.sink_tokens + page_size - 1) / page_size;
  const std::uint32_t block = static_cast<std::uint32_t>(tokens_ / page_size);

  if (tokens_ % page_size == 0) {
    const PageId id = alloc.allocate();
    if (block < sink_blocks) {
      sink_pages_.push_back(id);
    } else {
      local_pages_.push_back({block, id});
    }
  }
  return block < sink_blocks ? alloc.pin_mut(sink_pages_[block])
                             : alloc.pin_mut(local_pages_.back().page);
}

void StreamingHeadCache::append(PageAllocator& alloc,
                                const StreamingConfig& cfg, const float* key,
                                const float* value) {
  append_page(alloc, cfg).page().append(key, value);
  ++tokens_;
  evict_stale(alloc, cfg);
}

void StreamingHeadCache::append_roundtrip(PageAllocator& alloc,
                                          const StreamingConfig& cfg,
                                          float* key, float* value) {
  append_page(alloc, cfg).page().append_roundtrip(key, value);
  ++tokens_;
}

void StreamingHeadCache::evict_stale(PageAllocator& alloc,
                                     const StreamingConfig& cfg) {
  // Evict local pages whose entire block now precedes the local window.
  // Block b covers tokens [b*NP, (b+1)*NP); it is dead once its last token
  // is older than tokens_ - local_tokens.
  const std::size_t page_size = alloc.config().page_size;
  while (!local_pages_.empty()) {
    const LocalPage& oldest = local_pages_.front();
    const std::size_t block_end =
        (static_cast<std::size_t>(oldest.block) + 1) * page_size;
    if (tokens_ >= cfg.local_tokens + block_end) {
      alloc.release(oldest.page);
      local_pages_.pop_front();
    } else {
      break;
    }
  }
}

void StreamingHeadCache::attach(
    std::vector<PageId> sinks,
    const std::vector<std::pair<std::uint32_t, PageId>>& locals,
    std::size_t tokens) noexcept {
  assert(sink_pages_.empty() && local_pages_.empty() && tokens_ == 0);
  sink_pages_ = std::move(sinks);
  for (const auto& [block, page] : locals) {
    assert(local_pages_.empty() || local_pages_.back().block < block);
    local_pages_.push_back({block, page});
  }
  tokens_ = tokens;
}

PageId StreamingHeadCache::page_for_block(std::uint32_t block) const noexcept {
  if (block < sink_pages_.size()) return sink_pages_[block];
  for (const LocalPage& lp : local_pages_) {
    if (lp.block == block) return lp.page;
  }
  return kInvalidPage;
}

SelectedPageTable StreamingHeadCache::index_table() const {
  SelectedPageTable table;
  table.reserve(sink_pages_.size() + local_pages_.size());
  for (std::size_t b = 0; b < sink_pages_.size(); ++b) {
    table.push_back({sink_pages_[b], static_cast<std::uint32_t>(b)});
  }
  for (const LocalPage& lp : local_pages_) {
    // A sink block can also be the newest local block early in a sequence;
    // blocks are disjoint by construction so no dedup is needed.
    table.push_back({lp.page, lp.block});
  }
  return table;
}

void StreamingHeadCache::release(PageAllocator& alloc) noexcept {
  for (PageId id : sink_pages_) alloc.release(id);
  for (const LocalPage& lp : local_pages_) alloc.release(lp.page);
  sink_pages_.clear();
  local_pages_.clear();
  tokens_ = 0;
}

TwoWayKvCache::TwoWayKvCache(std::size_t layers, std::size_t kv_heads,
                             std::vector<HeadKind> kinds,
                             StreamingConfig streaming_cfg)
    : layers_(layers),
      kv_heads_(kv_heads),
      kinds_(std::move(kinds)),
      streaming_cfg_(streaming_cfg),
      dense_(layers * kv_heads),
      streaming_(layers * kv_heads) {
  assert(kinds_.size() == layers_ * kv_heads_);
}

void TwoWayKvCache::append(PageAllocator& dense_alloc,
                           PageAllocator& stream_alloc, std::size_t layer,
                           std::size_t h, const float* key,
                           const float* value) {
  const std::size_t idx = layer * kv_heads_ + h;
  if (kinds_[idx] == HeadKind::kDense) {
    dense_[idx].append(dense_alloc, key, value);
  } else {
    streaming_[idx].append(stream_alloc, streaming_cfg_, key, value);
  }
  // Count tokens once per model step: layer 0, head 0 is appended exactly
  // once per token in every execution path.
  if (layer == 0 && h == 0) ++tokens_seen_;
}

void TwoWayKvCache::append_roundtrip(PageAllocator& dense_alloc,
                                     PageAllocator& stream_alloc,
                                     std::size_t layer, std::size_t h,
                                     float* key, float* value) {
  const std::size_t idx = layer * kv_heads_ + h;
  if (kinds_[idx] == HeadKind::kDense) {
    dense_[idx].append_roundtrip(dense_alloc, key, value);
  } else {
    streaming_[idx].append_roundtrip(stream_alloc, streaming_cfg_, key,
                                     value);
  }
  if (layer == 0 && h == 0) ++tokens_seen_;
}

void TwoWayKvCache::evict_stale(PageAllocator& stream_alloc,
                                std::size_t layer) {
  for (std::size_t h = 0; h < kv_heads_; ++h) {
    const std::size_t idx = layer * kv_heads_ + h;
    if (kinds_[idx] == HeadKind::kStreaming) {
      streaming_[idx].evict_stale(stream_alloc, streaming_cfg_);
    }
  }
}

const HeadCache& TwoWayKvCache::dense_head(std::size_t layer,
                                           std::size_t h) const {
  const std::size_t idx = layer * kv_heads_ + h;
  assert(kinds_[idx] == HeadKind::kDense);
  return dense_[idx];
}

HeadCache& TwoWayKvCache::dense_head(std::size_t layer, std::size_t h) {
  const std::size_t idx = layer * kv_heads_ + h;
  assert(kinds_[idx] == HeadKind::kDense);
  return dense_[idx];
}

const StreamingHeadCache& TwoWayKvCache::streaming_head(std::size_t layer,
                                                        std::size_t h) const {
  const std::size_t idx = layer * kv_heads_ + h;
  assert(kinds_[idx] == HeadKind::kStreaming);
  return streaming_[idx];
}

StreamingHeadCache& TwoWayKvCache::streaming_head(std::size_t layer,
                                                  std::size_t h) {
  const std::size_t idx = layer * kv_heads_ + h;
  assert(kinds_[idx] == HeadKind::kStreaming);
  return streaming_[idx];
}

void TwoWayKvCache::release(PageAllocator& dense_alloc,
                            PageAllocator& stream_alloc) {
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == HeadKind::kDense) {
      dense_[i].release(dense_alloc);
    } else {
      streaming_[i].release(stream_alloc);
    }
  }
  tokens_seen_ = 0;
}

}  // namespace lserve::kv
