#include "kv/two_way_cache.hpp"

#include <algorithm>
#include <cassert>

namespace lserve::kv {

void StreamingHeadCache::append(PageAllocator& alloc,
                                const StreamingConfig& cfg, const float* key,
                                const float* value) {
  const std::size_t page_size = alloc.config().page_size;
  const std::size_t sink_blocks =
      (cfg.sink_tokens + page_size - 1) / page_size;
  const std::uint32_t block = static_cast<std::uint32_t>(tokens_ / page_size);

  if (tokens_ % page_size == 0) {
    const PageId id = alloc.allocate();
    if (block < sink_blocks) {
      sink_pages_.push_back(id);
    } else {
      local_pages_.push_back({block, id});
    }
  }

  Page* page = nullptr;
  if (block < sink_blocks) {
    page = &alloc.get(sink_pages_[block]);
  } else {
    page = &alloc.get(local_pages_.back().page);
  }
  page->append(key, value);
  ++tokens_;

  // Evict local pages whose entire block now precedes the local window.
  // Block b covers tokens [b*NP, (b+1)*NP); it is dead once its last token
  // is older than tokens_ - local_tokens.
  while (!local_pages_.empty()) {
    const LocalPage& oldest = local_pages_.front();
    const std::size_t block_end =
        (static_cast<std::size_t>(oldest.block) + 1) * page_size;
    if (tokens_ >= cfg.local_tokens + block_end) {
      alloc.free(oldest.page);
      local_pages_.pop_front();
    } else {
      break;
    }
  }
}

SelectedPageTable StreamingHeadCache::index_table() const {
  SelectedPageTable table;
  table.reserve(sink_pages_.size() + local_pages_.size());
  for (std::size_t b = 0; b < sink_pages_.size(); ++b) {
    table.push_back({sink_pages_[b], static_cast<std::uint32_t>(b)});
  }
  for (const LocalPage& lp : local_pages_) {
    // A sink block can also be the newest local block early in a sequence;
    // blocks are disjoint by construction so no dedup is needed.
    table.push_back({lp.page, lp.block});
  }
  return table;
}

void StreamingHeadCache::release(PageAllocator& alloc) noexcept {
  for (PageId id : sink_pages_) alloc.free(id);
  for (const LocalPage& lp : local_pages_) alloc.free(lp.page);
  sink_pages_.clear();
  local_pages_.clear();
  tokens_ = 0;
}

TwoWayKvCache::TwoWayKvCache(std::size_t layers, std::size_t kv_heads,
                             std::vector<HeadKind> kinds,
                             StreamingConfig streaming_cfg)
    : layers_(layers),
      kv_heads_(kv_heads),
      kinds_(std::move(kinds)),
      streaming_cfg_(streaming_cfg),
      dense_(layers * kv_heads),
      streaming_(layers * kv_heads) {
  assert(kinds_.size() == layers_ * kv_heads_);
}

void TwoWayKvCache::append(PageAllocator& dense_alloc,
                           PageAllocator& stream_alloc, std::size_t layer,
                           std::size_t h, const float* key,
                           const float* value) {
  const std::size_t idx = layer * kv_heads_ + h;
  if (kinds_[idx] == HeadKind::kDense) {
    dense_[idx].append(dense_alloc, key, value);
  } else {
    streaming_[idx].append(stream_alloc, streaming_cfg_, key, value);
  }
  // Count tokens once per model step: layer 0, head 0 is appended exactly
  // once per token in every execution path.
  if (layer == 0 && h == 0) ++tokens_seen_;
}

const HeadCache& TwoWayKvCache::dense_head(std::size_t layer,
                                           std::size_t h) const {
  const std::size_t idx = layer * kv_heads_ + h;
  assert(kinds_[idx] == HeadKind::kDense);
  return dense_[idx];
}

HeadCache& TwoWayKvCache::dense_head(std::size_t layer, std::size_t h) {
  const std::size_t idx = layer * kv_heads_ + h;
  assert(kinds_[idx] == HeadKind::kDense);
  return dense_[idx];
}

const StreamingHeadCache& TwoWayKvCache::streaming_head(std::size_t layer,
                                                        std::size_t h) const {
  const std::size_t idx = layer * kv_heads_ + h;
  assert(kinds_[idx] == HeadKind::kStreaming);
  return streaming_[idx];
}

void TwoWayKvCache::release(PageAllocator& dense_alloc,
                            PageAllocator& stream_alloc) {
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == HeadKind::kDense) {
      dense_[i].release(dense_alloc);
    } else {
      streaming_[i].release(stream_alloc);
    }
  }
  tokens_seen_ = 0;
}

}  // namespace lserve::kv
