// Pool allocator for physical KV pages.
//
// Mirrors vLLM's block manager: a fixed-capacity pool of uniform pages plus
// a LIFO free list. Sequences hold PageIds, never pointers, so page tables
// stay trivially copyable — the property that makes selector output ("a
// shorter page table") cheap to build every decode step.
#pragma once

#include <cstddef>
#include <vector>

#include "kv/page.hpp"

namespace lserve::kv {

/// Fixed-config page pool with O(1) allocate/free.
class PageAllocator {
 public:
  /// `capacity` pages are reserved up front; storage inside each page is
  /// initialized lazily on first allocation.
  PageAllocator(PageConfig cfg, std::size_t capacity);

  /// Allocates a page; grows the pool if the free list is exhausted.
  PageId allocate();

  /// Returns a page to the free list. Double-free is a programming error
  /// (checked in debug builds).
  void free(PageId id) noexcept;

  Page& get(PageId id) noexcept { return pool_[id]; }
  const Page& get(PageId id) const noexcept { return pool_[id]; }

  const PageConfig& config() const noexcept { return cfg_; }
  std::size_t capacity() const noexcept { return pool_.size(); }
  std::size_t pages_in_use() const noexcept { return in_use_; }
  std::size_t peak_pages_in_use() const noexcept { return peak_in_use_; }

  /// Total device bytes of pages currently in use.
  double device_bytes_in_use() const noexcept;

 private:
  PageConfig cfg_;
  std::vector<Page> pool_;
  std::vector<PageId> free_list_;
  std::vector<std::uint8_t> live_;
  std::size_t in_use_ = 0;
  std::size_t peak_in_use_ = 0;
};

}  // namespace lserve::kv
