// Pool allocator for physical KV pages, with an optional two-tier store.
//
// Mirrors vLLM's block manager: a fixed-capacity pool of uniform pages plus
// a LIFO free list. Sequences hold PageIds, never pointers, so page tables
// stay trivially copyable — the property that makes selector output ("a
// shorter page table") cheap to build every decode step.
//
// Two-tier mode (TierConfig::hot_pages > 0) adds a bounded hot pool and a
// cold tier: when more than hot_pages live pages are resident, the
// coldest unpinned pages — lowest sparse-selector score, then least
// recently pinned — are serialized into an mmap-backed ColdStore (the CPU
// analog of GPU→host KV offload) and their RAM storage is dropped. Pages
// come back either asynchronously (a background prefetch thread promotes
// the pages a selector just chose, ahead of the attention walk) or
// synchronously when a pin misses. Demote→promote round trips are
// bit-exact: quantized codes, per-row quant params, and K_stats are
// copied verbatim, so tiering on ≡ tiering off for every output.
//
// Page access is pin-based: callers never hold a raw Page& across
// statements they don't control. PageRef is the copyable tier-aware
// handle; PagePin / PageWritePin are RAII resolutions that keep the page
// hot (and demotion-protected) for exactly the scope of the access:
//
//   kv::PagePin pin = alloc.pin(id);        // promotes if cold
//   pin.page().load_key(slot, out);         // Page& valid inside the scope
//   // ~PagePin() unpins; the page is demotable again
//
// In the single-tier default (hot_pages == 0) pin() is a branch and a
// pointer copy — no locking — so the untiered hot path is byte-identical
// to the pre-tier design.
//
// Thread safety (machine-checked: every guarded field carries GUARDED_BY
// and builds clean under clang -Wthread-safety, see docs/CONCURRENCY.md):
// allocate()/release() may be called concurrently from the batched decode
// path, so both are mutex-guarded. Slot lookup is lock-free — pages live
// in fixed-size chunks behind a preallocated directory of atomic pointers,
// so growing the pool never moves existing Page objects and a pinned
// Page& stays valid across concurrent allocations. Tier state lives under
// its own tier_mu_ (never held together with mu_ except the one-way
// mu_ → tier_mu_ nesting in add_chunk_locked); storage handoffs between
// the demoter, the prefetch thread, and pinning readers are ordered by
// tier_mu_ critical sections around every kHot/kCold transition.
// Concurrent access to the *same* page is the caller's problem: a page
// belongs to one sequence unless it has been shared via add_ref()
// (prefix-cache reuse), in which case every holder must treat it as
// immutable and release() drops one reference. In LSERVE_AUDIT builds the
// PageAuditor enforces exactly that ownership contract at release() time,
// checks that no page is ever demoted or freed while pinned, and
// attributes leaks (pages *and* pins) at drain.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "kv/cold_store.hpp"
#include "kv/page.hpp"
#include "kv/page_auditor.hpp"
#include "kv/page_table.hpp"
#include "serve/thread_annotations.hpp"

namespace lserve::kv {

class PageAllocator;

/// Two-tier store knobs. Default (hot_pages = 0) is the single-tier pool.
struct TierConfig {
  /// Hot-pool bound in pages; past it, cold pages spill. 0 = tiering off.
  std::size_t hot_pages = 0;
  /// Cold-store byte cap (0 = unbounded). At the cap, spilling stops and
  /// the hot pool runs over budget (a soft bound).
  std::size_t cold_bytes = 0;
  /// Run the background promote thread. Off = prefetch() promotes
  /// synchronously (deterministic; used by tests).
  bool async_prefetch = true;

  bool enabled() const noexcept { return hot_pages > 0; }
};

/// Tier telemetry snapshot (all zeros when tiering is off).
struct TierStats {
  std::size_t hot_in_use = 0;   ///< live pages with resident storage.
  std::size_t cold_in_use = 0;  ///< live pages spilled to the cold store.
  std::size_t cold_bytes_in_use = 0;
  std::uint64_t demotions = 0;
  std::uint64_t promotions = 0;  ///< prefetch_promotions + pin_promotions.
  std::uint64_t prefetch_requests = 0;   ///< cold pages queued for promote.
  std::uint64_t prefetch_promotions = 0; ///< promoted ahead of use.
  std::uint64_t pin_promotions = 0;      ///< synchronous pin-miss fallback.
};

/// RAII read pin: resolves a PageId to a Page that stays hot (and
/// demotion-protected) until the pin is destroyed. Move-only.
class PagePin {
 public:
  PagePin() = default;
  PagePin(PagePin&& o) noexcept
      : alloc_(o.alloc_), page_(o.page_), id_(o.id_) {
    o.alloc_ = nullptr;
    o.page_ = nullptr;
  }
  PagePin& operator=(PagePin&& o) noexcept {
    if (this != &o) {
      reset();
      alloc_ = o.alloc_;
      page_ = o.page_;
      id_ = o.id_;
      o.alloc_ = nullptr;
      o.page_ = nullptr;
    }
    return *this;
  }
  PagePin(const PagePin&) = delete;
  PagePin& operator=(const PagePin&) = delete;
  ~PagePin() { reset(); }

  const Page& page() const noexcept { return *page_; }
  const Page* operator->() const noexcept { return page_; }
  PageId id() const noexcept { return id_; }
  bool valid() const noexcept { return page_ != nullptr; }
  /// Unpins early (the destructor is then a no-op).
  inline void reset() noexcept;

 private:
  friend class PageAllocator;
  PagePin(const PageAllocator* alloc, const Page* page, PageId id) noexcept
      : alloc_(alloc), page_(page), id_(id) {}

  const PageAllocator* alloc_ = nullptr;
  const Page* page_ = nullptr;
  PageId id_ = kInvalidPage;
};

/// RAII write pin: like PagePin but resolves to a mutable Page (append /
/// copy-on-write paths). The holder must own the page exclusively.
class PageWritePin {
 public:
  PageWritePin() = default;
  PageWritePin(PageWritePin&& o) noexcept
      : alloc_(o.alloc_), page_(o.page_), id_(o.id_) {
    o.alloc_ = nullptr;
    o.page_ = nullptr;
  }
  PageWritePin& operator=(PageWritePin&& o) noexcept {
    if (this != &o) {
      reset();
      alloc_ = o.alloc_;
      page_ = o.page_;
      id_ = o.id_;
      o.alloc_ = nullptr;
      o.page_ = nullptr;
    }
    return *this;
  }
  PageWritePin(const PageWritePin&) = delete;
  PageWritePin& operator=(const PageWritePin&) = delete;
  ~PageWritePin() { reset(); }

  Page& page() const noexcept { return *page_; }
  Page* operator->() const noexcept { return page_; }
  PageId id() const noexcept { return id_; }
  bool valid() const noexcept { return page_ != nullptr; }
  inline void reset() noexcept;

 private:
  friend class PageAllocator;
  PageWritePin(const PageAllocator* alloc, Page* page, PageId id) noexcept
      : alloc_(alloc), page_(page), id_(id) {}

  const PageAllocator* alloc_ = nullptr;
  Page* page_ = nullptr;
  PageId id_ = kInvalidPage;
};

/// Copyable tier-aware page handle: (allocator, id) without a resolved
/// Page&. The public replacement for the old stable-for-life `get()`
/// reference — hold PageRefs freely, pin() only for the access scope.
class PageRef {
 public:
  PageRef() = default;
  PageRef(const PageAllocator& alloc, PageId id) noexcept
      : alloc_(&alloc), id_(id) {}

  PageId id() const noexcept { return id_; }
  bool valid() const noexcept {
    return alloc_ != nullptr && id_ != kInvalidPage;
  }
  inline PagePin pin() const;

 private:
  const PageAllocator* alloc_ = nullptr;
  PageId id_ = kInvalidPage;
};

/// Fixed-config page pool with O(1) allocate/release and an optional
/// spill tier.
class PageAllocator {
 public:
  /// At least `capacity` page slots are reserved up front (rounded up to a
  /// whole chunk); storage inside each page is initialized lazily on first
  /// allocation. The default TierConfig keeps the pool single-tier.
  explicit PageAllocator(PageConfig cfg, std::size_t capacity,
                         TierConfig tier = {});
  ~PageAllocator();

  PageAllocator(const PageAllocator&) = delete;
  PageAllocator& operator=(const PageAllocator&) = delete;

  /// Allocates a page; grows the pool if the free list is exhausted. In
  /// tiered mode this may spill the coldest unpinned pages to keep the
  /// hot pool within budget. Thread-safe.
  PageId allocate();

  /// Releases one reference to the page; returns it to the free list when
  /// the last reference drops (reclaiming its cold slot if the page was
  /// spilled). Freshly allocated pages have refcount 1, so unshared pages
  /// release once. Over-release is a programming error (checked in debug
  /// builds; checked with owner/site attribution in LSERVE_AUDIT builds).
  /// Thread-safe.
  void release(PageId id) noexcept;

  /// Adds a reference to a live page (prefix-cache sharing). Shared pages
  /// must be treated as immutable by all holders. Thread-safe.
  void add_ref(PageId id) noexcept;

  /// Current reference count of a live page (0 for a free slot).
  std::size_t ref_count(PageId id) const noexcept;

  /// Read pin: promotes the page if it is cold (synchronous fallback when
  /// prefetch has not run) and protects it from demotion for the pin's
  /// lifetime. Lock-free in single-tier mode. Thread-safe.
  PagePin pin(PageId id) const {
    auditor_.on_pin(id);
    if (tier_.enabled()) pin_slot(id);
    return PagePin(this, &get(id), id);
  }

  /// Write pin (append / COW paths). Same tier semantics as pin(); the
  /// caller must own the page exclusively. Thread-safe.
  PageWritePin pin_mut(PageId id) {
    auditor_.on_pin(id);
    if (tier_.enabled()) pin_slot(id);
    return PageWritePin(this, &get(id), id);
  }

  /// Copyable handle for `id` (pin later, at the access site).
  PageRef ref(PageId id) const noexcept { return PageRef(*this, id); }

  /// Records the sparse selector's per-page scores: lower score = colder
  /// = demoted first. Pages without a score fall back to least-recently-
  /// pinned order. No-op (and lock-free) in single-tier mode.
  void note_scores(std::span<const PageId> pages,
                   std::span<const float> scores) const noexcept;

  /// Queues cold pages for promotion by the background tier thread (the
  /// selector just chose them; promote before the attention walk pins
  /// them). Synchronous when TierConfig::async_prefetch is off. No-op for
  /// hot pages and in single-tier mode.
  void prefetch(std::span<const PageId> ids) const;
  void prefetch(std::span<const SelectedPage> table) const;

  bool tiered() const noexcept { return tier_.enabled(); }
  const TierConfig& tier_config() const noexcept { return tier_; }
  /// Tier telemetry snapshot (zeros when tiering is off). Thread-safe.
  TierStats tier_stats() const noexcept;

  const PageConfig& config() const noexcept { return cfg_; }
  std::size_t capacity() const noexcept;
  std::size_t pages_in_use() const noexcept;
  std::size_t peak_pages_in_use() const noexcept;
  /// Live pages with resident (hot) storage — what admission control
  /// charges in tiered mode. Equals pages_in_use() when tiering is off.
  std::size_t hot_pages_in_use() const noexcept;
  /// Pages currently on the free list (capacity() - pages_in_use()).
  /// Occupancy query for scheduler-level admission control; note the pool
  /// still grows on demand, so 0 free pages does not make allocate() fail.
  std::size_t free_pages() const noexcept;
  /// Pages needed to hold `tokens` tokens for one head (ceil division).
  std::size_t pages_for_tokens(std::size_t tokens) const noexcept {
    return (tokens + cfg_.page_size - 1) / cfg_.page_size;
  }

  /// Coherent occupancy snapshot under one lock acquisition — the per-step
  /// telemetry read (obs gauges). The individual queries above each take
  /// the lock, so reading them separately can tear across a concurrent
  /// allocate/release: in_use could exceed a just-grown capacity, or free
  /// could go negative when computed by subtraction. (The hot/cold split
  /// is read under the tier lock right after — it can tear against the
  /// pool totals by at most an in-flight transition.)
  struct Occupancy {
    std::size_t capacity = 0;
    std::size_t in_use = 0;
    std::size_t free = 0;  ///< capacity - in_use at snapshot time.
    std::size_t peak_in_use = 0;
    std::size_t hot_in_use = 0;   ///< == in_use when tiering is off.
    std::size_t cold_in_use = 0;  ///< 0 when tiering is off.
  };
  Occupancy occupancy() const noexcept;

  /// Total device bytes of hot-resident pages (cold pages dropped their
  /// storage — that saving is the point of the tier). Every live page
  /// shares one config, so this is a per-page constant times residency.
  double device_bytes_in_use() const noexcept;

  /// LSERVE_AUDIT builds: one attribution line per live page (who leaked
  /// what, allocated where, on which thread, holding how many pins).
  /// Empty when the pool is clean — or when auditing is compiled out.
  std::string audit_report() const { return auditor_.report_live(); }
  /// LSERVE_AUDIT builds: pages with outstanding pins (pin-leak check at
  /// quiescence points). 0 when auditing is compiled out.
  std::size_t audit_pinned_pages() const { return auditor_.pinned_pages(); }

 private:
  friend class PagePin;
  friend class PageWritePin;
  friend class PageRef;

  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;
  /// Directory slots preallocated up front; bounds the pool at
  /// kMaxChunks * kChunkSize pages (8M with the defaults).
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 15;

  /// Residency of one tier-tracked slot. kDemoting/kPromoting are the
  /// in-flight states a transition holds while doing IO outside tier_mu_;
  /// pins (and release) wait them out.
  enum class TierState : std::uint8_t {
    kHot = 0,
    kCold,
    kDemoting,
    kPromoting,
  };

  /// Raw slot lookup (no tier handling). Internal: external access goes
  /// through pin()/pin_mut()/ref() so it can never outlive residency.
  Page& get(PageId id) noexcept {
    return chunks_[id >> kChunkShift].load(std::memory_order_acquire)
        [id & kChunkMask];
  }
  const Page& get(PageId id) const noexcept {
    return chunks_[id >> kChunkShift].load(std::memory_order_acquire)
        [id & kChunkMask];
  }
  /// Slot storage mutation from const tier paths (promotion re-inits the
  /// page in place; residency is not logical state).
  Page& mut_page(PageId id) const noexcept {
    return const_cast<Page&>(get(id));
  }

  /// Appends one chunk of default-constructed pages.
  void add_chunk_locked() REQUIRES(mu_);

  // -- tier machinery (all no-ops when tier_.enabled() is false) --------
  /// Drops one pin; called by the pin destructors.
  void unpin(PageId id) const noexcept;
  /// Ensures `id` is hot and pinned: counts a hot hit, or waits out an
  /// in-flight transition, or promotes synchronously (pin-miss fallback).
  void pin_slot(PageId id) const;
  /// Finishes a kCold→kHot transition whose kPromoting mark the caller
  /// set; runs the cold-store IO outside tier_mu_. Increments the pin
  /// inside the same critical section that publishes kHot when
  /// `pin_after` (so the page cannot be demoted in between).
  void promote_slot(PageId id, ColdSlotId slot, bool pin_after) const;
  /// Demotes coldest unpinned pages until the hot pool is within budget
  /// (or the cold store is full). `protect` is never picked.
  void enforce_hot_budget(PageId protect) const;
  PageId pick_victim_locked(PageId protect) const REQUIRES(tier_mu_);
  /// Reclaims tier state on final release: waits out in-flight
  /// transitions and frees the cold slot of a spilled page.
  void tier_on_release(PageId id) noexcept;
  /// Background promote loop (runs when tiered + async_prefetch).
  void prefetch_loop();

  PageConfig cfg_;
  TierConfig tier_;
  double page_device_bytes_ = 0.0;  ///< per-page footprint for accounting.
  std::unique_ptr<std::atomic<Page*>[]> chunks_;

  mutable Mutex mu_;
  /// Owns the pages. Only mutated under mu_ (add_chunk_locked); get()
  /// never touches it — it goes through the atomic chunk directory.
  std::vector<std::unique_ptr<Page[]>> chunk_storage_ GUARDED_BY(mu_);
  std::size_t total_slots_ GUARDED_BY(mu_) = 0;  ///< created page slots.
  std::vector<PageId> free_list_ GUARDED_BY(mu_);  ///< LIFO.
  std::vector<std::uint8_t> live_ GUARDED_BY(mu_);  ///< per-slot liveness.
  std::vector<std::uint32_t> refs_ GUARDED_BY(mu_);  ///< per-slot refcount.
  std::size_t in_use_ GUARDED_BY(mu_) = 0;
  std::size_t peak_in_use_ GUARDED_BY(mu_) = 0;

  /// Tier state. Separate lock so pin/unpin never contends with
  /// allocate/release bookkeeping; the only nesting is mu_ → tier_mu_
  /// inside add_chunk_locked (array growth), never the reverse. Mutable
  /// because residency changes under const reads (pin promotes).
  mutable Mutex tier_mu_ ACQUIRED_AFTER(mu_);
  mutable CondVar tier_cv_;  ///< transition-complete + prefetch wakeups.
  mutable std::vector<TierState> tier_state_ GUARDED_BY(tier_mu_);
  mutable std::vector<std::uint32_t> pins_ GUARDED_BY(tier_mu_);
  mutable std::vector<float> score_ GUARDED_BY(tier_mu_);
  mutable std::vector<std::uint64_t> stamp_ GUARDED_BY(tier_mu_);
  mutable std::vector<ColdSlotId> cold_slot_ GUARDED_BY(tier_mu_);
  mutable std::vector<std::uint8_t> tier_live_ GUARDED_BY(tier_mu_);
  mutable std::vector<std::uint8_t> queued_ GUARDED_BY(tier_mu_);
  mutable std::deque<PageId> prefetch_queue_ GUARDED_BY(tier_mu_);
  mutable std::uint64_t tier_clock_ GUARDED_BY(tier_mu_) = 0;
  mutable std::size_t hot_in_use_ GUARDED_BY(tier_mu_) = 0;
  mutable std::size_t cold_in_use_ GUARDED_BY(tier_mu_) = 0;
  /// Relaxed mirror of cold_in_use_, written at every mutation under
  /// tier_mu_: lets prefetch() skip the lock entirely when nothing is
  /// cold, keeping the fully-hot decode path off tier_mu_. A stale zero
  /// only costs a missed hint — the pin miss still promotes.
  mutable std::atomic<std::size_t> cold_count_{0};
  /// Cold store hit its byte cap; spilling pauses until a slot frees.
  mutable bool cold_full_ GUARDED_BY(tier_mu_) = false;
  mutable bool tier_stop_ GUARDED_BY(tier_mu_) = false;
  mutable std::uint64_t demotions_ GUARDED_BY(tier_mu_) = 0;
  mutable std::uint64_t prefetch_requests_ GUARDED_BY(tier_mu_) = 0;
  mutable std::uint64_t prefetch_promotions_ GUARDED_BY(tier_mu_) = 0;
  mutable std::uint64_t pin_promotions_ GUARDED_BY(tier_mu_) = 0;
  mutable std::unique_ptr<ColdStore> cold_store_;  ///< null when untiered.
  std::thread prefetch_thread_;  ///< joined in the destructor.

  /// Empty (and storage-free) unless LSERVE_AUDIT is on; has its own
  /// internal lock, so it is deliberately called outside mu_. Mutable:
  /// pin tracking records through const read pins.
  [[no_unique_address]] mutable PageAuditor auditor_;
};

inline void PagePin::reset() noexcept {
  if (alloc_ != nullptr) alloc_->unpin(id_);
  alloc_ = nullptr;
  page_ = nullptr;
}

inline void PageWritePin::reset() noexcept {
  if (alloc_ != nullptr) alloc_->unpin(id_);
  alloc_ = nullptr;
  page_ = nullptr;
}

inline PagePin PageRef::pin() const { return alloc_->pin(id_); }

}  // namespace lserve::kv
