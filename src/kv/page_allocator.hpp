// Pool allocator for physical KV pages.
//
// Mirrors vLLM's block manager: a fixed-capacity pool of uniform pages plus
// a LIFO free list. Sequences hold PageIds, never pointers, so page tables
// stay trivially copyable — the property that makes selector output ("a
// shorter page table") cheap to build every decode step.
//
// Thread safety (machine-checked: every guarded field carries GUARDED_BY
// and builds clean under clang -Wthread-safety, see docs/CONCURRENCY.md):
// allocate()/free() may be called concurrently from the batched decode
// path, so both are mutex-guarded. get() is lock-free — pages live in
// fixed-size chunks behind a preallocated directory of atomic pointers, so
// growing the pool never moves existing Page objects and a Page& stays
// valid across concurrent allocations. Concurrent access to the *same*
// page is the caller's problem: a page belongs to one sequence unless it
// has been shared via add_ref() (prefix-cache reuse), in which case every
// holder must treat it as immutable and free() releases one reference. In
// LSERVE_AUDIT builds the PageAuditor enforces exactly that ownership
// contract at free() time and attributes leaks at drain.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "kv/page.hpp"
#include "kv/page_auditor.hpp"
#include "serve/thread_annotations.hpp"

namespace lserve::kv {

/// Fixed-config page pool with O(1) allocate/free.
class PageAllocator {
 public:
  /// At least `capacity` page slots are reserved up front (rounded up to a
  /// whole chunk); storage inside each page is initialized lazily on first
  /// allocation.
  PageAllocator(PageConfig cfg, std::size_t capacity);

  PageAllocator(const PageAllocator&) = delete;
  PageAllocator& operator=(const PageAllocator&) = delete;

  /// Allocates a page; grows the pool if the free list is exhausted.
  /// Thread-safe.
  PageId allocate();

  /// Releases one reference to the page; returns it to the free list when
  /// the last reference drops. Freshly allocated pages have refcount 1, so
  /// unshared pages keep the old free-once semantics. Over-free is a
  /// programming error (checked in debug builds; checked with owner/site
  /// attribution in LSERVE_AUDIT builds). Thread-safe.
  void free(PageId id) noexcept;

  /// Adds a reference to a live page (prefix-cache sharing). Shared pages
  /// must be treated as immutable by all holders. Thread-safe.
  void add_ref(PageId id) noexcept;

  /// Current reference count of a live page (0 for a free slot).
  std::size_t ref_count(PageId id) const noexcept;

  Page& get(PageId id) noexcept {
    return chunks_[id >> kChunkShift].load(std::memory_order_acquire)
        [id & kChunkMask];
  }
  const Page& get(PageId id) const noexcept {
    return chunks_[id >> kChunkShift].load(std::memory_order_acquire)
        [id & kChunkMask];
  }

  const PageConfig& config() const noexcept { return cfg_; }
  std::size_t capacity() const noexcept;
  std::size_t pages_in_use() const noexcept;
  std::size_t peak_pages_in_use() const noexcept;
  /// Pages currently on the free list (capacity() - pages_in_use()).
  /// Occupancy query for scheduler-level admission control; note the pool
  /// still grows on demand, so 0 free pages does not make allocate() fail.
  std::size_t free_pages() const noexcept;
  /// Pages needed to hold `tokens` tokens for one head (ceil division).
  std::size_t pages_for_tokens(std::size_t tokens) const noexcept {
    return (tokens + cfg_.page_size - 1) / cfg_.page_size;
  }

  /// Coherent occupancy snapshot under one lock acquisition — the per-step
  /// telemetry read (obs gauges). The individual queries above each take
  /// the lock, so reading them separately can tear across a concurrent
  /// allocate/free: in_use could exceed a just-grown capacity, or free
  /// could go negative when computed by subtraction.
  struct Occupancy {
    std::size_t capacity = 0;
    std::size_t in_use = 0;
    std::size_t free = 0;  ///< capacity - in_use at snapshot time.
    std::size_t peak_in_use = 0;
  };
  Occupancy occupancy() const noexcept;

  /// Total device bytes of pages currently in use.
  double device_bytes_in_use() const noexcept;

  /// LSERVE_AUDIT builds: one attribution line per live page (who leaked
  /// what, allocated where, on which thread). Empty when the pool is
  /// clean — or when auditing is compiled out.
  std::string audit_report() const { return auditor_.report_live(); }

 private:
  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;
  /// Directory slots preallocated up front; bounds the pool at
  /// kMaxChunks * kChunkSize pages (8M with the defaults).
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 15;

  /// Appends one chunk of default-constructed pages.
  void add_chunk_locked() REQUIRES(mu_);

  PageConfig cfg_;
  std::unique_ptr<std::atomic<Page*>[]> chunks_;

  mutable Mutex mu_;
  /// Owns the pages. Only mutated under mu_ (add_chunk_locked); get()
  /// never touches it — it goes through the atomic chunk directory.
  std::vector<std::unique_ptr<Page[]>> chunk_storage_ GUARDED_BY(mu_);
  std::size_t total_slots_ GUARDED_BY(mu_) = 0;  ///< created page slots.
  std::vector<PageId> free_list_ GUARDED_BY(mu_);  ///< LIFO.
  std::vector<std::uint8_t> live_ GUARDED_BY(mu_);  ///< per-slot liveness.
  std::vector<std::uint32_t> refs_ GUARDED_BY(mu_);  ///< per-slot refcount.
  std::size_t in_use_ GUARDED_BY(mu_) = 0;
  std::size_t peak_in_use_ GUARDED_BY(mu_) = 0;
  /// Empty (and storage-free) unless LSERVE_AUDIT is on; has its own
  /// internal lock, so it is deliberately called outside mu_.
  [[no_unique_address]] PageAuditor auditor_;
};

}  // namespace lserve::kv
