#include "kv/page_allocator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lserve::kv {

PageAllocator::PageAllocator(PageConfig cfg, std::size_t capacity)
    : cfg_(cfg), chunks_(new std::atomic<Page*>[kMaxChunks]) {
  assert(cfg.valid());
  for (std::size_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
  const std::size_t chunks =
      capacity == 0 ? 1 : (capacity + kChunkSize - 1) / kChunkSize;
  MutexLock lock(mu_);
  for (std::size_t i = 0; i < chunks; ++i) add_chunk_locked();
}

void PageAllocator::add_chunk_locked() {
  const std::size_t index = chunk_storage_.size();
  if (index >= kMaxChunks) {
    throw std::length_error("PageAllocator: page pool exhausted");
  }
  chunk_storage_.push_back(std::make_unique<Page[]>(kChunkSize));
  // Publish the chunk before any PageId pointing into it can be handed out.
  chunks_[index].store(chunk_storage_.back().get(),
                       std::memory_order_release);
  live_.resize(total_slots_ + kChunkSize, 0);
  refs_.resize(total_slots_ + kChunkSize, 0);
  // LIFO order within the chunk: its lowest id is handed out first.
  for (std::size_t i = kChunkSize; i > 0; --i) {
    free_list_.push_back(static_cast<PageId>(total_slots_ + i - 1));
  }
  total_slots_ += kChunkSize;
}

PageId PageAllocator::allocate() {
  PageId id;
  {
    MutexLock lock(mu_);
    if (free_list_.empty()) add_chunk_locked();
    id = free_list_.back();
    free_list_.pop_back();
    assert(!live_[id] && "allocating a live page");
    ++in_use_;
    peak_in_use_ = std::max(peak_in_use_, in_use_);
  }
  // The popped id is exclusively ours, so the heavy storage work runs
  // outside the lock; the page is marked live only once it is coherent,
  // so device_bytes_in_use() never reads a page mid-init.
  Page& page = get(id);
  try {
    if (!page.initialized()) {
      page.init(cfg_);
    } else {
      page.reset();
    }
  } catch (...) {
    MutexLock lock(mu_);
    --in_use_;
    free_list_.push_back(id);
    throw;
  }
  {
    MutexLock lock(mu_);
    live_[id] = 1;
    refs_[id] = 1;
  }
  auditor_.on_alloc(id);
  return id;
}

void PageAllocator::free(PageId id) noexcept {
  bool final_free = false;
  {
    MutexLock lock(mu_);
    // Invalid frees (out-of-range / dead page) fall through to the
    // auditor, whose never-allocated/double-free report carries owner and
    // site attribution the plain asserts below lack.
    if (id >= total_slots_ || !live_[id] || refs_[id] <= 1) {
      final_free = true;
    } else {
      --refs_[id];
    }
  }
  if (!final_free) {
    auditor_.on_unref(id);
    return;
  }
  // Audit first (own lock): a double-free/foreign-free report fires before
  // the allocator's state is disturbed.
  auditor_.on_free(id);
  MutexLock lock(mu_);
  assert(id < total_slots_);
  assert(live_[id] && "free of a dead KV page");
  refs_[id] = 0;
  live_[id] = 0;
  --in_use_;
  free_list_.push_back(id);
}

void PageAllocator::add_ref(PageId id) noexcept {
  {
    MutexLock lock(mu_);
    assert(id < total_slots_);
    assert(live_[id] && "add_ref on a dead KV page");
    ++refs_[id];
  }
  auditor_.on_add_ref(id);
}

std::size_t PageAllocator::ref_count(PageId id) const noexcept {
  MutexLock lock(mu_);
  assert(id < total_slots_);
  return refs_[id];
}

std::size_t PageAllocator::capacity() const noexcept {
  MutexLock lock(mu_);
  return total_slots_;
}

std::size_t PageAllocator::pages_in_use() const noexcept {
  MutexLock lock(mu_);
  return in_use_;
}

std::size_t PageAllocator::peak_pages_in_use() const noexcept {
  MutexLock lock(mu_);
  return peak_in_use_;
}

std::size_t PageAllocator::free_pages() const noexcept {
  MutexLock lock(mu_);
  return total_slots_ - in_use_;
}

PageAllocator::Occupancy PageAllocator::occupancy() const noexcept {
  MutexLock lock(mu_);
  Occupancy snap;
  snap.capacity = total_slots_;
  snap.in_use = in_use_;
  snap.free = total_slots_ - in_use_;
  snap.peak_in_use = peak_in_use_;
  return snap;
}

double PageAllocator::device_bytes_in_use() const noexcept {
  MutexLock lock(mu_);
  double total = 0.0;
  for (std::size_t i = 0; i < total_slots_; ++i) {
    if (live_[i]) total += get(static_cast<PageId>(i)).device_bytes();
  }
  return total;
}

}  // namespace lserve::kv
