#include "kv/page_allocator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lserve::kv {

PageAllocator::PageAllocator(PageConfig cfg, std::size_t capacity,
                             TierConfig tier)
    : cfg_(cfg), tier_(tier), chunks_(new std::atomic<Page*>[kMaxChunks]) {
  assert(cfg.valid());
  page_device_bytes_ = [&] {
    Page tmp;
    tmp.init(cfg_);
    return tmp.device_bytes();
  }();
  for (std::size_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
  if (tier_.enabled()) {
    cold_store_ = std::make_unique<ColdStore>(Page::serialized_bytes_for(cfg_),
                                              tier_.cold_bytes);
  }
  const std::size_t chunks =
      capacity == 0 ? 1 : (capacity + kChunkSize - 1) / kChunkSize;
  {
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < chunks; ++i) add_chunk_locked();
  }
  if (tier_.enabled() && tier_.async_prefetch) {
    prefetch_thread_ = std::thread([this] { prefetch_loop(); });
  }
}

PageAllocator::~PageAllocator() {
  if (prefetch_thread_.joinable()) {
    {
      MutexLock lock(tier_mu_);
      tier_stop_ = true;
    }
    tier_cv_.notify_all();
    prefetch_thread_.join();
  }
}

void PageAllocator::add_chunk_locked() {
  const std::size_t index = chunk_storage_.size();
  if (index >= kMaxChunks) {
    throw std::length_error("PageAllocator: page pool exhausted");
  }
  chunk_storage_.push_back(std::make_unique<Page[]>(kChunkSize));
  // Publish the chunk before any PageId pointing into it can be handed out.
  chunks_[index].store(chunk_storage_.back().get(),
                       std::memory_order_release);
  live_.resize(total_slots_ + kChunkSize, 0);
  refs_.resize(total_slots_ + kChunkSize, 0);
  if (tier_.enabled()) {
    // The one sanctioned mu_ → tier_mu_ nesting: tier arrays grow in
    // lockstep with the pool (tier paths never take mu_).
    MutexLock t(tier_mu_);
    const std::size_t n = total_slots_ + kChunkSize;
    tier_state_.resize(n, TierState::kHot);
    pins_.resize(n, 0);
    score_.resize(n, 0.0f);
    stamp_.resize(n, 0);
    cold_slot_.resize(n, kInvalidColdSlot);
    tier_live_.resize(n, 0);
    queued_.resize(n, 0);
  }
  // LIFO order within the chunk: its lowest id is handed out first.
  for (std::size_t i = kChunkSize; i > 0; --i) {
    free_list_.push_back(static_cast<PageId>(total_slots_ + i - 1));
  }
  total_slots_ += kChunkSize;
}

PageId PageAllocator::allocate() {
  PageId id;
  {
    MutexLock lock(mu_);
    if (free_list_.empty()) add_chunk_locked();
    id = free_list_.back();
    free_list_.pop_back();
    assert(!live_[id] && "allocating a live page");
    ++in_use_;
    peak_in_use_ = std::max(peak_in_use_, in_use_);
  }
  // The popped id is exclusively ours, so the heavy storage work runs
  // outside the lock; the page is marked live only once it is coherent,
  // so device_bytes_in_use() never reads a page mid-init.
  Page& page = get(id);
  try {
    if (!page.initialized()) {
      page.init(cfg_);
    } else {
      page.reset();
    }
  } catch (...) {
    MutexLock lock(mu_);
    --in_use_;
    free_list_.push_back(id);
    throw;
  }
  {
    MutexLock lock(mu_);
    live_[id] = 1;
    refs_[id] = 1;
  }
  if (tier_.enabled()) {
    {
      MutexLock t(tier_mu_);
      tier_state_[id] = TierState::kHot;
      pins_[id] = 0;
      score_[id] = 0.0f;  // unscored until a selector run ranks it.
      stamp_[id] = ++tier_clock_;
      tier_live_[id] = 1;
      ++hot_in_use_;
    }
    enforce_hot_budget(id);
  }
  auditor_.on_alloc(id);
  return id;
}

void PageAllocator::release(PageId id) noexcept {
  bool final_free = false;
  {
    MutexLock lock(mu_);
    // Invalid releases (out-of-range / dead page) fall through to the
    // auditor, whose never-allocated/double-free report carries owner and
    // site attribution the plain asserts below lack.
    if (id >= total_slots_ || !live_[id] || refs_[id] <= 1) {
      final_free = true;
    } else {
      --refs_[id];
    }
  }
  if (!final_free) {
    auditor_.on_unref(id);
    return;
  }
  // Audit first (own lock): a double-free/foreign-free report fires before
  // the allocator's state is disturbed.
  auditor_.on_free(id);
  // Reclaim tier state before the slot can be reallocated: wait out any
  // in-flight demote/promote and give back the cold slot of a spilled
  // page. (The id is not on the free list yet, so no one can race us.)
  tier_on_release(id);
  MutexLock lock(mu_);
  assert(id < total_slots_);
  assert(live_[id] && "release of a dead KV page");
  refs_[id] = 0;
  live_[id] = 0;
  --in_use_;
  free_list_.push_back(id);
}

void PageAllocator::tier_on_release(PageId id) noexcept {
  if (!tier_.enabled()) return;
  MutexLock lock(tier_mu_);
  if (id >= tier_state_.size() || !tier_live_[id]) return;
  while (tier_state_[id] == TierState::kDemoting ||
         tier_state_[id] == TierState::kPromoting) {
    tier_cv_.wait(tier_mu_);
  }
  assert(pins_[id] == 0 && "released page still pinned");
  if (tier_state_[id] == TierState::kCold) {
    cold_store_->release(cold_slot_[id]);
    cold_slot_[id] = kInvalidColdSlot;
    tier_state_[id] = TierState::kHot;
    --cold_in_use_;
    cold_count_.store(cold_in_use_, std::memory_order_relaxed);
    cold_full_ = false;  // a slot freed up; spilling may resume.
  } else {
    --hot_in_use_;
  }
  tier_live_[id] = 0;
}

void PageAllocator::add_ref(PageId id) noexcept {
  {
    MutexLock lock(mu_);
    assert(id < total_slots_);
    assert(live_[id] && "add_ref on a dead KV page");
    ++refs_[id];
  }
  auditor_.on_add_ref(id);
}

std::size_t PageAllocator::ref_count(PageId id) const noexcept {
  MutexLock lock(mu_);
  assert(id < total_slots_);
  return refs_[id];
}

// ---------------------------------------------------------------------------
// Tier machinery.
// ---------------------------------------------------------------------------

void PageAllocator::unpin(PageId id) const noexcept {
  auditor_.on_unpin(id);
  if (!tier_.enabled()) return;
  MutexLock lock(tier_mu_);
  assert(id < pins_.size() && pins_[id] > 0 && "unpin without a pin");
  --pins_[id];
}

void PageAllocator::pin_slot(PageId id) const {
  for (;;) {
    ColdSlotId slot = kInvalidColdSlot;
    {
      MutexLock lock(tier_mu_);
      assert(id < tier_state_.size());
      switch (tier_state_[id]) {
        case TierState::kHot:
          ++pins_[id];
          stamp_[id] = ++tier_clock_;
          return;
        case TierState::kCold:
          // Pin miss: promote synchronously on this thread.
          tier_state_[id] = TierState::kPromoting;
          slot = cold_slot_[id];
          break;
        case TierState::kDemoting:
        case TierState::kPromoting:
          // Another thread owns the transition; wait for it to settle.
          tier_cv_.wait(tier_mu_);
          continue;
      }
    }
    promote_slot(id, slot, /*pin_after=*/true);
    enforce_hot_budget(id);
    return;
  }
}

void PageAllocator::promote_slot(PageId id, ColdSlotId slot,
                                 bool pin_after) const {
  std::vector<std::uint8_t> buf(cold_store_->slot_bytes());
  cold_store_->load(slot, buf.data());
  Page& page = mut_page(id);
  page.init(cfg_);
  page.deserialize(buf.data());
  cold_store_->release(slot);
  MutexLock lock(tier_mu_);
  cold_slot_[id] = kInvalidColdSlot;
  tier_state_[id] = TierState::kHot;
  stamp_[id] = ++tier_clock_;
  --cold_in_use_;
  cold_count_.store(cold_in_use_, std::memory_order_relaxed);
  ++hot_in_use_;
  cold_full_ = false;
  if (pin_after) {
    // Publish hot + pinned atomically so a concurrent spill can never
    // pick this page between promotion and the pin.
    ++pins_[id];
    ++pin_promotions_;
  } else {
    ++prefetch_promotions_;
  }
  tier_cv_.notify_all();
}

PageId PageAllocator::pick_victim_locked(PageId protect) const {
  // Coldest first: lowest selector score, then least recently pinned.
  // Unscored pages (score 0 — never ranked by a selector run) demote
  // before positively-scored ones, which is the intended order: the
  // selector scores every page of the sequences it is actively decoding,
  // so unscored pages belong to idle sequences.
  PageId best = kInvalidPage;
  for (std::size_t i = 0; i < tier_state_.size(); ++i) {
    const PageId id = static_cast<PageId>(i);
    if (id == protect || !tier_live_[i]) continue;
    if (tier_state_[i] != TierState::kHot || pins_[i] != 0) continue;
    if (best == kInvalidPage || score_[i] < score_[best] ||
        (score_[i] == score_[best] && stamp_[i] < stamp_[best])) {
      best = id;
    }
  }
  return best;
}

void PageAllocator::enforce_hot_budget(PageId protect) const {
  std::vector<std::uint8_t> buf;
  for (;;) {
    PageId victim = kInvalidPage;
    {
      MutexLock lock(tier_mu_);
      if (hot_in_use_ <= tier_.hot_pages || cold_full_) return;
      victim = pick_victim_locked(protect);
      if (victim == kInvalidPage) return;  // everything hot is pinned.
      tier_state_[victim] = TierState::kDemoting;
    }
    // The kDemoting mark blocks new pins, so the serialize below reads a
    // quiescent page. The audit hook double-checks the pin bookkeeping.
    auditor_.on_demote(victim);
    Page& page = mut_page(victim);
    buf.resize(cold_store_->slot_bytes());
    page.serialize(buf.data());
    const ColdSlotId slot = cold_store_->store(buf.data());
    MutexLock lock(tier_mu_);
    if (slot == kInvalidColdSlot) {
      // Cold tier at its byte cap: abandon the demotion and pause
      // spilling; the hot pool runs over budget until a slot frees.
      tier_state_[victim] = TierState::kHot;
      cold_full_ = true;
      tier_cv_.notify_all();
      return;
    }
    page.drop_storage();
    cold_slot_[victim] = slot;
    tier_state_[victim] = TierState::kCold;
    --hot_in_use_;
    ++cold_in_use_;
    cold_count_.store(cold_in_use_, std::memory_order_relaxed);
    ++demotions_;
    tier_cv_.notify_all();
  }
}

void PageAllocator::note_scores(std::span<const PageId> pages,
                                std::span<const float> scores) const noexcept {
  if (!tier_.enabled()) return;
  assert(pages.size() == scores.size());
  MutexLock lock(tier_mu_);
  for (std::size_t i = 0; i < pages.size(); ++i) {
    const PageId id = pages[i];
    if (id < score_.size() && tier_live_[id]) score_[id] = scores[i];
  }
}

void PageAllocator::prefetch(std::span<const PageId> ids) const {
  if (!tier_.enabled()) return;
  // Fast-out without the lock when nothing is cold: a fully-hot working
  // set pays a relaxed load, not a tier_mu_ round-trip per decode step.
  if (cold_count_.load(std::memory_order_relaxed) == 0) return;
  if (!tier_.async_prefetch) {
    // Synchronous mode (tests): promote the cold ids inline.
    for (const PageId id : ids) {
      ColdSlotId slot = kInvalidColdSlot;
      {
        MutexLock lock(tier_mu_);
        if (id >= tier_state_.size() || !tier_live_[id]) continue;
        if (tier_state_[id] != TierState::kCold) continue;
        tier_state_[id] = TierState::kPromoting;
        slot = cold_slot_[id];
        ++prefetch_requests_;
      }
      promote_slot(id, slot, /*pin_after=*/false);
      enforce_hot_budget(id);
    }
    return;
  }
  bool notify = false;
  {
    MutexLock lock(tier_mu_);
    for (const PageId id : ids) {
      if (id >= tier_state_.size() || !tier_live_[id]) continue;
      if (tier_state_[id] != TierState::kCold || queued_[id]) continue;
      queued_[id] = 1;
      prefetch_queue_.push_back(id);
      ++prefetch_requests_;
      notify = true;
    }
  }
  if (notify) tier_cv_.notify_all();
}

void PageAllocator::prefetch(std::span<const SelectedPage> table) const {
  if (!tier_.enabled()) return;
  if (cold_count_.load(std::memory_order_relaxed) == 0) return;
  std::vector<PageId> ids;
  ids.reserve(table.size());
  for (const SelectedPage& e : table) ids.push_back(e.page);
  prefetch(std::span<const PageId>(ids));
}

void PageAllocator::prefetch_loop() {
  for (;;) {
    PageId id = kInvalidPage;
    ColdSlotId slot = kInvalidColdSlot;
    {
      MutexLock lock(tier_mu_);
      while (!tier_stop_ && prefetch_queue_.empty()) tier_cv_.wait(tier_mu_);
      if (tier_stop_) return;
      id = prefetch_queue_.front();
      prefetch_queue_.pop_front();
      queued_[id] = 0;
      // The page may have been promoted by a pin miss, released, or
      // reallocated since it was queued; only a still-cold page is ours.
      if (!tier_live_[id] || tier_state_[id] != TierState::kCold) continue;
      tier_state_[id] = TierState::kPromoting;
      slot = cold_slot_[id];
    }
    promote_slot(id, slot, /*pin_after=*/false);
    enforce_hot_budget(id);
  }
}

TierStats PageAllocator::tier_stats() const noexcept {
  TierStats s;
  if (!tier_.enabled()) return s;
  MutexLock lock(tier_mu_);
  s.hot_in_use = hot_in_use_;
  s.cold_in_use = cold_in_use_;
  s.cold_bytes_in_use = cold_in_use_ * cold_store_->slot_bytes();
  s.demotions = demotions_;
  s.prefetch_requests = prefetch_requests_;
  s.prefetch_promotions = prefetch_promotions_;
  s.pin_promotions = pin_promotions_;
  s.promotions = prefetch_promotions_ + pin_promotions_;
  return s;
}

// ---------------------------------------------------------------------------
// Occupancy queries.
// ---------------------------------------------------------------------------

std::size_t PageAllocator::capacity() const noexcept {
  MutexLock lock(mu_);
  return total_slots_;
}

std::size_t PageAllocator::pages_in_use() const noexcept {
  MutexLock lock(mu_);
  return in_use_;
}

std::size_t PageAllocator::peak_pages_in_use() const noexcept {
  MutexLock lock(mu_);
  return peak_in_use_;
}

std::size_t PageAllocator::hot_pages_in_use() const noexcept {
  if (!tier_.enabled()) return pages_in_use();
  MutexLock lock(tier_mu_);
  return hot_in_use_;
}

std::size_t PageAllocator::free_pages() const noexcept {
  MutexLock lock(mu_);
  return total_slots_ - in_use_;
}

PageAllocator::Occupancy PageAllocator::occupancy() const noexcept {
  Occupancy snap;
  {
    MutexLock lock(mu_);
    snap.capacity = total_slots_;
    snap.in_use = in_use_;
    snap.free = total_slots_ - in_use_;
    snap.peak_in_use = peak_in_use_;
  }
  if (tier_.enabled()) {
    MutexLock lock(tier_mu_);
    snap.hot_in_use = hot_in_use_;
    snap.cold_in_use = cold_in_use_;
  } else {
    snap.hot_in_use = snap.in_use;
  }
  return snap;
}

double PageAllocator::device_bytes_in_use() const noexcept {
  // Every live page shares one config, so resident bytes are the per-page
  // footprint times hot residency; cold pages dropped their storage.
  std::size_t resident;
  {
    MutexLock lock(mu_);
    resident = in_use_;
  }
  if (tier_.enabled()) {
    MutexLock lock(tier_mu_);
    resident -= std::min(resident, cold_in_use_);
  }
  return page_device_bytes_ * static_cast<double>(resident);
}

}  // namespace lserve::kv
