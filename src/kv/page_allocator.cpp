#include "kv/page_allocator.hpp"

#include <cassert>

namespace lserve::kv {

PageAllocator::PageAllocator(PageConfig cfg, std::size_t capacity)
    : cfg_(cfg) {
  assert(cfg.valid());
  pool_.resize(capacity);
  live_.assign(capacity, 0);
  free_list_.reserve(capacity);
  // LIFO order: page 0 is handed out first.
  for (std::size_t i = capacity; i > 0; --i) {
    free_list_.push_back(static_cast<PageId>(i - 1));
  }
}

PageId PageAllocator::allocate() {
  if (free_list_.empty()) {
    const PageId id = static_cast<PageId>(pool_.size());
    pool_.emplace_back();
    live_.push_back(0);
    free_list_.push_back(id);
  }
  const PageId id = free_list_.back();
  free_list_.pop_back();
  Page& page = pool_[id];
  if (!page.initialized()) {
    page.init(cfg_);
  } else {
    page.reset();
  }
  assert(!live_[id] && "allocating a live page");
  live_[id] = 1;
  ++in_use_;
  peak_in_use_ = std::max(peak_in_use_, in_use_);
  return id;
}

void PageAllocator::free(PageId id) noexcept {
  assert(id < pool_.size());
  assert(live_[id] && "double free of a KV page");
  live_[id] = 0;
  --in_use_;
  free_list_.push_back(id);
}

double PageAllocator::device_bytes_in_use() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (live_[i]) total += pool_[i].device_bytes();
  }
  return total;
}

}  // namespace lserve::kv
