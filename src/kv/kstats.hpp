// Per-logical-page key statistics ("K_stats" in LServe Fig 5/7).
//
// For every logical page of NL consecutive tokens we keep the channel-wise
// minimum and maximum of the (post-RoPE) keys. These representative vectors
// are what the hierarchical page selector scores against the query:
//   S_j = sum_i max(q[i] * kmax_j[i], q[i] * kmin_j[i])
// which upper-bounds the true maximum dot product q.k over tokens in the
// page (Quest's criticality estimator). Stats are appended incrementally as
// tokens are written, so prefill pooling is a fold over appends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lserve::num {
class QuantizedRows;
}  // namespace lserve::num

namespace lserve::kv {

/// Channel-wise min/max key statistics for the logical pages of one
/// physical page.
class KStats {
 public:
  KStats() = default;

  /// `logical_pages` = NP / NL entries, each of `head_dim` channels.
  KStats(std::size_t logical_pages, std::size_t head_dim);

  std::size_t logical_pages() const noexcept { return logical_pages_; }
  std::size_t head_dim() const noexcept { return head_dim_; }

  /// Folds the key of the token at in-page slot `slot` into the stats of
  /// the logical page that owns that slot (`slot / logical_page_size`).
  void update(std::size_t slot, std::size_t logical_page_size,
              const float* key) noexcept;

  /// Same fold, but derived straight from the quantized storage of row
  /// `slot` in `keys`: each channel is decoded from the stored codes and
  /// per-row (scale, zero_point) instead of recomputing over a
  /// materialized dequantized copy — the quest-style metadata-from-
  /// quant-params path (ROADMAP item 5). Bit-identical to
  /// load_row + update() for every dtype.
  void update_quantized(std::size_t slot, std::size_t logical_page_size,
                        const num::QuantizedRows& keys) noexcept;

  /// kmax vector of logical page j (length head_dim).
  const float* kmax(std::size_t j) const noexcept {
    return kmax_.data() + j * head_dim_;
  }
  /// kmin vector of logical page j.
  const float* kmin(std::size_t j) const noexcept {
    return kmin_.data() + j * head_dim_;
  }

  /// True if logical page j has received at least one token.
  bool initialized(std::size_t j) const noexcept { return init_[j] != 0; }

  void reset() noexcept;

  /// Bytes serialize() writes (kmin/kmax vectors + init flags).
  std::size_t serialized_bytes() const noexcept;
  /// Writes the stats verbatim so deserialize() restores them
  /// bit-identically (cold-tier demote/promote path).
  void serialize(std::uint8_t* out) const noexcept;
  /// Restores stats of identical geometry from serialize() output.
  void deserialize(const std::uint8_t* in) noexcept;

  /// Device bytes for the stats block (2 fp16 vectors per logical page).
  double device_bytes() const noexcept {
    return 2.0 * 2.0 * static_cast<double>(logical_pages_ * head_dim_);
  }

 private:
  std::size_t logical_pages_ = 0;
  std::size_t head_dim_ = 0;
  std::vector<float> kmin_;
  std::vector<float> kmax_;
  std::vector<std::uint8_t> init_;
};

/// Query-centric importance score of one logical page:
/// sum_i max(q[i]*kmax[i], q[i]*kmin[i]). This is an upper bound on
/// max_{token t in page} q . k_t (see tests/sparse for the property test).
float logical_page_score(const float* q, const float* kmax, const float* kmin,
                         std::size_t head_dim) noexcept;

}  // namespace lserve::kv
