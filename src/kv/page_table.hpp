// Page tables: the logical-block -> physical-page indirection.
//
// A full table maps every logical block of a sequence to a physical page
// (vLLM-style). The decode-stage page selector emits a *shorter* table of
// SelectedPage entries — LServe's key trick of decomposing dynamic sparse
// attention into (page selection) + (dense attention over a shorter page
// table). Each entry carries the logical block index so the kernel's
// physical iteration step i can be mapped back to the token positions
// [block*NP, block*NP + len) — the two-level index of §3.6.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kv/page.hpp"

namespace lserve::kv {

/// One entry of a (possibly pruned) page table.
struct SelectedPage {
  PageId page = kInvalidPage;
  std::uint32_t block = 0;  ///< logical block index within the sequence.

  friend bool operator==(const SelectedPage&, const SelectedPage&) = default;
};

/// A pruned page table: the selector's output, consumed by the sparse
/// decode kernel. Entries are sorted by logical block index.
using SelectedPageTable = std::vector<SelectedPage>;

/// Read-only view of a full per-head page table.
struct PageTableView {
  std::span<const PageId> pages;  ///< logical block -> physical page.
  std::size_t tokens = 0;         ///< total tokens stored in this head.
  std::size_t page_size = 0;      ///< NP.

  std::size_t num_blocks() const noexcept { return pages.size(); }

  /// Tokens held by logical block b (the final block may be partial).
  std::size_t block_tokens(std::size_t b) const noexcept {
    const std::size_t begin = b * page_size;
    const std::size_t remaining = tokens > begin ? tokens - begin : 0;
    return remaining < page_size ? remaining : page_size;
  }
};

/// Builds the identity (dense) selected-page table covering all blocks.
SelectedPageTable full_page_table(const PageTableView& view);

/// Number of tokens covered by a selected table given sequence state.
std::size_t selected_tokens(const SelectedPageTable& table,
                            const PageTableView& view);

}  // namespace lserve::kv
