// The serving stack's memory knobs, consolidated.
//
// One struct carries every page-pool budget — the scheduler's admission
// budget, the prefix-cache tree budget, and the two-tier hot/cold bounds —
// so the `lserve_serve` argv parser, the benches, and the tests all plumb
// the same object instead of duplicating knob-by-knob plumbing.
#pragma once

#include <cstddef>

namespace lserve::kv {

struct MemoryConfig {
  /// Scheduler admission/preemption budget in pages (0 = unbounded).
  /// When tiering is on, admission charges hot-resident pages only.
  std::size_t page_budget = 0;
  /// Prefix-cache radix-tree page budget (0 = unbounded tree).
  std::size_t prefix_cache_pages = 0;
  /// Hot-tier bound on the dense page pool (0 = tiering off): pages past
  /// this are serialized into the cold store, coldest-first.
  std::size_t hot_pages = 0;
  /// Cold-store byte cap (0 = unbounded). When the cap is hit, spilling
  /// stops and the hot pool runs over budget (a soft bound).
  std::size_t cold_bytes = 0;

  bool tiered() const noexcept { return hot_pages > 0; }

  /// Parses one `--key=value` argv-style flag into this struct. Accepted
  /// keys: --page-budget, --prefix-cache-pages, --hot-pages, --cold-bytes.
  /// Returns false if `arg` is not a memory flag (caller keeps parsing).
  bool parse_flag(const char* arg) noexcept;

  /// One-line usage text for the flags parse_flag() accepts.
  static const char* flag_help() noexcept;
};

}  // namespace lserve::kv
