// Debug-build page-ownership auditor (the runtime cross-check the static
// analysis layers cannot express).
//
// Compiled in only when the LSERVE_AUDIT CMake option defines
// LSERVE_AUDIT=1. The auditor tags every allocated page with
//
//   - the owning sequence id (from the innermost PageAuditScope on the
//     allocating thread — engine entry points scope every prefill /
//     decode / release region),
//   - the allocation site (a static string, e.g. "Engine::decode"),
//   - the allocating thread,
//
// and checks, at PageAllocator::free():
//
//   - double-free: freeing a page that is not live;
//   - foreign free: freeing a page whose recorded owner differs from the
//     current scope's owner. Ownership is per *sequence*, not per thread:
//     a page legally migrates threads (allocated on a pool worker mid
//     decode, freed on the scheduler thread at release), but it must
//     never be released on behalf of a different sequence. The report
//     still prints both thread ids for forensics.
//
// Violations print an attribution report to stderr and abort() — precise
// enough for EXPECT_DEATH tests and loud enough for CI.
//
// Leaks are checked at quiescence points (Scheduler::drain): any page
// still live is reported with owner/site/thread attribution via
// report_live(), turning "the pool grew" into "sequence 7 leaked 3 pages
// allocated at Engine::prefill on thread 140213...".
//
// Zero-overhead guarantee when OFF: PageAuditor and PageAuditScope are
// empty types with inline no-op methods, and PageAllocator holds its
// auditor as a [[no_unique_address]] member — the struct layout and the
// allocate()/free() hot paths are exactly the pre-auditor ones
// (tests/audit_test.cpp pins this with static_asserts).
#pragma once

#include <cstdint>
#include <string>

#include "kv/page.hpp"

#if defined(LSERVE_AUDIT) && LSERVE_AUDIT
#define LSERVE_AUDIT_ENABLED 1
#else
#define LSERVE_AUDIT_ENABLED 0
#endif

#if LSERVE_AUDIT_ENABLED
#include <unordered_map>

#include "serve/thread_annotations.hpp"
#endif

namespace lserve::kv {

/// True when the auditor is compiled in (the LSERVE_AUDIT build option).
inline constexpr bool kAuditEnabled = LSERVE_AUDIT_ENABLED == 1;

/// Owner value recorded when no PageAuditScope is active (direct
/// allocator use in tests/benches).
inline constexpr std::uint64_t kAuditNoOwner = ~std::uint64_t{0};

#if LSERVE_AUDIT_ENABLED

/// RAII: tags every page allocated/freed by this thread inside the scope
/// with an owner (sequence) id and a site string. Nests; the innermost
/// scope wins.
class PageAuditScope {
 public:
  PageAuditScope(std::uint64_t owner, const char* site) noexcept;
  ~PageAuditScope() noexcept;

  PageAuditScope(const PageAuditScope&) = delete;
  PageAuditScope& operator=(const PageAuditScope&) = delete;

  /// The calling thread's innermost scope (owner = kAuditNoOwner, site =
  /// "(unscoped)" when none is active).
  static std::uint64_t current_owner() noexcept;
  static const char* current_site() noexcept;

 private:
  std::uint64_t prev_owner_;
  const char* prev_site_;
};

/// Per-allocator audit state. Thread-safe (called from the same threads
/// as allocate()/free()); keeps its own records so it never depends on
/// the allocator's internals being coherent at check time.
class PageAuditor {
 public:
  /// Records the allocation under the calling thread's audit scope.
  void on_alloc(PageId id);
  /// Verifies live + same-owner, then records the free. Prints an
  /// attribution report and abort()s on double-free or foreign free.
  /// Once a page has been shared (on_add_ref), the owner check is waived:
  /// shared-ownership pages are legally released by any of their holders
  /// (prefix-cache refcounted pages). Exclusively-owned pages keep the
  /// strict check.
  void on_free(PageId id) noexcept;

  /// Records a refcount increment on a live page (prefix-cache sharing).
  /// Marks the page shared — from here until its final free, any sequence
  /// (or the cache itself) may legally release a reference. Aborts if the
  /// page is not live.
  void on_add_ref(PageId id) noexcept;
  /// Records a non-final refcount decrement. Aborts if the page is not
  /// live (a decref after the final free is a use-after-free).
  void on_unref(PageId id) noexcept;

  /// Records a pin (PagePin/PageWritePin construction) with site/thread
  /// attribution. Aborts on a pin of a dead page.
  void on_pin(PageId id) noexcept;
  /// Records the matching unpin. Aborts on an unpin without a pin.
  void on_unpin(PageId id) noexcept;
  /// Called as a page enters the demotion path. Aborts if the page holds
  /// outstanding pins — demoting a pinned page would invalidate a live
  /// Page& (use-after-demote), the exact bug the pin API exists to
  /// prevent.
  void on_demote(PageId id) noexcept;

  /// Pages with outstanding pins (pin-leak check at quiescence points:
  /// a drained scheduler must hold zero pins).
  std::size_t pinned_pages() const;

  /// One "page <id>: owner seq <o>, allocated at <site> on thread <t>"
  /// line per live page (empty string when nothing is live). The
  /// who-leaked-what report for quiescence points that expect an empty
  /// pool.
  std::string report_live() const;

  /// Live (allocated, not yet freed) pages tracked by the auditor.
  std::size_t live_pages() const;

 private:
  struct Record {
    std::uint64_t owner = kAuditNoOwner;
    const char* site = "(unscoped)";
    std::uint64_t thread_id = 0;
    bool live = false;
    /// Set by on_add_ref, cleared on the next on_alloc: this page has (or
    /// had) multiple holders, so frees need not come from the alloc owner.
    bool shared = false;
    /// Outstanding pins + last-pin attribution (use-after-demote and
    /// pin-leak forensics).
    std::size_t pin_count = 0;
    const char* pin_site = "(never pinned)";
    std::uint64_t pin_thread_id = 0;
    /// Last-free attribution, kept for double-free reports.
    std::uint64_t free_owner = kAuditNoOwner;
    const char* free_site = "(never freed)";
    std::uint64_t free_thread_id = 0;
  };

  [[noreturn]] void die_locked(const char* what, PageId id) const
      REQUIRES(mu_);

  mutable Mutex mu_;
  std::unordered_map<PageId, Record> records_ GUARDED_BY(mu_);
  std::size_t live_ GUARDED_BY(mu_) = 0;
  std::size_t pinned_ GUARDED_BY(mu_) = 0;  ///< pages with pins > 0.
};

#else  // !LSERVE_AUDIT_ENABLED

/// No-op stand-ins: empty types, inline empty bodies. The compiler erases
/// every trace of them (tests/audit_test.cpp static_asserts emptiness).
class PageAuditScope {
 public:
  PageAuditScope(std::uint64_t /*owner*/, const char* /*site*/) noexcept {}
  PageAuditScope(const PageAuditScope&) = delete;
  PageAuditScope& operator=(const PageAuditScope&) = delete;

  static std::uint64_t current_owner() noexcept { return kAuditNoOwner; }
  static const char* current_site() noexcept { return "(audit off)"; }
};

class PageAuditor {
 public:
  void on_alloc(PageId /*id*/) noexcept {}
  void on_free(PageId /*id*/) noexcept {}
  void on_add_ref(PageId /*id*/) noexcept {}
  void on_unref(PageId /*id*/) noexcept {}
  void on_pin(PageId /*id*/) noexcept {}
  void on_unpin(PageId /*id*/) noexcept {}
  void on_demote(PageId /*id*/) noexcept {}
  std::string report_live() const { return std::string(); }
  std::size_t live_pages() const { return 0; }
  std::size_t pinned_pages() const { return 0; }
};

#endif  // LSERVE_AUDIT_ENABLED

}  // namespace lserve::kv
