#include "kv/memory_config.hpp"

#include <cstdlib>
#include <cstring>

namespace lserve::kv {

namespace {

bool parse_size(const char* arg, const char* key, std::size_t& out) noexcept {
  const std::size_t klen = std::strlen(key);
  if (std::strncmp(arg, key, klen) != 0 || arg[klen] != '=') return false;
  out = static_cast<std::size_t>(std::strtoull(arg + klen + 1, nullptr, 10));
  return true;
}

}  // namespace

bool MemoryConfig::parse_flag(const char* arg) noexcept {
  return parse_size(arg, "--page-budget", page_budget) ||
         parse_size(arg, "--prefix-cache-pages", prefix_cache_pages) ||
         parse_size(arg, "--hot-pages", hot_pages) ||
         parse_size(arg, "--cold-bytes", cold_bytes);
}

const char* MemoryConfig::flag_help() noexcept {
  return "[--page-budget=N (0=off)] [--prefix-cache-pages=N]\n"
         "          [--hot-pages=N (0=tiering off)] [--cold-bytes=N (0=cap "
         "off)]";
}

}  // namespace lserve::kv
