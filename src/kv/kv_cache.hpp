// Per-sequence paged KV cache for dense (retrieval) heads.
//
// HeadCache owns the page list of one (layer, kv-head); SequenceKvCache is
// the [layers x kv_heads] grid of them. Pages come from a shared
// PageAllocator so multiple sequences can coexist in one pool, as in a real
// serving engine.
#pragma once

#include <cstddef>
#include <vector>

#include "kv/page_allocator.hpp"
#include "kv/page_table.hpp"

namespace lserve::kv {

/// Paged KV storage of one attention (kv-)head for one sequence.
class HeadCache {
 public:
  /// Appends one token's key/value; allocates a new page on block boundary.
  void append(PageAllocator& alloc, const float* key, const float* value);

  /// Prefill write-back: appends and loads the stored (quantized) row back
  /// into `key`/`value` so in-chunk attention reads exactly what the cache
  /// will serve later (see Page::append_roundtrip).
  void append_roundtrip(PageAllocator& alloc, float* key, float* value);

  /// Dequantizes the key / value of absolute token `t` (0-based).
  void load_key(const PageAllocator& alloc, std::size_t t, float* out) const;
  void load_value(const PageAllocator& alloc, std::size_t t, float* out) const;

  /// Prefix-cache attach: adopts `pages` as the first ceil(tokens/NP)
  /// pages of this head, already filled with `tokens` tokens. The caller
  /// owns one reference per page (shared full pages via add_ref, a private
  /// COW copy for a partial tail). Precondition: the head is empty.
  void attach(std::vector<PageId> pages, std::size_t tokens) noexcept;

  std::size_t tokens() const noexcept { return tokens_; }
  std::size_t num_pages() const noexcept { return pages_.size(); }
  const std::vector<PageId>& pages() const noexcept { return pages_; }

  PageTableView view(const PageAllocator& alloc) const noexcept {
    return {pages_, tokens_, alloc.config().page_size};
  }

  /// Frees all pages back to the allocator.
  void release(PageAllocator& alloc) noexcept;

 private:
  std::vector<PageId> pages_;
  std::size_t tokens_ = 0;
};

/// The full [layers x kv_heads] KV cache of one sequence (dense heads).
class SequenceKvCache {
 public:
  SequenceKvCache(std::size_t layers, std::size_t kv_heads)
      : layers_(layers), kv_heads_(kv_heads), heads_(layers * kv_heads) {}

  HeadCache& head(std::size_t layer, std::size_t h) noexcept {
    return heads_[layer * kv_heads_ + h];
  }
  const HeadCache& head(std::size_t layer, std::size_t h) const noexcept {
    return heads_[layer * kv_heads_ + h];
  }

  std::size_t layers() const noexcept { return layers_; }
  std::size_t kv_heads() const noexcept { return kv_heads_; }

  void release(PageAllocator& alloc) noexcept {
    for (auto& h : heads_) h.release(alloc);
  }

 private:
  std::size_t layers_;
  std::size_t kv_heads_;
  std::vector<HeadCache> heads_;
};

}  // namespace lserve::kv
