// Cold tier of the two-level KV page store: a slot file of serialized
// pages, mmap-backed, the CPU analog of GPU→host KV offload.
//
// The hot tier is the PageAllocator's RAM pool; when the pool runs over
// its hot budget, cold pages are serialized into a fixed-size slot here
// and their in-RAM storage is dropped. Slots live in an *unlinked* temp
// file grown in extents and mapped on demand (so spilled pages cost file
// pages the OS can write back, not anonymous RSS); when no writable temp
// directory exists (sandboxed CI), the store falls back to anonymous
// mappings and still honors the same byte cap.
//
// Thread safety: every operation takes the store's mutex. Slot payload
// copies also happen under it — a slot is only ever touched by the single
// tier transition (demote/promote) that owns it, and payloads are tens of
// kilobytes, so a short critical section beats a per-slot ownership
// protocol.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/thread_annotations.hpp"

namespace lserve::kv {

/// Identifies a slot inside a ColdStore.
using ColdSlotId = std::uint32_t;
inline constexpr ColdSlotId kInvalidColdSlot = static_cast<ColdSlotId>(-1);

/// Fixed-slot spill file with O(1) store/load/release.
class ColdStore {
 public:
  /// `slot_bytes` is the serialized page footprint (Page::
  /// serialized_bytes_for); `max_bytes` caps the tier (0 = unbounded).
  ColdStore(std::size_t slot_bytes, std::size_t max_bytes);
  ~ColdStore();

  ColdStore(const ColdStore&) = delete;
  ColdStore& operator=(const ColdStore&) = delete;

  /// Copies slot_bytes() from `data` into a fresh slot. Returns
  /// kInvalidColdSlot when the byte cap would be exceeded.
  ColdSlotId store(const std::uint8_t* data) noexcept;

  /// Copies slot `id` into `out` (the slot stays valid until release()).
  void load(ColdSlotId id, std::uint8_t* out) const noexcept;

  /// Returns slot `id` to the free list.
  void release(ColdSlotId id) noexcept;

  std::size_t slot_bytes() const noexcept { return slot_bytes_; }
  std::size_t max_bytes() const noexcept { return max_bytes_; }
  std::size_t slots_in_use() const noexcept;
  std::size_t bytes_in_use() const noexcept;
  /// True when the backing is the unlinked temp file (false = anonymous
  /// fallback). Exposed for tests/diagnostics.
  bool file_backed() const noexcept { return fd_ >= 0; }

 private:
  /// One mapped run of kExtentSlots slots.
  struct Extent {
    std::uint8_t* base = nullptr;
    std::size_t bytes = 0;
  };
  static constexpr std::size_t kExtentSlots = 64;

  /// Grows the file (or maps anonymous memory) by one extent and pushes
  /// its slots onto the free list. Returns false if mapping failed.
  bool add_extent_locked() REQUIRES(mu_);
  std::uint8_t* slot_ptr(ColdSlotId id) const REQUIRES(mu_);

  std::size_t slot_bytes_;
  std::size_t max_bytes_;
  int fd_ = -1;  ///< unlinked spill file; -1 = anonymous fallback.

  mutable Mutex mu_;
  std::vector<Extent> extents_ GUARDED_BY(mu_);
  std::vector<ColdSlotId> free_slots_ GUARDED_BY(mu_);  ///< LIFO.
  std::size_t total_slots_ GUARDED_BY(mu_) = 0;
  std::size_t in_use_ GUARDED_BY(mu_) = 0;
};

}  // namespace lserve::kv
