// Cross-request KV reuse: a radix-style prefix cache over PageAllocator.
//
// The tree is keyed per logical *page* of prompt tokens: each node covers
// one token block of up to NP tokens (a full block everywhere except the
// tail, which may be a partial leaf) and holds one refcounted PageId per
// (layer, kv-head) slot — dense pages from the dense pool, streaming pages
// from the streaming pool. Insert (at sequence finish / preemption /
// cancel, *before* the sequence releases its pages) add_ref()s the
// sequence's pages into the tree; attach (at admission) add_ref()s full
// shared pages into a fresh sequence's TwoWayKvCache and resumes chunked
// prefill at the first uncached token. Shared pages are immutable by
// contract — a partially-filled tail page is never attached directly but
// copied copy-on-write (quantized codes + params verbatim, so outputs stay
// bit-identical to a cold prefill), as is any mid-page divergence.
//
// Streaming heads complicate reuse: their caches evict middle blocks as
// the Λ window slides, so the tree can only hold stream pages for blocks
// the inserting sequence still retained. An attach depth D is *feasible*
// only if every streaming block retained at D (sinks, plus locals with
// (b+1)*NP + local_tokens > D) has stream pages in the tree; attach picks
// the deepest feasible depth, falling back across block boundaries. The
// multi-turn workload this cache targets always matches at the previous
// insert depth, where the needed window equals the stored one.
//
// Eviction is LRU over leaves: insert enforces the configured max_pages
// budget, and reclaim() (called by the scheduler under page-budget
// pressure, before it resorts to preempting a running sequence) frees
// nodes whose pages the cache is the last holder of.
//
// Thread safety (machine-checked): every public method takes mu_; mu_ is
// acquired before the allocator's internal lock and never the reverse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "kv/page_allocator.hpp"
#include "kv/two_way_cache.hpp"
#include "serve/thread_annotations.hpp"

namespace lserve::kv {

/// Geometry the cache needs to mirror the engine's head partition.
struct PrefixCacheConfig {
  std::size_t layers = 0;
  std::size_t kv_heads = 0;
  /// [layers x kv_heads] row-major head roles (the engine's partition).
  std::vector<HeadKind> kinds;
  StreamingConfig streaming;
  /// Pages the tree may hold before insert-time LRU eviction kicks in
  /// (0 = unbounded; reclaim() still evicts under external pressure).
  std::size_t max_pages = 0;
};

/// Cumulative cache telemetry (mirrored into EngineStats).
struct PrefixCacheStats {
  std::size_t hits = 0;            ///< attaches that reused >= 1 token.
  std::size_t misses = 0;          ///< attaches that reused nothing.
  std::size_t tokens_reused = 0;   ///< prompt tokens skipped via attach.
  std::size_t cow_copies = 0;      ///< pages copied on write/divergence.
  std::size_t evictions = 0;       ///< tree nodes evicted (LRU / reclaim).
  std::size_t nodes = 0;           ///< current tree nodes.
  std::size_t pages_held = 0;      ///< page references the tree holds.
};

/// Token-block radix tree of refcounted KV pages shared across requests.
class PrefixCache {
 public:
  /// Both allocators must share one page_size. The cache holds references
  /// into them for its whole lifetime, so it must be destroyed first.
  PrefixCache(PageAllocator& dense, PageAllocator& stream,
              PrefixCacheConfig cfg);
  ~PrefixCache();

  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  /// Tokens of `prompt` an attach() would reuse right now, capped at
  /// `max_tokens` — the deepest *feasible* match depth (streaming blocks
  /// accounted). Pure peek: no refcounts, no LRU touch, no counters.
  std::size_t match_tokens(std::span<const std::int32_t> prompt,
                           std::size_t max_tokens) const EXCLUDES(mu_);

  /// Maps shared pages for the longest feasible cached prefix of `prompt`
  /// (at most `max_tokens` tokens) into `cache`, add_ref()ing full pages
  /// and COW-copying the partial tail. Returns the attach depth D; the
  /// caller resumes prefill at token D. `cache` must be empty.
  std::size_t attach(std::span<const std::int32_t> prompt,
                     std::size_t max_tokens, TwoWayKvCache& cache)
      EXCLUDES(mu_);

  /// Shares `cache`'s pages for `tokens` into the tree. `tokens` MUST be
  /// the prefill-produced prefix of the sequence (its prompt/replay feed,
  /// truncated to the prefilled position) — never tokens appended during
  /// decode: the sparse decode path writes numerically different K/V than
  /// a prefill of the same tokens, so caching decode-produced pages would
  /// break the attach path's bit-exactness guarantee. Must run before the
  /// sequence releases its pages, and after it will no longer append
  /// (terminal or preempted) — shared pages are immutable. Enforces
  /// max_pages.
  void insert(std::span<const std::int32_t> tokens,
              const TwoWayKvCache& cache) EXCLUDES(mu_);

  /// Evicts LRU nodes until ~`target_pages` pages were actually returned
  /// to the pools (only counting pages the cache was the last holder of).
  /// Nodes whose pages are all still shared with live sequences are
  /// skipped — evicting them frees nothing. Returns pages actually freed.
  std::size_t reclaim(std::size_t target_pages) EXCLUDES(mu_);

  /// Drops every node (used when the head partition changes).
  void clear() EXCLUDES(mu_);

  /// Page references currently held by the tree.
  std::size_t pages_held() const EXCLUDES(mu_);

  PrefixCacheStats stats() const EXCLUDES(mu_);

 private:
  /// One token block: `run` tokens (== page_size except for a partial
  /// leaf) and one page handle per head slot (kInvalidPage for streaming
  /// slots whose block had been evicted before insert).
  struct Node {
    std::vector<std::int32_t> run;
    std::vector<PageId> pages;  ///< [layers x kv_heads].
    std::uint32_t block = 0;
    std::uint64_t last_use = 0;
    bool has_stream = false;  ///< all streaming slots hold a page.
    Node* parent = nullptr;
    std::vector<std::unique_ptr<Node>> children;
  };

  /// The matched sources for a prompt: `srcs[b]` backs block b. All but
  /// the last cover a full block; the last may be matched only through
  /// `matched % page_size` tokens.
  struct Match {
    std::vector<Node*> srcs;
    std::size_t matched = 0;  ///< tokens matched (feasibility-unchecked).
  };

  Match match_locked(std::span<const std::int32_t> prompt,
                     std::size_t max_tokens) const REQUIRES(mu_);
  /// True iff every streaming block retained at depth D has stream pages.
  bool feasible_locked(const Match& m, std::size_t depth) const
      REQUIRES(mu_);
  /// Deepest feasible attach depth for `m` (full depth, else block
  /// boundaries descending, else 0).
  std::size_t best_depth_locked(const Match& m) const REQUIRES(mu_);
  /// Logical block b's page set survives at token depth D in a streaming
  /// head (sink, or still inside the local window).
  bool stream_block_retained(std::size_t block, std::size_t depth) const;
  std::size_t sink_blocks() const noexcept;

  /// Removes `leaf` from the tree, releasing its page references.
  /// Returns pages actually freed (refcount was 1). Bumps evictions.
  std::size_t evict_leaf_locked(Node* leaf) REQUIRES(mu_);
  /// LRU leaf scan. `require_freeable`: only leaves with >= 1 page the
  /// cache is the last holder of; `require_unshared`: all pages.
  Node* lru_leaf_locked(bool require_freeable, bool require_unshared) const
      REQUIRES(mu_);
  std::size_t node_valid_pages_locked(const Node& node) const REQUIRES(mu_);

  PageAllocator& dense_;
  PageAllocator& stream_;
  const PrefixCacheConfig cfg_;
  const std::size_t page_size_;
  const std::size_t slots_;

  mutable Mutex mu_;
  std::unique_ptr<Node> root_ GUARDED_BY(mu_);
  std::uint64_t clock_ GUARDED_BY(mu_) = 0;
  std::size_t pages_held_ GUARDED_BY(mu_) = 0;
  std::size_t nodes_ GUARDED_BY(mu_) = 0;
  PrefixCacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace lserve::kv
