#include "kv/page.hpp"

#include <cassert>

namespace lserve::kv {

void Page::init(const PageConfig& cfg) {
  assert(cfg.valid());
  cfg_ = cfg;
  initialized_ = true;
  count_ = 0;
  keys_ = num::QuantizedRows(cfg.page_size, cfg.head_dim, cfg.dtype);
  values_ = num::QuantizedRows(cfg.page_size, cfg.head_dim, cfg.dtype);
  if (cfg.track_kstats) {
    stats_ = KStats(cfg.logical_pages(), cfg.head_dim);
  }
}

void Page::reset() noexcept {
  count_ = 0;
  stats_.reset();
}

std::size_t Page::append(const float* key, const float* value) noexcept {
  assert(!full());
  const std::size_t slot = count_++;
  keys_.store_row(slot, key);
  values_.store_row(slot, value);
  if (cfg_.track_kstats) {
    // Stats fold the *quantized* key so selector decisions match what the
    // sparse kernel will actually read back.
    if (cfg_.dtype == num::KvDtype::kFp16) {
      stats_.update(slot, cfg_.logical_page_size, key);
    } else {
      float deq[1024];
      assert(cfg_.head_dim <= 1024);
      keys_.load_row(slot, deq);
      stats_.update(slot, cfg_.logical_page_size, deq);
    }
  }
  return slot;
}

void Page::load_key(std::size_t slot, float* out) const noexcept {
  assert(slot < count_);
  keys_.load_row(slot, out);
}

void Page::load_value(std::size_t slot, float* out) const noexcept {
  assert(slot < count_);
  values_.load_row(slot, out);
}

double Page::device_bytes() const noexcept {
  double b = keys_.device_bytes() + values_.device_bytes();
  if (cfg_.track_kstats) b += stats_.device_bytes();
  return b;
}

}  // namespace lserve::kv
