#include "kv/page.hpp"

#include <cassert>
#include <cstring>

namespace lserve::kv {

void Page::init(const PageConfig& cfg) {
  assert(cfg.valid());
  cfg_ = cfg;
  initialized_ = true;
  count_ = 0;
  keys_ = num::QuantizedRows(cfg.page_size, cfg.head_dim, cfg.dtype);
  values_ = num::QuantizedRows(cfg.page_size, cfg.head_dim, cfg.dtype);
  if (cfg.track_kstats) {
    stats_ = KStats(cfg.logical_pages(), cfg.head_dim);
  }
}

void Page::reset() noexcept {
  count_ = 0;
  stats_.reset();
}

std::size_t Page::append(const float* key, const float* value) noexcept {
  assert(!full());
  const std::size_t slot = count_++;
  keys_.store_row(slot, key);
  values_.store_row(slot, value);
  if (cfg_.track_kstats) {
    // Stats fold the *quantized* key so selector decisions match what the
    // sparse kernel will actually read back — derived straight from the
    // stored codes + per-row quant params, no dequantized scratch copy.
    stats_.update_quantized(slot, cfg_.logical_page_size, keys_);
  }
  return slot;
}

std::size_t Page::append_roundtrip(float* key, float* value) noexcept {
  const std::size_t slot = append(key, value);
  if (cfg_.dtype != num::KvDtype::kFp16) {
    keys_.load_row(slot, key);
    values_.load_row(slot, value);
  }
  return slot;
}

void Page::copy_prefix_from(const Page& src, std::size_t n) noexcept {
  assert(initialized_ && src.initialized_);
  assert(empty());
  assert(n <= src.count_);
  assert(cfg_.page_size == src.cfg_.page_size &&
         cfg_.logical_page_size == src.cfg_.logical_page_size &&
         cfg_.head_dim == src.cfg_.head_dim && cfg_.dtype == src.cfg_.dtype &&
         cfg_.track_kstats == src.cfg_.track_kstats);
  keys_.copy_rows_from(src.keys_, n);
  values_.copy_rows_from(src.values_, n);
  count_ = n;
  if (cfg_.track_kstats) {
    // Same fold as append(), replayed slot by slot over the copied codes
    // so the result matches an append-built page bit for bit.
    stats_.reset();
    for (std::size_t slot = 0; slot < n; ++slot) {
      stats_.update_quantized(slot, cfg_.logical_page_size, keys_);
    }
  }
}

void Page::load_key(std::size_t slot, float* out) const noexcept {
  assert(slot < count_);
  keys_.load_row(slot, out);
}

void Page::load_value(std::size_t slot, float* out) const noexcept {
  assert(slot < count_);
  values_.load_row(slot, out);
}

std::size_t Page::serialized_bytes() const noexcept {
  assert(initialized_);
  std::size_t n = sizeof(std::uint64_t) + keys_.serialized_bytes() +
                  values_.serialized_bytes();
  if (cfg_.track_kstats) n += stats_.serialized_bytes();
  return n;
}

std::size_t Page::serialized_bytes_for(const PageConfig& cfg) {
  Page tmp;
  tmp.init(cfg);
  return tmp.serialized_bytes();
}

void Page::serialize(std::uint8_t* out) const noexcept {
  assert(initialized_);
  const std::uint64_t count = count_;
  std::memcpy(out, &count, sizeof(count));
  out += sizeof(count);
  keys_.serialize(out);
  out += keys_.serialized_bytes();
  values_.serialize(out);
  out += values_.serialized_bytes();
  if (cfg_.track_kstats) stats_.serialize(out);
}

void Page::deserialize(const std::uint8_t* in) noexcept {
  assert(initialized_);
  std::uint64_t count = 0;
  std::memcpy(&count, in, sizeof(count));
  in += sizeof(count);
  count_ = static_cast<std::size_t>(count);
  assert(count_ <= cfg_.page_size);
  keys_.deserialize(in);
  in += keys_.serialized_bytes();
  values_.deserialize(in);
  in += values_.serialized_bytes();
  if (cfg_.track_kstats) stats_.deserialize(in);
}

void Page::drop_storage() noexcept {
  initialized_ = false;
  count_ = 0;
  keys_ = num::QuantizedRows();
  values_ = num::QuantizedRows();
  stats_ = KStats();
}

double Page::device_bytes() const noexcept {
  double b = keys_.device_bytes() + values_.device_bytes();
  if (cfg_.track_kstats) b += stats_.device_bytes();
  return b;
}

}  // namespace lserve::kv
