// Two-way paged KV cache: separate paging systems for dense heads and
// streaming heads (LServe Fig 5).
//
// Dense (retrieval) heads keep every page and carry K_stats for the page
// selector. Streaming heads keep only the sink pages and a sliding window
// of local pages; middle pages are freed as soon as they fall fully outside
// the Λ mask, which is what makes streaming heads "nearly free" in memory
// and compute at long context. Their page table therefore only ever
// contains sink & local pages, and the decode kernel consumes it through
// the same SelectedPageTable interface as dynamically-pruned dense heads
// (the two-level indexing unification of §3.6).
#pragma once

#include <cassert>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "kv/kv_cache.hpp"
#include "kv/page_allocator.hpp"
#include "kv/page_table.hpp"

namespace lserve::kv {

/// Static role of an attention head (decided offline, §3.3).
enum class HeadKind : std::uint8_t {
  kDense = 0,      ///< retrieval head: full KV history + K_stats.
  kStreaming = 1,  ///< streaming head: Λ mask (sinks + local window).
};

/// Λ-mask geometry for streaming heads, in tokens. Both quantities are
/// rounded up to whole pages internally.
struct StreamingConfig {
  std::size_t sink_tokens = 128;
  std::size_t local_tokens = 512;
};

/// KV storage of one streaming head: sink pages plus a ring of local pages.
class StreamingHeadCache {
 public:
  void append(PageAllocator& alloc, const StreamingConfig& cfg,
              const float* key, const float* value);

  /// Prefill write-back: appends with quantization round-trip (see
  /// Page::append_roundtrip) and — unlike append() — does NOT evict stale
  /// local pages. Chunked prefill appends the whole chunk before running
  /// attention; the boundary-window pages that early chunk rows still
  /// attend must stay alive until evict_stale() runs at end of chunk.
  void append_roundtrip(PageAllocator& alloc, const StreamingConfig& cfg,
                        float* key, float* value);

  /// Frees local pages whose entire block now precedes the Λ window.
  /// append() calls this eagerly; after append_roundtrip() the caller
  /// runs it once per chunk.
  void evict_stale(PageAllocator& alloc, const StreamingConfig& cfg);

  std::size_t tokens() const noexcept { return tokens_; }

  /// Prefix-cache attach: adopts the exact page set streaming state would
  /// hold after appending `tokens` tokens — `sinks` are blocks [0, |sinks|),
  /// `locals` are (block, page) pairs for retained trailing-window blocks
  /// in ascending block order. The caller owns one reference per page.
  /// Precondition: the head is empty.
  void attach(std::vector<PageId> sinks,
              const std::vector<std::pair<std::uint32_t, PageId>>& locals,
              std::size_t tokens) noexcept;

  /// The retained page covering logical block `block`, or kInvalidPage if
  /// that block has been evicted from the Λ window.
  PageId page_for_block(std::uint32_t block) const noexcept;

  /// Pages currently retained (sinks + local ring), as a pruned page table
  /// sorted by logical block — directly consumable by the decode kernel.
  SelectedPageTable index_table() const;

  /// Number of physical pages currently held.
  std::size_t pages_held() const noexcept {
    return sink_pages_.size() + local_pages_.size();
  }

  void release(PageAllocator& alloc) noexcept;

 private:
  struct LocalPage {
    std::uint32_t block;
    PageId page;
  };
  /// Allocates-on-boundary and returns a write pin on the page the next
  /// token lands in.
  PageWritePin append_page(PageAllocator& alloc, const StreamingConfig& cfg);
  std::vector<PageId> sink_pages_;     // blocks [0, sink_blocks)
  std::deque<LocalPage> local_pages_;  // trailing window
  std::size_t tokens_ = 0;
};

/// The per-sequence two-way cache across all layers and kv-heads.
///
/// Head roles are fixed at construction from the offline classifier output;
/// appends are routed to the dense or streaming pool accordingly.
class TwoWayKvCache {
 public:
  /// `kinds` is a [layers x kv_heads] row-major role table.
  TwoWayKvCache(std::size_t layers, std::size_t kv_heads,
                std::vector<HeadKind> kinds, StreamingConfig streaming_cfg);

  std::size_t layers() const noexcept { return layers_; }
  std::size_t kv_heads() const noexcept { return kv_heads_; }
  HeadKind kind(std::size_t layer, std::size_t h) const noexcept {
    return kinds_[layer * kv_heads_ + h];
  }
  const StreamingConfig& streaming_config() const noexcept {
    return streaming_cfg_;
  }

  /// Appends one token's K/V for one (layer, head); `dense_alloc` and
  /// `stream_alloc` may be the same pool or distinct pools (LServe uses
  /// distinct pools so streaming pages can skip K_stats storage).
  void append(PageAllocator& dense_alloc, PageAllocator& stream_alloc,
              std::size_t layer, std::size_t h, const float* key,
              const float* value);

  /// Prefill write-back variant: round-trips the row through the cache
  /// dtype (key/value hold the stored representation on return) and
  /// defers streaming eviction to evict_stale(). The chunked-prefill path
  /// appends the whole chunk, runs attention over the round-tripped rows
  /// plus the still-alive boundary window, then evicts — the ordering
  /// that makes prefill chunk-schedule-invariant.
  void append_roundtrip(PageAllocator& dense_alloc,
                        PageAllocator& stream_alloc, std::size_t layer,
                        std::size_t h, float* key, float* value);

  /// Frees stale local pages of one layer's streaming heads (the deferred
  /// half of append_roundtrip). No-op for dense heads.
  void evict_stale(PageAllocator& stream_alloc, std::size_t layer);

  /// Dense-head accessors (precondition: kind == kDense).
  const HeadCache& dense_head(std::size_t layer, std::size_t h) const;
  HeadCache& dense_head(std::size_t layer, std::size_t h);

  /// Streaming-head accessors (precondition: kind == kStreaming).
  const StreamingHeadCache& streaming_head(std::size_t layer,
                                           std::size_t h) const;
  StreamingHeadCache& streaming_head(std::size_t layer, std::size_t h);

  /// Tokens appended so far (uniform across heads).
  std::size_t tokens() const noexcept { return tokens_seen_; }

  /// Prefix-cache attach bookkeeping: records that the first `n` tokens
  /// arrived via page attach rather than append. Precondition: no tokens
  /// appended yet.
  void note_attached_tokens(std::size_t n) noexcept {
    assert(tokens_seen_ == 0);
    tokens_seen_ = n;
  }

  void release(PageAllocator& dense_alloc, PageAllocator& stream_alloc);

 private:
  std::size_t layers_;
  std::size_t kv_heads_;
  std::vector<HeadKind> kinds_;
  StreamingConfig streaming_cfg_;
  std::vector<HeadCache> dense_;
  std::vector<StreamingHeadCache> streaming_;
  std::size_t tokens_seen_ = 0;
};

}  // namespace lserve::kv
