#include "kv/cold_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

namespace lserve::kv {

namespace {

/// Opens an unlinked temp file for the spill backing, or -1 if no
/// writable temp directory is available.
int open_spill_file() {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || *dir == '\0') dir = "/tmp";
  std::string path = std::string(dir) + "/lserve_cold_XXXXXX";
  const int fd = ::mkstemp(path.data());
  if (fd < 0) return -1;
  // Unlink immediately: the file lives exactly as long as the fd, and a
  // crashed process leaves nothing behind.
  ::unlink(path.c_str());
  return fd;
}

}  // namespace

ColdStore::ColdStore(std::size_t slot_bytes, std::size_t max_bytes)
    : slot_bytes_(slot_bytes), max_bytes_(max_bytes) {
  assert(slot_bytes_ > 0);
  fd_ = open_spill_file();
}

ColdStore::~ColdStore() {
  {
    MutexLock lock(mu_);
    for (const Extent& e : extents_) {
      if (e.base != nullptr) ::munmap(e.base, e.bytes);
    }
    extents_.clear();
  }
  if (fd_ >= 0) ::close(fd_);
}

bool ColdStore::add_extent_locked() {
  const std::size_t bytes = kExtentSlots * slot_bytes_;
  const std::size_t offset = total_slots_ * slot_bytes_;
  void* base = MAP_FAILED;
  if (fd_ >= 0) {
    if (::ftruncate(fd_, static_cast<off_t>(offset + bytes)) == 0) {
      base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd_,
                    static_cast<off_t>(offset));
    }
    if (base == MAP_FAILED) {
      // File grew past the temp filesystem (or mmap failed): fall back to
      // anonymous extents from here on.
      ::close(fd_);
      fd_ = -1;
    }
  }
  if (base == MAP_FAILED) {
    base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  }
  if (base == MAP_FAILED) return false;
  extents_.push_back({static_cast<std::uint8_t*>(base), bytes});
  // LIFO order within the extent: its lowest id is handed out first.
  for (std::size_t i = kExtentSlots; i > 0; --i) {
    free_slots_.push_back(static_cast<ColdSlotId>(total_slots_ + i - 1));
  }
  total_slots_ += kExtentSlots;
  return true;
}

std::uint8_t* ColdStore::slot_ptr(ColdSlotId id) const {
  assert(id < total_slots_);
  return extents_[id / kExtentSlots].base + (id % kExtentSlots) * slot_bytes_;
}

ColdSlotId ColdStore::store(const std::uint8_t* data) noexcept {
  MutexLock lock(mu_);
  if (max_bytes_ > 0 && (in_use_ + 1) * slot_bytes_ > max_bytes_) {
    return kInvalidColdSlot;
  }
  if (free_slots_.empty() && !add_extent_locked()) return kInvalidColdSlot;
  const ColdSlotId id = free_slots_.back();
  free_slots_.pop_back();
  ++in_use_;
  std::memcpy(slot_ptr(id), data, slot_bytes_);
  return id;
}

void ColdStore::load(ColdSlotId id, std::uint8_t* out) const noexcept {
  MutexLock lock(mu_);
  std::memcpy(out, slot_ptr(id), slot_bytes_);
}

void ColdStore::release(ColdSlotId id) noexcept {
  MutexLock lock(mu_);
  assert(id < total_slots_);
  assert(in_use_ > 0);
  --in_use_;
  free_slots_.push_back(id);
}

std::size_t ColdStore::slots_in_use() const noexcept {
  MutexLock lock(mu_);
  return in_use_;
}

std::size_t ColdStore::bytes_in_use() const noexcept {
  MutexLock lock(mu_);
  return in_use_ * slot_bytes_;
}

}  // namespace lserve::kv
