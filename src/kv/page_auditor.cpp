#include "kv/page_auditor.hpp"

#if LSERVE_AUDIT_ENABLED

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

namespace lserve::kv {

namespace {

struct ScopeState {
  std::uint64_t owner = kAuditNoOwner;
  const char* site = "(unscoped)";
};

thread_local ScopeState g_scope;

std::uint64_t this_thread_id() noexcept {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

PageAuditScope::PageAuditScope(std::uint64_t owner, const char* site) noexcept
    : prev_owner_(g_scope.owner), prev_site_(g_scope.site) {
  g_scope.owner = owner;
  g_scope.site = site;
}

PageAuditScope::~PageAuditScope() noexcept {
  g_scope.owner = prev_owner_;
  g_scope.site = prev_site_;
}

std::uint64_t PageAuditScope::current_owner() noexcept {
  return g_scope.owner;
}

const char* PageAuditScope::current_site() noexcept { return g_scope.site; }

void PageAuditor::die_locked(const char* what, PageId id) const {
  const Record& rec = records_.at(id);
  std::fprintf(
      stderr,
      "[lserve page audit] %s: page %u\n"
      "  allocated by owner seq %llu at %s on thread %llx\n"
      "  last freed  by owner seq %llu at %s on thread %llx\n"
      "  this free   by owner seq %llu at %s on thread %llx\n",
      what, static_cast<unsigned>(id),
      static_cast<unsigned long long>(rec.owner), rec.site,
      static_cast<unsigned long long>(rec.thread_id),
      static_cast<unsigned long long>(rec.free_owner), rec.free_site,
      static_cast<unsigned long long>(rec.free_thread_id),
      static_cast<unsigned long long>(PageAuditScope::current_owner()),
      PageAuditScope::current_site(),
      static_cast<unsigned long long>(this_thread_id()));
  std::abort();
}

void PageAuditor::on_alloc(PageId id) {
  MutexLock lock(mu_);
  Record& rec = records_[id];
  if (rec.live) die_locked("allocator handed out a live page", id);
  rec.owner = PageAuditScope::current_owner();
  rec.site = PageAuditScope::current_site();
  rec.thread_id = this_thread_id();
  rec.live = true;
  rec.shared = false;
  ++live_;
}

void PageAuditor::on_add_ref(PageId id) noexcept {
  MutexLock lock(mu_);
  const auto it = records_.find(id);
  if (it == records_.end() || !it->second.live) {
    std::fprintf(stderr,
                 "[lserve page audit] add_ref on dead page %u by "
                 "owner seq %llu at %s\n",
                 static_cast<unsigned>(id),
                 static_cast<unsigned long long>(
                     PageAuditScope::current_owner()),
                 PageAuditScope::current_site());
    std::abort();
  }
  it->second.shared = true;
}

void PageAuditor::on_unref(PageId id) noexcept {
  MutexLock lock(mu_);
  const auto it = records_.find(id);
  if (it == records_.end() || !it->second.live) {
    std::fprintf(stderr,
                 "[lserve page audit] unref of dead page %u by "
                 "owner seq %llu at %s\n",
                 static_cast<unsigned>(id),
                 static_cast<unsigned long long>(
                     PageAuditScope::current_owner()),
                 PageAuditScope::current_site());
    std::abort();
  }
}

void PageAuditor::on_pin(PageId id) noexcept {
  MutexLock lock(mu_);
  const auto it = records_.find(id);
  if (it == records_.end() || !it->second.live) {
    std::fprintf(stderr,
                 "[lserve page audit] pin of dead page %u by "
                 "owner seq %llu at %s\n",
                 static_cast<unsigned>(id),
                 static_cast<unsigned long long>(
                     PageAuditScope::current_owner()),
                 PageAuditScope::current_site());
    std::abort();
  }
  Record& rec = it->second;
  if (rec.pin_count++ == 0) ++pinned_;
  rec.pin_site = PageAuditScope::current_site();
  rec.pin_thread_id = this_thread_id();
}

void PageAuditor::on_unpin(PageId id) noexcept {
  MutexLock lock(mu_);
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.pin_count == 0) {
    std::fprintf(stderr,
                 "[lserve page audit] unpin without a pin on page %u by "
                 "owner seq %llu at %s\n",
                 static_cast<unsigned>(id),
                 static_cast<unsigned long long>(
                     PageAuditScope::current_owner()),
                 PageAuditScope::current_site());
    std::abort();
  }
  if (--it->second.pin_count == 0) --pinned_;
}

void PageAuditor::on_demote(PageId id) noexcept {
  MutexLock lock(mu_);
  const auto it = records_.find(id);
  if (it == records_.end() || !it->second.live) {
    std::fprintf(stderr,
                 "[lserve page audit] demote of dead page %u\n",
                 static_cast<unsigned>(id));
    std::abort();
  }
  const Record& rec = it->second;
  if (rec.pin_count != 0) {
    std::fprintf(stderr,
                 "[lserve page audit] demote of pinned page %u "
                 "(%zu pins, last pinned at %s on thread %llx) — a live "
                 "Page& would dangle (use-after-demote)\n",
                 static_cast<unsigned>(id), rec.pin_count, rec.pin_site,
                 static_cast<unsigned long long>(rec.pin_thread_id));
    std::abort();
  }
}

void PageAuditor::on_free(PageId id) noexcept {
  MutexLock lock(mu_);
  const auto it = records_.find(id);
  if (it == records_.end()) {
    std::fprintf(stderr,
                 "[lserve page audit] free of never-allocated page %u by "
                 "owner seq %llu at %s\n",
                 static_cast<unsigned>(id),
                 static_cast<unsigned long long>(
                     PageAuditScope::current_owner()),
                 PageAuditScope::current_site());
    std::abort();
  }
  Record& rec = it->second;
  if (!rec.live) die_locked("double free", id);
  if (rec.pin_count != 0) {
    std::fprintf(stderr,
                 "[lserve page audit] freed while pinned: page %u holds "
                 "%zu pins (last pinned at %s on thread %llx)\n",
                 static_cast<unsigned>(id), rec.pin_count, rec.pin_site,
                 static_cast<unsigned long long>(rec.pin_thread_id));
    std::abort();
  }
  if (!rec.shared && rec.owner != PageAuditScope::current_owner()) {
    die_locked("foreign free (owner mismatch)", id);
  }
  rec.live = false;
  rec.free_owner = PageAuditScope::current_owner();
  rec.free_site = PageAuditScope::current_site();
  rec.free_thread_id = this_thread_id();
  --live_;
}

std::string PageAuditor::report_live() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [id, rec] : records_) {
    if (!rec.live) continue;
    out += "page " + std::to_string(id) + ": owner seq ";
    out += rec.owner == kAuditNoOwner ? std::string("(none)")
                                      : std::to_string(rec.owner);
    out += ", allocated at ";
    out += rec.site;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(rec.thread_id));
    out += " on thread ";
    out += buf;
    if (rec.pin_count != 0) {
      out += ", holding " + std::to_string(rec.pin_count) +
             " pin(s) from ";
      out += rec.pin_site;
    }
    out += "\n";
  }
  return out;
}

std::size_t PageAuditor::live_pages() const {
  MutexLock lock(mu_);
  return live_;
}

std::size_t PageAuditor::pinned_pages() const {
  MutexLock lock(mu_);
  return pinned_;
}

}  // namespace lserve::kv

#endif  // LSERVE_AUDIT_ENABLED
