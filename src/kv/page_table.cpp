#include "kv/page_table.hpp"

namespace lserve::kv {

SelectedPageTable full_page_table(const PageTableView& view) {
  SelectedPageTable table;
  table.reserve(view.pages.size());
  for (std::size_t b = 0; b < view.pages.size(); ++b) {
    table.push_back({view.pages[b], static_cast<std::uint32_t>(b)});
  }
  return table;
}

std::size_t selected_tokens(const SelectedPageTable& table,
                            const PageTableView& view) {
  std::size_t total = 0;
  for (const auto& entry : table) total += view.block_tokens(entry.block);
  return total;
}

}  // namespace lserve::kv
