#include "kv/prefix_cache.hpp"

#include <algorithm>
#include <cassert>

namespace lserve::kv {

PrefixCache::PrefixCache(PageAllocator& dense, PageAllocator& stream,
                         PrefixCacheConfig cfg)
    : dense_(dense),
      stream_(stream),
      cfg_(std::move(cfg)),
      page_size_(dense.config().page_size),
      slots_(cfg_.layers * cfg_.kv_heads),
      root_(std::make_unique<Node>()) {
  assert(dense_.config().page_size == stream_.config().page_size);
  assert(cfg_.kinds.size() == slots_);
}

PrefixCache::~PrefixCache() { clear(); }

std::size_t PrefixCache::sink_blocks() const noexcept {
  return (cfg_.streaming.sink_tokens + page_size_ - 1) / page_size_;
}

bool PrefixCache::stream_block_retained(std::size_t block,
                                        std::size_t depth) const {
  // Mirrors StreamingHeadCache eviction: block b dies once
  // tokens >= local_tokens + (b+1)*NP; sinks never die.
  return block < sink_blocks() ||
         depth < cfg_.streaming.local_tokens + (block + 1) * page_size_;
}

PrefixCache::Match PrefixCache::match_locked(
    std::span<const std::int32_t> prompt, std::size_t max_tokens) const {
  Match m;
  const std::size_t limit = std::min(prompt.size(), max_tokens);
  Node* cur = root_.get();
  while (m.matched < limit) {
    const std::size_t remaining = limit - m.matched;
    // Children may share prefixes (divergence within a block never splits
    // a node — blocks are atomic pages), so take the longest common
    // prefix over all of them, not the first hit.
    Node* best = nullptr;
    std::size_t best_len = 0;
    for (const auto& child : cur->children) {
      const std::size_t n = std::min(child->run.size(), remaining);
      std::size_t l = 0;
      while (l < n && child->run[l] == prompt[m.matched + l]) ++l;
      if (l > best_len) {
        best_len = l;
        best = child.get();
      }
    }
    if (best == nullptr) break;
    m.srcs.push_back(best);
    m.matched += best_len;
    // Descend only through an entirely-matched full block; a partial leaf
    // or a mid-block divergence ends the match (the tail tokens are
    // COW-copied out of `best` at attach).
    if (best_len < page_size_ || best_len < best->run.size()) break;
    cur = best;
  }
  return m;
}

bool PrefixCache::feasible_locked(const Match& m, std::size_t depth) const {
  if (depth == 0) return true;
  bool any_stream = false;
  for (const HeadKind k : cfg_.kinds) {
    if (k == HeadKind::kStreaming) {
      any_stream = true;
      break;
    }
  }
  if (!any_stream) return true;
  const std::size_t blocks = (depth + page_size_ - 1) / page_size_;
  assert(blocks <= m.srcs.size());
  for (std::size_t b = 0; b < blocks; ++b) {
    if (stream_block_retained(b, depth) && !m.srcs[b]->has_stream) {
      return false;
    }
  }
  return true;
}

std::size_t PrefixCache::best_depth_locked(const Match& m) const {
  if (m.matched == 0) return 0;
  if (feasible_locked(m, m.matched)) return m.matched;
  // Fall back across block boundaries: shallower depths need a smaller
  // streaming window, so a mid-history match can still reuse its sinks.
  std::size_t d = (m.matched / page_size_) * page_size_;
  while (d > 0) {
    if (d != m.matched && feasible_locked(m, d)) return d;
    d -= page_size_;
  }
  return 0;
}

std::size_t PrefixCache::attach(std::span<const std::int32_t> prompt,
                                std::size_t max_tokens,
                                TwoWayKvCache& cache) {
  MutexLock lock(mu_);
  const Match m = match_locked(prompt, max_tokens);
  const std::size_t depth = best_depth_locked(m);
  if (depth == 0) {
    ++stats_.misses;
    return 0;
  }
  ++clock_;
  const std::size_t full_blocks = depth / page_size_;
  const std::size_t tail = depth % page_size_;
  const std::size_t blocks = full_blocks + (tail > 0 ? 1 : 0);
  for (std::size_t b = 0; b < blocks; ++b) m.srcs[b]->last_use = clock_;

  // COW: the depth-D tail lands mid-page, and the attaching sequence will
  // keep appending into that page, so it gets a private copy — quantized
  // payload verbatim, never requantized, keeping outputs bit-identical.
  const auto cow = [&](PageAllocator& alloc, PageId src) REQUIRES(mu_) {
    const PageId id = alloc.allocate();
    const PagePin src_pin = alloc.pin(src);
    alloc.pin_mut(id).page().copy_prefix_from(src_pin.page(), tail);
    ++stats_.cow_copies;
    return id;
  };

  const std::size_t sinks_end = sink_blocks();
  for (std::size_t layer = 0; layer < cfg_.layers; ++layer) {
    for (std::size_t h = 0; h < cfg_.kv_heads; ++h) {
      const std::size_t slot = layer * cfg_.kv_heads + h;
      if (cfg_.kinds[slot] == HeadKind::kDense) {
        std::vector<PageId> pages;
        pages.reserve(blocks);
        for (std::size_t b = 0; b < full_blocks; ++b) {
          const PageId id = m.srcs[b]->pages[slot];
          dense_.add_ref(id);
          pages.push_back(id);
        }
        if (tail > 0) {
          pages.push_back(cow(dense_, m.srcs[full_blocks]->pages[slot]));
        }
        cache.dense_head(layer, h).attach(std::move(pages), depth);
      } else {
        // Install exactly the page set streaming state holds at depth:
        // sinks, plus locals still inside the Λ window — extras would
        // change the pruned index table and thus the attention output.
        std::vector<PageId> sinks;
        std::vector<std::pair<std::uint32_t, PageId>> locals;
        for (std::size_t b = 0; b < blocks; ++b) {
          if (!stream_block_retained(b, depth)) continue;
          const bool is_tail = tail > 0 && b == full_blocks;
          PageId id = m.srcs[b]->pages[slot];
          assert(id != kInvalidPage);
          if (is_tail) {
            id = cow(stream_, id);
          } else {
            stream_.add_ref(id);
          }
          if (b < sinks_end) {
            sinks.push_back(id);
          } else {
            locals.emplace_back(static_cast<std::uint32_t>(b), id);
          }
        }
        cache.streaming_head(layer, h).attach(std::move(sinks), locals,
                                              depth);
      }
    }
  }
  cache.note_attached_tokens(depth);
  ++stats_.hits;
  stats_.tokens_reused += depth;
  return depth;
}

void PrefixCache::insert(std::span<const std::int32_t> tokens,
                         const TwoWayKvCache& cache) {
  if (tokens.empty()) return;
  MutexLock lock(mu_);
  // Strictly fewer tokens than the cache holds is the normal case: callers
  // pass only the prefill-produced prefix, and the boundary page's extra
  // decode-produced rows are simply never covered by a run (attach COWs
  // only the covered rows out of a partial page).
  assert(tokens.size() <= cache.tokens());
  ++clock_;

  // Shares the cache's pages for block `block` into `node` (dense slots
  // always; streaming slots only where the inserting sequence still
  // retains the block — deeper blocks slid out of its Λ window).
  const auto fill_node = [&](Node& node, std::size_t block) REQUIRES(mu_) {
    node.pages.assign(slots_, kInvalidPage);
    std::size_t stream_total = 0;
    std::size_t stream_present = 0;
    for (std::size_t layer = 0; layer < cfg_.layers; ++layer) {
      for (std::size_t h = 0; h < cfg_.kv_heads; ++h) {
        const std::size_t slot = layer * cfg_.kv_heads + h;
        if (cfg_.kinds[slot] == HeadKind::kDense) {
          const PageId id = cache.dense_head(layer, h).pages()[block];
          dense_.add_ref(id);
          node.pages[slot] = id;
          ++pages_held_;
        } else {
          ++stream_total;
          const PageId id = cache.streaming_head(layer, h).page_for_block(
              static_cast<std::uint32_t>(block));
          if (id != kInvalidPage) {
            stream_.add_ref(id);
            node.pages[slot] = id;
            ++pages_held_;
            ++stream_present;
          }
        }
      }
    }
    node.has_stream = stream_present == stream_total;
  };

  const auto release_pages = [&](Node& node) REQUIRES(mu_) {
    for (std::size_t slot = 0; slot < node.pages.size(); ++slot) {
      const PageId id = node.pages[slot];
      if (id == kInvalidPage) continue;
      (cfg_.kinds[slot] == HeadKind::kDense ? dense_ : stream_).release(id);
      --pages_held_;
    }
    node.pages.clear();
  };

  Node* cur = root_.get();
  std::size_t pos = 0;
  while (pos < tokens.size()) {
    const std::size_t remaining = tokens.size() - pos;
    const auto block = static_cast<std::uint32_t>(pos / page_size_);
    if (remaining >= page_size_) {
      const std::span<const std::int32_t> run =
          tokens.subspan(pos, page_size_);
      Node* hit = nullptr;
      for (const auto& child : cur->children) {
        if (child->run.size() == page_size_ &&
            std::equal(run.begin(), run.end(), child->run.begin())) {
          hit = child.get();
          break;
        }
      }
      if (hit != nullptr) {
        hit->last_use = clock_;
        // Backfill: an earlier inserter had already lost this block from
        // its streaming window, but this sequence still holds it live.
        if (!hit->has_stream) {
          bool all_present = true;
          for (std::size_t slot = 0; slot < slots_ && all_present; ++slot) {
            if (cfg_.kinds[slot] != HeadKind::kStreaming) continue;
            const auto layer = slot / cfg_.kv_heads;
            const auto h = slot % cfg_.kv_heads;
            all_present =
                cache.streaming_head(layer, h).page_for_block(block) !=
                kInvalidPage;
          }
          if (all_present) {
            for (std::size_t slot = 0; slot < slots_; ++slot) {
              if (cfg_.kinds[slot] != HeadKind::kStreaming) continue;
              const auto layer = slot / cfg_.kv_heads;
              const auto h = slot % cfg_.kv_heads;
              const PageId id =
                  cache.streaming_head(layer, h).page_for_block(block);
              stream_.add_ref(id);
              hit->pages[slot] = id;
              ++pages_held_;
            }
            hit->has_stream = true;
          }
        }
        cur = hit;
        pos += page_size_;
        continue;
      }
      auto node = std::make_unique<Node>();
      node->run.assign(run.begin(), run.end());
      node->block = block;
      node->last_use = clock_;
      node->parent = cur;
      fill_node(*node, block);
      cur->children.push_back(std::move(node));
      ++nodes_;
      cur = cur->children.back().get();
      pos += page_size_;
      continue;
    }

    // Tail block: fewer than NP tokens remain.
    const std::span<const std::int32_t> run = tokens.subspan(pos, remaining);
    Node* covered = nullptr;
    Node* upgrade = nullptr;
    for (const auto& child : cur->children) {
      if (child->run.size() >= remaining &&
          std::equal(run.begin(), run.end(), child->run.begin())) {
        covered = child.get();
        break;
      }
      if (child->run.size() < page_size_ && child->run.size() < remaining &&
          std::equal(child->run.begin(), child->run.end(), run.begin())) {
        upgrade = child.get();
      }
    }
    if (covered != nullptr) {
      // The tree already holds (at least) this tail.
      covered->last_use = clock_;
    } else if (upgrade != nullptr) {
      // A shorter partial leaf is a strict prefix of ours: swap its pages
      // for this sequence's longer tail page.
      release_pages(*upgrade);
      upgrade->run.assign(run.begin(), run.end());
      upgrade->last_use = clock_;
      fill_node(*upgrade, block);
    } else {
      auto node = std::make_unique<Node>();
      node->run.assign(run.begin(), run.end());
      node->block = block;
      node->last_use = clock_;
      node->parent = cur;
      fill_node(*node, block);
      cur->children.push_back(std::move(node));
      ++nodes_;
    }
    break;
  }

  if (cfg_.max_pages > 0) {
    while (pages_held_ > cfg_.max_pages) {
      Node* leaf = lru_leaf_locked(/*require_freeable=*/false,
                                   /*require_unshared=*/false);
      if (leaf == nullptr) break;
      evict_leaf_locked(leaf);
    }
  }
}

std::size_t PrefixCache::node_valid_pages_locked(const Node& node) const {
  std::size_t n = 0;
  for (const PageId id : node.pages) {
    if (id != kInvalidPage) ++n;
  }
  return n;
}

PrefixCache::Node* PrefixCache::lru_leaf_locked(bool require_freeable,
                                                bool require_unshared) const {
  Node* best = nullptr;
  std::vector<Node*> stack{root_.get()};
  while (!stack.empty()) {
    Node* cur = stack.back();
    stack.pop_back();
    for (const auto& child : cur->children) stack.push_back(child.get());
    if (cur == root_.get() || !cur->children.empty()) continue;
    if (require_freeable || require_unshared) {
      bool any_last = node_valid_pages_locked(*cur) == 0;
      bool all_last = true;
      for (std::size_t slot = 0; slot < cur->pages.size(); ++slot) {
        const PageId id = cur->pages[slot];
        if (id == kInvalidPage) continue;
        const PageAllocator& alloc =
            cfg_.kinds[slot] == HeadKind::kDense ? dense_ : stream_;
        if (alloc.ref_count(id) == 1) {
          any_last = true;
        } else {
          all_last = false;
        }
      }
      if (require_unshared && !all_last) continue;
      if (require_freeable && !any_last) continue;
    }
    if (best == nullptr || cur->last_use < best->last_use) best = cur;
  }
  return best;
}

std::size_t PrefixCache::evict_leaf_locked(Node* leaf) {
  assert(leaf != root_.get() && leaf->children.empty());
  std::size_t freed = 0;
  for (std::size_t slot = 0; slot < leaf->pages.size(); ++slot) {
    const PageId id = leaf->pages[slot];
    if (id == kInvalidPage) continue;
    PageAllocator& alloc =
        cfg_.kinds[slot] == HeadKind::kDense ? dense_ : stream_;
    if (alloc.ref_count(id) == 1) ++freed;
    alloc.release(id);
    --pages_held_;
  }
  Node* parent = leaf->parent;
  auto& siblings = parent->children;
  for (auto it = siblings.begin(); it != siblings.end(); ++it) {
    if (it->get() == leaf) {
      siblings.erase(it);
      break;
    }
  }
  --nodes_;
  ++stats_.evictions;
  return freed;
}

std::size_t PrefixCache::reclaim(std::size_t target_pages) {
  MutexLock lock(mu_);
  std::size_t freed = 0;
  // Pass 1: nodes the cache is the last holder of everywhere — evicting
  // them costs no live sequence anything.
  while (freed < target_pages) {
    Node* leaf = lru_leaf_locked(/*require_freeable=*/true,
                                 /*require_unshared=*/true);
    if (leaf == nullptr) break;
    freed += evict_leaf_locked(leaf);
  }
  // Pass 2: partially-shared nodes that still return >= 1 page. Nodes
  // whose pages are all shared with live sequences are never evicted
  // here — that frees nothing and only destroys future hits.
  while (freed < target_pages) {
    Node* leaf = lru_leaf_locked(/*require_freeable=*/true,
                                 /*require_unshared=*/false);
    if (leaf == nullptr) break;
    freed += evict_leaf_locked(leaf);
  }
  return freed;
}

std::size_t PrefixCache::match_tokens(std::span<const std::int32_t> prompt,
                                      std::size_t max_tokens) const {
  MutexLock lock(mu_);
  const Match m = match_locked(prompt, max_tokens);
  return best_depth_locked(m);
}

void PrefixCache::clear() {
  MutexLock lock(mu_);
  while (true) {
    Node* leaf = lru_leaf_locked(/*require_freeable=*/false,
                                 /*require_unshared=*/false);
    if (leaf == nullptr) break;
    evict_leaf_locked(leaf);
  }
}

std::size_t PrefixCache::pages_held() const {
  MutexLock lock(mu_);
  return pages_held_;
}

PrefixCacheStats PrefixCache::stats() const {
  MutexLock lock(mu_);
  PrefixCacheStats s = stats_;
  s.nodes = nodes_;
  s.pages_held = pages_held_;
  return s;
}

}  // namespace lserve::kv
