#include "kv/kstats.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "numeric/quant.hpp"

namespace lserve::kv {

KStats::KStats(std::size_t logical_pages, std::size_t head_dim)
    : logical_pages_(logical_pages),
      head_dim_(head_dim),
      kmin_(logical_pages * head_dim, 0.0f),
      kmax_(logical_pages * head_dim, 0.0f),
      init_(logical_pages, 0) {}

void KStats::update(std::size_t slot, std::size_t logical_page_size,
                    const float* key) noexcept {
  const std::size_t j = slot / logical_page_size;
  assert(j < logical_pages_);
  float* mn = kmin_.data() + j * head_dim_;
  float* mx = kmax_.data() + j * head_dim_;
  if (!init_[j]) {
    std::copy(key, key + head_dim_, mn);
    std::copy(key, key + head_dim_, mx);
    init_[j] = 1;
    return;
  }
  for (std::size_t i = 0; i < head_dim_; ++i) {
    mn[i] = std::min(mn[i], key[i]);
    mx[i] = std::max(mx[i], key[i]);
  }
}

void KStats::update_quantized(std::size_t slot, std::size_t logical_page_size,
                              const num::QuantizedRows& keys) noexcept {
  const std::size_t j = slot / logical_page_size;
  assert(j < logical_pages_);
  assert(keys.dim() == head_dim_);
  keys.fold_row_minmax(slot, kmin_.data() + j * head_dim_,
                       kmax_.data() + j * head_dim_, !init_[j]);
  init_[j] = 1;
}

void KStats::reset() noexcept {
  std::fill(init_.begin(), init_.end(), 0);
  std::fill(kmin_.begin(), kmin_.end(), 0.0f);
  std::fill(kmax_.begin(), kmax_.end(), 0.0f);
}

std::size_t KStats::serialized_bytes() const noexcept {
  return (kmin_.size() + kmax_.size()) * sizeof(float) + init_.size();
}

void KStats::serialize(std::uint8_t* out) const noexcept {
  if (!kmin_.empty()) {
    std::memcpy(out, kmin_.data(), kmin_.size() * sizeof(float));
    out += kmin_.size() * sizeof(float);
    std::memcpy(out, kmax_.data(), kmax_.size() * sizeof(float));
    out += kmax_.size() * sizeof(float);
  }
  if (!init_.empty()) std::memcpy(out, init_.data(), init_.size());
}

void KStats::deserialize(const std::uint8_t* in) noexcept {
  if (!kmin_.empty()) {
    std::memcpy(kmin_.data(), in, kmin_.size() * sizeof(float));
    in += kmin_.size() * sizeof(float);
    std::memcpy(kmax_.data(), in, kmax_.size() * sizeof(float));
    in += kmax_.size() * sizeof(float);
  }
  if (!init_.empty()) std::memcpy(init_.data(), in, init_.size());
}

float logical_page_score(const float* q, const float* kmax, const float* kmin,
                         std::size_t head_dim) noexcept {
  float s = 0.0f;
  for (std::size_t i = 0; i < head_dim; ++i) {
    const float a = q[i] * kmax[i];
    const float b = q[i] * kmin[i];
    s += a > b ? a : b;
  }
  return s;
}

}  // namespace lserve::kv
