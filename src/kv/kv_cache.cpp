#include "kv/kv_cache.hpp"

#include <cassert>

namespace lserve::kv {

void HeadCache::append(PageAllocator& alloc, const float* key,
                       const float* value) {
  const std::size_t page_size = alloc.config().page_size;
  if (tokens_ % page_size == 0) {
    pages_.push_back(alloc.allocate());
  }
  const PageWritePin pin = alloc.pin_mut(pages_.back());
  const std::size_t slot = pin.page().append(key, value);
  assert(slot == tokens_ % page_size);
  (void)slot;
  ++tokens_;
}

void HeadCache::append_roundtrip(PageAllocator& alloc, float* key,
                                 float* value) {
  const std::size_t page_size = alloc.config().page_size;
  if (tokens_ % page_size == 0) {
    pages_.push_back(alloc.allocate());
  }
  const PageWritePin pin = alloc.pin_mut(pages_.back());
  const std::size_t slot = pin.page().append_roundtrip(key, value);
  assert(slot == tokens_ % page_size);
  (void)slot;
  ++tokens_;
}

void HeadCache::attach(std::vector<PageId> pages, std::size_t tokens) noexcept {
  assert(pages_.empty() && tokens_ == 0);
  pages_ = std::move(pages);
  tokens_ = tokens;
}

void HeadCache::load_key(const PageAllocator& alloc, std::size_t t,
                         float* out) const {
  assert(t < tokens_);
  const std::size_t page_size = alloc.config().page_size;
  alloc.pin(pages_[t / page_size]).page().load_key(t % page_size, out);
}

void HeadCache::load_value(const PageAllocator& alloc, std::size_t t,
                           float* out) const {
  assert(t < tokens_);
  const std::size_t page_size = alloc.config().page_size;
  alloc.pin(pages_[t / page_size]).page().load_value(t % page_size, out);
}

void HeadCache::release(PageAllocator& alloc) noexcept {
  for (PageId id : pages_) alloc.release(id);
  pages_.clear();
  tokens_ = 0;
}

}  // namespace lserve::kv
