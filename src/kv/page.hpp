// Physical KV pages.
//
// A Page stores the keys and values of up to NP consecutive tokens of one
// (layer, kv-head) in quantized form, with per-token scales/zeros inline and
// the per-logical-page K_stats block trailing the features — the layout of
// LServe's dense-head pages (Fig 5). Streaming-head pages are the same type
// with stats tracking disabled.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kv/kstats.hpp"
#include "numeric/quant.hpp"

namespace lserve::kv {

/// Identifies a physical page inside a PageAllocator pool.
using PageId = std::uint32_t;
inline constexpr PageId kInvalidPage = static_cast<PageId>(-1);

/// Geometry and precision of every page in a pool.
struct PageConfig {
  std::size_t page_size = 64;          ///< NP: tokens per physical page.
  std::size_t logical_page_size = 16;  ///< NL: tokens per logical page.
  std::size_t head_dim = 64;           ///< D.
  num::KvDtype dtype = num::KvDtype::kFp16;
  bool track_kstats = true;            ///< dense-head pages carry K_stats.

  std::size_t logical_pages() const noexcept {
    return page_size / logical_page_size;
  }
  bool valid() const noexcept {
    return page_size > 0 && logical_page_size > 0 && head_dim > 0 &&
           page_size % logical_page_size == 0;
  }
};

/// One physical KV page. Storage is lazily initialized by the allocator and
/// recycled across sequences via reset().
class Page {
 public:
  Page() = default;

  /// Allocates storage for `cfg`. Called once per pool slot.
  void init(const PageConfig& cfg);

  /// Clears the fill count and stats; storage is retained for reuse.
  void reset() noexcept;

  /// Appends one token's key/value rows. Returns the in-page slot.
  /// Precondition: !full().
  std::size_t append(const float* key, const float* value) noexcept;

  /// Appends one token's rows and loads the *stored* representation back
  /// into `key`/`value` — after the call they hold exactly what a later
  /// load_key/load_value returns (the dequantized codes for int4/int8, the
  /// unchanged floats for fp16). The prefill write-back path uses this so
  /// attention over the chunk sees the same bits every future reader sees,
  /// which is what makes chunked prefill schedule-invariant under
  /// quantized KV. Returns the in-page slot.
  std::size_t append_roundtrip(float* key, float* value) noexcept;

  /// Copy-on-write helper: makes this page hold the first `n` tokens of
  /// `src`, copying quantized payload + params verbatim (bit-identical, no
  /// requantization) and rebuilding K_stats over the copied slots.
  /// Precondition: this page is empty and has the same config as `src`.
  void copy_prefix_from(const Page& src, std::size_t n) noexcept;

  /// Dequantizes the key / value at `slot` into `out` (head_dim floats).
  void load_key(std::size_t slot, float* out) const noexcept;
  void load_value(std::size_t slot, float* out) const noexcept;

  std::size_t size() const noexcept { return count_; }
  bool full() const noexcept { return count_ == cfg_.page_size; }
  bool empty() const noexcept { return count_ == 0; }
  /// True once init() has allocated storage (pool slots start lazily).
  bool initialized() const noexcept { return initialized_; }
  const PageConfig& config() const noexcept { return cfg_; }
  const KStats& kstats() const noexcept { return stats_; }

  /// Bytes this page occupies on a real device (payload + scales/zeros +
  /// stats), used by the memory accounting in EngineStats.
  double device_bytes() const noexcept;

  /// Bytes serialize() writes: fill count + quantized payload + per-row
  /// params + K_stats. Fixed for a given config — the cold-store slot size.
  std::size_t serialized_bytes() const noexcept;
  /// Slot footprint for any page built with `cfg` (no instance needed).
  static std::size_t serialized_bytes_for(const PageConfig& cfg);
  /// Writes the page verbatim so deserialize() restores it bit-identically
  /// — quantized codes, per-row quant params, and K_stats all survive a
  /// demote/promote round trip unchanged. Precondition: initialized().
  void serialize(std::uint8_t* out) const noexcept;
  /// Restores a page previously serialize()d under the same config.
  /// Precondition: initialized() with that config.
  void deserialize(const std::uint8_t* in) noexcept;
  /// Releases heap storage on cold demotion: initialized() turns false and
  /// the slot re-inits (or deserializes) on its next use, so a stale
  /// reference held across the demotion faults loudly instead of reading
  /// silently wrong bytes.
  void drop_storage() noexcept;

 private:
  PageConfig cfg_;
  bool initialized_ = false;
  std::size_t count_ = 0;
  num::QuantizedRows keys_;
  num::QuantizedRows values_;
  KStats stats_;
};

}  // namespace lserve::kv
