// Core numeric kernels shared by the attention implementations.
//
// The online-softmax accumulator is the load-bearing abstraction: every
// attention kernel in src/attn processes the KV history block-by-block and
// folds each block's partial scores into an OnlineSoftmax state, exactly the
// way FlashAttention/FlashDecoding-style GPU kernels do. Keeping the
// accumulator here means dense, block-sparse, streaming and quantized paths
// all share one numerically-stable reduction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "numeric/tensor.hpp"

namespace lserve::num {

/// Dot product of two length-n float spans.
float dot(const float* a, const float* b, std::size_t n) noexcept;

/// y += alpha * x (length n).
void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept;

/// y *= alpha (length n).
void scale(float alpha, float* y, std::size_t n) noexcept;

/// Euclidean norm.
float l2_norm(const float* a, std::size_t n) noexcept;

/// Cosine similarity; returns 0 when either vector is ~zero.
float cosine_similarity(const float* a, const float* b, std::size_t n) noexcept;

/// In-place numerically-stable softmax over a row.
void softmax_inplace(float* row, std::size_t n) noexcept;

/// C = A * B^T. A is m x k, B is n x k, C is m x n (row-major views).
/// Blocked over k for cache friendliness; this is the reference GEMM used by
/// projections in the model substrate.
void matmul_abt(ConstMatView a, ConstMatView b, MatView c) noexcept;

/// C = A * B. A is m x k, B is k x n, C is m x n.
void matmul(ConstMatView a, ConstMatView b, MatView c) noexcept;

/// Indices of the k largest values in `scores` (ties broken by lower index),
/// returned in ascending index order (page tables must stay sorted so the
/// decode kernel walks memory forward).
std::vector<std::size_t> top_k_indices(std::span<const float> scores,
                                       std::size_t k);

/// Streaming softmax-weighted accumulation state for one query row.
///
/// Maintains the running maximum m, normalizer l and un-normalized output
/// acc so KV blocks can be folded in any order along the sequential loop:
///
///   for each block b:   fold(scores_b, values_b)
///   finish():           out = acc / l
class OnlineSoftmax {
 public:
  explicit OnlineSoftmax(std::size_t dim);

  /// Folds `count` (score, value-row) pairs into the state.
  /// `values` holds `count` rows of `dim` floats with stride `stride`.
  void fold(const float* scores, const float* values, std::size_t count,
            std::size_t stride) noexcept;

  /// Folds a single (score, value-row) pair.
  void fold_one(float score, const float* value) noexcept;

  /// Writes the normalized output into `out` (length dim). If nothing was
  /// folded the output is all zeros.
  void finish(float* out) const noexcept;

  /// Running log-sum-exp of all folded scores (=-inf if none); used by
  /// accuracy metrics to compare attention mass across policies.
  float log_sum_exp() const noexcept;

  std::size_t dim() const noexcept { return acc_.size(); }
  void reset() noexcept;

 private:
  float max_ = 0.0f;
  float norm_ = 0.0f;   // sum of exp(score - max_)
  bool started_ = false;
  std::vector<float> acc_;
};

}  // namespace lserve::num
