// Deterministic random number generation for synthetic weights and workloads.
//
// All randomness in the library flows through Rng so that every experiment is
// exactly reproducible from a seed. The generator is splitmix64-seeded
// xoshiro256**, which is fast, has a 256-bit state, and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace lserve::num {

/// Counter-based seed derivation: maps (seed, stream) pairs to independent
/// generator states so that e.g. each layer / head / sequence can draw from
/// its own stream without correlation.
std::uint64_t split_seed(std::uint64_t seed, std::uint64_t stream) noexcept;

/// xoshiro256** pseudo-random generator with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_double() noexcept;

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  float gaussian() noexcept;

  /// Normal with the given mean / stddev.
  float gaussian(float mean, float stddev) noexcept;

  /// Fills `out` with iid N(0, stddev^2).
  void fill_gaussian(std::vector<float>& out, float stddev) noexcept;

  /// Fills `out` with iid U[lo, hi).
  void fill_uniform(std::vector<float>& out, float lo, float hi) noexcept;

  /// Random unit vector of dimension `dim`.
  std::vector<float> unit_vector(std::size_t dim);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_gauss_ = false;
  float cached_gauss_ = 0.0f;
};

}  // namespace lserve::num
