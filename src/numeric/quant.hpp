// Per-token asymmetric KV-cache quantization (QServe-style KV4/KV8).
//
// Each token's D-dimensional key (or value) row is quantized independently:
//   q[i] = clamp(round(x[i] / scale) + zero_point, 0, qmax)
// with the (scale, zero_point) pair stored next to the token features inside
// the KV page, exactly as LServe/QServe lay pages out (Fig 5: "Scales &
// Zeros" trail the token features). INT4 codes are packed two per byte.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lserve::num {

/// KV storage precision.
enum class KvDtype : std::uint8_t {
  kFp16 = 0,  // modelled as fp32 on CPU; 2 bytes/elt in the cost model
  kInt8 = 1,
  kInt4 = 2,
};

/// Bytes of payload per element for a dtype (cost-model view; INT4 = 0.5).
double bytes_per_element(KvDtype dtype) noexcept;

/// Human-readable dtype name ("fp16" / "int8" / "int4").
const char* dtype_name(KvDtype dtype) noexcept;

/// Quantization parameters for one token row.
struct QuantParams {
  float scale = 1.0f;
  float zero_point = 0.0f;  // stored in code space: q = x/scale + zero_point
};

/// Computes asymmetric per-row parameters for `bits`-bit quantization.
QuantParams compute_quant_params(const float* row, std::size_t n,
                                 int bits) noexcept;

/// Quantizes a row to 8-bit codes using `p`.
void quantize_row_int8(const float* row, std::size_t n, QuantParams p,
                       std::uint8_t* out) noexcept;

/// Dequantizes 8-bit codes back to float.
void dequantize_row_int8(const std::uint8_t* codes, std::size_t n,
                         QuantParams p, float* out) noexcept;

/// Quantizes a row to packed 4-bit codes (two per byte, low nibble first).
/// `out` must hold (n+1)/2 bytes.
void quantize_row_int4(const float* row, std::size_t n, QuantParams p,
                       std::uint8_t* out) noexcept;

/// Dequantizes packed 4-bit codes back to float.
void dequantize_row_int4(const std::uint8_t* codes, std::size_t n,
                         QuantParams p, float* out) noexcept;

/// Round-trip worst-case absolute error bound for a row under `bits`-bit
/// asymmetric quantization: half a quantization step.
float quant_error_bound(const float* row, std::size_t n, int bits) noexcept;

/// A contiguous buffer of `rows` quantized token rows with per-row params.
/// This is the in-page storage format used by kv::Page.
class QuantizedRows {
 public:
  QuantizedRows() = default;
  QuantizedRows(std::size_t rows, std::size_t dim, KvDtype dtype);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t dim() const noexcept { return dim_; }
  KvDtype dtype() const noexcept { return dtype_; }

  /// Quantizes (or copies, for kFp16) one row into slot r.
  void store_row(std::size_t r, const float* row) noexcept;

  /// Dequantizes slot r into `out` (length dim).
  void load_row(std::size_t r, float* out) const noexcept;

  /// Channel-wise min/max fold of row r straight from the stored codes and
  /// per-row (scale, zero_point) — no dequantized copy of the row is
  /// materialized. Each channel is decoded with the same expression
  /// load_row uses, so the folded values are bit-identical to
  /// dequantize-then-fold (pinned by PageTest.QuantDerivedKStats).
  /// `first` seeds mn/mx from the row instead of folding into them.
  void fold_row_minmax(std::size_t r, float* mn, float* mx,
                       bool first) const noexcept;

  /// Copies the first `n` rows of `src` (same geometry and dtype) verbatim
  /// — quantized codes and per-row params, no dequant/requant round trip —
  /// so the copy is bit-identical to the source. Prefix-cache COW path.
  void copy_rows_from(const QuantizedRows& src, std::size_t n) noexcept;

  /// Bytes serialize() writes: the raw payload (codes or fp) plus the
  /// per-row params. Fixed for a given geometry/dtype.
  std::size_t serialized_bytes() const noexcept;
  /// Writes payload + per-row params verbatim (no dequant/requant round
  /// trip), so deserialize() restores the buffer bit-identically. The
  /// cold-tier demote/promote path.
  void serialize(std::uint8_t* out) const noexcept;
  /// Restores a buffer of identical geometry/dtype from serialize() output.
  void deserialize(const std::uint8_t* in) noexcept;

  /// Direct fp32 access when dtype == kFp16 (hot-path shortcut).
  const float* fp_row(std::size_t r) const noexcept;

  QuantParams params(std::size_t r) const noexcept { return params_[r]; }

  /// Payload bytes this buffer would occupy on a real device.
  double device_bytes() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  KvDtype dtype_ = KvDtype::kFp16;
  std::size_t row_bytes_ = 0;           // packed bytes per row (int paths)
  std::vector<std::uint8_t> codes_;     // int8/int4 payload
  std::vector<float> fp_;               // fp16-modelled payload
  std::vector<QuantParams> params_;
};

}  // namespace lserve::num
