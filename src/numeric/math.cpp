#include "numeric/math.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace lserve::num {

float dot(const float* a, const float* b, std::size_t n) noexcept {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float alpha, float* y, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] *= alpha;
}

float l2_norm(const float* a, std::size_t n) noexcept {
  return std::sqrt(dot(a, a, n));
}

float cosine_similarity(const float* a, const float* b,
                        std::size_t n) noexcept {
  const float na = l2_norm(a, n);
  const float nb = l2_norm(b, n);
  if (na < 1e-12f || nb < 1e-12f) return 0.0f;
  return dot(a, b, n) / (na * nb);
}

void softmax_inplace(float* row, std::size_t n) noexcept {
  if (n == 0) return;
  const float m = *std::max_element(row, row + n);
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    row[i] = std::exp(row[i] - m);
    sum += row[i];
  }
  const float inv = 1.0f / sum;
  for (std::size_t i = 0; i < n; ++i) row[i] *= inv;
}

void matmul_abt(ConstMatView a, ConstMatView b, MatView c) noexcept {
  assert(a.cols == b.cols && c.rows == a.rows && c.cols == b.rows);
  for (std::size_t i = 0; i < a.rows; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t j = 0; j < b.rows; ++j) {
      ci[j] = dot(ai, b.row(j), a.cols);
    }
  }
}

void matmul(ConstMatView a, ConstMatView b, MatView c) noexcept {
  assert(a.cols == b.rows && c.rows == a.rows && c.cols == b.cols);
  for (std::size_t i = 0; i < c.rows; ++i) {
    float* ci = c.row(i);
    std::fill(ci, ci + c.cols, 0.0f);
  }
  // ikj loop order: streams over B rows, accumulates into C rows.
  for (std::size_t i = 0; i < a.rows; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t k = 0; k < a.cols; ++k) {
      axpy(ai[k], b.row(k), ci, b.cols);
    }
  }
}

std::vector<std::size_t> top_k_indices(std::span<const float> scores,
                                       std::size_t k) {
  const std::size_t n = scores.size();
  k = std::min(k, n);
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::size_t l, std::size_t r) {
                      if (scores[l] != scores[r]) return scores[l] > scores[r];
                      return l < r;
                    });
  idx.resize(k);
  std::sort(idx.begin(), idx.end());
  return idx;
}

OnlineSoftmax::OnlineSoftmax(std::size_t dim) : acc_(dim, 0.0f) {}

void OnlineSoftmax::fold(const float* scores, const float* values,
                         std::size_t count, std::size_t stride) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    fold_one(scores[i], values + i * stride);
  }
}

void OnlineSoftmax::fold_one(float score, const float* value) noexcept {
  if (!started_) {
    started_ = true;
    max_ = score;
    norm_ = 1.0f;
    for (std::size_t d = 0; d < acc_.size(); ++d) acc_[d] = value[d];
    return;
  }
  if (score <= max_) {
    const float w = std::exp(score - max_);
    norm_ += w;
    axpy(w, value, acc_.data(), acc_.size());
  } else {
    // New running max: rescale previous accumulation.
    const float c = std::exp(max_ - score);
    norm_ = norm_ * c + 1.0f;
    for (std::size_t d = 0; d < acc_.size(); ++d) {
      acc_[d] = acc_[d] * c + value[d];
    }
    max_ = score;
  }
}

void OnlineSoftmax::finish(float* out) const noexcept {
  if (!started_ || norm_ <= 0.0f) {
    std::fill(out, out + acc_.size(), 0.0f);
    return;
  }
  const float inv = 1.0f / norm_;
  for (std::size_t d = 0; d < acc_.size(); ++d) out[d] = acc_[d] * inv;
}

float OnlineSoftmax::log_sum_exp() const noexcept {
  if (!started_) return -std::numeric_limits<float>::infinity();
  return max_ + std::log(norm_);
}

void OnlineSoftmax::reset() noexcept {
  started_ = false;
  max_ = 0.0f;
  norm_ = 0.0f;
  std::fill(acc_.begin(), acc_.end(), 0.0f);
}

}  // namespace lserve::num
