#include "numeric/tensor.hpp"

// Tensor is header-only; this translation unit exists so the target has a
// stable object for the module and to catch ODR issues early.
namespace lserve::num {
static_assert(sizeof(MatView) == sizeof(ConstMatView),
              "views must stay layout-compatible");
}  // namespace lserve::num
