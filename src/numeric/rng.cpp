#include "numeric/rng.hpp"

#include <cassert>
#include <cmath>

namespace lserve::num {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t split_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  std::uint64_t s = seed ^ (0xD1B54A32D192ED03ull * (stream + 1));
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) noexcept {
  return lo + static_cast<float>(next_double()) * (hi - lo);
}

std::uint64_t Rng::next_below(std::uint64_t n) noexcept {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ull - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

float Rng::gaussian() noexcept {
  if (has_cached_gauss_) {
    has_cached_gauss_ = false;
    return cached_gauss_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  cached_gauss_ = static_cast<float>(mag * std::sin(two_pi * u2));
  has_cached_gauss_ = true;
  return static_cast<float>(mag * std::cos(two_pi * u2));
}

float Rng::gaussian(float mean, float stddev) noexcept {
  return mean + stddev * gaussian();
}

void Rng::fill_gaussian(std::vector<float>& out, float stddev) noexcept {
  for (auto& v : out) v = gaussian(0.0f, stddev);
}

void Rng::fill_uniform(std::vector<float>& out, float lo, float hi) noexcept {
  for (auto& v : out) v = uniform(lo, hi);
}

std::vector<float> Rng::unit_vector(std::size_t dim) {
  std::vector<float> v(dim);
  double norm_sq = 0.0;
  do {
    fill_gaussian(v, 1.0f);
    norm_sq = 0.0;
    for (float x : v) norm_sq += static_cast<double>(x) * x;
  } while (norm_sq < 1e-12);
  const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
  for (auto& x : v) x *= inv;
  return v;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = next_below(i);
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

}  // namespace lserve::num
