#include "numeric/rope.hpp"

#include <cassert>
#include <cmath>

namespace lserve::num {

RopeTable::RopeTable(std::size_t head_dim, float base) {
  assert(head_dim % 2 == 0);
  const std::size_t half = head_dim / 2;
  inv_freq_.resize(half);
  for (std::size_t i = 0; i < half; ++i) {
    inv_freq_[i] = std::pow(base, -2.0f * static_cast<float>(i) /
                                      static_cast<float>(head_dim));
  }
}

void RopeTable::apply(float* row, std::size_t pos) const noexcept {
  const std::size_t half = inv_freq_.size();
  const float p = static_cast<float>(pos);
  for (std::size_t i = 0; i < half; ++i) {
    const float angle = p * inv_freq_[i];
    const float c = std::cos(angle);
    const float s = std::sin(angle);
    const float x = row[2 * i];
    const float y = row[2 * i + 1];
    row[2 * i] = x * c - y * s;
    row[2 * i + 1] = x * s + y * c;
  }
}

void RopeTable::apply_many(float* rows, std::size_t count, std::size_t stride,
                           std::size_t pos0) const noexcept {
  for (std::size_t t = 0; t < count; ++t) {
    apply(rows + t * stride, pos0 + t);
  }
}

}  // namespace lserve::num
