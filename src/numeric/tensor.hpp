// Minimal row-major tensor types used throughout the library.
//
// The serving stack only needs 2-D (tokens x dim) and 3-D
// (tokens x heads x dim) views over contiguous float storage, so Tensor is a
// thin owning wrapper and MatView / ConstMatView are non-owning strided
// views. This deliberately mirrors how GPU kernels see memory: flat buffers
// plus shape metadata, no iterator machinery in the hot path.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace lserve::num {

/// Non-owning mutable view of a row-major matrix with a row stride.
///
/// `stride` is the distance in floats between the starts of consecutive
/// rows; `cols <= stride` so a view can select a column slice of a wider
/// buffer (e.g. one head out of an interleaved [token][head*dim] layout).
struct MatView {
  float* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t stride = 0;

  float* row(std::size_t r) noexcept {
    assert(r < rows);
    return data + r * stride;
  }
  const float* row(std::size_t r) const noexcept {
    assert(r < rows);
    return data + r * stride;
  }
  float& at(std::size_t r, std::size_t c) noexcept {
    assert(c < cols);
    return row(r)[c];
  }
  float at(std::size_t r, std::size_t c) const noexcept {
    assert(c < cols);
    return row(r)[c];
  }
  /// Sub-view of rows [r0, r0+n).
  MatView rows_slice(std::size_t r0, std::size_t n) const noexcept {
    assert(r0 + n <= rows);
    return {data + r0 * stride, n, cols, stride};
  }
  /// Sub-view of columns [c0, c0+n) (same rows).
  MatView cols_slice(std::size_t c0, std::size_t n) const noexcept {
    assert(c0 + n <= cols);
    return {data + c0, rows, n, stride};
  }
};

/// Non-owning read-only matrix view; implicitly constructible from MatView.
struct ConstMatView {
  const float* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t stride = 0;

  ConstMatView() = default;
  ConstMatView(const float* d, std::size_t r, std::size_t c,
               std::size_t s) noexcept
      : data(d), rows(r), cols(c), stride(s) {}
  // NOLINTNEXTLINE(google-explicit-constructor): implicit like T* -> const T*
  ConstMatView(const MatView& m) noexcept
      : data(m.data), rows(m.rows), cols(m.cols), stride(m.stride) {}

  const float* row(std::size_t r) const noexcept {
    assert(r < rows);
    return data + r * stride;
  }
  float at(std::size_t r, std::size_t c) const noexcept {
    assert(c < cols);
    return row(r)[c];
  }
  ConstMatView rows_slice(std::size_t r0, std::size_t n) const noexcept {
    assert(r0 + n <= rows);
    return {data + r0 * stride, n, cols, stride};
  }
  ConstMatView cols_slice(std::size_t c0, std::size_t n) const noexcept {
    assert(c0 + n <= cols);
    return {data + c0, rows, n, stride};
  }
};

/// Owning contiguous row-major 2-D tensor of floats.
class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }

  float* row(std::size_t r) noexcept { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  float& at(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  MatView view() noexcept { return {data_.data(), rows_, cols_, cols_}; }
  ConstMatView view() const noexcept {
    return {data_.data(), rows_, cols_, cols_};
  }
  std::span<float> flat() noexcept { return data_; }
  std::span<const float> flat() const noexcept { return data_; }

  void fill(float v) noexcept {
    for (auto& x : data_) x = v;
  }

  /// Resize, discarding contents (re-zeroed).
  void reshape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace lserve::num
