#include "numeric/quant.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace lserve::num {

double bytes_per_element(KvDtype dtype) noexcept {
  switch (dtype) {
    case KvDtype::kFp16:
      return 2.0;
    case KvDtype::kInt8:
      return 1.0;
    case KvDtype::kInt4:
      return 0.5;
  }
  return 2.0;
}

const char* dtype_name(KvDtype dtype) noexcept {
  switch (dtype) {
    case KvDtype::kFp16:
      return "fp16";
    case KvDtype::kInt8:
      return "int8";
    case KvDtype::kInt4:
      return "int4";
  }
  return "?";
}

QuantParams compute_quant_params(const float* row, std::size_t n,
                                 int bits) noexcept {
  assert(bits == 4 || bits == 8);
  float lo = row[0], hi = row[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, row[i]);
    hi = std::max(hi, row[i]);
  }
  const float qmax = static_cast<float>((1 << bits) - 1);
  float scale = (hi - lo) / qmax;
  if (scale < 1e-10f) scale = 1e-10f;  // constant rows still round-trip
  QuantParams p;
  p.scale = scale;
  p.zero_point = -lo / scale;
  return p;
}

namespace {

inline std::uint32_t encode(float x, QuantParams p, std::uint32_t qmax) {
  const float q = std::nearbyint(x / p.scale + p.zero_point);
  const float clamped = std::min(std::max(q, 0.0f), static_cast<float>(qmax));
  return static_cast<std::uint32_t>(clamped);
}

inline float decode(std::uint32_t code, QuantParams p) {
  return (static_cast<float>(code) - p.zero_point) * p.scale;
}

}  // namespace

void quantize_row_int8(const float* row, std::size_t n, QuantParams p,
                       std::uint8_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(encode(row[i], p, 255));
  }
}

void dequantize_row_int8(const std::uint8_t* codes, std::size_t n,
                         QuantParams p, float* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = decode(codes[i], p);
}

void quantize_row_int4(const float* row, std::size_t n, QuantParams p,
                       std::uint8_t* out) noexcept {
  const std::size_t pairs = n / 2;
  for (std::size_t i = 0; i < pairs; ++i) {
    const std::uint32_t lo = encode(row[2 * i], p, 15);
    const std::uint32_t hi = encode(row[2 * i + 1], p, 15);
    out[i] = static_cast<std::uint8_t>(lo | (hi << 4));
  }
  if (n & 1) {
    out[pairs] = static_cast<std::uint8_t>(encode(row[n - 1], p, 15));
  }
}

void dequantize_row_int4(const std::uint8_t* codes, std::size_t n,
                         QuantParams p, float* out) noexcept {
  const std::size_t pairs = n / 2;
  for (std::size_t i = 0; i < pairs; ++i) {
    out[2 * i] = decode(codes[i] & 0x0F, p);
    out[2 * i + 1] = decode(codes[i] >> 4, p);
  }
  if (n & 1) out[n - 1] = decode(codes[pairs] & 0x0F, p);
}

float quant_error_bound(const float* row, std::size_t n, int bits) noexcept {
  const QuantParams p = compute_quant_params(row, n, bits);
  return 0.5f * p.scale;
}

QuantizedRows::QuantizedRows(std::size_t rows, std::size_t dim, KvDtype dtype)
    : rows_(rows), dim_(dim), dtype_(dtype) {
  switch (dtype_) {
    case KvDtype::kFp16:
      fp_.assign(rows_ * dim_, 0.0f);
      break;
    case KvDtype::kInt8:
      row_bytes_ = dim_;
      codes_.assign(rows_ * row_bytes_, 0);
      params_.assign(rows_, {});
      break;
    case KvDtype::kInt4:
      row_bytes_ = (dim_ + 1) / 2;
      codes_.assign(rows_ * row_bytes_, 0);
      params_.assign(rows_, {});
      break;
  }
  if (dtype_ == KvDtype::kFp16) params_.assign(rows_, {});
}

void QuantizedRows::store_row(std::size_t r, const float* row) noexcept {
  assert(r < rows_);
  switch (dtype_) {
    case KvDtype::kFp16:
      std::memcpy(fp_.data() + r * dim_, row, dim_ * sizeof(float));
      break;
    case KvDtype::kInt8: {
      const QuantParams p = compute_quant_params(row, dim_, 8);
      params_[r] = p;
      quantize_row_int8(row, dim_, p, codes_.data() + r * row_bytes_);
      break;
    }
    case KvDtype::kInt4: {
      const QuantParams p = compute_quant_params(row, dim_, 4);
      params_[r] = p;
      quantize_row_int4(row, dim_, p, codes_.data() + r * row_bytes_);
      break;
    }
  }
}

void QuantizedRows::load_row(std::size_t r, float* out) const noexcept {
  assert(r < rows_);
  switch (dtype_) {
    case KvDtype::kFp16:
      std::memcpy(out, fp_.data() + r * dim_, dim_ * sizeof(float));
      break;
    case KvDtype::kInt8:
      dequantize_row_int8(codes_.data() + r * row_bytes_, dim_, params_[r],
                          out);
      break;
    case KvDtype::kInt4:
      dequantize_row_int4(codes_.data() + r * row_bytes_, dim_, params_[r],
                          out);
      break;
  }
}

void QuantizedRows::fold_row_minmax(std::size_t r, float* mn, float* mx,
                                    bool first) const noexcept {
  assert(r < rows_);
  const auto fold = [&](std::size_t i, float x) {
    if (first) {
      mn[i] = x;
      mx[i] = x;
    } else {
      mn[i] = std::min(mn[i], x);
      mx[i] = std::max(mx[i], x);
    }
  };
  switch (dtype_) {
    case KvDtype::kFp16: {
      const float* row = fp_.data() + r * dim_;
      for (std::size_t i = 0; i < dim_; ++i) fold(i, row[i]);
      break;
    }
    case KvDtype::kInt8: {
      const std::uint8_t* codes = codes_.data() + r * row_bytes_;
      const QuantParams p = params_[r];
      for (std::size_t i = 0; i < dim_; ++i) fold(i, decode(codes[i], p));
      break;
    }
    case KvDtype::kInt4: {
      const std::uint8_t* codes = codes_.data() + r * row_bytes_;
      const QuantParams p = params_[r];
      const std::size_t pairs = dim_ / 2;
      for (std::size_t i = 0; i < pairs; ++i) {
        fold(2 * i, decode(codes[i] & 0x0F, p));
        fold(2 * i + 1, decode(codes[i] >> 4, p));
      }
      if (dim_ & 1) fold(dim_ - 1, decode(codes[pairs] & 0x0F, p));
      break;
    }
  }
}

void QuantizedRows::copy_rows_from(const QuantizedRows& src,
                                   std::size_t n) noexcept {
  assert(n <= rows_ && n <= src.rows_);
  assert(dim_ == src.dim_ && dtype_ == src.dtype_);
  if (n == 0) return;
  switch (dtype_) {
    case KvDtype::kFp16:
      std::memcpy(fp_.data(), src.fp_.data(), n * dim_ * sizeof(float));
      break;
    case KvDtype::kInt8:
    case KvDtype::kInt4:
      std::memcpy(codes_.data(), src.codes_.data(), n * row_bytes_);
      break;
  }
  std::memcpy(params_.data(), src.params_.data(), n * sizeof(QuantParams));
}

std::size_t QuantizedRows::serialized_bytes() const noexcept {
  return codes_.size() + fp_.size() * sizeof(float) +
         params_.size() * sizeof(QuantParams);
}

void QuantizedRows::serialize(std::uint8_t* out) const noexcept {
  if (!codes_.empty()) {
    std::memcpy(out, codes_.data(), codes_.size());
    out += codes_.size();
  }
  if (!fp_.empty()) {
    std::memcpy(out, fp_.data(), fp_.size() * sizeof(float));
    out += fp_.size() * sizeof(float);
  }
  if (!params_.empty()) {
    std::memcpy(out, params_.data(), params_.size() * sizeof(QuantParams));
  }
}

void QuantizedRows::deserialize(const std::uint8_t* in) noexcept {
  if (!codes_.empty()) {
    std::memcpy(codes_.data(), in, codes_.size());
    in += codes_.size();
  }
  if (!fp_.empty()) {
    std::memcpy(fp_.data(), in, fp_.size() * sizeof(float));
    in += fp_.size() * sizeof(float);
  }
  if (!params_.empty()) {
    std::memcpy(params_.data(), in, params_.size() * sizeof(QuantParams));
  }
}

const float* QuantizedRows::fp_row(std::size_t r) const noexcept {
  assert(dtype_ == KvDtype::kFp16 && r < rows_);
  return fp_.data() + r * dim_;
}

double QuantizedRows::device_bytes() const noexcept {
  // Payload plus per-row scale/zero (2 fp16 values) for quantized dtypes.
  const double payload =
      static_cast<double>(rows_) * dim_ * bytes_per_element(dtype_);
  const double meta = (dtype_ == KvDtype::kFp16)
                          ? 0.0
                          : static_cast<double>(rows_) * 4.0;
  return payload + meta;
}

}  // namespace lserve::num
