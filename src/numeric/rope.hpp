// Rotary position embeddings (RoPE), as used by the Llama family.
//
// Queries and keys are rotated in 2-D sub-planes with frequencies
// theta_i = base^(-2i/D). The model substrate applies RoPE before keys are
// written into the paged cache, matching real serving engines (keys are
// cached post-rotation so decode never re-rotates history).
#pragma once

#include <cstddef>
#include <vector>

namespace lserve::num {

/// Precomputed RoPE frequency table for a head dimension.
class RopeTable {
 public:
  /// `head_dim` must be even. `base` is the theta base (Llama uses 1e4;
  /// long-context variants raise it, e.g. Llama-3 Gradient uses ~1e8).
  RopeTable(std::size_t head_dim, float base = 10000.0f);

  std::size_t head_dim() const noexcept { return inv_freq_.size() * 2; }

  /// Rotates one head row in place for absolute position `pos`.
  void apply(float* row, std::size_t pos) const noexcept;

  /// Rotates `count` consecutive head rows starting at position `pos0`;
  /// rows are spaced `stride` floats apart.
  void apply_many(float* rows, std::size_t count, std::size_t stride,
                  std::size_t pos0) const noexcept;

 private:
  std::vector<float> inv_freq_;
};

}  // namespace lserve::num
