#include "attn/block_iterator.hpp"

#include <algorithm>
#include <cassert>

namespace lserve::attn {
namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

/// Diagonal key block of query tile qb: the k-block containing the last
/// token of the tile (clamped to the causal frontier).
std::size_t diag_block(std::size_t qb, std::size_t tile_q, std::size_t tile_k,
                       std::size_t n_tokens) noexcept {
  const std::size_t last_row = std::min((qb + 1) * tile_q, n_tokens) - 1;
  return last_row / tile_k;
}

}  // namespace

BlockMask::BlockMask(std::size_t q_blocks, std::size_t k_blocks, bool keep_all)
    : q_blocks_(q_blocks),
      k_blocks_(k_blocks),
      keep_(q_blocks * k_blocks, keep_all ? 1 : 0) {}

BlockMask BlockMask::causal(std::size_t n_tokens, std::size_t tile_q,
                            std::size_t tile_k) {
  BlockMask m(ceil_div(n_tokens, tile_q), ceil_div(n_tokens, tile_k));
  for (std::size_t qb = 0; qb < m.q_blocks_; ++qb) {
    const std::size_t diag = diag_block(qb, tile_q, tile_k, n_tokens);
    for (std::size_t kb = 0; kb <= diag; ++kb) m.set(qb, kb, true);
  }
  return m;
}

BlockMask BlockMask::streaming(std::size_t n_tokens, std::size_t tile_q,
                               std::size_t tile_k, std::size_t sink_blocks,
                               std::size_t local_blocks) {
  BlockMask m(ceil_div(n_tokens, tile_q), ceil_div(n_tokens, tile_k));
  for (std::size_t qb = 0; qb < m.q_blocks_; ++qb) {
    const std::size_t diag = diag_block(qb, tile_q, tile_k, n_tokens);
    for (std::size_t kb = 0; kb <= diag; ++kb) {
      const bool is_sink = kb < sink_blocks;
      const bool is_local = kb + local_blocks > diag;  // kb > diag-local
      if (is_sink || is_local) m.set(qb, kb, true);
    }
  }
  return m;
}

std::size_t BlockMask::kept_blocks() const noexcept {
  std::size_t n = 0;
  for (auto v : keep_) n += v;
  return n;
}

double BlockMask::sparsity_vs_causal(std::size_t n_tokens, std::size_t tile_q,
                                     std::size_t tile_k) const noexcept {
  std::size_t causal_total = 0;
  for (std::size_t qb = 0; qb < q_blocks_; ++qb) {
    causal_total += diag_block(qb, tile_q, tile_k, n_tokens) + 1;
  }
  if (causal_total == 0) return 0.0;
  const std::size_t kept = kept_blocks();
  return 1.0 - static_cast<double>(kept) / static_cast<double>(causal_total);
}

void BlockMask::finalize() {
  row_offset_.assign(q_blocks_ + 1, 0);
  row_data_.clear();
  row_data_.reserve(kept_blocks());
  for (std::size_t qb = 0; qb < q_blocks_; ++qb) {
    row_offset_[qb] = row_data_.size();
    for (std::size_t kb = 0; kb < k_blocks_; ++kb) {
      if (kept(qb, kb)) row_data_.push_back(static_cast<std::uint32_t>(kb));
    }
  }
  row_offset_[q_blocks_] = row_data_.size();
  finalized_ = true;
}

std::span<const std::uint32_t> BlockMask::row_blocks(
    std::size_t qb) const noexcept {
  assert(finalized_ && "call finalize() before iterating a BlockMask");
  assert(qb < q_blocks_);
  const std::size_t begin = row_offset_[qb];
  const std::size_t end = row_offset_[qb + 1];
  return {row_data_.data() + begin, end - begin};
}

}  // namespace lserve::attn
