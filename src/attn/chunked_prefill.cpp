#include "attn/chunked_prefill.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "numeric/math.hpp"

namespace lserve::attn {

void chunked_prefill_head(const kv::PageAllocator& alloc,
                          const kv::SelectedPageTable& history,
                          std::size_t history_tokens, num::ConstMatView q,
                          num::ConstMatView k, num::ConstMatView v,
                          const BlockMask& chunk_mask, PrefillTiling tiling,
                          float scale, num::MatView out) {
  assert(q.cols == k.cols && k.rows == v.rows && out.rows == q.rows);
  const std::size_t n = q.rows;
  const std::size_t d = q.cols;
  const std::size_t tq = tiling.tile_q;
  const std::size_t tk = tiling.tile_k;
  const std::size_t page_size = alloc.config().page_size;
  const std::size_t q_blocks = (n + tq - 1) / tq;
  assert(chunk_mask.q_blocks() == q_blocks);

  std::vector<num::OnlineSoftmax> acc;
  acc.reserve(tq);
  for (std::size_t i = 0; i < tq; ++i) acc.emplace_back(d);
  std::vector<float> key(d);
  std::vector<float> value(d);

  for (std::size_t qb = 0; qb < q_blocks; ++qb) {
    const std::size_t row0 = qb * tq;
    const std::size_t rows = std::min(tq, n - row0);
    for (std::size_t r = 0; r < rows; ++r) acc[r].reset();

    // History phase: every chunk row attends all listed cached tokens.
    // Scores are computed once per (row, token); the page loop is the
    // sequential KV walk of the decode kernel, shared across the tile.
    for (const kv::SelectedPage& entry : history) {
      const kv::Page& page = alloc.get(entry.page);
      const std::size_t begin =
          static_cast<std::size_t>(entry.block) * page_size;
      std::size_t count =
          history_tokens > begin ? history_tokens - begin : 0;
      count = std::min({count, page_size, page.size()});
      for (std::size_t s = 0; s < count; ++s) {
        page.load_key(s, key.data());
        page.load_value(s, value.data());
        for (std::size_t r = 0; r < rows; ++r) {
          acc[r].fold_one(scale * num::dot(q.row(row0 + r), key.data(), d),
                          value.data());
        }
      }
    }

    // In-chunk phase: block-sparse causal over the chunk's own keys.
    BlockIterator it(chunk_mask.row_blocks(qb));
    while (!it.done()) {
      const std::size_t kb = it.next();
      const std::size_t col0 = kb * tk;
      const std::size_t cols = std::min(tk, k.rows - col0);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t row = row0 + r;
        const std::size_t hi = std::min(col0 + cols, row + 1);
        for (std::size_t c = col0; c < hi; ++c) {
          acc[r].fold_one(scale * num::dot(q.row(row), k.row(c), d),
                          v.row(c));
        }
      }
    }

    for (std::size_t r = 0; r < rows; ++r) {
      acc[r].finish(out.row(row0 + r));
    }
  }
}

}  // namespace lserve::attn
