#include "attn/chunked_prefill.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "numeric/math.hpp"

namespace lserve::attn {

void chunked_prefill_head(const kv::PageAllocator& alloc,
                          const kv::SelectedPageTable& history,
                          std::size_t history_tokens, num::ConstMatView q,
                          num::ConstMatView k, num::ConstMatView v,
                          const BlockMask& chunk_mask, PrefillTiling tiling,
                          float scale, num::MatView out) {
  assert(q.cols == k.cols && k.rows == v.rows && out.rows == q.rows);
  const std::size_t n = q.rows;
  const std::size_t d = q.cols;
  const std::size_t tq = tiling.tile_q;
  const std::size_t tk = tiling.tile_k;
  const std::size_t page_size = alloc.config().page_size;
  const std::size_t q_blocks = (n + tq - 1) / tq;
  assert(chunk_mask.q_blocks() == q_blocks);

  std::vector<num::OnlineSoftmax> acc;
  acc.reserve(tq);
  for (std::size_t i = 0; i < tq; ++i) acc.emplace_back(d);
  std::vector<float> key(d);
  std::vector<float> value(d);

  for (std::size_t qb = 0; qb < q_blocks; ++qb) {
    const std::size_t row0 = qb * tq;
    const std::size_t rows = std::min(tq, n - row0);
    for (std::size_t r = 0; r < rows; ++r) acc[r].reset();

    // History phase: every chunk row attends all listed cached tokens.
    // Scores are computed once per (row, token); the page loop is the
    // sequential KV walk of the decode kernel, shared across the tile.
    for (const kv::SelectedPage& entry : history) {
      const kv::PagePin pin = alloc.pin(entry.page);
      const kv::Page& page = pin.page();
      const std::size_t begin =
          static_cast<std::size_t>(entry.block) * page_size;
      std::size_t count =
          history_tokens > begin ? history_tokens - begin : 0;
      count = std::min({count, page_size, page.size()});
      for (std::size_t s = 0; s < count; ++s) {
        page.load_key(s, key.data());
        page.load_value(s, value.data());
        for (std::size_t r = 0; r < rows; ++r) {
          acc[r].fold_one(scale * num::dot(q.row(row0 + r), key.data(), d),
                          value.data());
        }
      }
    }

    // In-chunk phase: block-sparse causal over the chunk's own keys.
    BlockIterator it(chunk_mask.row_blocks(qb));
    while (!it.done()) {
      const std::size_t kb = it.next();
      const std::size_t col0 = kb * tk;
      const std::size_t cols = std::min(tk, k.rows - col0);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t row = row0 + r;
        const std::size_t hi = std::min(col0 + cols, row + 1);
        for (std::size_t c = col0; c < hi; ++c) {
          acc[r].fold_one(scale * num::dot(q.row(row), k.row(c), d),
                          v.row(c));
        }
      }
    }

    for (std::size_t r = 0; r < rows; ++r) {
      acc[r].finish(out.row(row0 + r));
    }
  }
}

void chunked_prefill_streaming_head(
    const kv::PageAllocator& alloc, const kv::SelectedPageTable& history,
    std::size_t history_tokens, std::size_t total_tokens,
    num::ConstMatView q, num::ConstMatView k, num::ConstMatView v,
    StreamingBlocks streaming, PrefillTiling tiling, float scale,
    num::MatView out) {
  assert(q.cols == k.cols && k.rows == v.rows && out.rows == q.rows);
  assert(history_tokens + q.rows <= total_tokens);
  const std::size_t n = q.rows;
  const std::size_t d = q.cols;
  const std::size_t tq = tiling.tile_q;
  const std::size_t tk = tiling.tile_k;
  const std::size_t page_size = alloc.config().page_size;
  const std::size_t q_blocks = (n + tq - 1) / tq;

  // Diagonal k-tile of absolute row p: the tile holding the last token of
  // p's (absolute) q-tile, clamped to the causal frontier — the same
  // formula BlockMask::streaming() uses, evaluated against total_tokens so
  // every chunking of the sequence makes identical decisions.
  const auto diag_tile = [&](std::size_t p) {
    const std::size_t qb = p / tq;
    const std::size_t last_row = std::min((qb + 1) * tq, total_tokens) - 1;
    return last_row / tk;
  };
  const auto allowed = [&](std::size_t diag, std::size_t c) {
    const std::size_t kb = c / tk;
    return kb < streaming.sink_blocks || kb + streaming.local_blocks > diag;
  };

  std::vector<num::OnlineSoftmax> acc;
  acc.reserve(tq);
  for (std::size_t i = 0; i < tq; ++i) acc.emplace_back(d);
  std::vector<float> key(d);
  std::vector<float> value(d);
  std::vector<std::size_t> diag(tq);

  for (std::size_t qb = 0; qb < q_blocks; ++qb) {
    const std::size_t row0 = qb * tq;
    const std::size_t rows = std::min(tq, n - row0);
    for (std::size_t r = 0; r < rows; ++r) {
      acc[r].reset();
      diag[r] = diag_tile(history_tokens + row0 + r);
    }

    // History phase: cached tokens in ascending absolute order, each row
    // folding only the tokens its Λ band keeps (history precedes every
    // chunk row, so causality is implied).
    for (const kv::SelectedPage& entry : history) {
      const std::size_t begin =
          static_cast<std::size_t>(entry.block) * page_size;
      std::size_t count =
          history_tokens > begin ? history_tokens - begin : 0;
      if (count == 0) continue;
      const kv::PagePin pin = alloc.pin(entry.page);
      const kv::Page& page = pin.page();
      count = std::min({count, page_size, page.size()});
      for (std::size_t s = 0; s < count; ++s) {
        const std::size_t c = begin + s;
        bool any = false;
        for (std::size_t r = 0; r < rows && !any; ++r) {
          any = allowed(diag[r], c);
        }
        if (!any) continue;
        page.load_key(s, key.data());
        page.load_value(s, value.data());
        for (std::size_t r = 0; r < rows; ++r) {
          if (!allowed(diag[r], c)) continue;
          acc[r].fold_one(scale * num::dot(q.row(row0 + r), key.data(), d),
                          value.data());
        }
      }
    }

    // In-chunk phase: columns ascending so each row's fold order stays the
    // monolithic ascending-token order.
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t c = history_tokens + j;
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t row = row0 + r;
        if (j > row || !allowed(diag[r], c)) continue;
        acc[r].fold_one(scale * num::dot(q.row(row), k.row(j), d), v.row(j));
      }
    }

    for (std::size_t r = 0; r < rows; ++r) {
      acc[r].finish(out.row(row0 + r));
    }
  }
}

}  // namespace lserve::attn
