#include "attn/block_sparse_prefill.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "numeric/math.hpp"

namespace lserve::attn {
namespace {

/// Folds one TQ x TK tile into the per-row accumulators.
/// Rows in [row0, row0+rows) attend to keys [col0, col0+cols) subject to
/// the causal bound key <= row.
void fold_tile(num::ConstMatView q, num::ConstMatView k, num::ConstMatView v,
               float scale, std::size_t row0, std::size_t rows,
               std::size_t col0, std::size_t cols,
               std::vector<num::OnlineSoftmax>& acc) {
  const std::size_t d = q.cols;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t row = row0 + r;
    const float* qr = q.row(row);
    num::OnlineSoftmax& a = acc[r];
    // Causal frontier inside the tile.
    const std::size_t hi = std::min(col0 + cols, row + 1);
    for (std::size_t c = col0; c < hi; ++c) {
      a.fold_one(scale * num::dot(qr, k.row(c), d), v.row(c));
    }
  }
}

void run_prefill(num::ConstMatView q, num::ConstMatView k, num::ConstMatView v,
                 const BlockMask& mask, PrefillTiling tiling, float scale,
                 num::MatView out, bool branchy) {
  assert(q.cols == k.cols && k.rows == v.rows && out.rows == q.rows);
  const std::size_t n = q.rows;
  const std::size_t tq = tiling.tile_q;
  const std::size_t tk = tiling.tile_k;
  const std::size_t q_blocks = (n + tq - 1) / tq;
  assert(mask.q_blocks() == q_blocks);

  std::vector<num::OnlineSoftmax> acc;
  acc.reserve(tq);
  for (std::size_t i = 0; i < tq; ++i) acc.emplace_back(q.cols);

  for (std::size_t qb = 0; qb < q_blocks; ++qb) {
    const std::size_t row0 = qb * tq;
    const std::size_t rows = std::min(tq, n - row0);
    for (std::size_t r = 0; r < rows; ++r) acc[r].reset();

    const std::size_t last_row = row0 + rows - 1;
    const std::size_t diag = last_row / tk;

    if (branchy) {
      // MInference-style: sequential walk over every causal tile with an
      // in-loop keep/skip branch.
      for (std::size_t kb = 0; kb <= diag; ++kb) {
        if (!mask.kept(qb, kb)) continue;
        const std::size_t col0 = kb * tk;
        const std::size_t cols = std::min(tk, k.rows - col0);
        fold_tile(q, k, v, scale, row0, rows, col0, cols, acc);
      }
    } else {
      // Iterator-based: trip count equals the number of live tiles.
      BlockIterator it(mask.row_blocks(qb));
      while (!it.done()) {
        const std::size_t kb = it.next();
        const std::size_t col0 = kb * tk;
        const std::size_t cols = std::min(tk, k.rows - col0);
        fold_tile(q, k, v, scale, row0, rows, col0, cols, acc);
      }
    }

    for (std::size_t r = 0; r < rows; ++r) {
      acc[r].finish(out.row(row0 + r));
    }
  }
}

}  // namespace

void block_sparse_prefill(num::ConstMatView q, num::ConstMatView k,
                          num::ConstMatView v, const BlockMask& mask,
                          PrefillTiling tiling, float scale,
                          num::MatView out) {
  run_prefill(q, k, v, mask, tiling, scale, out, /*branchy=*/false);
}

void block_sparse_prefill_branchy(num::ConstMatView q, num::ConstMatView k,
                                  num::ConstMatView v, const BlockMask& mask,
                                  PrefillTiling tiling, float scale,
                                  num::MatView out) {
  run_prefill(q, k, v, mask, tiling, scale, out, /*branchy=*/true);
}

}  // namespace lserve::attn
