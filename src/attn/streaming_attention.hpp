// Streaming-head attention (Λ-shaped mask: attention sinks + local window).
//
// Prefill for streaming heads is just the unified block-sparse kernel with
// the streaming BlockMask; this header provides the convenience wrapper and
// an exact token-granular reference used in tests. Decode for streaming
// heads goes through the unified sparse decode kernel with the sink+local
// index table produced by kv::StreamingHeadCache (§3.6), so no separate
// decode kernel exists here — that is the point of the unification.
#pragma once

#include <cstddef>

#include "attn/block_sparse_prefill.hpp"
#include "numeric/tensor.hpp"

namespace lserve::attn {

/// Λ-mask geometry in blocks.
struct StreamingBlocks {
  std::size_t sink_blocks = 1;
  std::size_t local_blocks = 2;
};

/// Streaming prefill for one head via the unified block-sparse kernel.
void streaming_prefill(num::ConstMatView q, num::ConstMatView k,
                       num::ConstMatView v, StreamingBlocks sb,
                       PrefillTiling tiling, float scale, num::MatView out);

/// Token-granular reference: row i attends to keys j <= i with
/// (j < sink_tokens) or (j + local_tokens > i). Tests compare the block
/// kernel against this with block-aligned sink/local sizes.
void streaming_prefill_reference(num::ConstMatView q, num::ConstMatView k,
                                 num::ConstMatView v, std::size_t sink_tokens,
                                 std::size_t local_tokens, float scale,
                                 num::MatView out);

/// Per-token compute of a streaming head relative to dense causal attention
/// at sequence length n (for the "nearly free" accounting): kept / causal
/// key-token pairs.
double streaming_cost_fraction(std::size_t n_tokens, std::size_t sink_tokens,
                               std::size_t local_tokens) noexcept;

}  // namespace lserve::attn
