#include "attn/decode_attention.hpp"

#include <cassert>
#include <vector>

#include "numeric/math.hpp"

namespace lserve::attn {

void sparse_paged_decode(const kv::PageAllocator& alloc,
                         const kv::SelectedPageTable& table,
                         std::size_t seq_tokens, const float* q,
                         std::size_t head_dim, float scale, float* out,
                         float* lse_out, DecodeWorkStats* stats) {
  assert(head_dim == alloc.config().head_dim);
  const std::size_t page_size = alloc.config().page_size;
  num::OnlineSoftmax acc(head_dim);
  std::vector<float> key(head_dim);
  std::vector<float> value(head_dim);

  for (const kv::SelectedPage& entry : table) {
    const kv::PagePin pin = alloc.pin(entry.page);
    const kv::Page& page = pin.page();
    // Tokens live in this block: full pages hold page_size tokens, the
    // trailing block holds the remainder. For streaming-head ring pages the
    // page's own fill count is authoritative.
    const std::size_t begin =
        static_cast<std::size_t>(entry.block) * page_size;
    std::size_t count = seq_tokens > begin ? seq_tokens - begin : 0;
    if (count > page_size) count = page_size;
    if (count > page.size()) count = page.size();

    for (std::size_t s = 0; s < count; ++s) {
      page.load_key(s, key.data());
      page.load_value(s, value.data());
      acc.fold_one(scale * num::dot(q, key.data(), head_dim), value.data());
    }
    if (stats != nullptr) {
      ++stats->pages_visited;
      stats->tokens_visited += count;
    }
  }
  acc.finish(out);
  if (lse_out != nullptr) *lse_out = acc.log_sum_exp();
}

}  // namespace lserve::attn
