// Unified block-sparse prefill attention kernel (LServe §3.1, §3.4).
//
// The kernel processes TQ x TK tiles; a tile is either fully computed or
// fully skipped according to a BlockMask. Per query row an OnlineSoftmax
// accumulator folds each visited tile, so the loop structure is exactly the
// GPU kernel's: parallel over query tiles (thread blocks), sequential over
// key tiles. Two variants are provided:
//
//  * block_sparse_prefill        — iterator-based: visits only live tiles
//                                  via precomputed per-row block lists.
//  * block_sparse_prefill_branchy — MInference-style comparator: walks every
//                                  causal tile and branches on the mask
//                                  inside the loop (Fig 12's baseline).
//
// With the causal mask both reduce to dense FlashAttention-style prefill.
#pragma once

#include <cstddef>

#include "attn/block_iterator.hpp"
#include "numeric/tensor.hpp"

namespace lserve::attn {

/// Tile geometry for the prefill kernel.
struct PrefillTiling {
  std::size_t tile_q = 64;  ///< TQ (query rows per tile; >1 in prefill).
  std::size_t tile_k = 64;  ///< TK (key columns per tile; = page size).
};

/// Block-sparse causal prefill for one head.
/// q, k, v: [n x d]; out: [n x d]; `mask` must be finalized and sized for
/// (n, tiling). Within kept diagonal tiles, exact causal masking applies.
void block_sparse_prefill(num::ConstMatView q, num::ConstMatView k,
                          num::ConstMatView v, const BlockMask& mask,
                          PrefillTiling tiling, float scale, num::MatView out);

/// Same contract, but iterates all causal tiles with an in-loop mask branch
/// instead of the compressed iterator. Used as the measured comparator for
/// Fig 12 (kernel efficiency at equal sparsity).
void block_sparse_prefill_branchy(num::ConstMatView q, num::ConstMatView k,
                                  num::ConstMatView v, const BlockMask& mask,
                                  PrefillTiling tiling, float scale,
                                  num::MatView out);

}  // namespace lserve::attn
