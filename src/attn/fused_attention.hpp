// Fused per-layer attention dispatch (LServe Fig 5, §3.4/§3.6).
//
// One call processes every query head of a layer, mixing sparsity patterns
// per head exactly as the fused CUDA kernels do:
//   prefill — dense (retrieval) heads run the unified block-sparse kernel
//             with a causal or dynamically-estimated mask; streaming heads
//             run it with the Λ mask.
//   decode  — every head goes through the one sparse_paged_decode kernel;
//             what differs is only the (possibly pruned) page table:
//             full / selector output / sink+local index table.
// GQA is handled here: query head h reads kv head h / group_size, and the
// page selector scores against the group's mean query (one selection per
// kv head, shared by its query group).
#pragma once

#include <cstddef>
#include <span>

#include "attn/block_sparse_prefill.hpp"
#include "attn/chunked_prefill.hpp"
#include "attn/decode_attention.hpp"
#include "attn/streaming_attention.hpp"
#include "kv/two_way_cache.hpp"
#include "sparse/hierarchical_selector.hpp"
#include "sparse/prefill_mask.hpp"
#include "sparse/quest_selector.hpp"
#include "sparse/reusable_selector.hpp"

namespace lserve::attn {

/// Prefill-stage policy for a layer.
struct FusedPrefillConfig {
  PrefillTiling tiling;
  StreamingBlocks streaming;          ///< Λ geometry for streaming heads.
  float scale = 0.0f;                 ///< 0 => 1/sqrt(head_dim).
  bool dynamic_dense = false;         ///< MInference-style mask on dense heads.
  sparse::DynamicPrefillConfig dynamic_cfg;
  /// Full sequence length being prefilled (prompt tokens), used by
  /// streaming heads to clamp the Λ diagonal in absolute coordinates so
  /// every chunk schedule makes identical tile decisions. 0 means "this
  /// chunk is the whole sequence" (history + chunk).
  std::size_t total_tokens = 0;
};

/// Decode-stage policy for a layer.
struct FusedDecodeConfig {
  float scale = 0.0f;                 ///< 0 => 1/sqrt(head_dim).
  bool dynamic_dense = true;          ///< page pruning on dense heads.
  bool hierarchical = true;           ///< hierarchical vs flat page scoring.
  sparse::PageSelectorConfig selector;
};

/// Fused prefill over all heads of one layer.
/// q: [n x (q_heads*head_dim)], k/v: [n x (kv_heads*head_dim)],
/// kinds: one HeadKind per kv head; out: [n x (q_heads*head_dim)].
void fused_sparse_prefill(num::ConstMatView q, num::ConstMatView k,
                          num::ConstMatView v,
                          std::span<const kv::HeadKind> kv_head_kinds,
                          std::size_t head_dim, const FusedPrefillConfig& cfg,
                          num::MatView out);

/// Fused CHUNKED prefill over all heads of one layer. Called AFTER the
/// chunk's KV write-back (TwoWayKvCache::append_roundtrip, with streaming
/// eviction deferred): per-head token counts minus the chunk length give
/// the history extent, and the in-chunk k/v rows — already round-tripped
/// through the cache dtype — carry exactly the bits later readers load.
/// The chunk's queries attend to the paged history (dense heads: full
/// page table; streaming heads: sink+local index table) plus the in-chunk
/// causal/Λ/dynamic prefix; streaming Λ decisions are made in absolute
/// coordinates against cfg.total_tokens. Together these make prefill
/// invariant to the chunk/attach schedule for causal dense and streaming
/// heads (dynamic_dense masks remain chunk-local, hence schedule-
/// dependent). With an empty history this equals fused_sparse_prefill.
/// q: [n x q_heads*head_dim], k/v: [n x kv_heads*head_dim] for the CHUNK.
void fused_chunked_prefill(const kv::PageAllocator& dense_alloc,
                           const kv::PageAllocator& stream_alloc,
                           const kv::TwoWayKvCache& cache, std::size_t layer,
                           num::ConstMatView q, num::ConstMatView k,
                           num::ConstMatView v, std::size_t head_dim,
                           const FusedPrefillConfig& cfg, num::MatView out);

/// Fused decode over all heads of one layer.
/// q_heads: [q_heads x head_dim] current-token queries; out same shape.
/// `selector` may be null (then selection, if enabled, runs every step);
/// `step` is the 0-based decode step used for reuse chunking.
void fused_sparse_decode(const kv::PageAllocator& dense_alloc,
                         const kv::PageAllocator& stream_alloc,
                         const kv::TwoWayKvCache& cache, std::size_t layer,
                         num::ConstMatView q_heads, std::size_t group_size,
                         sparse::ReusableSelector* selector, std::size_t step,
                         const FusedDecodeConfig& cfg, num::MatView out,
                         DecodeWorkStats* stats = nullptr);

}  // namespace lserve::attn
