#include "attn/fused_attention.hpp"

#include <cassert>
#include <cmath>
#include <span>
#include <vector>

#include "numeric/math.hpp"

namespace lserve::attn {
namespace {

float resolve_scale(float scale, std::size_t head_dim) {
  if (scale != 0.0f) return scale;
  return 1.0f / std::sqrt(static_cast<float>(head_dim));
}

}  // namespace

void fused_sparse_prefill(num::ConstMatView q, num::ConstMatView k,
                          num::ConstMatView v,
                          std::span<const kv::HeadKind> kv_head_kinds,
                          std::size_t head_dim, const FusedPrefillConfig& cfg,
                          num::MatView out) {
  const std::size_t n = q.rows;
  const std::size_t q_heads = q.cols / head_dim;
  const std::size_t kv_heads = kv_head_kinds.size();
  assert(k.cols == kv_heads * head_dim && q_heads % kv_heads == 0);
  const std::size_t group = q_heads / kv_heads;
  const float scale = resolve_scale(cfg.scale, head_dim);

  // Masks are shared within a kv group; dynamic masks additionally depend
  // on the query head, so they are built per query head below.
  BlockMask causal =
      BlockMask::causal(n, cfg.tiling.tile_q, cfg.tiling.tile_k);
  causal.finalize();
  BlockMask lambda = BlockMask::streaming(n, cfg.tiling.tile_q,
                                          cfg.tiling.tile_k,
                                          cfg.streaming.sink_blocks,
                                          cfg.streaming.local_blocks);
  lambda.finalize();

  for (std::size_t h = 0; h < q_heads; ++h) {
    const std::size_t kvh = h / group;
    const num::ConstMatView qh = q.cols_slice(h * head_dim, head_dim);
    const num::ConstMatView kh = k.cols_slice(kvh * head_dim, head_dim);
    const num::ConstMatView vh = v.cols_slice(kvh * head_dim, head_dim);
    num::MatView oh = out.cols_slice(h * head_dim, head_dim);

    if (kv_head_kinds[kvh] == kv::HeadKind::kStreaming) {
      block_sparse_prefill(qh, kh, vh, lambda, cfg.tiling, scale, oh);
    } else if (cfg.dynamic_dense) {
      const BlockMask dyn = sparse::build_dynamic_prefill_mask(
          qh, kh, cfg.tiling, cfg.dynamic_cfg, scale);
      block_sparse_prefill(qh, kh, vh, dyn, cfg.tiling, scale, oh);
    } else {
      block_sparse_prefill(qh, kh, vh, causal, cfg.tiling, scale, oh);
    }
  }
}

void fused_chunked_prefill(const kv::PageAllocator& dense_alloc,
                           const kv::PageAllocator& stream_alloc,
                           const kv::TwoWayKvCache& cache, std::size_t layer,
                           num::ConstMatView q, num::ConstMatView k,
                           num::ConstMatView v, std::size_t head_dim,
                           const FusedPrefillConfig& cfg, num::MatView out) {
  const std::size_t n = q.rows;
  const std::size_t q_heads = q.cols / head_dim;
  const std::size_t kv_heads = cache.kv_heads();
  assert(k.cols == kv_heads * head_dim && q_heads % kv_heads == 0);
  const std::size_t group = q_heads / kv_heads;
  const float scale = cfg.scale != 0.0f
                          ? cfg.scale
                          : 1.0f / std::sqrt(static_cast<float>(head_dim));

  BlockMask causal =
      BlockMask::causal(n, cfg.tiling.tile_q, cfg.tiling.tile_k);
  causal.finalize();

  for (std::size_t kvh = 0; kvh < kv_heads; ++kvh) {
    const bool streaming = cache.kind(layer, kvh) == kv::HeadKind::kStreaming;
    // Per-head token counts are authoritative: during a chunked prefill
    // the layer loop interleaves write-back and attention, so the global
    // sequence counter is ahead of the not-yet-written layers. The chunk
    // was appended before this call, so history is what precedes it.
    const std::size_t appended =
        streaming ? cache.streaming_head(layer, kvh).tokens()
                  : cache.dense_head(layer, kvh).tokens();
    assert(appended >= n);
    const std::size_t history_tokens = appended - n;
    const std::size_t total_tokens =
        cfg.total_tokens != 0 ? cfg.total_tokens : appended;
    assert(total_tokens >= appended);
    // The table includes the chunk's own pages (and, for streaming heads,
    // stale locals whose eviction is deferred to end of chunk); the
    // kernels ignore entries at or past history_tokens.
    const kv::SelectedPageTable history =
        history_tokens == 0
            ? kv::SelectedPageTable{}
            : (streaming
                   ? cache.streaming_head(layer, kvh).index_table()
                   : kv::full_page_table(
                         cache.dense_head(layer, kvh).view(dense_alloc)));
    const kv::PageAllocator& alloc = streaming ? stream_alloc : dense_alloc;
    const num::ConstMatView kh = k.cols_slice(kvh * head_dim, head_dim);
    const num::ConstMatView vh = v.cols_slice(kvh * head_dim, head_dim);

    for (std::size_t g = 0; g < group; ++g) {
      const std::size_t h = kvh * group + g;
      const num::ConstMatView qh = q.cols_slice(h * head_dim, head_dim);
      num::MatView oh = out.cols_slice(h * head_dim, head_dim);
      if (streaming) {
        chunked_prefill_streaming_head(alloc, history, history_tokens,
                                       total_tokens, qh, kh, vh,
                                       cfg.streaming, cfg.tiling, scale, oh);
      } else if (cfg.dynamic_dense) {
        const BlockMask dyn = sparse::build_dynamic_prefill_mask(
            qh, kh, cfg.tiling, cfg.dynamic_cfg, scale);
        chunked_prefill_head(alloc, history, history_tokens, qh, kh, vh, dyn,
                             cfg.tiling, scale, oh);
      } else {
        chunked_prefill_head(alloc, history, history_tokens, qh, kh, vh,
                             causal, cfg.tiling, scale, oh);
      }
    }
  }
}

void fused_sparse_decode(const kv::PageAllocator& dense_alloc,
                         const kv::PageAllocator& stream_alloc,
                         const kv::TwoWayKvCache& cache, std::size_t layer,
                         num::ConstMatView q_heads, std::size_t group_size,
                         sparse::ReusableSelector* selector, std::size_t step,
                         const FusedDecodeConfig& cfg, num::MatView out,
                         DecodeWorkStats* stats) {
  const std::size_t head_dim = q_heads.cols;
  const std::size_t kv_heads = cache.kv_heads();
  assert(q_heads.rows == kv_heads * group_size);
  const float scale = resolve_scale(cfg.scale, head_dim);
  const std::size_t seq_tokens = cache.tokens();

  std::vector<float> group_q(head_dim);
  for (std::size_t kvh = 0; kvh < kv_heads; ++kvh) {
    kv::SelectedPageTable table;

    if (cache.kind(layer, kvh) == kv::HeadKind::kStreaming) {
      table = cache.streaming_head(layer, kvh).index_table();
    } else {
      const kv::HeadCache& head = cache.dense_head(layer, kvh);
      if (!cfg.dynamic_dense) {
        table = kv::full_page_table(head.view(dense_alloc));
      } else {
        // Selector query: mean of the group's query heads (one selection
        // per kv head, shared across its group).
        std::fill(group_q.begin(), group_q.end(), 0.0f);
        for (std::size_t g = 0; g < group_size; ++g) {
          num::axpy(1.0f / static_cast<float>(group_size),
                    q_heads.row(kvh * group_size + g), group_q.data(),
                    head_dim);
        }
        auto recompute = [&]() {
          return cfg.hierarchical
                     ? sparse::select_pages_hierarchical(
                           dense_alloc, head, group_q.data(), cfg.selector)
                     : sparse::select_pages_flat(dense_alloc, head,
                                                 group_q.data(), cfg.selector);
        };
        if (selector != nullptr) {
          const std::size_t slot = layer * kv_heads + kvh;
          table = selector->get(slot, step, recompute);
        } else {
          table = recompute();
        }
      }
    }

    const kv::PageAllocator& alloc =
        cache.kind(layer, kvh) == kv::HeadKind::kStreaming ? stream_alloc
                                                           : dense_alloc;
    // Tiered store: hint the whole selected table before the walk so the
    // prefetcher can promote cold pages while the first group heads read
    // hot ones (no-op when tiering is off).
    alloc.prefetch(std::span<const kv::SelectedPage>(table));
    for (std::size_t g = 0; g < group_size; ++g) {
      const std::size_t h = kvh * group_size + g;
      sparse_paged_decode(alloc, table, seq_tokens, q_heads.row(h), head_dim,
                          scale, out.row(h), nullptr, stats);
    }
  }
}

}  // namespace lserve::attn
