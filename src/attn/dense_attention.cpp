#include "attn/dense_attention.hpp"

#include <cassert>
#include <vector>

#include "numeric/math.hpp"

namespace lserve::attn {

void dense_prefill_reference(num::ConstMatView q, num::ConstMatView k,
                             num::ConstMatView v, float scale,
                             num::MatView out) {
  assert(q.rows == out.rows && q.cols == k.cols && k.rows == v.rows);
  const std::size_t n = q.rows;
  const std::size_t d = q.cols;
  std::vector<float> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* qi = q.row(i);
    for (std::size_t j = 0; j <= i; ++j) {
      scores[j] = scale * num::dot(qi, k.row(j), d);
    }
    num::softmax_inplace(scores.data(), i + 1);
    float* oi = out.row(i);
    std::fill(oi, oi + d, 0.0f);
    for (std::size_t j = 0; j <= i; ++j) {
      num::axpy(scores[j], v.row(j), oi, d);
    }
  }
}

void dense_paged_decode(const kv::PageAllocator& alloc,
                        const kv::HeadCache& head, const float* q,
                        std::size_t head_dim, float scale, float* out,
                        float* lse_out) {
  assert(head_dim == alloc.config().head_dim);
  const kv::PageTableView view = head.view(alloc);
  num::OnlineSoftmax acc(head_dim);
  std::vector<float> key(head_dim);
  std::vector<float> value(head_dim);
  for (std::size_t b = 0; b < view.num_blocks(); ++b) {
    const kv::PagePin pin = alloc.pin(view.pages[b]);
    const kv::Page& page = pin.page();
    const std::size_t count = view.block_tokens(b);
    for (std::size_t s = 0; s < count; ++s) {
      page.load_key(s, key.data());
      page.load_value(s, value.data());
      acc.fold_one(scale * num::dot(q, key.data(), head_dim), value.data());
    }
  }
  acc.finish(out);
  if (lse_out != nullptr) *lse_out = acc.log_sum_exp();
}

}  // namespace lserve::attn
