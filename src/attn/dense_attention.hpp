// Reference dense attention.
//
// These are the trusted oracles every sparse kernel is tested against and
// the compute path of the dense baselines (vLLM-like). The prefill variant
// is a naive O(N^2) row-softmax implementation; the decode variant walks a
// full paged KV history.
#pragma once

#include <cstddef>

#include "kv/kv_cache.hpp"
#include "kv/page_allocator.hpp"
#include "numeric/tensor.hpp"

namespace lserve::attn {

/// Causal dense prefill for one head.
/// q, k, v are [n_tokens x head_dim]; out is [n_tokens x head_dim].
/// `scale` is typically 1/sqrt(head_dim).
void dense_prefill_reference(num::ConstMatView q, num::ConstMatView k,
                             num::ConstMatView v, float scale,
                             num::MatView out);

/// Dense decode for one head over the full paged history: the current
/// query attends to all `head.tokens()` cached tokens.
/// `out` receives head_dim floats; if `lse_out` is non-null it receives the
/// log-sum-exp of the scores (used by accuracy metrics).
void dense_paged_decode(const kv::PageAllocator& alloc,
                        const kv::HeadCache& head, const float* q,
                        std::size_t head_dim, float scale, float* out,
                        float* lse_out = nullptr);

}  // namespace lserve::attn
