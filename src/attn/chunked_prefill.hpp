// Chunked prefill: attention for a chunk of new tokens over (a) the paged
// KV history already in the cache and (b) the chunk itself, causally.
//
// Serving systems prefill very long prompts in chunks to bound activation
// memory; each chunk's queries attend to every cached token (full history
// visibility) plus the in-chunk causal prefix. The history side reuses the
// pruned-page-table interface, so streaming heads pass their sink+local
// index table and dense heads the full table — the same unification as
// decode (§3.6). With an empty history this reduces to the ordinary
// block-sparse prefill.
#pragma once

#include <cstddef>

#include "attn/block_sparse_prefill.hpp"
#include "kv/page_allocator.hpp"
#include "kv/page_table.hpp"
#include "numeric/tensor.hpp"

namespace lserve::attn {

/// Prefill one head's chunk with paged history.
///
/// `history` lists the cached pages to attend (sorted by block) holding
/// `history_tokens` total sequence tokens so far; q/k/v are the chunk's
/// [n x d] projections (RoPE already applied at absolute positions);
/// `chunk_mask` is the finalized in-chunk block mask (causal / streaming /
/// dynamic, sized for n and `tiling`); `out` is [n x d].
void chunked_prefill_head(const kv::PageAllocator& alloc,
                          const kv::SelectedPageTable& history,
                          std::size_t history_tokens, num::ConstMatView q,
                          num::ConstMatView k, num::ConstMatView v,
                          const BlockMask& chunk_mask, PrefillTiling tiling,
                          float scale, num::MatView out);

}  // namespace lserve::attn
