// Chunked prefill: attention for a chunk of new tokens over (a) the paged
// KV history already in the cache and (b) the chunk itself, causally.
//
// Serving systems prefill very long prompts in chunks to bound activation
// memory; each chunk's queries attend to every cached token (full history
// visibility) plus the in-chunk causal prefix. The history side reuses the
// pruned-page-table interface, so streaming heads pass their sink+local
// index table and dense heads the full table — the same unification as
// decode (§3.6). With an empty history this reduces to the ordinary
// block-sparse prefill.
#pragma once

#include <cstddef>

#include "attn/block_sparse_prefill.hpp"
#include "attn/streaming_attention.hpp"
#include "kv/page_allocator.hpp"
#include "kv/page_table.hpp"
#include "numeric/tensor.hpp"

namespace lserve::attn {

/// Prefill one head's chunk with paged history.
///
/// `history` lists the cached pages to attend (sorted by block) holding
/// `history_tokens` total sequence tokens so far; q/k/v are the chunk's
/// [n x d] projections (RoPE already applied at absolute positions);
/// `chunk_mask` is the finalized in-chunk block mask (causal / streaming /
/// dynamic, sized for n and `tiling`); `out` is [n x d].
void chunked_prefill_head(const kv::PageAllocator& alloc,
                          const kv::SelectedPageTable& history,
                          std::size_t history_tokens, num::ConstMatView q,
                          num::ConstMatView k, num::ConstMatView v,
                          const BlockMask& chunk_mask, PrefillTiling tiling,
                          float scale, num::MatView out);

/// Prefill one STREAMING head's chunk with the Λ mask evaluated in
/// absolute sequence coordinates.
///
/// The monolithic path decides tile liveness from absolute q/k tile
/// indices and the full sequence length `total_tokens`
/// (BlockMask::streaming); a chunk starting at token `history_tokens`
/// must reproduce those exact decisions or resuming prefill at a chunk —
/// or prefix-cache attach — boundary changes which tokens each row
/// attends. This kernel applies the identical predicate per (row, token):
/// key tile kb is live for absolute row p iff kb < sink_blocks or
/// kb + local_blocks > diag(p), diag(p) being the k-tile of the last row
/// of p's q-tile clamped to total_tokens; tokens fold in ascending
/// absolute order, matching the monolithic tile walk bit for bit.
///
/// `history` must list every retained block (sink + local ring, plus any
/// not-yet-evicted pages appended for the chunk itself; entries at or past
/// `history_tokens` are ignored). q/k/v are the chunk's [n x d] rows with
/// k/v already round-tripped through the cache dtype.
void chunked_prefill_streaming_head(
    const kv::PageAllocator& alloc, const kv::SelectedPageTable& history,
    std::size_t history_tokens, std::size_t total_tokens,
    num::ConstMatView q, num::ConstMatView k, num::ConstMatView v,
    StreamingBlocks streaming, PrefillTiling tiling, float scale,
    num::MatView out);

}  // namespace lserve::attn
