// Block masks and the iterator abstraction for block-sparse attention
// (LServe §3.1 & §3.4).
//
// A BlockMask says, for every (query-tile, key-tile) pair, whether the tile
// is computed or skipped. The kernel never branches on the mask inside its
// sequential loop: per query tile we pre-build the sorted list of live key
// blocks and hand the kernel a BlockIterator, so data offsets follow from
// offset = iter(i+1) - iter(i). This is the design that turns sparsity into
// measured speedup — the loop trip count itself shrinks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lserve::attn {

/// Dense/sparse decision table over (q_block, k_block) tiles.
class BlockMask {
 public:
  BlockMask() = default;
  BlockMask(std::size_t q_blocks, std::size_t k_blocks, bool keep_all = false);

  std::size_t q_blocks() const noexcept { return q_blocks_; }
  std::size_t k_blocks() const noexcept { return k_blocks_; }

  bool kept(std::size_t qb, std::size_t kb) const noexcept {
    return keep_[qb * k_blocks_ + kb] != 0;
  }
  void set(std::size_t qb, std::size_t kb, bool keep) noexcept {
    keep_[qb * k_blocks_ + kb] = keep ? 1 : 0;
  }

  /// Fully-causal mask: every tile at or below the diagonal is kept.
  /// `tile_q` / `tile_k` are the tile heights/widths in tokens; `n_tokens`
  /// bounds the causal frontier.
  static BlockMask causal(std::size_t n_tokens, std::size_t tile_q,
                          std::size_t tile_k);

  /// Λ-shaped streaming mask (attention sinks + local window), expressed at
  /// block granularity over a causal base: key tile kb is kept for query
  /// tile qb iff kb is a sink block or within `local_blocks` of qb's
  /// diagonal. The most recent (diagonal) block is always kept.
  static BlockMask streaming(std::size_t n_tokens, std::size_t tile_q,
                             std::size_t tile_k, std::size_t sink_blocks,
                             std::size_t local_blocks);

  /// Number of kept tiles.
  std::size_t kept_blocks() const noexcept;

  /// Sparsity r relative to the causal mask: fraction of causal tiles that
  /// were dropped. Theoretical kernel speedup is 1 / (1 - r) (§3.1).
  double sparsity_vs_causal(std::size_t n_tokens, std::size_t tile_q,
                            std::size_t tile_k) const noexcept;

  /// Sorted live key-block list for query tile qb.
  std::span<const std::uint32_t> row_blocks(std::size_t qb) const noexcept;

  /// Must be called after the mask is final and before row_blocks();
  /// builds the per-row compressed block lists the iterator walks.
  void finalize();

 private:
  std::size_t q_blocks_ = 0;
  std::size_t k_blocks_ = 0;
  std::vector<std::uint8_t> keep_;
  std::vector<std::uint32_t> row_data_;  // concatenated per-row block lists
  std::vector<std::size_t> row_offset_;  // q_blocks_+1 offsets into row_data_
  bool finalized_ = false;
};

/// Forward iterator over the live key blocks of one query tile.
///
/// Mirrors the CUDA iterator of §3.4: next() yields the logical key-block
/// index; the caller derives the memory offset from consecutive values.
class BlockIterator {
 public:
  explicit BlockIterator(std::span<const std::uint32_t> blocks) noexcept
      : blocks_(blocks) {}

  bool done() const noexcept { return i_ >= blocks_.size(); }
  std::uint32_t next() noexcept { return blocks_[i_++]; }
  std::size_t remaining() const noexcept { return blocks_.size() - i_; }

 private:
  std::span<const std::uint32_t> blocks_;
  std::size_t i_ = 0;
};

}  // namespace lserve::attn
