// Unified sparse decode attention kernel (LServe §3.6).
//
// One kernel serves every decode-stage head flavour:
//   * dense head, no pruning      — table = full page table (vLLM baseline);
//   * dense head, dynamic pruning — table = page-selector output;
//   * streaming head              — table = sink+local index table.
//
// The kernel's physical iteration index walks the SelectedPageTable in
// order; each entry's logical block index maps the step back to the actual
// token positions (the two-level physical->logical indexing). KV rows are
// dequantized on load, modelling QServe-style fused dequantuation.
#pragma once

#include <cstddef>

#include "kv/page_allocator.hpp"
#include "kv/page_table.hpp"

namespace lserve::attn {

/// Cumulative work counters used by benches to verify iteration-count
/// claims (theoretical speedup = fewer sequential iterations).
struct DecodeWorkStats {
  std::size_t pages_visited = 0;
  std::size_t tokens_visited = 0;
  /// Attention-policy routing telemetry, filled by the serving engine per
  /// decode step (never by the kernel): steps that ran full-context dense
  /// reads vs the configured sparse-capable pipeline. Lives in this
  /// scratch so the engine's ordered post-join merge keeps the counters
  /// bit-identical across decode thread counts.
  std::size_t dense_route_steps = 0;
  std::size_t sparse_route_steps = 0;
};

/// Sparse decode for one head.
///
/// `table` lists the pages to visit (sorted by logical block);
/// `seq_tokens` is the sequence's total token count, needed to size the
/// trailing partial block. `q` has `head_dim` floats; the normalized output
/// is written to `out`. `lse_out`, if non-null, receives the score
/// log-sum-exp; `stats`, if non-null, is incremented.
void sparse_paged_decode(const kv::PageAllocator& alloc,
                         const kv::SelectedPageTable& table,
                         std::size_t seq_tokens, const float* q,
                         std::size_t head_dim, float scale, float* out,
                         float* lse_out = nullptr,
                         DecodeWorkStats* stats = nullptr);

}  // namespace lserve::attn
