#include "attn/streaming_attention.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "numeric/math.hpp"

namespace lserve::attn {

void streaming_prefill(num::ConstMatView q, num::ConstMatView k,
                       num::ConstMatView v, StreamingBlocks sb,
                       PrefillTiling tiling, float scale, num::MatView out) {
  BlockMask mask = BlockMask::streaming(q.rows, tiling.tile_q, tiling.tile_k,
                                        sb.sink_blocks, sb.local_blocks);
  mask.finalize();
  block_sparse_prefill(q, k, v, mask, tiling, scale, out);
}

void streaming_prefill_reference(num::ConstMatView q, num::ConstMatView k,
                                 num::ConstMatView v, std::size_t sink_tokens,
                                 std::size_t local_tokens, float scale,
                                 num::MatView out) {
  const std::size_t n = q.rows;
  const std::size_t d = q.cols;
  std::vector<float> scores;
  std::vector<std::size_t> cols;
  for (std::size_t i = 0; i < n; ++i) {
    scores.clear();
    cols.clear();
    for (std::size_t j = 0; j <= i; ++j) {
      const bool sink = j < sink_tokens;
      const bool local = j + local_tokens > i;
      if (!sink && !local) continue;
      cols.push_back(j);
      scores.push_back(scale * num::dot(q.row(i), k.row(j), d));
    }
    num::softmax_inplace(scores.data(), scores.size());
    float* oi = out.row(i);
    std::fill(oi, oi + d, 0.0f);
    for (std::size_t t = 0; t < cols.size(); ++t) {
      num::axpy(scores[t], v.row(cols[t]), oi, d);
    }
  }
}

double streaming_cost_fraction(std::size_t n_tokens, std::size_t sink_tokens,
                               std::size_t local_tokens) noexcept {
  if (n_tokens == 0) return 1.0;
  double kept = 0.0;
  double causal = 0.0;
  for (std::size_t i = 0; i < n_tokens; ++i) {
    causal += static_cast<double>(i + 1);
    const std::size_t local = std::min<std::size_t>(local_tokens, i + 1);
    const std::size_t sink =
        std::min<std::size_t>(sink_tokens, (i + 1) - local);
    kept += static_cast<double>(sink + local);
  }
  return kept / causal;
}

}  // namespace lserve::attn
