// Dynamic prefill block-sparsity (MInference-style), used both as the
// optional LServe prefill mode for very long inputs (§4.3: "compatible with
// the prefilling dynamic sparsity in MInference, activated after 128K") and
// as the MInference baseline's policy.
//
// The mask is estimated from pooled Q/K block representatives: block-mean
// queries against block-mean keys approximate which key tiles matter for
// each query tile ("vertical" stripes), and the sink + diagonal/local tiles
// ("slash") are always kept. The estimation cost is O(n^2 / (TQ*TK)),
// negligible next to attention itself.
#pragma once

#include <cstddef>

#include "attn/block_iterator.hpp"
#include "attn/block_sparse_prefill.hpp"
#include "numeric/tensor.hpp"

namespace lserve::sparse {

/// Policy knobs for the dynamic prefill mask.
struct DynamicPrefillConfig {
  double keep_ratio = 0.25;     ///< fraction of causal tiles kept per row.
  std::size_t sink_blocks = 1;  ///< always-kept leading tiles.
  std::size_t local_blocks = 2; ///< always-kept diagonal band (in tiles).
};

/// Builds a finalized dynamic block mask for one head's prefill.
/// q, k: [n x d] (post-RoPE). The mask always contains the causal
/// diagonal, sinks, and local band; remaining budget goes to the
/// highest-scoring pooled tiles.
attn::BlockMask build_dynamic_prefill_mask(num::ConstMatView q,
                                           num::ConstMatView k,
                                           attn::PrefillTiling tiling,
                                           const DynamicPrefillConfig& cfg,
                                           float scale);

}  // namespace lserve::sparse
