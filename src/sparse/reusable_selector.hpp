// Reusable page selection (LServe §3.5.3, Fig 8).
//
// Decode attention has temporal locality: adjacent query tokens attend to
// similar history pages, so the page-selection decision can be shared
// across a chunk of consecutive decode steps. The selector is activated
// only at the first token of each `reuse_interval`-sized chunk; the
// following steps reuse the cached SelectedPageTable. This cuts selector
// overhead by the reuse interval (4x by default) — crucial because the
// selector's cost grows linearly with context while sparse attention itself
// is constant (Fig 14).
#pragma once

#include <cstddef>
#include <vector>

#include "kv/page_table.hpp"

namespace lserve::sparse {

/// Cache of per-slot selected page tables with chunked refresh. A "slot" is
/// one (layer, kv-head) pair; the engine sizes the cache once.
class ReusableSelector {
 public:
  /// `slots` = layers * kv_heads; `reuse_interval` = chunk size C (>= 1).
  ReusableSelector(std::size_t slots, std::size_t reuse_interval);

  /// Returns the table for `slot` at decode step `step` (0-based within the
  /// generation), recomputing via `recompute()` only on chunk boundaries.
  template <typename Fn>
  const kv::SelectedPageTable& get(std::size_t slot, std::size_t step,
                                   Fn&& recompute) {
    Entry& e = entries_[slot];
    const std::size_t chunk = step / interval_;
    if (!e.valid || e.chunk != chunk) {
      e.table = recompute();
      e.chunk = chunk;
      e.valid = true;
      ++selector_runs_;
    } else {
      ++reuses_;
    }
    return e.table;
  }

  /// Invalidates all cached tables (e.g. when a sequence is recycled).
  void reset();

  std::size_t reuse_interval() const noexcept { return interval_; }
  /// Telemetry: how often the real selector ran vs was skipped.
  std::size_t selector_runs() const noexcept { return selector_runs_; }
  std::size_t reuses() const noexcept { return reuses_; }

 private:
  struct Entry {
    kv::SelectedPageTable table;
    std::size_t chunk = 0;
    bool valid = false;
  };
  std::vector<Entry> entries_;
  std::size_t interval_;
  std::size_t selector_runs_ = 0;
  std::size_t reuses_ = 0;
};

}  // namespace lserve::sparse
