#include "sparse/head_classifier.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "attn/dense_attention.hpp"
#include "attn/streaming_attention.hpp"
#include "numeric/math.hpp"
#include "numeric/tensor.hpp"

namespace lserve::sparse {

float measure_head_gate(num::ConstMatView q, num::ConstMatView k,
                        num::ConstMatView v, std::size_t sink_tokens,
                        std::size_t local_tokens, float scale) {
  const std::size_t n = q.rows;
  const std::size_t d = q.cols;
  num::Tensor dense_out(n, d);
  num::Tensor stream_out(n, d);
  attn::dense_prefill_reference(q, k, v, scale, dense_out.view());
  attn::streaming_prefill_reference(q, k, v, sink_tokens, local_tokens, scale,
                                    stream_out.view());
  // Relative error restricted to rows with history beyond the Λ mask;
  // early rows are identical by construction and would dilute the signal.
  double err_sq = 0.0;
  double ref_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < sink_tokens + local_tokens) continue;
    const float* a = dense_out.row(i);
    const float* b = stream_out.row(i);
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = static_cast<double>(a[c]) - b[c];
      err_sq += diff * diff;
      ref_sq += static_cast<double>(a[c]) * a[c];
    }
  }
  if (ref_sq < 1e-20) return 0.0;
  const double rel = std::sqrt(err_sq / ref_sq);
  // Squash to [0,1): monotone in the distortion, so quantile thresholding
  // is unaffected by the exact squashing function.
  return static_cast<float>(rel / (rel + 0.25));
}

float gate_threshold(std::span<const float> gates,
                     double streaming_fraction) {
  assert(!gates.empty());
  streaming_fraction = std::clamp(streaming_fraction, 0.0, 1.0);
  std::vector<float> sorted(gates.begin(), gates.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t cut = static_cast<std::size_t>(
      std::round(streaming_fraction * static_cast<double>(sorted.size())));
  if (cut == 0) return -1.0f;  // below every gate: no streaming heads
  return sorted[cut - 1];
}

std::vector<kv::HeadKind> classify_by_quantile(std::span<const float> gates,
                                               double streaming_fraction) {
  const float tau = gate_threshold(gates, streaming_fraction);
  const std::size_t target = static_cast<std::size_t>(std::round(
      std::clamp(streaming_fraction, 0.0, 1.0) *
      static_cast<double>(gates.size())));
  std::vector<kv::HeadKind> kinds(gates.size(), kv::HeadKind::kDense);
  // Ties at τ are broken by index so the streaming count is exact.
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < gates.size() && assigned < target; ++i) {
    if (gates[i] < tau) {
      kinds[i] = kv::HeadKind::kStreaming;
      ++assigned;
    }
  }
  for (std::size_t i = 0; i < gates.size() && assigned < target; ++i) {
    if (kinds[i] == kv::HeadKind::kDense && gates[i] == tau) {
      kinds[i] = kv::HeadKind::kStreaming;
      ++assigned;
    }
  }
  return kinds;
}

}  // namespace lserve::sparse
