#include "sparse/reusable_selector.hpp"

#include <cassert>

namespace lserve::sparse {

ReusableSelector::ReusableSelector(std::size_t slots,
                                   std::size_t reuse_interval)
    : entries_(slots), interval_(reuse_interval == 0 ? 1 : reuse_interval) {
  assert(slots > 0);
}

void ReusableSelector::reset() {
  for (auto& e : entries_) {
    e.valid = false;
    e.table.clear();
  }
}

}  // namespace lserve::sparse
