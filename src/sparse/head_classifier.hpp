// Offline head classification: retrieval heads vs streaming heads
// (LServe §3.3, following DuoAttention).
//
// DuoAttention learns a gate α ∈ [0,1] per head with an optimization pass
// over calibration data; heads with α below a sparsity-quantile threshold τ
// become streaming heads. We cannot run that training here, so the gate is
// *measured* instead of learned: α is the normalized output distortion a
// head suffers when restricted to its Λ mask on a calibration workload with
// planted long-range dependencies. The interface (per-head α + quantile
// thresholding) and the downstream behaviour are identical; DESIGN.md §2
// records the substitution.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "kv/two_way_cache.hpp"
#include "numeric/tensor.hpp"

namespace lserve::sparse {

/// Measures one head's gate value: the relative L2 error between dense
/// attention output and streaming (sink+local) output on calibration
/// q/k/v ([n x d] each), squashed into [0, 1). Retrieval-dependent heads
/// score high; locally-supported heads score near 0.
float measure_head_gate(num::ConstMatView q, num::ConstMatView k,
                        num::ConstMatView v, std::size_t sink_tokens,
                        std::size_t local_tokens, float scale);

/// Quantile-thresholds gate values into head roles: the lowest
/// `streaming_fraction` of heads become streaming (τ = that quantile of α).
/// Returns one HeadKind per gate, in input order.
std::vector<kv::HeadKind> classify_by_quantile(std::span<const float> gates,
                                               double streaming_fraction);

/// The threshold τ used by classify_by_quantile (exposed for logging and
/// for reproducing DuoAttention's "τ = median for 50% sparsity" statement).
float gate_threshold(std::span<const float> gates, double streaming_fraction);

}  // namespace lserve::sparse
