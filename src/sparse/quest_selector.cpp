#include "sparse/quest_selector.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "kv/kstats.hpp"
#include "numeric/math.hpp"

namespace lserve::sparse {
namespace {

/// Scores every physical page and returns the block indices to keep.
/// `score_page` maps a Page to its importance for the current query.
template <typename ScoreFn>
kv::SelectedPageTable select_top_pages(const kv::PageAllocator& alloc,
                                       const kv::HeadCache& head,
                                       const PageSelectorConfig& cfg,
                                       ScoreFn&& score_page) {
  const kv::PageTableView view = head.view(alloc);
  const std::size_t blocks = view.num_blocks();
  const std::size_t page_size = view.page_size;
  if (blocks == 0) return {};

  std::size_t budget_pages =
      std::max<std::size_t>(1, cfg.token_budget / page_size);
  if (budget_pages >= blocks) return kv::full_page_table(view);

  std::vector<float> scores(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    scores[b] = score_page(alloc.pin(view.pages[b]).page());
  }
  // Feed the tier layer: pages scoring low here are the first cold-spill
  // candidates.
  alloc.note_scores(view.pages, scores);
  // Forced pages (sinks and the most recent blocks) are modelled by giving
  // them +inf-like priority rather than extra budget, so the token budget
  // is respected exactly.
  const float forced = std::numeric_limits<float>::max();
  for (std::size_t b = 0; b < std::min(cfg.keep_first_pages, blocks); ++b) {
    scores[b] = forced;
  }
  for (std::size_t i = 0; i < std::min(cfg.keep_recent_pages, blocks); ++i) {
    scores[blocks - 1 - i] = forced;
  }

  const std::vector<std::size_t> kept =
      num::top_k_indices(scores, budget_pages);
  kv::SelectedPageTable table;
  table.reserve(kept.size());
  for (std::size_t b : kept) {
    table.push_back({view.pages[b], static_cast<std::uint32_t>(b)});
  }
  return table;
}

/// Quest's page representative: channel-wise min/max over the WHOLE
/// physical page, obtained by folding the per-logical-page stats.
float flat_page_score(const kv::Page& page, const float* q) {
  const kv::KStats& stats = page.kstats();
  const std::size_t d = stats.head_dim();
  const std::size_t g = stats.logical_pages();
  assert(g >= 1);
  float mn[1024];
  float mx[1024];
  assert(d <= 1024);
  bool seeded = false;
  for (std::size_t j = 0; j < g; ++j) {
    if (!stats.initialized(j)) continue;
    const float* jmin = stats.kmin(j);
    const float* jmax = stats.kmax(j);
    if (!seeded) {
      std::copy(jmin, jmin + d, mn);
      std::copy(jmax, jmax + d, mx);
      seeded = true;
    } else {
      for (std::size_t c = 0; c < d; ++c) {
        mn[c] = std::min(mn[c], jmin[c]);
        mx[c] = std::max(mx[c], jmax[c]);
      }
    }
  }
  if (!seeded) return -std::numeric_limits<float>::infinity();
  return kv::logical_page_score(q, mx, mn, d);
}

}  // namespace

kv::SelectedPageTable select_pages_flat(const kv::PageAllocator& alloc,
                                        const kv::HeadCache& head,
                                        const float* q,
                                        const PageSelectorConfig& cfg) {
  return select_top_pages(
      alloc, head, cfg,
      [q](const kv::Page& page) { return flat_page_score(page, q); });
}

std::size_t flat_selector_scored_pages(const kv::PageAllocator& alloc,
                                       const kv::HeadCache& head) noexcept {
  return head.view(alloc).num_blocks();
}

}  // namespace lserve::sparse
