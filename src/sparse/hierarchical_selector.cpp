#include "sparse/hierarchical_selector.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "kv/kstats.hpp"
#include "numeric/math.hpp"

namespace lserve::sparse {
namespace {

float hierarchical_score(const kv::Page& page, const float* q) {
  const kv::KStats& stats = page.kstats();
  const std::size_t d = stats.head_dim();
  float best = -std::numeric_limits<float>::infinity();
  for (std::size_t j = 0; j < stats.logical_pages(); ++j) {
    if (!stats.initialized(j)) continue;
    const float s = kv::logical_page_score(q, stats.kmax(j), stats.kmin(j), d);
    best = std::max(best, s);
  }
  return best;
}

}  // namespace

kv::SelectedPageTable select_pages_hierarchical(
    const kv::PageAllocator& alloc, const kv::HeadCache& head, const float* q,
    const PageSelectorConfig& cfg) {
  const kv::PageTableView view = head.view(alloc);
  const std::size_t blocks = view.num_blocks();
  const std::size_t page_size = view.page_size;
  if (blocks == 0) return {};

  const std::size_t budget_pages =
      std::max<std::size_t>(1, cfg.token_budget / page_size);
  if (budget_pages >= blocks) return kv::full_page_table(view);

  std::vector<float> scores(blocks);
  hierarchical_page_scores(alloc, head, q, scores.data());
  const float forced = std::numeric_limits<float>::max();
  for (std::size_t b = 0; b < std::min(cfg.keep_first_pages, blocks); ++b) {
    scores[b] = forced;
  }
  for (std::size_t i = 0; i < std::min(cfg.keep_recent_pages, blocks); ++i) {
    scores[blocks - 1 - i] = forced;
  }

  const std::vector<std::size_t> kept =
      num::top_k_indices(scores, budget_pages);
  kv::SelectedPageTable table;
  table.reserve(kept.size());
  for (std::size_t b : kept) {
    table.push_back({view.pages[b], static_cast<std::uint32_t>(b)});
  }
  return table;
}

void hierarchical_page_scores(const kv::PageAllocator& alloc,
                              const kv::HeadCache& head, const float* q,
                              float* scores) {
  const kv::PageTableView view = head.view(alloc);
  for (std::size_t b = 0; b < view.num_blocks(); ++b) {
    scores[b] = hierarchical_score(alloc.pin(view.pages[b]).page(), q);
  }
  alloc.note_scores(view.pages,
                    std::span<const float>(scores, view.num_blocks()));
}

std::size_t hierarchical_selector_scored_pages(
    const kv::PageAllocator& alloc, const kv::HeadCache& head) noexcept {
  const kv::PageTableView view = head.view(alloc);
  const std::size_t g = alloc.config().logical_pages();
  return view.num_blocks() * g;
}

}  // namespace lserve::sparse
