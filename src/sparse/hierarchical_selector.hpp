// Hierarchical page selection (LServe §3.5.2, Fig 7).
//
// The accuracy/efficiency dilemma: quantized KV wants large physical pages
// (NP ≥ 64) for bandwidth, but page-wide statistics at that granularity are
// homogenized and mis-rank pages. Hierarchical paging decouples the two:
// importance is estimated per *logical* page of NL tokens (NP = g·NL) using
// the per-logical-page channel-wise kmin/kmax kept in K_stats, and each
// physical page inherits the MAX of its logical pages' scores. Top-K
// physical pages under the token budget are selected. Spatial locality of
// attention means salient logical pages cluster into few physical pages, so
// the same token budget suffices (§3.5.3).
#pragma once

#include <cstddef>

#include "kv/kv_cache.hpp"
#include "kv/page_allocator.hpp"
#include "kv/page_table.hpp"
#include "sparse/quest_selector.hpp"

namespace lserve::sparse {

/// Hierarchical selection: score logical pages, max-reduce onto physical
/// pages, keep top-K physical pages under cfg.token_budget.
kv::SelectedPageTable select_pages_hierarchical(const kv::PageAllocator& alloc,
                                                const kv::HeadCache& head,
                                                const float* q,
                                                const PageSelectorConfig& cfg);

/// Raw per-physical-page hierarchical scores (max over logical pages), for
/// analysis benches. scores[b] corresponds to logical block b.
void hierarchical_page_scores(const kv::PageAllocator& alloc,
                              const kv::HeadCache& head, const float* q,
                              float* scores);

/// Selector work in scored representatives (= logical pages touched); the
/// cost model charges selection proportionally to this count.
std::size_t hierarchical_selector_scored_pages(
    const kv::PageAllocator& alloc, const kv::HeadCache& head) noexcept;

}  // namespace lserve::sparse
