// Flat (Quest-style) query-centric page selection.
//
// Quest scores each physical page with ONE channel-wise min/max
// representative and keeps the top-K pages under a token budget. With small
// pages (≤16 tokens) this is nearly lossless; with the large pages that
// KV quantization demands, the page-wide statistics homogenize and the
// selector loses needles (the page-size dilemma of §3.5.1 / Fig 6). We
// reproduce that failure mode exactly by folding all logical-page stats of
// a physical page into a single representative before scoring.
#pragma once

#include <cstddef>

#include "kv/kv_cache.hpp"
#include "kv/page_allocator.hpp"
#include "kv/page_table.hpp"

namespace lserve::sparse {

/// Budget policy shared by the flat and hierarchical selectors.
struct PageSelectorConfig {
  std::size_t token_budget = 4096;  ///< max KV tokens attended per head.
  std::size_t keep_first_pages = 1;   ///< attention sinks are always kept.
  std::size_t keep_recent_pages = 1;  ///< the newest block is always kept.
};

/// Flat selection: one min/max representative per physical page.
/// `q` is the head's query (head_dim floats). The returned table is sorted
/// by logical block and covers at most `token_budget` tokens (counting the
/// forced first/recent pages inside the budget where possible).
kv::SelectedPageTable select_pages_flat(const kv::PageAllocator& alloc,
                                        const kv::HeadCache& head,
                                        const float* q,
                                        const PageSelectorConfig& cfg);

/// Work accounting for the selector (cost-model hooks): number of logical
/// representatives scored by one flat selection pass.
std::size_t flat_selector_scored_pages(const kv::PageAllocator& alloc,
                                       const kv::HeadCache& head) noexcept;

}  // namespace lserve::sparse
