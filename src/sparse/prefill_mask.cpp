#include "sparse/prefill_mask.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "numeric/math.hpp"

namespace lserve::sparse {

attn::BlockMask build_dynamic_prefill_mask(num::ConstMatView q,
                                           num::ConstMatView k,
                                           attn::PrefillTiling tiling,
                                           const DynamicPrefillConfig& cfg,
                                           float scale) {
  const std::size_t n = q.rows;
  const std::size_t d = q.cols;
  const std::size_t tq = tiling.tile_q;
  const std::size_t tk = tiling.tile_k;
  const std::size_t q_blocks = (n + tq - 1) / tq;
  const std::size_t k_blocks = (n + tk - 1) / tk;

  // Block-mean pooling of queries and keys.
  num::Tensor q_pool(q_blocks, d);
  num::Tensor k_pool(k_blocks, d);
  for (std::size_t qb = 0; qb < q_blocks; ++qb) {
    const std::size_t r0 = qb * tq;
    const std::size_t rows = std::min(tq, n - r0);
    float* dst = q_pool.row(qb);
    for (std::size_t r = 0; r < rows; ++r) {
      num::axpy(1.0f / static_cast<float>(rows), q.row(r0 + r), dst, d);
    }
  }
  for (std::size_t kb = 0; kb < k_blocks; ++kb) {
    const std::size_t c0 = kb * tk;
    const std::size_t cols = std::min(tk, n - c0);
    float* dst = k_pool.row(kb);
    for (std::size_t c = 0; c < cols; ++c) {
      num::axpy(1.0f / static_cast<float>(cols), k.row(c0 + c), dst, d);
    }
  }

  attn::BlockMask mask(q_blocks, k_blocks);
  std::vector<float> scores;
  for (std::size_t qb = 0; qb < q_blocks; ++qb) {
    const std::size_t last_row = std::min((qb + 1) * tq, n) - 1;
    const std::size_t diag = last_row / tk;
    const std::size_t causal_blocks = diag + 1;

    // Forced structure: sinks + local diagonal band.
    for (std::size_t kb = 0; kb < std::min(cfg.sink_blocks, causal_blocks);
         ++kb) {
      mask.set(qb, kb, true);
    }
    for (std::size_t i = 0; i < std::min(cfg.local_blocks, causal_blocks);
         ++i) {
      mask.set(qb, diag - i, true);
    }

    // Budget for estimated "vertical" tiles.
    const std::size_t budget = static_cast<std::size_t>(
        std::ceil(cfg.keep_ratio * static_cast<double>(causal_blocks)));
    scores.assign(causal_blocks, 0.0f);
    for (std::size_t kb = 0; kb < causal_blocks; ++kb) {
      scores[kb] =
          scale * num::dot(q_pool.row(qb), k_pool.row(kb), d);
    }
    for (std::size_t kb : num::top_k_indices(scores, budget)) {
      mask.set(qb, kb, true);
    }
  }
  mask.finalize();
  return mask;
}

}  // namespace lserve::sparse
