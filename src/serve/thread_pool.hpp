// Fixed-size worker pool for batch-parallel decode.
//
// One pool is shared by a Scheduler across steps; each parallel_for() is a
// fork/join region over [0, n) with dynamic (atomic-counter) work stealing.
// The calling thread participates, so a pool of size T uses T threads total
// (T-1 workers + caller) and a pool of size <= 1 degenerates to an inline
// loop with zero synchronization — the serial path stays the serial path.
//
// Determinism contract: parallel_for only changes WHICH thread runs fn(i),
// never how often or with what argument. Callers that keep fn(i) free of
// cross-index writes (per-sequence state, per-call stats merged after the
// join) therefore get bit-identical results at any pool size.
//
// Lock discipline (machine-checked under clang -Wthread-safety): every
// shared field is GUARDED_BY(mu_); fn itself always runs with mu_
// released. mu_ is a leaf lock — no other lock is ever acquired while it
// is held (docs/CONCURRENCY.md has the full hierarchy).
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "serve/thread_annotations.hpp"

namespace lserve::serve {

/// Reusable fork/join thread pool.
class ThreadPool {
 public:
  /// `threads` is the total parallelism (including the calling thread).
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + caller).
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Runs fn(i) once for every i in [0, n), possibly concurrently, and
  /// blocks until all calls return. The first exception thrown by any
  /// fn(i) is rethrown on the calling thread after the join.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn)
      EXCLUDES(mu_);

 private:
  void worker_loop() EXCLUDES(mu_);
  void run_indices() EXCLUDES(mu_);

  /// Written only at construction, joined at destruction; never touched
  /// by the workers themselves.
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_cv_;  ///< workers wait for a new job.
  CondVar done_cv_;  ///< caller waits for the join.
  const std::function<void(std::size_t)>* job_fn_ GUARDED_BY(mu_) = nullptr;
  std::size_t job_n_ GUARDED_BY(mu_) = 0;
  std::size_t next_index_ GUARDED_BY(mu_) = 0;  ///< next unclaimed i.
  std::size_t active_workers_ GUARDED_BY(mu_) = 0;  ///< workers mid-run.
  std::size_t worker_slots_ GUARDED_BY(mu_) = 0;  ///< unclaimed slots.
  std::uint64_t job_epoch_ GUARDED_BY(mu_) = 0;  ///< per parallel_for call.
  std::exception_ptr first_error_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace lserve::serve
