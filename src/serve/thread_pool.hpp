// Fixed-size worker pool for batch-parallel decode.
//
// One pool is shared by a Scheduler across steps; each parallel_for() is a
// fork/join region over [0, n) with dynamic (atomic-counter) work stealing.
// The calling thread participates, so a pool of size T uses T threads total
// (T-1 workers + caller) and a pool of size <= 1 degenerates to an inline
// loop with zero synchronization — the serial path stays the serial path.
//
// Determinism contract: parallel_for only changes WHICH thread runs fn(i),
// never how often or with what argument. Callers that keep fn(i) free of
// cross-index writes (per-sequence state, per-call stats merged after the
// join) therefore get bit-identical results at any pool size.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lserve::serve {

/// Reusable fork/join thread pool.
class ThreadPool {
 public:
  /// `threads` is the total parallelism (including the calling thread).
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + caller).
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Runs fn(i) once for every i in [0, n), possibly concurrently, and
  /// blocks until all calls return. The first exception thrown by any
  /// fn(i) is rethrown on the calling thread after the join.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void run_indices();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for a new job.
  std::condition_variable done_cv_;   ///< caller waits for the join.
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t next_index_ = 0;        ///< next unclaimed i (guarded by mu_).
  std::size_t active_workers_ = 0;    ///< workers mid-run (claimed a slot).
  std::size_t worker_slots_ = 0;      ///< unclaimed enlistment slots.
  std::uint64_t job_epoch_ = 0;       ///< bumped per parallel_for call.
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

}  // namespace lserve::serve
