#include "serve/sequence.hpp"

// Sequence is a plain aggregate; this TU anchors the module.
namespace lserve::serve {
static_assert(kInvalidSequence != 0, "sequence ids start at 0");
}  // namespace lserve::serve
