#include "serve/thread_pool.hpp"

#include <algorithm>

namespace lserve::serve {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads - 1);
  try {
    for (std::size_t i = 0; i + 1 < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread creation failed partway: shut down and join the workers that
    // did start, then rethrow, so ~vector never sees a joinable thread.
    {
      MutexLock lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_indices() {
  for (;;) {
    std::size_t i;
    const std::function<void(std::size_t)>* fn;
    {
      MutexLock lock(mu_);
      if (next_index_ >= job_n_ || first_error_ != nullptr) return;
      i = next_index_++;
      fn = job_fn_;
    }
    try {
      (*fn)(i);
    } catch (...) {
      MutexLock lock(mu_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    bool enlisted = false;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && job_epoch_ == seen_epoch) work_cv_.wait(mu_);
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      // Claim an enlistment slot only while there is claimable work left:
      // workers that wake after the indices drained (or after an error)
      // go straight back to sleep, and the join never waits on them.
      if (worker_slots_ > 0 && next_index_ < job_n_ &&
          first_error_ == nullptr) {
        --worker_slots_;
        ++active_workers_;
        enlisted = true;
      }
    }
    if (!enlisted) continue;
    run_indices();
    {
      MutexLock lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    MutexLock lock(mu_);
    job_fn_ = &fn;
    job_n_ = n;
    next_index_ = 0;
    first_error_ = nullptr;
    active_workers_ = 0;
    worker_slots_ = std::min(workers_.size(), n - 1);
    ++job_epoch_;
  }
  work_cv_.notify_all();
  run_indices();  // the caller is one of the pool's threads.
  // The job is over once no worker is mid-run AND no late-waking worker
  // can still claim a slot (indices drained, error set, or slots gone).
  std::exception_ptr err;
  {
    MutexLock lock(mu_);
    while (active_workers_ != 0 ||
           (worker_slots_ != 0 && next_index_ < job_n_ &&
            first_error_ == nullptr)) {
      done_cv_.wait(mu_);
    }
    worker_slots_ = 0;  // stale wake-ups after the join must not claim.
    job_fn_ = nullptr;
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err != nullptr) std::rethrow_exception(err);
}

}  // namespace lserve::serve
