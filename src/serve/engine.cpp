#include "serve/engine.hpp"

#include <cassert>
#include <cmath>

#include "model/workload.hpp"
#include "numeric/math.hpp"
#include "numeric/rng.hpp"
#include "serve/thread_pool.hpp"

namespace lserve::serve {
namespace {

kv::PageConfig make_stream_pages(const kv::PageConfig& dense) {
  kv::PageConfig cfg = dense;
  cfg.track_kstats = false;  // streaming pages carry no selector stats.
  cfg.logical_page_size = cfg.page_size;
  return cfg;
}

}  // namespace

Engine::Engine(EngineConfig cfg)
    : cfg_([&] {
        // Normalize the page geometry against the model before anything
        // else is constructed from it.
        cfg.dense_pages.head_dim = cfg.model.head_dim;
        if (cfg.dense_pages.logical_page_size == 0 ||
            cfg.dense_pages.page_size % cfg.dense_pages.logical_page_size !=
                0) {
          cfg.dense_pages.logical_page_size = cfg.dense_pages.page_size;
        }
        return cfg;
      }()),
      tf_(cfg_.model, cfg_.seed),
      dense_alloc_(cfg_.dense_pages, cfg_.pool_pages,
                   kv::TierConfig{/*hot_pages=*/cfg_.memory.hot_pages,
                                  /*cold_bytes=*/cfg_.memory.cold_bytes}),
      stream_alloc_(make_stream_pages(cfg_.dense_pages), cfg_.pool_pages),
      policy_(cfg_.policy) {
  // Default partition: deterministic round-robin at streaming_fraction.
  // calibrate_head_kinds() or set_head_kinds() refine this.
  const std::size_t slots = cfg_.model.layers * cfg_.model.kv_heads;
  head_kinds_.assign(slots, kv::HeadKind::kDense);
  const auto target = static_cast<std::size_t>(
      std::round(cfg_.streaming_fraction * static_cast<double>(slots)));
  if (target > 0) {
    const double stride =
        static_cast<double>(slots) / static_cast<double>(target);
    for (std::size_t i = 0; i < target; ++i) {
      const auto idx = static_cast<std::size_t>(i * stride);
      head_kinds_[idx < slots ? idx : slots - 1] = kv::HeadKind::kStreaming;
    }
  }
  recount_head_slots();
  rebuild_prefix_cache();
}

void Engine::rebuild_prefix_cache() {
  prefix_cache_.reset();
  if (!cfg_.enable_prefix_cache) return;
  kv::PrefixCacheConfig pc;
  pc.layers = cfg_.model.layers;
  pc.kv_heads = cfg_.model.kv_heads;
  pc.kinds = head_kinds_;
  pc.streaming = cfg_.streaming;
  pc.max_pages = cfg_.memory.prefix_cache_pages;
  prefix_cache_ = std::make_unique<kv::PrefixCache>(dense_alloc_,
                                                    stream_alloc_,
                                                    std::move(pc));
}

void Engine::recount_head_slots() noexcept {
  dense_slots_ = 0;
  for (const kv::HeadKind k : head_kinds_) {
    if (k == kv::HeadKind::kDense) ++dense_slots_;
  }
  stream_slots_ = head_kinds_.size() - dense_slots_;
}

void Engine::set_head_kinds(std::vector<kv::HeadKind> kinds) {
  assert(kinds.size() == cfg_.model.layers * cfg_.model.kv_heads);
  head_kinds_ = std::move(kinds);
  recount_head_slots();
  // A partition change invalidates every cached page set (the tree's page
  // roles no longer match new sequences'); rebuild empty.
  rebuild_prefix_cache();
}

std::vector<float> Engine::calibrate_head_kinds() {
  // Synthetic calibration (see DESIGN.md §2): each head gets a planted
  // stream; heads whose stream carries a long-range needle suffer high
  // distortion under the Λ mask and emerge as retrieval heads. The planted
  // heterogeneity alternates by head index, mirroring the roughly-even
  // retrieval/streaming split DuoAttention finds in real models.
  const std::size_t slots = cfg_.model.layers * cfg_.model.kv_heads;
  const std::size_t d = cfg_.model.head_dim;
  const std::size_t n = cfg_.streaming.sink_tokens +
                        cfg_.streaming.local_tokens + 256;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const float strength = model::salient_strength(n, d);
  // For local heads the query is a scaled copy of the current key (norm
  // ~cfg.key_scale), so the alignment strength is strength^2 / |k|.
  const float local_gain = strength * strength;
  std::vector<float> gates(slots, 0.0f);
  for (std::size_t i = 0; i < slots; ++i) {
    model::StreamConfig sc;
    sc.n_tokens = n;
    sc.head_dim = d;
    sc.seed = num::split_seed(cfg_.seed, 1000 + i);
    model::TokenStream stream = model::smooth_stream(sc);
    const bool retrieval_like = (i % 2) == 0;
    num::Tensor queries(n, d);
    if (retrieval_like) {
      // Needle in the middle of the context, outside the Λ mask of the
      // later rows: a head that needs it is a retrieval head.
      const model::Needle needle =
          model::plant_needle(stream, /*pos=*/n / 2, strength, sc.seed);
      for (std::size_t t = 0; t < n; ++t) {
        const auto q = model::probe_query(needle, strength, 0.1f,
                                          num::split_seed(sc.seed, t));
        std::copy(q.begin(), q.end(), queries.row(t));
      }
    } else {
      // Locally-supported head: queries track the recent key walk with
      // enough gain that local tokens dominate the softmax.
      for (std::size_t t = 0; t < n; ++t) {
        const float* recent = stream.keys.row(t);
        float* q = queries.row(t);
        for (std::size_t c = 0; c < d; ++c) {
          q[c] = local_gain * recent[c];
        }
      }
    }
    gates[i] = sparse::measure_head_gate(
        queries.view(), stream.keys.view(), stream.values.view(),
        cfg_.streaming.sink_tokens, cfg_.streaming.local_tokens, scale);
  }
  head_kinds_ =
      sparse::classify_by_quantile(gates, cfg_.streaming_fraction);
  recount_head_slots();
  rebuild_prefix_cache();
  return gates;
}

SequenceId Engine::create_sequence() {
  ++stats_.sequences_created;
  // Reuse a released slot if available.
  for (std::size_t i = 0; i < sequences_.size(); ++i) {
    if (sequences_[i] == nullptr) {
      sequences_[i] = std::make_unique<Sequence>(
          cfg_.model.layers, cfg_.model.kv_heads, head_kinds_,
          cfg_.streaming, cfg_.reuse_interval);
      return i;
    }
  }
  sequences_.push_back(std::make_unique<Sequence>(
      cfg_.model.layers, cfg_.model.kv_heads, head_kinds_, cfg_.streaming,
      cfg_.reuse_interval));
  return sequences_.size() - 1;
}

void Engine::release_sequence(SequenceId id) {
  ++stats_.sequences_released;
  assert(id < sequences_.size() && sequences_[id] != nullptr);
  const kv::PageAuditScope audit(id, "Engine::release_sequence");
  sequences_[id]->cache.release(dense_alloc_, stream_alloc_);
  sequences_[id].reset();
}

attn::FusedPrefillConfig Engine::prefill_config(std::size_t n_tokens) const {
  attn::FusedPrefillConfig pc;
  pc.tiling = cfg_.tiling;
  pc.streaming.sink_blocks =
      (cfg_.streaming.sink_tokens + cfg_.tiling.tile_k - 1) /
      cfg_.tiling.tile_k;
  pc.streaming.local_blocks =
      std::max<std::size_t>(1, (cfg_.streaming.local_tokens +
                                cfg_.tiling.tile_k - 1) /
                                   cfg_.tiling.tile_k);
  pc.dynamic_dense = cfg_.dynamic_prefill &&
                     n_tokens >= cfg_.dynamic_prefill_min_tokens;
  pc.dynamic_cfg = cfg_.dynamic_prefill_cfg;
  return pc;
}

attn::FusedDecodeConfig Engine::decode_config(AttentionRoute route) const {
  attn::FusedDecodeConfig dc;
  // The route's only lever: dense-head page pruning. kDense forces the
  // full page table; kSparse runs whatever the config asks for. The
  // streaming-head split is storage-level and never gated.
  dc.dynamic_dense =
      cfg_.dynamic_decode && route == AttentionRoute::kSparse;
  dc.hierarchical = cfg_.hierarchical;
  dc.selector = cfg_.selector;
  return dc;
}

void Engine::forward_prefill(Sequence& seq, num::Tensor& hidden,
                             std::size_t pos0) {
  const std::size_t n = hidden.rows();
  const std::size_t h = cfg_.model.hidden();
  const std::size_t kvd = cfg_.model.kv_dim();
  const std::size_t d = cfg_.model.head_dim;
  attn::FusedPrefillConfig pc = prefill_config(n);
  // Absolute Λ geometry: position + prefill_remaining is the full prompt
  // length regardless of how it is chunked or how much a prefix-cache
  // attach already covered.
  pc.total_tokens = seq.position + seq.prefill_remaining;

  num::Tensor normed(n, h);
  num::Tensor q(n, h);
  num::Tensor k(n, kvd);
  num::Tensor v(n, kvd);
  num::Tensor attn_out(n, h);

  for (std::size_t layer = 0; layer < cfg_.model.layers; ++layer) {
    tf_.rms_norm(hidden.view(), layer, normed.view());
    tf_.qkv_project(normed.view(), layer, pos0, q.view(), k.view(), v.view());

    // KV write-back first (the paper's two quantized write-back kernels),
    // round-tripping each row through the cache dtype: attention must see
    // the quantized K/V or a chunk/attach boundary would change numerics
    // (in-chunk rows raw, history rows dequantized). Streaming eviction
    // is deferred so early chunk rows can still attend the pages that
    // were inside the Λ window at the chunk boundary.
    for (std::size_t t = 0; t < n; ++t) {
      for (std::size_t kvh = 0; kvh < cfg_.model.kv_heads; ++kvh) {
        seq.cache.append_roundtrip(dense_alloc_, stream_alloc_, layer, kvh,
                                   k.row(t) + kvh * d, v.row(t) + kvh * d);
      }
    }

    // Attention over (cached history, in-chunk prefix); with an empty
    // history this is the ordinary fused block-sparse prefill.
    attn::fused_chunked_prefill(dense_alloc_, stream_alloc_, seq.cache,
                                layer, q.view(), k.view(), v.view(), d, pc,
                                attn_out.view());

    seq.cache.evict_stale(stream_alloc_, layer);

    tf_.output_project(attn_out.view(), layer, hidden.view());
    tf_.ffn(hidden.view(), layer);
  }
  stats_.prefill_tokens += n;
}

void Engine::forward_decode(Sequence& seq, num::Tensor& hidden,
                            AttentionRoute route,
                            attn::DecodeWorkStats& work) {
  const std::size_t h = cfg_.model.hidden();
  const std::size_t kvd = cfg_.model.kv_dim();
  const std::size_t d = cfg_.model.head_dim;
  const attn::FusedDecodeConfig dc = decode_config(route);

  num::Tensor normed(1, h);
  num::Tensor q(1, h);
  num::Tensor k(1, kvd);
  num::Tensor v(1, kvd);
  num::Tensor attn_out(1, h);

  for (std::size_t layer = 0; layer < cfg_.model.layers; ++layer) {
    tf_.rms_norm(hidden.view(), layer, normed.view());
    tf_.qkv_project(normed.view(), layer, seq.position, q.view(), k.view(),
                    v.view());
    for (std::size_t kvh = 0; kvh < cfg_.model.kv_heads; ++kvh) {
      seq.cache.append(dense_alloc_, stream_alloc_, layer, kvh,
                       k.row(0) + kvh * d, v.row(0) + kvh * d);
    }
    // Reinterpret the packed q row as [q_heads x d].
    const num::ConstMatView q_heads{q.data(), cfg_.model.q_heads, d, d};
    num::MatView out_heads{attn_out.data(), cfg_.model.q_heads, d, d};
    attn::fused_sparse_decode(dense_alloc_, stream_alloc_, seq.cache, layer,
                              q_heads, cfg_.model.group_size(),
                              &seq.selector, seq.decode_step, dc, out_heads,
                              &work);
    tf_.output_project(attn_out.view(), layer, hidden.view());
    tf_.ffn(hidden.view(), layer);
  }
}

std::int32_t Engine::prefill(SequenceId id,
                             std::span<const std::int32_t> ids) {
  begin_prefill(id, ids.size());
  const std::size_t chunk = cfg_.prefill_chunk_tokens == 0
                                ? ids.size()
                                : cfg_.prefill_chunk_tokens;
  for (std::size_t begin = 0; begin < ids.size(); begin += chunk) {
    prefill_chunk(id, ids.subspan(begin, std::min(chunk, ids.size() - begin)));
  }
  return finish_prefill(id);
}

void Engine::begin_prefill(SequenceId id, std::size_t total_tokens) {
  Sequence& seq = *sequences_[id];
  assert(seq.phase == SequencePhase::kWaiting && total_tokens > 0);
  // A prefix-cache attach may already have advanced position past the
  // reused prefix; only the uncached suffix is still owed (attach caps at
  // total_tokens - 1, so at least one token always remains).
  assert(total_tokens > seq.position);
  seq.phase = SequencePhase::kPrefilling;
  seq.prefill_remaining = total_tokens - seq.position;
}

std::size_t Engine::prefill_chunk(SequenceId id,
                                  std::span<const std::int32_t> ids) {
  Sequence& seq = *sequences_[id];
  assert(seq.phase == SequencePhase::kPrefilling);
  assert(!ids.empty() && ids.size() <= seq.prefill_remaining);
  const kv::PageAuditScope audit(id, "Engine::prefill_chunk");
  num::Tensor hidden = tf_.embed(ids);
  forward_prefill(seq, hidden, seq.position);
  seq.position += ids.size();
  seq.prefill_remaining -= ids.size();
  if (seq.prefill_remaining == 0) {
    seq.last_token = tf_.readout_argmax(hidden.row(ids.size() - 1));
  }
  return seq.prefill_remaining;
}

std::int32_t Engine::finish_prefill(SequenceId id) {
  Sequence& seq = *sequences_[id];
  assert(seq.phase == SequencePhase::kPrefilling &&
         seq.prefill_remaining == 0);
  seq.phase = SequencePhase::kDecoding;
  return seq.last_token;
}

std::int32_t Engine::decode_one(Sequence& seq, std::int32_t token,
                                attn::DecodeWorkStats& work) {
  assert(seq.phase == SequencePhase::kDecoding);
  const std::int32_t ids[1] = {token};
  num::Tensor hidden = tf_.embed(ids);
  // The step's attention spans position + 1 tokens (history plus the
  // token appended below). The route is a pure function of that length,
  // so it is identical across decode threads and preemption replay.
  const AttentionRoute route =
      policy_ == nullptr ? AttentionRoute::kSparse
                         : policy_->route(seq.position + 1);
  if (route == AttentionRoute::kDense) {
    ++work.dense_route_steps;
  } else {
    ++work.sparse_route_steps;
  }
  forward_decode(seq, hidden, route, work);
  seq.position += 1;
  ++seq.decode_step;
  const std::int32_t next = tf_.readout_argmax(hidden.row(0));
  seq.last_token = next;
  return next;
}

void Engine::refresh_selector_stats() {
  stats_.selector_runs = 0;
  stats_.selector_reuses = 0;
  for (const auto& s : sequences_) {
    if (s != nullptr) {
      stats_.selector_runs += s->selector.selector_runs();
      stats_.selector_reuses += s->selector.reuses();
    }
  }
}

std::int32_t Engine::decode(SequenceId id, std::int32_t token) {
  return decode_batch(std::span<const SequenceId>(&id, 1),
                      std::span<const std::int32_t>(&token, 1))[0];
}

std::vector<std::int32_t> Engine::decode_batch(
    std::span<const SequenceId> ids, std::span<const std::int32_t> tokens,
    ThreadPool* pool) {
  assert(ids.size() == tokens.size());
  std::vector<std::int32_t> next(ids.size(), -1);
  std::vector<attn::DecodeWorkStats> work(ids.size());
  const auto run = [&](std::size_t i) {
    // The audit scope is per-sequence and thread-local, so it tags pages
    // correctly whether this lambda runs inline or on a pool worker.
    const kv::PageAuditScope audit(ids[i], "Engine::decode");
    next[i] = decode_one(*sequences_[ids[i]], tokens[i], work[i]);
  };
  if (pool != nullptr && pool->size() > 1 && ids.size() > 1) {
    pool->parallel_for(ids.size(), run);
  } else {
    for (std::size_t i = 0; i < ids.size(); ++i) run(i);
  }
  // Merge after the join, in sequence order, so cumulative telemetry is
  // bit-identical to decoding the batch serially.
  for (const auto& w : work) {
    stats_.pages_visited += w.pages_visited;
    stats_.tokens_visited += w.tokens_visited;
    stats_.decode_dense_steps += w.dense_route_steps;
    stats_.decode_sparse_steps += w.sparse_route_steps;
    ++stats_.decode_steps;
  }
  refresh_selector_stats();
  return next;
}

std::vector<std::int32_t> Engine::generate(
    SequenceId id, std::span<const std::int32_t> prompt,
    std::size_t n_tokens) {
  std::vector<std::int32_t> out;
  out.reserve(n_tokens);
  std::int32_t tok = prefill(id, prompt);
  out.push_back(tok);
  for (std::size_t i = 1; i < n_tokens; ++i) {
    tok = decode(id, tok);
    out.push_back(tok);
  }
  sequence(id).generated = out;
  sequence(id).phase = SequencePhase::kFinished;
  return out;
}

double Engine::kv_device_bytes() const noexcept {
  return dense_alloc_.device_bytes_in_use() +
         stream_alloc_.device_bytes_in_use();
}

std::size_t Engine::total_pages_in_use() const noexcept {
  return dense_alloc_.pages_in_use() + stream_alloc_.pages_in_use();
}

kv::PageAllocator::Occupancy Engine::pool_occupancy() const noexcept {
  const kv::PageAllocator::Occupancy dense = dense_alloc_.occupancy();
  const kv::PageAllocator::Occupancy stream = stream_alloc_.occupancy();
  kv::PageAllocator::Occupancy sum;
  sum.capacity = dense.capacity + stream.capacity;
  sum.in_use = dense.in_use + stream.in_use;
  sum.free = dense.free + stream.free;
  sum.peak_in_use = dense.peak_in_use + stream.peak_in_use;
  sum.hot_in_use = dense.hot_in_use + stream.hot_in_use;
  sum.cold_in_use = dense.cold_in_use + stream.cold_in_use;
  return sum;
}

PageDemand Engine::estimate_request_pages(
    std::size_t total_tokens) const noexcept {
  const std::size_t full = dense_alloc_.pages_for_tokens(total_tokens);
  // A streaming head holds its sink pages plus the local ring, which spans
  // the window rounded up to pages plus the page being filled.
  const std::size_t stream_cap = std::min(
      stream_alloc_.pages_for_tokens(total_tokens),
      stream_alloc_.pages_for_tokens(cfg_.streaming.sink_tokens) +
          stream_alloc_.pages_for_tokens(cfg_.streaming.local_tokens) + 1);
  return {dense_slots_ * full, stream_slots_ * stream_cap};
}

PageDemand Engine::estimate_request_pages(
    std::size_t total_tokens, std::size_t cached_tokens) const noexcept {
  PageDemand d = estimate_request_pages(total_tokens);
  if (cached_tokens == 0) return d;
  // Only *full* blocks are shared (the tail is COW-copied, which does
  // allocate), and shared pages are already counted in pool occupancy —
  // a hit adds no new allocation for them.
  const std::size_t np = dense_alloc_.config().page_size;
  const std::size_t full_blocks = cached_tokens / np;
  const std::size_t dense_saved = dense_slots_ * full_blocks;
  d.dense_pages -= std::min(d.dense_pages, dense_saved);
  // Streaming heads only share blocks still retained at the attach depth
  // (kv/prefix_cache.hpp): sinks plus the locals inside the Λ window.
  const std::size_t sink_blocks =
      (cfg_.streaming.sink_tokens + np - 1) / np;
  std::size_t stream_shared = 0;
  for (std::size_t b = 0; b < full_blocks; ++b) {
    if (b < sink_blocks ||
        cached_tokens < cfg_.streaming.local_tokens + (b + 1) * np) {
      ++stream_shared;
    }
  }
  d.stream_pages -= std::min(d.stream_pages, stream_slots_ * stream_shared);
  return d;
}

std::size_t Engine::prefix_match_tokens(
    std::span<const std::int32_t> prompt) const {
  if (prefix_cache_ == nullptr || prompt.size() < 2) return 0;
  return prefix_cache_->match_tokens(prompt, prompt.size() - 1);
}

std::size_t Engine::attach_prefix(SequenceId id,
                                  std::span<const std::int32_t> prompt) {
  if (prefix_cache_ == nullptr || prompt.size() < 2) return 0;
  Sequence& seq = *sequences_[id];
  assert(seq.phase == SequencePhase::kWaiting && seq.position == 0);
  const kv::PageAuditScope audit(id, "Engine::attach_prefix");
  const std::size_t attached =
      prefix_cache_->attach(prompt, prompt.size() - 1, seq.cache);
  seq.position = attached;
  refresh_prefix_stats();
  return attached;
}

void Engine::insert_prefix(SequenceId id,
                           std::span<const std::int32_t> tokens) {
  if (prefix_cache_ == nullptr || tokens.empty()) return;
  Sequence& seq = *sequences_[id];
  assert(tokens.size() <= seq.cache.tokens());
  const kv::PageAuditScope audit(id, "Engine::insert_prefix");
  prefix_cache_->insert(tokens, seq.cache);
  refresh_prefix_stats();
}

std::size_t Engine::reclaim_prefix_pages(std::size_t target_pages) {
  if (prefix_cache_ == nullptr || target_pages == 0) return 0;
  const kv::PageAuditScope audit(kv::kAuditNoOwner,
                                 "Engine::reclaim_prefix_pages");
  const std::size_t freed = prefix_cache_->reclaim(target_pages);
  refresh_prefix_stats();
  return freed;
}

std::size_t Engine::prefix_cache_pages_held() const {
  return prefix_cache_ == nullptr ? 0 : prefix_cache_->pages_held();
}

void Engine::refresh_prefix_stats() {
  if (prefix_cache_ == nullptr) return;
  const kv::PrefixCacheStats s = prefix_cache_->stats();
  stats_.prefix_hits = s.hits;
  stats_.prefix_tokens_reused = s.tokens_reused;
  stats_.prefix_cow_copies = s.cow_copies;
  stats_.prefix_evictions = s.evictions;
}

}  // namespace lserve::serve
