// Clang Thread Safety Analysis annotations + the annotated locking
// primitives the rest of the tree must use.
//
// Two layers:
//
//   1. The attribute macros (CAPABILITY, GUARDED_BY, REQUIRES, ACQUIRE,
//      RELEASE, EXCLUDES, ...). Under clang they expand to
//      __attribute__((...)) and feed -Wthread-safety; under every other
//      compiler they expand to nothing, so gcc builds are byte-identical
//      with or without them.
//
//   2. Annotated wrappers — Mutex, MutexLock, CondVar — around the
//      std:: primitives. libstdc++'s std::mutex carries no capability
//      attributes, so GUARDED_BY(some_std_mutex) is rejected by the
//      analyzer; the wrappers are what makes the analysis actually run.
//      They are zero-cost: every member is the std:: primitive and every
//      method is an inline forward.
//
// Conventions (enforced by scripts/check_contract.py, documented in
// docs/CONCURRENCY.md):
//   - library code declares lserve::Mutex members, never bare std::mutex;
//   - every Mutex member guards at least one GUARDED_BY field;
//   - locking is RAII-only: MutexLock scopes, no bare .lock()/.unlock()
//     outside this header;
//   - private helpers that expect the lock held are suffixed _locked and
//     annotated REQUIRES(mu).
//
// Build with -DLSERVE_THREAD_SAFETY=ON under clang to turn analysis
// violations into compile errors (-Wthread-safety -Wthread-safety-beta
// -Werror).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define LSERVE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LSERVE_THREAD_ANNOTATION_(x)  // no-op off clang.
#endif

// A type that represents a lock (a "capability" in analysis terms).
#define CAPABILITY(x) LSERVE_THREAD_ANNOTATION_(capability(x))
// A RAII type that acquires a capability at construction and releases it
// at destruction.
#define SCOPED_CAPABILITY LSERVE_THREAD_ANNOTATION_(scoped_lockable)
// Data member readable/writable only with the given capability held.
#define GUARDED_BY(x) LSERVE_THREAD_ANNOTATION_(guarded_by(x))
// Pointer member whose pointee is protected by the given capability.
#define PT_GUARDED_BY(x) LSERVE_THREAD_ANNOTATION_(pt_guarded_by(x))
// Lock-ordering declarations (deadlock detection under -Wthread-safety-beta).
#define ACQUIRED_BEFORE(...) \
  LSERVE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  LSERVE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
// Function requires the capability held on entry (and does not release it).
#define REQUIRES(...) \
  LSERVE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  LSERVE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
// Function acquires/releases the capability.
#define ACQUIRE(...) \
  LSERVE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  LSERVE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  LSERVE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  LSERVE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  LSERVE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
// Function must NOT be called with the capability held (self-deadlock guard).
#define EXCLUDES(...) LSERVE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// Runtime assertion that the capability is held.
#define ASSERT_CAPABILITY(x) \
  LSERVE_THREAD_ANNOTATION_(assert_capability(x))
// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) LSERVE_THREAD_ANNOTATION_(lock_returned(x))
// Escape hatch; every use needs a justification comment, the same
// rule scripts/check_contract.py applies to lint suppressions.
#define NO_THREAD_SAFETY_ANALYSIS \
  LSERVE_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace lserve {

class CondVar;

/// Annotated std::mutex. Lock/unlock are exposed only to MutexLock and
/// CondVar — library code must hold it through a MutexLock scope.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

 private:
  friend class MutexLock;
  friend class CondVar;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

  std::mutex mu_;
};

/// RAII lock scope over a Mutex (the only sanctioned way to hold one).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over lserve::Mutex. No predicate overloads on
/// purpose: the analyzer cannot see into a predicate functor invoked by
/// the wait, so call sites spell the standard
///
///   MutexLock lock(mu_);
///   while (!condition) cv_.wait(mu_);
///
/// loop, which keeps every guarded read inside the annotated scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; re-acquires before returning.
  /// Spurious wakeups happen — always wait in a condition loop.
  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // the caller's MutexLock keeps ownership.
  }

  /// wait() with a deadline; returns std::cv_status::timeout if it passed.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lk, deadline);
    lk.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lserve
