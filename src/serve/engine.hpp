// The serving engine.
//
// One parameterized implementation covers LServe and every baseline: the
// EngineConfig decides KV precision and page geometry, the static head
// partition (streaming fraction), decode-stage dynamic page selection
// (flat or hierarchical, with reuse interval), and the prefill mask policy.
// Baseline presets live in baselines/baseline_engines.hpp; comparisons then
// vary only the policy, never the substrate — the paper's own methodology.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "attn/fused_attention.hpp"
#include "kv/memory_config.hpp"
#include "kv/page_allocator.hpp"
#include "kv/prefix_cache.hpp"
#include "model/model_config.hpp"
#include "model/transformer.hpp"
#include "serve/attention_policy.hpp"
#include "serve/sequence.hpp"
#include "sparse/head_classifier.hpp"

namespace lserve::serve {

class ThreadPool;

/// Everything that distinguishes one serving system from another.
struct EngineConfig {
  model::ModelConfig model;

  /// Dense-head page geometry: NP (page_size), NL (logical_page_size),
  /// KV precision. Streaming-head pages share NP but skip K_stats.
  kv::PageConfig dense_pages;
  kv::StreamingConfig streaming{/*sink_tokens=*/64, /*local_tokens=*/256};
  double streaming_fraction = 0.5;  ///< fraction of kv heads made streaming.

  bool dynamic_decode = true;   ///< decode-stage page pruning (dense heads).
  bool hierarchical = true;     ///< hierarchical vs flat page scoring.
  sparse::PageSelectorConfig selector;  ///< token budget etc.
  std::size_t reuse_interval = 4;       ///< selector reuse chunk C.

  attn::PrefillTiling tiling{/*tile_q=*/64, /*tile_k=*/64};
  /// Prefill long prompts in chunks of this many tokens, each attending
  /// to the already-cached history through the paged tables (bounds
  /// activation memory). 0 = monolithic prefill. For exact streaming-head
  /// semantics keep chunks <= streaming.local_tokens.
  std::size_t prefill_chunk_tokens = 0;
  bool dynamic_prefill = false;  ///< MInference-style prefill mask.
  sparse::DynamicPrefillConfig dynamic_prefill_cfg;
  std::size_t dynamic_prefill_min_tokens = 0;  ///< activate above this len.

  std::size_t pool_pages = 2048;  ///< initial page-pool capacity.
  std::uint64_t seed = 42;

  /// Cross-request KV reuse: radix prefix cache over the page pools
  /// (kv/prefix_cache.hpp). Off by default — when off, every path is
  /// bit-identical to the pre-cache engine.
  bool enable_prefix_cache = false;
  /// Consolidated memory knobs (kv/memory_config.hpp). The engine consumes
  /// memory.prefix_cache_pages (prefix-tree page budget, 0 = unbounded) and
  /// memory.hot_pages / memory.cold_bytes (the dense pool's two-tier spill
  /// config; hot_pages = 0 leaves tiering off and every path bit-identical
  /// to the untiered engine). memory.page_budget belongs to the scheduler
  /// (SchedulerConfig::memory) — kept in the same struct so argv/bench
  /// plumbing hands one object to both layers.
  kv::MemoryConfig memory;

  /// Per-step decode routing (serve/attention_policy.hpp). Null = run as
  /// configured (the kSparse route) — bit-identical to the pre-policy
  /// engine. Swappable at runtime via Engine::set_attention_policy().
  std::shared_ptr<const AttentionPolicy> policy;
};

/// Worst-case page-pool demand of a request, split by pool. Computed from
/// the head partition and streaming geometry; the scheduler compares it
/// against a page budget for admission control.
struct PageDemand {
  std::size_t dense_pages = 0;
  std::size_t stream_pages = 0;
  std::size_t total() const noexcept { return dense_pages + stream_pages; }
};

/// Cumulative engine telemetry; also feeds the GPU cost model.
struct EngineStats {
  std::size_t prefill_tokens = 0;
  std::size_t decode_steps = 0;
  /// Attention-policy gating decisions: decode steps routed to full-context
  /// dense reads vs the configured (sparse-capable) pipeline. They sum to
  /// decode_steps; with no policy attached every step counts as sparse.
  std::size_t decode_dense_steps = 0;
  std::size_t decode_sparse_steps = 0;
  std::size_t pages_visited = 0;   ///< decode attention page iterations.
  std::size_t tokens_visited = 0;  ///< decode attention token iterations.
  std::size_t selector_runs = 0;
  std::size_t selector_reuses = 0;
  std::size_t sequences_created = 0;   ///< create_sequence() calls.
  std::size_t sequences_released = 0;  ///< release_sequence() calls — equal
                                       ///< when no sequence is live.
  /// Prefix-cache counters (mirrored from PrefixCacheStats; all zero when
  /// the cache is disabled).
  std::size_t prefix_hits = 0;           ///< attaches reusing >= 1 token.
  std::size_t prefix_tokens_reused = 0;  ///< prompt tokens skipped.
  std::size_t prefix_cow_copies = 0;     ///< copy-on-write page copies.
  std::size_t prefix_evictions = 0;      ///< tree nodes evicted.
};

/// Long-sequence serving engine with unified sparse attention.
class Engine {
 public:
  explicit Engine(EngineConfig cfg);

  const EngineConfig& config() const noexcept { return cfg_; }
  const model::Transformer& transformer() const noexcept { return tf_; }
  const std::vector<kv::HeadKind>& head_kinds() const noexcept {
    return head_kinds_;
  }

  /// Overrides the offline head partition ([layers x kv_heads] row-major).
  void set_head_kinds(std::vector<kv::HeadKind> kinds);

  /// Swaps the decode routing policy (null = run as configured). Takes
  /// effect at the next decode step; safe between decode_batch calls, not
  /// during one. Route flips mid-sequence are safe: the reusable selector
  /// re-scores whenever its cached chunk goes stale, so a sparse step
  /// after a dense stretch never reads stale page choices.
  void set_attention_policy(std::shared_ptr<const AttentionPolicy> policy) {
    policy_ = std::move(policy);
  }
  const AttentionPolicy* attention_policy() const noexcept {
    return policy_.get();
  }

  /// Runs the synthetic-calibration gate measurement (DESIGN.md §2) and
  /// re-partitions heads at cfg.streaming_fraction. Returns the gates.
  std::vector<float> calibrate_head_kinds();

  /// Creates an empty sequence; caller feeds it via prefill()/decode().
  SequenceId create_sequence();
  void release_sequence(SequenceId id);
  Sequence& sequence(SequenceId id) { return *sequences_[id]; }
  const Sequence& sequence(SequenceId id) const { return *sequences_[id]; }

  /// Prefills `ids` and returns the first generated token (greedy).
  /// Convenience wrapper over the resumable API below, chunking internally
  /// by cfg.prefill_chunk_tokens (0 = monolithic).
  std::int32_t prefill(SequenceId id, std::span<const std::int32_t> ids);

  /// Resumable incremental prefill, driven chunk-by-chunk by the scheduler
  /// so one long prompt never monopolizes an iteration:
  ///
  ///   begin_prefill(id, n);          // kWaiting -> kPrefilling
  ///   while (prefill_chunk(id, next_ids) > 0) { ... other work ... }
  ///   first_token = finish_prefill(id);  // kPrefilling -> kDecoding
  ///
  /// Chunks run through the same fused_chunked_prefill path as prefill()
  /// (each chunk attends to the already-cached history), so any chunking
  /// schedule is bit-identical to a monolithic prefill.
  void begin_prefill(SequenceId id, std::size_t total_tokens);

  /// Feeds the next chunk of prompt tokens; returns tokens still owed.
  /// The final chunk (return value 0) also computes the first generated
  /// token, which finish_prefill() returns.
  std::size_t prefill_chunk(SequenceId id, std::span<const std::int32_t> ids);

  /// Completes an incremental prefill (all tokens fed) and returns the
  /// first generated token (greedy).
  std::int32_t finish_prefill(SequenceId id);

  /// Appends `token` and returns the next token (one decode step).
  std::int32_t decode(SequenceId id, std::int32_t token);

  /// One decode step for every sequence in `ids` (feeding `tokens[i]` to
  /// `ids[i]`), returning the next token per sequence in input order.
  /// With a non-null `pool` the per-sequence forwards run concurrently;
  /// results and stats are bit-identical to the serial path: each sequence
  /// only touches its own state plus the (thread-safe) page allocators,
  /// and per-call DecodeWorkStats scratch counters are merged into
  /// EngineStats in sequence order after the join.
  ///
  /// Exception contract: if any per-sequence forward throws (page pool
  /// exhausted at its hard cap, allocation failure), the first exception
  /// propagates after the join and the sequences of this batch are left
  /// mid-step — there is no way to resume a half-forwarded sequence, so
  /// callers must treat the engine as poisoned and stop serving from it.
  std::vector<std::int32_t> decode_batch(std::span<const SequenceId> ids,
                                         std::span<const std::int32_t> tokens,
                                         ThreadPool* pool = nullptr);

  /// Convenience: prefill + n greedy decode steps.
  std::vector<std::int32_t> generate(SequenceId id,
                                     std::span<const std::int32_t> prompt,
                                     std::size_t n_tokens);

  const EngineStats& stats() const noexcept { return stats_; }
  kv::PageAllocator& dense_allocator() noexcept { return dense_alloc_; }
  kv::PageAllocator& stream_allocator() noexcept { return stream_alloc_; }

  /// True when the dense pool runs the two-tier (hot RAM + cold spill)
  /// store (EngineConfig::memory.hot_pages > 0).
  bool tiered() const noexcept { return dense_alloc_.tiered(); }
  /// Tier telemetry of the dense pool (all-zero when tiering is off).
  kv::TierStats tier_stats() const noexcept {
    return dense_alloc_.tier_stats();
  }
  /// Hot-resident pages across both pools — the admission-control view
  /// under tiering: cold pages occupy spill-file bytes, not RAM, so the
  /// scheduler charges only the hot tier against its page budget.
  /// Equals total_pages_in_use() when tiering is off.
  std::size_t hot_pages_in_use() const noexcept {
    return dense_alloc_.hot_pages_in_use() + stream_alloc_.hot_pages_in_use();
  }

  /// Device bytes currently held by KV pages (memory-saving accounting).
  double kv_device_bytes() const noexcept;

  /// LSERVE_AUDIT builds: per-page leak attribution across both pools
  /// (see kv/page_auditor.hpp). Empty when clean or when auditing is
  /// compiled out.
  std::string audit_report() const {
    return dense_alloc_.audit_report() + stream_alloc_.audit_report();
  }

  /// Pages currently held across both pools (admission-control occupancy).
  std::size_t total_pages_in_use() const noexcept;

  /// Combined occupancy snapshot of both pools (dense + streaming fields
  /// summed; each pool snapshotted coherently under its own lock) — what
  /// the scheduler publishes as the page-pool gauges every step.
  kv::PageAllocator::Occupancy pool_occupancy() const noexcept;

  /// Worst-case pages a request totalling `total_tokens` (prompt +
  /// max_new_tokens) can occupy, given the current head partition.
  /// Streaming heads are capped by their sink + local-window geometry.
  PageDemand estimate_request_pages(std::size_t total_tokens) const noexcept;

  /// As above, but discounting pages a prefix-cache attach at depth
  /// `cached_tokens` would share instead of allocate — the admission-side
  /// view that lets a cache hit count only its uncached suffix.
  PageDemand estimate_request_pages(std::size_t total_tokens,
                                    std::size_t cached_tokens) const noexcept;

  /// Prompt tokens an attach_prefix() for `prompt` would reuse right now
  /// (0 when the cache is disabled). Capped at prompt.size() - 1 so at
  /// least one token is always prefilled (the first generated token comes
  /// from its readout). Peek only — no refcounts or counters move.
  std::size_t prefix_match_tokens(
      std::span<const std::int32_t> prompt) const;

  /// Maps the longest feasible cached prefix of `prompt` into sequence
  /// `id`'s KV cache and advances its position past the reused tokens.
  /// Returns the tokens reused; the caller prefills only the suffix.
  /// Must run on a fresh sequence (kWaiting, position 0), before
  /// begin_prefill(). No-op (0) when the cache is disabled.
  std::size_t attach_prefix(SequenceId id,
                            std::span<const std::int32_t> prompt);

  /// Shares sequence `id`'s KV pages for `tokens` — which must be its
  /// PREFILL-produced prefix (prompt/replay feed up to the prefilled
  /// position), never decode-produced tokens, whose K/V differ numerically
  /// from a prefill of the same ids — into the prefix cache. Call at
  /// terminal/preemption points, after the last append and before
  /// release_sequence(). No-op when disabled.
  void insert_prefix(SequenceId id, std::span<const std::int32_t> tokens);

  /// Evicts prefix-cache entries until ~`target_pages` pages returned to
  /// the pools (see PrefixCache::reclaim). Returns pages actually freed;
  /// 0 when the cache is disabled.
  std::size_t reclaim_prefix_pages(std::size_t target_pages);

  /// Page references the prefix cache holds (0 when disabled) — the
  /// intentional steady-state occupancy admission and audit-quiescence
  /// checks must discount.
  std::size_t prefix_cache_pages_held() const;

  /// Null when EngineConfig::enable_prefix_cache is off.
  const kv::PrefixCache* prefix_cache() const noexcept {
    return prefix_cache_.get();
  }

  /// Upper bound on new pages one decode step of one sequence can allocate
  /// (every head crosses a page boundary at once, since token counts are
  /// uniform across heads).
  std::size_t decode_step_page_bound() const noexcept {
    return cfg_.model.layers * cfg_.model.kv_heads;
  }

 private:
  /// Runs all transformer layers over `hidden` ([n x hidden]) in prefill
  /// mode, appending K/V to `seq`'s caches. `pos0` is the absolute position
  /// of row 0.
  void forward_prefill(Sequence& seq, num::Tensor& hidden, std::size_t pos0);
  /// One transformer forward in decode mode, on the given attention
  /// route. Work counters go to `work`, never to stats_ — callers merge,
  /// so concurrent decode_one calls on distinct sequences are race-free.
  void forward_decode(Sequence& seq, num::Tensor& hidden,
                      AttentionRoute route, attn::DecodeWorkStats& work);

  /// Decodes one token for `seq` without touching stats_ (thread-safe for
  /// distinct sequences).
  std::int32_t decode_one(Sequence& seq, std::int32_t token,
                          attn::DecodeWorkStats& work);

  /// Recomputes the selector run/reuse totals from all live sequences.
  void refresh_selector_stats();

  /// Mirrors PrefixCacheStats into stats_ (no-op when disabled).
  void refresh_prefix_stats();

  /// (Re)builds the prefix cache for the current head partition; any
  /// partition change invalidates every cached page set.
  void rebuild_prefix_cache();

  attn::FusedPrefillConfig prefill_config(std::size_t n_tokens) const;
  attn::FusedDecodeConfig decode_config(AttentionRoute route) const;

  /// Recounts dense_slots_/stream_slots_ from head_kinds_ (call after any
  /// partition change).
  void recount_head_slots() noexcept;

  EngineConfig cfg_;
  model::Transformer tf_;
  kv::PageAllocator dense_alloc_;
  kv::PageAllocator stream_alloc_;
  /// Declared after the allocators (destroyed first) so its destructor can
  /// still release the page references it holds.
  std::unique_ptr<kv::PrefixCache> prefix_cache_;
  std::vector<kv::HeadKind> head_kinds_;
  std::size_t dense_slots_ = 0;   ///< dense entries in head_kinds_.
  std::size_t stream_slots_ = 0;  ///< streaming entries in head_kinds_.
  std::vector<std::unique_ptr<Sequence>> sequences_;
  EngineStats stats_;
  /// Decode routing policy; null routes every step kSparse (as
  /// configured). Read per decode step from pool workers — treat as
  /// frozen during a decode_batch call.
  std::shared_ptr<const AttentionPolicy> policy_;
};

}  // namespace lserve::serve
