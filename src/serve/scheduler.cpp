#include "serve/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lserve::serve {

Scheduler::Scheduler(Engine& engine, SchedulerConfig cfg)
    : engine_(engine), cfg_(cfg) {
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  if (cfg_.decode_threads != 1) {
    pool_ = std::make_unique<ThreadPool>(cfg_.decode_threads);
  }
}

Scheduler::Scheduler(Engine& engine, std::size_t max_batch,
                     std::size_t decode_threads)
    : Scheduler(engine,
                SchedulerConfig{max_batch, decode_threads,
                                /*page_budget=*/0}) {}

bool Scheduler::in_flight(std::uint64_t id) const noexcept {
  for (const Pending& p : waiting_) {
    if (p.req.request_id == id) return true;
  }
  for (const Running& r : running_) {
    if (r.pend.req.request_id == id) return true;
  }
  return false;
}

std::uint64_t Scheduler::submit(Request req) {
  if (req.prompt.empty()) {
    throw std::invalid_argument("Scheduler::submit: empty prompt");
  }
  if (req.request_id == 0) {
    req.request_id = next_id_++;
  } else {
    if (in_flight(req.request_id)) {
      throw std::invalid_argument(
          "Scheduler::submit: request_id collides with an in-flight "
          "request");
    }
    // Never auto-assign an id at or below a user-supplied one.
    next_id_ = std::max(next_id_, req.request_id + 1);
  }
  const std::uint64_t id = req.request_id;
  Pending pend;
  pend.submit_step = stats_.steps;
  pend.req = std::move(req);
  waiting_.push_back(std::move(pend));
  return id;
}

void Scheduler::admit() {
  while (running_.size() < cfg_.max_batch && !waiting_.empty()) {
    // KV-memory admission control: the front request's worst-case
    // footprint (prompt + max_new_tokens, across both pools) must fit on
    // top of current occupancy. FCFS — no skipping past a deferred
    // request. When nothing is running the front request is admitted
    // unconditionally (the budget is soft; the pool grows on demand), so
    // an over-budget request runs solo instead of deadlocking the queue.
    const Pending& front = waiting_.front();
    if (cfg_.page_budget > 0 && !running_.empty()) {
      const std::size_t need =
          engine_
              .estimate_request_pages(front.req.prompt.size() +
                                      front.req.max_new_tokens)
              .total();
      // Reserve one step of worst-case decode growth for the sequences
      // already running — the same term preempt_for_memory() enforces —
      // so a freshly admitted request is not immediately preempted back
      // out (admit/preempt thrash that would discard its prefill work).
      std::size_t decoding = 0;
      for (const Running& run : running_) {
        if (run.phase == SequencePhase::kDecoding &&
            run.output.size() < run.pend.req.max_new_tokens) {
          ++decoding;
        }
      }
      const std::size_t headroom = decoding * engine_.decode_step_page_bound();
      if (engine_.total_pages_in_use() + headroom + need >
          cfg_.page_budget) {
        ++stats_.deferred_admissions;
        break;
      }
    }
    Running run;
    run.pend = std::move(waiting_.front());
    waiting_.pop_front();
    run.seq = engine_.create_sequence();
    engine_.begin_prefill(run.seq, run.pend.feed().size());
    run.phase = SequencePhase::kPrefilling;
    run.admit_order = admit_counter_++;
    ++stats_.admitted;
    running_.push_back(std::move(run));
  }
}

void Scheduler::advance_prefill() {
  // At most one prefill chunk per iteration, for the oldest-admitted
  // prefilling sequence, so prefill work is rationed against the decode
  // batch instead of monopolizing the step.
  Running* target = nullptr;
  for (Running& run : running_) {
    if (run.phase != SequencePhase::kPrefilling) continue;
    if (target == nullptr || run.admit_order < target->admit_order) {
      target = &run;
    }
  }
  if (target == nullptr) return;

  const std::vector<std::int32_t>& feed = target->pend.feed();
  const std::size_t chunk = engine_.config().prefill_chunk_tokens;
  const std::size_t remaining = feed.size() - target->prefill_pos;
  const std::size_t count = chunk == 0 ? remaining : std::min(chunk, remaining);
  const std::span<const std::int32_t> ids(feed.data() + target->prefill_pos,
                                          count);
  const std::size_t left = engine_.prefill_chunk(target->seq, ids);
  target->prefill_pos += count;
  ++stats_.prefill_chunks;
  if (left > 0) return;

  const std::int32_t first = engine_.finish_prefill(target->seq);
  target->phase = SequencePhase::kDecoding;
  if (target->pend.resumed.empty()) {
    target->output.push_back(first);
    target->pend.first_token_step = stats_.steps;
  } else {
    // Re-prefill after preemption recomputed the KV state of the earlier
    // partial run; the readout of the last fed token re-derives the last
    // generated token, so restore the already-produced output instead of
    // appending. (A later preemption rebuilds resumed from the current
    // output, so moving it out is safe.)
    target->output = std::move(target->pend.resumed);
    target->pend.resumed.clear();
  }
}

void Scheduler::preempt(std::size_t slot) {
  Running run = std::move(running_[slot]);
  running_[slot] = std::move(running_.back());
  running_.pop_back();
  engine_.sequence(run.seq).phase = SequencePhase::kPreempted;
  engine_.release_sequence(run.seq);

  Pending pend = std::move(run.pend);
  ++pend.preemptions;
  ++stats_.preemptions;
  if (run.phase == SequencePhase::kDecoding && !run.output.empty()) {
    // Recompute preemption: replay every token that was fed to the engine
    // (the prompt plus all generated tokens but the last, which had not
    // been fed back yet) and restore the generated output on re-admission.
    pend.fed = pend.req.prompt;
    pend.fed.insert(pend.fed.end(), run.output.begin(),
                    run.output.end() - 1);
    pend.resumed = std::move(run.output);
  }
  // Front of the queue: the preempted request re-admits first once memory
  // frees (FCFS among multiple preemptions — newest victims are pushed
  // first and end up behind earlier-admitted ones).
  waiting_.push_front(std::move(pend));
}

void Scheduler::preempt_for_memory() {
  if (cfg_.page_budget == 0) return;
  const std::size_t bound = engine_.decode_step_page_bound();
  while (running_.size() > 1) {
    std::size_t decoding = 0;
    for (const Running& run : running_) {
      if (run.phase == SequencePhase::kDecoding &&
          run.output.size() < run.pend.req.max_new_tokens) {
        ++decoding;
      }
    }
    if (decoding == 0) return;
    // Worst case, every decoding sequence crosses a page boundary on every
    // head this step; preempt until that fits under the budget (or only
    // one sequence is left — the oldest is never preempted, which
    // guarantees forward progress and a completing drain()).
    if (engine_.total_pages_in_use() + decoding * bound <=
        cfg_.page_budget) {
      return;
    }
    std::size_t victim = 0;
    for (std::size_t i = 1; i < running_.size(); ++i) {
      if (running_[i].admit_order > running_[victim].admit_order) victim = i;
    }
    preempt(victim);
  }
}

bool Scheduler::step() {
  if (poisoned_) {
    throw std::logic_error(
        "Scheduler: a decode batch threw; sequences are mid-step and the "
        "engine cannot keep serving");
  }
  ++stats_.steps;
  admit();
  if (running_.empty()) {
    assert(waiting_.empty() && "admit() always admits when nothing runs");
    return false;
  }
  advance_prefill();
  preempt_for_memory();

  // Gather this iteration's decode batch: every decoding sequence still
  // under budget, including one whose prefill completed this very step.
  // (Note prefill is rationed at one sequence per iteration even with
  // monolithic chunks, so simultaneously admitted requests start decoding
  // on consecutive steps, not all at once.)
  std::vector<std::size_t> slots;
  std::vector<SequenceId> seqs;
  std::vector<std::int32_t> last;
  slots.reserve(running_.size());
  seqs.reserve(running_.size());
  last.reserve(running_.size());
  for (std::size_t i = 0; i < running_.size(); ++i) {
    const Running& run = running_[i];
    if (run.phase != SequencePhase::kDecoding) continue;
    if (run.output.size() >= run.pend.req.max_new_tokens) continue;
    slots.push_back(i);
    seqs.push_back(run.seq);
    last.push_back(run.output.back());
  }
  std::vector<std::int32_t> next;
  try {
    next = engine_.decode_batch(std::span<const SequenceId>(seqs),
                                std::span<const std::int32_t>(last),
                                pool_.get());
  } catch (...) {
    poisoned_ = true;
    throw;
  }
  for (std::size_t j = 0; j < slots.size(); ++j) {
    running_[slots[j]].output.push_back(next[j]);
  }

  // Retire finished sequences (swap-erase keeps iteration simple).
  for (std::size_t i = 0; i < running_.size();) {
    Running& run = running_[i];
    if (run.phase == SequencePhase::kDecoding &&
        run.output.size() >= run.pend.req.max_new_tokens) {
      RequestResult result;
      result.request_id = run.pend.req.request_id;
      result.prompt_tokens = run.pend.req.prompt.size();
      result.decode_steps = run.output.size() - 1;
      result.preemptions = run.pend.preemptions;
      result.submit_step = run.pend.submit_step;
      result.first_token_step = run.pend.first_token_step;
      result.finish_step = stats_.steps;
      result.output = std::move(run.output);
      results_.push_back(std::move(result));
      engine_.release_sequence(run.seq);
      running_[i] = std::move(running_.back());
      running_.pop_back();
    } else {
      ++i;
    }
  }
  return !running_.empty() || !waiting_.empty();
}

std::vector<RequestResult> Scheduler::drain() {
  while (step()) {
  }
  return results_;
}

}  // namespace lserve::serve
