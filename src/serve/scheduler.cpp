#include "serve/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#if LSERVE_AUDIT_ENABLED
#include <cstdio>
#include <cstdlib>
#endif

namespace lserve::serve {

const char* to_string(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::kFinished:
      return "FINISHED";
    case RequestStatus::kCancelled:
      return "CANCELLED";
    case RequestStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

Scheduler::Scheduler(Engine& engine, SchedulerConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)) {
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  if (cfg_.decode_threads != 1) {
    pool_ = std::make_unique<ThreadPool>(cfg_.decode_threads);
  }
  // The scheduler carries the policy handle to the engine; route choices
  // themselves happen inside Engine::decode_batch, per step per sequence.
  if (cfg_.policy != nullptr) {
    engine_.set_attention_policy(cfg_.policy);
  }
  metrics_ = cfg_.metrics;
  tracer_ = cfg_.tracer;
  if (metrics_ != nullptr || tracer_ != nullptr) {
    clock_ = cfg_.clock != nullptr
                 ? cfg_.clock
                 : std::make_shared<const obs::MonotonicClock>();
  }
  if (metrics_ != nullptr) {
    register_metrics();
    publish_step_metrics();  // gauges are valid before the first step.
  }
#if LSERVE_AUDIT_ENABLED
  // Pages the prefix cache holds are intentional steady-state occupancy,
  // not a leak; the quiescence check discounts them on both sides.
  audit_baseline_pages_ =
      engine_.total_pages_in_use() - engine_.prefix_cache_pages_held();
#endif
}

void Scheduler::register_metrics() {
  obs::MetricsRegistry& r = *metrics_;
  const std::vector<double> lat = obs::default_latency_buckets_seconds();
  m_.queue_wait = &r.histogram(
      "lserve_request_queue_wait_seconds",
      "Wall time from submit() to first admission into the batch.", lat);
  m_.ttft = &r.histogram(
      "lserve_request_ttft_seconds",
      "Wall time from submit() to the first generated token.", lat);
  m_.tpot = &r.histogram(
      "lserve_request_tpot_seconds",
      "Wall time between consecutive generated tokens of one request "
      "(includes preemption stalls, as a streaming client observes them).",
      lat);
  m_.e2e = &r.histogram(
      "lserve_request_e2e_seconds",
      "Wall time from submit() to the terminal result (any status).", lat);
  m_.submitted = &r.counter("lserve_requests_submitted_total",
                            "Requests accepted by submit().");
  m_.finished = &r.counter("lserve_requests_finished_total",
                           "Requests that produced max_new_tokens.");
  m_.cancelled = &r.counter("lserve_requests_cancelled_total",
                            "Requests terminated by cancel().");
  m_.deadline_exceeded =
      &r.counter("lserve_requests_deadline_exceeded_total",
                 "Requests terminated by a step-count deadline.");
  m_.steps = &r.counter("lserve_scheduler_steps_total",
                        "Scheduler iterations (Scheduler::step calls).");
  m_.preemptions =
      &r.counter("lserve_preemptions_total",
                 "Sequences released under memory pressure and re-queued.");
  m_.deferrals = &r.counter(
      "lserve_admission_deferrals_total",
      "Steps on which the front request did not fit the page budget.");
  m_.prefill_chunks = &r.counter("lserve_prefill_chunks_total",
                                 "Prefill chunks scheduled (at most one "
                                 "per step).");
  m_.prefix_hits = &r.counter(
      "lserve_prefix_hits_total",
      "Admissions that attached a cached prefix from the radix cache.");
  m_.prefix_tokens =
      &r.counter("lserve_prefix_tokens_reused_total",
                 "Prompt tokens skipped at admission via the prefix cache.");
  m_.route_dense = &r.counter(
      "lserve_decode_route_steps_total{route=\"dense\"}",
      "Per-sequence decode steps routed dense vs. sparse by the attention "
      "policy.");
  m_.route_sparse = &r.counter(
      "lserve_decode_route_steps_total{route=\"sparse\"}",
      "Per-sequence decode steps routed dense vs. sparse by the attention "
      "policy.");
  m_.seq_running = &r.gauge("lserve_sequences_running",
                            "Sequences admitted to the batch (prefilling "
                            "or decoding).");
  m_.seq_waiting = &r.gauge("lserve_sequences_waiting",
                            "Requests queued behind admission control.");
  m_.requests_live = &r.gauge(
      "lserve_requests_live",
      "Requests submitted but not yet terminal (includes inbox).");
  m_.pages_in_use = &r.gauge("lserve_kv_pages_in_use",
                             "KV pages allocated across both engine pools.");
  m_.pages_free = &r.gauge("lserve_kv_pages_free",
                           "KV pages on the free lists of both engine "
                           "pools (the pools still grow on demand).");
  m_.pages_capacity = &r.gauge("lserve_kv_pages_capacity",
                               "KV page slots created across both engine "
                               "pools.");
  m_.prefix_pages = &r.gauge("lserve_prefix_cache_pages_held",
                             "KV pages pinned by the radix prefix cache.");
  m_.pages_hot = &r.gauge(
      "lserve_kv_pages_hot",
      "KV pages resident in the hot (RAM) tier across both pools.");
  m_.pages_cold = &r.gauge(
      "lserve_kv_pages_cold",
      "KV pages demoted to the cold spill tier (dense pool).");
  m_.cold_bytes = &r.gauge("lserve_kv_cold_bytes",
                           "Bytes occupied in the cold spill store.");
  m_.tier_demotions =
      &r.counter("lserve_tier_demotions_total",
                 "Pages serialized out of the hot pool into the cold tier.");
  m_.tier_pin_promotions = &r.counter(
      "lserve_tier_pin_promotions_total",
      "Cold pages promoted synchronously on a pin miss (prefetch missed).");
  m_.tier_prefetch_promotions = &r.counter(
      "lserve_tier_prefetch_promotions_total",
      "Cold pages promoted by the prefetcher before any pin needed them.");
  m_.tier_prefetch_requests =
      &r.counter("lserve_tier_prefetch_requests_total",
                 "Cold pages enqueued for asynchronous promotion.");
}

void Scheduler::publish_step_metrics() {
  if (metrics_ == nullptr) return;
  m_.seq_running->set(static_cast<double>(running_.size()));
  m_.seq_waiting->set(static_cast<double>(waiting_.size()));
  m_.requests_live->set(static_cast<double>(live_requests()));
  const kv::PageAllocator::Occupancy occ = engine_.pool_occupancy();
  m_.pages_in_use->set(static_cast<double>(occ.in_use));
  m_.pages_free->set(static_cast<double>(occ.free));
  m_.pages_capacity->set(static_cast<double>(occ.capacity));
  m_.prefix_pages->set(
      static_cast<double>(engine_.prefix_cache_pages_held()));
  m_.pages_hot->set(static_cast<double>(occ.hot_in_use));
  m_.pages_cold->set(static_cast<double>(occ.cold_in_use));
  const kv::TierStats tier = engine_.tier_stats();
  m_.cold_bytes->set(static_cast<double>(tier.cold_bytes_in_use));
  if (tier.demotions > seen_tier_.demotions) {
    m_.tier_demotions->inc(tier.demotions - seen_tier_.demotions);
  }
  if (tier.pin_promotions > seen_tier_.pin_promotions) {
    m_.tier_pin_promotions->inc(tier.pin_promotions -
                                seen_tier_.pin_promotions);
  }
  if (tier.prefetch_promotions > seen_tier_.prefetch_promotions) {
    m_.tier_prefetch_promotions->inc(tier.prefetch_promotions -
                                     seen_tier_.prefetch_promotions);
  }
  if (tier.prefetch_requests > seen_tier_.prefetch_requests) {
    m_.tier_prefetch_requests->inc(tier.prefetch_requests -
                                   seen_tier_.prefetch_requests);
  }
  seen_tier_ = tier;
  // Route decisions happen inside Engine::decode_batch; mirror the delta
  // of its cumulative totals into per-route counters once per step.
  const EngineStats& es = engine_.stats();
  if (es.decode_dense_steps > seen_dense_steps_) {
    m_.route_dense->inc(es.decode_dense_steps - seen_dense_steps_);
    seen_dense_steps_ = es.decode_dense_steps;
  }
  if (es.decode_sparse_steps > seen_sparse_steps_) {
    m_.route_sparse->inc(es.decode_sparse_steps - seen_sparse_steps_);
    seen_sparse_steps_ = es.decode_sparse_steps;
  }
}

Scheduler::Scheduler(Engine& engine, std::size_t max_batch,
                     std::size_t decode_threads)
    : Scheduler(engine,
                SchedulerConfig{max_batch, decode_threads,
                                /*memory=*/{},
                                /*default_deadline_steps=*/0,
                                /*policy=*/nullptr,
                                /*metrics=*/nullptr,
                                /*tracer=*/nullptr,
                                /*clock=*/nullptr}) {}

std::uint64_t Scheduler::submit(Request req) {
  if (req.prompt.empty()) {
    throw std::invalid_argument("Scheduler::submit: empty prompt");
  }
  std::uint64_t id = 0;
  {
    MutexLock lock(mu_);
    if (req.request_id == 0) {
      req.request_id = next_id_++;
    } else {
      if (live_ids_.count(req.request_id) != 0) {
        throw std::invalid_argument(
            "Scheduler::submit: request_id collides with an in-flight "
            "request");
      }
      // Never auto-assign an id at or below a user-supplied one.
      next_id_ = std::max(next_id_, req.request_id + 1);
    }
    id = req.request_id;
    live_ids_.insert(id);
    Pending pend;
    pend.req = std::move(req);
    // Wall-clock submit stamp for queue-wait/TTFT/e2e. now_ns() and the
    // counter bump are both safe off the scheduler thread (atomic reads/
    // adds); mu_ stays a leaf lock either way.
    if (metrics_ != nullptr) pend.submit_ns = now_ns();
    submit_inbox_.push_back(std::move(pend));
  }
  if (metrics_ != nullptr) m_.submitted->inc();
  work_cv_.notify_all();
  return id;
}

bool Scheduler::cancel(std::uint64_t request_id, RequestStatus status) {
  if (status == RequestStatus::kFinished) {
    throw std::invalid_argument(
        "Scheduler::cancel: kFinished is not a cancellation status");
  }
  {
    MutexLock lock(mu_);
    if (live_ids_.count(request_id) == 0) return false;
    cancel_inbox_.emplace_back(request_id, status);
  }
  work_cv_.notify_all();
  return true;
}

void Scheduler::request_stop() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
}

bool Scheduler::stop_requested() const {
  MutexLock lock(mu_);
  return stop_;
}

std::size_t Scheduler::live_requests() const {
  MutexLock lock(mu_);
  return live_ids_.size();
}

bool Scheduler::wait_for_work(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(mu_);
  // Explicit condition loop (not a predicate overload) so the analyzer
  // sees every guarded read under the lock; see thread_annotations.hpp.
  while (!stop_ && submit_inbox_.empty() && cancel_inbox_.empty()) {
    if (work_cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
      break;
    }
  }
  return !stop_ && (!submit_inbox_.empty() || !cancel_inbox_.empty());
}

void Scheduler::drain_inboxes(
    std::vector<std::pair<std::uint64_t, RequestStatus>>& cancels) {
  MutexLock lock(mu_);
  while (!submit_inbox_.empty()) {
    Pending pend = std::move(submit_inbox_.front());
    submit_inbox_.pop_front();
    // "Steps completed when submitted": the request was handed over
    // before the current step began, so it is one behind the counter the
    // caller of step() just incremented. Single-threaded callers get the
    // exact pre-inbox semantics; cross-thread callers get a stamp that
    // never races the step counter.
    pend.submit_step = stats_.steps - 1;
    waiting_.push_back(std::move(pend));
  }
  cancels.swap(cancel_inbox_);
}

std::size_t Scheduler::effective_deadline(
    const Pending& pend) const noexcept {
  return pend.req.deadline_steps != 0 ? pend.req.deadline_steps
                                      : cfg_.default_deadline_steps;
}

void Scheduler::finish(Pending pend, std::vector<std::int32_t> output,
                       RequestStatus status) {
  // Tokens restored by a preemption replay can still be undelivered here
  // (preemption runs before the step's delivery pass); stream them now so
  // the terminal result never reports a token on_token did not see.
  if (pend.req.on_token) {
    for (std::size_t i = pend.delivered; i < output.size(); ++i) {
      pend.req.on_token(pend.req.request_id, output[i], i);
    }
  }
  RequestResult result;
  result.request_id = pend.req.request_id;
  result.status = status;
  result.prompt_tokens = pend.req.prompt.size();
  result.decode_steps = output.empty() ? 0 : output.size() - 1;
  result.preemptions = pend.preemptions;
  result.submit_step = pend.submit_step;
  result.first_token_step = pend.first_token_step;
  result.finish_step = stats_.steps;
  result.output = std::move(output);
  switch (status) {
    case RequestStatus::kFinished:
      break;
    case RequestStatus::kCancelled:
      ++stats_.cancelled;
      break;
    case RequestStatus::kDeadlineExceeded:
      ++stats_.deadline_exceeded;
      break;
  }
  if (metrics_ != nullptr) {
    m_.e2e->observe(static_cast<double>(now_ns() - pend.submit_ns) * 1e-9);
    switch (status) {
      case RequestStatus::kFinished:
        m_.finished->inc();
        break;
      case RequestStatus::kCancelled:
        m_.cancelled->inc();
        break;
      case RequestStatus::kDeadlineExceeded:
        m_.deadline_exceeded->inc();
        break;
    }
  }
  const std::uint64_t id = pend.req.request_id;
  results_.push_back(std::move(result));
  if (pend.req.on_done) {
    // No lock held: the callback may call submit()/cancel() freely.
    pend.req.on_done(results_.back());
  }
  // The id stays live until after on_done returns, so a caller that
  // watches live_requests() reach zero (e.g. HttpServer::stop) knows
  // every terminal callback has already run. A collision re-submit of
  // the same id is therefore still rejected from inside its own on_done.
  MutexLock lock(mu_);
  live_ids_.erase(id);
}

void Scheduler::insert_prefix(const Running& run) {
  // Only the PREFILLED extent is attachable prefix: feed() tokens up to
  // the sequence position (all of them once prefill completed, a prefix
  // when preempted/cancelled mid-prefill). Tokens appended during decode
  // are deliberately excluded — the sparse decode path writes numerically
  // different K/V than a prefill of the same token would (different
  // sparsity policy feeds different hidden states at deeper layers), so
  // caching them would break bit-exactness against a cold prefill. A
  // finished turn's reply becomes cacheable on the NEXT turn, when it is
  // part of that request's prefilled prompt.
  const std::size_t position = engine_.sequence(run.seq).position;
  const std::size_t prefilled = std::min(position, run.pend.feed().size());
  if (prefilled == 0) return;
  obs::StepTraceBuilder::Span span = step_trace_.span("prefix_insert");
  engine_.insert_prefix(
      run.seq, std::span<const std::int32_t>(run.pend.feed().data(),
                                             prefilled));
}

void Scheduler::terminate_running(std::size_t slot, RequestStatus status) {
  Running run = std::move(running_[slot]);
  running_[slot] = std::move(running_.back());
  running_.pop_back();
  // Pages are reclaimed exactly like preemption, but the request is
  // terminal instead of re-queued. Its KV is still valid prefix state —
  // insert it into the prefix cache before the release frees it.
  insert_prefix(run);
  engine_.sequence(run.seq).phase = SequencePhase::kCancelled;
  engine_.release_sequence(run.seq);
  // Mid-prefill after a preemption the restored output still lives in
  // pend.resumed; everything already streamed must appear in the result.
  std::vector<std::int32_t> output = run.output.empty()
                                         ? std::move(run.pend.resumed)
                                         : std::move(run.output);
  finish(std::move(run.pend), std::move(output), status);
}

void Scheduler::apply_cancellations(
    const std::vector<std::pair<std::uint64_t, RequestStatus>>& cancels) {
  for (const auto& [id, status] : cancels) {
    bool handled = false;
    for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
      if (it->req.request_id != id) continue;
      Pending pend = std::move(*it);
      waiting_.erase(it);
      std::vector<std::int32_t> output = std::move(pend.resumed);
      finish(std::move(pend), std::move(output), status);
      handled = true;
      break;
    }
    if (handled) continue;
    for (std::size_t i = 0; i < running_.size(); ++i) {
      if (running_[i].pend.req.request_id != id) continue;
      terminate_running(i, status);
      break;
    }
    // Not found: the request went terminal between cancel() and this step
    // boundary — nothing to do.
  }
}

void Scheduler::enforce_deadlines() {
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    const std::size_t d = effective_deadline(*it);
    if (d != 0 && stats_.steps - it->submit_step > d) {
      Pending pend = std::move(*it);
      it = waiting_.erase(it);
      std::vector<std::int32_t> output = std::move(pend.resumed);
      finish(std::move(pend), std::move(output),
             RequestStatus::kDeadlineExceeded);
    } else {
      ++it;
    }
  }
  for (std::size_t i = 0; i < running_.size();) {
    const std::size_t d = effective_deadline(running_[i].pend);
    if (d != 0 && stats_.steps - running_[i].pend.submit_step > d) {
      terminate_running(i, RequestStatus::kDeadlineExceeded);
    } else {
      ++i;
    }
  }
}

void Scheduler::deliver_tokens(Running& run) {
  if (!run.pend.req.on_token) {
    run.pend.delivered = run.output.size();
    return;
  }
  while (run.pend.delivered < run.output.size()) {
    const std::size_t index = run.pend.delivered;
    run.pend.req.on_token(run.pend.req.request_id, run.output[index], index);
    ++run.pend.delivered;
  }
}

void Scheduler::admit() {
  while (running_.size() < cfg_.max_batch && !waiting_.empty()) {
    // KV-memory admission control: the front request's worst-case
    // footprint (prompt + max_new_tokens, across both pools) must fit on
    // top of current occupancy. FCFS — no skipping past a deferred
    // request. When nothing is running the front request is admitted
    // unconditionally (the budget is soft; the pool grows on demand), so
    // an over-budget request runs solo instead of deadlocking the queue.
    const Pending& front = waiting_.front();
    if (cfg_.memory.page_budget > 0 && !running_.empty()) {
      // A prefix-cache hit's footprint counts only the uncached suffix:
      // the shared pages are already in pool occupancy, so the budget
      // admits more concurrent sequences under the same ceiling.
      const std::size_t cached = engine_.prefix_match_tokens(front.feed());
      const std::size_t need =
          engine_
              .estimate_request_pages(
                  front.req.prompt.size() + front.req.max_new_tokens, cached)
              .total();
      // Reserve one step of worst-case decode growth for the sequences
      // already running — the same term preempt_for_memory() enforces —
      // so a freshly admitted request is not immediately preempted back
      // out (admit/preempt thrash that would discard its prefill work).
      std::size_t decoding = 0;
      for (const Running& run : running_) {
        if (run.phase == SequencePhase::kDecoding &&
            run.output.size() < run.pend.req.max_new_tokens) {
          ++decoding;
        }
      }
      const std::size_t headroom = decoding * engine_.decode_step_page_bound();
      // Under tiering the budget charges hot-resident pages only: cold
      // pages occupy spill-file bytes, not pool RAM, so demoted history
      // does not block fresh admissions. Untiered, hot == total.
      if (engine_.hot_pages_in_use() + headroom + need >
          cfg_.memory.page_budget) {
        // Before deferring, try to make room out of the prefix cache:
        // evicting unreferenced cache entries is strictly cheaper than
        // stalling admission.
        const std::size_t deficit = engine_.hot_pages_in_use() + headroom +
                                    need - cfg_.memory.page_budget;
        engine_.reclaim_prefix_pages(deficit);
        if (engine_.hot_pages_in_use() + headroom + need >
            cfg_.memory.page_budget) {
          ++stats_.deferred_admissions;
          if (metrics_ != nullptr) m_.deferrals->inc();
          break;
        }
      }
    }
    Running run;
    run.pend = std::move(waiting_.front());
    waiting_.pop_front();
    if (metrics_ != nullptr && !run.pend.queue_wait_recorded) {
      // First admission only: a preempted request's re-admission is not a
      // queue wait the client can see (its stall lands in TPOT instead).
      m_.queue_wait->observe(
          static_cast<double>(now_ns() - run.pend.submit_ns) * 1e-9);
      run.pend.queue_wait_recorded = true;
    }
    run.seq = engine_.create_sequence();
    // Attach the cached prefix (no-op without a prefix cache): prefill
    // resumes at the first uncached token, which is what turns a shared
    // prefix into a TTFT win.
    std::size_t attached = 0;
    {
      obs::StepTraceBuilder::Span span = step_trace_.span("prefix_attach");
      attached = engine_.attach_prefix(run.seq, run.pend.feed());
    }
    run.prefill_pos = attached;
    if (attached > 0) {
      ++stats_.prefix_hits;
      stats_.prefix_tokens_reused += attached;
      if (metrics_ != nullptr) {
        m_.prefix_hits->inc();
        m_.prefix_tokens->inc(attached);
      }
    }
    engine_.begin_prefill(run.seq, run.pend.feed().size());
    run.phase = SequencePhase::kPrefilling;
    run.admit_order = admit_counter_++;
    ++stats_.admitted;
    running_.push_back(std::move(run));
  }
}

void Scheduler::advance_prefill() {
  // At most one prefill chunk per iteration, for the oldest-admitted
  // prefilling sequence, so prefill work is rationed against the decode
  // batch instead of monopolizing the step.
  Running* target = nullptr;
  for (Running& run : running_) {
    if (run.phase != SequencePhase::kPrefilling) continue;
    if (target == nullptr || run.admit_order < target->admit_order) {
      target = &run;
    }
  }
  if (target == nullptr) return;

  obs::StepTraceBuilder::Span span = step_trace_.span("prefill_chunk");
  const std::vector<std::int32_t>& feed = target->pend.feed();
  const std::size_t chunk = engine_.config().prefill_chunk_tokens;
  const std::size_t remaining = feed.size() - target->prefill_pos;
  const std::size_t count = chunk == 0 ? remaining : std::min(chunk, remaining);
  const std::span<const std::int32_t> ids(feed.data() + target->prefill_pos,
                                          count);
  const std::size_t left = engine_.prefill_chunk(target->seq, ids);
  target->prefill_pos += count;
  ++stats_.prefill_chunks;
  if (metrics_ != nullptr) m_.prefill_chunks->inc();
  if (left > 0) return;

  const std::int32_t first = engine_.finish_prefill(target->seq);
  target->phase = SequencePhase::kDecoding;
  if (target->pend.resumed.empty()) {
    target->output.push_back(first);
    target->pend.first_token_step = stats_.steps;
    if (metrics_ != nullptr && !target->pend.ttft_recorded) {
      const std::uint64_t now = now_ns();
      m_.ttft->observe(
          static_cast<double>(now - target->pend.submit_ns) * 1e-9);
      target->pend.ttft_recorded = true;
      target->pend.last_token_ns = now;
    }
  } else {
    // Re-prefill after preemption recomputed the KV state of the earlier
    // partial run; the readout of the last fed token re-derives the last
    // generated token, so restore the already-produced output instead of
    // appending. (A later preemption rebuilds resumed from the current
    // output, so moving it out is safe.)
    target->output = std::move(target->pend.resumed);
    target->pend.resumed.clear();
  }
}

void Scheduler::preempt(std::size_t slot) {
  Running run = std::move(running_[slot]);
  running_[slot] = std::move(running_.back());
  running_.pop_back();
  // Insert before release: the re-admission's "recompute" prefill then
  // attaches this very KV back and recomputes almost nothing. (The cache
  // may in turn evict these entries if memory stays tight — attach is an
  // opportunity, not a reservation.)
  insert_prefix(run);
  engine_.sequence(run.seq).phase = SequencePhase::kPreempted;
  engine_.release_sequence(run.seq);

  Pending pend = std::move(run.pend);
  ++pend.preemptions;
  ++stats_.preemptions;
  if (metrics_ != nullptr) m_.preemptions->inc();
  if (run.phase == SequencePhase::kDecoding && !run.output.empty()) {
    // Recompute preemption: replay every token that was fed to the engine
    // (the prompt plus all generated tokens but the last, which had not
    // been fed back yet) and restore the generated output on re-admission.
    pend.fed = pend.req.prompt;
    pend.fed.insert(pend.fed.end(), run.output.begin(),
                    run.output.end() - 1);
    pend.resumed = std::move(run.output);
  }
  // Front of the queue: the preempted request re-admits first once memory
  // frees (FCFS among multiple preemptions — newest victims are pushed
  // first and end up behind earlier-admitted ones).
  waiting_.push_front(std::move(pend));
}

void Scheduler::preempt_for_memory() {
  if (cfg_.memory.page_budget == 0) return;
  const std::size_t bound = engine_.decode_step_page_bound();
  while (running_.size() > 1) {
    std::size_t decoding = 0;
    for (const Running& run : running_) {
      if (run.phase == SequencePhase::kDecoding &&
          run.output.size() < run.pend.req.max_new_tokens) {
        ++decoding;
      }
    }
    if (decoding == 0) return;
    // Worst case, every decoding sequence crosses a page boundary on every
    // head this step; preempt until that fits under the budget (or only
    // one sequence is left — the oldest is never preempted, which
    // guarantees forward progress and a completing drain()).
    if (engine_.hot_pages_in_use() + decoding * bound <=
        cfg_.memory.page_budget) {
      return;
    }
    // Prefix-cache entries nobody references are the cheapest memory to
    // reclaim — evict them before sacrificing a running sequence's work.
    const std::size_t excess =
        engine_.hot_pages_in_use() + decoding * bound -
        cfg_.memory.page_budget;
    if (engine_.reclaim_prefix_pages(excess) > 0 &&
        engine_.hot_pages_in_use() + decoding * bound <=
            cfg_.memory.page_budget) {
      return;
    }
    std::size_t victim = 0;
    for (std::size_t i = 1; i < running_.size(); ++i) {
      if (running_[i].admit_order > running_[victim].admit_order) victim = i;
    }
    preempt(victim);
  }
}

bool Scheduler::step() {
  if (poisoned_) {
    throw std::logic_error(
        "Scheduler: a decode batch threw; sequences are mid-step and the "
        "engine cannot keep serving");
  }
  ++stats_.steps;
  // Telemetry envelope around the real step body: a fresh trace builder
  // (inactive when tracing is off), the step counter, gauge publication
  // after the body, and the trace commit. Nothing in here feeds back into
  // step_impl()'s decisions — metrics-on and metrics-off drains are
  // bit-identical.
  step_trace_ = obs::StepTraceBuilder(
      tracer_ == nullptr ? nullptr : clock_.get(), stats_.steps);
  if (metrics_ != nullptr) m_.steps->inc();
  const bool more = step_impl();
  publish_step_metrics();
  if (tracer_ != nullptr) tracer_->commit(step_trace_.finish());
  return more;
}

bool Scheduler::step_impl() {
  // Step boundary: splice cross-thread submissions in, then apply
  // cancellations and deadlines before any new engine work is scheduled
  // (a cancelled request never costs another decode step).
  {
    obs::StepTraceBuilder::Span span = step_trace_.span("admit");
    std::vector<std::pair<std::uint64_t, RequestStatus>> cancels;
    drain_inboxes(cancels);
    apply_cancellations(cancels);
    enforce_deadlines();
    admit();
  }
  if (running_.empty()) {
    assert(waiting_.empty() && "admit() always admits when nothing runs");
    // An on_done fired by the cancellation/deadline handling above may
    // have submitted new work; it sits in the inbox until the next step.
    MutexLock lock(mu_);
    return !submit_inbox_.empty() || !cancel_inbox_.empty();
  }
  advance_prefill();
  {
    obs::StepTraceBuilder::Span span = step_trace_.span("preempt");
    preempt_for_memory();
  }

  // Gather this iteration's decode batch: every decoding sequence still
  // under budget, including one whose prefill completed this very step.
  // (Note prefill is rationed at one sequence per iteration even with
  // monolithic chunks, so simultaneously admitted requests start decoding
  // on consecutive steps, not all at once.)
  std::vector<std::size_t> slots;
  std::vector<SequenceId> seqs;
  std::vector<std::int32_t> last;
  slots.reserve(running_.size());
  seqs.reserve(running_.size());
  last.reserve(running_.size());
  for (std::size_t i = 0; i < running_.size(); ++i) {
    const Running& run = running_[i];
    if (run.phase != SequencePhase::kDecoding) continue;
    if (run.output.size() >= run.pend.req.max_new_tokens) continue;
    slots.push_back(i);
    seqs.push_back(run.seq);
    last.push_back(run.output.back());
  }
  std::vector<std::int32_t> next;
  {
    obs::StepTraceBuilder::Span span = step_trace_.span("decode_batch");
    try {
      next = engine_.decode_batch(std::span<const SequenceId>(seqs),
                                  std::span<const std::int32_t>(last),
                                  pool_.get());
    } catch (...) {
      poisoned_ = true;
      throw;
    }
  }
  // One commit stamp for the whole batch: every sequence's token landed at
  // the same join point, and one clock read per step keeps the TPOT cost
  // independent of batch size.
  const std::uint64_t commit_ns =
      (metrics_ != nullptr && !slots.empty()) ? now_ns() : 0;
  for (std::size_t j = 0; j < slots.size(); ++j) {
    Running& run = running_[slots[j]];
    run.output.push_back(next[j]);
    if (metrics_ != nullptr) {
      if (run.pend.last_token_ns != 0) {
        m_.tpot->observe(
            static_cast<double>(commit_ns - run.pend.last_token_ns) * 1e-9);
      }
      run.pend.last_token_ns = commit_ns;
    }
  }

  // Stream every token committed this step (the decode batch above plus a
  // first token produced by advance_prefill) before retirement, so a
  // request's final on_token precedes its on_done.
  {
    obs::StepTraceBuilder::Span span = step_trace_.span("deliver");
    for (Running& run : running_) deliver_tokens(run);
  }

  // Retire finished sequences (swap-erase keeps iteration simple).
  obs::StepTraceBuilder::Span retire_span = step_trace_.span("retire");
  for (std::size_t i = 0; i < running_.size();) {
    Running& run = running_[i];
    if (run.phase == SequencePhase::kDecoding &&
        run.output.size() >= run.pend.req.max_new_tokens) {
      // The finished conversation turn is tomorrow's shared prefix: insert
      // before release so the cache inherits the pages instead of the pool.
      insert_prefix(run);
      engine_.sequence(run.seq).phase = SequencePhase::kFinished;
      engine_.release_sequence(run.seq);
      Running done = std::move(run);
      running_[i] = std::move(running_.back());
      running_.pop_back();
      finish(std::move(done.pend), std::move(done.output),
             RequestStatus::kFinished);
    } else {
      ++i;
    }
  }
  if (!running_.empty() || !waiting_.empty()) return true;
  // An on_done callback may have submitted (or cancelled) during this
  // step; that work sits in the inboxes, not waiting_ — without this
  // check drain()/run_until_idle() would return with it stranded.
  MutexLock lock(mu_);
  return !submit_inbox_.empty() || !cancel_inbox_.empty();
}

std::vector<RequestResult> Scheduler::drain() {
  while (step()) {
  }
#if LSERVE_AUDIT_ENABLED
  // Quiescence check the static layers cannot express: every page
  // admitted since construction must be back in the pool. On a leak the
  // auditor names the owning sequence, allocation site and thread.
  if (engine_.total_pages_in_use() - engine_.prefix_cache_pages_held() !=
      audit_baseline_pages_) {
    const std::string report = engine_.audit_report();
    std::fprintf(stderr,
                 "[lserve page audit] scheduler drained but %zu pages are "
                 "still in use (%zu held by the prefix cache, baseline %zu); "
                 "live pages:\n%s",
                 engine_.total_pages_in_use(),
                 engine_.prefix_cache_pages_held(), audit_baseline_pages_,
                 report.c_str());
    std::abort();
  }
#endif
  return results_;
}

void Scheduler::run_until_idle() {
  while (step()) {
  }
}

}  // namespace lserve::serve
