#include "serve/scheduler.hpp"

#include <cassert>
#include <stdexcept>

namespace lserve::serve {

Scheduler::Scheduler(Engine& engine, std::size_t max_batch,
                     std::size_t decode_threads)
    : engine_(engine), max_batch_(max_batch == 0 ? 1 : max_batch) {
  if (decode_threads != 1) {
    pool_ = std::make_unique<ThreadPool>(decode_threads);
  }
}

std::uint64_t Scheduler::submit(Request req) {
  if (req.request_id == 0) req.request_id = next_id_++;
  const std::uint64_t id = req.request_id;
  waiting_.push_back(std::move(req));
  return id;
}

void Scheduler::admit() {
  while (running_.size() < max_batch_ && !waiting_.empty()) {
    Request req = std::move(waiting_.front());
    waiting_.pop_front();
    Running run;
    run.seq = engine_.create_sequence();
    const std::int32_t first =
        engine_.prefill(run.seq, std::span<const std::int32_t>(req.prompt));
    run.output.push_back(first);
    run.req = std::move(req);
    running_.push_back(std::move(run));
  }
}

bool Scheduler::step() {
  if (poisoned_) {
    throw std::logic_error(
        "Scheduler: a decode batch threw; sequences are mid-step and the "
        "engine cannot keep serving");
  }
  admit();
  if (running_.empty()) return false;

  // Gather this iteration's decode batch (sequences still under budget),
  // decode it — in parallel when a pool is attached — and append the new
  // tokens in slot order.
  std::vector<std::size_t> slots;
  std::vector<SequenceId> seqs;
  std::vector<std::int32_t> last;
  slots.reserve(running_.size());
  seqs.reserve(running_.size());
  last.reserve(running_.size());
  for (std::size_t i = 0; i < running_.size(); ++i) {
    const Running& run = running_[i];
    if (run.output.size() >= run.req.max_new_tokens) continue;
    slots.push_back(i);
    seqs.push_back(run.seq);
    last.push_back(run.output.back());
  }
  std::vector<std::int32_t> next;
  try {
    next = engine_.decode_batch(std::span<const SequenceId>(seqs),
                                std::span<const std::int32_t>(last),
                                pool_.get());
  } catch (...) {
    poisoned_ = true;
    throw;
  }
  for (std::size_t j = 0; j < slots.size(); ++j) {
    running_[slots[j]].output.push_back(next[j]);
  }

  // Retire finished sequences (swap-erase keeps iteration simple).
  for (std::size_t i = 0; i < running_.size();) {
    Running& run = running_[i];
    if (run.output.size() >= run.req.max_new_tokens) {
      RequestResult result;
      result.request_id = run.req.request_id;
      result.prompt_tokens = run.req.prompt.size();
      result.decode_steps = run.output.size() - 1;
      result.output = std::move(run.output);
      results_.push_back(std::move(result));
      engine_.release_sequence(run.seq);
      running_[i] = std::move(running_.back());
      running_.pop_back();
    } else {
      ++i;
    }
  }
  return !running_.empty() || !waiting_.empty();
}

std::vector<RequestResult> Scheduler::drain() {
  while (step()) {
  }
  return results_;
}

}  // namespace lserve::serve
