// Sequence state: one in-flight request's KV caches, position counters and
// per-sequence page-selection cache.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "kv/two_way_cache.hpp"
#include "sparse/reusable_selector.hpp"

namespace lserve::serve {

using SequenceId = std::size_t;
inline constexpr SequenceId kInvalidSequence = static_cast<SequenceId>(-1);

/// Lifecycle of a served request/sequence. The scheduler drives requests
/// through WAITING → PREFILLING → DECODING → FINISHED, with PREEMPTED as
/// the memory-pressure back edge (pages released, request re-queued for
/// re-prefill, so PREEMPTED → WAITING) and CANCELLED as the early terminal
/// exit (cancel() or a deadline: pages released like preemption, request
/// not re-queued).
enum class SequencePhase : std::uint8_t {
  kWaiting = 0,     ///< queued/created; no tokens fed yet.
  kPrefilling = 1,  ///< mid incremental prefill (begin_prefill() called).
  kDecoding = 2,    ///< prefill complete; generating one token per step.
  kFinished = 3,    ///< hit max_new_tokens (or EOS in a real deployment).
  kPreempted = 4,   ///< released under memory pressure; awaiting re-admission.
  kCancelled = 5,   ///< cancelled or past deadline; pages released, terminal.
};

/// Per-sequence serving state. Owned by the engine; requests reference it
/// by SequenceId.
struct Sequence {
  Sequence(std::size_t layers, std::size_t kv_heads,
           std::vector<kv::HeadKind> kinds, kv::StreamingConfig streaming,
           std::size_t reuse_interval)
      : cache(layers, kv_heads, std::move(kinds), streaming),
        selector(layers * kv_heads, reuse_interval) {}

  kv::TwoWayKvCache cache;
  sparse::ReusableSelector selector;
  SequencePhase phase = SequencePhase::kWaiting;
  std::size_t position = 0;      ///< next absolute token position.
  std::size_t decode_step = 0;   ///< decode steps taken (reuse chunking).
  std::size_t prefill_remaining = 0;  ///< prompt tokens still owed mid-prefill.
  std::int32_t last_token = -1;  ///< most recent generated token id.
  std::vector<std::int32_t> generated;
};

}  // namespace lserve::serve
