// Pluggable decode-stage attention policies (ROADMAP item 1).
//
// The engine's hybrid pipeline has exactly one per-step degree of freedom:
// whether the dense (retrieval) heads run with dynamic page selection or
// read the full context. Streaming heads are a *storage* policy — their
// evicted pages cannot come back — so a runtime gate can only flip the
// retrieval-head route. AttentionPolicy encapsulates that decision:
// StaticAttentionPolicy pins it (the baseline presets become named policy
// objects), and CostModelGatedPolicy consults src/costmodel's crossover
// query so short contexts decode dense and long contexts run the
// configured hybrid pipeline — the paper's cost-model-driven gating.
//
// The invariant the conformance harness (tests/attention_policy_test.cpp)
// locks down: route() depends ONLY on the context length, never on thread
// id, scheduling order, or wall-clock — so gated decode is bit-identical
// to whichever ungated policy it selects, across 1/2/8 decode threads,
// preemption replay (the replayed sequence revisits the same context
// lengths), and prefix-cache attach (which changes how a context was
// built, not how long it is).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace lserve::cost {
struct GpuSpec;
struct ServingPolicy;
}  // namespace lserve::cost

namespace lserve::serve {

struct EngineConfig;

/// Which decode-attention variant a step runs on the dense heads.
enum class AttentionRoute : std::uint8_t {
  kDense = 0,   ///< no pruning: dense heads read the full context.
  kSparse = 1,  ///< as configured: dynamic page selection (when enabled).
};

const char* to_string(AttentionRoute route) noexcept;

/// Per-step routing decision for one sequence's decode attention.
class AttentionPolicy {
 public:
  virtual ~AttentionPolicy() = default;

  virtual const std::string& name() const noexcept = 0;

  /// Route for a decode step whose attention spans `context_tokens` cached
  /// tokens (the sequence position *after* the step's KV append). Must be
  /// a pure function of `context_tokens` — the bit-identity contract
  /// across threads and preemption replay depends on it.
  virtual AttentionRoute route(std::size_t context_tokens) const noexcept = 0;
};

/// Fixed-route policy: what every baseline preset is. kSparse means "run
/// exactly what the EngineConfig asks for" (today's behavior, and a no-op
/// for presets without dynamic decode); kDense forces pruning off.
class StaticAttentionPolicy final : public AttentionPolicy {
 public:
  StaticAttentionPolicy(std::string name, AttentionRoute route)
      : name_(std::move(name)), route_(route) {}

  const std::string& name() const noexcept override { return name_; }
  AttentionRoute route(std::size_t) const noexcept override { return route_; }

 private:
  std::string name_;
  AttentionRoute route_;
};

/// Cost-model gate: dense below the modeled crossover length, the
/// configured hybrid pipeline at or past it. The crossover is resolved
/// once (cost::crossover_tokens memoizes per spec/model/policy/batch), so
/// route() on the decode path is a single comparison.
class CostModelGatedPolicy final : public AttentionPolicy {
 public:
  /// `crossover`: first context length at which sparse decode is strictly
  /// cheaper than dense (cost::kNoCrossover pins the route to dense).
  CostModelGatedPolicy(std::string name, std::size_t crossover)
      : name_(std::move(name)), crossover_(crossover) {}

  const std::string& name() const noexcept override { return name_; }
  AttentionRoute route(std::size_t context_tokens) const noexcept override {
    return context_tokens >= crossover_ ? AttentionRoute::kSparse
                                        : AttentionRoute::kDense;
  }

  std::size_t crossover() const noexcept { return crossover_; }

 private:
  std::string name_;
  std::size_t crossover_;
};

/// "Run as configured" — the default route when no policy is attached.
std::shared_ptr<const AttentionPolicy> always_sparse_policy();
/// Force full-context reads on the dense heads regardless of config.
std::shared_ptr<const AttentionPolicy> always_dense_policy();

/// Maps an EngineConfig onto the cost model's policy description (the
/// fields decode_step_cost needs; weight quantization is not modeled by
/// the CPU substrate and cancels out of the sparse-vs-dense delta).
cost::ServingPolicy cost_policy_from(const EngineConfig& cfg);

/// Builds the gate for `cfg` served on `spec` at decode batch size
/// `batch`: queries cost::crossover_tokens over cost_policy_from(cfg).
std::shared_ptr<const CostModelGatedPolicy> make_cost_model_gated_policy(
    const cost::GpuSpec& spec, const EngineConfig& cfg, std::size_t batch);

}  // namespace lserve::serve
