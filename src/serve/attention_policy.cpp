#include "serve/attention_policy.hpp"

#include "costmodel/pipeline_cost.hpp"
#include "serve/engine.hpp"

namespace lserve::serve {

const char* to_string(AttentionRoute route) noexcept {
  switch (route) {
    case AttentionRoute::kDense:
      return "dense";
    case AttentionRoute::kSparse:
      return "sparse";
  }
  return "?";
}

std::shared_ptr<const AttentionPolicy> always_sparse_policy() {
  static const auto policy = std::make_shared<const StaticAttentionPolicy>(
      "always-sparse", AttentionRoute::kSparse);
  return policy;
}

std::shared_ptr<const AttentionPolicy> always_dense_policy() {
  static const auto policy = std::make_shared<const StaticAttentionPolicy>(
      "always-dense", AttentionRoute::kDense);
  return policy;
}

cost::ServingPolicy cost_policy_from(const EngineConfig& cfg) {
  cost::ServingPolicy p;
  p.kv_dtype = cfg.dense_pages.dtype;
  p.page_size = cfg.dense_pages.page_size;
  p.logical_page_size = cfg.dense_pages.logical_page_size != 0
                            ? cfg.dense_pages.logical_page_size
                            : cfg.dense_pages.page_size;
  p.streaming_fraction = cfg.streaming_fraction;
  p.sink_tokens = cfg.streaming.sink_tokens;
  p.local_tokens = cfg.streaming.local_tokens;
  p.dynamic_decode = cfg.dynamic_decode;
  p.token_budget = cfg.selector.token_budget;
  p.reuse_interval = cfg.reuse_interval;
  p.dynamic_prefill = cfg.dynamic_prefill;
  return p;
}

std::shared_ptr<const CostModelGatedPolicy> make_cost_model_gated_policy(
    const cost::GpuSpec& spec, const EngineConfig& cfg, std::size_t batch) {
  const std::size_t crossover =
      cost::crossover_tokens(spec, cfg.model, cost_policy_from(cfg), batch);
  return std::make_shared<const CostModelGatedPolicy>(
      "gated(" + spec.name + ")", crossover);
}

}  // namespace lserve::serve
