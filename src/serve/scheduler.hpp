// Request-lifecycle scheduler: chunked-prefill-aware continuous batching
// with KV-memory admission control, preemption, streaming token delivery,
// cancellation, and deadlines.
//
// Requests move through the lifecycle WAITING → PREFILLING → DECODING →
// FINISHED, with PREEMPTED → WAITING as the memory-pressure back edge and
// CANCELLED / DEADLINE_EXCEEDED as early terminal exits reachable from any
// live phase. Scheduling is iteration-level (Orca/vLLM style), but prefill
// chunks are first-class iteration work: each step() packs at most one
// prefill chunk (cfg.prefill_chunk_tokens of the engine, whole prompt when
// 0) of the oldest admitting sequence next to the running decode batch, so
// the TTFT of a long prompt no longer stalls the TPOT of every running
// sequence — the head-of-line blocking the paper's chunked prefill (§3)
// exists to avoid.
//
// Memory: a configurable page budget (across both engine pools) gates
// admission — a request whose worst-case prompt + max_new_tokens footprint
// does not fit on top of current occupancy stays WAITING — and triggers
// preemption instead of poisoning when the pool nears exhaustion
// mid-decode: the most recently admitted sequence is released (pages
// reclaimed) and its request re-queued at the front for re-prefill, with
// already-generated tokens folded into the replayed prompt (vLLM's
// recompute preemption). The budget is soft in two places that guarantee
// drain() always completes: a request whose footprint alone exceeds the
// budget still runs solo (the pool grows on demand), and the last running
// sequence is never preempted.
//
// Prefix cache (when the engine enables it): admission peeks the cache so
// a hit's footprint counts only the uncached suffix, every admitted
// request attaches the cached prefix and prefills just the remainder, and
// every release point (finish / preempt / cancel) inserts the sequence's
// KV into the cache before its pages return to the pool — so a preempted
// request's re-prefill is itself usually a cache hit. Under budget
// pressure the scheduler evicts unreferenced cache entries before it
// resorts to deferring admission or preempting a running sequence.
//
// Streaming & cancellation (the serving front-end surface): each request
// may carry an on_token callback, invoked as each decode step commits (a
// preempted-and-replayed request never re-delivers: on_token always sees a
// strictly growing prefix of the final output), and an on_done callback
// invoked exactly once with the terminal RequestResult. cancel() is safe
// in WAITING, PREFILLING and DECODING: pages are reclaimed exactly like
// preemption, but the request is not re-queued. Deadlines (a
// SchedulerConfig default plus a per-Request override, measured in
// scheduler steps since submission) are enforced at step boundaries and
// terminate with DEADLINE_EXCEEDED.
//
// Threading contract (machine-checked: the cross-thread surface is
// GUARDED_BY(mu_) and builds clean under clang -Wthread-safety; see
// docs/CONCURRENCY.md): submit(), cancel(), live_requests(),
// request_stop() and wait_for_work() are thread-safe and may be called
// from any thread (e.g. a network event loop) while a dedicated scheduler
// thread loops step()/run_until_idle(). Submissions and cancellations
// land in inboxes and take effect at the next step boundary, keeping the
// step itself lock-free. step()/drain()/run_until_idle()/results() must
// only be called from one thread at a time (the scheduler thread);
// callbacks fire on that thread with no internal lock held — mu_ is a
// leaf lock, so an on_token/on_done body may freely call submit()/
// cancel() or take its own locks without inverting any order.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/step_tracer.hpp"
#include "serve/engine.hpp"
#include "serve/thread_annotations.hpp"
#include "serve/thread_pool.hpp"

namespace lserve::serve {

/// How a request left the scheduler.
enum class RequestStatus : std::uint8_t {
  kFinished = 0,          ///< produced max_new_tokens.
  kCancelled = 1,         ///< cancel() — e.g. client disconnect.
  kDeadlineExceeded = 2,  ///< deadline hit at a step boundary.
};

const char* to_string(RequestStatus status) noexcept;

/// A terminated request's output and accounting. The step indices are the
/// scheduler's iteration counter (SchedulerStats::steps) at the respective
/// event; benches map them to wall-clock timestamps for TTFT/TPOT without
/// the scheduler itself touching a clock.
struct RequestResult {
  std::uint64_t request_id = 0;
  RequestStatus status = RequestStatus::kFinished;
  /// Full output for kFinished; the tokens produced (and streamed) before
  /// termination otherwise — always a prefix of the uninterrupted output.
  std::vector<std::int32_t> output;
  std::size_t prompt_tokens = 0;
  std::size_t decode_steps = 0;
  std::size_t preemptions = 0;       ///< times this request was preempted.
  std::size_t submit_step = 0;       ///< steps completed when submitted.
  std::size_t first_token_step = 0;  ///< step that produced output[0].
  std::size_t finish_step = 0;       ///< step that terminated the request.
};

/// One inference request.
struct Request {
  std::vector<std::int32_t> prompt;
  std::size_t max_new_tokens = 16;
  std::uint64_t request_id = 0;
  /// Scheduler steps after submission before the request is terminated
  /// with kDeadlineExceeded (0 = SchedulerConfig::default_deadline_steps;
  /// both 0 = no deadline). Steps are the scheduler's native clock; a
  /// wall-clock front-end maps its timeouts to cancel() instead.
  std::size_t deadline_steps = 0;
  /// Streamed token delivery, invoked on the scheduler thread as each
  /// token commits: (request_id, token, index) with index counting from 0.
  /// Tokens restored after a preemption replay are not re-delivered.
  std::function<void(std::uint64_t, std::int32_t, std::size_t)> on_token;
  /// Terminal notification, invoked exactly once on the scheduler thread
  /// after the result (any status) is recorded.
  std::function<void(const RequestResult&)> on_done;
};

/// Scheduler policy knobs.
struct SchedulerConfig {
  std::size_t max_batch = 8;
  /// Decode parallelism of each step()'s batch: 1 = serial, >1 = shared
  /// ThreadPool, 0 = hardware concurrency. Outputs, stats, scheduling
  /// decisions (admission/preemption use post-join page counts) and
  /// completion order are bit-identical at any thread count. Allocator-
  /// level telemetry (PageAllocator::peak_pages_in_use, physical page-id
  /// assignment) is the exception: it depends on allocation interleaving
  /// within a batch.
  std::size_t decode_threads = 1;
  /// Consolidated memory knobs (kv/memory_config.hpp). The scheduler
  /// consumes memory.page_budget: the combined (dense + streaming) page
  /// budget for admission control and preemption; 0 = unbounded. Soft —
  /// see the header comment. When the engine runs tiered
  /// (EngineConfig::memory.hot_pages > 0) the budget charges only
  /// hot-resident pages — cold pages live in the spill file, not RAM —
  /// so the same budget admits more concurrent long-context sequences.
  kv::MemoryConfig memory;
  /// Default Request::deadline_steps for requests that don't override it
  /// (0 = no default deadline).
  std::size_t default_deadline_steps = 0;
  /// Decode routing policy installed on the engine at construction
  /// (serve/attention_policy.hpp): per step and per sequence the engine
  /// asks it whether dense heads read the full context or run the
  /// configured dynamic selection. Null = leave the engine's current
  /// policy alone (run-as-configured unless one was set directly).
  std::shared_ptr<const AttentionPolicy> policy;

  /// Observability sinks (all optional, all non-owning — the caller keeps
  /// them alive for the scheduler's lifetime; serve_main owns them in the
  /// server binary). Telemetry NEVER feeds back into scheduling: drains
  /// with metrics/tracing on are bit-identical to drains with them off at
  /// any decode thread count (pinned by tests/obs_test.cpp).
  ///
  /// Wall-clock request telemetry (queue-wait, TTFT, TPOT, end-to-end
  /// histograms; sequence/page/prefix gauges; lifecycle and route
  /// counters) is recorded into `metrics`; per-step phase spans go into
  /// `tracer` (exported as Chrome trace JSON via GET /debug/trace).
  obs::MetricsRegistry* metrics = nullptr;
  obs::StepTracer* tracer = nullptr;
  /// Time source for the telemetry stamps. Null = steady-clock default;
  /// tests inject obs::FakeClock for deterministic TTFT/TPOT. Unused (and
  /// never read) when both sinks are null — the scheduler's control flow
  /// stays clockless either way.
  std::shared_ptr<const obs::Clock> clock;
};

/// Cumulative scheduler telemetry.
struct SchedulerStats {
  std::size_t steps = 0;
  std::size_t admitted = 0;     ///< admissions, including re-admissions.
  std::size_t preemptions = 0;  ///< sequences released under memory pressure.
  std::size_t deferred_admissions = 0;  ///< step-counted admission stalls.
  std::size_t prefill_chunks = 0;       ///< chunks scheduled (≤ 1 per step).
  std::size_t cancelled = 0;            ///< requests ended by cancel().
  std::size_t deadline_exceeded = 0;    ///< requests ended by deadline.
  std::size_t prefix_hits = 0;          ///< admissions that attached a
                                        ///< cached prefix.
  std::size_t prefix_tokens_reused = 0;  ///< prompt tokens skipped at
                                         ///< admission via the prefix cache.
};

/// FCFS continuous-batching scheduler over one Engine.
class Scheduler {
 public:
  Scheduler(Engine& engine, SchedulerConfig cfg);

  /// Convenience: SchedulerConfig{max_batch, decode_threads}, no budget.
  Scheduler(Engine& engine, std::size_t max_batch,
            std::size_t decode_threads = 1);

  /// Enqueues a request; returns its id (assigned if 0). A user-supplied
  /// id that collides with an in-flight (waiting or running) request is
  /// rejected with std::invalid_argument; auto-assignment never reuses a
  /// user-supplied id. Thread-safe; the request is picked up at the next
  /// step boundary.
  std::uint64_t submit(Request req) EXCLUDES(mu_);

  /// Requests termination of an in-flight request with the given status
  /// (kCancelled by default; a wall-clock front-end passes
  /// kDeadlineExceeded for its own timeouts). Safe in any live phase:
  /// WAITING requests never start, PREFILLING/DECODING sequences have
  /// their pages reclaimed exactly like preemption but are not re-queued.
  /// Thread-safe; takes effect at the next step boundary. Returns false
  /// if the id is not in flight (unknown or already terminal).
  bool cancel(std::uint64_t request_id,
              RequestStatus status = RequestStatus::kCancelled)
      EXCLUDES(mu_);

  /// One iteration: apply queued submissions/cancellations and deadlines,
  /// admit under the page budget, advance at most one prefill chunk,
  /// preempt if the pool nears the budget, then decode the batch, stream
  /// committed tokens, and retire terminal sequences. Returns true while
  /// work remains.
  ///
  /// Pool exhaustion against the page budget is handled by preemption and
  /// never poisons the scheduler. Only an engine-level failure (a decode
  /// batch throwing, e.g. allocation failure at the allocator's hard cap)
  /// still leaves sequences mid-step and unpoisonable-by-retry; after that
  /// every later step()/drain() throws std::logic_error.
  bool step();

  /// Runs to completion and returns all results in completion order.
  std::vector<RequestResult> drain();

  /// step() until no work remains. The serving-thread idiom:
  ///
  ///   while (!sched.stop_requested()) {
  ///     sched.run_until_idle();
  ///     sched.wait_for_work(std::chrono::milliseconds(100));
  ///   }
  void run_until_idle();

  /// Blocks until a submission/cancellation arrives, request_stop() is
  /// called, or `timeout` elapses. Returns true iff woken by work (not by
  /// stop or timeout). Thread-safe.
  bool wait_for_work(std::chrono::milliseconds timeout) EXCLUDES(mu_);

  /// Wakes wait_for_work() and makes stop_requested() true. Thread-safe.
  void request_stop() EXCLUDES(mu_);
  bool stop_requested() const EXCLUDES(mu_);

  /// Requests submitted but not yet terminal (thread-safe).
  std::size_t live_requests() const EXCLUDES(mu_);

  std::size_t running() const noexcept { return running_.size(); }
  std::size_t waiting() const noexcept { return waiting_.size(); }
  /// Decode parallelism (1 when no pool is attached).
  std::size_t decode_threads() const noexcept {
    return pool_ == nullptr ? 1 : pool_->size();
  }
  const SchedulerConfig& config() const noexcept { return cfg_; }
  const SchedulerStats& scheduler_stats() const noexcept { return stats_; }
  const std::vector<RequestResult>& results() const noexcept {
    return results_;
  }

 private:
  /// A queued request plus any progress preserved across preemption.
  struct Pending {
    Request req;
    /// After a mid-decode preemption: the prompt plus every generated
    /// token that had been fed back, to be replayed as the re-prefill
    /// stream. Empty for a fresh request (feed() then serves the prompt
    /// directly, avoiding a copy per queued request).
    std::vector<std::int32_t> fed;
    const std::vector<std::int32_t>& feed() const noexcept {
      return fed.empty() ? req.prompt : fed;
    }
    /// Generated tokens restored verbatim after re-prefill (empty for a
    /// fresh request).
    std::vector<std::int32_t> resumed;
    std::size_t preemptions = 0;
    std::size_t submit_step = 0;
    std::size_t first_token_step = 0;
    std::size_t delivered = 0;  ///< tokens already handed to on_token.
    /// Wall-clock telemetry stamps (obs layer only — scheduling decisions
    /// never read them; all stay 0 when metrics are off). TTFT/queue-wait
    /// are recorded once per request and survive preemption; last_token_ns
    /// deliberately spans a preemption replay, so the TPOT histogram sees
    /// the inter-token stall a streaming client actually observes.
    std::uint64_t submit_ns = 0;
    std::uint64_t last_token_ns = 0;  ///< commit stamp of the latest token.
    bool queue_wait_recorded = false;
    bool ttft_recorded = false;
  };

  /// An admitted request bound to an engine sequence.
  struct Running {
    Pending pend;
    SequenceId seq = kInvalidSequence;
    SequencePhase phase = SequencePhase::kPrefilling;
    std::vector<std::int32_t> output;
    std::size_t prefill_pos = 0;  ///< tokens of pend.feed() already forwarded.
    std::uint64_t admit_order = 0;
  };

  void admit();
  void advance_prefill();
  void preempt_for_memory();
  void preempt(std::size_t slot);
  /// Shares `run`'s KV into the engine's prefix cache (everything fed so
  /// far: feed() up to the sequence position, then generated tokens).
  /// Called at every release point — finish, preemption, cancel/deadline —
  /// before the sequence's pages go back to the pool. No-op when the
  /// engine has no prefix cache.
  void insert_prefix(const Running& run);
  /// Moves queued submissions/cancellations into waiting_/this step's
  /// cancel list (the only place scheduler state meets the inbox lock).
  void drain_inboxes(std::vector<std::pair<std::uint64_t, RequestStatus>>&
                         cancels) EXCLUDES(mu_);
  void apply_cancellations(
      const std::vector<std::pair<std::uint64_t, RequestStatus>>& cancels);
  void enforce_deadlines();
  std::size_t effective_deadline(const Pending& pend) const noexcept;
  /// Streams undelivered tokens of one running sequence to on_token.
  void deliver_tokens(Running& run);
  /// Records the terminal result of a request and fires on_done. The
  /// engine sequence (if any) must already be released by the caller.
  void finish(Pending pend, std::vector<std::int32_t> output,
              RequestStatus status) EXCLUDES(mu_);
  /// Terminates running_[slot]: releases its sequence (pages reclaimed
  /// like preemption, not re-queued) and records the terminal result.
  void terminate_running(std::size_t slot, RequestStatus status);
  /// The body of step(); step() itself is the telemetry envelope (trace
  /// builder + per-step gauge/counter publication) around it.
  bool step_impl();
  /// Registers every scheduler-owned metric family (idempotent per
  /// registry: register-or-get). Called once at construction.
  void register_metrics();
  /// Wall-clock read for telemetry stamps; 0 when no sink wants time.
  std::uint64_t now_ns() const noexcept {
    return clock_ == nullptr ? 0 : clock_->now_ns();
  }
  /// Publishes the per-step gauges (sequences, pages, prefix cache) and
  /// mirrors the engine's dense/sparse route deltas into counters.
  void publish_step_metrics();

  Engine& engine_;
  SchedulerConfig cfg_;
  std::unique_ptr<ThreadPool> pool_;  ///< null => serial decode.
  std::deque<Pending> waiting_;
  std::vector<Running> running_;
  std::vector<RequestResult> results_;
  SchedulerStats stats_;
  std::uint64_t admit_counter_ = 0;  ///< preemption priority (newest first).
  bool poisoned_ = false;  ///< a decode batch threw; engine unusable.

  /// Observability (scheduler-thread only, except the atomic counter
  /// bumped from submit()). Handles are resolved once at construction;
  /// null sinks compile the whole layer down to a handful of null checks.
  obs::MetricsRegistry* metrics_ = nullptr;  ///< == cfg_.metrics.
  obs::StepTracer* tracer_ = nullptr;        ///< == cfg_.tracer.
  std::shared_ptr<const obs::Clock> clock_;  ///< null iff both sinks null.
  /// Phase-span builder for the step in flight; reset (inactive when
  /// tracing is off) at the top of every step().
  obs::StepTraceBuilder step_trace_;
  struct MetricHandles {
    obs::Histogram* queue_wait = nullptr;
    obs::Histogram* ttft = nullptr;
    obs::Histogram* tpot = nullptr;
    obs::Histogram* e2e = nullptr;
    obs::Counter* submitted = nullptr;
    obs::Counter* finished = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* steps = nullptr;
    obs::Counter* preemptions = nullptr;
    obs::Counter* deferrals = nullptr;
    obs::Counter* prefill_chunks = nullptr;
    obs::Counter* prefix_hits = nullptr;
    obs::Counter* prefix_tokens = nullptr;
    obs::Counter* route_dense = nullptr;
    obs::Counter* route_sparse = nullptr;
    obs::Gauge* seq_running = nullptr;
    obs::Gauge* seq_waiting = nullptr;
    obs::Gauge* requests_live = nullptr;
    obs::Gauge* pages_in_use = nullptr;
    obs::Gauge* pages_free = nullptr;
    obs::Gauge* pages_capacity = nullptr;
    obs::Gauge* prefix_pages = nullptr;
    /// Two-tier KV store (all flat when the engine is untiered).
    obs::Gauge* pages_hot = nullptr;
    obs::Gauge* pages_cold = nullptr;
    obs::Gauge* cold_bytes = nullptr;
    obs::Counter* tier_demotions = nullptr;
    obs::Counter* tier_pin_promotions = nullptr;
    obs::Counter* tier_prefetch_promotions = nullptr;
    obs::Counter* tier_prefetch_requests = nullptr;
  } m_;
  /// Last-seen engine route totals, for per-step delta mirroring.
  std::size_t seen_dense_steps_ = 0;
  std::size_t seen_sparse_steps_ = 0;
  /// Last-seen tier totals (same delta-mirroring scheme).
  kv::TierStats seen_tier_;
#if LSERVE_AUDIT_ENABLED
  /// Engine pool occupancy at construction; drain() aborts with the
  /// auditor's who-leaked-what report if it does not return to this.
  std::size_t audit_baseline_pages_ = 0;
#endif

  /// Cross-thread surface: submissions/cancellations land here under mu_
  /// and are spliced into scheduler state at the next step boundary.
  /// mu_ is a leaf lock: nothing else is acquired while it is held.
  mutable Mutex mu_;
  CondVar work_cv_;
  std::deque<Pending> submit_inbox_ GUARDED_BY(mu_);
  std::vector<std::pair<std::uint64_t, RequestStatus>> cancel_inbox_
      GUARDED_BY(mu_);
  /// Submitted, not terminal.
  std::unordered_set<std::uint64_t> live_ids_ GUARDED_BY(mu_);
  std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace lserve::serve
