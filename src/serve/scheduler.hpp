// Request-lifecycle scheduler: chunked-prefill-aware continuous batching
// with KV-memory admission control and preemption.
//
// Requests move through the lifecycle WAITING → PREFILLING → DECODING →
// FINISHED, with PREEMPTED → WAITING as the memory-pressure back edge.
// Scheduling is iteration-level (Orca/vLLM style), but prefill chunks are
// first-class iteration work: each step() packs at most one prefill chunk
// (cfg.prefill_chunk_tokens of the engine, whole prompt when 0) of the
// oldest admitting sequence next to the running decode batch, so the TTFT
// of a long prompt no longer stalls the TPOT of every running sequence —
// the head-of-line blocking the paper's chunked prefill (§3) exists to
// avoid.
//
// Memory: a configurable page budget (across both engine pools) gates
// admission — a request whose worst-case prompt + max_new_tokens footprint
// does not fit on top of current occupancy stays WAITING — and triggers
// preemption instead of poisoning when the pool nears exhaustion
// mid-decode: the most recently admitted sequence is released (pages
// reclaimed) and its request re-queued at the front for re-prefill, with
// already-generated tokens folded into the replayed prompt (vLLM's
// recompute preemption). The budget is soft in two places that guarantee
// drain() always completes: a request whose footprint alone exceeds the
// budget still runs solo (the pool grows on demand), and the last running
// sequence is never preempted.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "serve/engine.hpp"
#include "serve/thread_pool.hpp"

namespace lserve::serve {

/// One inference request.
struct Request {
  std::vector<std::int32_t> prompt;
  std::size_t max_new_tokens = 16;
  std::uint64_t request_id = 0;
};

/// A finished request's output and accounting. The step indices are the
/// scheduler's iteration counter (SchedulerStats::steps) at the respective
/// event; benches map them to wall-clock timestamps for TTFT/TPOT without
/// the scheduler itself touching a clock.
struct RequestResult {
  std::uint64_t request_id = 0;
  std::vector<std::int32_t> output;
  std::size_t prompt_tokens = 0;
  std::size_t decode_steps = 0;
  std::size_t preemptions = 0;       ///< times this request was preempted.
  std::size_t submit_step = 0;       ///< steps completed when submitted.
  std::size_t first_token_step = 0;  ///< step that produced output[0].
  std::size_t finish_step = 0;       ///< step that completed the request.
};

/// Scheduler policy knobs.
struct SchedulerConfig {
  std::size_t max_batch = 8;
  /// Decode parallelism of each step()'s batch: 1 = serial, >1 = shared
  /// ThreadPool, 0 = hardware concurrency. Outputs, stats, scheduling
  /// decisions (admission/preemption use post-join page counts) and
  /// completion order are bit-identical at any thread count. Allocator-
  /// level telemetry (PageAllocator::peak_pages_in_use, physical page-id
  /// assignment) is the exception: it depends on allocation interleaving
  /// within a batch.
  std::size_t decode_threads = 1;
  /// Combined (dense + streaming) page budget for admission control and
  /// preemption; 0 = unbounded. Soft — see the header comment.
  std::size_t page_budget = 0;
};

/// Cumulative scheduler telemetry.
struct SchedulerStats {
  std::size_t steps = 0;
  std::size_t admitted = 0;     ///< admissions, including re-admissions.
  std::size_t preemptions = 0;  ///< sequences released under memory pressure.
  std::size_t deferred_admissions = 0;  ///< step-counted admission stalls.
  std::size_t prefill_chunks = 0;       ///< chunks scheduled (≤ 1 per step).
};

/// FCFS continuous-batching scheduler over one Engine.
class Scheduler {
 public:
  Scheduler(Engine& engine, SchedulerConfig cfg);

  /// Convenience: SchedulerConfig{max_batch, decode_threads}, no budget.
  Scheduler(Engine& engine, std::size_t max_batch,
            std::size_t decode_threads = 1);

  /// Enqueues a request; returns its id (assigned if 0). A user-supplied
  /// id that collides with an in-flight (waiting or running) request is
  /// rejected with std::invalid_argument; auto-assignment never reuses a
  /// user-supplied id.
  std::uint64_t submit(Request req);

  /// One iteration: admit under the page budget, advance at most one
  /// prefill chunk, preempt if the pool nears the budget, then decode the
  /// batch and retire finished sequences. Returns true while work remains.
  ///
  /// Pool exhaustion against the page budget is handled by preemption and
  /// never poisons the scheduler. Only an engine-level failure (a decode
  /// batch throwing, e.g. allocation failure at the allocator's hard cap)
  /// still leaves sequences mid-step and unpoisonable-by-retry; after that
  /// every later step()/drain() throws std::logic_error.
  bool step();

  /// Runs to completion and returns all results in completion order.
  std::vector<RequestResult> drain();

  std::size_t running() const noexcept { return running_.size(); }
  std::size_t waiting() const noexcept { return waiting_.size(); }
  /// Decode parallelism (1 when no pool is attached).
  std::size_t decode_threads() const noexcept {
    return pool_ == nullptr ? 1 : pool_->size();
  }
  const SchedulerConfig& config() const noexcept { return cfg_; }
  const SchedulerStats& scheduler_stats() const noexcept { return stats_; }
  const std::vector<RequestResult>& results() const noexcept {
    return results_;
  }

 private:
  /// A queued request plus any progress preserved across preemption.
  struct Pending {
    Request req;
    /// After a mid-decode preemption: the prompt plus every generated
    /// token that had been fed back, to be replayed as the re-prefill
    /// stream. Empty for a fresh request (feed() then serves the prompt
    /// directly, avoiding a copy per queued request).
    std::vector<std::int32_t> fed;
    const std::vector<std::int32_t>& feed() const noexcept {
      return fed.empty() ? req.prompt : fed;
    }
    /// Generated tokens restored verbatim after re-prefill (empty for a
    /// fresh request).
    std::vector<std::int32_t> resumed;
    std::size_t preemptions = 0;
    std::size_t submit_step = 0;
    std::size_t first_token_step = 0;
  };

  /// An admitted request bound to an engine sequence.
  struct Running {
    Pending pend;
    SequenceId seq = kInvalidSequence;
    SequencePhase phase = SequencePhase::kPrefilling;
    std::vector<std::int32_t> output;
    std::size_t prefill_pos = 0;  ///< tokens of pend.feed() already forwarded.
    std::uint64_t admit_order = 0;
  };

  bool in_flight(std::uint64_t id) const noexcept;
  void admit();
  void advance_prefill();
  void preempt_for_memory();
  void preempt(std::size_t slot);

  Engine& engine_;
  SchedulerConfig cfg_;
  std::unique_ptr<ThreadPool> pool_;  ///< null => serial decode.
  std::deque<Pending> waiting_;
  std::vector<Running> running_;
  std::vector<RequestResult> results_;
  SchedulerStats stats_;
  std::uint64_t next_id_ = 1;
  std::uint64_t admit_counter_ = 0;  ///< preemption priority (newest first).
  bool poisoned_ = false;  ///< a decode batch threw; engine unusable.
};

}  // namespace lserve::serve
