// Continuous-batching scheduler (Orca-style iteration-level scheduling).
//
// Requests queue FCFS; up to `max_batch` sequences run concurrently. Each
// step() performs one decode iteration across every running sequence and
// admits waiting requests into free slots (prefilling them on admission).
// This is the serving-loop shape of vLLM/TensorRT-LLM that LServe inherits
// from QServe; benches use it to measure per-step decode latency under
// batching.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "serve/engine.hpp"

namespace lserve::serve {

/// One inference request.
struct Request {
  std::vector<std::int32_t> prompt;
  std::size_t max_new_tokens = 16;
  std::uint64_t request_id = 0;
};

/// A finished request's output and accounting.
struct RequestResult {
  std::uint64_t request_id = 0;
  std::vector<std::int32_t> output;
  std::size_t prompt_tokens = 0;
  std::size_t decode_steps = 0;
};

/// FCFS continuous-batching scheduler over one Engine.
class Scheduler {
 public:
  Scheduler(Engine& engine, std::size_t max_batch);

  /// Enqueues a request; returns its id (assigned if 0).
  std::uint64_t submit(Request req);

  /// Admits + decodes one iteration. Returns true while work remains.
  bool step();

  /// Runs to completion and returns all results in completion order.
  std::vector<RequestResult> drain();

  std::size_t running() const noexcept { return running_.size(); }
  std::size_t waiting() const noexcept { return waiting_.size(); }
  const std::vector<RequestResult>& results() const noexcept {
    return results_;
  }

 private:
  struct Running {
    Request req;
    SequenceId seq;
    std::vector<std::int32_t> output;
  };

  void admit();

  Engine& engine_;
  std::size_t max_batch_;
  std::deque<Request> waiting_;
  std::vector<Running> running_;
  std::vector<RequestResult> results_;
  std::uint64_t next_id_ = 1;
};

}  // namespace lserve::serve
