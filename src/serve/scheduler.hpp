// Continuous-batching scheduler (Orca-style iteration-level scheduling).
//
// Requests queue FCFS; up to `max_batch` sequences run concurrently. Each
// step() performs one decode iteration across every running sequence and
// admits waiting requests into free slots (prefilling them on admission).
// This is the serving-loop shape of vLLM/TensorRT-LLM that LServe inherits
// from QServe; benches use it to measure per-step decode latency under
// batching.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "serve/engine.hpp"
#include "serve/thread_pool.hpp"

namespace lserve::serve {

/// One inference request.
struct Request {
  std::vector<std::int32_t> prompt;
  std::size_t max_new_tokens = 16;
  std::uint64_t request_id = 0;
};

/// A finished request's output and accounting.
struct RequestResult {
  std::uint64_t request_id = 0;
  std::vector<std::int32_t> output;
  std::size_t prompt_tokens = 0;
  std::size_t decode_steps = 0;
};

/// FCFS continuous-batching scheduler over one Engine.
class Scheduler {
 public:
  /// `decode_threads` is the parallelism of each step()'s decode batch:
  /// 1 (default) decodes sequences serially, exactly as before; >1 runs
  /// them on a shared ThreadPool; 0 uses hardware concurrency. Outputs,
  /// EngineStats and completion order are bit-identical at any thread
  /// count — sequences are independent and the engine merges per-sequence
  /// work deterministically after each batch. Allocator-level telemetry
  /// (PageAllocator::peak_pages_in_use, physical page-id assignment) is
  /// the exception: it depends on allocation interleaving within a batch.
  Scheduler(Engine& engine, std::size_t max_batch,
            std::size_t decode_threads = 1);

  /// Enqueues a request; returns its id (assigned if 0).
  std::uint64_t submit(Request req);

  /// Admits + decodes one iteration. Returns true while work remains.
  /// If a decode batch throws (see Engine::decode_batch's exception
  /// contract), the exception propagates and the scheduler is poisoned:
  /// affected sequences are left mid-step and cannot be resumed, so every
  /// later step()/drain() throws std::logic_error instead of silently
  /// decoding against an inconsistent cache.
  bool step();

  /// Runs to completion and returns all results in completion order.
  std::vector<RequestResult> drain();

  std::size_t running() const noexcept { return running_.size(); }
  std::size_t waiting() const noexcept { return waiting_.size(); }
  /// Decode parallelism (1 when no pool is attached).
  std::size_t decode_threads() const noexcept {
    return pool_ == nullptr ? 1 : pool_->size();
  }
  const std::vector<RequestResult>& results() const noexcept {
    return results_;
  }

 private:
  struct Running {
    Request req;
    SequenceId seq;
    std::vector<std::int32_t> output;
  };

  void admit();

  Engine& engine_;
  std::size_t max_batch_;
  std::unique_ptr<ThreadPool> pool_;  ///< null => serial decode.
  std::deque<Request> waiting_;
  std::vector<Running> running_;
  std::vector<RequestResult> results_;
  std::uint64_t next_id_ = 1;
  bool poisoned_ = false;  ///< a decode batch threw; engine unusable.
};

}  // namespace lserve::serve
