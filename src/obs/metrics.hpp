// Metrics registry: named counters, gauges and fixed-bucket histograms
// with cheap thread-safe increment paths, plus Prometheus text-format
// exposition.
//
// Design: registration (name -> metric object) is mutex-guarded and
// expected to happen at wiring time (scheduler/server construction); the
// returned references stay valid for the registry's lifetime, and every
// hot-path operation on them — Counter::inc, Gauge::set,
// Histogram::observe — is a handful of relaxed atomic ops with no lock, so
// a decode step can record telemetry without ever contending with the
// exposition endpoint. expose_prometheus() walks the registry under the
// registration lock but reads the atomics directly, so scraping /metrics
// never blocks the scheduler thread (it may observe a torn *set* of
// metrics mid-step — individually each value is consistent — which is
// inherent to lock-free scraping and what Prometheus expects).
//
// Label support is deliberately minimal: a metric registered as
// `name{key="value"}` is one time series of the family `name`; the
// registry groups series by family for the single # HELP/# TYPE header the
// text format requires. That covers the fixed, low-cardinality label sets
// this server exports (route="dense|sparse", ...) without dragging in a
// dynamic label map on the increment path.
//
// Thread safety (machine-checked): mu_ guards the metric table; see
// docs/CONCURRENCY.md lock inventory.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/thread_annotations.hpp"

namespace lserve::obs {

/// Monotone event count. inc() is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (occupancy, queue depth).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with Prometheus semantics: bucket upper bounds
/// are inclusive (`le`), an implicit +Inf bucket catches the tail, and
/// sum/count accompany the bucket counts. observe() is a binary search
/// over the (immutable) bounds plus three relaxed atomic adds.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; the +Inf bucket is
  /// implicit and must not be listed.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Quantile estimate (p in [0,1]) by linear interpolation inside the
  /// bucket containing the target rank — the same estimate
  /// histogram_quantile() makes server-side from the exported buckets, so
  /// a bench reporting quantile(0.95) matches what an operator reads off
  /// /metrics. Values in the +Inf bucket clamp to the largest finite
  /// bound. 0 when empty.
  double quantile(double p) const;

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 buckets; the last is +Inf.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential bucket ladder: `count` bounds starting at `start`, each
/// `factor` times the previous.
std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count);

/// Default ladder for wall-clock latency histograms in seconds: 1 us to
/// ~100 s at ~1.58x per bucket (40 buckets) — fine enough that a p99 read
/// off the buckets lands within one bucket width of the true value, coarse
/// enough that a scrape stays small.
std::vector<double> default_latency_buckets_seconds();

/// Generic unit-agnostic ladder for bench summaries (bench/common.hpp):
/// 0.5 to ~3.7e9 in the samples' own unit at 1.04x per bucket, so
/// percentile estimates stay within ~2% of nearest-rank on typical
/// latency spreads.
std::vector<double> default_summary_buckets();

/// Named metric table with Prometheus text exposition.
///
/// register-or-get semantics: requesting an existing name returns the same
/// object (so independently wired components can share a series); a name
/// clash across types throws std::invalid_argument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `name` may carry a fixed label suffix: `family{key="value"}`.
  Counter& counter(const std::string& name, const std::string& help)
      EXCLUDES(mu_);
  Gauge& gauge(const std::string& name, const std::string& help)
      EXCLUDES(mu_);
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upper_bounds) EXCLUDES(mu_);

  /// Lookup without registration; nullptr when absent or of another type.
  /// (The /healthz handler reads occupancy gauges through these, so
  /// liveness and capacity come from the same values /metrics exports.)
  const Counter* find_counter(const std::string& name) const EXCLUDES(mu_);
  const Gauge* find_gauge(const std::string& name) const EXCLUDES(mu_);
  const Histogram* find_histogram(const std::string& name) const
      EXCLUDES(mu_);

  /// Prometheus text format (version 0.0.4): one # HELP/# TYPE header per
  /// family, series in registration order.
  std::string expose_prometheus() const EXCLUDES(mu_);

  std::size_t size() const EXCLUDES(mu_);

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;    ///< full series name, label suffix included.
    std::string family;  ///< name up to the label suffix.
    std::string help;
    Type type = Type::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* find_locked(const std::string& name, Type type) REQUIRES(mu_);
  const Entry* find_locked(const std::string& name, Type type) const
      REQUIRES(mu_);

  mutable Mutex mu_;
  /// Registration order preserved — exposition is deterministic, which is
  /// what makes a golden-format test possible.
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mu_);
};

}  // namespace lserve::obs
