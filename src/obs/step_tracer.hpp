// Step-level trace timeline: a bounded ring buffer of per-step phase
// spans, exportable as Chrome trace-event JSON.
//
// The scheduler builds one StepTrace per Scheduler::step() through a
// StepTraceBuilder — a plain value that accumulates RAII phase spans
// (admit, prefill_chunk, decode_batch, preempt, prefix_attach,
// prefix_insert, ...) with timestamps from the injectable obs::Clock —
// and commits it to the StepTracer at the end of the step. Building is
// lock-free on the scheduler thread; commit takes the tracer's mutex once
// per step to splice the record into the ring. GET /debug/trace snapshots
// the ring under the same mutex from the HTTP loop thread, so exporting a
// trace never blocks a decode step for more than the splice.
//
// The ring holds the most recent `capacity` steps; older steps are
// overwritten (wraparound is the normal steady-state, not an error). An
// inactive builder (null clock) makes every span a no-op, so tracing
// compiled in but not wired costs two predictable branches per phase.
//
// Export format: Chrome trace events (chrome://tracing, Perfetto), one
// complete event (ph "X") per phase span plus one per step envelope, ts
// and dur in microseconds. See docs/OBSERVABILITY.md for the schema.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "serve/thread_annotations.hpp"

namespace lserve::obs {

/// One timed phase inside a step. `name` must be a string literal (the
/// builder stores the pointer, not a copy).
struct TraceSpan {
  const char* name = "";
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// One scheduler step: its envelope plus the phases it ran.
struct StepTrace {
  std::uint64_t step = 0;  ///< SchedulerStats::steps at the time.
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::vector<TraceSpan> spans;
};

/// Accumulates one step's spans on the owning thread; no locks.
class StepTraceBuilder {
 public:
  /// Inactive builder: every span() is a no-op, finish() returns an empty
  /// record. The disabled-tracing path.
  StepTraceBuilder() = default;

  /// Active builder stamping times from `clock` (not owned; must outlive
  /// the builder).
  StepTraceBuilder(const Clock* clock, std::uint64_t step);

  StepTraceBuilder(StepTraceBuilder&&) = default;
  StepTraceBuilder& operator=(StepTraceBuilder&&) = default;

  bool active() const noexcept { return clock_ != nullptr; }

  /// RAII phase span: records start at construction, duration at scope
  /// exit. Spans may nest (prefix_attach inside admit); the exporter
  /// emits them as overlapping complete events, which trace viewers
  /// render as a nested track.
  class Span {
   public:
    ~Span() {
      if (builder_ != nullptr) builder_->close(index_);
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span(Span&& other) noexcept
        : builder_(other.builder_), index_(other.index_) {
      other.builder_ = nullptr;
    }
    Span& operator=(Span&&) = delete;

   private:
    friend class StepTraceBuilder;
    Span(StepTraceBuilder* builder, std::size_t index) noexcept
        : builder_(builder), index_(index) {}
    StepTraceBuilder* builder_;
    std::size_t index_;
  };

  /// Opens a phase span; `name` must be a string literal.
  Span span(const char* name);

  /// Stamps the envelope duration and yields the record (the builder is
  /// spent afterwards). All spans must be closed.
  StepTrace finish();

 private:
  void close(std::size_t index) noexcept;

  const Clock* clock_ = nullptr;
  StepTrace record_;
};

/// Bounded ring of the most recent step traces.
class StepTracer {
 public:
  explicit StepTracer(std::size_t capacity = 256);

  StepTracer(const StepTracer&) = delete;
  StepTracer& operator=(const StepTracer&) = delete;

  /// Splices one finished step into the ring (scheduler thread, once per
  /// step). Empty records from inactive builders are ignored.
  void commit(StepTrace record) EXCLUDES(mu_);

  /// The retained steps, oldest first.
  std::vector<StepTrace> snapshot() const EXCLUDES(mu_);

  /// Chrome trace-event JSON of snapshot() (displayTimeUnit ms, ts/dur in
  /// microseconds). Safe from any thread.
  std::string export_chrome_json() const EXCLUDES(mu_);

  std::size_t capacity() const noexcept { return capacity_; }
  /// Total commits since construction (>= capacity means wrapped).
  std::uint64_t committed() const EXCLUDES(mu_);

 private:
  const std::size_t capacity_;

  mutable Mutex mu_;
  std::vector<StepTrace> ring_ GUARDED_BY(mu_);  ///< capacity_ slots max.
  std::size_t next_ GUARDED_BY(mu_) = 0;  ///< ring_ slot of the next commit.
  std::uint64_t committed_ GUARDED_BY(mu_) = 0;
};

}  // namespace lserve::obs
