#include "obs/step_tracer.hpp"

#include <cassert>
#include <cstdio>

namespace lserve::obs {

StepTraceBuilder::StepTraceBuilder(const Clock* clock, std::uint64_t step)
    : clock_(clock) {
  record_.step = step;
  if (clock_ != nullptr) record_.start_ns = clock_->now_ns();
}

StepTraceBuilder::Span StepTraceBuilder::span(const char* name) {
  if (clock_ == nullptr) return Span(nullptr, 0);
  TraceSpan s;
  s.name = name;
  s.start_ns = clock_->now_ns();
  record_.spans.push_back(s);
  return Span(this, record_.spans.size() - 1);
}

void StepTraceBuilder::close(std::size_t index) noexcept {
  assert(index < record_.spans.size());
  TraceSpan& s = record_.spans[index];
  s.dur_ns = clock_->now_ns() - s.start_ns;
}

StepTrace StepTraceBuilder::finish() {
  if (clock_ != nullptr) {
    record_.dur_ns = clock_->now_ns() - record_.start_ns;
    clock_ = nullptr;
  }
  return std::move(record_);
}

StepTracer::StepTracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void StepTracer::commit(StepTrace record) {
  if (record.spans.empty() && record.start_ns == 0 && record.dur_ns == 0) {
    return;  // inactive builder — tracing disabled this step.
  }
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
  }
  next_ = (next_ + 1) % capacity_;
  ++committed_;
}

std::vector<StepTrace> StepTracer::snapshot() const {
  MutexLock lock(mu_);
  std::vector<StepTrace> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: ring order is chronological.
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t StepTracer::committed() const {
  MutexLock lock(mu_);
  return committed_;
}

namespace {

void append_event(std::string& out, const char* name, std::uint64_t step,
                  std::uint64_t start_ns, std::uint64_t dur_ns) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                ",\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
                "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"step\":%llu}}",
                name, static_cast<double>(start_ns) / 1000.0,
                static_cast<double>(dur_ns) / 1000.0,
                static_cast<unsigned long long>(step));
  out += buf;
}

}  // namespace

std::string StepTracer::export_chrome_json() const {
  const std::vector<StepTrace> steps = snapshot();
  std::string out =
      "{\"displayTimeUnit\":\"ms\",\n"
      "\"traceEvents\":[\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"scheduler\"}}";
  for (const StepTrace& st : steps) {
    append_event(out, "step", st.step, st.start_ns, st.dur_ns);
    for (const TraceSpan& span : st.spans) {
      append_event(out, span.name, st.step, span.start_ns, span.dur_ns);
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace lserve::obs
