// Injectable wall-clock source for the observability layer.
//
// The scheduler's own control flow is deliberately clockless (step indices
// are its native time base; see serve/scheduler.hpp), but the telemetry
// the serving stack exports — TTFT, TPOT, queue-wait, end-to-end latency,
// per-phase trace spans — is wall-clock by definition. Every obs consumer
// reads time through this interface so tests can substitute a FakeClock
// and pin exact latencies, and so a disabled telemetry path can skip the
// read entirely (see Scheduler::now_ns).
//
// Implementations must be safe to call from any thread: submit() stamps
// arrival time on the caller's thread while the scheduler thread stamps
// step phases.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace lserve::obs {

/// Monotonic nanosecond clock interface.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Nanoseconds since an arbitrary fixed origin; monotone non-decreasing.
  virtual std::uint64_t now_ns() const = 0;
};

/// The production clock: std::chrono::steady_clock.
class MonotonicClock final : public Clock {
 public:
  std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Deterministic test clock: time moves only when advance()d. Thread-safe
/// (atomic), so it can back a scheduler with cross-thread submitters.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::uint64_t start_ns = 0) : now_(start_ns) {}

  std::uint64_t now_ns() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void advance_ns(std::uint64_t delta_ns) {
    now_.fetch_add(delta_ns, std::memory_order_relaxed);
  }
  void set_ns(std::uint64_t t_ns) {
    now_.store(t_ns, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_;
};

}  // namespace lserve::obs
