#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lserve::obs {

namespace {

/// Shortest round-trip decimal for bucket bounds and gauge values: %g with
/// enough digits that 1e-6-style bounds print cleanly ("1e-06", "0.001").
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// The family of a series name is everything before its label suffix.
std::string family_of(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Splices the histogram's `le` label into a series name that may already
/// carry labels: name{a="b"} + le=0.5 -> name_bucket{a="b",le="0.5"}.
std::string bucket_series(const std::string& name, const std::string& le) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return name + "_bucket{le=\"" + le + "\"}";
  }
  std::string out = name.substr(0, brace) + "_bucket" +
                    name.substr(brace, name.size() - brace - 1);
  out += ",le=\"" + le + "\"}";
  return out;
}

/// name -> name_suffix, preserving a label suffix.
std::string suffixed_series(const std::string& name, const char* suffix) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly increasing");
    }
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  // First bound >= value; bounds are inclusive upper limits (`le`).
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // No atomic<double>::fetch_add until C++20 guarantees it everywhere
  // libstdc++ lowers it well; the CAS loop is portable and contention on a
  // single histogram is low (one observe per request event).
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double p) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  // Nearest-rank target, then linear interpolation inside the bucket.
  const double rank = p * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= rank && counts[i] > 0) {
      if (i == bounds_.size()) {
        // +Inf bucket: clamp to the largest finite bound (or the mean for
        // a histogram with no finite buckets at all).
        return bounds_.empty() ? mean() : bounds_.back();
      }
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double within =
          (rank - cumulative) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * within;
    }
    cumulative = next;
  }
  return bounds_.empty() ? mean() : bounds_.back();
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  if (start <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument(
        "exponential_buckets: start must be > 0 and factor > 1");
  }
  std::vector<double> out;
  out.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

std::vector<double> default_latency_buckets_seconds() {
  // 1 us .. ~97 s in 40 steps of x1.585 (~4 buckets per decade).
  return exponential_buckets(1e-6, 1.585, 40);
}

std::vector<double> default_summary_buckets() {
  // 0.5 .. ~3.7e9 in 580 steps of x1.04 — unit-agnostic (us or ms), fine
  // enough that a bench quantile read off the buckets sits within ~2% of
  // nearest-rank (the serving benches compare medians at a 5% threshold).
  return exponential_buckets(0.5, 1.04, 580);
}

MetricsRegistry::Entry* MetricsRegistry::find_locked(const std::string& name,
                                                     Type type) {
  for (const auto& e : entries_) {
    if (e->name != name) continue;
    if (e->type != type) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered with another type");
    }
    return e.get();
  }
  return nullptr;
}

const MetricsRegistry::Entry* MetricsRegistry::find_locked(
    const std::string& name, Type type) const {
  for (const auto& e : entries_) {
    if (e->name == name && e->type == type) return e.get();
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  MutexLock lock(mu_);
  if (Entry* e = find_locked(name, Type::kCounter)) return *e->counter;
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->family = family_of(name);
  entry->help = help;
  entry->type = Type::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter& out = *entry->counter;
  entries_.push_back(std::move(entry));
  return out;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  MutexLock lock(mu_);
  if (Entry* e = find_locked(name, Type::kGauge)) return *e->gauge;
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->family = family_of(name);
  entry->help = help;
  entry->type = Type::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge& out = *entry->gauge;
  entries_.push_back(std::move(entry));
  return out;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upper_bounds) {
  MutexLock lock(mu_);
  if (Entry* e = find_locked(name, Type::kHistogram)) return *e->histogram;
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->family = family_of(name);
  entry->help = help;
  entry->type = Type::kHistogram;
  entry->histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  Histogram& out = *entry->histogram;
  entries_.push_back(std::move(entry));
  return out;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  MutexLock lock(mu_);
  const Entry* e = find_locked(name, Type::kCounter);
  return e == nullptr ? nullptr : e->counter.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  MutexLock lock(mu_);
  const Entry* e = find_locked(name, Type::kGauge);
  return e == nullptr ? nullptr : e->gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  MutexLock lock(mu_);
  const Entry* e = find_locked(name, Type::kHistogram);
  return e == nullptr ? nullptr : e->histogram.get();
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

std::string MetricsRegistry::expose_prometheus() const {
  MutexLock lock(mu_);
  std::string out;
  out.reserve(entries_.size() * 96);
  std::string last_family;
  for (const auto& e : entries_) {
    // One HELP/TYPE header per family; series of one family are registered
    // consecutively in practice, and a re-header is harmless if not.
    if (e->family != last_family) {
      out += "# HELP " + e->family + " " + e->help + "\n";
      out += "# TYPE " + e->family + " ";
      switch (e->type) {
        case Type::kCounter:
          out += "counter\n";
          break;
        case Type::kGauge:
          out += "gauge\n";
          break;
        case Type::kHistogram:
          out += "histogram\n";
          break;
      }
      last_family = e->family;
    }
    switch (e->type) {
      case Type::kCounter:
        out += e->name + " " + std::to_string(e->counter->value()) + "\n";
        break;
      case Type::kGauge:
        out += e->name + " " + fmt_double(e->gauge->value()) + "\n";
        break;
      case Type::kHistogram: {
        const Histogram& h = *e->histogram;
        const std::vector<std::uint64_t> counts = h.bucket_counts();
        const std::vector<double>& bounds = h.upper_bounds();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          cumulative += counts[i];
          out += bucket_series(e->name, fmt_double(bounds[i])) + " " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += counts[bounds.size()];
        out += bucket_series(e->name, "+Inf") + " " +
               std::to_string(cumulative) + "\n";
        out += suffixed_series(e->name, "_sum") + " " + fmt_double(h.sum()) +
               "\n";
        out += suffixed_series(e->name, "_count") + " " +
               std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace lserve::obs
