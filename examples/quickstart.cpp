// Quickstart: serve a model with LServe's hybrid sparse attention.
//
// Builds two engines over the same synthetic weights — a dense baseline
// (vLLM-like) and LServe (50% streaming heads, hierarchical page selection,
// reusable selector, INT8 KV) — generates from both, and prints the work
// and memory accounting that explains where LServe's speedups come from.
//
// Run:  ./examples/quickstart
#include <cstdio>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "serve/engine.hpp"

using namespace lserve;

int main() {
  const model::ModelConfig geometry = model::small();
  std::printf("model: %s  (%zu layers, %zu q heads / %zu kv heads, d=%zu)\n",
              geometry.name.c_str(), geometry.layers, geometry.q_heads,
              geometry.kv_heads, geometry.head_dim);

  // A dense baseline and an LServe engine share the model geometry and
  // seed, so their weights are identical; only the serving policy differs.
  serve::EngineConfig dense_cfg = baselines::vllm_config(geometry);
  dense_cfg.dense_pages.page_size = 16;
  dense_cfg.dense_pages.logical_page_size = 16;
  dense_cfg.tiling = {16, 16};

  serve::EngineConfig lserve_cfg = baselines::lserve_config(geometry);
  lserve_cfg.dense_pages.page_size = 16;       // scaled-down pages for the
  lserve_cfg.dense_pages.logical_page_size = 4;  // small example context
  lserve_cfg.dense_pages.dtype = num::KvDtype::kInt8;
  lserve_cfg.tiling = {16, 16};
  lserve_cfg.streaming = {/*sink_tokens=*/16, /*local_tokens=*/64};
  lserve_cfg.selector.token_budget = 128;
  lserve_cfg.reuse_interval = 4;

  serve::Engine dense(dense_cfg);
  serve::Engine lserve(lserve_cfg);

  // A 256-token prompt, 16 generated tokens.
  std::vector<std::int32_t> prompt(256);
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    prompt[i] = static_cast<std::int32_t>((5 + 3 * i) % geometry.vocab);
  }

  const auto dense_seq = dense.create_sequence();
  const auto lserve_seq = lserve.create_sequence();
  const auto dense_out = dense.generate(dense_seq, prompt, 16);
  const auto lserve_out = lserve.generate(lserve_seq, prompt, 16);

  std::printf("\ngenerated (dense):  ");
  for (auto t : dense_out) std::printf("%d ", t);
  std::printf("\ngenerated (lserve): ");
  for (auto t : lserve_out) std::printf("%d ", t);

  std::printf("\n\n-- accounting after 256 prompt + 16 generated tokens --\n");
  std::printf("%-34s %14s %14s\n", "", "dense", "lserve");
  std::printf("%-34s %14zu %14zu\n", "decode KV token-iterations",
              dense.stats().tokens_visited, lserve.stats().tokens_visited);
  std::printf("%-34s %14.0f %14.0f\n", "KV cache device bytes",
              dense.kv_device_bytes(), lserve.kv_device_bytes());
  std::printf("%-34s %14zu %14zu\n", "selector runs / (runs+reuses)",
              dense.stats().selector_runs, lserve.stats().selector_runs);
  std::printf("%-34s %14s %14zu\n", "selector reuses", "-",
              lserve.stats().selector_reuses);

  const double work_saving =
      1.0 - static_cast<double>(lserve.stats().tokens_visited) /
                static_cast<double>(dense.stats().tokens_visited);
  const double mem_saving =
      1.0 - lserve.kv_device_bytes() / dense.kv_device_bytes();
  std::printf(
      "\nLServe skipped %.0f%% of decode attention iterations and holds "
      "%.0f%%\nless KV memory (streaming-head eviction + INT8 pages + page "
      "pruning).\n",
      100.0 * work_saving, 100.0 * mem_saving);
  return 0;
}
