// Streaming generation: the scheduler's serving surface, in-process.
//
// Demonstrates the three request-lifecycle features the network
// front-end (src/net) is built on, without any sockets:
//   1. on_token streaming — tokens delivered as each decode step commits;
//   2. cancel() — a mid-decode abort that reclaims every KV page;
//   3. deadlines — a per-request step budget that terminates with
//      DEADLINE_EXCEEDED and a partial output.
//
// Run:  ./examples/example_streaming_generation
#include <cstdio>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "serve/scheduler.hpp"

using namespace lserve;

namespace {

serve::Request make_request(std::size_t prompt_len,
                            std::size_t max_new_tokens) {
  serve::Request req;
  req.prompt.resize(prompt_len);
  for (std::size_t i = 0; i < prompt_len; ++i) {
    req.prompt[i] = static_cast<std::int32_t>((i * 131 + 7) % 1021);
  }
  req.max_new_tokens = max_new_tokens;
  return req;
}

void print_result(const serve::RequestResult& r) {
  std::printf("  -> request %llu terminal: %s after %zu token(s)\n",
              static_cast<unsigned long long>(r.request_id),
              serve::to_string(r.status), r.output.size());
}

}  // namespace

int main() {
  serve::EngineConfig cfg = baselines::lserve_config(model::small());
  cfg.prefill_chunk_tokens = 64;
  serve::Engine engine(cfg);
  serve::Scheduler sched(engine, serve::SchedulerConfig{
                                     /*max_batch=*/4,
                                     /*decode_threads=*/1,
                                     /*memory=*/{},
                                     /*default_deadline_steps=*/0,
                                     /*policy=*/nullptr,
                                     /*metrics=*/nullptr,
                                     /*tracer=*/nullptr,
                                     /*clock=*/nullptr});

  // 1. Streamed generation: tokens arrive via on_token as they commit.
  std::printf("streaming a 12-token generation:\n  tokens:");
  serve::Request streamed = make_request(96, 12);
  streamed.on_token = [](std::uint64_t, std::int32_t token, std::size_t) {
    std::printf(" %d", token);
  };
  streamed.on_done = [](const serve::RequestResult& r) {
    std::printf("\n");
    print_result(r);
  };
  sched.submit(streamed);
  sched.run_until_idle();

  // 2. Cancellation: run a long request a few steps, then abort it. The
  // scheduler reclaims its pages like a preemption, but the request is
  // terminal instead of re-queued — exactly what the HTTP front-end does
  // when a client disconnects mid-stream.
  std::printf("\ncancelling a 512-token request after 6 steps:\n");
  serve::Request doomed = make_request(96, 512);
  doomed.on_done = [](const serve::RequestResult& r) { print_result(r); };
  const std::uint64_t id = sched.submit(doomed);
  for (int i = 0; i < 6; ++i) sched.step();
  sched.cancel(id);
  sched.run_until_idle();
  std::printf("  pages in use after cancel: %zu (all reclaimed)\n",
              engine.total_pages_in_use());

  // 3. Deadline: the request only gets 5 scheduler steps of service.
  std::printf("\nsubmitting a 512-token request with deadline_steps=5:\n");
  serve::Request late = make_request(96, 512);
  late.deadline_steps = 5;
  late.on_done = [](const serve::RequestResult& r) { print_result(r); };
  sched.submit(late);
  sched.run_until_idle();

  const serve::SchedulerStats& stats = sched.scheduler_stats();
  std::printf(
      "\nscheduler totals: %zu steps, %zu cancelled, %zu deadline-exceeded,"
      " %zu pages leaked\n",
      stats.steps, stats.cancelled, stats.deadline_exceeded,
      engine.total_pages_in_use());
  return 0;
}
