// Long-document question answering: the workload the paper's introduction
// motivates (retrieving one fact from hundreds of thousands of context
// tokens).
//
// A 64K-token synthetic document is written into the paged KV cache with a
// planted "fact" at 40% depth. The same question is then answered through
// four attention pathways: dense (oracle), Quest-style flat selection at
// 16- and 64-token pages, and LServe's hierarchical selection on 64-token
// physical / 16-token logical pages. The output shows both answer fidelity
// and how many pages each policy had to touch — accuracy of fine-grained
// selection at the cost of coarse-grained memory access.
//
// Run:  ./examples/long_document_qa
#include <cstdio>
#include <vector>

#include "eval/metrics.hpp"
#include "model/workload.hpp"

using namespace lserve;

namespace {

struct Answer {
  double accuracy;
  std::size_t pages_visited;
  std::size_t total_pages;
};

Answer ask(const model::TokenStream& doc, const model::Needle& fact,
           const std::vector<float>& question, std::size_t np,
           std::size_t nl, eval::PolicyKind kind, std::size_t budget) {
  kv::PageConfig pages;
  pages.page_size = np;
  pages.logical_page_size = nl;
  pages.head_dim = doc.keys.cols();
  pages.dtype = num::KvDtype::kInt4;  // quantized cache, as served
  kv::PageAllocator alloc(pages, doc.keys.rows() / np + 2);
  kv::HeadCache head;
  eval::fill_head_cache(alloc, head, doc);

  eval::ProbePolicy policy;
  policy.kind = kind;
  policy.selector.token_budget = budget;
  const auto out = eval::run_probe(alloc, head, question.data(), policy);
  return {eval::retrieval_accuracy(out, fact.payload),
          eval::probe_pages_visited(alloc, head, question.data(), policy),
          head.num_pages()};
}

}  // namespace

int main() {
  const std::size_t doc_tokens = 65536;
  const std::size_t head_dim = 64;
  const float strength = model::salient_strength(doc_tokens, head_dim);

  model::StreamConfig sc;
  sc.n_tokens = doc_tokens;
  sc.head_dim = head_dim;
  sc.seed = 2024;
  sc.distractor_rate = 0.15f;   // other "interesting" passages
  sc.distractor_strength = 0.9f * strength;
  model::TokenStream document = model::smooth_stream(sc);

  const std::size_t fact_pos = doc_tokens * 2 / 5;
  const model::Needle fact =
      model::plant_needle(document, fact_pos, strength, 7);
  const std::vector<float> question =
      model::probe_query(fact, strength, 0.05f, 8);

  std::printf("document: %zu tokens; fact planted at token %zu (depth 40%%)\n",
              doc_tokens, fact_pos);
  std::printf("%-44s %9s %9s %11s\n", "policy", "accuracy", "pages",
              "of total");

  struct Row {
    const char* name;
    std::size_t np, nl;
    eval::PolicyKind kind;
    std::size_t budget;
  };
  const Row rows[] = {
      {"dense attention (oracle)", 64, 64, eval::PolicyKind::kDense, 0},
      {"Quest flat, 16-token pages, 2K budget", 16, 16,
       eval::PolicyKind::kFlatSelect, 2048},
      {"Quest flat, 64-token pages, 2K budget", 64, 64,
       eval::PolicyKind::kFlatSelect, 2048},
      {"LServe hierarchical, NP=64/NL=16, 2K budget", 64, 16,
       eval::PolicyKind::kHierSelect, 2048},
  };
  for (const Row& row : rows) {
    const Answer a =
        ask(document, fact, question, row.np, row.nl, row.kind, row.budget);
    std::printf("%-44s %9.3f %9zu %11zu\n", row.name, a.accuracy,
                a.pages_visited, a.total_pages);
  }

  std::printf(
      "\nReading: flat selection is accurate only on small (bandwidth-\n"
      "hostile) pages; LServe's hierarchical paging answers correctly while\n"
      "touching ~2%% of the pages at the hardware-friendly 64-token size.\n");
  return 0;
}
