// Multi-turn chat serving: continuous batching over the LServe engine.
//
// Several "users" with different prompt lengths and reply budgets share
// one engine through the FCFS scheduler. The example shows iteration-level
// batching (short requests retire early, freeing their KV pages for
// waiting ones), calibrated head partitioning, and the per-request
// accounting a deployment would log.
//
// Run:  ./examples/multi_turn_chat
#include <cstdio>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "serve/scheduler.hpp"

using namespace lserve;

int main() {
  serve::EngineConfig cfg = baselines::lserve_config(model::small());
  cfg.dense_pages.page_size = 16;
  cfg.dense_pages.logical_page_size = 4;
  cfg.dense_pages.dtype = num::KvDtype::kInt8;
  cfg.tiling = {16, 16};
  cfg.streaming = {/*sink_tokens=*/16, /*local_tokens=*/64};
  cfg.selector.token_budget = 128;
  cfg.pool_pages = 2048;
  serve::Engine engine(cfg);

  // Offline head classification (DuoAttention-style gates measured on
  // synthetic calibration streams; see DESIGN.md).
  engine.calibrate_head_kinds();
  std::size_t streaming_heads = 0;
  for (auto kind : engine.head_kinds()) {
    streaming_heads += (kind == kv::HeadKind::kStreaming);
  }
  std::printf("calibrated %zu/%zu kv heads as streaming heads\n\n",
              streaming_heads, engine.head_kinds().size());

  serve::Scheduler scheduler(engine, /*max_batch=*/2);
  struct Turn {
    const char* user;
    std::size_t prompt_tokens;
    std::size_t reply_tokens;
  };
  const Turn turns[] = {
      {"alice: long design doc question", 384, 6},
      {"bob:   quick follow-up", 48, 4},
      {"carol: pasted stack trace", 192, 8},
      {"alice: second turn", 96, 5},
  };
  std::vector<std::uint64_t> ids;
  for (const Turn& turn : turns) {
    serve::Request req;
    req.prompt.resize(turn.prompt_tokens);
    for (std::size_t i = 0; i < req.prompt.size(); ++i) {
      req.prompt[i] = static_cast<std::int32_t>((i * 31 + 7) % 1024);
    }
    req.max_new_tokens = turn.reply_tokens;
    ids.push_back(scheduler.submit(std::move(req)));
  }

  std::size_t iterations = 0;
  while (scheduler.step()) {
    ++iterations;
    if (iterations % 2 == 0) {
      std::printf("iteration %2zu: running=%zu waiting=%zu pages in use=%zu\n",
                  iterations, scheduler.running(), scheduler.waiting(),
                  engine.dense_allocator().pages_in_use());
    }
  }

  std::printf("\ncompleted %zu requests in %zu scheduler iterations\n",
              scheduler.results().size(), iterations);
  std::printf("%-6s %8s %8s   %s\n", "req", "prompt", "steps", "reply tokens");
  for (const auto& result : scheduler.results()) {
    std::printf("#%-5llu %8zu %8zu   ",
                static_cast<unsigned long long>(result.request_id),
                result.prompt_tokens, result.decode_steps);
    for (auto t : result.output) std::printf("%d ", t);
    std::printf("\n");
  }
  std::printf(
      "\nall KV pages returned to the pool: dense in use=%zu, streaming in "
      "use=%zu\nselector runs=%zu reuses=%zu (reuse interval %zu)\n",
      engine.dense_allocator().pages_in_use(),
      engine.stream_allocator().pages_in_use(),
      engine.stats().selector_runs, engine.stats().selector_reuses,
      cfg.reuse_interval);
  return 0;
}
